file(REMOVE_RECURSE
  "CMakeFiles/cogent_investigation.dir/cogent_investigation.cpp.o"
  "CMakeFiles/cogent_investigation.dir/cogent_investigation.cpp.o.d"
  "cogent_investigation"
  "cogent_investigation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cogent_investigation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
