# Empty compiler generated dependencies file for cogent_investigation.
# This may be replaced when dependencies are built.
