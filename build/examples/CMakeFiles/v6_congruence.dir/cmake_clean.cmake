file(REMOVE_RECURSE
  "CMakeFiles/v6_congruence.dir/v6_congruence.cpp.o"
  "CMakeFiles/v6_congruence.dir/v6_congruence.cpp.o.d"
  "v6_congruence"
  "v6_congruence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/v6_congruence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
