# Empty compiler generated dependencies file for v6_congruence.
# This may be replaced when dependencies are built.
