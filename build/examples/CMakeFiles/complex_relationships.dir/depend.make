# Empty dependencies file for complex_relationships.
# This may be replaced when dependencies are built.
