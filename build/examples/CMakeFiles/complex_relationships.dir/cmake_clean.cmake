file(REMOVE_RECURSE
  "CMakeFiles/complex_relationships.dir/complex_relationships.cpp.o"
  "CMakeFiles/complex_relationships.dir/complex_relationships.cpp.o.d"
  "complex_relationships"
  "complex_relationships.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/complex_relationships.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
