file(REMOVE_RECURSE
  "CMakeFiles/asrel_org.dir/as2org.cpp.o"
  "CMakeFiles/asrel_org.dir/as2org.cpp.o.d"
  "libasrel_org.a"
  "libasrel_org.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/asrel_org.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
