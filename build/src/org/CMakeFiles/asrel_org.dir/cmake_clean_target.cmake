file(REMOVE_RECURSE
  "libasrel_org.a"
)
