# Empty compiler generated dependencies file for asrel_org.
# This may be replaced when dependencies are built.
