file(REMOVE_RECURSE
  "CMakeFiles/asrel_io.dir/as_rel.cpp.o"
  "CMakeFiles/asrel_io.dir/as_rel.cpp.o.d"
  "CMakeFiles/asrel_io.dir/rib_dump.cpp.o"
  "CMakeFiles/asrel_io.dir/rib_dump.cpp.o.d"
  "CMakeFiles/asrel_io.dir/validation_io.cpp.o"
  "CMakeFiles/asrel_io.dir/validation_io.cpp.o.d"
  "libasrel_io.a"
  "libasrel_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/asrel_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
