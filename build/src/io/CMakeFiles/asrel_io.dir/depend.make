# Empty dependencies file for asrel_io.
# This may be replaced when dependencies are built.
