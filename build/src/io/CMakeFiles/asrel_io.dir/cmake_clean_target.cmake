file(REMOVE_RECURSE
  "libasrel_io.a"
)
