
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/io/as_rel.cpp" "src/io/CMakeFiles/asrel_io.dir/as_rel.cpp.o" "gcc" "src/io/CMakeFiles/asrel_io.dir/as_rel.cpp.o.d"
  "/root/repo/src/io/rib_dump.cpp" "src/io/CMakeFiles/asrel_io.dir/rib_dump.cpp.o" "gcc" "src/io/CMakeFiles/asrel_io.dir/rib_dump.cpp.o.d"
  "/root/repo/src/io/validation_io.cpp" "src/io/CMakeFiles/asrel_io.dir/validation_io.cpp.o" "gcc" "src/io/CMakeFiles/asrel_io.dir/validation_io.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/infer/CMakeFiles/asrel_infer.dir/DependInfo.cmake"
  "/root/repo/build/src/validation/CMakeFiles/asrel_validation.dir/DependInfo.cmake"
  "/root/repo/build/src/rpsl/CMakeFiles/asrel_rpsl.dir/DependInfo.cmake"
  "/root/repo/build/src/bgp/CMakeFiles/asrel_bgp.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/asrel_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/org/CMakeFiles/asrel_org.dir/DependInfo.cmake"
  "/root/repo/build/src/rir/CMakeFiles/asrel_rir.dir/DependInfo.cmake"
  "/root/repo/build/src/asn/CMakeFiles/asrel_asn.dir/DependInfo.cmake"
  "/root/repo/build/src/netbase/CMakeFiles/asrel_netbase.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
