file(REMOVE_RECURSE
  "CMakeFiles/asrel_rpsl.dir/autnum.cpp.o"
  "CMakeFiles/asrel_rpsl.dir/autnum.cpp.o.d"
  "CMakeFiles/asrel_rpsl.dir/synthesize.cpp.o"
  "CMakeFiles/asrel_rpsl.dir/synthesize.cpp.o.d"
  "libasrel_rpsl.a"
  "libasrel_rpsl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/asrel_rpsl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
