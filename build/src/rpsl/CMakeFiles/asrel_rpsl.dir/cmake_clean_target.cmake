file(REMOVE_RECURSE
  "libasrel_rpsl.a"
)
