# Empty dependencies file for asrel_rpsl.
# This may be replaced when dependencies are built.
