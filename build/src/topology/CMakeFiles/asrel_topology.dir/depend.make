# Empty dependencies file for asrel_topology.
# This may be replaced when dependencies are built.
