file(REMOVE_RECURSE
  "libasrel_topology.a"
)
