file(REMOVE_RECURSE
  "CMakeFiles/asrel_topology.dir/cone.cpp.o"
  "CMakeFiles/asrel_topology.dir/cone.cpp.o.d"
  "CMakeFiles/asrel_topology.dir/generator.cpp.o"
  "CMakeFiles/asrel_topology.dir/generator.cpp.o.d"
  "CMakeFiles/asrel_topology.dir/graph.cpp.o"
  "CMakeFiles/asrel_topology.dir/graph.cpp.o.d"
  "libasrel_topology.a"
  "libasrel_topology.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/asrel_topology.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
