# Empty compiler generated dependencies file for asrel_rir.
# This may be replaced when dependencies are built.
