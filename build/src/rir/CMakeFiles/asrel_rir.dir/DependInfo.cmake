
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rir/delegation.cpp" "src/rir/CMakeFiles/asrel_rir.dir/delegation.cpp.o" "gcc" "src/rir/CMakeFiles/asrel_rir.dir/delegation.cpp.o.d"
  "/root/repo/src/rir/iana_table.cpp" "src/rir/CMakeFiles/asrel_rir.dir/iana_table.cpp.o" "gcc" "src/rir/CMakeFiles/asrel_rir.dir/iana_table.cpp.o.d"
  "/root/repo/src/rir/region.cpp" "src/rir/CMakeFiles/asrel_rir.dir/region.cpp.o" "gcc" "src/rir/CMakeFiles/asrel_rir.dir/region.cpp.o.d"
  "/root/repo/src/rir/region_mapper.cpp" "src/rir/CMakeFiles/asrel_rir.dir/region_mapper.cpp.o" "gcc" "src/rir/CMakeFiles/asrel_rir.dir/region_mapper.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/asn/CMakeFiles/asrel_asn.dir/DependInfo.cmake"
  "/root/repo/build/src/netbase/CMakeFiles/asrel_netbase.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
