file(REMOVE_RECURSE
  "CMakeFiles/asrel_rir.dir/delegation.cpp.o"
  "CMakeFiles/asrel_rir.dir/delegation.cpp.o.d"
  "CMakeFiles/asrel_rir.dir/iana_table.cpp.o"
  "CMakeFiles/asrel_rir.dir/iana_table.cpp.o.d"
  "CMakeFiles/asrel_rir.dir/region.cpp.o"
  "CMakeFiles/asrel_rir.dir/region.cpp.o.d"
  "CMakeFiles/asrel_rir.dir/region_mapper.cpp.o"
  "CMakeFiles/asrel_rir.dir/region_mapper.cpp.o.d"
  "libasrel_rir.a"
  "libasrel_rir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/asrel_rir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
