file(REMOVE_RECURSE
  "libasrel_rir.a"
)
