file(REMOVE_RECURSE
  "CMakeFiles/asrel_asn.dir/asn.cpp.o"
  "CMakeFiles/asrel_asn.dir/asn.cpp.o.d"
  "libasrel_asn.a"
  "libasrel_asn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/asrel_asn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
