file(REMOVE_RECURSE
  "libasrel_asn.a"
)
