# Empty compiler generated dependencies file for asrel_asn.
# This may be replaced when dependencies are built.
