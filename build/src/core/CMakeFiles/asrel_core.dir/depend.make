# Empty dependencies file for asrel_core.
# This may be replaced when dependencies are built.
