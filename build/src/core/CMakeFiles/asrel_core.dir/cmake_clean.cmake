file(REMOVE_RECURSE
  "CMakeFiles/asrel_core.dir/bias_audit.cpp.o"
  "CMakeFiles/asrel_core.dir/bias_audit.cpp.o.d"
  "CMakeFiles/asrel_core.dir/case_study.cpp.o"
  "CMakeFiles/asrel_core.dir/case_study.cpp.o.d"
  "CMakeFiles/asrel_core.dir/link_features.cpp.o"
  "CMakeFiles/asrel_core.dir/link_features.cpp.o.d"
  "CMakeFiles/asrel_core.dir/looking_glass.cpp.o"
  "CMakeFiles/asrel_core.dir/looking_glass.cpp.o.d"
  "CMakeFiles/asrel_core.dir/peerlock.cpp.o"
  "CMakeFiles/asrel_core.dir/peerlock.cpp.o.d"
  "CMakeFiles/asrel_core.dir/scenario.cpp.o"
  "CMakeFiles/asrel_core.dir/scenario.cpp.o.d"
  "CMakeFiles/asrel_core.dir/spoof_guard.cpp.o"
  "CMakeFiles/asrel_core.dir/spoof_guard.cpp.o.d"
  "CMakeFiles/asrel_core.dir/v6_world.cpp.o"
  "CMakeFiles/asrel_core.dir/v6_world.cpp.o.d"
  "libasrel_core.a"
  "libasrel_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/asrel_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
