file(REMOVE_RECURSE
  "libasrel_core.a"
)
