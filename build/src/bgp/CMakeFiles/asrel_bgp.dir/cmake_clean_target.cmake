file(REMOVE_RECURSE
  "libasrel_bgp.a"
)
