file(REMOVE_RECURSE
  "CMakeFiles/asrel_bgp.dir/community.cpp.o"
  "CMakeFiles/asrel_bgp.dir/community.cpp.o.d"
  "CMakeFiles/asrel_bgp.dir/propagation.cpp.o"
  "CMakeFiles/asrel_bgp.dir/propagation.cpp.o.d"
  "CMakeFiles/asrel_bgp.dir/vantage.cpp.o"
  "CMakeFiles/asrel_bgp.dir/vantage.cpp.o.d"
  "libasrel_bgp.a"
  "libasrel_bgp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/asrel_bgp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
