# Empty dependencies file for asrel_bgp.
# This may be replaced when dependencies are built.
