
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bgp/community.cpp" "src/bgp/CMakeFiles/asrel_bgp.dir/community.cpp.o" "gcc" "src/bgp/CMakeFiles/asrel_bgp.dir/community.cpp.o.d"
  "/root/repo/src/bgp/propagation.cpp" "src/bgp/CMakeFiles/asrel_bgp.dir/propagation.cpp.o" "gcc" "src/bgp/CMakeFiles/asrel_bgp.dir/propagation.cpp.o.d"
  "/root/repo/src/bgp/vantage.cpp" "src/bgp/CMakeFiles/asrel_bgp.dir/vantage.cpp.o" "gcc" "src/bgp/CMakeFiles/asrel_bgp.dir/vantage.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/topology/CMakeFiles/asrel_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/rir/CMakeFiles/asrel_rir.dir/DependInfo.cmake"
  "/root/repo/build/src/netbase/CMakeFiles/asrel_netbase.dir/DependInfo.cmake"
  "/root/repo/build/src/org/CMakeFiles/asrel_org.dir/DependInfo.cmake"
  "/root/repo/build/src/asn/CMakeFiles/asrel_asn.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
