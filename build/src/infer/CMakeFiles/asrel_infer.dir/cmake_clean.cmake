file(REMOVE_RECURSE
  "CMakeFiles/asrel_infer.dir/asrank.cpp.o"
  "CMakeFiles/asrel_infer.dir/asrank.cpp.o.d"
  "CMakeFiles/asrel_infer.dir/clique.cpp.o"
  "CMakeFiles/asrel_infer.dir/clique.cpp.o.d"
  "CMakeFiles/asrel_infer.dir/complex.cpp.o"
  "CMakeFiles/asrel_infer.dir/complex.cpp.o.d"
  "CMakeFiles/asrel_infer.dir/gao.cpp.o"
  "CMakeFiles/asrel_infer.dir/gao.cpp.o.d"
  "CMakeFiles/asrel_infer.dir/inference.cpp.o"
  "CMakeFiles/asrel_infer.dir/inference.cpp.o.d"
  "CMakeFiles/asrel_infer.dir/observed.cpp.o"
  "CMakeFiles/asrel_infer.dir/observed.cpp.o.d"
  "CMakeFiles/asrel_infer.dir/problink.cpp.o"
  "CMakeFiles/asrel_infer.dir/problink.cpp.o.d"
  "CMakeFiles/asrel_infer.dir/toposcope.cpp.o"
  "CMakeFiles/asrel_infer.dir/toposcope.cpp.o.d"
  "libasrel_infer.a"
  "libasrel_infer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/asrel_infer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
