file(REMOVE_RECURSE
  "libasrel_infer.a"
)
