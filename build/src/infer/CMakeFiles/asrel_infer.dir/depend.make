# Empty dependencies file for asrel_infer.
# This may be replaced when dependencies are built.
