
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/infer/asrank.cpp" "src/infer/CMakeFiles/asrel_infer.dir/asrank.cpp.o" "gcc" "src/infer/CMakeFiles/asrel_infer.dir/asrank.cpp.o.d"
  "/root/repo/src/infer/clique.cpp" "src/infer/CMakeFiles/asrel_infer.dir/clique.cpp.o" "gcc" "src/infer/CMakeFiles/asrel_infer.dir/clique.cpp.o.d"
  "/root/repo/src/infer/complex.cpp" "src/infer/CMakeFiles/asrel_infer.dir/complex.cpp.o" "gcc" "src/infer/CMakeFiles/asrel_infer.dir/complex.cpp.o.d"
  "/root/repo/src/infer/gao.cpp" "src/infer/CMakeFiles/asrel_infer.dir/gao.cpp.o" "gcc" "src/infer/CMakeFiles/asrel_infer.dir/gao.cpp.o.d"
  "/root/repo/src/infer/inference.cpp" "src/infer/CMakeFiles/asrel_infer.dir/inference.cpp.o" "gcc" "src/infer/CMakeFiles/asrel_infer.dir/inference.cpp.o.d"
  "/root/repo/src/infer/observed.cpp" "src/infer/CMakeFiles/asrel_infer.dir/observed.cpp.o" "gcc" "src/infer/CMakeFiles/asrel_infer.dir/observed.cpp.o.d"
  "/root/repo/src/infer/problink.cpp" "src/infer/CMakeFiles/asrel_infer.dir/problink.cpp.o" "gcc" "src/infer/CMakeFiles/asrel_infer.dir/problink.cpp.o.d"
  "/root/repo/src/infer/toposcope.cpp" "src/infer/CMakeFiles/asrel_infer.dir/toposcope.cpp.o" "gcc" "src/infer/CMakeFiles/asrel_infer.dir/toposcope.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/bgp/CMakeFiles/asrel_bgp.dir/DependInfo.cmake"
  "/root/repo/build/src/validation/CMakeFiles/asrel_validation.dir/DependInfo.cmake"
  "/root/repo/build/src/rpsl/CMakeFiles/asrel_rpsl.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/asrel_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/rir/CMakeFiles/asrel_rir.dir/DependInfo.cmake"
  "/root/repo/build/src/netbase/CMakeFiles/asrel_netbase.dir/DependInfo.cmake"
  "/root/repo/build/src/org/CMakeFiles/asrel_org.dir/DependInfo.cmake"
  "/root/repo/build/src/asn/CMakeFiles/asrel_asn.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
