# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("asn")
subdirs("netbase")
subdirs("rir")
subdirs("org")
subdirs("topology")
subdirs("bgp")
subdirs("rpsl")
subdirs("validation")
subdirs("infer")
subdirs("eval")
subdirs("io")
subdirs("core")
