file(REMOVE_RECURSE
  "CMakeFiles/asrel_eval.dir/coverage.cpp.o"
  "CMakeFiles/asrel_eval.dir/coverage.cpp.o.d"
  "CMakeFiles/asrel_eval.dir/heatmap.cpp.o"
  "CMakeFiles/asrel_eval.dir/heatmap.cpp.o.d"
  "CMakeFiles/asrel_eval.dir/link_class.cpp.o"
  "CMakeFiles/asrel_eval.dir/link_class.cpp.o.d"
  "CMakeFiles/asrel_eval.dir/ppdc.cpp.o"
  "CMakeFiles/asrel_eval.dir/ppdc.cpp.o.d"
  "CMakeFiles/asrel_eval.dir/report.cpp.o"
  "CMakeFiles/asrel_eval.dir/report.cpp.o.d"
  "CMakeFiles/asrel_eval.dir/sampling.cpp.o"
  "CMakeFiles/asrel_eval.dir/sampling.cpp.o.d"
  "libasrel_eval.a"
  "libasrel_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/asrel_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
