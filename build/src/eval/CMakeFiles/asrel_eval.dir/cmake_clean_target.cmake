file(REMOVE_RECURSE
  "libasrel_eval.a"
)
