# Empty compiler generated dependencies file for asrel_eval.
# This may be replaced when dependencies are built.
