# Empty compiler generated dependencies file for asrel_netbase.
# This may be replaced when dependencies are built.
