file(REMOVE_RECURSE
  "libasrel_netbase.a"
)
