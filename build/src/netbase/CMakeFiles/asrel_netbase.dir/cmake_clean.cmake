file(REMOVE_RECURSE
  "CMakeFiles/asrel_netbase.dir/ip.cpp.o"
  "CMakeFiles/asrel_netbase.dir/ip.cpp.o.d"
  "libasrel_netbase.a"
  "libasrel_netbase.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/asrel_netbase.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
