# Empty compiler generated dependencies file for asrel_validation.
# This may be replaced when dependencies are built.
