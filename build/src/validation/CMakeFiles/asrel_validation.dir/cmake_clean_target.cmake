file(REMOVE_RECURSE
  "libasrel_validation.a"
)
