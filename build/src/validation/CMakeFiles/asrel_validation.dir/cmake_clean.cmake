file(REMOVE_RECURSE
  "CMakeFiles/asrel_validation.dir/cleaner.cpp.o"
  "CMakeFiles/asrel_validation.dir/cleaner.cpp.o.d"
  "CMakeFiles/asrel_validation.dir/extract.cpp.o"
  "CMakeFiles/asrel_validation.dir/extract.cpp.o.d"
  "CMakeFiles/asrel_validation.dir/label.cpp.o"
  "CMakeFiles/asrel_validation.dir/label.cpp.o.d"
  "CMakeFiles/asrel_validation.dir/scheme.cpp.o"
  "CMakeFiles/asrel_validation.dir/scheme.cpp.o.d"
  "CMakeFiles/asrel_validation.dir/sources.cpp.o"
  "CMakeFiles/asrel_validation.dir/sources.cpp.o.d"
  "libasrel_validation.a"
  "libasrel_validation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/asrel_validation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
