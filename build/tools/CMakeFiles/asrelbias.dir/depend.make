# Empty dependencies file for asrelbias.
# This may be replaced when dependencies are built.
