file(REMOVE_RECURSE
  "CMakeFiles/asrelbias.dir/asrelbias.cpp.o"
  "CMakeFiles/asrelbias.dir/asrelbias.cpp.o.d"
  "asrelbias"
  "asrelbias.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/asrelbias.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
