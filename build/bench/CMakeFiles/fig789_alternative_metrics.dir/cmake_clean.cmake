file(REMOVE_RECURSE
  "CMakeFiles/fig789_alternative_metrics.dir/fig789_alternative_metrics.cpp.o"
  "CMakeFiles/fig789_alternative_metrics.dir/fig789_alternative_metrics.cpp.o.d"
  "fig789_alternative_metrics"
  "fig789_alternative_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig789_alternative_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
