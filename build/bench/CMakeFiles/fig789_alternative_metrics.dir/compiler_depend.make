# Empty compiler generated dependencies file for fig789_alternative_metrics.
# This may be replaced when dependencies are built.
