file(REMOVE_RECURSE
  "CMakeFiles/fig1_regional_imbalance.dir/fig1_regional_imbalance.cpp.o"
  "CMakeFiles/fig1_regional_imbalance.dir/fig1_regional_imbalance.cpp.o.d"
  "fig1_regional_imbalance"
  "fig1_regional_imbalance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_regional_imbalance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
