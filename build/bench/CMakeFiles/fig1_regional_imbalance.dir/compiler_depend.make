# Empty compiler generated dependencies file for fig1_regional_imbalance.
# This may be replaced when dependencies are built.
