
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/label_cleaning_census.cpp" "bench/CMakeFiles/label_cleaning_census.dir/label_cleaning_census.cpp.o" "gcc" "bench/CMakeFiles/label_cleaning_census.dir/label_cleaning_census.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/asrel_core.dir/DependInfo.cmake"
  "/root/repo/build/src/eval/CMakeFiles/asrel_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/io/CMakeFiles/asrel_io.dir/DependInfo.cmake"
  "/root/repo/build/src/infer/CMakeFiles/asrel_infer.dir/DependInfo.cmake"
  "/root/repo/build/src/validation/CMakeFiles/asrel_validation.dir/DependInfo.cmake"
  "/root/repo/build/src/bgp/CMakeFiles/asrel_bgp.dir/DependInfo.cmake"
  "/root/repo/build/src/rpsl/CMakeFiles/asrel_rpsl.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/asrel_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/rir/CMakeFiles/asrel_rir.dir/DependInfo.cmake"
  "/root/repo/build/src/netbase/CMakeFiles/asrel_netbase.dir/DependInfo.cmake"
  "/root/repo/build/src/org/CMakeFiles/asrel_org.dir/DependInfo.cmake"
  "/root/repo/build/src/asn/CMakeFiles/asrel_asn.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
