# Empty dependencies file for label_cleaning_census.
# This may be replaced when dependencies are built.
