file(REMOVE_RECURSE
  "CMakeFiles/label_cleaning_census.dir/label_cleaning_census.cpp.o"
  "CMakeFiles/label_cleaning_census.dir/label_cleaning_census.cpp.o.d"
  "label_cleaning_census"
  "label_cleaning_census.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/label_cleaning_census.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
