file(REMOVE_RECURSE
  "CMakeFiles/ablation_bias_knobs.dir/ablation_bias_knobs.cpp.o"
  "CMakeFiles/ablation_bias_knobs.dir/ablation_bias_knobs.cpp.o.d"
  "ablation_bias_knobs"
  "ablation_bias_knobs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_bias_knobs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
