# Empty dependencies file for table2_problink.
# This may be replaced when dependencies are built.
