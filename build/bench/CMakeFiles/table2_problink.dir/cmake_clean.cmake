file(REMOVE_RECURSE
  "CMakeFiles/table2_problink.dir/table2_problink.cpp.o"
  "CMakeFiles/table2_problink.dir/table2_problink.cpp.o.d"
  "table2_problink"
  "table2_problink.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_problink.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
