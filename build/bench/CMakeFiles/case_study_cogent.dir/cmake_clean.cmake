file(REMOVE_RECURSE
  "CMakeFiles/case_study_cogent.dir/case_study_cogent.cpp.o"
  "CMakeFiles/case_study_cogent.dir/case_study_cogent.cpp.o.d"
  "case_study_cogent"
  "case_study_cogent.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/case_study_cogent.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
