# Empty dependencies file for case_study_cogent.
# This may be replaced when dependencies are built.
