file(REMOVE_RECURSE
  "CMakeFiles/table1_asrank.dir/table1_asrank.cpp.o"
  "CMakeFiles/table1_asrank.dir/table1_asrank.cpp.o.d"
  "table1_asrank"
  "table1_asrank.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_asrank.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
