# Empty dependencies file for table1_asrank.
# This may be replaced when dependencies are built.
