file(REMOVE_RECURSE
  "CMakeFiles/fig2_topological_imbalance.dir/fig2_topological_imbalance.cpp.o"
  "CMakeFiles/fig2_topological_imbalance.dir/fig2_topological_imbalance.cpp.o.d"
  "fig2_topological_imbalance"
  "fig2_topological_imbalance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_topological_imbalance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
