# Empty compiler generated dependencies file for fig3_transit_degree_heatmap.
# This may be replaced when dependencies are built.
