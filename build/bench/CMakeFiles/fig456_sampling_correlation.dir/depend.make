# Empty dependencies file for fig456_sampling_correlation.
# This may be replaced when dependencies are built.
