file(REMOVE_RECURSE
  "CMakeFiles/fig456_sampling_correlation.dir/fig456_sampling_correlation.cpp.o"
  "CMakeFiles/fig456_sampling_correlation.dir/fig456_sampling_correlation.cpp.o.d"
  "fig456_sampling_correlation"
  "fig456_sampling_correlation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig456_sampling_correlation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
