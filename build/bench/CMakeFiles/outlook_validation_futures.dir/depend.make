# Empty dependencies file for outlook_validation_futures.
# This may be replaced when dependencies are built.
