file(REMOVE_RECURSE
  "CMakeFiles/outlook_validation_futures.dir/outlook_validation_futures.cpp.o"
  "CMakeFiles/outlook_validation_futures.dir/outlook_validation_futures.cpp.o.d"
  "outlook_validation_futures"
  "outlook_validation_futures.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/outlook_validation_futures.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
