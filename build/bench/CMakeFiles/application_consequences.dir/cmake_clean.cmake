file(REMOVE_RECURSE
  "CMakeFiles/application_consequences.dir/application_consequences.cpp.o"
  "CMakeFiles/application_consequences.dir/application_consequences.cpp.o.d"
  "application_consequences"
  "application_consequences.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/application_consequences.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
