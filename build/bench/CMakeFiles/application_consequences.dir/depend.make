# Empty dependencies file for application_consequences.
# This may be replaced when dependencies are built.
