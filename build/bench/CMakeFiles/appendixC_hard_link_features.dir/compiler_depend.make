# Empty compiler generated dependencies file for appendixC_hard_link_features.
# This may be replaced when dependencies are built.
