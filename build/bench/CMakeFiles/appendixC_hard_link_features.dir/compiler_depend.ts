# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for appendixC_hard_link_features.
