file(REMOVE_RECURSE
  "CMakeFiles/appendixC_hard_link_features.dir/appendixC_hard_link_features.cpp.o"
  "CMakeFiles/appendixC_hard_link_features.dir/appendixC_hard_link_features.cpp.o.d"
  "appendixC_hard_link_features"
  "appendixC_hard_link_features.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/appendixC_hard_link_features.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
