# Empty dependencies file for table3_toposcope.
# This may be replaced when dependencies are built.
