file(REMOVE_RECURSE
  "CMakeFiles/table3_toposcope.dir/table3_toposcope.cpp.o"
  "CMakeFiles/table3_toposcope.dir/table3_toposcope.cpp.o.d"
  "table3_toposcope"
  "table3_toposcope.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_toposcope.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
