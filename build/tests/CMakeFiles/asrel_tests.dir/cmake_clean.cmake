file(REMOVE_RECURSE
  "CMakeFiles/asrel_tests.dir/test_applications.cpp.o"
  "CMakeFiles/asrel_tests.dir/test_applications.cpp.o.d"
  "CMakeFiles/asrel_tests.dir/test_asn.cpp.o"
  "CMakeFiles/asrel_tests.dir/test_asn.cpp.o.d"
  "CMakeFiles/asrel_tests.dir/test_bgp.cpp.o"
  "CMakeFiles/asrel_tests.dir/test_bgp.cpp.o.d"
  "CMakeFiles/asrel_tests.dir/test_core.cpp.o"
  "CMakeFiles/asrel_tests.dir/test_core.cpp.o.d"
  "CMakeFiles/asrel_tests.dir/test_eval.cpp.o"
  "CMakeFiles/asrel_tests.dir/test_eval.cpp.o.d"
  "CMakeFiles/asrel_tests.dir/test_extensions.cpp.o"
  "CMakeFiles/asrel_tests.dir/test_extensions.cpp.o.d"
  "CMakeFiles/asrel_tests.dir/test_infer.cpp.o"
  "CMakeFiles/asrel_tests.dir/test_infer.cpp.o.d"
  "CMakeFiles/asrel_tests.dir/test_micro_scenarios.cpp.o"
  "CMakeFiles/asrel_tests.dir/test_micro_scenarios.cpp.o.d"
  "CMakeFiles/asrel_tests.dir/test_netbase.cpp.o"
  "CMakeFiles/asrel_tests.dir/test_netbase.cpp.o.d"
  "CMakeFiles/asrel_tests.dir/test_org_rpsl.cpp.o"
  "CMakeFiles/asrel_tests.dir/test_org_rpsl.cpp.o.d"
  "CMakeFiles/asrel_tests.dir/test_properties.cpp.o"
  "CMakeFiles/asrel_tests.dir/test_properties.cpp.o.d"
  "CMakeFiles/asrel_tests.dir/test_rir.cpp.o"
  "CMakeFiles/asrel_tests.dir/test_rir.cpp.o.d"
  "CMakeFiles/asrel_tests.dir/test_topology.cpp.o"
  "CMakeFiles/asrel_tests.dir/test_topology.cpp.o.d"
  "CMakeFiles/asrel_tests.dir/test_validation.cpp.o"
  "CMakeFiles/asrel_tests.dir/test_validation.cpp.o.d"
  "asrel_tests"
  "asrel_tests.pdb"
  "asrel_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/asrel_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
