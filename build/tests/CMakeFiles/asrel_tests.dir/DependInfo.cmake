
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_applications.cpp" "tests/CMakeFiles/asrel_tests.dir/test_applications.cpp.o" "gcc" "tests/CMakeFiles/asrel_tests.dir/test_applications.cpp.o.d"
  "/root/repo/tests/test_asn.cpp" "tests/CMakeFiles/asrel_tests.dir/test_asn.cpp.o" "gcc" "tests/CMakeFiles/asrel_tests.dir/test_asn.cpp.o.d"
  "/root/repo/tests/test_bgp.cpp" "tests/CMakeFiles/asrel_tests.dir/test_bgp.cpp.o" "gcc" "tests/CMakeFiles/asrel_tests.dir/test_bgp.cpp.o.d"
  "/root/repo/tests/test_core.cpp" "tests/CMakeFiles/asrel_tests.dir/test_core.cpp.o" "gcc" "tests/CMakeFiles/asrel_tests.dir/test_core.cpp.o.d"
  "/root/repo/tests/test_eval.cpp" "tests/CMakeFiles/asrel_tests.dir/test_eval.cpp.o" "gcc" "tests/CMakeFiles/asrel_tests.dir/test_eval.cpp.o.d"
  "/root/repo/tests/test_extensions.cpp" "tests/CMakeFiles/asrel_tests.dir/test_extensions.cpp.o" "gcc" "tests/CMakeFiles/asrel_tests.dir/test_extensions.cpp.o.d"
  "/root/repo/tests/test_infer.cpp" "tests/CMakeFiles/asrel_tests.dir/test_infer.cpp.o" "gcc" "tests/CMakeFiles/asrel_tests.dir/test_infer.cpp.o.d"
  "/root/repo/tests/test_micro_scenarios.cpp" "tests/CMakeFiles/asrel_tests.dir/test_micro_scenarios.cpp.o" "gcc" "tests/CMakeFiles/asrel_tests.dir/test_micro_scenarios.cpp.o.d"
  "/root/repo/tests/test_netbase.cpp" "tests/CMakeFiles/asrel_tests.dir/test_netbase.cpp.o" "gcc" "tests/CMakeFiles/asrel_tests.dir/test_netbase.cpp.o.d"
  "/root/repo/tests/test_org_rpsl.cpp" "tests/CMakeFiles/asrel_tests.dir/test_org_rpsl.cpp.o" "gcc" "tests/CMakeFiles/asrel_tests.dir/test_org_rpsl.cpp.o.d"
  "/root/repo/tests/test_properties.cpp" "tests/CMakeFiles/asrel_tests.dir/test_properties.cpp.o" "gcc" "tests/CMakeFiles/asrel_tests.dir/test_properties.cpp.o.d"
  "/root/repo/tests/test_rir.cpp" "tests/CMakeFiles/asrel_tests.dir/test_rir.cpp.o" "gcc" "tests/CMakeFiles/asrel_tests.dir/test_rir.cpp.o.d"
  "/root/repo/tests/test_topology.cpp" "tests/CMakeFiles/asrel_tests.dir/test_topology.cpp.o" "gcc" "tests/CMakeFiles/asrel_tests.dir/test_topology.cpp.o.d"
  "/root/repo/tests/test_validation.cpp" "tests/CMakeFiles/asrel_tests.dir/test_validation.cpp.o" "gcc" "tests/CMakeFiles/asrel_tests.dir/test_validation.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/asrel_core.dir/DependInfo.cmake"
  "/root/repo/build/src/eval/CMakeFiles/asrel_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/io/CMakeFiles/asrel_io.dir/DependInfo.cmake"
  "/root/repo/build/src/infer/CMakeFiles/asrel_infer.dir/DependInfo.cmake"
  "/root/repo/build/src/validation/CMakeFiles/asrel_validation.dir/DependInfo.cmake"
  "/root/repo/build/src/bgp/CMakeFiles/asrel_bgp.dir/DependInfo.cmake"
  "/root/repo/build/src/rpsl/CMakeFiles/asrel_rpsl.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/asrel_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/rir/CMakeFiles/asrel_rir.dir/DependInfo.cmake"
  "/root/repo/build/src/netbase/CMakeFiles/asrel_netbase.dir/DependInfo.cmake"
  "/root/repo/build/src/org/CMakeFiles/asrel_org.dir/DependInfo.cmake"
  "/root/repo/build/src/asn/CMakeFiles/asrel_asn.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
