# Empty dependencies file for asrel_tests.
# This may be replaced when dependencies are built.
