// asrel_stream — offline driver for the streaming pipeline.
//
//   asrel_stream --as-count N --seed S --events N [--churn-seed S]
//                [--batch K] [--threads T] [--emit-churn FILE]
//                [--save FILE] [--verify]
//       Bootstrap a streaming session, generate a seeded churn feed, apply
//       it in batches of K events (publishing an epoch per batch), and
//       report per-event/per-epoch timings plus incremental-vs-full cost.
//
//   asrel_stream --as-count N --seed S --replay FILE [--batch K] ...
//       Same, but the events come from a replay file (see
//       src/stream/churn.hpp for the line format).
//
// --verify byte-compares every published epoch against a from-scratch
// rebuild of the same world — the invariant the metamorphic suite pins —
// and exits nonzero on the first divergence.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "io/snapshot.hpp"
#include "stream/churn.hpp"
#include "stream/session.hpp"

namespace {

using namespace asrel;

struct Args {
  int as_count = 2500;
  std::uint64_t seed = 42;
  int events = 0;
  std::uint64_t churn_seed = 1;
  int batch = 20;
  int threads = 0;
  std::string replay;
  std::string emit_churn;
  std::string save;
  bool verify = false;
};

int usage() {
  std::fprintf(
      stderr,
      "usage:\n"
      "  asrel_stream --as-count N --seed S --events N [--churn-seed S]\n"
      "               [--batch K] [--threads T] [--emit-churn FILE]\n"
      "               [--save FILE] [--verify]\n"
      "  asrel_stream --as-count N --seed S --replay FILE [--batch K] ...\n");
  return 2;
}

std::optional<Args> parse_args(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    const std::string_view flag = argv[i];
    if (flag == "--verify") {
      args.verify = true;
      continue;
    }
    if (i + 1 >= argc) return std::nullopt;
    const char* value = argv[++i];
    if (flag == "--as-count") {
      args.as_count = std::atoi(value);
    } else if (flag == "--seed") {
      args.seed = std::strtoull(value, nullptr, 10);
    } else if (flag == "--events") {
      args.events = std::atoi(value);
    } else if (flag == "--churn-seed") {
      args.churn_seed = std::strtoull(value, nullptr, 10);
    } else if (flag == "--batch") {
      args.batch = std::atoi(value);
    } else if (flag == "--threads") {
      args.threads = std::atoi(value);
    } else if (flag == "--replay") {
      args.replay = value;
    } else if (flag == "--emit-churn") {
      args.emit_churn = value;
    } else if (flag == "--save") {
      args.save = value;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", argv[i - 1]);
      return std::nullopt;
    }
  }
  if (args.batch < 1) args.batch = 1;
  if ((args.events > 0) == !args.replay.empty()) return std::nullopt;
  return args;
}

double ms_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = parse_args(argc, argv);
  if (!args) return usage();

  std::fprintf(stderr, "bootstrapping session (%d ASes, seed %llu)...\n",
               args->as_count, static_cast<unsigned long long>(args->seed));
  core::ScenarioParams params;
  params.topology.as_count = args->as_count;
  params.topology.seed = args->seed;
  params.threads = static_cast<unsigned>(args->threads < 0 ? 0
                                                           : args->threads);
  const auto bootstrap_started = std::chrono::steady_clock::now();
  stream::StreamSession session{params};
  const double bootstrap_ms = ms_since(bootstrap_started);
  std::fprintf(stderr, "bootstrap (full pipeline) took %.1f ms\n",
               bootstrap_ms);

  std::vector<stream::ChurnEvent> events;
  if (!args->replay.empty()) {
    std::ifstream in{args->replay};
    if (!in) {
      std::fprintf(stderr, "error: cannot open %s\n", args->replay.c_str());
      return 1;
    }
    std::ostringstream text;
    text << in.rdbuf();
    std::string error;
    events = stream::parse_churn_text(text.str(), &error);
    if (events.empty() && !error.empty()) {
      std::fprintf(stderr, "error parsing %s: %s\n", args->replay.c_str(),
                   error.c_str());
      return 1;
    }
    std::fprintf(stderr, "replaying %zu events from %s\n", events.size(),
                 args->replay.c_str());
  } else {
    events = stream::generate_churn(session.world(), args->churn_seed,
                                    static_cast<std::size_t>(args->events));
    std::fprintf(stderr, "generated %zu events (churn seed %llu)\n",
                 events.size(),
                 static_cast<unsigned long long>(args->churn_seed));
  }
  if (!args->emit_churn.empty()) {
    std::ofstream out{args->emit_churn};
    out << stream::to_churn_text(events);
    if (!out) {
      std::fprintf(stderr, "error: cannot write %s\n",
                   args->emit_churn.c_str());
      return 1;
    }
    std::fprintf(stderr, "churn feed written to %s\n",
                 args->emit_churn.c_str());
  }

  double apply_ms = 0;
  double publish_ms = 0;
  std::uint64_t built = 1;  // deterministic stamps so --verify can compare
  for (std::size_t i = 0; i < events.size();) {
    const std::size_t end =
        std::min(events.size(), i + static_cast<std::size_t>(args->batch));
    const auto apply_started = std::chrono::steady_clock::now();
    for (; i < end; ++i) session.apply(events[i]);
    apply_ms += ms_since(apply_started);

    const auto publish_started = std::chrono::steady_clock::now();
    const io::Snapshot& snapshot = session.publish(++built);
    publish_ms += ms_since(publish_started);

    if (args->verify) {
      const std::string incremental = io::to_snapshot_bytes(snapshot);
      const std::string reference =
          io::to_snapshot_bytes(session.reference_snapshot(built));
      if (incremental != reference) {
        std::fprintf(stderr,
                     "VERIFY FAILED: epoch %llu diverged from the "
                     "from-scratch rebuild after %zu events\n",
                     static_cast<unsigned long long>(session.epoch()), i);
        return 1;
      }
      std::fprintf(stderr, "epoch %llu verified (%zu bytes)\n",
                   static_cast<unsigned long long>(session.epoch()),
                   incremental.size());
    }
  }

  const auto& stats = session.stats();
  const std::size_t processed = events.size();
  std::fprintf(
      stderr,
      "processed %zu events (%llu applied, %llu no-ops) across %llu "
      "epochs\n"
      "origins re-converged: %llu, proven clean: %llu\n"
      "apply total %.1f ms (%.3f ms/event), publish total %.1f ms\n",
      processed, static_cast<unsigned long long>(stats.events_applied),
      static_cast<unsigned long long>(stats.events_noop),
      static_cast<unsigned long long>(stats.epochs_published),
      static_cast<unsigned long long>(stats.origins_redone),
      static_cast<unsigned long long>(stats.origins_skipped), apply_ms,
      processed == 0 ? 0.0 : apply_ms / static_cast<double>(processed),
      publish_ms);
  if (processed != 0) {
    const double per_event =
        (apply_ms + publish_ms) / static_cast<double>(processed);
    std::fprintf(stderr,
                 "incremental cost %.3f ms/event vs %.1f ms full pipeline "
                 "(%.1fx cheaper)\n",
                 per_event, bootstrap_ms,
                 per_event == 0 ? 0.0 : bootstrap_ms / per_event);
  }

  if (!args->save.empty()) {
    std::string error;
    if (!io::save_snapshot_file(session.snapshot(), args->save, &error)) {
      std::fprintf(stderr, "error: %s\n", error.c_str());
      return 1;
    }
    std::fprintf(stderr, "final snapshot (epoch %llu) saved to %s\n",
                 static_cast<unsigned long long>(session.epoch()),
                 args->save.c_str());
  }
  if (args->verify) std::fprintf(stderr, "all epochs verified\n");
  return 0;
}
