// asrel_stream — offline driver for the streaming pipeline.
//
//   asrel_stream --as-count N --seed S --events N [--churn-seed S]
//                [--batch K] [--threads T] [--emit-churn FILE]
//                [--save FILE] [--verify]
//       Bootstrap a streaming session, generate a seeded churn feed, apply
//       it in batches of K events (publishing an epoch per batch), and
//       report per-event/per-epoch timings plus incremental-vs-full cost.
//
//   asrel_stream --as-count N --seed S --replay FILE [--batch K] ...
//       Same, but the events come from a replay file (see
//       src/stream/churn.hpp for the line format).
//
// --verify byte-compares every published epoch against a from-scratch
// rebuild of the same world — the invariant the metamorphic suite pins —
// and exits nonzero on the first divergence.
//
// Resilience flags (DESIGN.md §14): --checkpoint-dir DIR resumes from the
// newest valid checkpoint there (falling back down the recovery ladder)
// and persists a checkpoint every --checkpoint-every epochs plus one on
// completion; --watchdog-every M runs the divergence watchdog every M
// epochs; --queue-cap/--queue-policy route the feed through the same
// bounded ingest queue the live server uses (a feeder thread pushes, the
// apply loop pops), so shed/coalesce semantics are exercisable offline.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "io/snapshot.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/log.hpp"
#include "stream/checkpoint.hpp"
#include "stream/churn.hpp"
#include "stream/ingest.hpp"
#include "stream/session.hpp"
#include "topology/generator.hpp"

namespace {

using namespace asrel;

struct Args {
  int as_count = 2500;
  std::uint64_t seed = 42;
  int events = 0;
  std::uint64_t churn_seed = 1;
  int batch = 20;
  int threads = 0;
  std::string replay;
  std::string emit_churn;
  std::string save;
  std::string checkpoint_dir;
  int checkpoint_every = 5;
  int watchdog_every = 0;
  int queue_cap = 1024;
  stream::QueuePolicy queue_policy = stream::QueuePolicy::kBlock;
  bool verify = false;
  int log_stderr = -1;    ///< stderr log sink level; -1 = off
  std::string crash_dir;  ///< arm the crash flight recorder here
};

int usage() {
  std::fprintf(
      stderr,
      "usage:\n"
      "  asrel_stream --as-count N --seed S --events N [--churn-seed S]\n"
      "               [--batch K] [--threads T] [--emit-churn FILE]\n"
      "               [--save FILE] [--verify]\n"
      "               [--checkpoint-dir DIR] [--checkpoint-every N]\n"
      "               [--watchdog-every M] [--queue-cap N]\n"
      "               [--queue-policy block|shed|coalesce]\n"
      "               [--log-stderr debug|info|warn|error] [--crash-dir DIR]\n"
      "  asrel_stream --as-count N --seed S --replay FILE [--batch K] ...\n");
  return 2;
}

std::optional<Args> parse_args(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    const std::string_view flag = argv[i];
    if (flag == "--verify") {
      args.verify = true;
      continue;
    }
    if (i + 1 >= argc) return std::nullopt;
    const char* value = argv[++i];
    if (flag == "--as-count") {
      args.as_count = std::atoi(value);
    } else if (flag == "--seed") {
      args.seed = std::strtoull(value, nullptr, 10);
    } else if (flag == "--events") {
      args.events = std::atoi(value);
    } else if (flag == "--churn-seed") {
      args.churn_seed = std::strtoull(value, nullptr, 10);
    } else if (flag == "--batch") {
      args.batch = std::atoi(value);
    } else if (flag == "--threads") {
      args.threads = std::atoi(value);
    } else if (flag == "--replay") {
      args.replay = value;
    } else if (flag == "--emit-churn") {
      args.emit_churn = value;
    } else if (flag == "--save") {
      args.save = value;
    } else if (flag == "--checkpoint-dir") {
      args.checkpoint_dir = value;
    } else if (flag == "--checkpoint-every") {
      args.checkpoint_every = std::atoi(value);
    } else if (flag == "--watchdog-every") {
      args.watchdog_every = std::atoi(value);
    } else if (flag == "--queue-cap") {
      args.queue_cap = std::atoi(value);
    } else if (flag == "--queue-policy") {
      const auto policy = stream::parse_queue_policy(value);
      if (!policy) {
        std::fprintf(stderr, "unknown queue policy: %s\n", value);
        return std::nullopt;
      }
      args.queue_policy = *policy;
    } else if (flag == "--log-stderr") {
      const std::string_view name{value};
      args.log_stderr = name == "debug"  ? 0
                        : name == "info" ? 1
                        : name == "warn" ? 2
                        : name == "error" ? 3
                        : name == "off"   ? -1
                                          : -2;
      if (args.log_stderr == -2) {
        std::fprintf(stderr, "unknown log level: %s\n", value);
        return std::nullopt;
      }
    } else if (flag == "--crash-dir") {
      args.crash_dir = value;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", argv[i - 1]);
      return std::nullopt;
    }
  }
  if (args.batch < 1) args.batch = 1;
  if (args.checkpoint_every < 1) args.checkpoint_every = 1;
  if (args.queue_cap < 1) args.queue_cap = 1;
  if ((args.events > 0) == !args.replay.empty()) return std::nullopt;
  return args;
}

double ms_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = parse_args(argc, argv);
  if (!args) return usage();

  obs::EventLog::instance().set_stderr_level(args->log_stderr);
  auto& flight = obs::FlightRecorder::instance();
  if (!args->crash_dir.empty()) {
    obs::FlightRecorder::Config config;
    config.crash_dir = args->crash_dir;
    config.tool = "asrel_stream";
    config.build_info = __DATE__ " " __TIME__;
    std::string arm_error;
    if (!flight.arm(config, &arm_error)) {
      std::fprintf(stderr, "error arming crash recorder: %s\n",
                   arm_error.c_str());
      return 1;
    }
    std::fprintf(stderr, "crash recorder armed: %s\n",
                 flight.dump_path().c_str());
  }

  std::fprintf(stderr, "bootstrapping session (%d ASes, seed %llu)...\n",
               args->as_count, static_cast<unsigned long long>(args->seed));
  core::ScenarioParams params;
  params.topology.as_count = args->as_count;
  params.topology.seed = args->seed;
  params.threads = static_cast<unsigned>(args->threads < 0 ? 0
                                                           : args->threads);
  const auto bootstrap_started = std::chrono::steady_clock::now();
  std::unique_ptr<stream::StreamSession> session;
  std::optional<stream::CheckpointDir> checkpoint_dir;
  std::uint64_t resume_from = 0;
  if (!args->checkpoint_dir.empty()) {
    checkpoint_dir.emplace(args->checkpoint_dir);
    auto outcome = stream::recover_session(params, *checkpoint_dir);
    session = std::move(outcome.session);
    resume_from = outcome.feed_position;
    std::fprintf(stderr, "recovery: %s (%zu checkpoint(s) rejected)\n",
                 outcome.detail.c_str(), outcome.checkpoints_rejected);
  } else {
    session = std::make_unique<stream::StreamSession>(params);
  }
  const double bootstrap_ms = ms_since(bootstrap_started);
  std::fprintf(stderr, "bootstrap (full pipeline) took %.1f ms\n",
               bootstrap_ms);

  std::vector<stream::ChurnEvent> events;
  if (!args->replay.empty()) {
    std::ifstream in{args->replay};
    if (!in) {
      std::fprintf(stderr, "error: cannot open %s\n", args->replay.c_str());
      return 1;
    }
    std::ostringstream text;
    text << in.rdbuf();
    std::string error;
    events = stream::parse_churn_text(text.str(), &error);
    if (events.empty() && !error.empty()) {
      std::fprintf(stderr, "error parsing %s: %s\n", args->replay.c_str(),
                   error.c_str());
      return 1;
    }
    std::fprintf(stderr, "replaying %zu events from %s\n", events.size(),
                 args->replay.c_str());
  } else if (checkpoint_dir) {
    // A resumed session's world already reflects churn; the feed must be
    // generated from the pristine world so it matches the original run's.
    const topo::World pristine = topo::generate(params.topology);
    events = stream::generate_churn(pristine, args->churn_seed,
                                    static_cast<std::size_t>(args->events));
    std::fprintf(stderr, "generated %zu events (churn seed %llu)\n",
                 events.size(),
                 static_cast<unsigned long long>(args->churn_seed));
  } else {
    events = stream::generate_churn(session->world(), args->churn_seed,
                                    static_cast<std::size_t>(args->events));
    std::fprintf(stderr, "generated %zu events (churn seed %llu)\n",
                 events.size(),
                 static_cast<unsigned long long>(args->churn_seed));
  }
  if (!args->emit_churn.empty()) {
    std::ofstream out{args->emit_churn};
    out << stream::to_churn_text(events);
    if (!out) {
      std::fprintf(stderr, "error: cannot write %s\n",
                   args->emit_churn.c_str());
      return 1;
    }
    std::fprintf(stderr, "churn feed written to %s\n",
                 args->emit_churn.c_str());
  }

  double apply_ms = 0;
  double publish_ms = 0;
  // Deterministic stamps (built == epoch) so --verify can compare and a
  // resumed run publishes the same bytes a never-crashed one would.
  std::uint64_t built = session->epoch();
  std::uint64_t epochs_since_checkpoint = 0;
  if (resume_from > events.size()) resume_from = events.size();
  if (resume_from != 0) {
    std::fprintf(stderr, "resuming feed at event %llu\n",
                 static_cast<unsigned long long>(resume_from));
  }
  // Same shape as the live server: a feeder thread pushes the feed into
  // the bounded queue, the loop below pops up to --batch events per
  // epoch. Under kShed/kCoalesce a slow consumer loses or merges events
  // exactly as a live run would; the verify oracle still holds because
  // it compares the maintained snapshot against a rebuild of whatever
  // was actually applied.
  stream::EventQueue queue{static_cast<std::size_t>(args->queue_cap),
                           args->queue_policy};
  std::thread feeder{[&queue, &events, resume_from] {
    for (std::size_t seq = static_cast<std::size_t>(resume_from);
         seq < events.size(); ++seq) {
      queue.push({seq, events[seq]});
    }
    queue.close();
  }};
  std::uint64_t feed_position = resume_from;
  bool drained = false;
  while (!drained) {
    int in_batch = 0;
    const auto apply_started = std::chrono::steady_clock::now();
    while (in_batch < args->batch) {
      auto item = queue.pop();
      if (!item) {
        drained = true;
        break;
      }
      session->apply(item->event);
      feed_position = item->seq + 1;
      ++in_batch;
    }
    apply_ms += ms_since(apply_started);
    if (in_batch == 0) break;

    const auto publish_started = std::chrono::steady_clock::now();
    const io::Snapshot& snapshot = session->publish(++built);
    publish_ms += ms_since(publish_started);
    if (flight.armed()) {
      // One refresh per published epoch: the black box always carries the
      // epoch being served plus whatever the log/trace rings saw since.
      flight.set_epoch(session->epoch());
      flight.refresh();
    }

    if (args->verify) {
      const std::string incremental = io::to_snapshot_bytes(snapshot);
      const std::string reference =
          io::to_snapshot_bytes(session->reference_snapshot(built));
      if (incremental != reference) {
        std::fprintf(stderr,
                     "VERIFY FAILED: epoch %llu diverged from the "
                     "from-scratch rebuild at feed position %llu\n",
                     static_cast<unsigned long long>(session->epoch()),
                     static_cast<unsigned long long>(feed_position));
        feeder.join();
        return 1;
      }
      std::fprintf(stderr, "epoch %llu verified (%zu bytes)\n",
                   static_cast<unsigned long long>(session->epoch()),
                   incremental.size());
    }
    if (args->watchdog_every > 0 &&
        session->epoch() % static_cast<std::uint64_t>(args->watchdog_every) ==
            0) {
      const auto report = session->run_watchdog();
      if (report.diverged) {
        std::fprintf(stderr,
                     "watchdog: divergence in section '%s' at epoch %llu "
                     "(%s)\n",
                     report.first_diff_section.c_str(),
                     static_cast<unsigned long long>(session->epoch()),
                     report.healed ? "healed" : "NOT healed");
      }
    }
    if (checkpoint_dir &&
        ++epochs_since_checkpoint >=
            static_cast<std::uint64_t>(args->checkpoint_every)) {
      std::string error;
      if (checkpoint_dir->save(session->checkpoint(feed_position), &error)) {
        epochs_since_checkpoint = 0;
      } else {
        std::fprintf(stderr, "warning: checkpoint write failed: %s\n",
                     error.c_str());
      }
    }
  }
  feeder.join();
  if (checkpoint_dir) {
    // Graceful drain: persist the final state so a restart resumes past
    // the end of the feed instead of replaying the tail.
    std::string error;
    if (!checkpoint_dir->save(session->checkpoint(feed_position), &error)) {
      std::fprintf(stderr, "warning: final checkpoint failed: %s\n",
                   error.c_str());
    }
  }

  const auto& stats = session->stats();
  const auto queue_stats = queue.stats();
  const auto processed = static_cast<std::size_t>(queue_stats.popped);
  if (queue_stats.shed != 0 || queue_stats.coalesced != 0 ||
      queue_stats.blocked != 0) {
    std::fprintf(stderr,
                 "queue (%s, cap %zu): %llu pushed, %llu popped, "
                 "%llu shed, %llu coalesced, %llu blocked\n",
                 std::string{to_string(queue.policy())}.c_str(), queue.cap(),
                 static_cast<unsigned long long>(queue_stats.pushed),
                 static_cast<unsigned long long>(queue_stats.popped),
                 static_cast<unsigned long long>(queue_stats.shed),
                 static_cast<unsigned long long>(queue_stats.coalesced),
                 static_cast<unsigned long long>(queue_stats.blocked));
  }
  std::fprintf(
      stderr,
      "processed %zu events (%llu applied, %llu no-ops) across %llu "
      "epochs\n"
      "origins re-converged: %llu, proven clean: %llu\n"
      "apply total %.1f ms (%.3f ms/event), publish total %.1f ms\n",
      processed, static_cast<unsigned long long>(stats.events_applied),
      static_cast<unsigned long long>(stats.events_noop),
      static_cast<unsigned long long>(stats.epochs_published),
      static_cast<unsigned long long>(stats.origins_redone),
      static_cast<unsigned long long>(stats.origins_skipped), apply_ms,
      processed == 0 ? 0.0 : apply_ms / static_cast<double>(processed),
      publish_ms);
  if (processed != 0) {
    const double per_event =
        (apply_ms + publish_ms) / static_cast<double>(processed);
    std::fprintf(stderr,
                 "incremental cost %.3f ms/event vs %.1f ms full pipeline "
                 "(%.1fx cheaper)\n",
                 per_event, bootstrap_ms,
                 per_event == 0 ? 0.0 : bootstrap_ms / per_event);
  }

  if (!args->save.empty()) {
    std::string error;
    if (!io::save_snapshot_file(session->snapshot(), args->save, &error)) {
      std::fprintf(stderr, "error: %s\n", error.c_str());
      return 1;
    }
    std::fprintf(stderr, "final snapshot (epoch %llu) saved to %s\n",
                 static_cast<unsigned long long>(session->epoch()),
                 args->save.c_str());
  }
  if (args->verify) std::fprintf(stderr, "all epochs verified\n");
  return 0;
}
