// asrel_serve — always-on query daemon over a precomputed snapshot.
//
//   asrel_serve --snapshot FILE [--port P] [--threads N]
//       Load a snapshot from disk (milliseconds) and serve it.
//
//   asrel_serve --flat-snapshot FILE [--port P] [--threads N]
//       Serve a flat (v3) snapshot by mmap: open is microseconds, point
//       lookups read the mapped image directly, and SIGHUP / POST
//       /reloadz swap epochs without a parse or index build. Produce the
//       file with --save-flat.
//
//   asrel_serve --generate [--as-count N] [--seed S] [--save FILE]
//               [--port P] [--threads N]
//       Run the batch pipeline once (minutes at paper scale), optionally
//       persist the snapshot, then serve it.
//
//   asrel_serve --generate --stream-events N [--stream-interval-ms MS]
//               [--stream-batch K] [--churn-seed S] [--replay FILE] ...
//       Live mode: bootstrap a streaming session, then apply N generated
//       (or replayed) churn events in batches of K every MS milliseconds,
//       publishing a fresh epoch (atomic in-memory swap, zero dropped
//       requests) after each batch. When --save is set, each epoch is also
//       written to the file crash-safely, so SIGHUP reloads pick up the
//       latest epoch.
//
// Resilience (DESIGN.md §14, live mode only):
//   --checkpoint-dir DIR    resume from the newest valid checkpoint there
//                           (ladder: newest -> previous -> cold bootstrap)
//                           and persist one every --checkpoint-every epochs
//                           plus one on graceful drain
//   --watchdog-every M      byte-audit the served snapshot against a
//                           from-scratch rebuild every M epochs; on
//                           divergence, self-heal and republish
//   --queue-cap N           bounded ingest queue between the churn feeder
//   --queue-policy P        and the apply loop: block | shed | coalesce
//
// Operations:
//   SIGHUP          hot-reload the snapshot file (zero downtime; in-flight
//                   requests finish on the old epoch)
//   POST /reloadz   same swap over HTTP; answers the new epoch or the error
//   SIGINT/SIGTERM  graceful drain: stop accepting, finish in-flight
//                   connections within --drain-ms, then exit
//
// Observability:
//   --log-stderr LEVEL   mirror structured log events (JSON lines) at
//                        LEVEL and above to stderr (debug|info|warn|error;
//                        default off — the in-memory ring behind /logz is
//                        always on)
//   --crash-dir DIR      arm the crash flight recorder: on SIGSEGV /
//                        SIGABRT / SIGBUS write DIR/crash-<pid>.json (build
//                        info, served epoch, recent log events and spans,
//                        metrics snapshot), then re-raise
//
// Endpoints: /rel /as /links /report/{regional,topological} /report/table
// /snapshot /healthz /statsz /metricsz /tracez /logz /slowz — see
// src/serve/service.hpp.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <mutex>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/scenario.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/log.hpp"
#include "obs/trace.hpp"
#include "core/snapshot_builder.hpp"
#include "io/flat_snapshot.hpp"
#include "io/snapshot.hpp"
#include "serve/engine_hub.hpp"
#include "serve/http_server.hpp"
#include "serve/json.hpp"
#include "serve/service.hpp"
#include "stream/checkpoint.hpp"
#include "stream/churn.hpp"
#include "stream/ingest.hpp"
#include "stream/session.hpp"
#include "topology/generator.hpp"

namespace {

using namespace asrel;

struct Args {
  std::string snapshot;
  std::string flat_snapshot;  ///< serve an mmap'd v3 image
  bool generate = false;
  int as_count = 12000;
  std::uint64_t seed = 42;
  std::string save;
  std::string save_flat;  ///< also write the flat (v3) image here
  serve::ServeModel serve_model = serve::ServeModel::kEpoll;
  int port = 8642;
  int threads = 4;
  int timeout_ms = 5000;
  int deadline_ms = 10000;
  int drain_ms = 5000;
  int max_pending = 256;   ///< admission-queue bound (503 shed beyond it)
  bool trace = false;      ///< record server spans (served via /tracez)
  int log_stderr = -1;     ///< stderr log sink level; -1 = off
  std::string crash_dir;   ///< arm the crash flight recorder here

  // Live mode (--generate only): nonzero stream_events or --replay
  // enables it.
  int stream_events = 0;
  int stream_interval_ms = 1000;
  int stream_batch = 10;
  std::uint64_t churn_seed = 1;
  std::string replay;

  // Live-mode resilience.
  std::string checkpoint_dir;
  int checkpoint_every = 5;
  int watchdog_every = 0;
  int queue_cap = 1024;
  stream::QueuePolicy queue_policy = stream::QueuePolicy::kBlock;
};

int usage() {
  std::fprintf(
      stderr,
      "usage:\n"
      "  asrel_serve --snapshot FILE [--port P] [--threads N]\n"
      "              [--timeout-ms MS] [--deadline-ms MS] [--drain-ms MS]\n"
      "              [--max-pending N] [--trace]\n"
      "              [--log-stderr debug|info|warn|error] [--crash-dir DIR]\n"
      "              [--serve-model epoll|threadpool] [--save-flat FILE]\n"
      "  asrel_serve --flat-snapshot FILE [--port P] [--threads N]\n"
      "  asrel_serve --generate [--as-count N] [--seed S] [--save FILE]\n"
      "              [--save-flat FILE] [--port P] [--threads N]\n"
      "  asrel_serve --generate --stream-events N [--stream-interval-ms MS]\n"
      "              [--stream-batch K] [--churn-seed S] [--replay FILE]\n"
      "              [--checkpoint-dir DIR] [--checkpoint-every N]\n"
      "              [--watchdog-every M] [--queue-cap N]\n"
      "              [--queue-policy block|shed|coalesce] ...\n"
      "signals: SIGHUP = hot snapshot reload, SIGINT/SIGTERM = drain+exit\n");
  return 2;
}

/// Maps a level name to the EventLog stderr threshold; -2 = unknown.
int parse_log_level(std::string_view name) {
  if (name == "debug") return 0;
  if (name == "info") return 1;
  if (name == "warn") return 2;
  if (name == "error") return 3;
  if (name == "off") return -1;
  return -2;
}

std::optional<Args> parse_args(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    const std::string_view flag = argv[i];
    if (flag == "--generate") {
      args.generate = true;
      continue;
    }
    if (flag == "--trace") {
      args.trace = true;
      continue;
    }
    if (i + 1 >= argc) return std::nullopt;
    const char* value = argv[++i];
    if (flag == "--snapshot") {
      args.snapshot = value;
    } else if (flag == "--flat-snapshot") {
      args.flat_snapshot = value;
    } else if (flag == "--save-flat") {
      args.save_flat = value;
    } else if (flag == "--serve-model") {
      if (std::string_view{value} == "epoll") {
        args.serve_model = serve::ServeModel::kEpoll;
      } else if (std::string_view{value} == "threadpool") {
        args.serve_model = serve::ServeModel::kThreadPool;
      } else {
        std::fprintf(stderr, "unknown serve model: %s\n", value);
        return std::nullopt;
      }
    } else if (flag == "--as-count") {
      args.as_count = std::atoi(value);
    } else if (flag == "--seed") {
      args.seed = std::strtoull(value, nullptr, 10);
    } else if (flag == "--save") {
      args.save = value;
    } else if (flag == "--port") {
      args.port = std::atoi(value);
    } else if (flag == "--threads") {
      args.threads = std::atoi(value);
    } else if (flag == "--timeout-ms") {
      args.timeout_ms = std::atoi(value);
    } else if (flag == "--deadline-ms") {
      args.deadline_ms = std::atoi(value);
    } else if (flag == "--drain-ms") {
      args.drain_ms = std::atoi(value);
    } else if (flag == "--max-pending") {
      args.max_pending = std::atoi(value);
    } else if (flag == "--log-stderr") {
      args.log_stderr = parse_log_level(value);
      if (args.log_stderr == -2) {
        std::fprintf(stderr, "unknown log level: %s\n", value);
        return std::nullopt;
      }
    } else if (flag == "--crash-dir") {
      args.crash_dir = value;
    } else if (flag == "--stream-events") {
      args.stream_events = std::atoi(value);
    } else if (flag == "--stream-interval-ms") {
      args.stream_interval_ms = std::atoi(value);
    } else if (flag == "--stream-batch") {
      args.stream_batch = std::atoi(value);
    } else if (flag == "--churn-seed") {
      args.churn_seed = std::strtoull(value, nullptr, 10);
    } else if (flag == "--replay") {
      args.replay = value;
    } else if (flag == "--checkpoint-dir") {
      args.checkpoint_dir = value;
    } else if (flag == "--checkpoint-every") {
      args.checkpoint_every = std::atoi(value);
    } else if (flag == "--watchdog-every") {
      args.watchdog_every = std::atoi(value);
    } else if (flag == "--queue-cap") {
      args.queue_cap = std::atoi(value);
    } else if (flag == "--queue-policy") {
      const auto policy = stream::parse_queue_policy(value);
      if (!policy) {
        std::fprintf(stderr, "unknown queue policy: %s\n", value);
        return std::nullopt;
      }
      args.queue_policy = *policy;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", argv[i - 1]);
      return std::nullopt;
    }
  }
  // Exactly one source: --snapshot, --flat-snapshot, or --generate.
  const int sources = (!args.snapshot.empty() ? 1 : 0) +
                      (!args.flat_snapshot.empty() ? 1 : 0) +
                      (args.generate ? 1 : 0);
  if (sources != 1) return std::nullopt;
  const bool live = args.stream_events > 0 || !args.replay.empty();
  if (live && !args.generate) return std::nullopt;
  if (args.stream_events > 0 && !args.replay.empty()) return std::nullopt;
  if (args.stream_batch < 1) args.stream_batch = 1;
  if (args.checkpoint_every < 1) args.checkpoint_every = 1;
  if (args.queue_cap < 1) args.queue_cap = 1;
  return args;
}

std::atomic<bool> g_shutdown{false};
serve::EngineHub* g_hub = nullptr;  ///< for the SIGHUP handler only

void on_shutdown_signal(int) { g_shutdown.store(true); }

// Async-signal-safe: just flips an atomic flag; the main loop reloads.
void on_sighup(int) {
  if (g_hub != nullptr) g_hub->request_reload();
}

/// Mutex-guarded mirror of the live pipeline's state: the main loop
/// updates it after every publish, HTTP workers render it into /statsz
/// via AsrelService::set_stream_stats.
struct StreamStatus {
  std::mutex mutex;
  std::uint64_t resumed_epoch = 0;  ///< 0 = cold bootstrap
  std::size_t checkpoints_rejected = 0;
  std::string recovery_detail;
  std::uint64_t recoveries = 0;  ///< in-process restores after poisoning
  std::uint64_t checkpoints_written = 0;
  std::string last_diff_section;
  std::uint64_t feed_position = 0;
  stream::StreamSession::Stats session;
  stream::EventQueue::Stats queue;
  std::size_t queue_depth = 0;
  std::size_t queue_cap = 0;
  std::string queue_policy;

  std::string to_json() {
    std::lock_guard lock{mutex};
    serve::JsonWriter json;
    json.begin_object();
    json.key("recovery").begin_object();
    json.field("resumed_epoch", resumed_epoch);
    json.field("checkpoints_rejected", checkpoints_rejected);
    json.field("in_process_restores", recoveries);
    json.field("detail", recovery_detail);
    json.end_object();
    json.key("checkpoint").begin_object();
    json.field("written", checkpoints_written);
    json.field("feed_position", feed_position);
    json.end_object();
    json.key("watchdog").begin_object();
    json.field("divergences", session.divergences);
    json.field("heals", session.heals);
    if (!last_diff_section.empty()) {
      json.field("last_diff_section", last_diff_section);
    }
    json.end_object();
    json.key("events").begin_object();
    json.field("applied", session.events_applied);
    json.field("noop", session.events_noop);
    json.field("origins_redone", session.origins_redone);
    json.field("origins_skipped", session.origins_skipped);
    json.field("origins_skipped_cone", session.origins_skipped_cone);
    json.field("epochs_published", session.epochs_published);
    json.end_object();
    json.key("queue").begin_object();
    json.field("policy", queue_policy);
    json.field("cap", queue_cap);
    json.field("depth", queue_depth);
    json.field("pushed", queue.pushed);
    json.field("popped", queue.popped);
    json.field("shed", queue.shed);
    json.field("coalesced", queue.coalesced);
    json.field("blocked", queue.blocked);
    json.end_object();
    json.end_object();
    return std::move(json).str();
  }
};

}  // namespace

int main(int argc, char** argv) {
  const auto args = parse_args(argc, argv);
  if (!args) return usage();

  obs::EventLog::instance().set_stderr_level(args->log_stderr);
  auto& flight = obs::FlightRecorder::instance();
  if (!args->crash_dir.empty()) {
    // Armed before the (potentially minutes-long) bootstrap so a crash
    // during generation still leaves a black box; the epoch reads 0 until
    // the first snapshot is served.
    obs::FlightRecorder::Config config;
    config.crash_dir = args->crash_dir;
    config.tool = "asrel_serve";
    config.build_info = __DATE__ " " __TIME__;
    std::string arm_error;
    if (!flight.arm(config, &arm_error)) {
      std::fprintf(stderr, "error arming crash recorder: %s\n",
                   arm_error.c_str());
      return 1;
    }
    std::fprintf(stderr, "crash recorder armed: %s\n",
                 flight.dump_path().c_str());
  }

  io::Snapshot snapshot;
  std::unique_ptr<stream::StreamSession> session;
  std::vector<stream::ChurnEvent> churn;
  const bool live =
      args->generate && (args->stream_events > 0 || !args->replay.empty());
  core::ScenarioParams stream_params;
  std::optional<stream::CheckpointDir> checkpoint_dir;
  StreamStatus stream_status;
  std::uint64_t applied_through = 0;  ///< events [0, here) are reflected
  if (live) {
    std::fprintf(stderr,
                 "bootstrapping streaming session (%d ASes, seed %llu)...\n",
                 args->as_count,
                 static_cast<unsigned long long>(args->seed));
    const auto started = std::chrono::steady_clock::now();
    stream_params.topology.as_count = args->as_count;
    stream_params.topology.seed = args->seed;
    if (!args->checkpoint_dir.empty()) {
      checkpoint_dir.emplace(args->checkpoint_dir);
      auto outcome = stream::recover_session(stream_params, *checkpoint_dir);
      session = std::move(outcome.session);
      applied_through = outcome.feed_position;
      std::fprintf(stderr, "recovery: %s (%zu checkpoint(s) rejected)\n",
                   outcome.detail.c_str(), outcome.checkpoints_rejected);
      stream_status.resumed_epoch = outcome.resumed_epoch;
      stream_status.checkpoints_rejected = outcome.checkpoints_rejected;
      stream_status.recovery_detail = std::move(outcome.detail);
      stream_status.feed_position = applied_through;
    } else {
      session = std::make_unique<stream::StreamSession>(stream_params);
      stream_status.recovery_detail = "cold bootstrap (no checkpoint dir)";
    }
    if (!args->replay.empty()) {
      std::ifstream in{args->replay};
      if (!in) {
        std::fprintf(stderr, "error: cannot open %s\n", args->replay.c_str());
        return 1;
      }
      std::ostringstream text;
      text << in.rdbuf();
      std::string parse_error;
      churn = stream::parse_churn_text(text.str(), &parse_error);
      if (churn.empty() && !parse_error.empty()) {
        std::fprintf(stderr, "error parsing %s: %s\n", args->replay.c_str(),
                     parse_error.c_str());
        return 1;
      }
    } else {
      // Generate from the pristine world, not session->world(): a resumed
      // session's world already reflects churn and would yield a feed that
      // disagrees with the original run's.
      const topo::World pristine = topo::generate(stream_params.topology);
      churn = stream::generate_churn(
          pristine, args->churn_seed,
          static_cast<std::size_t>(args->stream_events));
    }
    snapshot = session->snapshot();
    const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
        std::chrono::steady_clock::now() - started);
    std::fprintf(stderr,
                 "bootstrap took %lld ms; %zu churn events queued "
                 "(batch %d every %d ms)\n",
                 static_cast<long long>(elapsed.count()), churn.size(),
                 args->stream_batch, args->stream_interval_ms);
    if (!args->save.empty()) {
      std::string error;
      if (!io::save_snapshot_file(snapshot, args->save, &error)) {
        std::fprintf(stderr, "error: %s\n", error.c_str());
        return 1;
      }
    }
  } else if (args->generate) {
    std::fprintf(stderr, "building scenario (%d ASes, seed %llu)...\n",
                 args->as_count,
                 static_cast<unsigned long long>(args->seed));
    const auto started = std::chrono::steady_clock::now();
    core::ScenarioParams params;
    params.topology.as_count = args->as_count;
    params.topology.seed = args->seed;
    const auto scenario = core::Scenario::build(params);
    std::fprintf(stderr, "running inference + audit...\n");
    snapshot = core::build_snapshot(*scenario);
    const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
        std::chrono::steady_clock::now() - started);
    std::fprintf(stderr, "batch pipeline took %lld ms\n",
                 static_cast<long long>(elapsed.count()));
    if (!args->save.empty()) {
      std::string error;
      if (!io::save_snapshot_file(snapshot, args->save, &error)) {
        std::fprintf(stderr, "error: %s\n", error.c_str());
        return 1;
      }
      std::fprintf(stderr, "saved snapshot to %s\n", args->save.c_str());
    }
  } else if (!args->flat_snapshot.empty()) {
    // Handled below: the flat image never inflates into `snapshot`.
  } else {
    const auto started = std::chrono::steady_clock::now();
    std::string error;
    auto loaded = io::load_snapshot_file(args->snapshot, &error);
    if (!loaded) {
      std::fprintf(stderr, "error loading %s: %s\n", args->snapshot.c_str(),
                   error.c_str());
      return 1;
    }
    snapshot = std::move(*loaded);
    const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
        std::chrono::steady_clock::now() - started);
    std::fprintf(stderr, "loaded snapshot in %lld ms\n",
                 static_cast<long long>(elapsed.count()));
  }

  const bool flat_mode = !args->flat_snapshot.empty();
  std::shared_ptr<const serve::QueryEngine> initial_engine;
  serve::EngineHub::EngineLoader engine_loader;
  if (flat_mode) {
    const auto started = std::chrono::steady_clock::now();
    std::string error;
    // First open deep-verifies the checksum; reloads trust the atomic
    // rename protocol and stay structural (microseconds).
    const auto view = io::FlatView::open_file(args->flat_snapshot, &error,
                                              /*deep_verify=*/true);
    if (view == nullptr) {
      std::fprintf(stderr, "error opening %s: %s\n",
                   args->flat_snapshot.c_str(), error.c_str());
      return 1;
    }
    initial_engine = std::make_shared<const serve::QueryEngine>(view);
    const auto elapsed = std::chrono::duration_cast<std::chrono::microseconds>(
        std::chrono::steady_clock::now() - started);
    std::fprintf(stderr, "mapped flat snapshot in %lld us\n",
                 static_cast<long long>(elapsed.count()));
    const std::string path = args->flat_snapshot;
    engine_loader =
        [path](std::string* error) -> std::shared_ptr<const serve::QueryEngine> {
      const auto next =
          io::FlatView::open_file(path, error, /*deep_verify=*/false);
      if (next == nullptr) return nullptr;
      return std::make_shared<const serve::QueryEngine>(next);
    };
    std::fprintf(
        stderr, "snapshot: %zu ASes, %zu edges, %zu links, %zu labels\n",
        initial_engine->num_ases(), initial_engine->num_edges(),
        initial_engine->num_links(), initial_engine->num_validation());
  } else {
    std::fprintf(
        stderr, "snapshot: %zu ASes, %zu edges, %zu links, %zu labels\n",
        snapshot.ases.size(), snapshot.edges.size(), snapshot.links.size(),
        snapshot.validation.size());
    if (!args->save_flat.empty()) {
      std::string error;
      if (!io::save_flat_snapshot_file(snapshot, args->save_flat, &error)) {
        std::fprintf(stderr, "error: %s\n", error.c_str());
        return 1;
      }
      std::fprintf(stderr, "saved flat snapshot to %s\n",
                   args->save_flat.c_str());
    }
    initial_engine =
        std::make_shared<const serve::QueryEngine>(std::move(snapshot));
  }

  // Reloads re-read the file the daemon serves from: --snapshot when
  // loading, --save when generating, the mmap'd image in flat mode.
  // Without a path, reloads fail closed.
  const std::string reload_path = flat_mode ? args->flat_snapshot
                                  : !args->snapshot.empty() ? args->snapshot
                                                            : args->save;
  serve::EngineHub::SnapshotLoader loader;
  if (!flat_mode && !reload_path.empty()) {
    loader = [reload_path](std::string* error) {
      return io::load_snapshot_file(reload_path, error);
    };
  }
  const auto hub =
      flat_mode ? std::make_shared<serve::EngineHub>(
                      std::move(initial_engine), std::move(engine_loader))
                : std::make_shared<serve::EngineHub>(
                      std::move(initial_engine), std::move(loader));
  serve::AsrelService service{hub};
  if (live) {
    service.set_stream_stats(
        [&stream_status] { return stream_status.to_json(); });
  }

  serve::HttpServerOptions options;
  options.port = static_cast<std::uint16_t>(args->port);
  options.serve_model = args->serve_model;
  options.worker_threads = args->threads;
  options.request_timeout_ms = args->timeout_ms;
  options.request_deadline_ms = args->deadline_ms;
  options.drain_deadline_ms = args->drain_ms;
  options.max_pending_connections =
      static_cast<std::size_t>(args->max_pending < 1 ? 1 : args->max_pending);
  options.stats_supplement = [&service] { return service.stats_json(); };
  options.metrics_routes = serve::AsrelService::metric_routes();
  options.metrics_supplement =
      [&service](std::vector<obs::MetricSnapshot>& out) {
        service.collect_metrics(out);
      };
  options.epoch_supplier = [hub] { return hub->epoch(); };
  if (args->trace) obs::Tracer::instance().set_enabled(true);
  serve::HttpServer server{
      [&service](const serve::HttpRequest& request) {
        return service.handle(request);
      },
      options};

  std::string error;
  if (!server.start(&error)) {
    std::fprintf(stderr, "error: %s\n", error.c_str());
    return 1;
  }
  g_hub = hub.get();
  std::signal(SIGINT, on_shutdown_signal);
  std::signal(SIGTERM, on_shutdown_signal);
  std::signal(SIGHUP, on_sighup);
  std::fprintf(stderr,
               "serving on port %u with %d workers "
               "(SIGHUP reloads, Ctrl-C drains)\n",
               server.port(), args->threads);

  // Backpressured ingest: a feeder thread pushes the churn feed into a
  // bounded queue; the main loop drains up to --stream-batch events per
  // interval. The gap between them is where a real deployment's collector
  // feed would outrun re-convergence.
  stream::EventQueue queue{static_cast<std::size_t>(args->queue_cap),
                           args->queue_policy};
  std::atomic<bool> feeder_done{!live || applied_through >= churn.size()};
  std::thread feeder;
  if (live) {
    feeder = std::thread([&queue, &churn, &feeder_done,
                          start = applied_through] {
      for (std::uint64_t seq = start; seq < churn.size(); ++seq) {
        queue.push({seq, churn[seq]});
      }
      feeder_done.store(true);
      queue.close();
    });
  }
  bool feed_drained = !live || applied_through >= churn.size();

  const auto update_stream_status = [&](bool count_checkpoint,
                                        const char* diff_section) {
    std::lock_guard lock{stream_status.mutex};
    stream_status.session = session->stats();
    stream_status.queue = queue.stats();
    stream_status.queue_depth = queue.depth();
    stream_status.queue_cap = queue.cap();
    stream_status.queue_policy = std::string{to_string(queue.policy())};
    stream_status.feed_position = applied_through;
    if (count_checkpoint) ++stream_status.checkpoints_written;
    if (diff_section != nullptr) {
      stream_status.last_diff_section = diff_section;
    }
  };

  // Applies one event, recovering in process if the apply path poisons
  // the session: restore from the newest checkpoint (or cold bootstrap),
  // replay the in-memory feed up to this event, and apply it again.
  const auto apply_with_recovery = [&](const stream::QueuedEvent& item)
      -> std::size_t {
    if (item.seq < applied_through) return 0;  // replayed post-recovery
    try {
      const auto outcome = session->apply(item.event);
      applied_through = item.seq + 1;
      return outcome.dirty_origins;
    } catch (const std::bad_alloc&) {
      std::fprintf(stderr,
                   "stream: apply failed at event %llu, session poisoned; "
                   "restoring...\n",
                   static_cast<unsigned long long>(item.seq));
      auto outcome = checkpoint_dir
                         ? stream::recover_session(stream_params,
                                                   *checkpoint_dir)
                         : stream::RecoveryOutcome{
                               std::make_unique<stream::StreamSession>(
                                   stream_params),
                               0, 0, 0, "cold bootstrap"};
      session = std::move(outcome.session);
      std::fprintf(stderr, "stream: %s\n", outcome.detail.c_str());
      {
        std::lock_guard lock{stream_status.mutex};
        ++stream_status.recoveries;
        stream_status.checkpoints_rejected += outcome.checkpoints_rejected;
        stream_status.recovery_detail = outcome.detail;
      }
      // Catch up from the restore point using the in-memory feed, then
      // land the event that crashed.
      std::size_t redone = 0;
      for (std::uint64_t seq = outcome.feed_position; seq <= item.seq;
           ++seq) {
        redone += session->apply(churn[seq]).dirty_origins;
      }
      applied_through = item.seq + 1;
      return redone;
    }
  };

  std::uint64_t epochs_since_checkpoint = 0;
  auto next_batch_at = std::chrono::steady_clock::now() +
                       std::chrono::milliseconds(args->stream_interval_ms);
  auto next_flight_refresh = std::chrono::steady_clock::now();
  while (!g_shutdown.load()) {
    if (flight.armed() &&
        std::chrono::steady_clock::now() >= next_flight_refresh) {
      flight.set_epoch(hub->epoch());
      flight.refresh();
      next_flight_refresh = std::chrono::steady_clock::now() +
                            std::chrono::milliseconds(1000);
    }
    if (hub->take_reload_request()) {
      const auto result = hub->reload();
      if (result.ok) {
        std::fprintf(stderr, "reloaded %s (epoch %llu)\n",
                     reload_path.c_str(),
                     static_cast<unsigned long long>(result.epoch));
      } else {
        std::fprintf(stderr,
                     "reload failed, still serving epoch %llu: %s\n",
                     static_cast<unsigned long long>(result.epoch),
                     result.error.c_str());
      }
    }
    if (live && !feed_drained &&
        std::chrono::steady_clock::now() >= next_batch_at &&
        queue.depth() > 0) {
      std::size_t redone = 0;
      std::size_t popped = 0;
      while (popped < static_cast<std::size_t>(args->stream_batch) &&
             queue.depth() > 0) {
        const auto item = queue.pop();
        if (!item) break;
        ++popped;
        redone += apply_with_recovery(*item);
      }
      const std::uint64_t now_ms = static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::milliseconds>(
              std::chrono::system_clock::now().time_since_epoch())
              .count());
      const io::Snapshot& published = session->publish(now_ms);
      if (!args->save.empty()) {
        // Durable epoch: crash-safe tmp+rename, so a torn write never
        // clobbers the last good file and SIGHUP reloads stay safe.
        std::string save_error;
        if (!io::save_snapshot_file(published, args->save, &save_error)) {
          std::fprintf(stderr, "epoch write failed (still serving): %s\n",
                       save_error.c_str());
        }
      }
      if (!args->save_flat.empty()) {
        // Same protocol for the flat image, so a sibling daemon serving
        // it via --flat-snapshot can SIGHUP-reload each epoch in us.
        std::string save_error;
        if (!io::save_flat_snapshot_file(published, args->save_flat,
                                         &save_error)) {
          std::fprintf(stderr, "flat epoch write failed: %s\n",
                       save_error.c_str());
        }
      }
      const auto result = hub->publish(io::Snapshot{published});
      std::fprintf(
          stderr,
          "stream: epoch %llu published (%llu/%zu events, "
          "%zu origins re-converged)\n",
          static_cast<unsigned long long>(result.epoch),
          static_cast<unsigned long long>(applied_through), churn.size(),
          redone);

      const char* diff_section = nullptr;
      if (args->watchdog_every > 0 &&
          session->epoch() %
                  static_cast<std::uint64_t>(args->watchdog_every) ==
              0) {
        const auto report = session->run_watchdog();
        if (report.diverged) {
          diff_section = report.first_diff_section.c_str();
          std::fprintf(stderr,
                       "stream: watchdog divergence in section '%s' (%s)\n",
                       report.first_diff_section.c_str(),
                       report.healed ? "healed, republishing"
                                     : "NOT healed");
          if (report.healed) {
            hub->publish(io::Snapshot{session->snapshot()});
            if (!args->save.empty()) {
              std::string save_error;
              if (!io::save_snapshot_file(session->snapshot(), args->save,
                                          &save_error)) {
                std::fprintf(stderr, "healed epoch write failed: %s\n",
                             save_error.c_str());
              }
            }
          }
        }
      }
      bool wrote_checkpoint = false;
      if (checkpoint_dir &&
          ++epochs_since_checkpoint >=
              static_cast<std::uint64_t>(args->checkpoint_every)) {
        std::string ckpt_error;
        if (checkpoint_dir->save(session->checkpoint(applied_through),
                                 &ckpt_error)) {
          epochs_since_checkpoint = 0;
          wrote_checkpoint = true;
        } else {
          std::fprintf(stderr, "checkpoint write failed: %s\n",
                       ckpt_error.c_str());
        }
      }
      update_stream_status(wrote_checkpoint, diff_section);
      next_batch_at = std::chrono::steady_clock::now() +
                      std::chrono::milliseconds(args->stream_interval_ms);
    }
    if (live && !feed_drained && feeder_done.load() && queue.depth() == 0) {
      feed_drained = true;
      std::fprintf(stderr, "stream: churn feed drained, serving on\n");
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(
        live && !feed_drained ? 20 : 100));
  }
  if (live) {
    // Drain-aware shutdown: stop intake, let the feeder exit, and persist
    // a final checkpoint so the restart resumes exactly here.
    queue.close();
    if (feeder.joinable()) feeder.join();
    if (checkpoint_dir && !session->poisoned()) {
      std::string ckpt_error;
      if (checkpoint_dir->save(session->checkpoint(applied_through),
                               &ckpt_error)) {
        std::fprintf(stderr, "stream: final checkpoint at feed %llu\n",
                     static_cast<unsigned long long>(applied_through));
      } else {
        std::fprintf(stderr, "final checkpoint failed: %s\n",
                     ckpt_error.c_str());
      }
    }
  }
  std::fprintf(stderr, "draining (deadline %d ms)...\n", args->drain_ms);
  const serve::DrainReport drained = server.drain();
  g_hub = nullptr;
  const auto stats = server.stats();
  std::fprintf(stderr,
               "served %llu requests (%llu connections, %llu shed); "
               "drain: %llu finished, %llu aborted\n",
               static_cast<unsigned long long>(stats.requests),
               static_cast<unsigned long long>(stats.accepted),
               static_cast<unsigned long long>(stats.overload_rejected),
               static_cast<unsigned long long>(drained.drained),
               static_cast<unsigned long long>(drained.aborted));
  return 0;
}
