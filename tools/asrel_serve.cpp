// asrel_serve — always-on query daemon over a precomputed snapshot.
//
//   asrel_serve --snapshot FILE [--port P] [--threads N]
//       Load a snapshot from disk (milliseconds) and serve it.
//
//   asrel_serve --generate [--as-count N] [--seed S] [--save FILE]
//               [--port P] [--threads N]
//       Run the batch pipeline once (minutes at paper scale), optionally
//       persist the snapshot, then serve it.
//
// Endpoints: /rel /as /links /report/{regional,topological} /report/table
// /snapshot /healthz /statsz — see src/serve/service.hpp.
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <memory>
#include <optional>
#include <string>
#include <thread>

#include "core/scenario.hpp"
#include "core/snapshot_builder.hpp"
#include "io/snapshot.hpp"
#include "serve/http_server.hpp"
#include "serve/service.hpp"

namespace {

using namespace asrel;

struct Args {
  std::string snapshot;
  bool generate = false;
  int as_count = 12000;
  std::uint64_t seed = 42;
  std::string save;
  int port = 8642;
  int threads = 4;
  int timeout_ms = 5000;
};

int usage() {
  std::fprintf(
      stderr,
      "usage:\n"
      "  asrel_serve --snapshot FILE [--port P] [--threads N]\n"
      "  asrel_serve --generate [--as-count N] [--seed S] [--save FILE]\n"
      "              [--port P] [--threads N]\n");
  return 2;
}

std::optional<Args> parse_args(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    const std::string_view flag = argv[i];
    if (flag == "--generate") {
      args.generate = true;
      continue;
    }
    if (i + 1 >= argc) return std::nullopt;
    const char* value = argv[++i];
    if (flag == "--snapshot") {
      args.snapshot = value;
    } else if (flag == "--as-count") {
      args.as_count = std::atoi(value);
    } else if (flag == "--seed") {
      args.seed = std::strtoull(value, nullptr, 10);
    } else if (flag == "--save") {
      args.save = value;
    } else if (flag == "--port") {
      args.port = std::atoi(value);
    } else if (flag == "--threads") {
      args.threads = std::atoi(value);
    } else if (flag == "--timeout-ms") {
      args.timeout_ms = std::atoi(value);
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", argv[i - 1]);
      return std::nullopt;
    }
  }
  if (args.snapshot.empty() == !args.generate) return std::nullopt;
  return args;
}

std::atomic<bool> g_shutdown{false};

void on_signal(int) { g_shutdown.store(true); }

}  // namespace

int main(int argc, char** argv) {
  const auto args = parse_args(argc, argv);
  if (!args) return usage();

  io::Snapshot snapshot;
  if (args->generate) {
    std::fprintf(stderr, "building scenario (%d ASes, seed %llu)...\n",
                 args->as_count,
                 static_cast<unsigned long long>(args->seed));
    const auto started = std::chrono::steady_clock::now();
    core::ScenarioParams params;
    params.topology.as_count = args->as_count;
    params.topology.seed = args->seed;
    const auto scenario = core::Scenario::build(params);
    std::fprintf(stderr, "running inference + audit...\n");
    snapshot = core::build_snapshot(*scenario);
    const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
        std::chrono::steady_clock::now() - started);
    std::fprintf(stderr, "batch pipeline took %lld ms\n",
                 static_cast<long long>(elapsed.count()));
    if (!args->save.empty()) {
      std::string error;
      if (!io::save_snapshot_file(snapshot, args->save, &error)) {
        std::fprintf(stderr, "error: %s\n", error.c_str());
        return 1;
      }
      std::fprintf(stderr, "saved snapshot to %s\n", args->save.c_str());
    }
  } else {
    const auto started = std::chrono::steady_clock::now();
    std::string error;
    auto loaded = io::load_snapshot_file(args->snapshot, &error);
    if (!loaded) {
      std::fprintf(stderr, "error loading %s: %s\n", args->snapshot.c_str(),
                   error.c_str());
      return 1;
    }
    snapshot = std::move(*loaded);
    const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
        std::chrono::steady_clock::now() - started);
    std::fprintf(stderr, "loaded snapshot in %lld ms\n",
                 static_cast<long long>(elapsed.count()));
  }
  std::fprintf(
      stderr, "snapshot: %zu ASes, %zu edges, %zu links, %zu labels\n",
      snapshot.ases.size(), snapshot.edges.size(), snapshot.links.size(),
      snapshot.validation.size());

  const auto engine =
      std::make_shared<const serve::QueryEngine>(std::move(snapshot));
  serve::AsrelService service{engine};

  serve::HttpServerOptions options;
  options.port = static_cast<std::uint16_t>(args->port);
  options.worker_threads = args->threads;
  options.request_timeout_ms = args->timeout_ms;
  options.stats_supplement = [&service] { return service.stats_json(); };
  serve::HttpServer server{
      [&service](const serve::HttpRequest& request) {
        return service.handle(request);
      },
      options};

  std::string error;
  if (!server.start(&error)) {
    std::fprintf(stderr, "error: %s\n", error.c_str());
    return 1;
  }
  std::signal(SIGINT, on_signal);
  std::signal(SIGTERM, on_signal);
  std::fprintf(stderr, "serving on port %u with %d workers (Ctrl-C stops)\n",
               server.port(), args->threads);

  while (!g_shutdown.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  std::fprintf(stderr, "shutting down...\n");
  server.stop();
  const auto stats = server.stats();
  std::fprintf(stderr,
               "served %llu requests (%llu connections, %llu rejected)\n",
               static_cast<unsigned long long>(stats.requests),
               static_cast<unsigned long long>(stats.accepted),
               static_cast<unsigned long long>(stats.overload_rejected));
  return 0;
}
