// asrel_serve — always-on query daemon over a precomputed snapshot.
//
//   asrel_serve --snapshot FILE [--port P] [--threads N]
//       Load a snapshot from disk (milliseconds) and serve it.
//
//   asrel_serve --generate [--as-count N] [--seed S] [--save FILE]
//               [--port P] [--threads N]
//       Run the batch pipeline once (minutes at paper scale), optionally
//       persist the snapshot, then serve it.
//
//   asrel_serve --generate --stream-events N [--stream-interval-ms MS]
//               [--stream-batch K] [--churn-seed S] ...
//       Live mode: bootstrap a streaming session, then apply N generated
//       churn events in batches of K every MS milliseconds, publishing a
//       fresh epoch (atomic in-memory swap, zero dropped requests) after
//       each batch. When --save is set, each epoch is also written to the
//       file crash-safely, so SIGHUP reloads pick up the latest epoch.
//
// Operations:
//   SIGHUP          hot-reload the snapshot file (zero downtime; in-flight
//                   requests finish on the old epoch)
//   POST /reloadz   same swap over HTTP; answers the new epoch or the error
//   SIGINT/SIGTERM  graceful drain: stop accepting, finish in-flight
//                   connections within --drain-ms, then exit
//
// Endpoints: /rel /as /links /report/{regional,topological} /report/table
// /snapshot /healthz /statsz /metricsz /tracez — see src/serve/service.hpp.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "core/scenario.hpp"
#include "obs/trace.hpp"
#include "core/snapshot_builder.hpp"
#include "io/snapshot.hpp"
#include "serve/engine_hub.hpp"
#include "serve/http_server.hpp"
#include "serve/service.hpp"
#include "stream/churn.hpp"
#include "stream/session.hpp"

namespace {

using namespace asrel;

struct Args {
  std::string snapshot;
  bool generate = false;
  int as_count = 12000;
  std::uint64_t seed = 42;
  std::string save;
  int port = 8642;
  int threads = 4;
  int timeout_ms = 5000;
  int deadline_ms = 10000;
  int drain_ms = 5000;
  int max_pending = 256;   ///< admission-queue bound (503 shed beyond it)
  bool trace = false;      ///< record server spans (served via /tracez)

  // Live mode (--generate only): nonzero stream_events enables it.
  int stream_events = 0;
  int stream_interval_ms = 1000;
  int stream_batch = 10;
  std::uint64_t churn_seed = 1;
};

int usage() {
  std::fprintf(
      stderr,
      "usage:\n"
      "  asrel_serve --snapshot FILE [--port P] [--threads N]\n"
      "              [--timeout-ms MS] [--deadline-ms MS] [--drain-ms MS]\n"
      "              [--max-pending N] [--trace]\n"
      "  asrel_serve --generate [--as-count N] [--seed S] [--save FILE]\n"
      "              [--port P] [--threads N]\n"
      "  asrel_serve --generate --stream-events N [--stream-interval-ms MS]\n"
      "              [--stream-batch K] [--churn-seed S] ...\n"
      "signals: SIGHUP = hot snapshot reload, SIGINT/SIGTERM = drain+exit\n");
  return 2;
}

std::optional<Args> parse_args(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    const std::string_view flag = argv[i];
    if (flag == "--generate") {
      args.generate = true;
      continue;
    }
    if (flag == "--trace") {
      args.trace = true;
      continue;
    }
    if (i + 1 >= argc) return std::nullopt;
    const char* value = argv[++i];
    if (flag == "--snapshot") {
      args.snapshot = value;
    } else if (flag == "--as-count") {
      args.as_count = std::atoi(value);
    } else if (flag == "--seed") {
      args.seed = std::strtoull(value, nullptr, 10);
    } else if (flag == "--save") {
      args.save = value;
    } else if (flag == "--port") {
      args.port = std::atoi(value);
    } else if (flag == "--threads") {
      args.threads = std::atoi(value);
    } else if (flag == "--timeout-ms") {
      args.timeout_ms = std::atoi(value);
    } else if (flag == "--deadline-ms") {
      args.deadline_ms = std::atoi(value);
    } else if (flag == "--drain-ms") {
      args.drain_ms = std::atoi(value);
    } else if (flag == "--max-pending") {
      args.max_pending = std::atoi(value);
    } else if (flag == "--stream-events") {
      args.stream_events = std::atoi(value);
    } else if (flag == "--stream-interval-ms") {
      args.stream_interval_ms = std::atoi(value);
    } else if (flag == "--stream-batch") {
      args.stream_batch = std::atoi(value);
    } else if (flag == "--churn-seed") {
      args.churn_seed = std::strtoull(value, nullptr, 10);
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", argv[i - 1]);
      return std::nullopt;
    }
  }
  if (args.snapshot.empty() == !args.generate) return std::nullopt;
  if (args.stream_events > 0 && !args.generate) return std::nullopt;
  if (args.stream_batch < 1) args.stream_batch = 1;
  return args;
}

std::atomic<bool> g_shutdown{false};
serve::EngineHub* g_hub = nullptr;  ///< for the SIGHUP handler only

void on_shutdown_signal(int) { g_shutdown.store(true); }

// Async-signal-safe: just flips an atomic flag; the main loop reloads.
void on_sighup(int) {
  if (g_hub != nullptr) g_hub->request_reload();
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = parse_args(argc, argv);
  if (!args) return usage();

  io::Snapshot snapshot;
  std::unique_ptr<stream::StreamSession> session;
  std::vector<stream::ChurnEvent> churn;
  if (args->generate && args->stream_events > 0) {
    std::fprintf(stderr,
                 "bootstrapping streaming session (%d ASes, seed %llu)...\n",
                 args->as_count,
                 static_cast<unsigned long long>(args->seed));
    const auto started = std::chrono::steady_clock::now();
    core::ScenarioParams params;
    params.topology.as_count = args->as_count;
    params.topology.seed = args->seed;
    session = std::make_unique<stream::StreamSession>(params);
    churn = stream::generate_churn(
        session->world(), args->churn_seed,
        static_cast<std::size_t>(args->stream_events));
    snapshot = session->snapshot();
    const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
        std::chrono::steady_clock::now() - started);
    std::fprintf(stderr,
                 "bootstrap took %lld ms; %zu churn events queued "
                 "(batch %d every %d ms)\n",
                 static_cast<long long>(elapsed.count()), churn.size(),
                 args->stream_batch, args->stream_interval_ms);
    if (!args->save.empty()) {
      std::string error;
      if (!io::save_snapshot_file(snapshot, args->save, &error)) {
        std::fprintf(stderr, "error: %s\n", error.c_str());
        return 1;
      }
    }
  } else if (args->generate) {
    std::fprintf(stderr, "building scenario (%d ASes, seed %llu)...\n",
                 args->as_count,
                 static_cast<unsigned long long>(args->seed));
    const auto started = std::chrono::steady_clock::now();
    core::ScenarioParams params;
    params.topology.as_count = args->as_count;
    params.topology.seed = args->seed;
    const auto scenario = core::Scenario::build(params);
    std::fprintf(stderr, "running inference + audit...\n");
    snapshot = core::build_snapshot(*scenario);
    const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
        std::chrono::steady_clock::now() - started);
    std::fprintf(stderr, "batch pipeline took %lld ms\n",
                 static_cast<long long>(elapsed.count()));
    if (!args->save.empty()) {
      std::string error;
      if (!io::save_snapshot_file(snapshot, args->save, &error)) {
        std::fprintf(stderr, "error: %s\n", error.c_str());
        return 1;
      }
      std::fprintf(stderr, "saved snapshot to %s\n", args->save.c_str());
    }
  } else {
    const auto started = std::chrono::steady_clock::now();
    std::string error;
    auto loaded = io::load_snapshot_file(args->snapshot, &error);
    if (!loaded) {
      std::fprintf(stderr, "error loading %s: %s\n", args->snapshot.c_str(),
                   error.c_str());
      return 1;
    }
    snapshot = std::move(*loaded);
    const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
        std::chrono::steady_clock::now() - started);
    std::fprintf(stderr, "loaded snapshot in %lld ms\n",
                 static_cast<long long>(elapsed.count()));
  }
  std::fprintf(
      stderr, "snapshot: %zu ASes, %zu edges, %zu links, %zu labels\n",
      snapshot.ases.size(), snapshot.edges.size(), snapshot.links.size(),
      snapshot.validation.size());

  // Reloads re-read the file the daemon serves from: --snapshot when
  // loading, --save when generating. Without a path, reloads fail closed.
  const std::string reload_path =
      !args->snapshot.empty() ? args->snapshot : args->save;
  serve::EngineHub::SnapshotLoader loader;
  if (!reload_path.empty()) {
    loader = [reload_path](std::string* error) {
      return io::load_snapshot_file(reload_path, error);
    };
  }
  const auto hub = std::make_shared<serve::EngineHub>(
      std::make_shared<const serve::QueryEngine>(std::move(snapshot)),
      std::move(loader));
  serve::AsrelService service{hub};

  serve::HttpServerOptions options;
  options.port = static_cast<std::uint16_t>(args->port);
  options.worker_threads = args->threads;
  options.request_timeout_ms = args->timeout_ms;
  options.request_deadline_ms = args->deadline_ms;
  options.drain_deadline_ms = args->drain_ms;
  options.max_pending_connections =
      static_cast<std::size_t>(args->max_pending < 1 ? 1 : args->max_pending);
  options.stats_supplement = [&service] { return service.stats_json(); };
  options.metrics_routes = serve::AsrelService::metric_routes();
  options.metrics_supplement =
      [&service](std::vector<obs::MetricSnapshot>& out) {
        service.collect_metrics(out);
      };
  if (args->trace) obs::Tracer::instance().set_enabled(true);
  serve::HttpServer server{
      [&service](const serve::HttpRequest& request) {
        return service.handle(request);
      },
      options};

  std::string error;
  if (!server.start(&error)) {
    std::fprintf(stderr, "error: %s\n", error.c_str());
    return 1;
  }
  g_hub = hub.get();
  std::signal(SIGINT, on_shutdown_signal);
  std::signal(SIGTERM, on_shutdown_signal);
  std::signal(SIGHUP, on_sighup);
  std::fprintf(stderr,
               "serving on port %u with %d workers "
               "(SIGHUP reloads, Ctrl-C drains)\n",
               server.port(), args->threads);

  std::size_t next_event = 0;
  auto next_batch_at = std::chrono::steady_clock::now() +
                       std::chrono::milliseconds(args->stream_interval_ms);
  while (!g_shutdown.load()) {
    if (hub->take_reload_request()) {
      const auto result = hub->reload();
      if (result.ok) {
        std::fprintf(stderr, "reloaded %s (epoch %llu)\n",
                     reload_path.c_str(),
                     static_cast<unsigned long long>(result.epoch));
      } else {
        std::fprintf(stderr,
                     "reload failed, still serving epoch %llu: %s\n",
                     static_cast<unsigned long long>(result.epoch),
                     result.error.c_str());
      }
    }
    if (session && next_event < churn.size() &&
        std::chrono::steady_clock::now() >= next_batch_at) {
      const std::size_t end =
          std::min(churn.size(),
                   next_event + static_cast<std::size_t>(args->stream_batch));
      std::size_t redone = 0;
      for (; next_event < end; ++next_event) {
        redone += session->apply(churn[next_event]).dirty_origins;
      }
      const std::uint64_t now_ms = static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::milliseconds>(
              std::chrono::system_clock::now().time_since_epoch())
              .count());
      const io::Snapshot& published = session->publish(now_ms);
      if (!args->save.empty()) {
        // Durable epoch: crash-safe tmp+rename, so a torn write never
        // clobbers the last good file and SIGHUP reloads stay safe.
        std::string save_error;
        if (!io::save_snapshot_file(published, args->save, &save_error)) {
          std::fprintf(stderr, "epoch write failed (still serving): %s\n",
                       save_error.c_str());
        }
      }
      const auto result = hub->publish(io::Snapshot{published});
      std::fprintf(
          stderr,
          "stream: epoch %llu published (%zu/%zu events, "
          "%zu origins re-converged)\n",
          static_cast<unsigned long long>(result.epoch), next_event,
          churn.size(), redone);
      if (next_event == churn.size()) {
        std::fprintf(stderr, "stream: churn feed drained, serving on\n");
      }
      next_batch_at = std::chrono::steady_clock::now() +
                      std::chrono::milliseconds(args->stream_interval_ms);
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(
        session && next_event < churn.size() ? 20 : 100));
  }
  std::fprintf(stderr, "draining (deadline %d ms)...\n", args->drain_ms);
  const serve::DrainReport drained = server.drain();
  g_hub = nullptr;
  const auto stats = server.stats();
  std::fprintf(stderr,
               "served %llu requests (%llu connections, %llu shed); "
               "drain: %llu finished, %llu aborted\n",
               static_cast<unsigned long long>(stats.requests),
               static_cast<unsigned long long>(stats.accepted),
               static_cast<unsigned long long>(stats.overload_rejected),
               static_cast<unsigned long long>(drained.drained),
               static_cast<unsigned long long>(drained.aborted));
  return 0;
}
