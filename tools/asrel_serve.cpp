// asrel_serve — always-on query daemon over a precomputed snapshot.
//
//   asrel_serve --snapshot FILE [--port P] [--threads N]
//       Load a snapshot from disk (milliseconds) and serve it.
//
//   asrel_serve --generate [--as-count N] [--seed S] [--save FILE]
//               [--port P] [--threads N]
//       Run the batch pipeline once (minutes at paper scale), optionally
//       persist the snapshot, then serve it.
//
// Operations:
//   SIGHUP          hot-reload the snapshot file (zero downtime; in-flight
//                   requests finish on the old epoch)
//   POST /reloadz   same swap over HTTP; answers the new epoch or the error
//   SIGINT/SIGTERM  graceful drain: stop accepting, finish in-flight
//                   connections within --drain-ms, then exit
//
// Endpoints: /rel /as /links /report/{regional,topological} /report/table
// /snapshot /healthz /statsz /metricsz /tracez — see src/serve/service.hpp.
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <memory>
#include <optional>
#include <string>
#include <thread>

#include "core/scenario.hpp"
#include "obs/trace.hpp"
#include "core/snapshot_builder.hpp"
#include "io/snapshot.hpp"
#include "serve/engine_hub.hpp"
#include "serve/http_server.hpp"
#include "serve/service.hpp"

namespace {

using namespace asrel;

struct Args {
  std::string snapshot;
  bool generate = false;
  int as_count = 12000;
  std::uint64_t seed = 42;
  std::string save;
  int port = 8642;
  int threads = 4;
  int timeout_ms = 5000;
  int deadline_ms = 10000;
  int drain_ms = 5000;
  int max_pending = 256;   ///< admission-queue bound (503 shed beyond it)
  bool trace = false;      ///< record server spans (served via /tracez)
};

int usage() {
  std::fprintf(
      stderr,
      "usage:\n"
      "  asrel_serve --snapshot FILE [--port P] [--threads N]\n"
      "              [--timeout-ms MS] [--deadline-ms MS] [--drain-ms MS]\n"
      "              [--max-pending N] [--trace]\n"
      "  asrel_serve --generate [--as-count N] [--seed S] [--save FILE]\n"
      "              [--port P] [--threads N]\n"
      "signals: SIGHUP = hot snapshot reload, SIGINT/SIGTERM = drain+exit\n");
  return 2;
}

std::optional<Args> parse_args(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    const std::string_view flag = argv[i];
    if (flag == "--generate") {
      args.generate = true;
      continue;
    }
    if (flag == "--trace") {
      args.trace = true;
      continue;
    }
    if (i + 1 >= argc) return std::nullopt;
    const char* value = argv[++i];
    if (flag == "--snapshot") {
      args.snapshot = value;
    } else if (flag == "--as-count") {
      args.as_count = std::atoi(value);
    } else if (flag == "--seed") {
      args.seed = std::strtoull(value, nullptr, 10);
    } else if (flag == "--save") {
      args.save = value;
    } else if (flag == "--port") {
      args.port = std::atoi(value);
    } else if (flag == "--threads") {
      args.threads = std::atoi(value);
    } else if (flag == "--timeout-ms") {
      args.timeout_ms = std::atoi(value);
    } else if (flag == "--deadline-ms") {
      args.deadline_ms = std::atoi(value);
    } else if (flag == "--drain-ms") {
      args.drain_ms = std::atoi(value);
    } else if (flag == "--max-pending") {
      args.max_pending = std::atoi(value);
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", argv[i - 1]);
      return std::nullopt;
    }
  }
  if (args.snapshot.empty() == !args.generate) return std::nullopt;
  return args;
}

std::atomic<bool> g_shutdown{false};
serve::EngineHub* g_hub = nullptr;  ///< for the SIGHUP handler only

void on_shutdown_signal(int) { g_shutdown.store(true); }

// Async-signal-safe: just flips an atomic flag; the main loop reloads.
void on_sighup(int) {
  if (g_hub != nullptr) g_hub->request_reload();
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = parse_args(argc, argv);
  if (!args) return usage();

  io::Snapshot snapshot;
  if (args->generate) {
    std::fprintf(stderr, "building scenario (%d ASes, seed %llu)...\n",
                 args->as_count,
                 static_cast<unsigned long long>(args->seed));
    const auto started = std::chrono::steady_clock::now();
    core::ScenarioParams params;
    params.topology.as_count = args->as_count;
    params.topology.seed = args->seed;
    const auto scenario = core::Scenario::build(params);
    std::fprintf(stderr, "running inference + audit...\n");
    snapshot = core::build_snapshot(*scenario);
    const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
        std::chrono::steady_clock::now() - started);
    std::fprintf(stderr, "batch pipeline took %lld ms\n",
                 static_cast<long long>(elapsed.count()));
    if (!args->save.empty()) {
      std::string error;
      if (!io::save_snapshot_file(snapshot, args->save, &error)) {
        std::fprintf(stderr, "error: %s\n", error.c_str());
        return 1;
      }
      std::fprintf(stderr, "saved snapshot to %s\n", args->save.c_str());
    }
  } else {
    const auto started = std::chrono::steady_clock::now();
    std::string error;
    auto loaded = io::load_snapshot_file(args->snapshot, &error);
    if (!loaded) {
      std::fprintf(stderr, "error loading %s: %s\n", args->snapshot.c_str(),
                   error.c_str());
      return 1;
    }
    snapshot = std::move(*loaded);
    const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
        std::chrono::steady_clock::now() - started);
    std::fprintf(stderr, "loaded snapshot in %lld ms\n",
                 static_cast<long long>(elapsed.count()));
  }
  std::fprintf(
      stderr, "snapshot: %zu ASes, %zu edges, %zu links, %zu labels\n",
      snapshot.ases.size(), snapshot.edges.size(), snapshot.links.size(),
      snapshot.validation.size());

  // Reloads re-read the file the daemon serves from: --snapshot when
  // loading, --save when generating. Without a path, reloads fail closed.
  const std::string reload_path =
      !args->snapshot.empty() ? args->snapshot : args->save;
  serve::EngineHub::SnapshotLoader loader;
  if (!reload_path.empty()) {
    loader = [reload_path](std::string* error) {
      return io::load_snapshot_file(reload_path, error);
    };
  }
  const auto hub = std::make_shared<serve::EngineHub>(
      std::make_shared<const serve::QueryEngine>(std::move(snapshot)),
      std::move(loader));
  serve::AsrelService service{hub};

  serve::HttpServerOptions options;
  options.port = static_cast<std::uint16_t>(args->port);
  options.worker_threads = args->threads;
  options.request_timeout_ms = args->timeout_ms;
  options.request_deadline_ms = args->deadline_ms;
  options.drain_deadline_ms = args->drain_ms;
  options.max_pending_connections =
      static_cast<std::size_t>(args->max_pending < 1 ? 1 : args->max_pending);
  options.stats_supplement = [&service] { return service.stats_json(); };
  options.metrics_routes = serve::AsrelService::metric_routes();
  options.metrics_supplement =
      [&service](std::vector<obs::MetricSnapshot>& out) {
        service.collect_metrics(out);
      };
  if (args->trace) obs::Tracer::instance().set_enabled(true);
  serve::HttpServer server{
      [&service](const serve::HttpRequest& request) {
        return service.handle(request);
      },
      options};

  std::string error;
  if (!server.start(&error)) {
    std::fprintf(stderr, "error: %s\n", error.c_str());
    return 1;
  }
  g_hub = hub.get();
  std::signal(SIGINT, on_shutdown_signal);
  std::signal(SIGTERM, on_shutdown_signal);
  std::signal(SIGHUP, on_sighup);
  std::fprintf(stderr,
               "serving on port %u with %d workers "
               "(SIGHUP reloads, Ctrl-C drains)\n",
               server.port(), args->threads);

  while (!g_shutdown.load()) {
    if (hub->take_reload_request()) {
      const auto result = hub->reload();
      if (result.ok) {
        std::fprintf(stderr, "reloaded %s (epoch %llu)\n",
                     reload_path.c_str(),
                     static_cast<unsigned long long>(result.epoch));
      } else {
        std::fprintf(stderr,
                     "reload failed, still serving epoch %llu: %s\n",
                     static_cast<unsigned long long>(result.epoch),
                     result.error.c_str());
      }
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  std::fprintf(stderr, "draining (deadline %d ms)...\n", args->drain_ms);
  const serve::DrainReport drained = server.drain();
  g_hub = nullptr;
  const auto stats = server.stats();
  std::fprintf(stderr,
               "served %llu requests (%llu connections, %llu shed); "
               "drain: %llu finished, %llu aborted\n",
               static_cast<unsigned long long>(stats.requests),
               static_cast<unsigned long long>(stats.accepted),
               static_cast<unsigned long long>(stats.overload_rejected),
               static_cast<unsigned long long>(drained.drained),
               static_cast<unsigned long long>(drained.aborted));
  return 0;
}
