// asrelbias — command-line driver for the library.
//
//   asrelbias generate --out DIR [--as-count N] [--seed S]
//       Generate a world and export every data set (ground-truth as-rel,
//       TABLE_DUMP2 RIB dump, raw validation, delegated-extended files,
//       as2org, IRR) in its native on-disk format.
//
//   asrelbias infer --rib FILE [--algo gao|asrank|problink|toposcope]
//                   [--validation FILE] [--out FILE]
//       Run a classifier on a bgpdump-style RIB dump (ours or a real one)
//       and write the result in CAIDA as-rel format. ProbLink and
//       TopoScope train on validation data, so they additionally require
//       --validation (the §6 setup: the training subset is exactly the
//       biased validation data).
//
//   asrelbias eval --inferred FILE --validation FILE
//       Score an as-rel file against a validation file: the §6 metrics
//       (PPV/TPR for both positive classes, MCC) over the intersection.
//
//   asrelbias audit [--as-count N] [--seed S]
//       Full in-memory pipeline: Fig. 1/2 coverage, Tables 1-3, and the
//       §6.1 case study (same content as examples/quickstart).
#include <cstdio>
#include <cstring>
#include <iostream>
#include <filesystem>
#include <fstream>
#include <optional>
#include <string>

#include "core/bias_audit.hpp"
#include "obs/trace.hpp"
#include "core/case_study.hpp"
#include "core/scenario.hpp"
#include "infer/asrank.hpp"
#include "infer/gao.hpp"
#include "infer/problink.hpp"
#include "infer/toposcope.hpp"
#include "io/as_rel.hpp"
#include "io/rib_dump.hpp"
#include "io/validation_io.hpp"
#include "org/as2org.hpp"
#include "rpsl/synthesize.hpp"

namespace {

using namespace asrel;

struct Args {
  std::string command;
  int as_count = 12000;
  std::uint64_t seed = 42;
  unsigned threads = 0;  ///< 0 = auto; results identical for every value
  std::string out;
  std::string rib;
  std::string algo = "asrank";
  std::string inferred;
  std::string validation;
  std::string trace_out;  ///< Chrome-tracing JSON path; empty = tracing off
};

std::optional<Args> parse_args(int argc, char** argv) {
  if (argc < 2) return std::nullopt;
  Args args;
  args.command = argv[1];
  for (int i = 2; i + 1 < argc; i += 2) {
    const std::string_view flag = argv[i];
    const char* value = argv[i + 1];
    if (flag == "--as-count") {
      args.as_count = std::atoi(value);
    } else if (flag == "--seed") {
      args.seed = std::strtoull(value, nullptr, 10);
    } else if (flag == "--threads") {
      args.threads = static_cast<unsigned>(std::atoi(value));
    } else if (flag == "--out") {
      args.out = value;
    } else if (flag == "--rib") {
      args.rib = value;
    } else if (flag == "--algo") {
      args.algo = value;
    } else if (flag == "--inferred") {
      args.inferred = value;
    } else if (flag == "--validation") {
      args.validation = value;
    } else if (flag == "--trace-out") {
      args.trace_out = value;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", argv[i]);
      return std::nullopt;
    }
  }
  return args;
}

int usage() {
  std::fprintf(
      stderr,
      "usage:\n"
      "  asrelbias generate --out DIR [--as-count N] [--seed S]\n"
      "  asrelbias infer --rib FILE [--algo gao|asrank|problink|toposcope]\n"
      "                  [--validation FILE] [--out FILE]\n"
      "  asrelbias eval --inferred FILE --validation FILE\n"
      "  asrelbias audit [--as-count N] [--seed S]\n"
      "common: --threads N  worker count (0 = auto); output is identical\n"
      "        for every setting\n"
      "        --trace-out FILE  write a chrome://tracing JSON timeline of\n"
      "        the run's pipeline stages (results are unaffected)\n");
  return 2;
}

std::unique_ptr<core::Scenario> build_scenario(const Args& args) {
  core::ScenarioParams params;
  params.topology.as_count = args.as_count;
  params.topology.seed = args.seed;
  params.threads = args.threads;
  std::fprintf(stderr, "building scenario (%d ASes, seed %llu)...\n",
               args.as_count, static_cast<unsigned long long>(args.seed));
  return core::Scenario::build(params);
}

int cmd_generate(const Args& args) {
  if (args.out.empty()) return usage();
  const auto scenario = build_scenario(args);
  const std::filesystem::path dir = args.out;
  std::filesystem::create_directories(dir);
  const auto write = [&](const std::string& name, const auto& writer) {
    std::ofstream out{dir / name};
    writer(out);
    std::fprintf(stderr, "wrote %s\n", (dir / name).c_str());
  };
  write("ground-truth.as-rel.txt", [&](std::ostream& out) {
    io::write_as_rel(scenario->world().graph, out);
  });
  write("rib.table_dump2.txt", [&](std::ostream& out) {
    io::write_rib_dump(scenario->propagator(), scenario->paths(),
                       scenario->schemes(), {}, out);
  });
  write("validation.txt", [&](std::ostream& out) {
    io::write_validation(scenario->raw_validation(), out);
  });
  for (const auto& file : scenario->world().delegations) {
    write("delegated-" + std::string{rir::registry_name(file.registry)} +
              "-extended-" + file.serial,
          [&](std::ostream& out) { rir::write_delegation_file(file, out); });
  }
  write("as2org.txt", [&](std::ostream& out) {
    org::write_as2org(scenario->world().as2org, out);
  });
  write("irr.db", [&](std::ostream& out) {
    for (const auto& object :
         rpsl::synthesize_irr(scenario->world(), {})) {
      rpsl::write_autnum(object, out);
    }
  });
  return 0;
}

int cmd_infer(const Args& args) {
  if (args.rib.empty()) return usage();
  std::ifstream in{args.rib};
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", args.rib.c_str());
    return 1;
  }
  io::RibParseStats stats;
  const auto table = io::parse_rib_dump(in, &stats);
  std::fprintf(stderr, "parsed %zu routes (%zu malformed), %zu peers\n",
               stats.routes, stats.malformed,
               table.vantage_points().size());
  const auto observed = infer::ObservedPaths::build(table);
  std::fprintf(stderr, "sanitized: %zu paths, %zu ASes, %zu links\n",
               observed.path_count(), observed.as_count(),
               observed.link_count());

  // ProbLink and TopoScope train on validation labels (§6: the original
  // systems do exactly this, inheriting the data's bias).
  std::vector<val::CleanLabel> training;
  if (args.algo == "problink" || args.algo == "toposcope") {
    if (args.validation.empty()) {
      std::fprintf(stderr, "--algo %s requires --validation FILE\n",
                   args.algo.c_str());
      return 2;
    }
    std::ifstream validation_in{args.validation};
    if (!validation_in) {
      std::fprintf(stderr, "cannot open %s\n", args.validation.c_str());
      return 1;
    }
    const auto raw = io::parse_validation(validation_in);
    training = val::clean(raw, org::OrgMap{}, {});
    std::fprintf(stderr, "training on %zu cleaned validation labels\n",
                 training.size());
  }

  infer::Inference inference;
  if (args.algo == "gao") {
    inference = infer::run_gao(observed);
  } else if (args.algo == "asrank") {
    auto result = infer::run_asrank(observed);
    std::fprintf(stderr, "inferred clique of %zu ASes\n",
                 result.clique.size());
    inference = std::move(result.inference);
  } else if (args.algo == "problink") {
    const auto base = infer::run_asrank(observed);
    infer::ProbLinkParams params;
    params.threads = args.threads;
    auto result = infer::run_problink(observed, base, training, params);
    std::fprintf(stderr, "problink converged after %d iterations\n",
                 result.iterations_used);
    inference = std::move(result.inference);
  } else if (args.algo == "toposcope") {
    const auto base = infer::run_asrank(observed);
    infer::TopoScopeParams params;
    params.threads = args.threads;
    auto result = infer::run_toposcope(observed, base, training, params);
    std::fprintf(stderr,
                 "toposcope used %d VP groups, predicted %zu hidden links\n",
                 result.groups_used, result.hidden_links.size());
    inference = std::move(result.inference);
  } else {
    std::fprintf(stderr, "unknown --algo %s\n", args.algo.c_str());
    return 2;
  }

  if (args.out.empty()) {
    io::write_as_rel(inference, std::cout);
  } else {
    std::ofstream out{args.out};
    io::write_as_rel(inference, out);
    std::fprintf(stderr, "wrote %s (%zu links)\n", args.out.c_str(),
                 inference.size());
  }
  return 0;
}

int cmd_eval(const Args& args) {
  if (args.inferred.empty() || args.validation.empty()) return usage();
  std::ifstream inferred_in{args.inferred};
  std::ifstream validation_in{args.validation};
  if (!inferred_in || !validation_in) {
    std::fprintf(stderr, "cannot open input files\n");
    return 1;
  }
  const auto inference = io::parse_as_rel(inferred_in);
  const auto raw = io::parse_validation(validation_in);
  const auto labels = val::clean(raw, org::OrgMap{}, {});
  const auto pairs = eval::make_eval_pairs(labels, inference);
  const auto metrics = eval::compute_class_metrics(pairs, "Total°");
  std::printf("links: %zu inferred, %zu validated, %zu in both\n",
              inference.size(), labels.size(), pairs.size());
  std::printf("P2P as positive: PPV %.3f TPR %.3f (%zu links)\n",
              metrics.p2p.ppv(), metrics.p2p.tpr(), metrics.p2p_links);
  std::printf("P2C as positive: PPV %.3f TPR %.3f (%zu links)\n",
              metrics.p2c.ppv(), metrics.p2c.tpr(), metrics.p2c_links);
  std::printf("MCC %.3f | P2C orientation accuracy %.3f\n", metrics.mcc,
              metrics.orientation_accuracy);
  return 0;
}

int cmd_audit(const Args& args) {
  const auto scenario = build_scenario(args);
  const core::BiasAudit audit{*scenario};
  const auto asrank = infer::run_asrank(scenario->observed());
  const auto problink = infer::run_problink(scenario->observed(), asrank,
                                            scenario->validation());
  const auto toposcope = infer::run_toposcope(scenario->observed(), asrank,
                                              scenario->validation());

  std::printf("=== Fig. 1 — regional imbalance ===\n%s\n",
              eval::render_coverage(audit.regional_coverage()).c_str());
  std::printf("=== Fig. 2 — topological imbalance ===\n%s\n",
              eval::render_coverage(audit.topological_coverage()).c_str());
  std::printf("=== Table 1 — ASRank ===\n%s\n",
              eval::render_validation_table(
                  audit.validation_table(asrank.inference))
                  .c_str());
  std::printf("=== Table 2 — ProbLink ===\n%s\n",
              eval::render_validation_table(
                  audit.validation_table(problink.inference))
                  .c_str());
  std::printf("=== Table 3 — TopoScope ===\n%s\n",
              eval::render_validation_table(
                  audit.validation_table(toposcope.inference))
                  .c_str());
  std::printf("=== §6.1 case study ===\n%s",
              core::render(core::run_case_study(*scenario, audit,
                                                asrank.inference))
                  .c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = parse_args(argc, argv);
  if (!args) return usage();
  if (!args->trace_out.empty()) {
    asrel::obs::Tracer::instance().set_enabled(true);
  }

  int status = 2;
  if (args->command == "generate") {
    status = cmd_generate(*args);
  } else if (args->command == "infer") {
    status = cmd_infer(*args);
  } else if (args->command == "eval") {
    status = cmd_eval(*args);
  } else if (args->command == "audit") {
    status = cmd_audit(*args);
  } else {
    return usage();
  }

  if (!args->trace_out.empty()) {
    std::string error;
    if (asrel::obs::Tracer::instance().write_chrome_trace(args->trace_out,
                                                          &error)) {
      std::fprintf(stderr, "wrote trace %s\n", args->trace_out.c_str());
    } else {
      std::fprintf(stderr, "cannot write trace %s: %s\n",
                   args->trace_out.c_str(), error.c_str());
      if (status == 0) status = 1;
    }
  }
  return status;
}
