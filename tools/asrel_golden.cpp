// asrel_golden: regenerate or diff the golden report files.
//
//   asrel_golden --check  [--dir tests/golden]   (default; exit 1 on drift)
//   asrel_golden --update [--dir tests/golden]   (rewrite the files)
//
// The tool rebuilds the canonical scenario from scratch and renders the
// Fig. 1/2 + Table 1-3 JSON reports twice, refusing to proceed if the two
// passes disagree — golden files are only useful if the pipeline is
// byte-deterministic in the first place.
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <string_view>

#include "core/scenario.hpp"
#include "testing/canonical.hpp"

namespace {

std::optional<std::string> read_file(const std::filesystem::path& path) {
  std::ifstream in{path, std::ios::binary};
  if (!in) return std::nullopt;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

/// First line where the two strings differ, for a human-readable diff hint.
std::size_t first_difference_line(const std::string& a, const std::string& b) {
  std::size_t line = 1;
  for (std::size_t i = 0; i < a.size() && i < b.size(); ++i) {
    if (a[i] != b[i]) break;
    if (a[i] == '\n') ++line;
  }
  return line;
}

}  // namespace

int main(int argc, char** argv) {
  bool update = false;
  std::filesystem::path dir = "tests/golden";
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--update") {
      update = true;
    } else if (arg == "--check") {
      update = false;
    } else if (arg == "--dir" && i + 1 < argc) {
      dir = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: %s [--check|--update] [--dir tests/golden]\n",
                   argv[0]);
      return 2;
    }
  }

  std::printf("[golden] building canonical scenario...\n");
  const auto scenario =
      asrel::core::Scenario::build(asrel::testing::canonical_scenario_params());
  const auto reports = asrel::testing::build_golden_reports(*scenario);
  const auto second_pass = asrel::testing::build_golden_reports(*scenario);
  for (std::size_t i = 0; i < reports.size(); ++i) {
    if (reports[i].json.empty() || reports[i].json != second_pass[i].json) {
      std::fprintf(stderr,
                   "[golden] FATAL: %s is not byte-stable across two "
                   "builds — fix determinism before regenerating goldens\n",
                   reports[i].filename.c_str());
      return 1;
    }
  }

  if (update) {
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    for (const auto& report : reports) {
      const auto path = dir / report.filename;
      std::ofstream out{path, std::ios::binary};
      out.write(report.json.data(),
                static_cast<std::streamsize>(report.json.size()));
      if (!out) {
        std::fprintf(stderr, "[golden] cannot write %s\n",
                     path.string().c_str());
        return 1;
      }
      std::printf("[golden] wrote %s (%zu bytes)\n", path.string().c_str(),
                  report.json.size());
    }
    return 0;
  }

  int drift = 0;
  for (const auto& report : reports) {
    const auto path = dir / report.filename;
    const auto checked_in = read_file(path);
    if (!checked_in.has_value()) {
      std::fprintf(stderr, "[golden] MISSING %s (run with --update)\n",
                   path.string().c_str());
      ++drift;
    } else if (*checked_in != report.json) {
      std::fprintf(stderr,
                   "[golden] DRIFT %s: first difference at line %zu "
                   "(%zu -> %zu bytes)\n",
                   path.string().c_str(),
                   first_difference_line(*checked_in, report.json),
                   checked_in->size(), report.json.size());
      ++drift;
    } else {
      std::printf("[golden] ok %s\n", path.string().c_str());
    }
  }
  if (drift != 0) {
    std::fprintf(stderr,
                 "[golden] %d file(s) drifted. If intended, rerun with "
                 "--update and commit the result.\n",
                 drift);
    return 1;
  }
  return 0;
}
