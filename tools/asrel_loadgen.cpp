// asrel_loadgen — concurrent load generator for asrel_serve.
//
//   asrel_loadgen --port P [--host 127.0.0.1] [--connections C]
//                 [--duration-ms MS | --requests N] [--mode rel|mixed]
//                 [--pipeline N] [--retries R] [--backoff-us US]
//                 [--jitter-seed S] [--epoch-watch] [--verify-request-id]
//
// --verify-request-id tags every request with a generated X-Request-Id
// (16 hex digits, the server's canonical form) and asserts the response
// echoes it byte-for-byte; any mismatch fails the run. The summary then
// reports the ids of the slowest and the failed requests — paste one
// into the server's /slowz, /tracez?id= or /logz?id= to see its whole
// story. Single-request mode only (in a pipelined burst the echo is
// positional, and this tool reads burst responses status-only).
//
// --pipeline N sends N keep-alive requests back-to-back in one write and
// then reads the N responses — HTTP/1.1 pipelining. Against the epoll
// front end this amortizes syscalls on both sides (one read picks up the
// whole burst, one writev flushes the whole reply train), which is how
// the serve path hits memory-speed throughput on a single core. Latency
// is recorded per *burst* in this mode.
//
// --epoch-watch runs a sidecar poller against /statsz for the whole run,
// tracking the served snapshot epoch (the one stamped in the snapshot
// header by the streaming publisher). The summary reports every distinct
// epoch observed, whether the sequence ever regressed, and whether any
// request error landed within +/-50 ms of an epoch swap — the smoking gun
// for a non-atomic publication. Regressions and swap-straddling errors
// fail the run.
//
// Opens C persistent (keep-alive) connections, fetches a sample of real
// links from /links, then hammers /rel point lookups (plus periodic
// aggregate-report hits in --mode mixed), and reports achieved QPS and
// p50/p90/p99 latency.
//
// Responses are bucketed three ways: success (200), shed (503 — the
// server's admission control asked us to back off; this is the server
// working as designed, not an error), and error (transport failure or any
// other status). Connect failures and sheds are retried with jittered
// exponential backoff (base --backoff-us, doubling per attempt, up to
// --retries attempts per request); the jitter stream is seeded so two
// runs with the same seed replay the same backoff schedule. The tool
// exits non-zero only if true errors occurred.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "obs/log.hpp"
#include "obs/metrics.hpp"

namespace {

struct Args {
  std::string host = "127.0.0.1";
  int port = 0;
  int connections = 4;
  long duration_ms = 3000;
  long requests = 0;  ///< 0 = use duration
  std::string mode = "rel";
  int pipeline = 1;          ///< requests per pipelined burst (1 = off)
  int retries = 3;           ///< extra attempts per request on connect/5xx
  long backoff_us = 2000;    ///< first backoff; doubles per attempt
  std::uint64_t jitter_seed = 1;
  bool epoch_watch = false;  ///< poll /statsz for snapshot epoch swaps
  bool verify_request_id = false;  ///< tag requests, assert the echo
};

int usage() {
  std::fprintf(
      stderr,
      "usage: asrel_loadgen --port P [--host H] [--connections C]\n"
      "       [--duration-ms MS | --requests N] [--mode rel|mixed]\n"
      "       [--pipeline N] [--retries R] [--backoff-us US]\n"
      "       [--jitter-seed S] [--epoch-watch] [--verify-request-id]\n");
  return 2;
}

std::optional<Args> parse_args(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    const std::string_view flag = argv[i];
    if (flag == "--epoch-watch") {
      args.epoch_watch = true;
      continue;
    }
    if (flag == "--verify-request-id") {
      args.verify_request_id = true;
      continue;
    }
    if (i + 1 >= argc) return std::nullopt;
    const char* value = argv[++i];
    if (flag == "--host") {
      args.host = value;
    } else if (flag == "--port") {
      args.port = std::atoi(value);
    } else if (flag == "--connections") {
      args.connections = std::atoi(value);
    } else if (flag == "--duration-ms") {
      args.duration_ms = std::atol(value);
    } else if (flag == "--requests") {
      args.requests = std::atol(value);
    } else if (flag == "--mode") {
      args.mode = value;
    } else if (flag == "--pipeline") {
      args.pipeline = std::atoi(value);
    } else if (flag == "--retries") {
      args.retries = std::atoi(value);
    } else if (flag == "--backoff-us") {
      args.backoff_us = std::atol(value);
    } else if (flag == "--jitter-seed") {
      args.jitter_seed = std::strtoull(value, nullptr, 10);
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", argv[i - 1]);
      return std::nullopt;
    }
  }
  if (args.port <= 0 || args.connections <= 0) return std::nullopt;
  if (args.mode != "rel" && args.mode != "mixed") return std::nullopt;
  if (args.pipeline < 1) args.pipeline = 1;
  if (args.retries < 0) args.retries = 0;
  if (args.verify_request_id && args.pipeline > 1) {
    std::fprintf(stderr,
                 "--verify-request-id requires --pipeline 1 (burst "
                 "responses are read status-only)\n");
    return std::nullopt;
  }
  return args;
}

/// SplitMix64: deterministic jitter so a backoff schedule can be replayed.
std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

/// Exponential backoff with full jitter: sleep uniform[0, base << attempt).
void backoff_sleep(long base_us, int attempt, std::uint64_t& rng) {
  const long window = base_us << std::min(attempt, 16);
  const long sleep_us =
      window <= 0 ? 0 : static_cast<long>(splitmix64(rng) %
                                          static_cast<std::uint64_t>(window));
  if (sleep_us > 0) {
    std::this_thread::sleep_for(std::chrono::microseconds(sleep_us));
  }
}

/// One persistent keep-alive HTTP connection.
class Connection {
 public:
  ~Connection() { close(); }

  bool open(const std::string& host, int port) {
    close();
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) return false;
    sockaddr_in address{};
    address.sin_family = AF_INET;
    address.sin_port = htons(static_cast<std::uint16_t>(port));
    if (::inet_pton(AF_INET, host.c_str(), &address.sin_addr) != 1) {
      close();
      return false;
    }
    if (::connect(fd_, reinterpret_cast<sockaddr*>(&address),
                  sizeof(address)) != 0) {
      close();
      return false;
    }
    const int one = 1;
    ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    leftover_.clear();
    return true;
  }

  void close() {
    if (fd_ >= 0) ::close(fd_);
    fd_ = -1;
  }

  [[nodiscard]] bool is_open() const { return fd_ >= 0; }

  /// Sends one GET and reads the full response. Returns the HTTP status,
  /// or -1 on transport/parse failure. A nonempty `request_id` is sent as
  /// X-Request-Id; a non-null `echoed_id` receives the response's
  /// X-Request-Id header value (empty if absent).
  int get(const std::string& path, std::string* body = nullptr,
          const std::string& request_id = std::string{},
          std::string* echoed_id = nullptr) {
    std::string request = "GET " + path + " HTTP/1.1\r\nHost: loadgen\r\n";
    if (!request_id.empty()) {
      request += "X-Request-Id: " + request_id + "\r\n";
    }
    request += "\r\n";
    if (!send_all(request)) return -1;
    return read_response(body, echoed_id);
  }

  /// Sends `count` pipelined requests as one write and reads the response
  /// train in order, appending each status to *statuses. Returns the
  /// number of responses read — short when the server closes mid-train
  /// (shed responses carry "Connection: close") or the transport dies —
  /// or -1 if the send itself failed (nothing was consumed; the whole
  /// burst is safe to resend on a fresh connection).
  int burst(const std::string& blob, int count, std::vector<int>* statuses) {
    if (!send_all(blob)) return -1;
    int read = 0;
    while (read < count) {
      const int status = read_response(nullptr);
      if (status < 0) {
        close();
        break;
      }
      statuses->push_back(status);
      ++read;
      if (!is_open()) break;  // response carried Connection: close
    }
    return read;
  }

 private:
  /// Reads one complete response (headers + Content-Length body) from
  /// the carried-over buffer plus the socket. Returns the HTTP status or
  /// -1 on transport/parse failure.
  int read_response(std::string* body, std::string* echoed_id = nullptr) {
    // Read until the header block is complete.
    std::string data = std::move(leftover_);
    leftover_.clear();
    std::size_t header_end;
    while ((header_end = data.find("\r\n\r\n")) == std::string::npos) {
      if (!recv_more(&data)) return -1;
    }

    // Status line: "HTTP/1.1 200 OK".
    const std::size_t space = data.find(' ');
    if (space == std::string::npos || space + 4 > data.size()) return -1;
    const int status = std::atoi(data.c_str() + space + 1);

    if (echoed_id != nullptr) {
      echoed_id->clear();
      const std::size_t at = data.find("X-Request-Id: ");
      if (at != std::string::npos && at < header_end) {
        const std::size_t value = at + 14;
        const std::size_t end = data.find("\r\n", value);
        if (end != std::string::npos) {
          *echoed_id = data.substr(value, end - value);
        }
      }
    }

    // Body: Content-Length is always present in our server's responses.
    std::size_t content_length = 0;
    const std::size_t cl = data.find("Content-Length: ");
    if (cl != std::string::npos && cl < header_end) {
      content_length = static_cast<std::size_t>(
          std::strtoull(data.c_str() + cl + 16, nullptr, 10));
    }
    const std::size_t total = header_end + 4 + content_length;
    while (data.size() < total) {
      if (!recv_more(&data)) return -1;
    }
    if (body != nullptr) {
      *body = data.substr(header_end + 4, content_length);
    }
    // A shed or error response carries "Connection: close": the server
    // will not read another request on this socket.
    if (data.find("Connection: close") < header_end) {
      leftover_.clear();
      close();
    } else {
      leftover_ = data.substr(total);
    }
    return status;
  }

  bool send_all(std::string_view bytes) {
    std::size_t sent = 0;
    while (sent < bytes.size()) {
      const ssize_t n = ::send(fd_, bytes.data() + sent,
                               bytes.size() - sent, MSG_NOSIGNAL);
      if (n <= 0) return false;
      sent += static_cast<std::size_t>(n);
    }
    return true;
  }

  bool recv_more(std::string* data) {
    char chunk[8192];
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n <= 0) return false;
    data->append(chunk, static_cast<std::size_t>(n));
    return true;
  }

  int fd_ = -1;
  std::string leftover_;
};

/// Pulls the [[a,b],...] pairs out of the /links response without a JSON
/// parser: scan for integers after the "links" key.
std::vector<std::pair<std::uint32_t, std::uint32_t>> parse_links(
    const std::string& body) {
  std::vector<std::pair<std::uint32_t, std::uint32_t>> links;
  const std::size_t start = body.find("\"links\"");
  if (start == std::string::npos) return links;
  std::vector<std::uint32_t> numbers;
  std::uint64_t current = 0;
  bool in_number = false;
  for (std::size_t i = start; i < body.size(); ++i) {
    const char c = body[i];
    if (c >= '0' && c <= '9') {
      current = current * 10 + static_cast<std::uint64_t>(c - '0');
      in_number = true;
    } else if (in_number) {
      numbers.push_back(static_cast<std::uint32_t>(current));
      current = 0;
      in_number = false;
    }
  }
  for (std::size_t i = 0; i + 1 < numbers.size(); i += 2) {
    links.emplace_back(numbers[i], numbers[i + 1]);
  }
  return links;
}

struct WorkerResult {
  double max_latency_us = 0.0;
  long requests = 0;   ///< requests attempted (not counting retries)
  long success = 0;    ///< final status 200
  long shed = 0;       ///< saw at least one 503 (even if a retry succeeded)
  long retried = 0;    ///< retry attempts spent
  long errors = 0;     ///< exhausted retries without a 200/503, or hard fail
  /// When each error resolved — correlated against epoch-swap times to
  /// catch failures that straddle a snapshot publication.
  std::vector<std::chrono::steady_clock::time_point> error_times;
  // --verify-request-id bookkeeping.
  long id_mismatches = 0;  ///< echoed X-Request-Id differed from the sent one
  /// (latency_us, id) of this worker's slowest verified requests; the
  /// report merges all workers and keeps the overall worst.
  std::vector<std::pair<double, std::string>> slow_ids;
  std::vector<std::string> failed_ids;  ///< ids of requests counted as errors
};

constexpr std::size_t kSlowIdsKept = 8;
constexpr std::size_t kFailedIdsKept = 16;

/// Sidecar /statsz poller tracking the served snapshot-header epoch.
struct EpochWatch {
  std::vector<std::uint64_t> epochs;  ///< distinct values, in observed order
  std::vector<std::chrono::steady_clock::time_point> swap_times;
  long polls = 0;
  long poll_failures = 0;
  bool regressed = false;
};

/// Extracts the snapshot-header epoch from a /statsz body:
/// ..."snapshot":{"epoch":N,... (distinct from the reload epoch).
std::optional<std::uint64_t> parse_snapshot_epoch(const std::string& body) {
  static constexpr std::string_view kKey = "\"snapshot\":{\"epoch\":";
  const std::size_t at = body.find(kKey);
  if (at == std::string::npos) return std::nullopt;
  return std::strtoull(body.c_str() + at + kKey.size(), nullptr, 10);
}

void run_epoch_watch(const Args& args, const std::atomic<bool>& stop,
                     EpochWatch& watch) {
  Connection connection;
  while (!stop.load(std::memory_order_relaxed)) {
    std::string body;
    const bool ok = (connection.is_open() ||
                     connection.open(args.host, args.port)) &&
                    connection.get("/statsz", &body) == 200;
    ++watch.polls;
    const auto epoch = ok ? parse_snapshot_epoch(body) : std::nullopt;
    if (!epoch) {
      ++watch.poll_failures;
      connection.close();
    } else if (watch.epochs.empty() || watch.epochs.back() != *epoch) {
      if (!watch.epochs.empty()) {
        watch.swap_times.push_back(std::chrono::steady_clock::now());
        if (*epoch < watch.epochs.back()) watch.regressed = true;
      }
      watch.epochs.push_back(*epoch);
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = parse_args(argc, argv);
  if (!args) return usage();

  // ---- fetch a sample of real links to query ----
  Connection bootstrap;
  if (!bootstrap.open(args->host, args->port)) {
    std::fprintf(stderr, "cannot connect to %s:%d\n", args->host.c_str(),
                 args->port);
    return 1;
  }
  std::string body;
  if (bootstrap.get("/links?limit=1024", &body) != 200) {
    std::fprintf(stderr, "GET /links failed\n");
    return 1;
  }
  const auto links = parse_links(body);
  if (links.empty()) {
    std::fprintf(stderr, "server returned no links\n");
    return 1;
  }
  bootstrap.close();
  std::fprintf(stderr, "sampling %zu links with %d connections", links.size(),
               args->connections);
  if (args->pipeline > 1) {
    std::fprintf(stderr, " (pipeline depth %d)", args->pipeline);
  }
  std::fprintf(stderr, "\n");

  // ---- hammer ----
  std::atomic<long> budget{args->requests > 0 ? args->requests
                                              : (1L << 62)};
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::milliseconds(args->requests > 0 ? (1L << 40)
                                                   : args->duration_ms);
  const bool mixed = args->mode == "mixed";

  // The same histogram type + quantile estimator the server uses for its
  // per-route /metricsz latencies, so client- and server-side percentiles
  // are directly comparable. observe() is thread-striped, so every worker
  // writes into this one instance without contention.
  asrel::obs::Histogram latency_hist{asrel::obs::latency_buckets_us()};

  std::vector<WorkerResult> results(
      static_cast<std::size_t>(args->connections));
  std::vector<std::thread> workers;
  std::atomic<bool> watch_stop{false};
  EpochWatch watch;
  std::thread watcher;
  if (args->epoch_watch) {
    watcher = std::thread{
        [&] { run_epoch_watch(*args, watch_stop, watch); }};
  }
  const auto started = std::chrono::steady_clock::now();
  for (int w = 0; w < args->connections; ++w) {
    workers.emplace_back([&, w] {
      WorkerResult& result = results[static_cast<std::size_t>(w)];
      std::uint64_t rng = args->jitter_seed + static_cast<std::uint64_t>(w);
      // Ids come from a stream separate from the backoff jitter, so
      // tagging requests never perturbs the replayable backoff schedule.
      std::uint64_t id_rng =
          (args->jitter_seed << 8) + static_cast<std::uint64_t>(w) + 1;
      const bool verify_ids = args->verify_request_id;
      Connection connection;
      std::size_t cursor = static_cast<std::size_t>(w) * 7919;
      const char* reports[] = {"/report/regional", "/report/topological",
                               "/report/table?algo=asrank"};
      const auto next_path = [&]() {
        std::string path;
        if (mixed && result.requests % 64 == 63) {
          path = reports[cursor % 3];
        } else {
          const auto& [a, b] = links[cursor % links.size()];
          path = "/rel?a=" + std::to_string(a) + "&b=" + std::to_string(b);
        }
        ++cursor;
        ++result.requests;
        return path;
      };

      if (args->pipeline > 1) {
        // Burst mode: one write carries the whole request train; one
        // latency sample covers the whole burst. A send failure (nothing
        // consumed) retries the full burst on a fresh connection; once
        // responses start flowing there is no per-request retry — a
        // server close after a 503 sheds the unread tail with it, and a
        // transport failure mid-train counts the tail as errors.
        while (std::chrono::steady_clock::now() < deadline) {
          const long granted =
              budget.fetch_sub(args->pipeline, std::memory_order_relaxed);
          if (granted <= 0) break;
          const int batch =
              static_cast<int>(std::min<long>(args->pipeline, granted));
          std::string blob;
          for (int i = 0; i < batch; ++i) {
            blob += "GET " + next_path() + " HTTP/1.1\r\nHost: loadgen\r\n\r\n";
          }
          for (int attempt = 0; attempt <= args->retries; ++attempt) {
            if (attempt > 0) {
              ++result.retried;
              backoff_sleep(args->backoff_us, attempt - 1, rng);
            }
            if (!connection.is_open() &&
                !connection.open(args->host, args->port)) {
              continue;  // connect refused/reset: back off and retry
            }
            const auto t0 = std::chrono::steady_clock::now();
            std::vector<int> statuses;
            const int got = connection.burst(blob, batch, &statuses);
            const auto t1 = std::chrono::steady_clock::now();
            if (got < 0) {
              connection.close();  // send failed: resend the whole burst
              continue;
            }
            long shed_tail = 0, error_tail = 0;
            if (got < batch) {
              // Server closed after a shed response: the tail was never
              // served, which is shedding too. Any other short train is
              // a transport failure.
              const bool shed_close = !statuses.empty() &&
                                      statuses.back() == 503 &&
                                      !connection.is_open();
              (shed_close ? shed_tail : error_tail) = batch - got;
            }
            long ok = 0;
            for (const int status : statuses) {
              if (status == 200) {
                ++ok;
              } else if (status == 503) {
                ++result.shed;
              } else {
                ++error_tail;
              }
            }
            result.success += ok;
            result.shed += shed_tail;
            if (error_tail > 0) {
              result.errors += error_tail;
              result.error_times.push_back(t1);
            }
            if (got == batch && ok == batch) {
              const double latency_us =
                  std::chrono::duration<double, std::micro>(t1 - t0).count();
              latency_hist.observe(latency_us);
              result.max_latency_us =
                  std::max(result.max_latency_us, latency_us);
            }
            break;  // burst resolved one way or another
          }
        }
        return;
      }

      while (budget.fetch_sub(1, std::memory_order_relaxed) > 0 &&
             std::chrono::steady_clock::now() < deadline) {
        const std::string path = next_path();
        // One id per logical request: retries reattempt the same request,
        // so they carry the same tag.
        std::string sent_id;
        if (verify_ids) {
          sent_id = asrel::obs::format_request_id(splitmix64(id_rng));
        }
        const auto note_failed_id = [&] {
          if (verify_ids && result.failed_ids.size() < kFailedIdsKept) {
            result.failed_ids.push_back(sent_id);
          }
        };

        // One request = up to 1 + retries attempts. Connect failures and
        // 503 sheds back off (jittered exponential) and retry; anything
        // else resolves the request immediately.
        bool resolved = false;
        for (int attempt = 0; attempt <= args->retries; ++attempt) {
          if (attempt > 0) {
            ++result.retried;
            backoff_sleep(args->backoff_us, attempt - 1, rng);
          }
          if (!connection.is_open() &&
              !connection.open(args->host, args->port)) {
            continue;  // connect refused/reset: back off and retry
          }
          const auto t0 = std::chrono::steady_clock::now();
          std::string echoed_id;
          const int status = connection.get(
              path, nullptr, sent_id, verify_ids ? &echoed_id : nullptr);
          const auto t1 = std::chrono::steady_clock::now();
          if (status == 200) {
            ++result.success;
            const double latency_us =
                std::chrono::duration<double, std::micro>(t1 - t0).count();
            latency_hist.observe(latency_us);
            result.max_latency_us = std::max(result.max_latency_us,
                                             latency_us);
            if (verify_ids) {
              if (echoed_id != sent_id) ++result.id_mismatches;
              result.slow_ids.emplace_back(latency_us, sent_id);
              if (result.slow_ids.size() > 2 * kSlowIdsKept) {
                std::partial_sort(
                    result.slow_ids.begin(),
                    result.slow_ids.begin() + kSlowIdsKept,
                    result.slow_ids.end(), std::greater<>{});
                result.slow_ids.resize(kSlowIdsKept);
              }
            }
            resolved = true;
            break;
          }
          if (status == 503) {
            // Shed by admission control: record it, back off, retry.
            ++result.shed;
            resolved = true;  // server answered; not an error even if
                              // every retry is shed too
            continue;
          }
          if (status < 0) {
            connection.close();  // transport failure: reconnect on retry
            continue;
          }
          ++result.errors;  // unexpected status (4xx/5xx): no retry
          result.error_times.push_back(t1);
          note_failed_id();
          resolved = true;
          break;
        }
        if (!resolved) {
          ++result.errors;  // retry budget exhausted
          result.error_times.push_back(std::chrono::steady_clock::now());
          note_failed_id();
        }
      }
    });
  }
  for (auto& worker : workers) worker.join();
  if (watcher.joinable()) {
    watch_stop.store(true, std::memory_order_relaxed);
    watcher.join();
  }
  const double elapsed_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - started)
          .count();

  // ---- report ----
  double max_latency_us = 0.0;
  long total = 0, success = 0, shed = 0, retried = 0, errors = 0;
  for (auto& result : results) {
    total += result.requests;
    success += result.success;
    shed += result.shed;
    retried += result.retried;
    errors += result.errors;
    max_latency_us = std::max(max_latency_us, result.max_latency_us);
  }
  const auto latency = latency_hist.snapshot();
  std::printf("requests:    %ld\n", total);
  std::printf("success:     %ld\n", success);
  std::printf("shed (503):  %ld\n", shed);
  std::printf("retries:     %ld\n", retried);
  std::printf("errors:      %ld\n", errors);
  std::printf("elapsed:     %.3f s\n", elapsed_s);
  std::printf("throughput:  %.0f req/s\n",
              elapsed_s > 0 ? static_cast<double>(success) / elapsed_s : 0.0);
  std::printf("latency p50: %.0f us\n",
              asrel::obs::histogram_quantile(latency, 0.50));
  std::printf("latency p90: %.0f us\n",
              asrel::obs::histogram_quantile(latency, 0.90));
  std::printf("latency p99: %.0f us\n",
              asrel::obs::histogram_quantile(latency, 0.99));
  std::printf("latency max: %.0f us\n", max_latency_us);

  bool id_failed = false;
  if (args->verify_request_id) {
    long mismatches = 0;
    std::vector<std::pair<double, std::string>> slow;
    std::vector<std::string> failed;
    for (const auto& result : results) {
      mismatches += result.id_mismatches;
      slow.insert(slow.end(), result.slow_ids.begin(),
                  result.slow_ids.end());
      failed.insert(failed.end(), result.failed_ids.begin(),
                    result.failed_ids.end());
    }
    std::sort(slow.begin(), slow.end(), std::greater<>{});
    if (slow.size() > kSlowIdsKept) slow.resize(kSlowIdsKept);
    std::printf("request-id mismatches: %ld\n", mismatches);
    for (const auto& [latency_us, id] : slow) {
      std::printf("slowest: id=%s latency=%.0f us\n", id.c_str(),
                  latency_us);
    }
    for (const auto& id : failed) {
      std::printf("failed:  id=%s\n", id.c_str());
    }
    if (mismatches > 0) {
      std::fprintf(stderr,
                   "request-id verification FAILED: %ld echo mismatches\n",
                   mismatches);
      id_failed = true;
    }
  }

  bool watch_failed = false;
  if (args->epoch_watch) {
    // A request error within +/-50 ms of an epoch swap would mean the
    // publication was visible to clients as anything but atomic.
    long straddling = 0;
    for (const auto& result : results) {
      for (const auto& when : result.error_times) {
        for (const auto& swap : watch.swap_times) {
          const auto gap = when > swap ? when - swap : swap - when;
          if (gap <= std::chrono::milliseconds(50)) {
            ++straddling;
            break;
          }
        }
      }
    }
    std::printf("epochs:      %zu distinct (", watch.epochs.size());
    for (std::size_t i = 0; i < watch.epochs.size(); ++i) {
      std::printf("%s%llu", i == 0 ? "" : " -> ",
                  static_cast<unsigned long long>(watch.epochs[i]));
    }
    std::printf(") over %ld polls (%ld failed)\n", watch.polls,
                watch.poll_failures);
    std::printf("epoch regressions: %s\n", watch.regressed ? "YES" : "none");
    std::printf("errors within 50ms of a swap: %ld\n", straddling);
    if (watch.epochs.empty()) {
      std::fprintf(stderr, "epoch-watch: never observed an epoch\n");
      watch_failed = true;
    }
    watch_failed = watch_failed || watch.regressed || straddling > 0;
  }
  return errors == 0 && !watch_failed && !id_failed ? 0 : 1;
}
