// asrel_loadgen — concurrent load generator for asrel_serve.
//
//   asrel_loadgen --port P [--host 127.0.0.1] [--connections C]
//                 [--duration-ms MS | --requests N] [--mode rel|mixed]
//
// Opens C persistent (keep-alive) connections, fetches a sample of real
// links from /links, then hammers /rel point lookups (plus periodic
// aggregate-report hits in --mode mixed), and reports achieved QPS and
// p50/p90/p99 latency. Any non-200 response or transport error counts as
// an error; the tool exits non-zero if any occurred.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <string>
#include <thread>
#include <vector>

namespace {

struct Args {
  std::string host = "127.0.0.1";
  int port = 0;
  int connections = 4;
  long duration_ms = 3000;
  long requests = 0;  ///< 0 = use duration
  std::string mode = "rel";
};

int usage() {
  std::fprintf(stderr,
               "usage: asrel_loadgen --port P [--host H] [--connections C]\n"
               "       [--duration-ms MS | --requests N] [--mode rel|mixed]\n");
  return 2;
}

std::optional<Args> parse_args(int argc, char** argv) {
  Args args;
  for (int i = 1; i + 1 < argc; i += 2) {
    const std::string_view flag = argv[i];
    const char* value = argv[i + 1];
    if (flag == "--host") {
      args.host = value;
    } else if (flag == "--port") {
      args.port = std::atoi(value);
    } else if (flag == "--connections") {
      args.connections = std::atoi(value);
    } else if (flag == "--duration-ms") {
      args.duration_ms = std::atol(value);
    } else if (flag == "--requests") {
      args.requests = std::atol(value);
    } else if (flag == "--mode") {
      args.mode = value;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", argv[i]);
      return std::nullopt;
    }
  }
  if (args.port <= 0 || args.connections <= 0) return std::nullopt;
  if (args.mode != "rel" && args.mode != "mixed") return std::nullopt;
  return args;
}

/// One persistent keep-alive HTTP connection.
class Connection {
 public:
  ~Connection() { close(); }

  bool open(const std::string& host, int port) {
    close();
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) return false;
    sockaddr_in address{};
    address.sin_family = AF_INET;
    address.sin_port = htons(static_cast<std::uint16_t>(port));
    if (::inet_pton(AF_INET, host.c_str(), &address.sin_addr) != 1) {
      close();
      return false;
    }
    if (::connect(fd_, reinterpret_cast<sockaddr*>(&address),
                  sizeof(address)) != 0) {
      close();
      return false;
    }
    const int one = 1;
    ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    leftover_.clear();
    return true;
  }

  void close() {
    if (fd_ >= 0) ::close(fd_);
    fd_ = -1;
  }

  [[nodiscard]] bool is_open() const { return fd_ >= 0; }

  /// Sends one GET and reads the full response. Returns the HTTP status,
  /// or -1 on transport/parse failure.
  int get(const std::string& path, std::string* body = nullptr) {
    const std::string request =
        "GET " + path + " HTTP/1.1\r\nHost: loadgen\r\n\r\n";
    if (!send_all(request)) return -1;

    // Read until the header block is complete.
    std::string data = std::move(leftover_);
    leftover_.clear();
    std::size_t header_end;
    while ((header_end = data.find("\r\n\r\n")) == std::string::npos) {
      if (!recv_more(&data)) return -1;
    }

    // Status line: "HTTP/1.1 200 OK".
    const std::size_t space = data.find(' ');
    if (space == std::string::npos || space + 4 > data.size()) return -1;
    const int status = std::atoi(data.c_str() + space + 1);

    // Body: Content-Length is always present in our server's responses.
    std::size_t content_length = 0;
    const std::size_t cl = data.find("Content-Length: ");
    if (cl != std::string::npos && cl < header_end) {
      content_length = static_cast<std::size_t>(
          std::strtoull(data.c_str() + cl + 16, nullptr, 10));
    }
    const std::size_t total = header_end + 4 + content_length;
    while (data.size() < total) {
      if (!recv_more(&data)) return -1;
    }
    if (body != nullptr) {
      *body = data.substr(header_end + 4, content_length);
    }
    leftover_ = data.substr(total);
    return status;
  }

 private:
  bool send_all(std::string_view bytes) {
    std::size_t sent = 0;
    while (sent < bytes.size()) {
      const ssize_t n = ::send(fd_, bytes.data() + sent,
                               bytes.size() - sent, MSG_NOSIGNAL);
      if (n <= 0) return false;
      sent += static_cast<std::size_t>(n);
    }
    return true;
  }

  bool recv_more(std::string* data) {
    char chunk[8192];
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n <= 0) return false;
    data->append(chunk, static_cast<std::size_t>(n));
    return true;
  }

  int fd_ = -1;
  std::string leftover_;
};

/// Pulls the [[a,b],...] pairs out of the /links response without a JSON
/// parser: scan for integers after the "links" key.
std::vector<std::pair<std::uint32_t, std::uint32_t>> parse_links(
    const std::string& body) {
  std::vector<std::pair<std::uint32_t, std::uint32_t>> links;
  const std::size_t start = body.find("\"links\"");
  if (start == std::string::npos) return links;
  std::vector<std::uint32_t> numbers;
  std::uint64_t current = 0;
  bool in_number = false;
  for (std::size_t i = start; i < body.size(); ++i) {
    const char c = body[i];
    if (c >= '0' && c <= '9') {
      current = current * 10 + static_cast<std::uint64_t>(c - '0');
      in_number = true;
    } else if (in_number) {
      numbers.push_back(static_cast<std::uint32_t>(current));
      current = 0;
      in_number = false;
    }
  }
  for (std::size_t i = 0; i + 1 < numbers.size(); i += 2) {
    links.emplace_back(numbers[i], numbers[i + 1]);
  }
  return links;
}

struct WorkerResult {
  std::vector<double> latencies_us;
  long requests = 0;
  long errors = 0;
};

double percentile(std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  const auto index = static_cast<std::size_t>(
      p * static_cast<double>(sorted.size() - 1));
  return sorted[index];
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = parse_args(argc, argv);
  if (!args) return usage();

  // ---- fetch a sample of real links to query ----
  Connection bootstrap;
  if (!bootstrap.open(args->host, args->port)) {
    std::fprintf(stderr, "cannot connect to %s:%d\n", args->host.c_str(),
                 args->port);
    return 1;
  }
  std::string body;
  if (bootstrap.get("/links?limit=1024", &body) != 200) {
    std::fprintf(stderr, "GET /links failed\n");
    return 1;
  }
  const auto links = parse_links(body);
  if (links.empty()) {
    std::fprintf(stderr, "server returned no links\n");
    return 1;
  }
  bootstrap.close();
  std::fprintf(stderr, "sampling %zu links with %d connections\n",
               links.size(), args->connections);

  // ---- hammer ----
  std::atomic<long> budget{args->requests > 0 ? args->requests
                                              : (1L << 62)};
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::milliseconds(args->requests > 0 ? (1L << 40)
                                                   : args->duration_ms);
  const bool mixed = args->mode == "mixed";

  std::vector<WorkerResult> results(
      static_cast<std::size_t>(args->connections));
  std::vector<std::thread> workers;
  const auto started = std::chrono::steady_clock::now();
  for (int w = 0; w < args->connections; ++w) {
    workers.emplace_back([&, w] {
      WorkerResult& result = results[static_cast<std::size_t>(w)];
      Connection connection;
      if (!connection.open(args->host, args->port)) {
        ++result.errors;
        return;
      }
      std::size_t cursor = static_cast<std::size_t>(w) * 7919;
      const char* reports[] = {"/report/regional", "/report/topological",
                               "/report/table?algo=asrank"};
      while (budget.fetch_sub(1, std::memory_order_relaxed) > 0 &&
             std::chrono::steady_clock::now() < deadline) {
        std::string path;
        if (mixed && result.requests % 64 == 63) {
          path = reports[cursor % 3];
        } else {
          const auto& [a, b] = links[cursor % links.size()];
          path = "/rel?a=" + std::to_string(a) + "&b=" + std::to_string(b);
        }
        ++cursor;
        const auto t0 = std::chrono::steady_clock::now();
        const int status = connection.get(path);
        const auto t1 = std::chrono::steady_clock::now();
        ++result.requests;
        if (status != 200) {
          ++result.errors;
          if (status < 0 && !connection.open(args->host, args->port)) {
            return;  // server gone
          }
          continue;
        }
        result.latencies_us.push_back(
            std::chrono::duration<double, std::micro>(t1 - t0).count());
      }
    });
  }
  for (auto& worker : workers) worker.join();
  const double elapsed_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - started)
          .count();

  // ---- report ----
  std::vector<double> latencies;
  long total = 0, errors = 0;
  for (auto& result : results) {
    total += result.requests;
    errors += result.errors;
    latencies.insert(latencies.end(), result.latencies_us.begin(),
                     result.latencies_us.end());
  }
  std::sort(latencies.begin(), latencies.end());
  std::printf("requests:    %ld\n", total);
  std::printf("errors:      %ld\n", errors);
  std::printf("elapsed:     %.3f s\n", elapsed_s);
  std::printf("throughput:  %.0f req/s\n",
              elapsed_s > 0 ? static_cast<double>(total) / elapsed_s : 0.0);
  std::printf("latency p50: %.0f us\n", percentile(latencies, 0.50));
  std::printf("latency p90: %.0f us\n", percentile(latencies, 0.90));
  std::printf("latency p99: %.0f us\n", percentile(latencies, 0.99));
  std::printf("latency max: %.0f us\n",
              latencies.empty() ? 0.0 : latencies.back());
  return errors == 0 ? 0 : 1;
}
