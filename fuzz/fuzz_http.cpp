// Fuzz target: the HTTP/1.1 request parser (src/serve/http_parser).
//
// The input is treated as the raw byte stream a socket would deliver.
// Oracles: find_header_end never reports an offset outside the buffer;
// parse_http_request never crashes, and on success the parsed request
// satisfies the invariants the server relies on (non-empty method, a
// target the query accessors can walk, a reason string on failure).
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <string_view>
#include <vector>

#include "serve/http_parser.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  using namespace asrel::serve;
  const std::string_view bytes{reinterpret_cast<const char*>(data), size};

  std::size_t header_len = 0;
  const std::size_t body_start = find_header_end(bytes, &header_len);
  if (body_start == std::string_view::npos) return 0;
  if (body_start > bytes.size() || header_len >= body_start) {
    std::fprintf(stderr, "fuzz_http: header end out of bounds\n");
    std::abort();
  }

  HttpRequest request;
  const HttpParse parsed =
      parse_http_request(bytes.substr(0, header_len), &request);
  if (!parsed) {
    if (parsed.error.empty()) {
      std::fprintf(stderr, "fuzz_http: rejection without a reason\n");
      std::abort();
    }
    return 0;
  }
  if (request.method.empty() || request.target.empty()) {
    std::fprintf(stderr, "fuzz_http: accepted request with empty fields\n");
    std::abort();
  }
  // Exercise the accessors the handlers use.
  (void)request.query_param("algo");
  for (const auto& [key, value] : request.query) {
    (void)key;
    (void)value;
  }
  return 0;
}

std::vector<std::string> asrel_fuzz_seeds() {
  return {
      "GET /links?algo=asrank&class=T1-TR HTTP/1.1\r\n"
      "Host: localhost\r\nConnection: keep-alive\r\n\r\n",
      "GET /healthz HTTP/1.0\nHost: a\n\n",  // bare-LF request
      "POST /report HTTP/1.1\r\nContent-Length: 5\r\n\r\nhello",
      "POST /x HTTP/1.1\r\nContent-Length: 5\r\nContent-Length: 6\r\n\r\n",
      "POST /x HTTP/1.1\r\nContent-Length: 00005\r\nContent-Length: 5\r\n\r\n",
      "POST /x HTTP/1.1\r\nContent-Length: +5\r\n\r\n",
      "POST /x HTTP/1.1\r\nContent-Length: 99999999999999999999\r\n\r\n",
      "GET /a%2Fb%zz+c?x=%41&y&=v HTTP/1.1\r\n\r\n",
      "GET /one HTTP/1.1\r\n\r\nGET /two HTTP/1.1\r\nConnection: close\r\n\r\n",
      "GET " + std::string(9000, 'a') + " HTTP/1.1\r\n\r\n",
      "BADLINE\r\n\r\n",
      "GET  /double-space HTTP/1.1\r\n\r\n",
      "GET /x SMTP/1.1\r\n\r\n",
  };
}
