// Fuzz target: the BGP community parsers (src/bgp/community).
//
// Oracle: parsing arbitrary text never crashes, and any accepted value
// survives a to_string -> parse round trip unchanged. The reverse also
// holds for the canonical rendering, so "65535:666" style text has exactly
// one in-memory meaning.
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <string_view>
#include <vector>

#include "bgp/community.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  using namespace asrel::bgp;
  const std::string_view text{reinterpret_cast<const char*>(data), size};

  if (const auto community = parse_community(text)) {
    const auto again = parse_community(to_string(*community));
    if (!again.has_value() || *again != *community) {
      std::fprintf(stderr, "fuzz_community: classic round trip broken\n");
      std::abort();
    }
  }
  if (const auto large = parse_large_community(text)) {
    const auto again = parse_large_community(to_string(*large));
    if (!again.has_value() || *again != *large) {
      std::fprintf(stderr, "fuzz_community: large round trip broken\n");
      std::abort();
    }
  }
  return 0;
}

std::vector<std::string> asrel_fuzz_seeds() {
  return {
      "65535:666",
      "3356:2010",
      "0:0",
      "65536:1",        // high half out of 16-bit range
      "1:2:3",          // large community shape
      "4294967295:4294967295:4294967295",
      "4294967296:0:0",  // overflows u32
      ":1",
      "1:",
      "1:2:",
      " 1:2",
      "1:2 ",
      "0x10:10",
      "-1:5",
      "65535:666:extra",
      "",
  };
}
