// Fuzz target: the stream checkpoint reader (src/stream/checkpoint).
//
// Oracle: parsing never crashes, every rejection carries a reason, and
// any accepted input is in canonical form — re-serializing the parsed
// checkpoint must reproduce the input byte-for-byte. The decoder rejects
// everything non-canonical (unordered prefix owners, host bits under the
// mask, hybrid filler bytes, implausible counts, trailing bytes), so
// accept + re-encode-differs means the recovery ladder could restore
// state that never round-trips — exactly the corruption class the ladder
// exists to keep out.
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <string_view>
#include <vector>

#include "core/scenario.hpp"
#include "stream/checkpoint.hpp"
#include "stream/churn.hpp"
#include "stream/session.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const std::string_view bytes{reinterpret_cast<const char*>(data), size};
  std::string error;
  const auto checkpoint = asrel::stream::parse_checkpoint_bytes(bytes, &error);
  if (!checkpoint.has_value()) {
    if (error.empty()) {
      std::fprintf(stderr, "fuzz_checkpoint: rejection without a reason\n");
      std::abort();
    }
    return 0;
  }
  const std::string round = asrel::stream::to_checkpoint_bytes(*checkpoint);
  if (round != bytes) {
    std::fprintf(stderr,
                 "fuzz_checkpoint: accepted input is not canonical "
                 "(in=%zu bytes, out=%zu bytes)\n",
                 bytes.size(), round.size());
    std::abort();
  }
  return 0;
}

std::vector<std::string> asrel_fuzz_seeds() {
  using namespace asrel;

  // A real (tiny) session provides structurally valid seeds: ribs sized
  // to the node universe, canonical prefixes, ascending transit bits.
  core::ScenarioParams params;
  params.topology.as_count = 60;
  params.topology.seed = 5;
  params.vantage.target_count = 8;
  params.threads = 1;
  stream::StreamSession session{params};

  std::vector<std::string> seeds;
  // The pristine epoch-1 state (no churn, clean flags).
  seeds.push_back(stream::to_checkpoint_bytes(session.checkpoint(0)));

  // A churned state: tombstoned edges, flipped relationships, live
  // prefix entries, dirty flags mid-epoch.
  const auto events = stream::generate_churn(session.world(), 3, 25);
  for (const auto& event : events) session.apply(event);
  seeds.push_back(stream::to_checkpoint_bytes(session.checkpoint(25)));
  session.publish(2);
  seeds.push_back(stream::to_checkpoint_bytes(session.checkpoint(25)));

  // A header-only truncation and a bad-magic prefix keep the cheap reject
  // paths in the schedule.
  seeds.push_back(seeds.front().substr(0, 20));
  seeds.push_back("NOTACKPT" + seeds.front().substr(8));
  return seeds;
}
