// Fuzz target: the binary snapshot reader (src/io/snapshot).
//
// Oracle: parsing never crashes, and any accepted input is in canonical
// form — re-serializing the parsed snapshot must reproduce the input
// byte-for-byte. The decoder rejects everything non-canonical (unknown
// flag bits, out-of-range enum codes, unordered links, trailing bytes),
// so accept + re-encode-differs means either the encoder or the decoder
// lost information.
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <string_view>
#include <vector>

#include "io/snapshot.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const std::string_view bytes{reinterpret_cast<const char*>(data), size};
  std::string error;
  const auto snapshot = asrel::io::parse_snapshot_bytes(bytes, &error);
  if (!snapshot.has_value()) {
    if (error.empty()) {
      std::fprintf(stderr, "fuzz_snapshot: rejection without a reason\n");
      std::abort();
    }
    return 0;
  }
  const std::string round = asrel::io::to_snapshot_bytes(*snapshot);
  if (round != bytes) {
    std::fprintf(stderr,
                 "fuzz_snapshot: accepted input is not canonical "
                 "(in=%zu bytes, out=%zu bytes)\n",
                 bytes.size(), round.size());
    std::abort();
  }
  return 0;
}

std::vector<std::string> asrel_fuzz_seeds() {
  using namespace asrel;

  io::Snapshot snapshot;
  snapshot.meta.as_count = 4;
  snapshot.meta.seed = 7;
  snapshot.meta.scheme_seed = 11;
  snapshot.meta.epoch = 3;
  snapshot.meta.built_unix_ms = 1700000000000ull;
  snapshot.class_names = {"T1-T1", "T1-TR", "unknown"};

  const asn::Asn a1{101}, a2{202}, a3{303}, a4{404};
  for (const auto& [asn, tier] :
       {std::pair{a1, topo::Tier::kClique}, {a2, topo::Tier::kMidTransit},
        {a3, topo::Tier::kStub}, {a4, topo::Tier::kStub}}) {
    io::SnapshotAs as;
    as.asn = asn;
    as.attrs.region = rir::Region::kRipe;
    as.attrs.country = "DE";
    as.attrs.tier = tier;
    as.attrs.stub_kind = tier == topo::Tier::kStub
                             ? topo::StubKind::kEyeball
                             : topo::StubKind::kNotStub;
    as.attrs.documents_communities = asn == a1;
    as.attrs.prepend_propensity = 0.25;
    as.transit_degree = 2;
    as.node_degree = 3;
    as.cone_size = 1;
    snapshot.ases.push_back(std::move(as));
  }

  io::SnapshotEdge edge;
  edge.a = a1;
  edge.b = a2;
  edge.rel = topo::RelType::kP2C;
  edge.scope = topo::ExportScope::kFull;
  edge.scope_via_community = true;
  snapshot.edges.push_back(edge);
  edge = io::SnapshotEdge{};
  edge.a = a2;
  edge.b = a3;
  edge.rel = topo::RelType::kP2P;
  edge.misdocumented = true;
  edge.hybrid_rel = topo::RelType::kP2C;
  snapshot.edges.push_back(edge);

  snapshot.clique = {a1};
  snapshot.hypergiants = {a4};

  val::CleanLabel label;
  label.link = val::AsLink{a1, a2};
  label.rel = topo::RelType::kP2C;
  label.provider = a1;
  snapshot.validation.push_back(label);

  io::SnapshotAlgorithm algorithm;
  algorithm.name = "asrank";
  label.link = val::AsLink{a2, a3};
  label.rel = topo::RelType::kP2P;
  label.provider = asn::Asn{0};
  algorithm.labels.push_back(label);
  snapshot.algorithms.push_back(std::move(algorithm));

  io::SnapshotLinkTag tag;
  tag.link = val::AsLink{a1, a2};
  tag.regional_class = 0;
  tag.topological_class = 1;
  snapshot.links.push_back(tag);

  std::vector<std::string> seeds;
  seeds.push_back(io::to_snapshot_bytes(snapshot));

  // An empty-but-valid snapshot: header plus all-zero section counts.
  seeds.push_back(io::to_snapshot_bytes(io::Snapshot{}));

  // A header-only truncation and a bad-magic prefix keep the cheap reject
  // paths in the schedule.
  seeds.push_back(seeds.front().substr(0, 12));
  seeds.push_back("NOTASNAP" + seeds.front().substr(8));
  return seeds;
}
