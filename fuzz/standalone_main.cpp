// Entry point for the standalone (non-libFuzzer) fuzz binaries.
//
// Each fuzz target object file defines LLVMFuzzerTestOneInput plus
// asrel_fuzz_seeds(); this main replays the corpus and runs the driver's
// deterministic mutation loop. Under -DASREL_LIBFUZZER=ON the target is
// linked with -fsanitize=fuzzer instead and this file is left out.
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "testing/corpus.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size);

/// Seeds synthesized in code, so the target still fuzzes structure-aware
/// inputs even when pointed at an empty corpus directory.
std::vector<std::string> asrel_fuzz_seeds();

int main(int argc, char** argv) {
  return asrel::testing::fuzz_driver_main(argc, argv,
                                          &LLVMFuzzerTestOneInput,
                                          asrel_fuzz_seeds());
}
