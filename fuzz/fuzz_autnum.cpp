// Fuzz target: the RPSL aut-num parser (src/rpsl/autnum).
//
// Oracle: parsing arbitrary text never crashes, and the writer's output is
// a fixed point — parse(write(parse(x))) must equal parse(x) object for
// object (compared through the writer, which is deterministic). Every
// parsed object is also pushed through the relationship heuristic, the
// consumer the validation pipeline actually runs.
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <string_view>
#include <vector>

#include "rpsl/autnum.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  using namespace asrel::rpsl;
  const std::string_view text{reinterpret_cast<const char*>(data), size};

  const std::vector<AutNum> first = parse_autnums_text(text);
  for (const AutNum& object : first) {
    (void)extract_relationships(object);
  }

  const std::string written = to_text(first);
  const std::vector<AutNum> second = parse_autnums_text(written);
  if (second.size() != first.size() || to_text(second) != written) {
    std::fprintf(stderr,
                 "fuzz_autnum: writer output is not a parser fixed point "
                 "(%zu objects -> %zu)\n",
                 first.size(), second.size());
    std::abort();
  }
  return 0;
}

std::vector<std::string> asrel_fuzz_seeds() {
  return {
      "aut-num: AS64500\n"
      "as-name: EXAMPLE-NET\n"
      "import: from AS64501 accept ANY\n"
      "export: to AS64501 announce AS64500\n"
      "import: from AS64502 accept AS64502\n"
      "export: to AS64502 announce AS64500\n"
      "mnt-by: MAINT-EXAMPLE\n"
      "changed: 20210401\n"
      "source: RADB\n",

      "aut-num: AS1\nimport: from AS2 accept ANY\n\n"
      "aut-num: AS2\nexport: to AS1 announce ANY\n",

      "aut-num: not-an-asn\nas-name: BROKEN\n",
      "as-name: NO-AUTNUM-LINE\nsource: RIPE\n",
      "aut-num: AS4294967295\nimport: from AS0 accept ANY\n",
      "aut-num: AS64500\nimport: malformed policy line\n",
      "aut-num: AS64500\r\nas-name: CRLF-OBJECT\r\n\r\n",
      "# comment only\n\n\n",
      "",
  };
}
