// Appendix C: the paper proposes twelve per-link features "to identify
// additional groups of hard links". This bench computes all twelve for
// every validated link and reports, per feature, ASRank's error rate in
// each feature quartile — showing which features actually separate hard
// from easy links in this world.
//
// Expected shape: visibility-style features (VPs, observers-left) show a
// clear error gradient — poorly-observed links are hard — and so do the
// relative-size differences (a large imbalance makes the stub rule fire).
#include <algorithm>
#include <vector>

#include "bench_common.hpp"
#include "core/link_features.hpp"

namespace {

using namespace asrel;

struct Sample {
  double value = 0;
  bool wrong = false;
};

void quartile_report(const char* name, std::vector<Sample> samples) {
  if (samples.size() < 8) {
    std::printf("%-26s (not enough samples)\n", name);
    return;
  }
  std::sort(samples.begin(), samples.end(),
            [](const Sample& a, const Sample& b) { return a.value < b.value; });
  std::printf("%-26s", name);
  for (int q = 0; q < 4; ++q) {
    const std::size_t begin = samples.size() * q / 4;
    const std::size_t end = samples.size() * (q + 1) / 4;
    std::size_t wrong = 0;
    for (std::size_t i = begin; i < end; ++i) wrong += samples[i].wrong;
    std::printf("  %5.1f%%", 100.0 * static_cast<double>(wrong) /
                                 static_cast<double>(end - begin));
  }
  // Range digest for context.
  std::printf("   [%.0f .. %.0f]\n", samples.front().value,
              samples.back().value);
}

}  // namespace

int main() {
  using namespace asrel;
  const auto& scenario = bench::scenario();
  const auto& asrank = bench::asrank();

  std::printf("[setup] computing the Appendix C feature set ...\n");
  const core::LinkFeatureExtractor features{scenario, asrank.inference};

  // Error flags per validated link.
  const auto pairs =
      eval::make_eval_pairs(scenario.validation(), asrank.inference);
  std::printf("\n=== Appendix C — hard-link feature analysis "
              "(%zu validated links) ===\n",
              pairs.size());
  std::printf("%-26s %6s %6s %6s %6s   %s\n", "feature (error rate by",
              "Q1", "Q2", "Q3", "Q4", "value range");
  std::printf("%-26s\n", " feature quartile)");

  const auto collect = [&](auto&& metric) {
    std::vector<Sample> samples;
    for (const auto& pair : pairs) {
      const auto* f = features.find(pair.link);
      if (f == nullptr) continue;
      Sample sample;
      sample.value = metric(*f);
      const bool correct =
          pair.inferred == pair.validated &&
          (pair.validated != topo::RelType::kP2C ||
           pair.inferred_provider == pair.validated_provider);
      sample.wrong = !correct;
      samples.push_back(sample);
    }
    return samples;
  };

  quartile_report("1 vp visibility", collect([](const core::LinkFeatures& f) {
                    return double(f.vp_visibility);
                  }));
  quartile_report("2 prefixes redistributed",
                  collect([](const core::LinkFeatures& f) {
                    return double(f.prefixes_redistributed);
                  }));
  quartile_report("3 addresses redistributed",
                  collect([](const core::LinkFeatures& f) {
                    return double(f.addresses_redistributed);
                  }));
  quartile_report("4 prefixes originated",
                  collect([](const core::LinkFeatures& f) {
                    return double(f.prefixes_originated);
                  }));
  quartile_report("5 addresses originated",
                  collect([](const core::LinkFeatures& f) {
                    return double(f.addresses_originated);
                  }));
  quartile_report("6 ASes left of link",
                  collect([](const core::LinkFeatures& f) {
                    return double(f.ases_left);
                  }));
  quartile_report("7 ASes right of link",
                  collect([](const core::LinkFeatures& f) {
                    return double(f.ases_right);
                  }));
  quartile_report("8 transit-degree diff",
                  collect([](const core::LinkFeatures& f) {
                    return f.transit_degree_diff;
                  }));
  quartile_report("9 PPDC diff", collect([](const core::LinkFeatures& f) {
                    return f.ppdc_diff;
                  }));
  quartile_report("10 common IXPs", collect([](const core::LinkFeatures& f) {
                    return double(f.common_ixps);
                  }));
  quartile_report("11 common facilities",
                  collect([](const core::LinkFeatures& f) {
                    return double(f.common_facilities);
                  }));
  quartile_report("12 MANRS participants",
                  collect([](const core::LinkFeatures& f) {
                    return double(f.manrs_participants);
                  }));

  std::printf("\n(feature 11 is constant: private facilities are not part "
              "of the simulated co-location substrate)\n");
  return 0;
}
