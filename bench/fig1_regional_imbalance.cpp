// Reproduces Fig. 1: fraction of inferred links and validation coverage per
// regional link class.
//
// Paper reference values (April 2018 snapshot):
//   shares:   R° .39  AR° .15  L° .14  AP° .08  AR-R .08  AP-R .06
//             AP-AR .03  AF-R .02  AR-L .02  AF° .01  L-R .01
//   coverage: R° .15  AR° .31  L° .00  AP° .05  AR-R .32  AP-R .07
//             AP-AR .17  AF-R .04  AR-L .18  AF° .00  L-R .08
// Expected shape: L° holds a large share of links with ~zero coverage while
// AR° coverage is the highest among the intra-region classes.
#include "bench_common.hpp"
#include "eval/coverage.hpp"

int main() {
  using namespace asrel;
  const auto& audit = bench::audit();
  const auto report = audit.regional_coverage();

  std::printf("\n=== Fig. 1 — regional imbalance ===\n");
  std::printf("%s", eval::render_coverage(report).c_str());

  double lacnic_share = 0, lacnic_cov = 0, arin_cov = 0, ripe_cov = 0;
  for (const auto& row : report.rows) {
    if (row.name == "L°") {
      lacnic_share = row.share;
      lacnic_cov = row.coverage;
    }
    if (row.name == "AR°") arin_cov = row.coverage;
    if (row.name == "R°") ripe_cov = row.coverage;
  }
  std::printf(
      "\nHeadline check (paper: L° share .14 / coverage .00; AR° coverage "
      ".31):\n  L° share %.2f, coverage %.3f | AR° coverage %.2f | R° "
      "coverage %.2f\n",
      lacnic_share, lacnic_cov, arin_cov, ripe_cov);
  std::printf("  shape holds: %s\n",
              (lacnic_share > 0.05 && lacnic_cov < 0.01 &&
               arin_cov > ripe_cov)
                  ? "YES"
                  : "NO");
  return 0;
}
