// Reproduces the §6.1 case study: why does ASRank wrongly call so many
// T1-TR links P2P?
//
// Paper reference: 54 of 111 wrong links involve one Tier-1 (AS174/Cogent;
// the paper writes "AS714" in the heading); no C|T1|X clique triplet exists
// for any target link; the looking glass shows every investigated customer
// tagging 174:990 (no-export-to-peers); exactly 1 case turned out to be
// inaccurate validation data.
#include "bench_common.hpp"
#include "core/case_study.hpp"

int main() {
  using namespace asrel;
  const auto report = core::run_case_study(bench::scenario(), bench::audit(),
                                           bench::asrank().inference);
  std::printf("\n=== §6.1 case study — partial transit at a Tier-1 ===\n%s",
              core::render(report).c_str());

  const bool dominant_is_designated =
      report.dominant_tier1 == bench::scenario().world().cogent_like;
  std::printf("\nHeadline check:\n");
  std::printf("  dominant Tier-1 is the community-tagging one: %s\n",
              dominant_is_designated ? "YES" : "NO");
  std::printf("  zero clique triplets among targets (paper: zero): %s\n",
              report.with_clique_triplet == 0 ? "YES" : "NO");
  std::printf("  action community visible for most targets: %s\n",
              report.with_action_community * 2 > report.dominant_count
                  ? "YES"
                  : "NO");
  std::printf("  inaccurate-validation cases: %zu (paper: 1)\n",
              report.with_wrong_validation);

  std::printf("\nPer-target detail (dominant Tier-1):\n");
  for (const auto& target : report.targets) {
    std::printf("  AS%-7u triplet=%d community=%d silent=%d val-wrong=%d\n",
                target.other.value(), target.clique_triplet_found ? 1 : 0,
                target.action_community_seen ? 1 : 0,
                target.silent_partial_transit ? 1 : 0,
                target.validation_was_wrong ? 1 : 0);
  }
  return 0;
}
