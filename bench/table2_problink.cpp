// Reproduces Table 2: per-group validation metrics for ProbLink.
//
// Paper reference (excerpt): Total° PPV_P .966 TPR_P .976, T1-TR PPV_P .718
// TPR_P .670, S-T1 PPV_P .295 TPR_P .650, AR-L PPV_P .619. Expected shape:
// ProbLink partially recovers S-T1 recall (it is probabilistic, not
// rule-bound) but loses more precision than ASRank on the thin classes it
// never saw in training.
#include "table_common.hpp"

int main() {
  using namespace asrel;
  bench::print_validation_table("Table 2 — per group validation for ProbLink",
                                bench::problink().inference);
  std::printf("\nProbLink: %d iterations, trained on %zu validated links\n",
              bench::problink().iterations_used,
              bench::problink().training_links);
  return 0;
}
