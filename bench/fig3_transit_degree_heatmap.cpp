// Reproduces Fig. 3: heatmaps of TR° links binned by the transit degrees of
// their incident ASes (x = larger side capped at 1500, y = smaller side
// capped at 150), for all inferred links (top) vs the validatable subset
// (bottom).
//
// Expected shape: the inferred population concentrates in the bottom-left
// corner (small transit providers peering with each other), while the
// validated subset is spread more uniformly toward larger degrees.
#include "bench_common.hpp"

int main() {
  using namespace asrel;
  const auto& audit = bench::audit();
  // The paper caps the axes at 1500/150 for the real Internet's degree
  // range; our simulated world is ~5x smaller, so scale the caps to the
  // observed 99th percentile to keep the binning comparable.
  const auto spec = bench::adaptive_spec([&](asn::Asn asn) -> std::uint32_t {
    const auto index = bench::scenario().observed().index_of(asn);
    return index ? bench::scenario().observed().transit_degree(*index) : 0;
  });
  std::printf("axis caps: larger side %u, smaller side %u\n", spec.x_cap,
              spec.y_cap);
  const auto maps = audit.transit_degree_heatmaps(spec);

  std::printf("\n=== Fig. 3 — transit-degree imbalance for TR° links ===\n");
  bench::print_heatmap_pair("transit degree", maps);

  std::printf("\nCSV (inferred):\n%s", maps.inferred.to_csv().c_str());
  std::printf("\nCSV (validated):\n%s", maps.validated.to_csv().c_str());

  std::printf("\nHeadline check — the inferred TR° population sits between "
              "smaller ASes than the validatable one:\n");
  bench::print_median_shift("transit degree", [&](asn::Asn asn) {
    const auto index = bench::scenario().observed().index_of(asn);
    return index ? bench::scenario().observed().transit_degree(*index) : 0u;
  });
  return 0;
}
