// §7 "Discussion & Outlook": what would less biased validation data look
// like? This bench compares four validation-compilation strategies on the
// same world:
//
//   1. communities-only          — what recent efforts actually use (§3.2)
//   2. + IRR/RPSL records        — Luckie et al.'s second source
//   3. + direct operator reports — their first source
//   4. + targeted LACNIC outreach — the paper's §7 proposal: active
//      discourse with operators of an uncovered region (modeled as LACNIC
//      operators starting to document communities and report directly)
//
// Reported per strategy: validation size, LACNIC-internal coverage, and the
// coverage of the two majority classes — showing which gaps each source
// actually closes.
//
// Runs on a reduced world (ASREL_ABLATION_AS, default 6000).
#include "bench_common.hpp"
#include "eval/coverage.hpp"

namespace {

using namespace asrel;

struct Row {
  const char* name;
  std::size_t labels = 0;
  double lacnic = 0;
  double s_tr = 0;
  double tr = 0;
};

Row measure(const char* name, const core::ScenarioParams& params) {
  const auto scenario = core::Scenario::build(params);
  const core::BiasAudit audit{*scenario};
  Row row;
  row.name = name;
  row.labels = scenario->validation().size();
  for (const auto& r : audit.regional_coverage().rows) {
    if (r.name == "L°") row.lacnic = r.coverage;
  }
  for (const auto& r : audit.topological_coverage().rows) {
    if (r.name == "S-TR") row.s_tr = r.coverage;
    if (r.name == "TR°") row.tr = r.coverage;
  }
  return row;
}

}  // namespace

int main() {
  using namespace asrel;
  core::ScenarioParams base = bench::default_params();
  base.topology.as_count = bench::env_int("ASREL_ABLATION_AS", 6000);

  std::vector<Row> rows;
  rows.push_back(measure("communities only", base));

  auto with_rpsl = base;
  with_rpsl.include_rpsl_source = true;
  rows.push_back(measure("+ IRR/RPSL", with_rpsl));

  auto with_reports = with_rpsl;
  with_reports.include_direct_reports = true;
  rows.push_back(measure("+ direct reports", with_reports));

  auto outreach = with_reports;
  {
    // §7: do-ut-des engagement with LACNIC operators — they start
    // documenting communities and reporting relationships at RIPE-like
    // rates.
    auto& lacnic = outreach.topology
                       .regions[static_cast<std::size_t>(
                           rir::Region::kLacnic)];
    lacnic.doc_communities_transit = 0.5;
    lacnic.doc_communities_stub = 0.06;
    lacnic.attends_meetings = 0.18;
    lacnic.maintains_rpsl = 0.45;
  }
  rows.push_back(measure("+ LACNIC outreach", outreach));

  std::printf("\n=== §7 — paths to less biased validation data ===\n");
  std::printf("%-22s %10s %12s %12s %12s\n", "strategy", "labels",
              "L° cov.", "S-TR cov.", "TR° cov.");
  for (const auto& row : rows) {
    std::printf("%-22s %10zu %12.3f %12.3f %12.3f\n", row.name, row.labels,
                row.lacnic, row.s_tr, row.tr);
  }
  std::printf(
      "\nReading: the secondary sources widen coverage overall, but only "
      "the targeted engagement closes the regional hole — the paper's "
      "core §7 argument (passive scraping cannot fix a bias that operators'"
      " behaviour creates).\n");
  return 0;
}
