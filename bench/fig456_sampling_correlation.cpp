// Reproduces Appendix A (Figs. 4-6): does validation coverage correlate
// with measured performance? Uniform subsamples of the T1-TR class at
// 50..99 % of the original size, 100 repetitions each, tracking the median
// and IQR of PPV_P, TPR_P, and MCC.
//
// Expected shape: variance grows as samples shrink, but the medians show no
// systematic trend (least-squares slopes ~ 0).
#include "bench_common.hpp"
#include "eval/sampling.hpp"

int main() {
  using namespace asrel;
  const auto result = bench::audit().sampling_experiment(
      bench::asrank().inference, "T1-TR");

  std::printf("\n=== Figs. 4-6 — sampling correlation for T1-TR ===\n");
  std::printf("%-8s %-24s %-24s %-24s\n", "size%", "PPV_P (q1/med/q3)",
              "TPR_P (q1/med/q3)", "MCC (q1/med/q3)");
  for (const auto& point : result.points) {
    if (point.percent % 7 != 1 && point.percent != 99) continue;  // digest
    std::printf("%-8d %.3f/%.3f/%.3f        %.3f/%.3f/%.3f        "
                "%.3f/%.3f/%.3f\n",
                point.percent, point.ppv_p_q1, point.ppv_p_median,
                point.ppv_p_q3, point.tpr_p_q1, point.tpr_p_median,
                point.tpr_p_q3, point.mcc_q1, point.mcc_median, point.mcc_q3);
  }
  std::printf("\nFull series (CSV):\n%s", eval::to_csv(result).c_str());
  std::printf("\nLeast-squares slopes of the medians per percentage point:\n"
              "  PPV_P %+.5f  TPR_P %+.5f  MCC %+.5f\n",
              result.ppv_p_slope, result.tpr_p_slope, result.mcc_slope);
  const bool no_trend = std::abs(result.ppv_p_slope) < 1e-3 &&
                        std::abs(result.tpr_p_slope) < 1e-3 &&
                        std::abs(result.mcc_slope) < 1e-3;
  std::printf("  no systematic trend (paper's conclusion): %s\n",
              no_trend ? "YES" : "NO");
  return 0;
}
