// Reproduces Table 1: per-group validation metrics for ASRank.
//
// Paper reference (excerpt): Total° PPV_P .982 TPR_P .990, T1-TR PPV_P .839
// TPR_P .955, S-T1 PPV_P .000 TPR_P .000 (MCC -0.001), near-perfect P2C
// everywhere. Expected shape: S-T1 peering collapses to zero, T1-TR P2P
// precision drops well below the total, everything else stays close.
#include "table_common.hpp"

int main() {
  using namespace asrel;
  bench::print_validation_table("Table 1 — per group validation for ASRank",
                                bench::asrank().inference);
  std::printf("\nInferred clique (%zu members):", bench::asrank().clique.size());
  for (const auto member : bench::asrank().clique) {
    std::printf(" AS%u", member.value());
  }
  std::printf("\n");
  return 0;
}
