// Reproduces Fig. 2: fraction of inferred links and validation coverage per
// topological link class (Hypergiant / Stub / Tier-1 / Transit).
//
// Paper reference values:
//   shares:   S-TR .48  TR° .34  S-T1 .07  S° .04  T1-TR .04
//             H-TR .02  H-S .01  H-T1 .00
//   coverage: S-TR .06  TR° .12  S-T1 .74  S° .00  T1-TR .74
//             H-TR .07  H-S .00  H-T1 .58
// Expected shape: only the classes touching a Tier-1 have substantial
// coverage; the two majority classes (S-TR, TR°) are barely covered.
#include "bench_common.hpp"
#include "eval/coverage.hpp"

int main() {
  using namespace asrel;
  const auto& audit = bench::audit();
  const auto report = audit.topological_coverage();

  std::printf("\n=== Fig. 2 — topological imbalance ===\n");
  std::printf("%s", eval::render_coverage(report).c_str());

  double majority_share = 0;
  double majority_cov_max = 0;
  double t1_cov_min = 1;
  for (const auto& row : report.rows) {
    if (row.name == "S-TR" || row.name == "TR°") {
      majority_share += row.share;
      majority_cov_max = std::max(majority_cov_max, row.coverage);
    }
    if (row.name == "S-T1" || row.name == "T1-TR") {
      t1_cov_min = std::min(t1_cov_min, row.coverage);
    }
  }
  std::printf(
      "\nHeadline check (paper: S-TR+TR° hold 82%% of links at <=12%% "
      "coverage; S-T1/T1-TR covered at 74%%):\n"
      "  majority classes share %.2f, max coverage %.2f; min Tier-1-class "
      "coverage %.2f\n",
      majority_share, majority_cov_max, t1_cov_min);
  std::printf("  shape holds: %s\n",
              (majority_share > 0.5 && t1_cov_min > 2 * majority_cov_max)
                  ? "YES"
                  : "NO");
  return 0;
}
