// Throughput bench for the streaming pipeline (src/stream).
//
// Bootstraps a StreamSession (timed — this is the full-pipeline cost the
// incremental path is measured against), generates a seeded churn feed, and
// applies it in publish batches while timing every apply() and publish()
// individually. Reports events/s, per-event apply p50/p99, per-epoch
// publish p50/p99, and the headline incremental-vs-full speedup
// (full-pipeline ms over amortised per-event ms, publishes included).
// The final epoch is byte-compared against a from-scratch rebuild — the
// bench fails rather than report numbers for a wrong answer.
//
// Emits BENCH_stream.json. Environment overrides: ASREL_AS_COUNT (default
// 4000), ASREL_SEED (42), ASREL_STREAM_EVENTS (300), ASREL_CHURN_SEED (1),
// ASREL_STREAM_BATCH (25), ASREL_THREADS (0 = auto).
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "io/snapshot.hpp"
#include "serve/json.hpp"
#include "stream/checkpoint.hpp"
#include "stream/churn.hpp"
#include "stream/ingest.hpp"
#include "stream/session.hpp"

namespace {

using namespace asrel;
using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

/// Nearest-rank quantile over raw samples (exact, unlike the bucketed
/// estimator in obs — a bench can afford to keep every sample).
double quantile_ms(std::vector<double> samples, double q) {
  if (samples.empty()) return 0.0;
  std::sort(samples.begin(), samples.end());
  const auto rank = static_cast<std::size_t>(
      q * static_cast<double>(samples.size() - 1) + 0.5);
  return samples[std::min(rank, samples.size() - 1)];
}

}  // namespace

int main() {
  core::ScenarioParams params;
  params.topology.as_count = bench::env_int("ASREL_AS_COUNT", 4000);
  params.topology.seed =
      static_cast<std::uint64_t>(bench::env_int("ASREL_SEED", 42));
  params.threads = static_cast<unsigned>(bench::env_int("ASREL_THREADS", 0));
  const int event_count = bench::env_int("ASREL_STREAM_EVENTS", 300);
  const auto churn_seed =
      static_cast<std::uint64_t>(bench::env_int("ASREL_CHURN_SEED", 1));
  int batch = bench::env_int("ASREL_STREAM_BATCH", 25);
  if (batch < 1) batch = 1;

  std::printf("== stream_throughput (%d ASes, seed %llu, %d events) ==\n",
              params.topology.as_count,
              static_cast<unsigned long long>(params.topology.seed),
              event_count);

  auto t0 = Clock::now();
  stream::StreamSession session{params};
  const double bootstrap_ms = ms_since(t0);
  std::printf("bootstrap (full pipeline): %.1f ms\n", bootstrap_ms);

  const auto events =
      stream::generate_churn(session.world(), churn_seed,
                             static_cast<std::size_t>(event_count));

  std::vector<double> apply_ms;
  std::vector<double> publish_ms;
  apply_ms.reserve(events.size());
  std::uint64_t built = 1;  // deterministic stamp so the verify can compare
  for (std::size_t i = 0; i < events.size();) {
    const std::size_t end =
        std::min(events.size(), i + static_cast<std::size_t>(batch));
    for (; i < end; ++i) {
      t0 = Clock::now();
      session.apply(events[i]);
      apply_ms.push_back(ms_since(t0));
    }
    t0 = Clock::now();
    session.publish(++built);
    publish_ms.push_back(ms_since(t0));
  }

  const std::string incremental = io::to_snapshot_bytes(session.snapshot());
  const std::string reference =
      io::to_snapshot_bytes(session.reference_snapshot(built));
  const bool identical = incremental == reference;
  if (!identical) {
    std::printf("FATAL: final epoch diverged from a from-scratch rebuild\n");
  }

  double apply_total = 0.0;
  for (const double ms : apply_ms) apply_total += ms;
  double publish_total = 0.0;
  for (const double ms : publish_ms) publish_total += ms;
  const auto processed = static_cast<double>(events.size());
  const double events_per_s =
      apply_total > 0 ? processed / (apply_total / 1000.0) : 0.0;
  const double per_event_ms =
      processed > 0 ? (apply_total + publish_total) / processed : 0.0;
  const double speedup =
      per_event_ms > 0 ? bootstrap_ms / per_event_ms : 0.0;

  const auto& stats = session.stats();
  std::printf("events:        %zu (%llu applied, %llu no-ops)\n",
              events.size(),
              static_cast<unsigned long long>(stats.events_applied),
              static_cast<unsigned long long>(stats.events_noop));
  std::printf("origins:       %llu re-converged, %llu proven clean\n",
              static_cast<unsigned long long>(stats.origins_redone),
              static_cast<unsigned long long>(stats.origins_skipped));
  std::printf("apply:         %.0f events/s  p50 %.3f ms  p99 %.3f ms\n",
              events_per_s, quantile_ms(apply_ms, 0.50),
              quantile_ms(apply_ms, 0.99));
  std::printf("publish:       %zu epochs  p50 %.1f ms  p99 %.1f ms\n",
              publish_ms.size(), quantile_ms(publish_ms, 0.50),
              quantile_ms(publish_ms, 0.99));
  std::printf("incremental:   %.3f ms/event vs %.1f ms full (%.1fx cheaper)\n",
              per_event_ms, bootstrap_ms, speedup);
  std::printf("final epoch byte-identical to rebuild: %s\n",
              identical ? "yes" : "NO");

  // ---- recovery: cold restart vs checkpoint restore (DESIGN.md §14) ----
  // A cold restart re-runs the full bootstrap and replays the feed; a
  // restore reinstalls the checkpointed ribs and skips the all-origin
  // propagation entirely. Both must land on the same bytes.
  const stream::StreamCheckpoint checkpoint =
      session.checkpoint(events.size());
  t0 = Clock::now();
  const std::string checkpoint_bytes =
      stream::to_checkpoint_bytes(checkpoint);
  const double encode_ms = ms_since(t0);
  t0 = Clock::now();
  const auto reparsed = stream::parse_checkpoint_bytes(checkpoint_bytes);
  const double decode_ms = ms_since(t0);
  double restore_ms = 0.0;
  bool restore_identical = false;
  if (reparsed.has_value()) {
    std::string error;
    t0 = Clock::now();
    const auto restored =
        stream::StreamSession::restore(params, *reparsed, &error);
    restore_ms = ms_since(t0);
    restore_identical =
        restored != nullptr &&
        io::to_snapshot_bytes(restored->snapshot()) == incremental;
  }
  const double cold_restart_ms = bootstrap_ms + apply_total + publish_total;
  const double restore_speedup =
      restore_ms > 0 ? cold_restart_ms / restore_ms : 0.0;
  std::printf("checkpoint:    %zu bytes  encode %.1f ms  decode %.1f ms\n",
              checkpoint_bytes.size(), encode_ms, decode_ms);
  std::printf("recovery:      restore %.1f ms vs cold restart %.1f ms "
              "(%.1fx faster), bytes %s\n",
              restore_ms, cold_restart_ms, restore_speedup,
              restore_identical ? "identical" : "DIVERGED");

  // ---- backpressure: ingest queue overhead and saturation behavior ----
  // Overhead: the full feed through a kBlock queue with a draining
  // consumer — the per-event cost of the bounded handoff itself.
  t0 = Clock::now();
  stream::EventQueue queue{1024, stream::QueuePolicy::kBlock};
  std::thread consumer{[&queue] {
    while (queue.pop().has_value()) {
    }
  }};
  for (std::size_t i = 0; i < events.size(); ++i) {
    queue.push({i, events[i]});
  }
  queue.close();
  consumer.join();
  const double queue_ms = ms_since(t0);
  const double queue_ns_per_event =
      processed > 0 ? queue_ms * 1e6 / processed : 0.0;

  // Saturation: a tiny kShed queue with a stalled consumer — everything
  // past the cap is dropped and counted, deterministically.
  stream::EventQueue saturated{16, stream::QueuePolicy::kShed};
  for (std::size_t i = 0; i < events.size(); ++i) {
    saturated.push({i, events[i]});
  }
  const auto saturated_stats = saturated.stats();
  std::printf("backpressure:  %.0f ns/event through kBlock queue; "
              "%llu of %zu shed at cap 16\n",
              queue_ns_per_event,
              static_cast<unsigned long long>(saturated_stats.shed),
              events.size());

  serve::JsonWriter json;
  json.begin_object();
  json.field("bench", "stream_throughput");
  json.field("as_count", params.topology.as_count);
  json.field("seed", static_cast<std::uint64_t>(params.topology.seed));
  json.field("churn_seed", churn_seed);
  json.field("events", events.size());
  json.field("batch", static_cast<std::int64_t>(batch));
  json.field("events_applied", stats.events_applied);
  json.field("events_noop", stats.events_noop);
  json.field("origins_redone", stats.origins_redone);
  json.field("origins_skipped", stats.origins_skipped);
  json.field("bootstrap_full_pipeline_ms", bootstrap_ms);
  json.field("events_per_s", events_per_s);
  json.key("apply_ms").begin_object();
  json.field("p50", quantile_ms(apply_ms, 0.50));
  json.field("p99", quantile_ms(apply_ms, 0.99));
  json.field("total", apply_total);
  json.end_object();
  json.key("publish_ms").begin_object();
  json.field("p50", quantile_ms(publish_ms, 0.50));
  json.field("p99", quantile_ms(publish_ms, 0.99));
  json.field("total", publish_total);
  json.end_object();
  json.field("per_event_ms", per_event_ms);
  json.field("incremental_vs_full_speedup", speedup);
  json.field("final_epoch_identical", identical);
  json.key("recovery").begin_object();
  json.field("checkpoint_bytes", checkpoint_bytes.size());
  json.field("encode_ms", encode_ms);
  json.field("decode_ms", decode_ms);
  json.field("restore_ms", restore_ms);
  json.field("cold_restart_ms", cold_restart_ms);
  json.field("restore_vs_cold_speedup", restore_speedup);
  json.field("restore_identical", restore_identical);
  json.end_object();
  json.key("backpressure").begin_object();
  json.field("queue_policy", "block");
  json.field("queue_cap", std::uint64_t{1024});
  json.field("queue_ns_per_event", queue_ns_per_event);
  json.field("shed_at_cap16", saturated_stats.shed);
  json.end_object();
  json.end_object();

  const char* out_path = "BENCH_stream.json";
  std::ofstream out{out_path, std::ios::binary};
  out << json.str() << '\n';
  if (!out) {
    std::printf("FATAL: cannot write %s\n", out_path);
    return 1;
  }
  std::printf("wrote %s\n", out_path);
  return identical && restore_identical ? 0 : 1;
}
