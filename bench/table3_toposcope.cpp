// Reproduces Table 3: per-group validation metrics for TopoScope.
//
// Paper reference (excerpt): Total° PPV_P .976 TPR_P .988, T1-TR PPV_P .798
// TPR_P .947, S-T1 PPV_P .042 TPR_P .043. Expected shape: between ASRank
// and ProbLink overall, S-T1 nearly as collapsed as ASRank, T1-TR precision
// clearly below the total.
#include "table_common.hpp"

int main() {
  using namespace asrel;
  bench::print_validation_table(
      "Table 3 — per group validation for TopoScope",
      bench::toposcope().inference);
  std::printf("\nTopoScope: %d vantage-point groups, %zu hidden links "
              "predicted (top confidence %.2f)\n",
              bench::toposcope().groups_used,
              bench::toposcope().hidden_links.size(),
              bench::toposcope().hidden_links.empty()
                  ? 0.0
                  : bench::toposcope().hidden_links.front().confidence);
  return 0;
}
