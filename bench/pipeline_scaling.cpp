// Scaling bench for the deterministic parallel pipeline.
//
// Every stage ported onto core::ThreadPool — BGP path collection,
// community extraction, ProbLink, TopoScope, and the BiasAudit tabulation —
// is timed serial vs 2/4/8 workers, and each threaded run's output is
// byte-compared against the serial baseline (the determinism contract, not
// just a statistical check). Emits BENCH_pipeline.json; the recorded
// hardware_threads puts the speedups in context — on a single-core runner
// every parallel run degenerates to roughly serial wall-clock.
//
// ASREL_AS_COUNT / ASREL_SEED override the world (default here is a
// 4000-AS world so the bench stays interactive on small runners).
#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "io/as_rel.hpp"
#include "io/validation_io.hpp"
#include "serve/json.hpp"

namespace {

using namespace asrel;
using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

std::string rel_bytes(const infer::Inference& inference) {
  std::ostringstream out;
  io::write_as_rel(inference, out);
  return out.str();
}

std::string path_bytes(const bgp::PathTable& table) {
  std::ostringstream out;
  table.for_each_path([&](const bgp::PathTable::PathRef& ref) {
    out << ref.vp_index << '|' << ref.origin << ':';
    for (const auto hop : ref.path) out << hop.value() << ',';
    out << '\n';
  });
  return out.str();
}

std::string validation_bytes(const val::ValidationSet& set) {
  std::ostringstream out;
  io::write_validation(set, out);
  return out.str();
}

struct Run {
  unsigned threads;
  double ms;
  bool identical;
};

struct Stage {
  std::string name;
  double serial_ms = 0.0;
  std::vector<Run> runs;
};

constexpr unsigned kThreadCounts[] = {2, 4, 8};

/// Times `fn(threads)` serial-first, then at each threaded setting, byte-
/// comparing every threaded result against the serial one.
template <typename Fn>
Stage run_stage(const char* name, Fn&& fn) {
  Stage stage;
  stage.name = name;
  auto t0 = Clock::now();
  const std::string baseline = fn(1u);
  stage.serial_ms = ms_since(t0);
  std::printf("%-16s serial %9.1f ms\n", name, stage.serial_ms);
  for (const unsigned threads : kThreadCounts) {
    t0 = Clock::now();
    const std::string result = fn(threads);
    const double ms = ms_since(t0);
    const bool identical = result == baseline;
    std::printf("%-16s x%-5u %9.1f ms  speedup %.2fx  %s\n", name, threads,
                ms, stage.serial_ms / ms,
                identical ? "byte-identical" : "OUTPUT DIVERGED");
    stage.runs.push_back({threads, ms, identical});
  }
  return stage;
}

}  // namespace

int main() {
  core::ScenarioParams params;
  params.topology.as_count = bench::env_int("ASREL_AS_COUNT", 4000);
  params.topology.seed =
      static_cast<std::uint64_t>(bench::env_int("ASREL_SEED", 42));

  const unsigned hardware = std::thread::hardware_concurrency();
  std::printf("== pipeline_scaling (%d ASes, seed %llu, %u hardware threads) ==\n",
              params.topology.as_count,
              static_cast<unsigned long long>(params.topology.seed), hardware);

  const auto scenario = core::Scenario::build(params);
  const auto& observed = scenario->observed();
  const auto asrank = infer::run_asrank(observed);

  std::vector<Stage> stages;

  stages.push_back(run_stage("collect_paths", [&](unsigned threads) {
    bgp::PropagationParams prop = scenario->params().propagation;
    prop.threads = threads;
    const bgp::Propagator propagator{scenario->world(), prop};
    return path_bytes(bgp::collect_paths(propagator,
                                         scenario->vantage_points()));
  }));

  stages.push_back(run_stage("extract", [&](unsigned threads) {
    val::ExtractParams extract = scenario->params().extract;
    extract.threads = threads;
    return validation_bytes(val::extract_from_communities(
        scenario->propagator(), scenario->paths(), scenario->schemes(),
        extract));
  }));

  stages.push_back(run_stage("problink", [&](unsigned threads) {
    infer::ProbLinkParams algo;
    algo.threads = threads;
    return rel_bytes(
        infer::run_problink(observed, asrank, scenario->validation(), algo)
            .inference);
  }));

  stages.push_back(run_stage("toposcope", [&](unsigned threads) {
    infer::TopoScopeParams algo;
    algo.threads = threads;
    return rel_bytes(
        infer::run_toposcope(observed, asrank, scenario->validation(), algo)
            .inference);
  }));

  stages.push_back(run_stage("bias_audit", [&](unsigned threads) {
    const core::BiasAudit audit{*scenario, threads};
    std::string out = eval::render_coverage(audit.regional_coverage());
    out += eval::render_coverage(audit.topological_coverage());
    out += eval::render_validation_table(
        audit.validation_table(asrank.inference));
    return out;
  }));

  bool all_identical = true;
  for (const auto& stage : stages) {
    for (const auto& run : stage.runs) all_identical &= run.identical;
  }

  // The acceptance metric's "combined" pipeline: ProbLink + TopoScope +
  // BiasAudit wall-clock, summed from the measured per-stage times.
  const auto combined_ms = [&](unsigned threads) {
    double total = 0.0;
    for (const auto& stage : stages) {
      if (stage.name != "problink" && stage.name != "toposcope" &&
          stage.name != "bias_audit") {
        continue;
      }
      if (threads == 1) {
        total += stage.serial_ms;
        continue;
      }
      for (const auto& run : stage.runs) {
        if (run.threads == threads) total += run.ms;
      }
    }
    return total;
  };
  const double combined_serial = combined_ms(1);
  std::printf("combined (problink+toposcope+bias_audit) serial %9.1f ms\n",
              combined_serial);
  for (const unsigned threads : kThreadCounts) {
    std::printf("combined x%-5u %9.1f ms  speedup %.2fx\n", threads,
                combined_ms(threads), combined_serial / combined_ms(threads));
  }

  serve::JsonWriter json;
  json.begin_object();
  json.field("bench", "pipeline_scaling");
  json.field("as_count", params.topology.as_count);
  json.field("seed", static_cast<std::uint64_t>(params.topology.seed));
  json.field("hardware_threads", static_cast<std::uint64_t>(hardware));
  // On a 1-hardware-thread runner every "parallel" run is time-sliced onto
  // the same core, so the speedup columns measure scheduler overhead, not
  // scaling. Flag it so downstream tooling does not chart these as
  // regressions.
  json.field("degenerate_single_thread", hardware <= 1);
  json.field("all_outputs_byte_identical", all_identical);
  json.key("stages").begin_array();
  for (const auto& stage : stages) {
    json.begin_object();
    json.field("stage", stage.name);
    json.field("serial_ms", stage.serial_ms);
    json.key("runs").begin_array();
    for (const auto& run : stage.runs) {
      json.begin_object()
          .field("threads", static_cast<std::uint64_t>(run.threads))
          .field("ms", run.ms)
          .field("speedup", stage.serial_ms / run.ms)
          .field("identical", run.identical)
          .end_object();
    }
    json.end_array();
    json.end_object();
  }
  json.end_array();
  json.key("combined").begin_object();
  json.field("serial_ms", combined_serial);
  json.key("runs").begin_array();
  for (const unsigned threads : kThreadCounts) {
    json.begin_object()
        .field("threads", static_cast<std::uint64_t>(threads))
        .field("ms", combined_ms(threads))
        .field("speedup", combined_serial / combined_ms(threads))
        .end_object();
  }
  json.end_array();
  json.end_object();
  json.end_object();

  const char* out_path = "BENCH_pipeline.json";
  std::ofstream out{out_path, std::ios::binary};
  out << json.str() << '\n';
  if (!out) {
    std::printf("FATAL: cannot write %s\n", out_path);
    return 1;
  }
  std::printf("wrote %s\n", out_path);
  return all_identical ? 0 : 1;
}
