// Shared row-printing for the Table 1/2/3 reproduction binaries.
#pragma once

#include "bench_common.hpp"
#include "eval/report.hpp"

namespace asrel::bench {

inline void print_validation_table(const char* title,
                                   const infer::Inference& inference) {
  const auto table = audit().validation_table(inference, /*min_links=*/500);
  std::printf("\n=== %s ===\n%s", title,
              eval::render_validation_table(table).c_str());

  // Headline digest: the paper's problem classes vs the total.
  double t1_tr = -1;
  double s_t1 = -1;
  for (const auto& row : table.rows) {
    if (row.name == "T1-TR") t1_tr = row.p2p.ppv();
    if (row.name == "S-T1") s_t1 = row.p2p.ppv();
  }
  std::printf("\nTotal° PPV_P %.3f | T1-TR PPV_P %s | S-T1 PPV_P %s\n",
              table.total.p2p.ppv(),
              t1_tr < 0 ? "(class <500 links)"
                        : std::to_string(t1_tr).substr(0, 5).c_str(),
              s_t1 < 0 ? "(class <500 links)"
                       : std::to_string(s_t1).substr(0, 5).c_str());
  if (t1_tr >= 0) {
    std::printf("T1-TR precision gap vs Total°: %.1f%% (paper: 14-25%% "
                "depending on the algorithm)\n",
                100.0 * (table.total.p2p.ppv() - t1_tr));
  }
}

}  // namespace asrel::bench
