// The paper's §2 and §7 applications, quantified on the same world:
//
//  A. §2 — IXP spoofing detection (Müller et al.): per-member source
//     filters from customer cones. Wrong or missing relationships falsely
//     flag legitimate traffic; the false-flag rate is split per IXP region
//     to connect the harm to the Fig. 1 regional bias.
//  B. §7 — Peerlock: route-leak filters generated from three relationship
//     sources. Ground truth blocks (nearly) everything; inference loses
//     the mislabeled sessions; the validated subset leaves most sessions
//     unfiltered because most links have no labels at all — the paper's
//     do-ut-des argument in one table.
//
// Runs on the default world (ASREL_AS_COUNT / ASREL_SEED).
#include "bench_common.hpp"
#include "core/peerlock.hpp"
#include "core/spoof_guard.hpp"

int main() {
  using namespace asrel;
  const auto& scenario = bench::scenario();

  // ---- A: spoofing detection --------------------------------------------
  std::printf("\n=== §2 — IXP spoofing detection from inferred cones ===\n");
  const core::SpoofGuard truth_guard{
      scenario, [&] {
        // Ground-truth relationships as an Inference object.
        infer::Inference inference;
        for (const auto& edge : scenario.world().graph.edges()) {
          infer::InferredRel rel;
          rel.rel = edge.rel;
          rel.provider = scenario.world().graph.asn_of(edge.u);
          inference.set(
              val::AsLink{scenario.world().graph.asn_of(edge.u),
                          scenario.world().graph.asn_of(edge.v)},
              rel);
        }
        return inference;
      }()};
  const core::SpoofGuard asrank_guard{scenario, bench::asrank().inference};

  std::printf("%-10s %18s %18s %18s\n", "region", "false-flag (truth)",
              "false-flag (ASRank)", "detection (ASRank)");
  const auto truth_by_region = truth_guard.evaluate_by_region();
  for (const auto& [region, asrank_stats] :
       asrank_guard.evaluate_by_region()) {
    const auto truth_it = truth_by_region.find(region);
    std::printf("%-10s %18.4f %18.4f %18.3f\n",
                std::string{rir::registry_name(region)}.c_str(),
                truth_it == truth_by_region.end()
                    ? 0.0
                    : truth_it->second.false_flag_rate(),
                asrank_stats.false_flag_rate(),
                asrank_stats.detection_rate());
  }
  std::printf("(§2's warning: every falsely-flagged member is legitimate "
              "traffic misattributed as spoofing.)\n");

  // ---- B: Peerlock --------------------------------------------------------
  std::printf("\n=== §7 — Peerlock route-leak filters by relationship "
              "source ===\n");
  struct Source {
    const char* name;
    core::RelLookup lookup;
  };
  const Source sources[] = {
      {"ground truth",
       core::lookup_from_ground_truth(scenario.world())},
      {"ASRank inference",
       core::lookup_from_inference(bench::asrank().inference)},
      {"validated links only",
       core::lookup_from_validation(scenario.validation())},
  };
  std::printf("%-22s %10s %10s %14s %14s\n", "source", "leaks", "blocked",
              "open session", "wrong label");
  for (const auto& source : sources) {
    const auto report =
        core::simulate_route_leaks(scenario, source.lookup);
    std::printf("%-22s %10zu %10zu %14zu %14zu   (block rate %.3f)\n",
                source.name, report.leaks_simulated, report.blocked,
                report.passed_unknown_session, report.passed_wrong_label,
                report.block_rate());
  }

  // A sample generated config for flavor.
  const auto t1 = scenario.world().clique.front();
  const auto policy = core::build_peerlock_policy(
      scenario.world(),
      core::lookup_from_inference(bench::asrank().inference), t1);
  const auto config =
      core::render_peerlock_config(scenario.world(), policy);
  std::printf("\nSample generated config (first lines, AS%u):\n%.400s...\n",
              t1.value(), config.c_str());
  return 0;
}
