// Reproduces the §4.2 label-quality census (in-text numbers) and the
// ambiguous-label treatment comparison.
//
// Paper reference: 15 relationships with AS_TRANS (AS23456), 112 involving
// reserved ASNs, 246 multi-label relationships across 233 ASes, 210 sibling
// relationships to remove. Treating multi-label entries as "P2P if the
// entry starts with P2P" reproduces the TopoScope counts; "always P2C"
// reproduces the ProbLink counts. (Our absolute numbers scale with the
// world size; the classes of defects and the policy effects are the point.)
#include "bench_common.hpp"
#include "validation/cleaner.hpp"

int main() {
  using namespace asrel;
  const auto& scenario = bench::scenario();
  const auto& stats = scenario.cleaning_stats();

  std::printf("\n=== §4.2 — label quality & treatment ===\n");
  std::printf("raw validation entries:             %zu\n",
              stats.input_entries);
  std::printf("AS_TRANS (AS23456) entries removed: %zu (paper: 15)\n",
              stats.as_trans_removed);
  std::printf("reserved-ASN entries removed:       %zu (paper: 112)\n",
              stats.reserved_removed);
  std::printf("multi-label entries:                %zu across %zu ASes "
              "(paper: 246 / 233)\n",
              stats.multi_label_entries, stats.multi_label_ases);
  std::printf("sibling entries removed (as2org):   %zu (paper: 210)\n",
              stats.sibling_removed);
  std::printf("explicit S2S labels removed:        %zu\n",
              stats.s2s_label_removed);
  std::printf("entries kept:                       %zu\n", stats.kept);

  std::printf("\n--- ambiguous-label policy comparison ---\n");
  std::printf("%-16s %10s %10s %10s\n", "policy", "kept", "P2P", "P2C");
  for (const auto policy :
       {val::AmbiguityPolicy::kIgnore, val::AmbiguityPolicy::kFirstP2PWins,
        val::AmbiguityPolicy::kAlwaysP2C}) {
    val::CleaningOptions options;
    options.ambiguity = policy;
    const auto labels =
        val::clean(scenario.raw_validation(), scenario.orgs(), options);
    std::size_t p2p = 0;
    std::size_t p2c = 0;
    for (const auto& label : labels) {
      label.rel == topo::RelType::kP2P ? ++p2p : ++p2c;
    }
    std::printf("%-16s %10zu %10zu %10zu\n",
                std::string{val::to_string(policy)}.c_str(), labels.size(),
                p2p, p2c);
  }
  std::printf("\nNote: the policy choice silently changes the P2P/P2C split "
              "— exactly the discrepancy the paper found between the "
              "TopoScope and ProbLink evaluation numbers.\n");
  return 0;
}
