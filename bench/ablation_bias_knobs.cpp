// Ablations over the design knobs DESIGN.md calls out — each isolates one
// mechanism the paper names as a source of bias and shows the output change:
//
//  A. Community-documentation bias OFF (every transit documents at the same
//     rate regardless of region/tier): the LACNIC coverage hole disappears.
//  B. Export scopes OFF (no partial transit honored in propagation): the
//     Cogent mechanism vanishes and T1-TR P2P precision recovers.
//  C. Vantage-point count sweep: visibility grows with collectors, but
//     coverage bias does not go away.
//
// Runs on a reduced world (env ASREL_ABLATION_AS, default 6000) because it
// rebuilds the scenario several times.
#include "bench_common.hpp"
#include "eval/coverage.hpp"

namespace {

using namespace asrel;

struct Snapshot {
  double lacnic_coverage = 0;
  double arin_coverage = 0;
  double t1_tr_ppv_p = 0;
  std::size_t visible_links = 0;
  std::size_t validated = 0;
};

Snapshot measure(const core::ScenarioParams& params) {
  const auto scenario = core::Scenario::build(params);
  const core::BiasAudit audit{*scenario};
  const auto asrank = infer::run_asrank(scenario->observed());

  Snapshot snap;
  snap.visible_links = scenario->observed().link_count();
  snap.validated = scenario->validation().size();
  for (const auto& row : audit.regional_coverage().rows) {
    if (row.name == "L°") snap.lacnic_coverage = row.coverage;
    if (row.name == "AR°") snap.arin_coverage = row.coverage;
  }
  const auto table = audit.validation_table(asrank.inference, 100);
  for (const auto& row : table.rows) {
    if (row.name == "T1-TR") snap.t1_tr_ppv_p = row.p2p.ppv();
  }
  return snap;
}

}  // namespace

int main() {
  using namespace asrel;
  core::ScenarioParams base = bench::default_params();
  base.topology.as_count = bench::env_int("ASREL_ABLATION_AS", 6000);

  std::printf("\n=== Ablation A — community-documentation bias ===\n");
  const auto baseline = measure(base);
  auto uniform = base;
  for (auto& profile : uniform.topology.regions) {
    profile.doc_communities_transit = 0.45;  // one global rate
    profile.doc_communities_stub = 0.05;
  }
  uniform.topology.doc_factors = {.clique_prob = 0.8,
                                  .large = 1.0,
                                  .mid = 1.0,
                                  .small = 1.0};
  const auto unbiased = measure(uniform);
  std::printf("%-28s %12s %12s\n", "", "baseline", "uniform-doc");
  std::printf("%-28s %12.3f %12.3f\n", "L° coverage",
              baseline.lacnic_coverage, unbiased.lacnic_coverage);
  std::printf("%-28s %12.3f %12.3f\n", "AR° coverage",
              baseline.arin_coverage, unbiased.arin_coverage);
  std::printf("-> the L° coverage hole is an artifact of who documents "
              "communities: %s\n",
              unbiased.lacnic_coverage > 10 * baseline.lacnic_coverage +
                      0.005
                  ? "CONFIRMED"
                  : "NOT CONFIRMED");

  std::printf("\n=== Ablation B — partial-transit export scopes ===\n");
  auto no_scopes = base;
  no_scopes.propagation.honor_export_scopes = false;
  const auto open_world = measure(no_scopes);
  std::printf("%-28s %12s %12s\n", "", "baseline", "scopes-off");
  std::printf("%-28s %12.3f %12.3f\n", "T1-TR PPV_P",
              baseline.t1_tr_ppv_p, open_world.t1_tr_ppv_p);
  std::printf("-> the T1-TR precision drop is caused by honored export "
              "scopes: %s\n",
              open_world.t1_tr_ppv_p > baseline.t1_tr_ppv_p + 0.02
                  ? "CONFIRMED"
                  : "NOT CONFIRMED");

  std::printf("\n=== Ablation C — vantage-point count sweep ===\n");
  std::printf("%8s %16s %12s %12s\n", "VPs", "visible links", "validated",
              "L° coverage");
  for (const int count : {60, 120, 240, 320}) {
    auto params = base;
    params.vantage.target_count = count;
    const auto snap = measure(params);
    std::printf("%8d %16zu %12zu %12.3f\n", count, snap.visible_links,
                snap.validated, snap.lacnic_coverage);
  }
  std::printf("-> more collectors widen visibility but do not close the "
              "regional validation gap.\n");
  return 0;
}
