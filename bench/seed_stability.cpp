// Seed-stability analysis: the paper's findings must not be a property of
// one lucky world. Rebuilds the scenario under several seeds and reports
// the headline statistics' spread — every claim should hold for every
// seed.
//
// Runs on a reduced world (ASREL_STABILITY_AS, default 5000).
#include <algorithm>
#include <vector>

#include "bench_common.hpp"
#include "core/case_study.hpp"
#include "eval/coverage.hpp"

namespace {

using namespace asrel;

struct Headline {
  std::uint64_t seed = 0;
  double lacnic_coverage = 0;
  double arin_coverage = 0;
  double total_ppv_p = 0;
  double t1_tr_ppv_p = 0;
  double s_t1_mcc = 0;
  bool dominant_is_tagging_t1 = false;
  std::size_t clique_true = 0;
  std::size_t clique_size = 0;
};

Headline measure(std::uint64_t seed, int as_count) {
  core::ScenarioParams params;
  params.topology.as_count = as_count;
  params.topology.seed = seed;
  const auto scenario = core::Scenario::build(params);
  const core::BiasAudit audit{*scenario};
  const auto asrank = infer::run_asrank(scenario->observed());

  Headline h;
  h.seed = seed;
  for (const auto& row : audit.regional_coverage().rows) {
    if (row.name == "L°") h.lacnic_coverage = row.coverage;
    if (row.name == "AR°") h.arin_coverage = row.coverage;
  }
  const auto table = audit.validation_table(asrank.inference, 50);
  h.total_ppv_p = table.total.p2p.ppv();
  for (const auto& row : table.rows) {
    if (row.name == "T1-TR") h.t1_tr_ppv_p = row.p2p.ppv();
    if (row.name == "S-T1") h.s_t1_mcc = row.mcc;
  }
  const auto report =
      core::run_case_study(*scenario, audit, asrank.inference);
  h.dominant_is_tagging_t1 =
      report.dominant_tier1 == scenario->world().cogent_like;

  h.clique_size = asrank.clique.size();
  for (const auto member : asrank.clique) {
    if (scenario->world().attrs.at(member).tier == topo::Tier::kClique) {
      ++h.clique_true;
    }
  }
  return h;
}

}  // namespace

int main() {
  using namespace asrel;
  const int as_count = bench::env_int("ASREL_STABILITY_AS", 5000);
  const std::vector<std::uint64_t> seeds{42, 1337, 90210};

  std::printf("\n=== Seed stability (%d ASes, %zu seeds) ===\n", as_count,
              seeds.size());
  std::printf("%8s %10s %10s %12s %12s %10s %10s %14s\n", "seed", "L° cov",
              "AR° cov", "Total PPV_P", "T1-TR PPV_P", "S-T1 MCC",
              "clique", "§6.1 dominant");

  bool all_hold = true;
  for (const auto seed : seeds) {
    const auto h = measure(seed, as_count);
    std::printf("%8llu %10.3f %10.3f %12.3f %12.3f %10.3f %7zu/%-2zu %14s\n",
                static_cast<unsigned long long>(h.seed), h.lacnic_coverage,
                h.arin_coverage, h.total_ppv_p, h.t1_tr_ppv_p, h.s_t1_mcc,
                h.clique_true, h.clique_size,
                h.dominant_is_tagging_t1 ? "tagging-T1" : "OTHER");
    const bool holds = h.lacnic_coverage < 0.02 &&
                       h.arin_coverage > 0.1 &&
                       h.t1_tr_ppv_p < h.total_ppv_p &&
                       h.s_t1_mcc < 0.3 && h.dominant_is_tagging_t1 &&
                       h.clique_true * 10 >= h.clique_size * 9;
    all_hold = all_hold && holds;
  }
  std::printf("\nEvery headline claim holds for every seed: %s\n",
              all_hold ? "YES" : "NO");
  return 0;
}
