// Reproduces Appendix B (Figs. 7-9): the Fig. 3 heatmaps with alternative
// per-AS size metrics — provider/peer observed customer cone (PPDC) size,
// PPDC ignoring links incident to route-collector peers, and node degree.
//
// Expected shape: same story as Fig. 3, if anything stronger — the paper
// notes these variants "suggest an even stronger mismatch".
#include "bench_common.hpp"
#include "eval/ppdc.hpp"

int main() {
  using namespace asrel;
  const auto& audit = bench::audit();
  const auto& observed = bench::scenario().observed();

  // Axis caps scaled to our world (cf. the paper's 750/45 and 1500/150).
  const auto ppdc = eval::ppdc_sizes(observed, bench::asrank().inference);
  const auto ppdc_metric = [&](asn::Asn asn) -> std::uint32_t {
    const auto it = ppdc.find(asn);
    return it == ppdc.end() ? 0 : it->second;
  };
  const auto degree_metric = [&](asn::Asn asn) -> std::uint32_t {
    const auto index = observed.index_of(asn);
    return index ? observed.node_degree(*index) : 0;
  };
  const auto ppdc_spec = bench::adaptive_spec(ppdc_metric);
  const auto degree_spec = bench::adaptive_spec(degree_metric);

  std::printf("\n=== Fig. 7 — PPDC-size imbalance for TR° links ===\n");
  const auto fig7 = audit.ppdc_heatmaps(
      bench::asrank().inference, /*ignore_vp_links=*/false, ppdc_spec);
  bench::print_heatmap_pair("PPDC size", fig7);

  std::printf("\n=== Fig. 8 — PPDC-size imbalance, ignoring links incident "
              "to route-collector peers ===\n");
  const auto fig8 = audit.ppdc_heatmaps(
      bench::asrank().inference, /*ignore_vp_links=*/true, ppdc_spec);
  bench::print_heatmap_pair("PPDC size (no VP links)", fig8);

  std::printf("\n=== Fig. 9 — node-degree imbalance for TR° links ===\n");
  const auto fig9 = audit.node_degree_heatmaps(degree_spec);
  bench::print_heatmap_pair("node degree", fig9);

  std::printf("\nHeadline check — median shifts (validated TR° links should "
              "sit between larger ASes than inferred ones):\n");
  bench::print_median_shift("PPDC size", ppdc_metric);
  bench::print_median_shift("node degree", degree_metric);
  return 0;
}
