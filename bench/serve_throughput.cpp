// Serving-layer benchmark: snapshot build/save/load times, QueryEngine
// point-lookup throughput (single- and multi-threaded, no sockets), the
// report cache's effect on aggregate queries, and end-to-end HTTP QPS
// against an in-process HttpServer over loopback.
//
// ASREL_AS_COUNT / ASREL_SEED override the world size (default here is a
// smaller 4000-AS world so the bench stays interactive on one core).
#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstring>
#include <fstream>
#include <sstream>
#include <thread>

#include <algorithm>
#include <mutex>
#include <vector>

#include "obs/log.hpp"
#include "obs/trace.hpp"

#include "bench_common.hpp"
#include "core/snapshot_builder.hpp"
#include "io/flat_snapshot.hpp"
#include "io/snapshot.hpp"
#include "serve/engine_hub.hpp"
#include "serve/http_server.hpp"
#include "serve/json.hpp"
#include "serve/service.hpp"

namespace {

using namespace asrel;
using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

/// Minimal blocking GET over a fresh-per-call keep-alive connection.
struct MiniClient {
  int fd = -1;

  bool open(std::uint16_t port) {
    fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) return false;
    sockaddr_in address{};
    address.sin_family = AF_INET;
    address.sin_port = htons(port);
    address.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    if (::connect(fd, reinterpret_cast<sockaddr*>(&address),
                  sizeof(address)) != 0) {
      ::close(fd);
      fd = -1;
      return false;
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    return true;
  }

  ~MiniClient() {
    if (fd >= 0) ::close(fd);
  }

  int get(const std::string& path, bool close = false) {
    const std::string request =
        "GET " + path + " HTTP/1.1\r\nHost: bench\r\n" +
        (close ? "Connection: close\r\n\r\n" : "\r\n");
    if (::send(fd, request.data(), request.size(), MSG_NOSIGNAL) !=
        static_cast<ssize_t>(request.size())) {
      return -1;
    }
    std::string data;
    char chunk[8192];
    std::size_t header_end = std::string::npos;
    std::size_t content_length = 0;
    for (;;) {
      if (header_end == std::string::npos) {
        header_end = data.find("\r\n\r\n");
        if (header_end != std::string::npos) {
          const std::size_t cl = data.find("Content-Length: ");
          if (cl != std::string::npos && cl < header_end) {
            content_length = static_cast<std::size_t>(
                std::strtoull(data.c_str() + cl + 16, nullptr, 10));
          }
        }
      }
      if (header_end != std::string::npos &&
          data.size() >= header_end + 4 + content_length) {
        break;
      }
      const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
      if (n <= 0) return -1;
      data.append(chunk, static_cast<std::size_t>(n));
    }
    return std::atoi(data.c_str() + data.find(' ') + 1);
  }

  /// Sends one GET carrying a caller-fixed X-Request-Id and captures the
  /// full wire response (status line, headers, body). Pinning the client
  /// id pins the echo header too, so two captures of the same request
  /// compare byte-for-byte even though server-minted ids differ per
  /// request.
  bool get_wire(const std::string& path, const std::string& request_id,
                std::string* wire) {
    const std::string request =
        "GET " + path + " HTTP/1.1\r\nHost: bench\r\nX-Request-Id: " +
        request_id + "\r\n\r\n";
    if (::send(fd, request.data(), request.size(), MSG_NOSIGNAL) !=
        static_cast<ssize_t>(request.size())) {
      return false;
    }
    std::string data;
    char chunk[8192];
    std::size_t header_end = std::string::npos;
    std::size_t content_length = 0;
    for (;;) {
      if (header_end == std::string::npos) {
        header_end = data.find("\r\n\r\n");
        if (header_end != std::string::npos) {
          const std::size_t cl = data.find("Content-Length: ");
          if (cl != std::string::npos && cl < header_end) {
            content_length = static_cast<std::size_t>(
                std::strtoull(data.c_str() + cl + 16, nullptr, 10));
          }
        }
      }
      if (header_end != std::string::npos &&
          data.size() >= header_end + 4 + content_length) {
        break;
      }
      const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
      if (n <= 0) return false;
      data.append(chunk, static_cast<std::size_t>(n));
    }
    *wire = data.substr(0, header_end + 4 + content_length);
    return true;
  }

  /// Sends a pipelined request blob and parses the full response train.
  /// Returns {number of 200s, total train bytes}, or {-1, 0} on failure.
  /// The byte count feeds burst_bytes: the server is deterministic, so
  /// the same blob always yields the same train length.
  std::pair<int, std::size_t> burst_parse(const std::string& blob,
                                          int expected) {
    if (::send(fd, blob.data(), blob.size(), MSG_NOSIGNAL) !=
        static_cast<ssize_t>(blob.size())) {
      return {-1, 0};
    }
    std::string data;
    char chunk[65536];
    std::size_t off = 0;
    int ok = 0;
    for (int r = 0; r < expected; ++r) {
      std::size_t header_end;
      while ((header_end = data.find("\r\n\r\n", off)) == std::string::npos) {
        const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
        if (n <= 0) return {-1, 0};
        data.append(chunk, static_cast<std::size_t>(n));
      }
      std::size_t content_length = 0;
      const std::size_t cl = data.find("Content-Length: ", off);
      if (cl != std::string::npos && cl < header_end) {
        content_length = static_cast<std::size_t>(
            std::strtoull(data.c_str() + cl + 16, nullptr, 10));
      }
      const std::size_t frame_end = header_end + 4 + content_length;
      while (data.size() < frame_end) {
        const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
        if (n <= 0) return {-1, 0};
        data.append(chunk, static_cast<std::size_t>(n));
      }
      if (std::atoi(data.c_str() + data.find(' ', off) + 1) == 200) ++ok;
      off = frame_end;
    }
    return {ok, off};
  }

  /// Sends the blob and drains exactly `bytes` of response train — the
  /// framing burst_parse learned. The cheapest possible client loop, so
  /// the measured ceiling is the server's, not the client's.
  bool burst_bytes(const std::string& blob, std::size_t bytes) {
    if (::send(fd, blob.data(), blob.size(), MSG_NOSIGNAL) !=
        static_cast<ssize_t>(blob.size())) {
      return false;
    }
    char chunk[65536];
    std::size_t got = 0;
    while (got < bytes) {
      const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
      if (n <= 0) return false;
      got += static_cast<std::size_t>(n);
    }
    return got == bytes;
  }
};

/// Nearest-rank percentile: 1-based rank = ceil(p * n). The same rank rule
/// obs::histogram_quantile uses; the old `sorted[p * (n - 1)]` form
/// under-reported high quantiles for small n (p99 of 10 samples picked
/// index 8, not the maximum).
double percentile(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  const auto rank = static_cast<std::size_t>(
      std::ceil(p * static_cast<double>(sorted.size())));
  return sorted[std::max<std::size_t>(rank, 1) - 1];
}

}  // namespace

int main() {
  // Smaller default than the shared bench scenario: the serving layer is
  // measured at interactive scale; override with ASREL_AS_COUNT.
  core::ScenarioParams params;
  params.topology.as_count = bench::env_int("ASREL_AS_COUNT", 4000);
  params.topology.seed =
      static_cast<std::uint64_t>(bench::env_int("ASREL_SEED", 42));

  std::printf("== serve_throughput (%d ASes, seed %llu) ==\n",
              params.topology.as_count,
              static_cast<unsigned long long>(params.topology.seed));

  serve::JsonWriter json;
  json.begin_object();
  json.field("bench", "serve_throughput");
  json.field("as_count", params.topology.as_count);
  json.field("seed", static_cast<std::uint64_t>(params.topology.seed));

  auto t0 = Clock::now();
  const auto scenario = core::Scenario::build(params);
  const double build_ms = ms_since(t0);
  std::printf("scenario build:        %8.1f ms\n", build_ms);
  json.field("scenario_build_ms", build_ms);

  t0 = Clock::now();
  io::Snapshot snapshot = core::build_snapshot(*scenario);
  const double assembly_ms = ms_since(t0);
  std::printf("snapshot assembly:     %8.1f ms  (3 inferences + tags)\n",
              assembly_ms);
  json.field("snapshot_assembly_ms", assembly_ms);

  t0 = Clock::now();
  const std::string bytes = io::to_snapshot_bytes(snapshot);
  const double serialize_ms = ms_since(t0);
  std::printf("snapshot serialize:    %8.1f ms  (%.1f MiB)\n", serialize_ms,
              static_cast<double>(bytes.size()) / (1024.0 * 1024.0));
  json.field("snapshot_serialize_ms", serialize_ms);
  json.field("snapshot_bytes", static_cast<std::uint64_t>(bytes.size()));

  t0 = Clock::now();
  auto loaded = io::parse_snapshot_bytes(bytes);
  const double load_ms = ms_since(t0);
  std::printf("snapshot load:         %8.1f ms\n", load_ms);
  json.field("snapshot_load_ms", load_ms);
  if (!loaded) {
    std::printf("FATAL: round-trip failed\n");
    return 1;
  }

  t0 = Clock::now();
  const auto engine =
      std::make_shared<const serve::QueryEngine>(std::move(*loaded));
  const double index_ms = ms_since(t0);
  std::printf("engine index build:    %8.1f ms\n", index_ms);
  json.field("engine_index_build_ms", index_ms);

  // ---- in-process point-lookup throughput ----
  const auto sample = engine->sample_links(4096);
  json.key("rel_lookup").begin_array();
  for (const int threads : {1, 4}) {
    constexpr long kLookups = 200000;
    std::atomic<long> sink{0};
    t0 = Clock::now();
    std::vector<std::thread> pool;
    for (int w = 0; w < threads; ++w) {
      pool.emplace_back([&, w] {
        long found = 0;
        for (long i = 0; i < kLookups / threads; ++i) {
          const auto& link =
              sample[static_cast<std::size_t>(i + w * 31) % sample.size()];
          found += engine->rel(link.a, link.b).known() ? 1 : 0;
        }
        sink.fetch_add(found);
      });
    }
    for (auto& worker : pool) worker.join();
    const double seconds = ms_since(t0) / 1000.0;
    const double rate = static_cast<double>(kLookups) / seconds;
    std::printf("engine rel() x%d:       %8.0f lookups/s (%ld found)\n",
                threads, rate, sink.load());
    json.begin_object()
        .field("threads", threads)
        .field("lookups_per_s", rate)
        .end_object();
  }
  json.end_array();

  // ---- aggregate reports: cold vs cached ----
  t0 = Clock::now();
  (void)engine->report_json("regional");
  (void)engine->report_json("topological");
  (void)engine->report_json("table:asrank");
  const double cold_ms = ms_since(t0);
  t0 = Clock::now();
  constexpr int kCachedRounds = 1000;
  for (int i = 0; i < kCachedRounds; ++i) {
    (void)engine->report_json("regional");
    (void)engine->report_json("table:asrank");
  }
  const double cached_ms = ms_since(t0) / (2.0 * kCachedRounds);
  std::printf("reports cold:          %8.1f ms (3 reports)\n", cold_ms);
  std::printf("reports cached:        %8.3f ms/report (hit rate %.2f)\n",
              cached_ms, engine->cache_stats().hit_rate());
  json.field("reports_cold_ms", cold_ms);
  json.field("reports_cached_ms_per_report", cached_ms);
  json.field("report_cache_hit_rate", engine->cache_stats().hit_rate());

  // ---- hot reload: parse + reindex + RCU publish of a fresh epoch ----
  const auto hub = std::make_shared<serve::EngineHub>(
      engine, [&bytes](std::string* reload_error) {
        return io::parse_snapshot_bytes(bytes, reload_error);
      });
  t0 = Clock::now();
  constexpr int kReloads = 3;
  for (int i = 0; i < kReloads; ++i) {
    if (!hub->reload().ok) {
      std::printf("FATAL: reload failed\n");
      return 1;
    }
  }
  const double reload_ms = ms_since(t0) / kReloads;
  std::printf("hot reload:            %8.1f ms/swap (epoch %llu)\n",
              reload_ms, static_cast<unsigned long long>(hub->epoch()));
  json.field("hot_reload_ms", reload_ms);

  // ---- snapshot v3 (flat): serialize, mmap open, lookups, µs reload ----
  // The reload path opens with deep_verify=false (structural checks only;
  // the atomic-rename producer guarantees a complete file), which is what
  // turns a reload from a full parse + index build into an mmap.
  const std::string flat_path = "/tmp/asrel_serve_bench.v3";
  std::string flat_error;
  t0 = Clock::now();
  if (!io::save_flat_snapshot_file(snapshot, flat_path, &flat_error)) {
    std::printf("FATAL: flat save failed: %s\n", flat_error.c_str());
    return 1;
  }
  const double flat_save_ms = ms_since(t0);
  constexpr int kFlatOpens = 50;
  t0 = Clock::now();
  for (int i = 0; i < kFlatOpens; ++i) {
    if (io::FlatView::open_file(flat_path, &flat_error, false) == nullptr) {
      std::printf("FATAL: flat open failed: %s\n", flat_error.c_str());
      return 1;
    }
  }
  const double flat_open_us = ms_since(t0) * 1000.0 / kFlatOpens;
  const auto flat_view = io::FlatView::open_file(flat_path, &flat_error);
  if (flat_view == nullptr) {
    std::printf("FATAL: flat deep open failed: %s\n", flat_error.c_str());
    return 1;
  }
  const auto flat_engine =
      std::make_shared<const serve::QueryEngine>(flat_view);
  {
    constexpr long kLookups = 200000;
    long found = 0;
    t0 = Clock::now();
    for (long i = 0; i < kLookups; ++i) {
      const auto& link = sample[static_cast<std::size_t>(i) % sample.size()];
      found += flat_engine->rel(link.a, link.b).known() ? 1 : 0;
    }
    const double flat_rate =
        static_cast<double>(kLookups) / (ms_since(t0) / 1000.0);
    serve::EngineHub flat_hub{
        flat_engine,
        serve::EngineHub::EngineLoader{
            [&flat_path](std::string* reload_error)
                -> std::shared_ptr<const serve::QueryEngine> {
              auto view =
                  io::FlatView::open_file(flat_path, reload_error, false);
              if (view == nullptr) return nullptr;
              return std::make_shared<const serve::QueryEngine>(
                  std::move(view));
            }}};
    constexpr int kFlatReloads = 50;
    t0 = Clock::now();
    for (int i = 0; i < kFlatReloads; ++i) {
      if (!flat_hub.reload().ok) {
        std::printf("FATAL: flat reload failed\n");
        return 1;
      }
    }
    const double flat_reload_us = ms_since(t0) * 1000.0 / kFlatReloads;
    std::printf("flat (v3) save:        %8.1f ms\n", flat_save_ms);
    std::printf("flat (v3) mmap open:   %8.1f us/open (structural)\n",
                flat_open_us);
    std::printf("flat (v3) rel() x1:    %8.0f lookups/s (%ld found)\n",
                flat_rate, found);
    std::printf("flat (v3) hot reload:  %8.1f us/swap (vs %.1f ms v2)\n",
                flat_reload_us, reload_ms);
    json.key("flat_snapshot").begin_object();
    json.field("save_ms", flat_save_ms);
    json.field("open_us", flat_open_us);
    json.field("rel_lookups_per_s", flat_rate);
    json.field("reload_us", flat_reload_us);
    json.field("v2_reload_ms", reload_ms);
    json.end_object();
  }

  // ---- end-to-end HTTP over loopback: both front ends ----
  serve::AsrelService service{hub};
  const auto handler = [&service](const serve::HttpRequest& request) {
    return service.handle(request);
  };

  /// One keep-alive /rel hammer round; returns {req/s, errors}.
  const auto run_http_rel = [&](std::uint16_t port, int clients,
                                long requests) {
    std::atomic<long> errors{0};
    const auto start = Clock::now();
    std::vector<std::thread> pool;
    for (int c = 0; c < clients; ++c) {
      pool.emplace_back([&, c] {
        MiniClient client;
        if (!client.open(port)) {
          errors.fetch_add(requests / clients);
          return;
        }
        for (long i = 0; i < requests / clients; ++i) {
          const auto& link =
              sample[static_cast<std::size_t>(i + c * 17) % sample.size()];
          const std::string path = "/rel?a=" +
                                   std::to_string(link.a.value()) +
                                   "&b=" + std::to_string(link.b.value());
          if (client.get(path) != 200) errors.fetch_add(1);
        }
      });
    }
    for (auto& worker : pool) worker.join();
    const double seconds = ms_since(start) / 1000.0;
    return std::pair<double, long>{static_cast<double>(requests) / seconds,
                                   errors.load()};
  };

  /// Pipelined keep-alive hammer: each client prebuilds one blob of
  /// `depth` /rel requests, learns the response-train byte length with a
  /// parsing warm-up burst, then times `rounds` send+drain cycles.
  const auto run_http_pipelined = [&](std::uint16_t port, int clients,
                                      int depth, int rounds) {
    std::atomic<long> errors{0};
    const auto start = Clock::now();
    std::vector<std::thread> pool;
    for (int c = 0; c < clients; ++c) {
      pool.emplace_back([&, c] {
        MiniClient client;
        if (!client.open(port)) {
          errors.fetch_add(static_cast<long>(depth) * (rounds + 1));
          return;
        }
        std::string blob;
        for (int i = 0; i < depth; ++i) {
          const auto& link =
              sample[static_cast<std::size_t>(i + c * 17) % sample.size()];
          blob += "GET /rel?a=" + std::to_string(link.a.value()) +
                  "&b=" + std::to_string(link.b.value()) +
                  " HTTP/1.1\r\nHost: bench\r\n\r\n";
        }
        const auto [ok, train_bytes] = client.burst_parse(blob, depth);
        if (ok != depth) {
          errors.fetch_add(static_cast<long>(depth) * (rounds + 1));
          return;
        }
        for (int r = 0; r < rounds; ++r) {
          if (!client.burst_bytes(blob, train_bytes)) {
            errors.fetch_add(static_cast<long>(depth) * (rounds - r));
            return;
          }
        }
      });
    }
    for (auto& worker : pool) worker.join();
    const double seconds = ms_since(start) / 1000.0;
    const long requests = static_cast<long>(clients) * depth * (rounds + 1);
    return std::pair<double, long>{static_cast<double>(requests) / seconds,
                                   errors.load()};
  };

  std::string error;
  json.key("http_rel").begin_array();
  double threadpool_serial_rps = 0.0;
  double epoll_serial_rps = 0.0;
  double epoll_pipelined_rps = 0.0;
  for (const auto model : {serve::ServeModel::kThreadPool,
                           serve::ServeModel::kEpoll}) {
    const bool epoll = model == serve::ServeModel::kEpoll;
    const char* frontend = epoll ? "epoll" : "threadpool";
    serve::HttpServerOptions options;
    options.port = 0;
    options.worker_threads = 4;
    options.serve_model = model;
    serve::HttpServer server{handler, options};
    if (!server.start(&error)) {
      std::printf("FATAL: %s\n", error.c_str());
      return 1;
    }
    for (const int clients : {1, 4}) {
      constexpr long kRequests = 20000;
      const auto [rate, errors] =
          run_http_rel(server.port(), clients, kRequests);
      std::printf("http /rel %-10s x%d: %8.0f req/s (%ld errors)\n",
                  frontend, clients, rate, errors);
      if (clients == 1) {
        (epoll ? epoll_serial_rps : threadpool_serial_rps) = rate;
      }
      json.begin_object()
          .field("frontend", frontend)
          .field("clients", clients)
          .field("requests_per_s", rate)
          .field("errors", static_cast<std::int64_t>(errors))
          .end_object();
    }
    for (const int depth : {16, 64}) {
      const int rounds = epoll ? 2000 : 200;
      const auto [rate, errors] =
          run_http_pipelined(server.port(), 2, depth, rounds);
      std::printf("http /rel %-10s x2 pipeline %-4d: %8.0f req/s "
                  "(%ld errors)\n",
                  frontend, depth, rate, errors);
      if (epoll && depth == 64) epoll_pipelined_rps = rate;
      json.begin_object()
          .field("frontend", frontend)
          .field("clients", 2)
          .field("pipeline", depth)
          .field("requests_per_s", rate)
          .field("errors", static_cast<std::int64_t>(errors))
          .end_object();
    }
    server.stop();
  }
  // The tentpole configuration: epoll front end serving straight from the
  // mmap'd flat snapshot. This is the number the ISSUE's ≥10× target is
  // measured against.
  {
    const auto flat_hub = std::make_shared<serve::EngineHub>(flat_engine);
    serve::AsrelService flat_service{flat_hub};
    serve::HttpServerOptions options;
    options.port = 0;
    options.worker_threads = 4;
    options.serve_model = serve::ServeModel::kEpoll;
    serve::HttpServer server{
        [&flat_service](const serve::HttpRequest& request) {
          return flat_service.handle(request);
        },
        options};
    if (!server.start(&error)) {
      std::printf("FATAL: %s\n", error.c_str());
      return 1;
    }
    for (const int depth : {64, 256}) {
      const auto [rate, errors] =
          run_http_pipelined(server.port(), 2, depth, 2000);
      std::printf("http /rel epoll+flat  x2 pipeline %-4d: %8.0f req/s "
                  "(%ld errors)\n",
                  depth, rate, errors);
      epoll_pipelined_rps = std::max(epoll_pipelined_rps, rate);
      json.begin_object()
          .field("frontend", "epoll+flat")
          .field("clients", 2)
          .field("pipeline", depth)
          .field("requests_per_s", rate)
          .field("errors", static_cast<std::int64_t>(errors))
          .end_object();
    }
    server.stop();
  }
  json.end_array();
  json.field("baseline_rps", 83000.0);
  json.field("epoll_vs_threadpool_serial",
             threadpool_serial_rps > 0.0
                 ? epoll_serial_rps / threadpool_serial_rps
                 : 0.0);
  json.field("epoll_pipelined_vs_baseline",
             epoll_pipelined_rps / 83000.0);
  std::printf("epoll pipelined vs 83k baseline: %.1fx\n",
              epoll_pipelined_rps / 83000.0);

  // ---- the default server for the tracing-overhead section ----
  serve::HttpServerOptions options;
  options.port = 0;
  options.worker_threads = 4;
  serve::HttpServer server{handler, options};
  if (!server.start(&error)) {
    std::printf("FATAL: %s\n", error.c_str());
    return 1;
  }

  // ---- tracing overhead: the identical workload, tracer off then on ----
  // The ISSUE budget is < 2% throughput loss with tracing enabled; the CI
  // bench job records whatever this run measures so regressions show up in
  // BENCH_serve.json history. (Loopback QPS is noisy at the percent level,
  // so this is a recorded signal, not an assertion.)
  {
    constexpr long kRequests = 20000;
    constexpr int kRounds = 3;
    (void)run_http_rel(server.port(), 4, kRequests);  // warm-up: equalize cache state
    obs::Tracer::instance().clear();
    // Alternate off/on rounds and keep the best of each: loopback QPS
    // jitters far more run-to-run than tracing costs, and best-of-N
    // filters the scheduler noise that a single pair cannot.
    double tracing_off_rps = 0.0;
    double tracing_on_rps = 0.0;
    for (int round = 0; round < kRounds; ++round) {
      tracing_off_rps =
          std::max(tracing_off_rps, run_http_rel(server.port(), 4, kRequests).first);
      obs::ScopedTracing tracing{true};
      tracing_on_rps =
          std::max(tracing_on_rps, run_http_rel(server.port(), 4, kRequests).first);
    }
    const double overhead_pct =
        tracing_off_rps > 0.0
            ? (tracing_off_rps - tracing_on_rps) / tracing_off_rps * 100.0
            : 0.0;
    std::printf(
        "tracing overhead:      %8.0f req/s off, %.0f req/s on (%+.2f%%)\n",
        tracing_off_rps, tracing_on_rps, overhead_pct);
    json.field("tracing_off_rps", tracing_off_rps);
    json.field("tracing_on_rps", tracing_on_rps);
    json.field("tracing_overhead_pct", overhead_pct);
    std::string trace_error;
    if (obs::Tracer::instance().write_chrome_trace("trace.json",
                                                   &trace_error)) {
      std::printf("wrote trace.json\n");
    } else {
      std::printf("FATAL: cannot write trace.json: %s\n",
                  trace_error.c_str());
      return 1;
    }
    obs::Tracer::instance().set_enabled(false);
  }

  // ---- event-log overhead: the identical workload, log off then on ----
  // Same protocol as the tracing section. The observability budget (request
  // ids + slow rings + structured events) is < 2% throughput; recorded, not
  // asserted, because loopback QPS is noisy at the percent level.
  {
    constexpr long kRequests = 20000;
    constexpr int kRounds = 3;
    double logging_off_rps = 0.0;
    double logging_on_rps = 0.0;
    for (int round = 0; round < kRounds; ++round) {
      {
        obs::ScopedLogging logging{false};
        logging_off_rps = std::max(
            logging_off_rps, run_http_rel(server.port(), 4, kRequests).first);
      }
      obs::ScopedLogging logging{true};
      logging_on_rps = std::max(
          logging_on_rps, run_http_rel(server.port(), 4, kRequests).first);
    }
    const double overhead_pct =
        logging_off_rps > 0.0
            ? (logging_off_rps - logging_on_rps) / logging_off_rps * 100.0
            : 0.0;
    std::printf(
        "logging overhead:      %8.0f req/s off, %.0f req/s on (%+.2f%%)\n",
        logging_off_rps, logging_on_rps, overhead_pct);
    json.field("logging_off_rps", logging_off_rps);
    json.field("logging_on_rps", logging_on_rps);
    json.field("logging_overhead_pct", overhead_pct);
  }

  // ---- byte identity with full observability on ----
  // The layer's central invariant, pinned at the serve path: the same
  // request (fixed client X-Request-Id, so the echo header is pinned too)
  // yields identical wire bytes whether tracing+logging are on or off.
  {
    const auto& link = sample.front();
    const std::string path = "/rel?a=" + std::to_string(link.a.value()) +
                             "&b=" + std::to_string(link.b.value());
    MiniClient probe;
    std::string wire_off;
    std::string wire_on;
    bool ok = probe.open(server.port());
    if (ok) {
      obs::ScopedTracing tracing{false};
      obs::ScopedLogging logging{false};
      ok = probe.get_wire(path, "00000000cafef00d", &wire_off);
    }
    if (ok) {
      obs::ScopedTracing tracing{true};
      obs::ScopedLogging logging{true};
      ok = probe.get_wire(path, "00000000cafef00d", &wire_on);
    }
    obs::Tracer::instance().set_enabled(false);
    if (!ok || wire_off.empty() || wire_off != wire_on) {
      std::printf("FATAL: response bytes differ with observability on\n");
      return 1;
    }
    std::printf("observability byte-identity: OK (%zu wire bytes)\n",
                wire_off.size());
    json.field("observability_byte_identical", true);
  }
  server.stop();

  // ---- overload shedding: tiny queue in front of one slow worker ----
  // One worker, near-empty pending queue, ~1 ms handler: most of the
  // 8-way burst must be shed with 503 while admitted work stays fast.
  {
    serve::HttpServerOptions small_options;
    small_options.port = 0;
    small_options.worker_threads = 1;
    small_options.max_pending_connections = 4;
    serve::HttpServer small{
        [](const serve::HttpRequest&) {
          std::this_thread::sleep_for(std::chrono::milliseconds(1));
          return serve::HttpResponse::json(200, "{\"ok\":true}");
        },
        small_options};
    if (!small.start(&error)) {
      std::printf("FATAL: %s\n", error.c_str());
      return 1;
    }
    constexpr int kBurstClients = 8;
    constexpr int kBurstRequests = 50;
    std::atomic<long> success{0};
    std::atomic<long> shed{0};
    std::mutex latency_mutex;
    std::vector<double> success_us;
    t0 = Clock::now();
    std::vector<std::thread> burst;
    for (int c = 0; c < kBurstClients; ++c) {
      burst.emplace_back([&] {
        std::vector<double> local_us;
        for (int i = 0; i < kBurstRequests; ++i) {
          MiniClient client;
          if (!client.open(small.port())) {
            shed.fetch_add(1);
            continue;
          }
          const auto sent = Clock::now();
          const int status = client.get("/x", /*close=*/true);
          if (status == 200) {
            success.fetch_add(1);
            local_us.push_back(ms_since(sent) * 1000.0);
          } else {
            // 503 from the shed path, or -1 when the RST from the
            // server-side close races ahead of the buffered response.
            shed.fetch_add(1);
          }
        }
        const std::lock_guard<std::mutex> lock{latency_mutex};
        success_us.insert(success_us.end(), local_us.begin(),
                          local_us.end());
      });
    }
    for (auto& worker : burst) worker.join();
    const double burst_seconds = ms_since(t0) / 1000.0;
    std::sort(success_us.begin(), success_us.end());
    const double p50 = percentile(success_us, 0.50);
    const double p99 = percentile(success_us, 0.99);
    const auto small_stats = small.stats();
    small.stop();
    std::printf(
        "overload burst:        %8ld ok, %ld shed in %.2fs "
        "(success p50 %.0f us, p99 %.0f us)\n",
        success.load(), shed.load(), burst_seconds, p50, p99);
    json.key("overload").begin_object();
    json.field("requests",
               static_cast<std::int64_t>(kBurstClients * kBurstRequests));
    json.field("success", static_cast<std::int64_t>(success.load()));
    json.field("shed", static_cast<std::int64_t>(shed.load()));
    json.field("server_rejected",
               static_cast<std::int64_t>(small_stats.overload_rejected));
    json.field("success_p50_us", p50);
    json.field("success_p99_us", p99);
    json.end_object();
  }

  json.end_object();
  const char* out_path = "BENCH_serve.json";
  std::ofstream out{out_path, std::ios::binary};
  out << json.str() << '\n';
  if (out) {
    std::printf("wrote %s\n", out_path);
  } else {
    std::printf("FATAL: cannot write %s\n", out_path);
    return 1;
  }
  return 0;
}
