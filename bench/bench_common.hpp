// Shared scaffolding for the per-table/figure reproduction binaries.
//
// Every bench builds the same default scenario (the "April 2018 snapshot" of
// the simulated world) and caches it per process. The world size can be
// overridden with the ASREL_AS_COUNT environment variable (default 12000),
// the seed with ASREL_SEED (default 42) to study scale/seed stability, and
// the worker count with ASREL_THREADS (default 0 = auto; results are
// byte-identical for every setting).
#pragma once

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <unordered_set>
#include <vector>
#include <cstdlib>
#include <memory>
#include <string>

#include "core/bias_audit.hpp"
#include "core/scenario.hpp"
#include "infer/asrank.hpp"
#include "infer/gao.hpp"
#include "infer/problink.hpp"
#include "infer/toposcope.hpp"

namespace asrel::bench {

inline int env_int(const char* name, int fallback) {
  const char* value = std::getenv(name);
  return value != nullptr ? std::atoi(value) : fallback;
}

inline core::ScenarioParams default_params() {
  core::ScenarioParams params;
  params.topology.as_count = env_int("ASREL_AS_COUNT", 12000);
  params.topology.seed =
      static_cast<std::uint64_t>(env_int("ASREL_SEED", 42));
  params.threads = static_cast<unsigned>(env_int("ASREL_THREADS", 0));
  return params;
}

inline const core::Scenario& scenario() {
  static const std::unique_ptr<core::Scenario> instance = [] {
    const auto params = default_params();
    std::printf("[setup] building scenario: %d ASes, seed %d ...\n",
                params.topology.as_count, env_int("ASREL_SEED", 42));
    const auto start = std::chrono::steady_clock::now();
    auto built = core::Scenario::build(params);
    const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
        std::chrono::steady_clock::now() - start);
    std::printf(
        "[setup] done in %lld ms: %zu ground-truth links, %zu visible, "
        "%zu validated\n",
        static_cast<long long>(elapsed.count()),
        built->world().graph.edge_count(), built->observed().link_count(),
        built->validation().size());
    return built;
  }();
  return *instance;
}

inline const core::BiasAudit& audit() {
  static const core::BiasAudit instance{scenario()};
  return instance;
}

inline const infer::AsRankResult& asrank() {
  static const infer::AsRankResult result = [] {
    std::printf("[setup] running ASRank ...\n");
    return infer::run_asrank(scenario().observed());
  }();
  return result;
}

inline const infer::ProbLinkResult& problink() {
  static const infer::ProbLinkResult result = [] {
    std::printf("[setup] running ProbLink ...\n");
    infer::ProbLinkParams params;
    params.threads = scenario().params().threads;
    return infer::run_problink(scenario().observed(), asrank(),
                               scenario().validation(), params);
  }();
  return result;
}

inline const infer::TopoScopeResult& toposcope() {
  static const infer::TopoScopeResult result = [] {
    std::printf("[setup] running TopoScope ...\n");
    infer::TopoScopeParams params;
    params.threads = scenario().params().threads;
    return infer::run_toposcope(scenario().observed(), asrank(),
                                scenario().validation(), params);
  }();
  return result;
}

/// Axis caps scaled to the observed metric range: x cap at the 99th
/// percentile of the larger-side values over the TR° links, y cap at a
/// tenth of it (the paper's 1500:150 proportions).
template <typename Metric>
eval::HeatmapSpec adaptive_spec(Metric&& metric) {
  std::vector<std::uint32_t> values;
  for (const auto& link : audit().transit_links()) {
    values.push_back(std::max(metric(link.a), metric(link.b)));
  }
  eval::HeatmapSpec spec;
  if (!values.empty()) {
    std::sort(values.begin(), values.end());
    const auto p99 = values[values.size() * 99 / 100];
    spec.x_cap = std::max<std::uint32_t>(30, p99);
    spec.y_cap = std::max<std::uint32_t>(15, spec.x_cap / 10);
  }
  return spec;
}

/// Median of the larger/smaller per-link metric over a link set.
template <typename Metric>
std::pair<double, double> median_metrics(
    const std::vector<val::AsLink>& links, Metric&& metric) {
  std::vector<std::uint32_t> larger;
  std::vector<std::uint32_t> smaller;
  for (const auto& link : links) {
    const auto a = metric(link.a);
    const auto b = metric(link.b);
    larger.push_back(std::max(a, b));
    smaller.push_back(std::min(a, b));
  }
  if (larger.empty()) return {0, 0};
  std::sort(larger.begin(), larger.end());
  std::sort(smaller.begin(), smaller.end());
  return {static_cast<double>(larger[larger.size() / 2]),
          static_cast<double>(smaller[smaller.size() / 2])};
}

/// The validated subset of the audit's TR° links.
inline std::vector<val::AsLink> validated_transit_links() {
  std::unordered_set<val::AsLink> validated;
  for (const auto& label : scenario().validation()) validated.insert(label.link);
  std::vector<val::AsLink> out;
  for (const auto& link : audit().transit_links()) {
    if (validated.contains(link)) out.push_back(link);
  }
  return out;
}

template <typename Metric>
void print_median_shift(const char* metric_name, Metric&& metric) {
  const auto inferred = median_metrics(audit().transit_links(), metric);
  const auto validated = median_metrics(validated_transit_links(), metric);
  std::printf(
      "median %s over TR° links — inferred: larger %.0f / smaller %.0f; "
      "validatable: larger %.0f / smaller %.0f\n",
      metric_name, inferred.first, inferred.second, validated.first,
      validated.second);
  std::printf("  validated links sit between larger ASes (paper's Fig. 3 "
              "mismatch): %s\n",
              validated.first > inferred.first ? "YES" : "NO");
}

inline void print_heatmap_pair(const char* title,
                               const core::BiasAudit::HeatmapPair& maps) {
  std::printf("\n--- %s: inferred TR° links (%zu) ---\n", title,
              maps.inferred.total());
  std::printf("%s", maps.inferred.render().c_str());
  std::printf("bottom-left mass (smallest quarter of both axes): %.2f\n",
              maps.inferred.bottom_left_mass());
  std::printf("\n--- %s: validatable TR° links (%zu) ---\n", title,
              maps.validated.total());
  std::printf("%s", maps.validated.render().c_str());
  std::printf("bottom-left mass: %.2f\n",
              maps.validated.bottom_left_mass());
}

}  // namespace asrel::bench
