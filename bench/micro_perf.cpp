// google-benchmark micro-benchmarks for the performance-critical kernels:
// topology generation, single-origin propagation, full path collection,
// sanitization, community extraction, clique inference, and the three
// classifiers. Runs on a small world so a full pass stays under a minute.
#include <benchmark/benchmark.h>

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "core/scenario.hpp"
#include "infer/asrank.hpp"
#include "infer/clique.hpp"
#include "infer/gao.hpp"
#include "infer/problink.hpp"
#include "infer/toposcope.hpp"
#include "topology/cone.hpp"
#include "validation/extract.hpp"

namespace {

using namespace asrel;

const core::Scenario& small_scenario() {
  static const std::unique_ptr<core::Scenario> instance = [] {
    core::ScenarioParams params;
    params.topology.as_count = 2000;
    params.vantage.target_count = 100;
    return core::Scenario::build(params);
  }();
  return *instance;
}

void BM_TopologyGenerate(benchmark::State& state) {
  topo::TopologyParams params;
  params.as_count = static_cast<int>(state.range(0));
  for (auto _ : state) {
    auto world = topo::generate(params);
    benchmark::DoNotOptimize(world.graph.edge_count());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_TopologyGenerate)->Arg(1000)->Arg(4000)->Iterations(3)->Unit(
    benchmark::kMillisecond);

void BM_PropagateOneOrigin(benchmark::State& state) {
  const auto& scenario = small_scenario();
  const auto propagator = scenario.propagator();
  const auto origins = scenario.world().graph.nodes();
  std::size_t index = 0;
  for (auto _ : state) {
    const auto rib = propagator.propagate(origins[index % origins.size()]);
    benchmark::DoNotOptimize(rib.dist.data());
    ++index;
  }
  state.SetItemsProcessed(state.iterations() *
                          scenario.world().graph.edge_count());
}
BENCHMARK(BM_PropagateOneOrigin)->Unit(benchmark::kMicrosecond);

void BM_CollectAllPaths(benchmark::State& state) {
  const auto& scenario = small_scenario();
  const auto propagator = scenario.propagator();
  for (auto _ : state) {
    auto table = bgp::collect_paths(
        propagator, std::vector<bgp::VantagePoint>(
                        scenario.vantage_points().begin(),
                        scenario.vantage_points().end()));
    benchmark::DoNotOptimize(table.path_count());
  }
}
BENCHMARK(BM_CollectAllPaths)->Iterations(3)->Unit(benchmark::kMillisecond);

void BM_SanitizePaths(benchmark::State& state) {
  const auto& scenario = small_scenario();
  for (auto _ : state) {
    auto observed = infer::ObservedPaths::build(scenario.paths());
    benchmark::DoNotOptimize(observed.link_count());
  }
  state.SetItemsProcessed(state.iterations() *
                          scenario.paths().path_count());
}
BENCHMARK(BM_SanitizePaths)->Iterations(3)->Unit(benchmark::kMillisecond);

void BM_CommunityExtraction(benchmark::State& state) {
  const auto& scenario = small_scenario();
  const auto propagator = scenario.propagator();
  for (auto _ : state) {
    auto set = val::extract_from_communities(propagator, scenario.paths(),
                                             scenario.schemes(), {});
    benchmark::DoNotOptimize(set.size());
  }
}
BENCHMARK(BM_CommunityExtraction)->Iterations(3)->Unit(benchmark::kMillisecond);

void BM_CliqueInference(benchmark::State& state) {
  const auto& scenario = small_scenario();
  for (auto _ : state) {
    auto clique = infer::infer_clique(scenario.observed(), {});
    benchmark::DoNotOptimize(clique.size());
  }
}
BENCHMARK(BM_CliqueInference)->Unit(benchmark::kMillisecond);

void BM_AsRank(benchmark::State& state) {
  const auto& scenario = small_scenario();
  for (auto _ : state) {
    auto result = infer::run_asrank(scenario.observed());
    benchmark::DoNotOptimize(result.inference.size());
  }
  state.SetItemsProcessed(state.iterations() *
                          scenario.observed().link_count());
}
BENCHMARK(BM_AsRank)->Iterations(3)->Unit(benchmark::kMillisecond);

void BM_Gao(benchmark::State& state) {
  const auto& scenario = small_scenario();
  for (auto _ : state) {
    auto inference = infer::run_gao(scenario.observed());
    benchmark::DoNotOptimize(inference.size());
  }
}
BENCHMARK(BM_Gao)->Iterations(3)->Unit(benchmark::kMillisecond);

void BM_ProbLink(benchmark::State& state) {
  const auto& scenario = small_scenario();
  const auto asrank = infer::run_asrank(scenario.observed());
  for (auto _ : state) {
    auto result =
        infer::run_problink(scenario.observed(), asrank,
                            scenario.validation());
    benchmark::DoNotOptimize(result.inference.size());
  }
}
BENCHMARK(BM_ProbLink)->Iterations(2)->Unit(benchmark::kMillisecond);

void BM_TopoScope(benchmark::State& state) {
  const auto& scenario = small_scenario();
  const auto asrank = infer::run_asrank(scenario.observed());
  for (auto _ : state) {
    auto result = infer::run_toposcope(scenario.observed(), asrank,
                                       scenario.validation());
    benchmark::DoNotOptimize(result.inference.size());
  }
}
BENCHMARK(BM_TopoScope)->Iterations(2)->Unit(benchmark::kMillisecond);

void BM_CustomerConeSizes(benchmark::State& state) {
  const auto& world = small_scenario().world();
  for (auto _ : state) {
    auto sizes = topo::customer_cone_sizes(world.graph);
    benchmark::DoNotOptimize(sizes.data());
  }
}
BENCHMARK(BM_CustomerConeSizes)->Unit(benchmark::kMillisecond);

}  // namespace

// Like BENCHMARK_MAIN(), but defaults the JSON reporter to BENCH_micro.json
// so CI and scripts always get a machine-readable result file alongside the
// console output. An explicit --benchmark_out= on the command line wins.
int main(int argc, char** argv) {
  std::vector<char*> args{argv, argv + argc};
  std::string out_flag = "--benchmark_out=BENCH_micro.json";
  std::string format_flag = "--benchmark_out_format=json";
  bool has_out = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string_view{argv[i]}.starts_with("--benchmark_out=")) {
      has_out = true;
    }
  }
  if (!has_out) {
    args.push_back(out_flag.data());
    args.push_back(format_flag.data());
  }
  int forwarded = static_cast<int>(args.size());
  benchmark::Initialize(&forwarded, args.data());
  if (benchmark::ReportUnrecognizedArguments(forwarded, args.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
