// Quickstart: build a small world, run the full §4 pipeline, infer
// relationships with all three classifiers, and print the headline bias
// numbers.
//
//   ./examples/quickstart [as_count] [seed]
#include <cstdio>
#include <cstdlib>

#include "core/bias_audit.hpp"
#include "core/case_study.hpp"
#include "core/scenario.hpp"
#include "infer/asrank.hpp"
#include "infer/problink.hpp"
#include "infer/toposcope.hpp"

int main(int argc, char** argv) {
  using namespace asrel;

  core::ScenarioParams params;
  params.topology.as_count = argc > 1 ? std::atoi(argv[1]) : 4000;
  params.topology.seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 42;
  params.vantage.target_count = 120;

  std::printf("Building scenario (%d ASes, seed %llu)...\n",
              params.topology.as_count,
              static_cast<unsigned long long>(params.topology.seed));
  const auto scenario = core::Scenario::build(params);

  const auto& world = scenario->world();
  std::printf("  ground truth: %zu ASes, %zu links\n",
              world.graph.node_count(), world.graph.edge_count());
  std::printf("  observed:     %zu sanitized paths, %zu visible links\n",
              scenario->observed().path_count(),
              scenario->observed().link_count());
  std::printf("  validation:   %zu raw entries -> %zu cleaned labels\n",
              scenario->raw_validation().size(),
              scenario->validation().size());

  std::printf("\nRunning ASRank...\n");
  const auto asrank = infer::run_asrank(scenario->observed());
  std::printf("  clique size %zu, %zu links classified\n",
              asrank.clique.size(), asrank.inference.size());

  std::printf("Running ProbLink...\n");
  const auto problink = infer::run_problink(
      scenario->observed(), asrank, scenario->validation());
  std::printf("  %d iterations, trained on %zu links\n",
              problink.iterations_used, problink.training_links);

  std::printf("Running TopoScope...\n");
  const auto toposcope = infer::run_toposcope(
      scenario->observed(), asrank, scenario->validation());
  std::printf("  %d VP groups, %zu hidden links predicted\n",
              toposcope.groups_used, toposcope.hidden_links.size());

  const core::BiasAudit audit{*scenario};

  std::printf("\n=== Regional imbalance (Fig. 1) ===\n%s",
              eval::render_coverage(audit.regional_coverage()).c_str());
  std::printf("\n=== Topological imbalance (Fig. 2) ===\n%s",
              eval::render_coverage(audit.topological_coverage()).c_str());

  std::printf("\n=== Per-class validation, ASRank (Table 1) ===\n%s",
              eval::render_validation_table(
                  audit.validation_table(asrank.inference, 100))
                  .c_str());
  std::printf("\n=== Per-class validation, ProbLink (Table 2) ===\n%s",
              eval::render_validation_table(
                  audit.validation_table(problink.inference, 100))
                  .c_str());
  std::printf("\n=== Per-class validation, TopoScope (Table 3) ===\n%s",
              eval::render_validation_table(
                  audit.validation_table(toposcope.inference, 100))
                  .c_str());

  std::printf("\n=== Case study (§6.1) ===\n%s",
              core::render(core::run_case_study(*scenario, audit,
                                                asrank.inference))
                  .c_str());
  return 0;
}
