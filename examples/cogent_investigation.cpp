// Walks through the §6.1 investigation step by step the way an operator
// would: find the suspicious links, grep the public paths for the triplet
// evidence, then point a looking glass at the provider and read the
// communities off the routes.
//
//   ./examples/cogent_investigation [as_count] [seed]
#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "core/bias_audit.hpp"
#include "core/case_study.hpp"
#include "core/looking_glass.hpp"
#include "core/scenario.hpp"
#include "infer/asrank.hpp"

int main(int argc, char** argv) {
  using namespace asrel;

  core::ScenarioParams params;
  params.topology.as_count = argc > 1 ? std::atoi(argv[1]) : 6000;
  params.topology.seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 42;
  const auto scenario = core::Scenario::build(params);
  const core::BiasAudit audit{*scenario};

  std::printf("Step 1 — run ASRank and evaluate against the validation "
              "data...\n");
  const auto asrank = infer::run_asrank(scenario->observed());
  const auto report =
      core::run_case_study(*scenario, audit, asrank.inference);
  std::printf("%s\n", core::render(report).c_str());
  if (report.dominant_count == 0) {
    std::printf("No targets; try a larger world.\n");
    return 0;
  }

  const auto t1 = report.dominant_tier1;
  std::printf("Step 2 — grep the public paths for C|AS%u|X triplets (the "
              "evidence ASRank needs for P2C):\n", t1.value());
  std::printf("  found for %zu of %zu target links — \"we were unable to "
              "find any triplet\" (§6.1)\n\n",
              report.with_clique_triplet, report.targets.size());

  std::printf("Step 3 — query AS%u's looking glass for each target:\n",
              t1.value());
  const core::LookingGlass glass{scenario->world(), scenario->schemes(),
                                 scenario->params().propagation};
  const auto tag = val::no_export_to_peers_community(t1);
  int shown = 0;
  for (const auto& target : report.targets) {
    if (shown++ >= 8) break;
    const auto view = glass.query(t1, target.other);
    std::printf("  > show route AS%u\n", target.other.value());
    if (!view.reachable) {
      std::printf("    (unreachable)\n");
      continue;
    }
    std::printf("    path:");
    for (const auto hop : view.path) std::printf(" %u", hop.value());
    std::printf("\n    communities:");
    for (const auto community : view.communities) {
      std::printf(" %s%s", bgp::to_string(community).c_str(),
                  community == tag ? "(*)" : "");
    }
    std::printf("\n");
  }
  std::printf("\n(*) = %s — the no-export-to-peers action community. "
              "It never reaches the public collectors because AS%u strips "
              "it before redistribution (§6.1, footnote 11).\n",
              bgp::to_string(tag).c_str(), t1.value());

  std::printf("\nStep 4 — root causes across all %zu targets of AS%u:\n",
              report.targets.size(), t1.value());
  std::printf("  %zu tag the community (partial transit)\n",
              report.with_action_community);
  std::printf("  %zu are silent contract-level partial transit\n",
              report.with_silent_partial_transit);
  std::printf("  %zu are inaccurate validation data (really P2P)\n",
              report.with_wrong_validation);
  return 0;
}
