// IPv6 vs IPv4 relationship congruence (Giotsas et al. 2015, cited in the
// paper's §3.1): build the v6 sub-world, observe and infer it separately,
// and compare the two stacks' inferred relationships on shared links.
//
//   ./examples/v6_congruence [as_count] [seed]
#include <cstdio>
#include <cstdlib>

#include "bgp/propagation.hpp"
#include "bgp/vantage.hpp"
#include "core/scenario.hpp"
#include "core/v6_world.hpp"
#include "infer/asrank.hpp"

int main(int argc, char** argv) {
  using namespace asrel;

  core::ScenarioParams params;
  params.topology.as_count = argc > 1 ? std::atoi(argv[1]) : 6000;
  params.topology.seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 42;
  const auto scenario = core::Scenario::build(params);
  const auto v4 = infer::run_asrank(scenario->observed());

  std::printf("Building the IPv6 sub-world...\n");
  const auto v6_world = core::build_v6_world(scenario->world());
  std::printf("  v6-capable: %zu of %zu ASes, %zu of %zu sessions "
              "dual-stacked, clique %zu of %zu\n",
              v6_world.graph.node_count(),
              scenario->world().graph.node_count(),
              v6_world.graph.edge_count(),
              scenario->world().graph.edge_count(),
              v6_world.clique.size(), scenario->world().clique.size());

  // Independent v6 observation: same collector infrastructure model.
  const auto v6_vps = bgp::select_vantage_points(v6_world, params.vantage);
  const bgp::Propagator v6_prop{v6_world, params.propagation};
  const auto v6_paths = bgp::collect_paths(v6_prop, v6_vps);
  const auto v6_observed = infer::ObservedPaths::build(v6_paths);
  const auto v6 = infer::run_asrank(v6_observed);
  std::printf("  v6 view: %zu paths, %zu visible links, inferred clique "
              "%zu\n",
              v6_observed.path_count(), v6_observed.link_count(),
              v6.clique.size());

  const auto report = core::compare_stacks(v4.inference, v6.inference);
  std::printf("\nCongruence of the two stacks:\n");
  std::printf("  v4 links %zu | v6 links %zu | shared %zu\n", report.v4_links,
              report.v6_links, report.shared_links);
  std::printf("  congruent %zu (%.1f%%) | type mismatches %zu | flipped "
              "P2C %zu\n",
              report.congruent, 100.0 * report.congruence(),
              report.type_mismatch, report.flipped_p2c);
  std::printf("\nGiotsas et al. found v4/v6 relationships highly — but not "
              "perfectly — congruent; the mismatches here come from the "
              "thinner v6 observation base, not from different policies.\n");
  return 0;
}
