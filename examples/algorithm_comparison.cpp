// Compares all four implemented classifiers (Gao 2001, ASRank 2013,
// ProbLink 2019, TopoScope 2020) against the ground truth AND against the
// best-effort validation data — showing the paper's central point: the
// validation data systematically overstates how good the algorithms are,
// because it covers the easy links.
//
//   ./examples/algorithm_comparison [as_count] [seed]
#include <cstdio>
#include <cstdlib>

#include "core/bias_audit.hpp"
#include "core/scenario.hpp"
#include "infer/asrank.hpp"
#include "infer/gao.hpp"
#include "infer/problink.hpp"
#include "infer/toposcope.hpp"

namespace {

using namespace asrel;

struct Score {
  double accuracy_vs_truth = 0;     // all visible links, ground truth
  double accuracy_vs_validation = 0;  // validated links only
};

Score score(const core::Scenario& scenario,
            const infer::Inference& inference) {
  Score result;
  const auto& world = scenario.world();
  std::size_t correct = 0;
  std::size_t total = 0;
  for (const auto& link : scenario.observed().link_order()) {
    const auto edge_id = world.graph.find_edge(link.a, link.b);
    if (!edge_id) continue;
    const auto& edge = world.graph.edge(*edge_id);
    if (edge.hybrid_rel || edge.rel == topo::RelType::kS2S) continue;
    const auto* rel = inference.find(link);
    if (rel == nullptr) continue;
    ++total;
    if (rel->rel == edge.rel &&
        (edge.rel != topo::RelType::kP2C ||
         rel->provider == world.graph.asn_of(edge.u))) {
      ++correct;
    }
  }
  result.accuracy_vs_truth =
      total ? static_cast<double>(correct) / static_cast<double>(total) : 0;

  correct = total = 0;
  for (const auto& label : scenario.validation()) {
    const auto* rel = inference.find(label.link);
    if (rel == nullptr) continue;
    ++total;
    if (rel->rel == label.rel &&
        (label.rel != topo::RelType::kP2C ||
         rel->provider == label.provider)) {
      ++correct;
    }
  }
  result.accuracy_vs_validation =
      total ? static_cast<double>(correct) / static_cast<double>(total) : 0;
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  core::ScenarioParams params;
  params.topology.as_count = argc > 1 ? std::atoi(argv[1]) : 6000;
  params.topology.seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 42;
  const auto scenario = core::Scenario::build(params);

  std::printf("Running the four classifiers...\n");
  const auto gao = infer::run_gao(scenario->observed());
  const auto asrank = infer::run_asrank(scenario->observed());
  const auto problink = infer::run_problink(scenario->observed(), asrank,
                                            scenario->validation());
  const auto toposcope = infer::run_toposcope(scenario->observed(), asrank,
                                              scenario->validation());

  struct Entry {
    const char* name;
    const infer::Inference* inference;
  };
  const Entry entries[] = {{"Gao (2001)", &gao},
                           {"ASRank (2013)", &asrank.inference},
                           {"ProbLink (2019)", &problink.inference},
                           {"TopoScope (2020)", &toposcope.inference}};

  std::printf("\n%-18s %18s %22s %10s\n", "algorithm", "acc. vs truth",
              "acc. vs validation", "gap");
  for (const auto& entry : entries) {
    const auto s = score(*scenario, *entry.inference);
    std::printf("%-18s %18.3f %22.3f %+9.3f\n", entry.name,
                s.accuracy_vs_truth, s.accuracy_vs_validation,
                s.accuracy_vs_validation - s.accuracy_vs_truth);
  }
  std::printf("\nA positive gap = the biased validation data makes the "
              "classifier look better than it is on the full link "
              "population (§6).\n");

  std::printf("\nPairwise agreement on shared links:\n%-18s", "");
  for (const auto& entry : entries) std::printf(" %16s", entry.name);
  std::printf("\n");
  for (const auto& row : entries) {
    std::printf("%-18s", row.name);
    for (const auto& column : entries) {
      std::printf(" %16.3f",
                  row.inference->agreement_with(*column.inference));
    }
    std::printf("\n");
  }
  return 0;
}
