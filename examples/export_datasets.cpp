// Exports every companion data set of a generated world in its native
// on-disk format — CAIDA as-rel, the validation set, the five RIR
// delegated-extended files, the as2org file, and the synthesized IRR dump —
// so downstream tooling (or a real-data pipeline) can consume them.
//
//   ./examples/export_datasets [output_dir] [as_count] [seed]
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>

#include "core/scenario.hpp"
#include "infer/asrank.hpp"
#include "io/as_rel.hpp"
#include "io/validation_io.hpp"
#include "org/as2org.hpp"
#include "rir/delegation.hpp"
#include "rpsl/synthesize.hpp"

int main(int argc, char** argv) {
  using namespace asrel;

  const std::filesystem::path out_dir =
      argc > 1 ? argv[1] : "asrel_datasets";
  core::ScenarioParams params;
  params.topology.as_count = argc > 2 ? std::atoi(argv[2]) : 4000;
  params.topology.seed = argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 42;

  const auto scenario = core::Scenario::build(params);
  std::filesystem::create_directories(out_dir);
  const auto write = [&](const std::string& name, const auto& writer) {
    std::ofstream out{out_dir / name};
    writer(out);
    std::printf("  wrote %s\n", (out_dir / name).c_str());
  };

  std::printf("Exporting data sets to %s ...\n", out_dir.c_str());

  // Ground truth and inferred relationships (CAIDA as-rel serial-1).
  write("ground-truth.as-rel.txt", [&](std::ostream& out) {
    io::write_as_rel(scenario->world().graph, out);
  });
  const auto asrank = infer::run_asrank(scenario->observed());
  write("asrank.as-rel.txt", [&](std::ostream& out) {
    io::write_as_rel(asrank.inference, out);
  });

  // Raw validation data (multi-label, with sources).
  write("validation.txt", [&](std::ostream& out) {
    io::write_validation(scenario->raw_validation(), out);
  });

  // RIR delegated-extended files.
  for (const auto& file : scenario->world().delegations) {
    write("delegated-" + std::string{rir::registry_name(file.registry)} +
              "-extended-" + file.serial,
          [&](std::ostream& out) { rir::write_delegation_file(file, out); });
  }

  // CAIDA-style as2org.
  write("as2org.txt", [&](std::ostream& out) {
    org::write_as2org(scenario->world().as2org, out);
  });

  // Synthesized IRR (RPSL autnum objects).
  const auto irr = rpsl::synthesize_irr(scenario->world(), {});
  write("irr.db", [&](std::ostream& out) {
    for (const auto& object : irr) rpsl::write_autnum(object, out);
  });

  std::printf("Done: %zu ASes, %zu ground-truth links, %zu validation "
              "entries, %zu IRR objects.\n",
              scenario->world().graph.node_count(),
              scenario->world().graph.edge_count(),
              scenario->raw_validation().size(), irr.size());
  return 0;
}
