// World report: prints the ground-truth composition of a generated world
// and how much of it the collectors see — useful for understanding how the
// synthetic Internet is put together before auditing bias on it.
//
//   ./examples/world_report [as_count] [seed]
#include <cstdio>
#include <cstdlib>
#include <map>

#include "core/bias_audit.hpp"
#include "core/scenario.hpp"
#include "infer/asrank.hpp"

int main(int argc, char** argv) {
  using namespace asrel;

  core::ScenarioParams params;
  params.topology.as_count = argc > 1 ? std::atoi(argv[1]) : 4000;
  params.topology.seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 42;
  const auto scenario = core::Scenario::build(params);
  const auto& world = scenario->world();

  // ---- tier composition ----
  std::map<std::string, int> tier_counts;
  for (const auto asn : world.graph.nodes()) {
    const auto& attrs = world.attrs.at(asn);
    tier_counts[std::string{topo::to_string(attrs.tier)}]++;
    if (attrs.hypergiant) tier_counts["hypergiant"]++;
  }
  std::printf("=== Tier composition ===\n");
  for (const auto& [tier, count] : tier_counts) {
    std::printf("  %-14s %6d\n", tier.c_str(), count);
  }

  // ---- ground-truth link types ----
  std::map<std::string, int> rel_counts;
  for (const auto& edge : world.graph.edges()) {
    rel_counts[std::string{topo::to_string(edge.rel)}]++;
    if (edge.scope != topo::ExportScope::kFull) rel_counts["partial-transit"]++;
    if (edge.hybrid_rel) rel_counts["hybrid"]++;
  }
  std::printf("\n=== Ground-truth links ===\n");
  for (const auto& [rel, count] : rel_counts) {
    std::printf("  %-14s %6d\n", rel.c_str(), count);
  }

  // ---- visibility ----
  const auto& observed = scenario->observed();
  std::printf("\n=== Visibility ===\n");
  std::printf("  vantage points: %zu\n", scenario->vantage_points().size());
  std::printf("  sanitized paths: %zu\n", observed.path_count());
  std::printf("  visible links: %zu of %zu ground-truth links (%.0f%%)\n",
              observed.link_count(), world.graph.edge_count(),
              100.0 * static_cast<double>(observed.link_count()) /
                  static_cast<double>(world.graph.edge_count()));

  // ---- transit-degree ranking vs true tiers ----
  std::printf("\n=== Top 25 by observed transit degree ===\n");
  const auto rank = observed.rank_order();
  for (std::size_t i = 0; i < std::min<std::size_t>(25, rank.size()); ++i) {
    const auto asn = observed.asn_at(rank[i]);
    const auto& attrs = world.attrs.at(asn);
    std::printf("  #%2zu AS%-8u td=%5u deg=%5u tier=%s%s\n", i + 1,
                asn.value(), observed.transit_degree(rank[i]),
                observed.node_degree(rank[i]),
                std::string{topo::to_string(attrs.tier)}.c_str(),
                attrs.hypergiant ? " (hypergiant)" : "");
  }

  // ---- inferred clique vs ground truth ----
  const auto asrank = infer::run_asrank(observed);
  std::printf("\n=== Clique: inferred %zu, ground truth %zu ===\n",
              asrank.clique.size(), world.clique.size());
  int correct = 0;
  for (const auto asn : asrank.clique) {
    const bool is_true_t1 = world.attrs.at(asn).tier == topo::Tier::kClique;
    if (is_true_t1) ++correct;
    std::printf("  AS%-8u %s\n", asn.value(),
                is_true_t1 ? "true Tier-1" : "NOT a Tier-1");
  }
  std::printf("  precision: %d/%zu\n", correct, asrank.clique.size());

  // ---- validation source composition ----
  std::printf("\n=== Validation ===\n");
  std::printf("  raw entries: %zu, cleaned: %zu\n",
              scenario->raw_validation().size(),
              scenario->validation().size());
  const auto& cs = scenario->cleaning_stats();
  std::printf(
      "  cleaning: %zu AS_TRANS, %zu reserved, %zu multi-label (%zu ASes), "
      "%zu siblings removed\n",
      cs.as_trans_removed, cs.reserved_removed, cs.multi_label_entries,
      cs.multi_label_ases, cs.sibling_removed);
  return 0;
}
