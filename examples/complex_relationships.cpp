// Detects complex relationships (hybrid and partial transit, Giotsas et
// al. 2014 / §3.1) from the observed paths, then — like the paper's §6.1 —
// confirms the partial-transit candidates against a looking glass, since
// public routing data alone cannot distinguish partial transit from plain
// peering.
//
//   ./examples/complex_relationships [as_count] [seed]
#include <cstdio>
#include <cstdlib>

#include "core/looking_glass.hpp"
#include "core/scenario.hpp"
#include "infer/asrank.hpp"
#include "infer/complex.hpp"

int main(int argc, char** argv) {
  using namespace asrel;

  core::ScenarioParams params;
  params.topology.as_count = argc > 1 ? std::atoi(argv[1]) : 6000;
  params.topology.seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 42;
  const auto scenario = core::Scenario::build(params);
  const auto asrank = infer::run_asrank(scenario->observed());

  const auto candidates = infer::detect_complex_relationships(
      scenario->observed(), asrank.clique);

  std::size_t hybrid = 0;
  std::size_t partial = 0;
  for (const auto& candidate : candidates) {
    candidate.kind == infer::ComplexKind::kHybrid ? ++hybrid : ++partial;
  }
  std::printf("Detected %zu complex-relationship candidates: %zu hybrid, "
              "%zu partial-transit.\n",
              candidates.size(), hybrid, partial);

  // Ground-truth scoring for the hybrid candidates.
  const auto& world = scenario->world();
  std::size_t hybrid_hits = 0;
  std::size_t true_hybrids = 0;
  for (const auto& edge : world.graph.edges()) {
    if (edge.hybrid_rel) ++true_hybrids;
  }
  for (const auto& candidate : candidates) {
    if (candidate.kind != infer::ComplexKind::kHybrid) continue;
    const auto edge_id =
        world.graph.find_edge(candidate.link.a, candidate.link.b);
    if (edge_id && world.graph.edge(*edge_id).hybrid_rel) ++hybrid_hits;
  }
  std::printf("Hybrid candidates matching ground-truth hybrid links: "
              "%zu of %zu candidates (%zu hybrids exist in total).\n",
              hybrid_hits, hybrid, true_hybrids);

  // Looking-glass confirmation of partial transit (§6.1 workflow): a
  // candidate is confirmed when the provider's routers show the
  // no-export-to-peers community, or refuted as plain peering otherwise.
  const core::LookingGlass glass{world, scenario->schemes(),
                                 scenario->params().propagation};
  std::size_t confirmed = 0;
  std::size_t refuted_peering = 0;
  std::size_t silent_partial = 0;
  int shown = 0;
  std::printf("\nLooking-glass confirmation of partial-transit candidates:\n");
  for (const auto& candidate : candidates) {
    if (candidate.kind != infer::ComplexKind::kPartialTransit) continue;
    const asn::Asn customer = candidate.link.a == candidate.provider
                                  ? candidate.link.b
                                  : candidate.link.a;
    const auto view = glass.query(candidate.provider, customer);
    const auto tag = val::no_export_to_peers_community(candidate.provider);
    const bool tagged =
        view.reachable &&
        std::find(view.communities.begin(), view.communities.end(), tag) !=
            view.communities.end();
    const auto edge_id =
        world.graph.find_edge(candidate.link.a, candidate.link.b);
    const bool truth_partial =
        edge_id &&
        world.graph.edge(*edge_id).scope != topo::ExportScope::kFull;
    if (tagged) {
      ++confirmed;
    } else if (truth_partial) {
      ++silent_partial;  // real but contract-level, invisible even to a LG
    } else {
      ++refuted_peering;
    }
    if (shown++ < 10) {
      std::printf("  AS%u -> AS%u  evidence=%u  LG:%s  truth:%s\n",
                  candidate.provider.value(), customer.value(),
                  candidate.evidence, tagged ? "990-tag" : "no-tag",
                  truth_partial ? "partial-transit" : "peering/full");
    }
  }
  std::printf("\nSummary: %zu confirmed by community, %zu silent partial "
              "transit, %zu turned out to be plain peering.\n",
              confirmed, silent_partial, refuted_peering);
  std::printf("(The peering refutations are the point: public paths alone "
              "cannot separate the two — §6.1 needed Cogent's looking "
              "glass for the same reason.)\n");
  return 0;
}
