#include <gtest/gtest.h>

#include <sstream>
#include <unordered_set>

#include "core/link_features.hpp"
#include "infer/asrank.hpp"
#include "infer/complex.hpp"
#include "io/rib_dump.hpp"
#include "test_support.hpp"

namespace asrel {
namespace {

using asn::Asn;

// ---------------------------------------------------------------- rib dump --

TEST(RibDump, WritesTableDump2Lines) {
  const auto& scenario = test::shared_scenario();
  std::ostringstream out;
  io::RibDumpOptions options;
  options.max_routes = 50;
  io::write_rib_dump(scenario.propagator(), scenario.paths(),
                     scenario.schemes(), options, out);
  const auto text = out.str();
  EXPECT_NE(text.find("TABLE_DUMP2|1522886400|B|10.255."), std::string::npos);
  // 50 lines written.
  EXPECT_EQ(static_cast<std::size_t>(
                std::count(text.begin(), text.end(), '\n')),
            50u);
}

TEST(RibDump, ParseRecoversPathsAndPeers) {
  const auto& scenario = test::shared_scenario();
  std::ostringstream out;
  io::RibDumpOptions options;
  options.max_routes = 2000;
  io::write_rib_dump(scenario.propagator(), scenario.paths(),
                     scenario.schemes(), options, out);

  io::RibParseStats stats;
  const auto table = io::parse_rib_dump_text(out.str(), &stats);
  EXPECT_EQ(stats.routes, 2000u);
  EXPECT_EQ(stats.malformed, 0u);
  EXPECT_EQ(table.path_count(), 2000u);
  EXPECT_GT(table.vantage_points().size(), 0u);
}

TEST(RibDump, RoundTripPreservesHops) {
  const auto& scenario = test::shared_scenario();
  std::ostringstream out;
  io::RibDumpOptions options;
  options.max_routes = 500;
  io::write_rib_dump(scenario.propagator(), scenario.paths(),
                     scenario.schemes(), options, out);
  const auto table = io::parse_rib_dump_text(out.str());

  // Collect the original first 500 paths for comparison.
  std::vector<std::vector<Asn>> original;
  scenario.paths().for_each_path([&](const bgp::PathTable::PathRef& ref) {
    if (original.size() >= 500) return;
    original.emplace_back(ref.path.begin(), ref.path.end());
  });
  std::vector<std::vector<Asn>> reparsed;
  table.for_each_path([&](const bgp::PathTable::PathRef& ref) {
    reparsed.emplace_back(ref.path.begin(), ref.path.end());
  });
  ASSERT_EQ(reparsed.size(), original.size());
  // The dump groups by origin in the same global order, so a sorted
  // multiset comparison is robust against iteration-order differences.
  std::sort(original.begin(), original.end());
  std::sort(reparsed.begin(), reparsed.end());
  EXPECT_EQ(original, reparsed);
}

TEST(RibDump, InferenceRunsOnParsedDump) {
  // The whole inference stack must be drivable from an on-disk dump.
  const auto& scenario = test::shared_scenario();
  std::ostringstream out;
  io::write_rib_dump(scenario.propagator(), scenario.paths(),
                     scenario.schemes(), {}, out);
  const auto table = io::parse_rib_dump_text(out.str());
  const auto observed = infer::ObservedPaths::build(table);
  EXPECT_EQ(observed.link_count(), scenario.observed().link_count());
  const auto from_dump = infer::run_asrank(observed);
  const auto direct = infer::run_asrank(scenario.observed());
  EXPECT_EQ(from_dump.clique, direct.clique);
  EXPECT_GT(from_dump.inference.agreement_with(direct.inference), 0.999);
}

TEST(RibDump, MalformedLinesAreCounted) {
  io::RibParseStats stats;
  const auto table = io::parse_rib_dump_text(
      "TABLE_DUMP2|0|B|10.0.0.1|100|10.0.0.0/24|100 200 300|IGP|x|0|0||NAG||\n"
      "garbage\n"
      "TABLE_DUMP2|0|B|10.0.0.1|bad|10.0.0.0/24|100|IGP|x|0|0||NAG||\n",
      &stats);
  EXPECT_EQ(stats.routes, 1u);
  EXPECT_EQ(stats.malformed, 2u);
  EXPECT_EQ(table.path_count(), 1u);
}

// ---------------------------------------------------------------- complex --

TEST(ComplexDetection, FindsPlantedPartialTransit) {
  const auto& scenario = test::shared_scenario();
  const auto asrank = infer::run_asrank(scenario.observed());
  const auto candidates = infer::detect_complex_relationships(
      scenario.observed(), asrank.clique);

  // Every community-tagged partial-transit link that is visible should be
  // flagged (possibly along with peering false positives — that ambiguity
  // is the §6.1 point).
  const auto& world = scenario.world();
  std::unordered_set<val::AsLink> flagged;
  for (const auto& candidate : candidates) {
    if (candidate.kind == infer::ComplexKind::kPartialTransit) {
      flagged.insert(candidate.link);
    }
  }
  std::size_t tagged_visible = 0;
  std::size_t tagged_flagged = 0;
  for (const auto& edge : world.graph.edges()) {
    if (!edge.scope_via_community) continue;
    const val::AsLink link{world.graph.asn_of(edge.u),
                           world.graph.asn_of(edge.v)};
    if (scenario.observed().link(link) == nullptr) continue;
    ++tagged_visible;
    if (flagged.contains(link)) ++tagged_flagged;
  }
  ASSERT_GT(tagged_visible, 0u);
  EXPECT_GT(tagged_flagged * 2, tagged_visible);  // majority recall
}

TEST(ComplexDetection, PartialTransitCandidatesAreCliqueAdjacent) {
  const auto& scenario = test::shared_scenario();
  const auto asrank = infer::run_asrank(scenario.observed());
  const auto candidates = infer::detect_complex_relationships(
      scenario.observed(), asrank.clique);
  std::unordered_set<Asn> clique(asrank.clique.begin(), asrank.clique.end());
  for (const auto& candidate : candidates) {
    if (candidate.kind != infer::ComplexKind::kPartialTransit) continue;
    EXPECT_TRUE(clique.contains(candidate.provider));
    EXPECT_TRUE(candidate.link.a == candidate.provider ||
                candidate.link.b == candidate.provider);
  }
}

TEST(ComplexDetection, Deterministic) {
  const auto& scenario = test::shared_scenario();
  const auto asrank = infer::run_asrank(scenario.observed());
  const auto a = infer::detect_complex_relationships(scenario.observed(),
                                                     asrank.clique);
  const auto b = infer::detect_complex_relationships(scenario.observed(),
                                                     asrank.clique);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].link, b[i].link);
    EXPECT_EQ(a[i].evidence, b[i].evidence);
  }
}

// --------------------------------------------------------------- features --

TEST(LinkFeatures, CoversEveryVisibleLink) {
  const auto& scenario = test::shared_scenario();
  const auto asrank = infer::run_asrank(scenario.observed());
  const core::LinkFeatureExtractor features{scenario, asrank.inference};
  EXPECT_EQ(features.all().size(), scenario.observed().link_count());
}

TEST(LinkFeatures, ValuesAreInternallyConsistent) {
  const auto& scenario = test::shared_scenario();
  const auto asrank = infer::run_asrank(scenario.observed());
  const core::LinkFeatureExtractor features{scenario, asrank.inference};
  const auto total_vps = scenario.observed().vp_count();
  for (const auto& [link, f] : features.all()) {
    EXPECT_GT(f.vp_visibility, 0u);
    EXPECT_LE(f.vp_visibility, total_vps);
    // Originated-through is a subset of redistributed-via.
    EXPECT_LE(f.prefixes_originated, f.prefixes_redistributed);
    EXPECT_LE(f.addresses_originated, f.addresses_redistributed);
    EXPECT_GE(f.transit_degree_diff, 0.0);
    EXPECT_LE(f.transit_degree_diff, 1.0);
    EXPECT_GE(f.ppdc_diff, 0.0);
    EXPECT_LE(f.ppdc_diff, 1.0);
    EXPECT_EQ(f.common_facilities, 0u);  // substrate not modeled
    EXPECT_LE(f.manrs_participants, 2u);
  }
}

TEST(LinkFeatures, CliqueMeshIsHighlyVisible) {
  const auto& scenario = test::shared_scenario();
  const auto asrank = infer::run_asrank(scenario.observed());
  const core::LinkFeatureExtractor features{scenario, asrank.inference};
  const auto& clique = scenario.world().clique;
  std::size_t checked = 0;
  double visibility = 0;
  for (std::size_t i = 0; i < clique.size(); ++i) {
    for (std::size_t j = i + 1; j < clique.size(); ++j) {
      const auto* f = features.find(val::AsLink{clique[i], clique[j]});
      if (f == nullptr) continue;
      ++checked;
      visibility += f->vp_visibility;
    }
  }
  ASSERT_GT(checked, 0u);
  // Peer routes only descend, so a mesh link is visible from the two
  // members' customer cones — still well above a typical IXP peering.
  EXPECT_GT(visibility / static_cast<double>(checked),
            0.04 * static_cast<double>(scenario.observed().vp_count()));
}

TEST(LinkFeatures, StubUplinksSeeMoreObserversThanReceivers) {
  // For a link right above an origin stub, "ASes left" (potential
  // observers) should typically dwarf "ASes right" (the stub side).
  const auto& scenario = test::shared_scenario();
  const auto asrank = infer::run_asrank(scenario.observed());
  const core::LinkFeatureExtractor features{scenario, asrank.inference};
  const auto& world = scenario.world();
  std::size_t wins = 0;
  std::size_t checked = 0;
  for (const auto& edge : world.graph.edges()) {
    if (checked >= 200) break;
    if (edge.rel != topo::RelType::kP2C) continue;
    const Asn customer = world.graph.asn_of(edge.v);
    if (world.attrs.at(customer).tier != topo::Tier::kStub) continue;
    const auto* f = features.find(
        val::AsLink{world.graph.asn_of(edge.u), customer});
    if (f == nullptr) continue;
    ++checked;
    if (f->ases_left > f->ases_right) ++wins;
  }
  ASSERT_GT(checked, 50u);
  EXPECT_GT(wins * 10, checked * 9);  // >90 %
}

}  // namespace
}  // namespace asrel
