#include <gtest/gtest.h>

#include "org/as2org.hpp"
#include "rpsl/autnum.hpp"
#include "rpsl/synthesize.hpp"
#include "test_support.hpp"

namespace asrel {
namespace {

using asn::Asn;

// ---------------------------------------------------------------- as2org --

constexpr const char* kAs2OrgSample =
    "# format: org_id|changed|org_name|country|source\n"
    "ORG-1|20180301|Example Holdings|US|SYNTH\n"
    "ORG-2|20180301|Solo Networks|DE|SYNTH\n"
    "# format: aut|changed|aut_name|org_id|opaque_id|source\n"
    "100|20180301|AS100|ORG-1||SYNTH\n"
    "200|20180301|AS200|ORG-1||SYNTH\n"
    "300|20180301|AS300|ORG-2||SYNTH\n";

TEST(As2Org, ParsesBothSections) {
  const auto file = org::parse_as2org_text(kAs2OrgSample);
  EXPECT_EQ(file.organizations.size(), 2u);
  ASSERT_EQ(file.ases.size(), 3u);
  EXPECT_EQ(file.ases[0].asn, Asn{100});
  EXPECT_EQ(file.ases[0].org_id, "ORG-1");
}

TEST(As2Org, WriteParseRoundTrip) {
  const auto file = org::parse_as2org_text(kAs2OrgSample);
  const auto reparsed = org::parse_as2org_text(org::to_text(file));
  EXPECT_EQ(reparsed.organizations.size(), file.organizations.size());
  EXPECT_EQ(reparsed.ases.size(), file.ases.size());
}

TEST(OrgMap, SiblingDetection) {
  const org::OrgMap map{org::parse_as2org_text(kAs2OrgSample)};
  EXPECT_TRUE(map.are_siblings(Asn{100}, Asn{200}));
  EXPECT_FALSE(map.are_siblings(Asn{100}, Asn{300}));
  EXPECT_FALSE(map.are_siblings(Asn{100}, Asn{999}));  // unmapped
  EXPECT_EQ(map.org_of(Asn{300}), "ORG-2");
  EXPECT_TRUE(map.org_of(Asn{999}).empty());
}

TEST(OrgMap, SiblingsOfIncludesSelf) {
  const org::OrgMap map{org::parse_as2org_text(kAs2OrgSample)};
  EXPECT_EQ(map.siblings_of(Asn{100}), (std::vector<Asn>{Asn{100}, Asn{200}}));
  EXPECT_TRUE(map.siblings_of(Asn{999}).empty());
}

TEST(OrgMap, GeneratedWorldIsConsistent) {
  const auto& scenario = test::shared_scenario();
  const auto& orgs = scenario.orgs();
  EXPECT_GT(orgs.as_count(), 0u);
  // Every S2S ground-truth edge should connect two siblings.
  const auto& world = scenario.world();
  for (const auto& edge : world.graph.edges()) {
    if (edge.rel != topo::RelType::kS2S) continue;
    EXPECT_TRUE(orgs.are_siblings(world.graph.asn_of(edge.u),
                                  world.graph.asn_of(edge.v)));
  }
}

// ------------------------------------------------------------------ rpsl --

constexpr const char* kAutnumSample =
    "aut-num:        AS100\n"
    "as-name:        HUNDRED-NET\n"
    "import:         from AS10 accept ANY\n"
    "export:         to AS10 announce AS-SET100\n"
    "import:         from AS20 accept AS20\n"
    "export:         to AS20 announce AS-SET100\n"
    "import:         from AS30 accept AS30\n"
    "export:         to AS30 announce ANY\n"
    "mnt-by:         MNT-100\n"
    "changed:        20180301\n"
    "source:         RADB\n"
    "\n"
    "aut-num:        AS200\n"
    "import:         from AS100 accept ANY\n"
    "export:         to AS100 announce AS-SET200\n"
    "\n";

TEST(Rpsl, ParsesObjects) {
  const auto objects = rpsl::parse_autnums_text(kAutnumSample);
  ASSERT_EQ(objects.size(), 2u);
  EXPECT_EQ(objects[0].asn, Asn{100});
  EXPECT_EQ(objects[0].as_name, "HUNDRED-NET");
  EXPECT_EQ(objects[0].policies.size(), 6u);
  EXPECT_EQ(objects[0].source, "RADB");
}

TEST(Rpsl, WriteParseRoundTrip) {
  const auto objects = rpsl::parse_autnums_text(kAutnumSample);
  const auto reparsed = rpsl::parse_autnums_text(rpsl::to_text(objects));
  ASSERT_EQ(reparsed.size(), objects.size());
  EXPECT_EQ(reparsed[0].policies.size(), objects[0].policies.size());
}

TEST(Rpsl, ExtractsRelationshipsFromPolicyPairs) {
  const auto objects = rpsl::parse_autnums_text(kAutnumSample);
  const auto rels = rpsl::extract_relationships(objects[0]);
  ASSERT_EQ(rels.size(), 3u);
  // AS10: import ANY, export own set -> AS10 is the provider.
  EXPECT_EQ(rels[0].neighbor, Asn{10});
  EXPECT_EQ(rels[0].rel, topo::RelType::kP2C);
  EXPECT_FALSE(rels[0].subject_is_provider);
  // AS20: restricted both ways -> peering.
  EXPECT_EQ(rels[1].neighbor, Asn{20});
  EXPECT_EQ(rels[1].rel, topo::RelType::kP2P);
  // AS30: import restricted, export ANY -> subject provides AS30.
  EXPECT_EQ(rels[2].neighbor, Asn{30});
  EXPECT_EQ(rels[2].rel, topo::RelType::kP2C);
  EXPECT_TRUE(rels[2].subject_is_provider);
}

TEST(Rpsl, MutualAnyIsSibling) {
  const auto objects = rpsl::parse_autnums_text(
      "aut-num: AS1\n"
      "import: from AS2 accept ANY\n"
      "export: to AS2 announce ANY\n");
  const auto rels = rpsl::extract_relationships(objects.at(0));
  ASSERT_EQ(rels.size(), 1u);
  EXPECT_EQ(rels[0].rel, topo::RelType::kS2S);
}

TEST(Rpsl, OneSidedPoliciesIgnored) {
  const auto objects = rpsl::parse_autnums_text(
      "aut-num: AS1\n"
      "import: from AS2 accept ANY\n");
  EXPECT_TRUE(rpsl::extract_relationships(objects.at(0)).empty());
}

TEST(Rpsl, SynthesizedIrrCoversMaintainers) {
  const auto& scenario = test::shared_scenario();
  const auto& world = scenario.world();
  rpsl::IrrParams params;
  const auto objects = rpsl::synthesize_irr(world, params);
  std::size_t maintainers = 0;
  for (const auto asn : world.graph.nodes()) {
    if (world.attrs.at(asn).maintains_rpsl) ++maintainers;
  }
  EXPECT_EQ(objects.size(), maintainers);
  // Some staleness exists but most objects are fresh.
  std::size_t stale = 0;
  for (const auto& object : objects) {
    if (object.changed < "20150101") ++stale;
  }
  EXPECT_GT(stale, 0u);
  EXPECT_LT(stale, objects.size() / 2);
}

TEST(Rpsl, SynthesizedIrrIsDeterministic) {
  const auto& world = test::shared_scenario().world();
  rpsl::IrrParams params;
  const auto a = rpsl::synthesize_irr(world, params);
  const auto b = rpsl::synthesize_irr(world, params);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].asn, b[i].asn);
    EXPECT_EQ(a[i].changed, b[i].changed);
    EXPECT_EQ(a[i].policies.size(), b[i].policies.size());
  }
}

}  // namespace
}  // namespace asrel
