// Stream resilience under injected faults (DESIGN.md §14):
//   * kill-point sweep — crash the pipeline mid-apply, mid-checkpoint, or
//     mid-publish; a restart from the newest valid checkpoint replays the
//     feed and publishes byte-identical epochs to a never-crashed run;
//   * torn checkpoints — a write that dies mid-file leaves the previous
//     checkpoint intact; a truncated or bit-flipped file is rejected and
//     the recovery ladder falls back (previous checkpoint, then cold);
//   * divergence watchdog — seeded silent corruption is detected within
//     one audit interval and self-healed, after which the byte-equality
//     oracle holds again;
//   * backpressured ingest — block/shed/coalesce saturation semantics and
//     drain-aware close().
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <fstream>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "io/snapshot.hpp"
#include "serve/fault_inject.hpp"
#include "stream/checkpoint.hpp"
#include "stream/churn.hpp"
#include "stream/ingest.hpp"
#include "stream/session.hpp"

namespace asrel {
namespace {

core::ScenarioParams chaos_params() {
  core::ScenarioParams params;
  params.topology.as_count = 600;
  params.topology.seed = 11;
  params.vantage.target_count = 40;
  params.threads = 1;
  return params;
}

/// One uninterrupted run: apply `events` in publish batches of
/// `batch`, stamping built == epoch, checkpointing after every publish.
struct GoldenRun {
  std::vector<std::string> epoch_bytes;  ///< bytes of epoch 2, 3, ...
  std::vector<stream::StreamCheckpoint> checkpoints;  ///< after each publish
};

GoldenRun run_golden(const core::ScenarioParams& params,
                     const std::vector<stream::ChurnEvent>& events,
                     std::size_t batch) {
  GoldenRun golden;
  stream::StreamSession session{params};
  std::uint64_t built = session.epoch();
  for (std::size_t i = 0; i < events.size();) {
    const std::size_t end = std::min(events.size(), i + batch);
    for (; i < end; ++i) session.apply(events[i]);
    golden.epoch_bytes.push_back(
        io::to_snapshot_bytes(session.publish(++built)));
    golden.checkpoints.push_back(session.checkpoint(i));
  }
  return golden;
}

/// Restart from `checkpoint` and replay the rest of the feed with the
/// same cadence; every published epoch must be byte-identical to the
/// golden run's.
void expect_resumed_run_matches(const core::ScenarioParams& params,
                                const stream::StreamCheckpoint& checkpoint,
                                const std::vector<stream::ChurnEvent>& events,
                                std::size_t batch, const GoldenRun& golden) {
  std::string error;
  auto session = stream::StreamSession::restore(params, checkpoint, &error);
  ASSERT_NE(session, nullptr) << error;
  ASSERT_EQ(session->epoch(), checkpoint.epoch);

  std::uint64_t built = session->epoch();
  for (std::size_t i = checkpoint.feed_position; i < events.size();) {
    const std::size_t end = std::min(events.size(), i + batch);
    for (; i < end; ++i) session->apply(events[i]);
    const std::string bytes = io::to_snapshot_bytes(session->publish(++built));
    const std::size_t epoch_index = static_cast<std::size_t>(built - 2);
    ASSERT_LT(epoch_index, golden.epoch_bytes.size());
    ASSERT_EQ(bytes, golden.epoch_bytes[epoch_index])
        << "epoch " << built << " diverged after restart from epoch "
        << checkpoint.epoch;
  }
}

// -------------------------------------------------- checkpoint wire format

TEST(StreamChaos, CheckpointRoundTripsThroughBytes) {
  const auto params = chaos_params();
  stream::StreamSession session{params};
  const auto events = stream::generate_churn(session.world(), 3, 20);
  for (const auto& event : events) session.apply(event);
  session.publish(2);

  const stream::StreamCheckpoint checkpoint = session.checkpoint(20);
  const std::string bytes = stream::to_checkpoint_bytes(checkpoint);
  std::string error;
  const auto parsed = stream::parse_checkpoint_bytes(bytes, &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  EXPECT_EQ(parsed->epoch, checkpoint.epoch);
  EXPECT_EQ(parsed->feed_position, 20u);
  EXPECT_TRUE(parsed->fingerprint == checkpoint.fingerprint);
  // Canonical: accepted bytes re-encode identically (the fuzz oracle).
  EXPECT_EQ(stream::to_checkpoint_bytes(*parsed), bytes);
}

TEST(StreamChaos, ParserRejectsTornAndCorruptBytes) {
  const auto params = chaos_params();
  stream::StreamSession session{params};
  session.publish(2);
  const std::string bytes =
      stream::to_checkpoint_bytes(session.checkpoint(0));

  std::string error;
  // Truncations at every coarse cut point: never accepted, never UB.
  for (const std::size_t cut :
       {std::size_t{0}, std::size_t{4}, std::size_t{12}, std::size_t{27},
        bytes.size() / 4, bytes.size() / 2, bytes.size() - 1}) {
    EXPECT_FALSE(
        stream::parse_checkpoint_bytes(bytes.substr(0, cut), &error)
            .has_value())
        << "cut at " << cut;
    EXPECT_FALSE(error.empty());
  }
  // A flipped payload byte fails the checksum.
  std::string flipped = bytes;
  flipped[flipped.size() / 2] ^= 0x40;
  EXPECT_FALSE(stream::parse_checkpoint_bytes(flipped, &error).has_value());
  // Trailing garbage is rejected, not ignored.
  EXPECT_FALSE(
      stream::parse_checkpoint_bytes(bytes + "x", &error).has_value());
}

// ------------------------------------------------------- kill-point sweep

TEST(StreamChaos, RestartFromAnyCheckpointIsByteIdentical) {
  const auto params = chaos_params();
  const topo::World pristine = topo::generate(params.topology);
  const auto events = stream::generate_churn(pristine, 5, 60);
  const std::size_t batch = 20;
  const GoldenRun golden = run_golden(params, events, batch);
  ASSERT_EQ(golden.checkpoints.size(), 3u);

  // Crash immediately after each checkpoint (mid-publish of the next
  // epoch, before anything new was persisted): restart must replay the
  // tail and reproduce every remaining epoch byte-for-byte.
  for (const auto& checkpoint : golden.checkpoints) {
    expect_resumed_run_matches(params, checkpoint, events, batch, golden);
  }
}

TEST(StreamChaos, PoisonedApplyRefusesWorkAndRestoreRecovers) {
  const auto params = chaos_params();
  const topo::World pristine = topo::generate(params.topology);
  const auto events = stream::generate_churn(pristine, 5, 60);
  const GoldenRun golden = run_golden(params, events, 20);

  // Resume from the first checkpoint, then crash mid-apply: the injected
  // allocation failure fires before any mutation and poisons the session.
  std::string error;
  auto session = stream::StreamSession::restore(
      params, golden.checkpoints[0], &error);
  ASSERT_NE(session, nullptr) << error;
  {
    serve::fault::FaultPlan plan;
    plan.seed = 0xDEADull;
    plan.stream_apply_fail_permille = 1000;
    serve::fault::ScopedFaults faults{plan};
    EXPECT_THROW(session->apply(events[20]), std::bad_alloc);
  }
  EXPECT_TRUE(session->poisoned());
  EXPECT_THROW(session->publish(99), std::logic_error);
  EXPECT_THROW((void)session->checkpoint(0), std::logic_error);
  EXPECT_THROW(session->apply(events[20]), std::logic_error);
  EXPECT_FALSE(session->run_watchdog().ran);

  // The process-restart path: a fresh restore from the same checkpoint
  // replays the tail byte-identically.
  expect_resumed_run_matches(params, golden.checkpoints[0], events, 20,
                             golden);
}

// ------------------------------------------------------ the recovery ladder

TEST(StreamChaos, TornCheckpointWriteKeepsThePreviousFile) {
  const auto params = chaos_params();
  const topo::World pristine = topo::generate(params.topology);
  const auto events = stream::generate_churn(pristine, 5, 40);
  const GoldenRun golden = run_golden(params, events, 20);

  const std::string dir =
      ::testing::TempDir() + "/asrel_ckpt_torn_" +
      std::to_string(std::chrono::steady_clock::now()
                         .time_since_epoch()
                         .count());
  stream::CheckpointDir checkpoints{dir};
  std::string error;
  ASSERT_TRUE(checkpoints.save(golden.checkpoints[0], &error)) << error;
  ASSERT_EQ(checkpoints.candidates().size(), 1u);

  // The next checkpoint write dies after 64 bytes: the temp file must be
  // discarded and the epoch-2 checkpoint must survive untouched.
  {
    serve::fault::FaultPlan plan;
    plan.seed = 0xBEEFull;
    plan.checkpoint_write_cap = 64;
    serve::fault::ScopedFaults faults{plan};
    EXPECT_FALSE(checkpoints.save(golden.checkpoints[1], &error));
  }
  const auto candidates = checkpoints.candidates();
  ASSERT_EQ(candidates.size(), 1u);
  const auto survivor = stream::load_checkpoint_file(candidates[0], &error);
  ASSERT_TRUE(survivor.has_value()) << error;
  EXPECT_EQ(survivor->epoch, golden.checkpoints[0].epoch);

  // Recovery resumes from the surviving epoch, and the replay converges
  // on the same bytes the uncrashed run published.
  auto outcome = stream::recover_session(params, checkpoints);
  ASSERT_NE(outcome.session, nullptr);
  EXPECT_EQ(outcome.resumed_epoch, golden.checkpoints[0].epoch);
  EXPECT_EQ(outcome.checkpoints_rejected, 0u);
  expect_resumed_run_matches(params, golden.checkpoints[0], events, 20,
                             golden);
}

TEST(StreamChaos, RecoveryLadderFallsPastCorruptCheckpoints) {
  const auto params = chaos_params();
  const topo::World pristine = topo::generate(params.topology);
  const auto events = stream::generate_churn(pristine, 5, 40);
  const GoldenRun golden = run_golden(params, events, 20);

  const std::string dir =
      ::testing::TempDir() + "/asrel_ckpt_ladder_" +
      std::to_string(std::chrono::steady_clock::now()
                         .time_since_epoch()
                         .count());
  stream::CheckpointDir checkpoints{dir};
  std::string error;
  ASSERT_TRUE(checkpoints.save(golden.checkpoints[0], &error)) << error;
  ASSERT_TRUE(checkpoints.save(golden.checkpoints[1], &error)) << error;

  // Corrupt the newest file on disk (simulated torn write that somehow
  // landed): the ladder must reject it and restore the previous epoch.
  auto candidates = checkpoints.candidates();
  ASSERT_EQ(candidates.size(), 2u);
  {
    std::ofstream torn{candidates[0],
                       std::ios::binary | std::ios::trunc};
    torn << stream::to_checkpoint_bytes(golden.checkpoints[1]).substr(0, 40);
  }
  auto outcome = stream::recover_session(params, checkpoints);
  ASSERT_NE(outcome.session, nullptr);
  EXPECT_EQ(outcome.resumed_epoch, golden.checkpoints[0].epoch);
  EXPECT_EQ(outcome.checkpoints_rejected, 1u);
  EXPECT_NE(outcome.detail.find("restored epoch"), std::string::npos)
      << outcome.detail;

  // Corrupt both: the ladder bottoms out in a cold bootstrap that serves
  // epoch 1 — it never fabricates a resumed epoch.
  {
    std::ofstream torn{candidates[1],
                       std::ios::binary | std::ios::trunc};
    torn << "ASRELCKP garbage";
  }
  outcome = stream::recover_session(params, checkpoints);
  ASSERT_NE(outcome.session, nullptr);
  EXPECT_EQ(outcome.resumed_epoch, 0u);
  EXPECT_EQ(outcome.checkpoints_rejected, 2u);
  EXPECT_EQ(outcome.session->epoch(), 1u);
}

TEST(StreamChaos, RestoreRejectsForeignWorldsAndTornReads) {
  const auto params = chaos_params();
  stream::StreamSession session{params};
  session.publish(2);
  const stream::StreamCheckpoint checkpoint = session.checkpoint(0);

  // A checkpoint from a different world must not restore.
  auto other = params;
  other.topology.seed = 12;
  std::string error;
  EXPECT_EQ(stream::StreamSession::restore(other, checkpoint, &error),
            nullptr);
  EXPECT_NE(error.find("fingerprint"), std::string::npos) << error;

  // A read that tears mid-file (injected cap) is rejected at the header.
  const std::string path = ::testing::TempDir() + "/asrel_ckpt_read.ckpt";
  ASSERT_TRUE(stream::save_checkpoint_file(checkpoint, path, &error))
      << error;
  {
    serve::fault::FaultPlan plan;
    plan.seed = 0xFEEDull;
    plan.checkpoint_read_cap = 100;
    serve::fault::ScopedFaults faults{plan};
    EXPECT_FALSE(stream::load_checkpoint_file(path, &error).has_value());
    EXPECT_FALSE(error.empty());
  }
  EXPECT_TRUE(stream::load_checkpoint_file(path, &error).has_value())
      << error;
}

// ------------------------------------------------------------- watchdog

TEST(StreamChaos, WatchdogDetectsSeededDivergenceAndHeals) {
  const auto params = chaos_params();
  stream::StreamSession session{params};
  const auto events = stream::generate_churn(session.world(), 5, 20);
  for (const auto& event : events) session.apply(event);

  // A clean publish passes the audit.
  session.publish(2);
  auto report = session.run_watchdog();
  EXPECT_TRUE(report.ran);
  EXPECT_FALSE(report.diverged);

  // Seed silent corruption inside the next publish: the same publication
  // serves the diverged bytes, so the audit one interval later must flag
  // and heal it.
  {
    serve::fault::FaultPlan plan;
    plan.seed = 0xD17ull;
    plan.stream_divergence_permille = 1000;
    serve::fault::ScopedFaults faults{plan};
    session.publish(3);
  }
  report = session.run_watchdog();
  EXPECT_TRUE(report.ran);
  EXPECT_TRUE(report.diverged);
  EXPECT_TRUE(report.healed);
  EXPECT_FALSE(report.first_diff_section.empty());
  EXPECT_EQ(session.stats().divergences, 1u);
  EXPECT_EQ(session.stats().heals, 1u);

  // Healed in place: same epoch, same stamp, bytes re-satisfy the oracle.
  EXPECT_EQ(session.snapshot().meta.epoch, session.epoch());
  EXPECT_EQ(io::to_snapshot_bytes(session.snapshot()),
            io::to_snapshot_bytes(session.reference_snapshot(3)));

  // And the session keeps streaming correctly after the heal.
  const auto more = stream::generate_churn(session.world(), 9, 10);
  for (const auto& event : more) session.apply(event);
  // Sequenced: publish() bumps the epoch the reference stamps.
  const std::string incremental = io::to_snapshot_bytes(session.publish(4));
  EXPECT_EQ(incremental, io::to_snapshot_bytes(session.reference_snapshot(4)));
}

TEST(StreamChaos, WatchdogSkipsWhileEventsArePending) {
  const auto params = chaos_params();
  stream::StreamSession session{params};
  const auto events = stream::generate_churn(session.world(), 5, 20);
  std::size_t dirtied = 0;
  for (const auto& event : events) {
    if (session.apply(event).dirty_origins > 0) {
      ++dirtied;
      break;
    }
  }
  ASSERT_GT(dirtied, 0u);
  // Unpublished changes make a maintained-vs-reference mismatch
  // legitimate; the watchdog must not cry wolf (or heal away the delta).
  EXPECT_FALSE(session.run_watchdog().ran);
  session.publish(2);
  EXPECT_TRUE(session.run_watchdog().ran);
}

// ------------------------------------------------------ backpressured ingest

stream::ChurnEvent link_event(stream::ChurnKind kind, std::uint32_t a,
                              std::uint32_t b) {
  stream::ChurnEvent event;
  event.kind = kind;
  event.a = asn::Asn{a};
  event.b = asn::Asn{b};
  return event;
}

TEST(StreamChaos, QueueShedPolicyDropsAtSaturation) {
  stream::EventQueue queue{2, stream::QueuePolicy::kShed};
  EXPECT_TRUE(queue.push({0, link_event(stream::ChurnKind::kLinkAdd, 1, 2)}));
  EXPECT_TRUE(queue.push({1, link_event(stream::ChurnKind::kLinkAdd, 3, 4)}));
  EXPECT_FALSE(
      queue.push({2, link_event(stream::ChurnKind::kLinkAdd, 5, 6)}));
  EXPECT_EQ(queue.stats().shed, 1u);
  EXPECT_EQ(queue.depth(), 2u);
  // Draining frees space again.
  ASSERT_TRUE(queue.pop().has_value());
  EXPECT_TRUE(queue.push({3, link_event(stream::ChurnKind::kLinkAdd, 5, 6)}));
}

TEST(StreamChaos, QueueCoalescePolicyKeepsNewestIntent) {
  stream::EventQueue queue{2, stream::QueuePolicy::kCoalesce};
  ASSERT_TRUE(
      queue.push({0, link_event(stream::ChurnKind::kLinkAdd, 1, 2)}));
  ASSERT_TRUE(
      queue.push({1, link_event(stream::ChurnKind::kLinkAdd, 3, 4)}));
  // Saturated: the same unordered pair (reversed endpoints, different
  // verb) replaces the queued event in place.
  EXPECT_TRUE(
      queue.push({2, link_event(stream::ChurnKind::kLinkRemove, 4, 3)}));
  EXPECT_EQ(queue.stats().coalesced, 1u);
  EXPECT_EQ(queue.depth(), 2u);
  // No queued partner: shed.
  EXPECT_FALSE(
      queue.push({3, link_event(stream::ChurnKind::kLinkAdd, 9, 10)}));
  EXPECT_EQ(queue.stats().shed, 1u);

  auto first = queue.pop();
  auto second = queue.pop();
  ASSERT_TRUE(first.has_value());
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(first->seq, 0u);
  EXPECT_EQ(second->seq, 2u);  // the coalesced replacement
  EXPECT_EQ(second->event.kind, stream::ChurnKind::kLinkRemove);
}

TEST(StreamChaos, QueueBlockPolicyWaitsForSpace) {
  stream::EventQueue queue{1, stream::QueuePolicy::kBlock};
  ASSERT_TRUE(
      queue.push({0, link_event(stream::ChurnKind::kLinkAdd, 1, 2)}));
  std::thread consumer{[&queue] {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    (void)queue.pop();
  }};
  // Saturated: this push must wait until the consumer frees a slot, not
  // shed.
  EXPECT_TRUE(
      queue.push({1, link_event(stream::ChurnKind::kLinkAdd, 3, 4)}));
  consumer.join();
  EXPECT_EQ(queue.stats().blocked, 1u);
  EXPECT_EQ(queue.stats().shed, 0u);
  EXPECT_EQ(queue.depth(), 1u);
}

TEST(StreamChaos, QueueCloseDrainsInsteadOfDropping) {
  stream::EventQueue queue{4, stream::QueuePolicy::kBlock};
  ASSERT_TRUE(
      queue.push({0, link_event(stream::ChurnKind::kLinkAdd, 1, 2)}));
  ASSERT_TRUE(
      queue.push({1, link_event(stream::ChurnKind::kLinkAdd, 3, 4)}));
  queue.close();
  // Intake stops...
  EXPECT_FALSE(
      queue.push({2, link_event(stream::ChurnKind::kLinkAdd, 5, 6)}));
  // ...but the backlog remains poppable, then pop reports exhaustion.
  EXPECT_TRUE(queue.pop().has_value());
  EXPECT_TRUE(queue.pop().has_value());
  EXPECT_FALSE(queue.pop().has_value());
}

}  // namespace
}  // namespace asrel
