// Micro-scale behavioural tests: the headline mechanisms of the paper on a
// 13-AS world whose every link is known by construction (see test_support).
#include <gtest/gtest.h>

#include <numeric>

#include "bgp/propagation.hpp"
#include "infer/asrank.hpp"
#include "test_support.hpp"
#include "validation/extract.hpp"
#include "validation/scheme.hpp"

namespace asrel {
namespace {

using asn::Asn;
using test::micro_world;
using test::MicroWorld;

/// Collects paths with every AS acting as a full-feed vantage point.
bgp::PathTable observe_everything(const MicroWorld& mw,
                                  const bgp::Propagator& propagator) {
  std::vector<bgp::VantagePoint> vps;
  for (const Asn asn : mw.world.graph.nodes()) {
    vps.push_back({asn, /*full_feed=*/true, /*legacy_16bit=*/false});
  }
  return bgp::collect_paths(propagator, std::move(vps));
}

bgp::PropagationParams quiet() {
  bgp::PropagationParams params;
  params.enable_prepending = false;
  params.private_asn_leak = 0.0;
  params.legacy_mangle = 0.0;
  params.threads = 1;
  return params;
}

class MicroAsRank : public ::testing::Test {
 protected:
  void SetUp() override {
    mw_ = micro_world();
    propagator_ =
        std::make_unique<bgp::Propagator>(mw_.world, quiet());
    table_ = observe_everything(mw_, *propagator_);
    observed_ = infer::ObservedPaths::build(table_);
    path_ids_.resize(observed_.path_count());
    std::iota(path_ids_.begin(), path_ids_.end(), 0u);
    // Tiny worlds cannot support clique inference; supply the known clique
    // (the real pipeline recovers it on realistic worlds — see test_infer).
    // The clique-customer degree bound is likewise scaled down: in a 13-AS
    // world every transit degree is single-digit.
    infer::AsRankParams params;
    params.clique_customer_td_max = 1;
    result_ = infer::run_asrank_subset(observed_, params, path_ids_,
                                       mw_.world.clique);
  }

  const infer::InferredRel* rel(Asn a, Asn b) const {
    return result_.inference.find(val::AsLink{a, b});
  }

  MicroWorld mw_;
  std::unique_ptr<bgp::Propagator> propagator_;
  bgp::PathTable table_;
  infer::ObservedPaths observed_;
  std::vector<std::uint32_t> path_ids_;
  infer::AsRankResult result_;
};

TEST_F(MicroAsRank, CliqueMeshIsPeering) {
  const auto* r = rel(mw_.t1a, mw_.t1b);
  ASSERT_NE(r, nullptr);
  EXPECT_EQ(r->rel, topo::RelType::kP2P);
}

TEST_F(MicroAsRank, FullTransitCustomerIsP2C) {
  // L1 is an ordinary customer of T1a: the [T1b, T1a, L1] triplet exists.
  const auto* r = rel(mw_.t1a, mw_.l1);
  ASSERT_NE(r, nullptr);
  EXPECT_EQ(r->rel, topo::RelType::kP2C);
  EXPECT_EQ(r->provider, mw_.t1a);
}

TEST_F(MicroAsRank, PartialTransitCustomerIsMisinferredAsPeer) {
  // The §6.1 mechanism in miniature: L2 blocks redistribution to peers, so
  // the [T1b, T1a, L2] triplet never exists and ASRank calls the link P2P.
  const auto* r = rel(mw_.t1a, mw_.l2);
  ASSERT_NE(r, nullptr);
  EXPECT_EQ(r->rel, topo::RelType::kP2P);
}

TEST_F(MicroAsRank, MultihomedLegOfPartialTransitCustomerIsStillP2C) {
  // L2's *other* (full transit) uplink via T1b has the triplet.
  const auto* r = rel(mw_.t1b, mw_.l2);
  ASSERT_NE(r, nullptr);
  EXPECT_EQ(r->rel, topo::RelType::kP2C);
  EXPECT_EQ(r->provider, mw_.t1b);
}

TEST_F(MicroAsRank, AnycastStubPeeringIsMisinferredAsCustomer) {
  // S4 peers with T1b, but a terminal AS next to a clique member defaults
  // to customer — the paper's S-T1 confusion.
  const auto* r = rel(mw_.s4, mw_.t1b);
  ASSERT_NE(r, nullptr);
  EXPECT_EQ(r->rel, topo::RelType::kP2C);
  EXPECT_EQ(r->provider, mw_.t1b);
}

TEST_F(MicroAsRank, MidTransitChainIsP2C) {
  const auto* r = rel(mw_.l1, mw_.m1);
  ASSERT_NE(r, nullptr);
  EXPECT_EQ(r->rel, topo::RelType::kP2C);
  EXPECT_EQ(r->provider, mw_.l1);
  const auto* deeper = rel(mw_.m1, mw_.s1);
  ASSERT_NE(deeper, nullptr);
  EXPECT_EQ(deeper->rel, topo::RelType::kP2C);
  EXPECT_EQ(deeper->provider, mw_.m1);
}

// ----------------------------------------------------- extraction (micro) --

TEST(MicroExtraction, PartialTransitLinkIsValidatedAsP2C) {
  // The provider's own feed tags the customer — community validation
  // records P2C even though ASRank infers P2P: the §6 contradiction.
  const MicroWorld mw = micro_world();
  const bgp::Propagator propagator{mw.world, quiet()};
  const auto table = observe_everything(mw, propagator);
  const auto schemes = val::SchemeDirectory::build(mw.world, 1);
  val::ExtractParams params;
  params.stale_documentation = 0.0;
  const auto raw =
      val::extract_from_communities(propagator, table, schemes, params);

  const auto* entry = raw.find(val::AsLink{mw.t1a, mw.l2});
  ASSERT_NE(entry, nullptr);
  ASSERT_FALSE(entry->labels.empty());
  EXPECT_EQ(entry->labels[0].rel, topo::RelType::kP2C);
  EXPECT_EQ(entry->labels[0].provider, mw.t1a);
}

TEST(MicroExtraction, HybridLinkGetsBothLabels) {
  const MicroWorld mw = micro_world();
  const bgp::Propagator propagator{mw.world, quiet()};
  const auto table = observe_everything(mw, propagator);
  const auto schemes = val::SchemeDirectory::build(mw.world, 1);
  val::ExtractParams params;
  params.stale_documentation = 0.0;
  const auto raw =
      val::extract_from_communities(propagator, table, schemes, params);

  const auto* entry = raw.find(val::AsLink{mw.m3, mw.m4});
  ASSERT_NE(entry, nullptr);
  EXPECT_TRUE(entry->multi_label())
      << "hybrid PoP-dependent link should collect conflicting labels";
}

TEST(MicroExtraction, PeeringLabeledAsPeering) {
  const MicroWorld mw = micro_world();
  const bgp::Propagator propagator{mw.world, quiet()};
  const auto table = observe_everything(mw, propagator);
  const auto schemes = val::SchemeDirectory::build(mw.world, 1);
  val::ExtractParams params;
  params.stale_documentation = 0.0;
  const auto raw =
      val::extract_from_communities(propagator, table, schemes, params);

  const auto* entry = raw.find(val::AsLink{mw.m1, mw.m2});
  if (entry == nullptr) GTEST_SKIP() << "link not tagged in this world";
  for (const auto& label : entry->labels) {
    EXPECT_EQ(label.rel, topo::RelType::kP2P);
  }
}

// ----------------------------------------------------- scheme ambiguity ---

TEST(SchemeAmbiguity, CollidingKeysAreSkippedWhenBothOnPath) {
  // Two ASes with the same low-16 key (5 and 65536+5) publish schemes; a
  // community 5:<v> on a path containing both cannot be attributed.
  topo::World world;
  const Asn a5{5};
  const Asn a65541{65541};  // 1.5 in asdot: low 16 bits == 5
  const Asn origin{900};
  for (const Asn asn : {a5, a65541, origin}) {
    world.graph.add_node(asn);
    auto& attrs = world.attrs[asn];
    attrs.tier = topo::Tier::kMidTransit;
    attrs.documents_communities = true;
  }
  world.graph.add_edge(a5, a65541, topo::RelType::kP2C);
  world.graph.add_edge(a65541, origin, topo::RelType::kP2C);

  const auto schemes = val::SchemeDirectory::build(world, 1);
  // Both must exist for the ambiguity check to be exercised.
  if (schemes.scheme_of(a5) == nullptr ||
      schemes.scheme_of(a65541) == nullptr) {
    GTEST_SKIP() << "scheme sampling did not cover both owners";
  }
  ASSERT_EQ(schemes.key_matches(5).size(), 2u);

  const bgp::Propagator propagator{world, quiet()};
  std::vector<bgp::VantagePoint> vps{{a5, true, false}};
  const auto table = bgp::collect_paths(propagator, vps);
  val::ExtractStats stats;
  const auto raw = val::extract_from_communities(propagator, table, schemes,
                                                 {}, &stats);
  EXPECT_GT(stats.ambiguous_keys_skipped, 0u)
      << "colliding keys on the same path must be treated as ambiguous";
}

}  // namespace
}  // namespace asrel
