#include <gtest/gtest.h>

#include <unordered_set>

#include "io/validation_io.hpp"
#include "test_support.hpp"
#include "validation/cleaner.hpp"
#include "validation/extract.hpp"
#include "validation/label.hpp"
#include "validation/scheme.hpp"
#include "validation/sources.hpp"

namespace asrel::val {
namespace {

using asn::Asn;

// ------------------------------------------------------------------ label --

TEST(AsLink, Canonicalizes) {
  const AsLink a{Asn{20}, Asn{10}};
  EXPECT_EQ(a.a, Asn{10});
  EXPECT_EQ(a.b, Asn{20});
  EXPECT_EQ(a, (AsLink{Asn{10}, Asn{20}}));
}

TEST(ValidationSet, DeduplicatesSameAssertionSameSource) {
  ValidationSet set;
  Label label;
  label.rel = topo::RelType::kP2P;
  set.add(AsLink{Asn{1}, Asn{2}}, label);
  set.add(AsLink{Asn{2}, Asn{1}}, label);
  EXPECT_EQ(set.size(), 1u);
  EXPECT_EQ(set.entries()[0].labels.size(), 1u);
}

TEST(ValidationSet, KeepsConflictingLabelsInOrder) {
  ValidationSet set;
  Label p2p;
  p2p.rel = topo::RelType::kP2P;
  Label p2c;
  p2c.rel = topo::RelType::kP2C;
  p2c.provider = Asn{1};
  set.add(AsLink{Asn{1}, Asn{2}}, p2p);
  set.add(AsLink{Asn{1}, Asn{2}}, p2c);
  const auto* entry = set.find(AsLink{Asn{1}, Asn{2}});
  ASSERT_NE(entry, nullptr);
  ASSERT_EQ(entry->labels.size(), 2u);
  EXPECT_TRUE(entry->multi_label());
  EXPECT_EQ(entry->labels[0].rel, topo::RelType::kP2P);
}

TEST(ValidationSet, DifferentProvidersAreDifferentAssertions) {
  ValidationSet set;
  Label a;
  a.rel = topo::RelType::kP2C;
  a.provider = Asn{1};
  Label b = a;
  b.provider = Asn{2};
  set.add(AsLink{Asn{1}, Asn{2}}, a);
  set.add(AsLink{Asn{1}, Asn{2}}, b);
  EXPECT_TRUE(set.find(AsLink{Asn{1}, Asn{2}})->multi_label());
}

TEST(ValidationSet, MergePreservesEntries) {
  ValidationSet a;
  ValidationSet b;
  Label label;
  label.rel = topo::RelType::kP2P;
  a.add(AsLink{Asn{1}, Asn{2}}, label);
  b.add(AsLink{Asn{3}, Asn{4}}, label);
  a.merge(b);
  EXPECT_EQ(a.size(), 2u);
}

// ----------------------------------------------------------------- scheme --

TEST(Scheme, TagRoundTrip) {
  CommunityScheme scheme;
  scheme.owner = Asn{3356};
  scheme.key = 3356;
  scheme.customer_value = 1000;
  scheme.peer_value = 2000;
  scheme.provider_value = 3000;
  for (const auto meaning :
       {TagMeaning::kFromCustomer, TagMeaning::kFromPeer,
        TagMeaning::kFromProvider}) {
    EXPECT_EQ(scheme.meaning_of(scheme.tag_for(meaning)), meaning);
  }
  EXPECT_FALSE(scheme.meaning_of(bgp::Community{3356, 4000}));
  EXPECT_FALSE(scheme.meaning_of(bgp::Community{174, 1000}));
}

TEST(Scheme, NoExportCommunityUsesLow16) {
  EXPECT_EQ(no_export_to_peers_community(Asn{174}),
            (bgp::Community{174, 990}));
  EXPECT_EQ(no_export_to_peers_community(Asn{196613}),
            (bgp::Community{5, 990}));  // 196613 & 0xFFFF == 5
}

TEST(SchemeDirectory, BuildsForTransitAses) {
  const auto& scenario = test::shared_scenario();
  const auto& directory = scenario.schemes();
  EXPECT_GT(directory.size(), 0u);
  EXPECT_GT(directory.published_count(), 0u);
  EXPECT_LT(directory.published_count(), directory.size());
  // Published iff the owner documents communities.
  for (const auto& scheme : directory) {
    EXPECT_EQ(scheme.published,
              scenario.world().attrs.at(scheme.owner).documents_communities);
    EXPECT_EQ(scheme.key, scheme.owner.value() & 0xFFFFu);
  }
}

TEST(SchemeDirectory, KeyLookupFindsOwners) {
  const auto& directory = test::shared_scenario().schemes();
  for (const auto& scheme : directory) {
    bool found = false;
    for (const auto index : directory.key_matches(scheme.key)) {
      if (directory.scheme_at(index).owner == scheme.owner) found = true;
    }
    EXPECT_TRUE(found);
  }
}

// ------------------------------------------------------------- extraction --

TEST(Extraction, LabelsAreNeverFabricatedForUnknownLinks) {
  // Every extracted (non-spurious) link must exist in the ground truth.
  const auto& scenario = test::shared_scenario();
  const auto& graph = scenario.world().graph;
  for (const auto& entry : scenario.raw_validation().entries()) {
    const auto& link = entry.link;
    if (asn::is_reserved(link.a) || asn::is_reserved(link.b)) continue;
    EXPECT_TRUE(graph.find_edge(link.a, link.b))
        << link.a.value() << "-" << link.b.value();
  }
}

TEST(Extraction, LabelsMatchGroundTruthOverwhelmingly) {
  const auto& scenario = test::shared_scenario();
  const auto& world = scenario.world();
  std::size_t correct = 0;
  std::size_t wrong = 0;
  for (const auto& label : scenario.validation()) {
    const auto edge_id = world.graph.find_edge(label.link.a, label.link.b);
    if (!edge_id) continue;
    const auto& edge = world.graph.edge(*edge_id);
    if (edge.hybrid_rel) continue;  // multi-PoP: either label is fine
    bool matches = false;
    if (label.rel == edge.rel) {
      matches = label.rel != topo::RelType::kP2C ||
                label.provider == world.graph.asn_of(edge.u);
    }
    matches ? ++correct : ++wrong;
  }
  ASSERT_GT(correct, 0u);
  // Only misdocumentation/stale-doc noise may disagree (well below 1 %).
  EXPECT_LT(static_cast<double>(wrong),
            0.01 * static_cast<double>(correct + wrong));
}

TEST(Extraction, LacnicInternalLinksAreUncovered) {
  // The headline §5 finding must hold mechanically: LACNIC-internal links
  // get (essentially) no validation labels.
  const auto& scenario = test::shared_scenario();
  const auto& mapper = scenario.region_mapper();
  std::size_t lacnic = 0;
  for (const auto& label : scenario.validation()) {
    if (mapper.region_of(label.link.a) == rir::Region::kLacnic &&
        mapper.region_of(label.link.b) == rir::Region::kLacnic) {
      ++lacnic;
    }
  }
  EXPECT_LE(lacnic, 5u);
}

TEST(Extraction, SpuriousEntriesExist) {
  // AS_TRANS / private-ASN entries appear in the raw data (and are later
  // removed by the cleaner).
  const auto& scenario = test::shared_scenario();
  std::size_t spurious = 0;
  for (const auto& entry : scenario.raw_validation().entries()) {
    if (asn::is_reserved(entry.link.a) || asn::is_reserved(entry.link.b)) {
      ++spurious;
    }
  }
  EXPECT_GT(spurious, 0u);
}

TEST(Extraction, StatsAreCoherent) {
  const auto& stats = test::shared_scenario().extract_stats();
  EXPECT_GT(stats.paths_scanned, 0u);
  EXPECT_GE(stats.tags_attached, stats.tags_survived);
  EXPECT_GE(stats.tags_survived, stats.tags_decoded);
  EXPECT_GT(stats.tags_decoded, 0u);
}

// ---------------------------------------------------------------- sources --

TEST(Sources, DirectReportsAreMostlyAccurate) {
  const auto& world = test::shared_scenario().world();
  DirectReportParams params;
  const auto set = collect_direct_reports(world, params);
  EXPECT_GT(set.size(), 0u);
  std::size_t wrong = 0;
  for (const auto& entry : set.entries()) {
    const auto edge_id = world.graph.find_edge(entry.link.a, entry.link.b);
    ASSERT_TRUE(edge_id);
    if (entry.labels[0].rel != world.graph.edge(*edge_id).rel) ++wrong;
  }
  EXPECT_LT(static_cast<double>(wrong), 0.02 * static_cast<double>(set.size()));
}

TEST(Sources, RpslExtractionProducesLabels) {
  const auto& world = test::shared_scenario().world();
  const auto irr = rpsl::synthesize_irr(world, {});
  const auto set = extract_from_rpsl(irr);
  EXPECT_GT(set.size(), 0u);
  for (const auto& entry : set.entries()) {
    for (const auto& label : entry.labels) {
      EXPECT_EQ(label.source, Source::kRpsl);
    }
  }
}

// ---------------------------------------------------------------- cleaner --

ValidationSet make_raw() {
  ValidationSet raw;
  Label p2p;
  p2p.rel = topo::RelType::kP2P;
  Label p2c;
  p2c.rel = topo::RelType::kP2C;
  p2c.provider = Asn{1};
  Label s2s;
  s2s.rel = topo::RelType::kS2S;

  raw.add(AsLink{Asn{1}, Asn{2}}, p2c);            // clean P2C
  raw.add(AsLink{Asn{3}, Asn{4}}, p2p);            // clean P2P
  raw.add(AsLink{Asn{5}, asn::kAsTrans}, p2c);     // AS_TRANS
  raw.add(AsLink{Asn{6}, Asn{64512}}, p2c);        // private ASN
  raw.add(AsLink{Asn{7}, Asn{8}}, p2p);            // multi-label (P2P first)
  {
    Label other;
    other.rel = topo::RelType::kP2C;
    other.provider = Asn{7};
    raw.add(AsLink{Asn{7}, Asn{8}}, other);
  }
  raw.add(AsLink{Asn{100}, Asn{200}}, p2c);        // siblings (see org map)
  raw.add(AsLink{Asn{9}, Asn{10}}, s2s);           // explicit S2S label
  return raw;
}

org::OrgMap sibling_orgs() {
  return org::OrgMap{org::parse_as2org_text(
      "# format: org_id|changed|org_name|country|source\n"
      "ORG-1|20180301|X|US|T\n"
      "# format: aut|changed|aut_name|org_id|opaque_id|source\n"
      "100|20180301|AS100|ORG-1||T\n"
      "200|20180301|AS200|ORG-1||T\n")};
}

TEST(Cleaner, RemovesSpuriousAndSiblings) {
  CleaningStats stats;
  CleaningOptions options;
  const auto clean_labels = clean(make_raw(), sibling_orgs(), options, &stats);
  EXPECT_EQ(stats.as_trans_removed, 1u);
  EXPECT_EQ(stats.reserved_removed, 1u);
  EXPECT_EQ(stats.sibling_removed, 1u);
  EXPECT_EQ(stats.s2s_label_removed, 1u);
  EXPECT_EQ(stats.multi_label_entries, 1u);
  EXPECT_EQ(stats.multi_label_ases, 2u);
  // kIgnore drops the ambiguous entry: 2 clean labels remain.
  EXPECT_EQ(clean_labels.size(), 2u);
}

TEST(Cleaner, FirstP2PWinsPolicy) {
  CleaningOptions options;
  options.ambiguity = AmbiguityPolicy::kFirstP2PWins;
  const auto labels = clean(make_raw(), sibling_orgs(), options);
  bool found = false;
  for (const auto& label : labels) {
    if (label.link == AsLink{Asn{7}, Asn{8}}) {
      found = true;
      EXPECT_EQ(label.rel, topo::RelType::kP2P);
    }
  }
  EXPECT_TRUE(found);
}

TEST(Cleaner, AlwaysP2CPolicy) {
  CleaningOptions options;
  options.ambiguity = AmbiguityPolicy::kAlwaysP2C;
  const auto labels = clean(make_raw(), sibling_orgs(), options);
  bool found = false;
  for (const auto& label : labels) {
    if (label.link == AsLink{Asn{7}, Asn{8}}) {
      found = true;
      EXPECT_EQ(label.rel, topo::RelType::kP2C);
      EXPECT_EQ(label.provider, Asn{7});
    }
  }
  EXPECT_TRUE(found);
}

TEST(Cleaner, SpuriousKeptWhenDisabled) {
  CleaningOptions options;
  options.drop_spurious = false;
  options.drop_siblings = false;
  const auto labels = clean(make_raw(), sibling_orgs(), options);
  EXPECT_EQ(labels.size(), 5u);  // everything but ambiguous and s2s-labeled
}

TEST(Cleaner, PolicyNamesRender) {
  EXPECT_EQ(to_string(AmbiguityPolicy::kIgnore), "ignore");
  EXPECT_EQ(to_string(AmbiguityPolicy::kFirstP2PWins), "first-p2p-wins");
  EXPECT_EQ(to_string(AmbiguityPolicy::kAlwaysP2C), "always-p2c");
}

// --------------------------------------------------------------------- io --

TEST(ValidationIo, RoundTrips) {
  const auto raw = make_raw();
  const auto text = io::to_validation_text(raw);
  const auto reparsed = io::parse_validation_text(text);
  EXPECT_EQ(reparsed.size(), raw.size());
  for (const auto& entry : raw.entries()) {
    const auto* other = reparsed.find(entry.link);
    ASSERT_NE(other, nullptr);
    EXPECT_EQ(other->labels.size(), entry.labels.size());
    for (std::size_t i = 0; i < entry.labels.size(); ++i) {
      EXPECT_TRUE(other->labels[i].same_assertion(entry.labels[i]));
    }
  }
}

}  // namespace
}  // namespace asrel::val
