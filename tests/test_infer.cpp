#include <gtest/gtest.h>

#include <unordered_set>

#include "infer/asrank.hpp"
#include "infer/clique.hpp"
#include "infer/gao.hpp"
#include "infer/inference.hpp"
#include "infer/observed.hpp"
#include "infer/problink.hpp"
#include "infer/toposcope.hpp"
#include "test_support.hpp"

namespace asrel::infer {
namespace {

using asn::Asn;

// A tiny hand-rolled path table:
//   vp0 = AS1 (full feed), vp1 = AS5
//   paths as annotated below.
bgp::PathTable tiny_table() {
  bgp::PathTable table;
  table.set_vantage_points({{Asn{1}, true, false}, {Asn{5}, true, false}});
  table.resize_origins(8);
  const auto add = [&](topo::NodeId origin, std::uint32_t vp,
                       std::initializer_list<std::uint32_t> hops) {
    std::vector<Asn> path;
    for (const auto value : hops) path.push_back(Asn{value});
    table.add_path(origin, vp, path);
  };
  add(0, 0, {1, 2, 3});        // AS1 -> AS2 -> AS3
  add(1, 0, {1, 2, 4});        // AS1 -> AS2 -> AS4
  add(2, 0, {1, 2, 2, 2, 4});  // prepending on AS2
  add(3, 1, {5, 2, 3});        // AS5 -> AS2 -> AS3
  add(4, 0, {1, 6, 1, 3});     // loop: dropped
  add(5, 0, {1, 2, 23456});    // AS_TRANS: dropped
  add(6, 0, {1, 2, 64512});    // private ASN: dropped
  table.recount();
  return table;
}

TEST(ObservedPaths, SanitizesLoopsReservedAndPrepending) {
  SanitizeStats stats;
  const auto observed = ObservedPaths::build(tiny_table(), &stats);
  EXPECT_EQ(stats.input_paths, 7u);
  EXPECT_EQ(stats.dropped_loop, 1u);
  EXPECT_EQ(stats.dropped_reserved, 2u);
  EXPECT_EQ(stats.kept, 4u);
  EXPECT_EQ(observed.path_count(), 4u);
  // The prepended path collapsed to 3 hops.
  EXPECT_EQ(observed.path(2).size(), 3u);
}

TEST(ObservedPaths, TransitDegreeCountsMiddleNeighbors) {
  const auto observed = ObservedPaths::build(tiny_table(), nullptr);
  // AS2 appears in the middle next to {1, 3, 4, 5}: transit degree 4.
  const auto as2 = observed.index_of(Asn{2});
  ASSERT_TRUE(as2);
  EXPECT_EQ(observed.transit_degree(*as2), 4u);
  // Path-end ASes have transit degree 0.
  EXPECT_EQ(observed.transit_degree(*observed.index_of(Asn{3})), 0u);
  EXPECT_EQ(observed.transit_degree(*observed.index_of(Asn{1})), 0u);
}

TEST(ObservedPaths, NodeDegreeCountsDistinctNeighbors) {
  const auto observed = ObservedPaths::build(tiny_table(), nullptr);
  EXPECT_EQ(observed.node_degree(*observed.index_of(Asn{2})), 4u);
  EXPECT_EQ(observed.node_degree(*observed.index_of(Asn{3})), 1u);
}

TEST(ObservedPaths, LinkStatisticsTrackVps) {
  const auto observed = ObservedPaths::build(tiny_table(), nullptr);
  const auto* info = observed.link(val::AsLink{Asn{2}, Asn{3}});
  ASSERT_NE(info, nullptr);
  EXPECT_EQ(info->vp_count, 2u);       // seen from both VPs
  EXPECT_EQ(info->occurrences, 2u);
  const auto* single = observed.link(val::AsLink{Asn{2}, Asn{4}});
  ASSERT_NE(single, nullptr);
  EXPECT_EQ(single->vp_count, 1u);
  EXPECT_EQ(observed.link(val::AsLink{Asn{1}, Asn{9}}), nullptr);
}

TEST(ObservedPaths, RankOrderIsTransitDegreeFirst) {
  const auto observed = ObservedPaths::build(tiny_table(), nullptr);
  const auto rank = observed.rank_order();
  EXPECT_EQ(observed.asn_at(rank[0]), Asn{2});  // highest transit degree
}

TEST(ObservedPaths, FirstHopCoverage) {
  const auto observed = ObservedPaths::build(tiny_table(), nullptr);
  EXPECT_EQ(observed.first_hop_count(0, Asn{2}), 3u);
  EXPECT_EQ(observed.origin_count(0), 3u);  // after sanitization
  EXPECT_EQ(observed.first_hop_count(1, Asn{2}), 1u);
}

// ----------------------------------------------------------------- clique --

TEST(Clique, RecoversGroundTruthTier1s) {
  const auto& scenario = test::shared_scenario();
  const auto clique = infer_clique(scenario.observed(), {});
  std::unordered_set<Asn> truth(scenario.world().clique.begin(),
                                scenario.world().clique.end());
  std::size_t correct = 0;
  for (const Asn member : clique) {
    if (truth.contains(member)) ++correct;
  }
  ASSERT_FALSE(clique.empty());
  // High precision; recall may miss a few members in small worlds.
  EXPECT_GE(static_cast<double>(correct),
            0.9 * static_cast<double>(clique.size()));
  EXPECT_GE(correct, truth.size() / 2);
}

// ----------------------------------------------------------------- asrank --

TEST(AsRank, LabelsEveryVisibleLink) {
  const auto& scenario = test::shared_scenario();
  const auto result = run_asrank(scenario.observed());
  EXPECT_EQ(result.inference.size(), scenario.observed().link_count());
}

TEST(AsRank, Deterministic) {
  const auto& scenario = test::shared_scenario();
  const auto a = run_asrank(scenario.observed());
  const auto b = run_asrank(scenario.observed());
  EXPECT_EQ(a.clique, b.clique);
  EXPECT_EQ(a.inference.agreement_with(b.inference), 1.0);
}

TEST(AsRank, CliqueMeshInferredAsPeering) {
  const auto& scenario = test::shared_scenario();
  const auto result = run_asrank(scenario.observed());
  for (std::size_t i = 0; i < result.clique.size(); ++i) {
    for (std::size_t j = i + 1; j < result.clique.size(); ++j) {
      const auto* rel =
          result.inference.find(val::AsLink{result.clique[i],
                                            result.clique[j]});
      if (rel == nullptr) continue;
      EXPECT_EQ(rel->rel, topo::RelType::kP2P);
    }
  }
}

TEST(AsRank, TaggedPartialTransitLinksInferredAsPeering) {
  // The §6.1 mechanism: community-tagged customers of the Cogent analogue
  // lack clique triplets and must overwhelmingly be inferred P2P.
  const auto& scenario = test::shared_scenario();
  const auto& world = scenario.world();
  const auto result = run_asrank(scenario.observed());
  int p2p = 0;
  int p2c = 0;
  for (const auto& edge : world.graph.edges()) {
    if (!edge.scope_via_community) continue;
    const auto* rel = result.inference.find(val::AsLink{
        world.graph.asn_of(edge.u), world.graph.asn_of(edge.v)});
    if (rel == nullptr) continue;
    rel->rel == topo::RelType::kP2P ? ++p2p : ++p2c;
  }
  ASSERT_GT(p2p + p2c, 0);
  EXPECT_GT(p2p, 2 * p2c);
}

TEST(AsRank, OrdinaryTier1CustomersInferredAsCustomers) {
  const auto& scenario = test::shared_scenario();
  const auto& world = scenario.world();
  const auto result = run_asrank(scenario.observed());
  std::unordered_set<Asn> clique(world.clique.begin(), world.clique.end());
  int correct = 0;
  int wrong = 0;
  for (const auto& edge : world.graph.edges()) {
    if (edge.rel != topo::RelType::kP2C) continue;
    if (edge.scope != topo::ExportScope::kFull) continue;
    const Asn provider = world.graph.asn_of(edge.u);
    const Asn customer = world.graph.asn_of(edge.v);
    if (!clique.contains(provider)) continue;
    if (world.attrs.at(customer).tier == topo::Tier::kStub) continue;
    const auto* rel = result.inference.find(val::AsLink{provider, customer});
    if (rel == nullptr) continue;
    const bool ok =
        rel->rel == topo::RelType::kP2C && rel->provider == provider;
    ok ? ++correct : ++wrong;
  }
  ASSERT_GT(correct, 0);
  EXPECT_GT(correct, 4 * wrong);
}

TEST(AsRank, OverallAccuracyAgainstGroundTruth) {
  const auto& scenario = test::shared_scenario();
  const auto& world = scenario.world();
  const auto result = run_asrank(scenario.observed());
  std::size_t correct = 0;
  std::size_t total = 0;
  for (const auto& link : scenario.observed().link_order()) {
    const auto edge_id = world.graph.find_edge(link.a, link.b);
    if (!edge_id) continue;
    const auto& edge = world.graph.edge(*edge_id);
    if (edge.hybrid_rel || edge.rel == topo::RelType::kS2S) continue;
    const auto* rel = result.inference.find(link);
    ASSERT_NE(rel, nullptr);
    ++total;
    if (rel->rel == edge.rel &&
        (edge.rel != topo::RelType::kP2C ||
         rel->provider == world.graph.asn_of(edge.u))) {
      ++correct;
    }
  }
  ASSERT_GT(total, 1000u);
  EXPECT_GT(static_cast<double>(correct) / static_cast<double>(total), 0.9);
}

TEST(AsRank, SubsetModeLabelsOnlySubsetLinks) {
  const auto& scenario = test::shared_scenario();
  std::vector<std::uint32_t> half;
  for (std::uint32_t p = 0; p < scenario.observed().path_count(); p += 2) {
    half.push_back(p);
  }
  const auto global = run_asrank(scenario.observed());
  const auto subset = run_asrank_subset(scenario.observed(), {}, half,
                                        global.clique);
  EXPECT_LT(subset.inference.size(), global.inference.size());
  EXPECT_GT(subset.inference.size(), 0u);
}

// -------------------------------------------------------------------- gao --

TEST(Gao, LabelsEverythingAndIsDeterministic) {
  const auto& scenario = test::shared_scenario();
  const auto a = run_gao(scenario.observed());
  const auto b = run_gao(scenario.observed());
  EXPECT_EQ(a.size(), scenario.observed().link_count());
  EXPECT_EQ(a.agreement_with(b), 1.0);
}

TEST(Gao, ReasonableAgreementWithAsRank) {
  const auto& scenario = test::shared_scenario();
  const auto gao = run_gao(scenario.observed());
  const auto asrank = run_asrank(scenario.observed());
  EXPECT_GT(gao.agreement_with(asrank.inference), 0.6);
}

// --------------------------------------------------------------- problink --

TEST(ProbLink, ConvergesAndLabelsEverything) {
  const auto& scenario = test::shared_scenario();
  const auto asrank = run_asrank(scenario.observed());
  const auto result =
      run_problink(scenario.observed(), asrank, scenario.validation());
  EXPECT_EQ(result.inference.size(), scenario.observed().link_count());
  EXPECT_GT(result.training_links, 100u);
  EXPECT_GT(result.iterations_used, 0);
}

TEST(ProbLink, Deterministic) {
  const auto& scenario = test::shared_scenario();
  const auto asrank = run_asrank(scenario.observed());
  const auto a =
      run_problink(scenario.observed(), asrank, scenario.validation());
  const auto b =
      run_problink(scenario.observed(), asrank, scenario.validation());
  EXPECT_EQ(a.inference.agreement_with(b.inference), 1.0);
}

TEST(ProbLink, StaysCloseToInitialLabeling) {
  // ProbLink refines ASRank; it should not rewrite the world wholesale.
  const auto& scenario = test::shared_scenario();
  const auto asrank = run_asrank(scenario.observed());
  const auto result =
      run_problink(scenario.observed(), asrank, scenario.validation());
  EXPECT_GT(result.inference.agreement_with(asrank.inference), 0.7);
}

// -------------------------------------------------------------- toposcope --

TEST(TopoScope, UsesRequestedGroups) {
  const auto& scenario = test::shared_scenario();
  const auto asrank = run_asrank(scenario.observed());
  TopoScopeParams params;
  params.vp_groups = 4;
  const auto result = run_toposcope(scenario.observed(), asrank,
                                    scenario.validation(), params);
  EXPECT_EQ(result.groups_used, 4);
  EXPECT_EQ(result.inference.size(), scenario.observed().link_count());
}

TEST(TopoScope, HiddenLinksAreActuallyHidden) {
  const auto& scenario = test::shared_scenario();
  const auto asrank = run_asrank(scenario.observed());
  const auto result =
      run_toposcope(scenario.observed(), asrank, scenario.validation());
  for (const auto& hidden : result.hidden_links) {
    EXPECT_EQ(scenario.observed().link(hidden.link), nullptr);
    EXPECT_GT(hidden.confidence, 0.0);
    EXPECT_LE(hidden.confidence, 1.0);
  }
}

TEST(TopoScope, SomeHiddenLinksAreRealGroundTruthLinks) {
  // The whole point of the stage: links the collectors miss often exist.
  const auto& scenario = test::shared_scenario();
  const auto asrank = run_asrank(scenario.observed());
  const auto result =
      run_toposcope(scenario.observed(), asrank, scenario.validation());
  if (result.hidden_links.empty()) GTEST_SKIP() << "no hidden predictions";
  std::size_t real = 0;
  for (const auto& hidden : result.hidden_links) {
    if (scenario.world().graph.find_edge(hidden.link.a, hidden.link.b)) {
      ++real;
    }
  }
  EXPECT_GT(real, 0u);
}

TEST(TopoScope, Deterministic) {
  const auto& scenario = test::shared_scenario();
  const auto asrank = run_asrank(scenario.observed());
  const auto a =
      run_toposcope(scenario.observed(), asrank, scenario.validation());
  const auto b =
      run_toposcope(scenario.observed(), asrank, scenario.validation());
  EXPECT_EQ(a.inference.agreement_with(b.inference), 1.0);
  EXPECT_EQ(a.hidden_links.size(), b.hidden_links.size());
}

// ---------------------------------------------------------------- common --

TEST(Inference, AgreementWithSelfIsOne) {
  Inference inference;
  InferredRel rel;
  rel.rel = topo::RelType::kP2P;
  inference.set(val::AsLink{Asn{1}, Asn{2}}, rel);
  EXPECT_EQ(inference.agreement_with(inference), 1.0);
}

TEST(Inference, SetOverwrites) {
  Inference inference;
  InferredRel rel;
  rel.rel = topo::RelType::kP2P;
  inference.set(val::AsLink{Asn{1}, Asn{2}}, rel);
  rel.rel = topo::RelType::kP2C;
  rel.provider = Asn{1};
  inference.set(val::AsLink{Asn{1}, Asn{2}}, rel);
  EXPECT_EQ(inference.size(), 1u);
  EXPECT_EQ(inference.find(val::AsLink{Asn{1}, Asn{2}})->rel,
            topo::RelType::kP2C);
}

}  // namespace
}  // namespace asrel::infer

namespace asrel::infer {
namespace {

TEST(ProbLink, ConfidenceCoversAllLinksAndIsCalibratedish) {
  const auto& scenario = test::shared_scenario();
  const auto asrank = run_asrank(scenario.observed());
  const auto result =
      run_problink(scenario.observed(), asrank, scenario.validation());
  ASSERT_EQ(result.confidence.size(), scenario.observed().link_count());
  double low = 1.0;
  for (const auto& [link, confidence] : result.confidence) {
    EXPECT_GE(confidence, 1.0 / 3.0 - 1e-9);  // argmax of a 3-class softmax
    EXPECT_LE(confidence, 1.0 + 1e-9);
    low = std::min(low, confidence);
  }
  // Hard links exist: not everything is certain.
  EXPECT_LT(low, 0.9);
}

}  // namespace
}  // namespace asrel::infer
