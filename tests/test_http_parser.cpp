// Unit tests for the extracted HTTP/1.1 request parser. Every request
// string here is also a seed in fuzz/corpus/http/, so a parser regression
// fails both this suite and the fuzz smoke run.
#include <gtest/gtest.h>

#include <string>

#include "serve/http_parser.hpp"

namespace asrel::serve {
namespace {

HttpParse parse(std::string_view text, HttpRequest* request) {
  std::size_t header_len = 0;
  const std::size_t body_start = find_header_end(text, &header_len);
  EXPECT_NE(body_start, std::string_view::npos) << "incomplete header block";
  return parse_http_request(text.substr(0, header_len), request);
}

TEST(HttpParser, ParsesRequestLineAndQuery) {
  HttpRequest request;
  const auto result = parse(
      "GET /links?algo=asrank&class=T1-TR HTTP/1.1\r\n"
      "Host: localhost\r\nConnection: keep-alive\r\n\r\n",
      &request);
  ASSERT_TRUE(result) << result.error;
  EXPECT_EQ(request.method, "GET");
  EXPECT_EQ(request.path, "/links");
  EXPECT_TRUE(request.keep_alive);
  ASSERT_NE(request.query_param("algo"), nullptr);
  EXPECT_EQ(*request.query_param("algo"), "asrank");
  ASSERT_NE(request.query_param("class"), nullptr);
  EXPECT_EQ(*request.query_param("class"), "T1-TR");
  EXPECT_EQ(request.query_param("missing"), nullptr);
}

TEST(HttpParser, BareLfLineEndingsParseLikeCrlf) {
  HttpRequest crlf_request;
  HttpRequest lf_request;
  const auto crlf = parse("GET /healthz HTTP/1.0\r\nHost: a\r\n\r\n",
                          &crlf_request);
  const auto lf = parse("GET /healthz HTTP/1.0\nHost: a\n\n", &lf_request);
  ASSERT_TRUE(crlf) << crlf.error;
  ASSERT_TRUE(lf) << lf.error;
  EXPECT_EQ(crlf_request.path, lf_request.path);
  EXPECT_EQ(crlf_request.keep_alive, lf_request.keep_alive);
  EXPECT_FALSE(lf_request.keep_alive);  // HTTP/1.0 defaults to close
}

TEST(HttpParser, OversizedRequestLineRejected) {
  const std::string request_line =
      "GET /" + std::string(kMaxRequestLineBytes, 'a') + " HTTP/1.1\r\n\r\n";
  HttpRequest request;
  const auto result = parse(request_line, &request);
  EXPECT_FALSE(result);
  EXPECT_EQ(result.error, "request line too long");
}

TEST(HttpParser, RequestLineJustUnderTheCapParses) {
  std::string line = "GET /";
  line += std::string(kMaxRequestLineBytes - line.size() - 9, 'a');
  line += " HTTP/1.1";
  ASSERT_EQ(line.size(), kMaxRequestLineBytes);
  HttpRequest request;
  EXPECT_TRUE(parse(line + "\r\n\r\n", &request));
}

TEST(HttpParser, MissingContentLengthMeansZero) {
  HttpRequest request;
  const auto result = parse("GET /x HTTP/1.1\r\n\r\n", &request);
  ASSERT_TRUE(result) << result.error;
  EXPECT_EQ(result.content_length, 0u);
}

TEST(HttpParser, ContentLengthParsed) {
  HttpRequest request;
  const auto result =
      parse("POST /report HTTP/1.1\r\nContent-Length: 5\r\n\r\n", &request);
  ASSERT_TRUE(result) << result.error;
  EXPECT_EQ(result.content_length, 5u);
}

TEST(HttpParser, DuplicateEqualContentLengthAccepted) {
  HttpRequest request;
  const auto result = parse(
      "POST /x HTTP/1.1\r\nContent-Length: 5\r\nContent-Length: 5\r\n\r\n",
      &request);
  ASSERT_TRUE(result) << result.error;
  EXPECT_EQ(result.content_length, 5u);
}

TEST(HttpParser, ConflictingContentLengthRejected) {
  // The classic request-smuggling vector: two bodies' worth of ambiguity.
  HttpRequest request;
  const auto result = parse(
      "POST /x HTTP/1.1\r\nContent-Length: 5\r\nContent-Length: 6\r\n\r\n",
      &request);
  EXPECT_FALSE(result);
  EXPECT_EQ(result.error, "conflicting Content-Length headers");
}

TEST(HttpParser, NonCanonicalContentLengthRejected) {
  for (const char* header :
       {"Content-Length: +5", "Content-Length: 5x", "Content-Length: 0x5",
        "Content-Length: -1", "Content-Length:",
        "Content-Length: 99999999999999999999"}) {
    HttpRequest request;
    const auto result = parse(
        std::string{"POST /x HTTP/1.1\r\n"} + header + "\r\n\r\n", &request);
    EXPECT_FALSE(result) << header;
  }
}

TEST(HttpParser, PipelinedKeepAliveRequestsSplitCleanly) {
  const std::string stream =
      "GET /one HTTP/1.1\r\n\r\n"
      "GET /two HTTP/1.1\r\nConnection: close\r\n\r\n";
  std::size_t header_len = 0;
  const std::size_t first_end = find_header_end(stream, &header_len);
  ASSERT_NE(first_end, std::string_view::npos);
  HttpRequest first;
  ASSERT_TRUE(parse_http_request(
      std::string_view{stream}.substr(0, header_len), &first));
  EXPECT_EQ(first.path, "/one");
  EXPECT_TRUE(first.keep_alive);

  const std::string_view rest = std::string_view{stream}.substr(first_end);
  const std::size_t second_end = find_header_end(rest, &header_len);
  ASSERT_NE(second_end, std::string_view::npos);
  EXPECT_EQ(second_end, rest.size());
  HttpRequest second;
  ASSERT_TRUE(parse_http_request(rest.substr(0, header_len), &second));
  EXPECT_EQ(second.path, "/two");
  EXPECT_FALSE(second.keep_alive);
}

TEST(HttpParser, MalformedRequestLinesRejected) {
  for (const char* text :
       {"BADLINE\r\n\r\n", "GET  /double-space HTTP/1.1\r\n\r\n",
        "GET /x SMTP/1.1\r\n\r\n", " GET /x HTTP/1.1\r\n\r\n",
        "\r\n\r\n"}) {
    HttpRequest request;
    EXPECT_FALSE(parse(text, &request)) << text;
  }
}

TEST(HttpParser, PercentDecoding) {
  HttpRequest request;
  const auto result =
      parse("GET /a%2Fb%zz+c?x=%41&y&=v HTTP/1.1\r\n\r\n", &request);
  ASSERT_TRUE(result) << result.error;
  // %2F decodes, %zz passes through verbatim, '+' becomes a space.
  EXPECT_EQ(request.path, "/a/b%zz c");
  ASSERT_NE(request.query_param("x"), nullptr);
  EXPECT_EQ(*request.query_param("x"), "A");
  ASSERT_NE(request.query_param("y"), nullptr);
  EXPECT_EQ(*request.query_param("y"), "");
}

TEST(HttpParser, FindHeaderEndNeedsBlankLine) {
  std::size_t header_len = 0;
  EXPECT_EQ(find_header_end("GET /x HTTP/1.1\r\nHost: a\r\n", &header_len),
            std::string_view::npos);
  EXPECT_EQ(find_header_end("", &header_len), std::string_view::npos);
  EXPECT_EQ(find_header_end("no newline at all", &header_len),
            std::string_view::npos);
}

}  // namespace
}  // namespace asrel::serve
