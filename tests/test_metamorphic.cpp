// Metamorphic correctness suite (the tentpole of the testing subsystem).
//
// Each test states a relation between two runs of the pipeline rather than
// a single expected value:
//  * relabeling every ASN leaves the Fig. 1/2 and Table 1-3 reports
//    byte-identical (the analysis must depend on structure, not on ASN
//    arithmetic);
//  * adding a vantage point never shrinks the observed link universe;
//  * adversarially down-sampling the validation data moves precision in a
//    provably monotone direction;
//  * the Appendix A sampling experiment is deterministic and emits sane
//    quartiles.
// Random inputs come from the src/testing property framework, so every
// failure prints a reproducible case seed and a shrunk counterexample.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/bias_audit.hpp"
#include "core/snapshot_builder.hpp"
#include "eval/report.hpp"
#include "eval/sampling.hpp"
#include "infer/observed.hpp"
#include "infer/problink.hpp"
#include "infer/toposcope.hpp"
#include "validation/extract.hpp"
#include "io/snapshot.hpp"
#include "serve/query_engine.hpp"
#include "test_support.hpp"
#include "testing/canonical.hpp"
#include "testing/property.hpp"

namespace asrel {
namespace {

using testing::PropertyConfig;
using testing::Rng;

const std::vector<std::string>& report_keys() {
  static const std::vector<std::string> keys = {
      "regional", "topological", "table:asrank", "table:problink",
      "table:toposcope"};
  return keys;
}

const io::Snapshot& shared_snapshot() {
  static const io::Snapshot snapshot =
      core::build_snapshot(test::shared_scenario());
  return snapshot;
}

/// Applies a seeded ASN permutation to every ASN-valued field of the
/// snapshot, keeping all structure (order of edges, labels, tags) intact
/// except that the AS table is re-sorted to preserve its documented
/// sorted-by-ASN invariant.
io::Snapshot permute_snapshot(const io::Snapshot& base, std::uint64_t seed) {
  io::Snapshot snap = base;

  std::vector<asn::Asn> originals;
  originals.reserve(snap.ases.size());
  for (const auto& as : snap.ases) originals.push_back(as.asn);
  std::vector<asn::Asn> shuffled = originals;
  Rng rng{seed};
  rng.shuffle(shuffled);

  std::unordered_map<std::uint32_t, std::uint32_t> mapping;
  mapping.reserve(originals.size());
  for (std::size_t i = 0; i < originals.size(); ++i) {
    mapping.emplace(originals[i].value(), shuffled[i].value());
  }
  const auto remap = [&](asn::Asn asn) {
    const auto it = mapping.find(asn.value());
    return it == mapping.end() ? asn : asn::Asn{it->second};
  };

  for (auto& as : snap.ases) as.asn = remap(as.asn);
  std::sort(snap.ases.begin(), snap.ases.end(),
            [](const auto& a, const auto& b) { return a.asn < b.asn; });
  for (auto& edge : snap.edges) {
    edge.a = remap(edge.a);
    edge.b = remap(edge.b);
  }
  for (auto& asn : snap.clique) asn = remap(asn);
  std::sort(snap.clique.begin(), snap.clique.end());
  for (auto& asn : snap.hypergiants) asn = remap(asn);
  std::sort(snap.hypergiants.begin(), snap.hypergiants.end());
  const auto remap_label = [&](val::CleanLabel& label) {
    label.link = val::AsLink{remap(label.link.a), remap(label.link.b)};
    label.provider = remap(label.provider);
  };
  for (auto& label : snap.validation) remap_label(label);
  for (auto& algorithm : snap.algorithms) {
    for (auto& label : algorithm.labels) remap_label(label);
  }
  for (auto& tag : snap.links) {
    tag.link = val::AsLink{remap(tag.link.a), remap(tag.link.b)};
  }
  return snap;
}

TEST(Metamorphic, AsnRelabelingLeavesReportsInvariant) {
  const io::Snapshot& base = shared_snapshot();
  const serve::QueryEngine baseline{base};
  std::vector<std::string> expected;
  for (const auto& key : report_keys()) {
    const auto report = baseline.report_json(key);
    ASSERT_NE(report, nullptr) << key;
    ASSERT_FALSE(report->empty()) << key;
    expected.push_back(*report);
  }

  PropertyConfig config;
  config.cases = 3;  // each case builds a full QueryEngine
  const auto result = testing::check_property<std::uint64_t>(
      config, [](Rng& rng) { return rng.next(); },
      [&](const std::uint64_t& seed) -> std::optional<std::string> {
        const serve::QueryEngine permuted{permute_snapshot(base, seed)};
        for (std::size_t i = 0; i < report_keys().size(); ++i) {
          const auto report = permuted.report_json(report_keys()[i]);
          if (report == nullptr) {
            return "report vanished under relabeling: " + report_keys()[i];
          }
          if (*report != expected[i]) {
            return "report changed under ASN relabeling: " + report_keys()[i];
          }
        }
        return std::nullopt;
      });
  EXPECT_TRUE(result.ok) << result.message << " (case " << result.failing_case
                         << ", seed " << result.failing_seed << ")";
}

TEST(Metamorphic, AddingVantagePointNeverShrinksLinkCoverage) {
  topo::TopologyParams topo_params;
  topo_params.as_count = 700;
  topo_params.seed = 9;
  const topo::World world = topo::generate(topo_params);
  bgp::VantageParams vantage_params;
  vantage_params.target_count = 24;
  const auto pool_template =
      bgp::select_vantage_points(world, vantage_params);
  ASSERT_GT(pool_template.size(), 3u);
  bgp::PropagationParams prop_params;
  prop_params.threads = 2;
  const bgp::Propagator propagator{world, prop_params};

  const auto links_of = [&](std::vector<bgp::VantagePoint> vps) {
    const auto table = bgp::collect_paths(propagator, std::move(vps));
    const auto observed = infer::ObservedPaths::build(table);
    return std::unordered_set<val::AsLink>{observed.link_order().begin(),
                                           observed.link_order().end()};
  };

  PropertyConfig config;
  config.cases = 3;  // each case runs collect_paths twice
  const auto result = testing::check_property<std::uint64_t>(
      config, [](Rng& rng) { return rng.next(); },
      [&](const std::uint64_t& seed) -> std::optional<std::string> {
        Rng rng{seed};
        std::vector<bgp::VantagePoint> pool = pool_template;
        rng.shuffle(pool);
        const std::size_t base_count = 1 + rng.below(pool.size() - 1);
        std::vector<bgp::VantagePoint> smaller{pool.begin(),
                                               pool.begin() + base_count};
        std::vector<bgp::VantagePoint> larger = smaller;
        larger.push_back(pool[base_count]);

        const auto small_links = links_of(std::move(smaller));
        const auto large_links = links_of(std::move(larger));
        if (large_links.size() < small_links.size()) {
          return "link count dropped from " +
                 std::to_string(small_links.size()) + " to " +
                 std::to_string(large_links.size()) + " after adding a VP";
        }
        for (const auto& link : small_links) {
          if (!large_links.contains(link)) {
            return "link " + std::to_string(link.a.value()) + "-" +
                   std::to_string(link.b.value()) +
                   " vanished after adding a VP";
          }
        }
        return std::nullopt;
      });
  EXPECT_TRUE(result.ok) << result.message << " (case " << result.failing_case
                         << ", seed " << result.failing_seed << ")";
}

/// Eval pairs of the first stored algorithm, optionally restricted to one
/// topological class via the snapshot's precomputed link tags.
std::vector<eval::EvalPair> pairs_for_class(const io::Snapshot& snap,
                                            std::string_view klass) {
  std::unordered_map<val::AsLink, std::string_view> class_of;
  class_of.reserve(snap.links.size());
  for (const auto& tag : snap.links) {
    class_of.emplace(tag.link, snap.class_names[tag.topological_class]);
  }
  std::unordered_map<val::AsLink, const val::CleanLabel*> inferred;
  inferred.reserve(snap.algorithms.front().labels.size());
  for (const auto& label : snap.algorithms.front().labels) {
    inferred.emplace(label.link, &label);
  }

  std::vector<eval::EvalPair> pairs;
  for (const auto& validated : snap.validation) {
    const auto inferred_it = inferred.find(validated.link);
    if (inferred_it == inferred.end()) continue;
    if (!klass.empty()) {
      const auto class_it = class_of.find(validated.link);
      if (class_it == class_of.end() || class_it->second != klass) continue;
    }
    eval::EvalPair pair;
    pair.link = validated.link;
    pair.validated = validated.rel;
    pair.validated_provider = validated.provider;
    pair.inferred = inferred_it->second->rel;
    pair.inferred_provider = inferred_it->second->provider;
    pairs.push_back(pair);
  }
  return pairs;
}

bool is_true_positive_p2p(const eval::EvalPair& pair) {
  return pair.validated == topo::RelType::kP2P &&
         pair.inferred == topo::RelType::kP2P;
}

bool is_false_positive_p2p(const eval::EvalPair& pair) {
  return pair.validated != topo::RelType::kP2P &&
         pair.inferred == topo::RelType::kP2P;
}

double ppv_p(std::span<const eval::EvalPair> pairs) {
  return eval::compute_class_metrics(pairs, "subset").p2p.ppv();
}

TEST(Metamorphic, AdversarialDownSamplingMovesPrecisionMonotonically) {
  // Uniform down-sampling shows no trend (that is Appendix A's point), so
  // the monotone relation needs an adversarial sampler: dropping validated
  // P2P links that were inferred correctly (true positives) can only lower
  // PPV_P; dropping misinferred ones (false positives) can only raise it.
  const io::Snapshot& snap = shared_snapshot();
  std::vector<eval::EvalPair> pairs = pairs_for_class(snap, "T1-TR");
  const auto has_both = [](std::span<const eval::EvalPair> p) {
    return std::any_of(p.begin(), p.end(), is_true_positive_p2p) &&
           std::any_of(p.begin(), p.end(), is_false_positive_p2p);
  };
  if (!has_both(pairs)) {
    // Fall back to the full pair set so the relation is still exercised.
    pairs = pairs_for_class(snap, "");
  }
  ASSERT_TRUE(has_both(pairs));

  PropertyConfig config;
  config.cases = 8;
  const auto result = testing::check_property<std::uint64_t>(
      config, [](Rng& rng) { return rng.next(); },
      [&](const std::uint64_t& seed) -> std::optional<std::string> {
        for (const bool drop_true_positives : {true, false}) {
          std::vector<eval::EvalPair> remaining = pairs;
          Rng rng{seed};
          rng.shuffle(remaining);
          double previous = ppv_p(remaining);
          for (std::size_t i = remaining.size(); i-- > 0;) {
            const bool droppable =
                drop_true_positives ? is_true_positive_p2p(remaining[i])
                                    : is_false_positive_p2p(remaining[i]);
            if (!droppable) continue;
            remaining.erase(remaining.begin() +
                            static_cast<std::ptrdiff_t>(i));
            const double current = ppv_p(remaining);
            const bool monotone = drop_true_positives ? current <= previous
                                                      : current >= previous;
            if (!monotone) {
              return std::string{"PPV_P moved the wrong way when dropping "} +
                     (drop_true_positives ? "a true positive"
                                          : "a false positive");
            }
            previous = current;
          }
        }
        return std::nullopt;
      });
  EXPECT_TRUE(result.ok) << result.message << " (case " << result.failing_case
                         << ", seed " << result.failing_seed << ")";
}

TEST(Metamorphic, SamplingExperimentIsDeterministicAndBounded) {
  const std::vector<eval::EvalPair> pairs =
      pairs_for_class(shared_snapshot(), "");
  ASSERT_FALSE(pairs.empty());

  eval::SamplingParams params;
  params.min_percent = 80;
  params.max_percent = 95;
  params.step = 5;
  params.repetitions = 10;
  const auto first = eval::run_sampling_experiment(pairs, params);
  const auto second = eval::run_sampling_experiment(pairs, params);
  EXPECT_EQ(eval::to_csv(first), eval::to_csv(second))
      << "Appendix A experiment is not deterministic in its seed";

  ASSERT_FALSE(first.points.empty());
  for (const auto& point : first.points) {
    EXPECT_GE(point.percent, params.min_percent);
    EXPECT_LE(point.percent, params.max_percent);
    for (const auto& [q1, median, q3] :
         {std::tuple{point.ppv_p_q1, point.ppv_p_median, point.ppv_p_q3},
          std::tuple{point.tpr_p_q1, point.tpr_p_median, point.tpr_p_q3}}) {
      EXPECT_GE(q1, 0.0);
      EXPECT_LE(q3, 1.0);
      EXPECT_LE(q1, median);
      EXPECT_LE(median, q3);
    }
    EXPECT_LE(point.mcc_q1, point.mcc_median);
    EXPECT_LE(point.mcc_median, point.mcc_q3);
  }
}

// ---- serial vs threaded: every parallel stage byte-compares equal --------

std::string stage_bytes_at(const core::Scenario& scenario,
                           const infer::AsRankResult& asrank,
                           unsigned threads) {
  std::string bytes;
  const auto append_rel = [&bytes](const infer::Inference& inference) {
    for (const auto& link : inference.order()) {
      const auto* rel = inference.find(link);
      bytes += std::to_string(link.a.value()) + '|' +
               std::to_string(link.b.value()) + '|' +
               std::to_string(static_cast<int>(rel->rel)) + '|' +
               std::to_string(rel->provider.value()) + '\n';
    }
  };

  // Stage 1: route propagation / path collection.
  bgp::PropagationParams prop = scenario.params().propagation;
  prop.threads = threads;
  const bgp::Propagator propagator{scenario.world(), prop};
  const auto table = bgp::collect_paths(propagator,
                                        scenario.vantage_points());
  table.for_each_path([&](const bgp::PathTable::PathRef& ref) {
    bytes += std::to_string(ref.vp_index) + '@' +
             std::to_string(ref.origin) + ':';
    for (const auto hop : ref.path) bytes += std::to_string(hop.value()) + ',';
    bytes += '\n';
  });

  // Stage 2: community extraction.
  val::ExtractParams extract = scenario.params().extract;
  extract.threads = threads;
  val::ExtractStats stats;
  const auto validation = val::extract_from_communities(
      propagator, table, scenario.schemes(), extract, &stats);
  for (const auto& entry : validation.entries()) {
    bytes += std::to_string(entry.link.a.value()) + '-' +
             std::to_string(entry.link.b.value()) + ':';
    for (const auto& label : entry.labels) {
      bytes += std::to_string(static_cast<int>(label.rel)) + '/' +
               std::to_string(label.provider.value()) + ';';
    }
    bytes += '\n';
  }
  bytes += std::to_string(stats.tags_attached) + '|' +
           std::to_string(stats.tags_survived) + '|' +
           std::to_string(stats.tags_decoded) + '\n';

  // Stages 3+4: the learning classifiers.
  infer::ProbLinkParams problink;
  problink.threads = threads;
  append_rel(infer::run_problink(scenario.observed(), asrank,
                                 scenario.validation(), problink)
                 .inference);
  infer::TopoScopeParams toposcope;
  toposcope.threads = threads;
  append_rel(infer::run_toposcope(scenario.observed(), asrank,
                                  scenario.validation(), toposcope)
                 .inference);

  // Stage 5: the audit's per-class tabulation.
  const core::BiasAudit audit{scenario, threads};
  bytes += eval::render_coverage(audit.regional_coverage());
  bytes += eval::render_coverage(audit.topological_coverage());
  bytes += eval::render_validation_table(
      audit.validation_table(asrank.inference));
  return bytes;
}

TEST(Metamorphic, ParallelStagesAreByteIdenticalToSerial) {
  const core::Scenario& scenario = test::shared_scenario();
  const auto asrank = infer::run_asrank(scenario.observed());
  const std::string serial = stage_bytes_at(scenario, asrank, 1);
  ASSERT_FALSE(serial.empty());

  PropertyConfig config;
  config.cases = 2;  // each case reruns every pipeline stage
  const auto result = testing::check_property<unsigned>(
      config, [](Rng& rng) { return 2 + static_cast<unsigned>(rng.below(7)); },
      [&](const unsigned& threads) -> std::optional<std::string> {
        if (stage_bytes_at(scenario, asrank, threads) != serial) {
          return "pipeline output diverged from serial at threads=" +
                 std::to_string(threads);
        }
        return std::nullopt;
      });
  EXPECT_TRUE(result.ok) << result.message << " (case " << result.failing_case
                         << ", seed " << result.failing_seed << ")";
}

TEST(Metamorphic, GoldenReportsAreByteStableAcrossRebuilds) {
  // Two full passes through snapshot building + serving must produce
  // byte-identical artifacts — the property the golden files pin in CI.
  const auto first = testing::build_golden_reports(test::shared_scenario());
  const auto second = testing::build_golden_reports(test::shared_scenario());
  ASSERT_EQ(first.size(), second.size());
  for (std::size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(first[i].filename, second[i].filename);
    EXPECT_FALSE(first[i].json.empty()) << first[i].filename;
    EXPECT_EQ(first[i].json, second[i].json) << first[i].filename;
  }
}

}  // namespace
}  // namespace asrel
