// Regression tests for the snapshot decoder's hardening: every class of
// structurally invalid payload that fuzzing can produce must be rejected
// with a diagnostic, and everything accepted must be canonical (re-encoding
// reproduces the input byte for byte). The payloads are built by hand with
// a local little-endian writer so each test controls the exact bytes.
//
// The FuzzProperty tests at the bottom run the same oracles the fuzz/
// binaries use, inside the unit suite, over seeded random mutations — with
// shrinking, so a failure prints a minimal counterexample.
#include <gtest/gtest.h>

#include <cstdint>
#include <fstream>
#include <optional>
#include <string>
#include <string_view>

#include "io/snapshot.hpp"
#include "serve/http_parser.hpp"
#include "testing/mutate.hpp"
#include "testing/property.hpp"

// GCC's -Wmissing-field-initializers fires on designated initializers even
// when every omitted member has a default; the defaults are the point here.
#pragma GCC diagnostic ignored "-Wmissing-field-initializers"

namespace asrel::io {
namespace {

// ---- little-endian payload builder (mirrors the production encoder) ----

void put_u8(std::string& out, std::uint8_t v) {
  out.push_back(static_cast<char>(v));
}

void put_u32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

void put_u64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

std::uint64_t fnv1a64(std::string_view bytes) {
  std::uint64_t hash = 0xcbf29ce484222325ull;
  for (const char c : bytes) {
    hash ^= static_cast<std::uint8_t>(c);
    hash *= 0x100000001b3ull;
  }
  return hash;
}

std::string wrap(std::string_view payload) {
  std::string out{kSnapshotMagic};
  put_u32(out, kSnapshotVersion);
  put_u64(out, payload.size());
  put_u64(out, fnv1a64(payload));
  out.append(payload);
  return out;
}

/// Knobs for each corruptible field; defaults produce a canonical payload.
struct PayloadSpec {
  std::uint8_t as_tier = 0;        // kClique
  std::uint8_t as_stub_kind = 6;   // kNotStub
  std::uint8_t as_flags = 0x01;    // hypergiant
  std::uint8_t edge_rel = 1;       // kP2P
  std::uint8_t edge_scope = 0;     // kFull
  std::uint8_t edge_flags = 0x00;
  std::uint8_t edge_hybrid = 0;
  std::uint32_t label_a = 101;
  std::uint32_t label_b = 202;
  std::uint8_t label_rel = 0;      // kP2C
  std::string trailing;
};

std::string build_payload(const PayloadSpec& spec) {
  std::string p;
  put_u64(p, 2);    // meta.as_count
  put_u64(p, 7);    // meta.seed
  put_u64(p, 11);   // meta.scheme_seed
  put_u64(p, 0);    // meta.epoch
  put_u64(p, 0);    // meta.built_unix_ms
  put_u64(p, 0);    // class names

  put_u64(p, 1);    // AS records
  put_u32(p, 101);  // asn
  put_u8(p, 4);     // region (kRipe)
  put_u8(p, spec.as_tier);
  put_u8(p, spec.as_stub_kind);
  put_u8(p, spec.as_flags);
  put_u32(p, 2);    // country length
  p += "DE";
  put_u64(p, 0);    // prepend_propensity bits (0.0)
  put_u32(p, 1);    // transit_degree
  put_u32(p, 2);    // node_degree
  put_u32(p, 3);    // cone_size

  put_u64(p, 1);    // edges
  put_u32(p, 101);
  put_u32(p, 202);
  put_u8(p, spec.edge_rel);
  put_u8(p, spec.edge_scope);
  put_u8(p, spec.edge_flags);
  put_u8(p, spec.edge_hybrid);

  put_u64(p, 0);    // clique
  put_u64(p, 0);    // hypergiants

  put_u64(p, 1);    // validation labels
  put_u32(p, spec.label_a);
  put_u32(p, spec.label_b);
  put_u8(p, spec.label_rel);
  put_u32(p, 0);    // provider

  put_u64(p, 0);    // algorithms
  put_u64(p, 0);    // link tags
  p += spec.trailing;
  return p;
}

void expect_rejected(const PayloadSpec& spec, std::string_view reason) {
  std::string error;
  const auto parsed = parse_snapshot_bytes(wrap(build_payload(spec)), &error);
  EXPECT_FALSE(parsed.has_value()) << "expected rejection: " << reason;
  EXPECT_NE(error.find(reason), std::string::npos)
      << "error was: " << error << "\nexpected to mention: " << reason;
}

TEST(SnapshotHardening, CanonicalPayloadParsesAndRoundTrips) {
  const std::string bytes = wrap(build_payload({}));
  std::string error;
  const auto parsed = parse_snapshot_bytes(bytes, &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  EXPECT_EQ(to_snapshot_bytes(*parsed), bytes)
      << "accepted snapshot did not re-serialize byte-identically";
  EXPECT_EQ(parsed->ases.size(), 1u);
  EXPECT_TRUE(parsed->ases[0].attrs.hypergiant);
  EXPECT_EQ(parsed->edges.size(), 1u);
  EXPECT_EQ(parsed->validation.size(), 1u);
}

TEST(SnapshotHardening, UnknownAsFlagBitsRejected) {
  expect_rejected({.as_flags = 0x21}, "unknown flag bits in AS record");
  expect_rejected({.as_flags = 0x80}, "unknown flag bits in AS record");
}

TEST(SnapshotHardening, InvalidTierAndStubKindRejected) {
  expect_rejected({.as_tier = 5}, "invalid tier/stub code");
  expect_rejected({.as_tier = 0xFF}, "invalid tier/stub code");
  expect_rejected({.as_stub_kind = 7}, "invalid tier/stub code");
}

TEST(SnapshotHardening, InvalidEdgeCodesRejected) {
  expect_rejected({.edge_rel = 4}, "invalid relationship/scope code");
  expect_rejected({.edge_scope = 9}, "invalid relationship/scope code");
}

TEST(SnapshotHardening, UnknownEdgeFlagBitsRejected) {
  expect_rejected({.edge_flags = 0x08}, "unknown flag bits in edge record");
}

TEST(SnapshotHardening, NonHybridEdgeWithHybridByteRejected) {
  // Flag bit 2 (hybrid) is clear but the hybrid byte is set: the decoder
  // used to drop the byte silently, making the accepted form ambiguous.
  expect_rejected({.edge_hybrid = 2},
                  "nonzero hybrid byte on a non-hybrid edge");
}

TEST(SnapshotHardening, HybridEdgeWithInvalidRelRejected) {
  expect_rejected({.edge_flags = 0x04, .edge_hybrid = 200},
                  "invalid relationship/scope code");
}

TEST(SnapshotHardening, HybridEdgeWithValidRelAccepted) {
  std::string error;
  const auto parsed = parse_snapshot_bytes(
      wrap(build_payload({.edge_flags = 0x04, .edge_hybrid = 1})), &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  ASSERT_TRUE(parsed->edges[0].hybrid_rel.has_value());
  EXPECT_EQ(*parsed->edges[0].hybrid_rel, topo::RelType::kP2P);
}

TEST(SnapshotHardening, NonCanonicalLabelOrderRejected) {
  expect_rejected({.label_a = 202, .label_b = 101},
                  "link not in canonical order");
  expect_rejected({.label_a = 101, .label_b = 101},
                  "link not in canonical order");
}

TEST(SnapshotHardening, InvalidLabelRelRejected) {
  expect_rejected({.label_rel = 9}, "invalid relationship code");
}

TEST(SnapshotHardening, TrailingBytesRejected) {
  expect_rejected({.trailing = "x"}, "trailing bytes");
}

TEST(SnapshotHardening, ChecksumAndTruncationRejected) {
  std::string bytes = wrap(build_payload({}));
  std::string flipped = bytes;
  flipped.back() = static_cast<char>(flipped.back() ^ 0x01);
  std::string error;
  EXPECT_FALSE(parse_snapshot_bytes(flipped, &error).has_value());
  EXPECT_NE(error.find("checksum"), std::string::npos) << error;

  EXPECT_FALSE(
      parse_snapshot_bytes(bytes.substr(0, bytes.size() - 3), &error)
          .has_value());
  EXPECT_FALSE(parse_snapshot_bytes("", &error).has_value());
  EXPECT_FALSE(parse_snapshot_bytes("ASRELSNP", &error).has_value());
}

TEST(SnapshotHardening, ImplausibleElementCountRejected) {
  // A count claiming more elements than the payload has bytes for must be
  // caught before any allocation.
  std::string p;
  put_u64(p, 2);
  put_u64(p, 7);
  put_u64(p, 11);
  put_u64(p, 0);  // epoch
  put_u64(p, 0);  // built_unix_ms
  put_u64(p, 0xFFFFFFFFFFFFull);  // class-name count, absurd
  std::string error;
  EXPECT_FALSE(parse_snapshot_bytes(wrap(p), &error).has_value());
  EXPECT_NE(error.find("implausible"), std::string::npos) << error;
}

TEST(SnapshotHardening, LoadSnapshotFileDiagnosesMissingAndGarbage) {
  std::string error;
  EXPECT_EQ(load_snapshot_file("/nonexistent/asrel.snap", &error),
            std::nullopt);
  EXPECT_FALSE(error.empty());

  // Long enough to clear the header-size check so the magic check fires.
  const std::string path = ::testing::TempDir() + "asrel_garbage.snap";
  {
    std::ofstream out{path, std::ios::binary};
    out << "this is not a snapshot, padded well past the header size";
  }
  error.clear();
  EXPECT_EQ(load_snapshot_file(path, &error), std::nullopt);
  EXPECT_NE(error.find("magic"), std::string::npos) << error;
}

// ---- in-suite mini-fuzz: same oracles as fuzz/, with shrinking ----

TEST(FuzzProperty, SnapshotParserIsTotalAndCanonical) {
  const std::string base = wrap(build_payload({}));
  asrel::testing::PropertyConfig config;
  config.cases = 400;
  const auto result = asrel::testing::check_property<std::string>(
      config,
      [&](asrel::testing::Rng& rng) {
        return asrel::testing::mutate_bytes(base, rng);
      },
      [](const std::string& bytes) -> std::optional<std::string> {
        std::string error;
        const auto parsed = parse_snapshot_bytes(bytes, &error);
        if (!parsed.has_value()) {
          if (error.empty()) return "rejection without a diagnostic";
          return std::nullopt;
        }
        if (to_snapshot_bytes(*parsed) != bytes) {
          return "accepted input is not canonical";
        }
        return std::nullopt;
      },
      [](const std::string& bytes) {
        return asrel::testing::shrink_bytes(bytes);
      });
  EXPECT_TRUE(result.ok) << result.message << " (case " << result.failing_case
                         << ", seed " << result.failing_seed << ", "
                         << (result.counterexample
                                 ? result.counterexample->size()
                                 : 0)
                         << " bytes after " << result.shrink_steps
                         << " shrink steps)";
}

TEST(FuzzProperty, HttpParserIsTotal) {
  const std::string base =
      "GET /links?algo=asrank&class=T1-TR HTTP/1.1\r\n"
      "Host: localhost\r\nContent-Length: 0\r\nConnection: keep-alive"
      "\r\n\r\n";
  asrel::testing::PropertyConfig config;
  config.cases = 600;
  const auto result = asrel::testing::check_property<std::string>(
      config,
      [&](asrel::testing::Rng& rng) {
        return asrel::testing::mutate_bytes(base, rng);
      },
      [](const std::string& bytes) -> std::optional<std::string> {
        std::size_t header_len = 0;
        const std::size_t body_start =
            serve::find_header_end(bytes, &header_len);
        if (body_start == std::string::npos) return std::nullopt;
        if (body_start > bytes.size() || header_len >= body_start) {
          return "header end out of bounds";
        }
        serve::HttpRequest request;
        const serve::HttpParse parsed = serve::parse_http_request(
            std::string_view{bytes}.substr(0, header_len), &request);
        if (!parsed) {
          if (parsed.error.empty()) return "rejection without a diagnostic";
          return std::nullopt;
        }
        if (request.method.empty() || request.target.empty()) {
          return "accepted request with an empty method or target";
        }
        return std::nullopt;
      },
      [](const std::string& bytes) {
        return asrel::testing::shrink_bytes(bytes);
      });
  EXPECT_TRUE(result.ok) << result.message << " (case " << result.failing_case
                         << ", seed " << result.failing_seed << ")";
}

}  // namespace
}  // namespace asrel::io
