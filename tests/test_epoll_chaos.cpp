// Chaos suite for the epoll front end specifically: the failure modes the
// thread-pool path never sees. The event loop batches pipelined responses
// into one writev, so a torn writev must resume mid-iovec; a client that
// vanishes mid-request surfaces as EPOLLHUP instead of a blocking recv
// error; deadlines are enforced lazily on data arrival plus a timer wheel
// for fully stalled connections; and hot reloads swap engines under
// pipelined bursts where many requests ride one socket buffer. Everything
// rides the seeded FaultInjector (set ASREL_CHAOS_SEED to replay CI's
// schedule).
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/scenario.hpp"
#include "core/snapshot_builder.hpp"
#include "io/flat_snapshot.hpp"
#include "io/snapshot.hpp"
#include "serve/engine_hub.hpp"
#include "serve/fault_inject.hpp"
#include "serve/http_server.hpp"
#include "serve/query_engine.hpp"
#include "serve/service.hpp"

namespace asrel {
namespace {

using namespace std::chrono_literals;

std::uint64_t chaos_seed() {
  if (const char* env = std::getenv("ASREL_CHAOS_SEED")) {
    return std::strtoull(env, nullptr, 10);
  }
  return 20210517;  // default schedule, same as test_chaos.cpp
}

/// Small world for reload experiments (same shape as test_chaos.cpp's).
const io::Snapshot& epoll_snapshot() {
  static const io::Snapshot snapshot = [] {
    core::ScenarioParams params;
    params.topology.as_count = 600;
    params.topology.seed = 13;
    return core::build_snapshot(*core::Scenario::build(params));
  }();
  return snapshot;
}

/// Blocking test client with split send/read halves and header capture
/// (the same shape as test_chaos.cpp's ChaosClient).
class Client {
 public:
  explicit Client(std::uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in address{};
    address.sin_family = AF_INET;
    address.sin_port = htons(port);
    address.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    if (::connect(fd_, reinterpret_cast<sockaddr*>(&address),
                  sizeof(address)) != 0) {
      ::close(fd_);
      fd_ = -1;
    }
  }
  ~Client() {
    if (fd_ >= 0) ::close(fd_);
  }
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  [[nodiscard]] bool connected() const { return fd_ >= 0; }

  bool send_raw(const std::string& bytes) {
    std::size_t sent = 0;
    while (sent < bytes.size()) {
      const ssize_t n = ::send(fd_, bytes.data() + sent, bytes.size() - sent,
                               MSG_NOSIGNAL);
      if (n <= 0) return false;
      sent += static_cast<std::size_t>(n);
    }
    return true;
  }

  int read_response(std::string* body = nullptr,
                    std::string* headers = nullptr) {
    std::string data = std::move(leftover_);
    leftover_.clear();
    std::size_t header_end;
    while ((header_end = data.find("\r\n\r\n")) == std::string::npos) {
      if (!recv_more(&data)) return -1;
    }
    std::size_t content_length = 0;
    const std::size_t cl = data.find("Content-Length: ");
    if (cl != std::string::npos && cl < header_end) {
      content_length = static_cast<std::size_t>(
          std::strtoull(data.c_str() + cl + 16, nullptr, 10));
    }
    const std::size_t total = header_end + 4 + content_length;
    while (data.size() < total) {
      if (!recv_more(&data)) return -1;
    }
    if (headers != nullptr) *headers = data.substr(0, header_end);
    if (body != nullptr) *body = data.substr(header_end + 4, content_length);
    leftover_ = data.substr(total);
    const std::size_t space = data.find(' ');
    return space == std::string::npos ? -1
                                      : std::atoi(data.c_str() + space + 1);
  }

  int get(const std::string& path, std::string* body = nullptr,
          std::string* headers = nullptr) {
    if (!send_raw("GET " + path + " HTTP/1.1\r\nHost: epoll\r\n\r\n")) {
      return -1;
    }
    return read_response(body, headers);
  }

 private:
  bool recv_more(std::string* data) {
    char chunk[4096];
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n <= 0) return false;
    data->append(chunk, static_cast<std::size_t>(n));
    return true;
  }

  int fd_ = -1;
  std::string leftover_;
};

serve::HttpServerOptions epoll_options() {
  serve::HttpServerOptions options;
  options.port = 0;
  options.serve_model = serve::ServeModel::kEpoll;
  options.worker_threads = 2;
  return options;
}

// ------------------------------------------------------------ torn writev

TEST(EpollChaos, TornWritevIsInvisibleToPipelinedClients) {
  // A body big enough that the batched response train spans many iovec
  // resumptions when writev is torn (EINTR or a 1-byte short write).
  const std::string payload(4096, 'w');
  auto options = epoll_options();
  serve::HttpServer server{
      [&payload](const serve::HttpRequest&) {
        return serve::HttpResponse::json(200,
                                         "{\"payload\":\"" + payload + "\"}");
      },
      options};

  serve::fault::FaultPlan plan;
  plan.seed = chaos_seed();
  plan.writev_eintr_permille = 200;
  plan.writev_short_permille = 300;
  serve::fault::ScopedFaults faults{plan};

  std::string error;
  ASSERT_TRUE(server.start(&error)) << error;
  Client client{server.port()};
  ASSERT_TRUE(client.connected());

  // Pipelined bursts: 8 requests per send, so each flush batches several
  // responses into one writev — exactly the path the faults tear.
  const std::string request = "GET /w HTTP/1.1\r\nHost: epoll\r\n\r\n";
  std::string burst;
  for (int i = 0; i < 8; ++i) burst += request;
  for (int round = 0; round < 20; ++round) {
    ASSERT_TRUE(client.send_raw(burst)) << "round " << round;
    for (int i = 0; i < 8; ++i) {
      std::string body;
      ASSERT_EQ(client.read_response(&body), 200)
          << "round " << round << " response " << i;
      ASSERT_NE(body.find(payload), std::string::npos)
          << "round " << round << " response " << i;
    }
  }

  const auto stats = serve::fault::FaultInjector::instance().stats();
  EXPECT_GT(stats.writev_faults, 0u)
      << "the run injected nothing — schedule or rates are broken";
  server.stop();
}

// -------------------------------------------------- vanishing clients

TEST(EpollChaos, AbruptClientCloseMidRequestIsSurvivable) {
  auto options = epoll_options();
  serve::HttpServer server{
      [](const serve::HttpRequest&) {
        return serve::HttpResponse::json(200, R"({"ok":true})");
      },
      options};
  std::string error;
  ASSERT_TRUE(server.start(&error)) << error;

  // Clients that connect, send part of a request, and vanish: the event
  // loop sees EPOLLHUP / recv()==0 with a half-parsed request buffered.
  for (int i = 0; i < 16; ++i) {
    Client victim{server.port()};
    ASSERT_TRUE(victim.connected());
    ASSERT_TRUE(victim.send_raw("GET /gone HTTP/1.1\r\nHo"));
    // destructor closes the socket mid-request
  }
  // Clients that send a full pipelined burst and vanish before reading:
  // the server's batched flush hits a dead socket (EPIPE/RST).
  for (int i = 0; i < 8; ++i) {
    Client victim{server.port()};
    ASSERT_TRUE(victim.connected());
    const std::string request = "GET /gone HTTP/1.1\r\nHost: epoll\r\n\r\n";
    ASSERT_TRUE(victim.send_raw(request + request + request));
  }

  // The loops reaped everything and keep serving new connections.
  Client survivor{server.port()};
  ASSERT_TRUE(survivor.connected());
  std::string body;
  EXPECT_EQ(survivor.get("/after", &body), 200);
  EXPECT_NE(body.find("ok"), std::string::npos) << body;
  EXPECT_TRUE(server.running());
  server.stop();
}

// ----------------------------------------------------- deadlines / stalls

TEST(EpollChaos, SlowTricklePastDeadlineGets408) {
  auto options = epoll_options();
  options.request_deadline_ms = 100;
  options.request_timeout_ms = 5000;  // the lazy deadline must fire first
  serve::HttpServer server{
      [](const serve::HttpRequest&) {
        return serve::HttpResponse::json(200, R"({"ok":true})");
      },
      options};
  std::string error;
  ASSERT_TRUE(server.start(&error)) << error;

  // The epoll path checks the total deadline lazily when data arrives:
  // one pad byte trickled in after the deadline wakes the loop, which
  // notices the overrun and cuts the connection with 408.
  Client trickler{server.port()};
  ASSERT_TRUE(trickler.connected());
  ASSERT_TRUE(trickler.send_raw("GET /never HTTP/1.1\r\n"));
  std::this_thread::sleep_for(180ms);
  ASSERT_TRUE(trickler.send_raw("X-Pad: y\r\n"));
  EXPECT_EQ(trickler.read_response(), 408);

  const auto stats = server.stats();
  EXPECT_GE(stats.deadline_exceeded, 1u);
  bool saw_read = false;
  for (const auto& [route, count] : server.deadline_exceeded_by_route()) {
    if (route == "(read)") saw_read = count > 0;
  }
  EXPECT_TRUE(saw_read);
  server.stop();
}

TEST(EpollChaos, FullyStalledConnectionIsCutByTheTimerWheel) {
  auto options = epoll_options();
  options.request_timeout_ms = 100;
  options.request_deadline_ms = 5000;
  serve::HttpServer server{
      [](const serve::HttpRequest&) {
        return serve::HttpResponse::json(200, R"({"ok":true})");
      },
      options};
  std::string error;
  ASSERT_TRUE(server.start(&error)) << error;

  // Unlike the trickler, this connection never sends another byte, so no
  // event ever wakes the lazy deadline check — only the timer wheel can
  // notice the stall and time it out.
  Client stalled{server.port()};
  ASSERT_TRUE(stalled.connected());
  const auto started = std::chrono::steady_clock::now();
  ASSERT_TRUE(stalled.send_raw("GET /stall HTTP/1.1\r\n"));
  EXPECT_EQ(stalled.read_response(), 408);
  // Promptly: the stall timer re-arms lazily on fire, and a re-arm into
  // an already-swept wheel slot once waited a full ~4 s wheel revolution
  // instead of one more timeout period. Generous bound, but far below
  // the revolution.
  const auto elapsed = std::chrono::steady_clock::now() - started;
  EXPECT_LT(std::chrono::duration_cast<std::chrono::milliseconds>(elapsed)
                .count(),
            1500);
  EXPECT_GE(server.stats().timeouts, 1u);
  server.stop();
}

// -------------------------------------------------------- EMFILE shedding

TEST(EpollChaos, EmfileShedCarriesRetryAfter) {
  auto options = epoll_options();
  options.retry_after_hint_s = 3;
  serve::HttpServer server{
      [](const serve::HttpRequest&) {
        return serve::HttpResponse::json(200, R"({"pong":true})");
      },
      options};
  std::string error;
  ASSERT_TRUE(server.start(&error)) << error;

  // Every accept hits the fd-exhaustion emergency path: the reserve fd is
  // released, the connection accepted and shed. The shed response must be
  // the single builder's 503 — with Retry-After — not a bare close.
  {
    serve::fault::FaultPlan plan;
    plan.seed = chaos_seed();
    plan.accept_emfile_permille = 1000;
    serve::fault::ScopedFaults faults{plan};

    // A shed connection usually reads the 503 but can also see a reset
    // (the server closes right after the write); retry until one response
    // comes through — bounded, and the header assertion is the point.
    bool saw_shed = false;
    for (int i = 0; i < 20 && !saw_shed; ++i) {
      Client refused{server.port()};
      ASSERT_TRUE(refused.connected());
      std::string body;
      std::string headers;
      const int status = refused.read_response(&body, &headers);
      if (status == -1) continue;
      ASSERT_EQ(status, 503);
      EXPECT_NE(headers.find("Retry-After: 3"), std::string::npos)
          << headers;
      EXPECT_NE(body.find("overloaded"), std::string::npos) << body;
      saw_shed = true;
    }
    EXPECT_TRUE(saw_shed);
    EXPECT_GT(server.stats().emfile_recoveries, 0u);
  }

  // Faults disarmed: service resumes on the same listener. The acceptor
  // may still be parked inside one in-flight emergency accept (which
  // sheds whatever connects next), so allow a couple of sacrificial
  // connections before demanding a 200.
  bool served = false;
  for (int i = 0; i < 10 && !served; ++i) {
    Client recovered{server.port()};
    ASSERT_TRUE(recovered.connected());
    served = recovered.get("/ping") == 200;
  }
  EXPECT_TRUE(served);
  server.stop();
}

// ------------------------------------------------------ drain-phase sheds

TEST(EpollChaos, DrainAbortsQueuedConnectionsWithShed503) {
  auto options = epoll_options();
  options.worker_threads = 1;  // one loop, so a slow handler blocks claims
  options.drain_deadline_ms = 100;
  options.retry_after_hint_s = 5;
  serve::HttpServer server{
      [](const serve::HttpRequest& request) {
        if (request.path == "/slow") std::this_thread::sleep_for(300ms);
        return serve::HttpResponse::json(200, R"({"ok":true})");
      },
      options};
  std::string error;
  ASSERT_TRUE(server.start(&error)) << error;

  // busy occupies the single event loop for longer than the drain grace
  // period; queued connects while the loop is stuck, so it is still in
  // the pending queue when the grace period expires.
  Client busy{server.port()};
  ASSERT_TRUE(busy.connected());
  ASSERT_TRUE(busy.send_raw("GET /slow HTTP/1.1\r\nHost: epoll\r\n\r\n"));
  std::this_thread::sleep_for(40ms);
  Client queued{server.port()};
  ASSERT_TRUE(queued.connected());

  const serve::DrainReport report = server.drain();
  EXPECT_GE(report.aborted, 1u);

  // The never-served connection gets the standard shed response — the
  // same single builder as admission and EMFILE sheds, Retry-After
  // included — not a bare close.
  std::string body;
  std::string headers;
  EXPECT_EQ(queued.read_response(&body, &headers), 503);
  EXPECT_NE(headers.find("Retry-After: 5"), std::string::npos) << headers;
  EXPECT_NE(body.find("overloaded"), std::string::npos) << body;
}

// --------------------------------------------- reload under pipelined load

TEST(EpollChaos, FlatReloadUnderPipelinedLoadLosesZeroRequests) {
  const io::Snapshot& snapshot = epoll_snapshot();
  const std::string path = ::testing::TempDir() + "/asrel_epoll_chaos.v3";
  std::string error;
  ASSERT_TRUE(io::save_flat_snapshot_file(snapshot, path, &error)) << error;

  // The microsecond reload path: mmap + structural checks only, exactly
  // what the daemon's --flat-snapshot loader does.
  const auto initial = io::FlatView::open_file(path, &error);
  ASSERT_NE(initial, nullptr) << error;
  const auto hub = std::make_shared<serve::EngineHub>(
      std::make_shared<const serve::QueryEngine>(initial),
      serve::EngineHub::EngineLoader{
          [path](std::string* load_error)
              -> std::shared_ptr<const serve::QueryEngine> {
            auto view = io::FlatView::open_file(path, load_error,
                                                /*deep_verify=*/false);
            if (view == nullptr) return nullptr;
            return std::make_shared<const serve::QueryEngine>(
                std::move(view));
          }});
  serve::AsrelService service{hub};

  auto options = epoll_options();
  options.worker_threads = 3;
  serve::HttpServer server{
      [&service](const serve::HttpRequest& request) {
        return service.handle(request);
      },
      options};
  ASSERT_TRUE(server.start(&error)) << error;

  // Two clients send pipelined bursts of 8 real /rel lookups each; every
  // response in every burst must be a 200 with the full answer, across
  // every engine swap.
  std::atomic<bool> stop_clients{false};
  std::atomic<int> failures{0};
  std::atomic<long> completed{0};
  std::vector<std::thread> clients;
  for (int t = 0; t < 2; ++t) {
    clients.emplace_back([&, t] {
      Client client{server.port()};
      if (!client.connected()) {
        failures.fetch_add(1);
        return;
      }
      std::size_t i = static_cast<std::size_t>(t) * 13;
      while (!stop_clients.load(std::memory_order_relaxed)) {
        std::string burst;
        for (int k = 0; k < 8; ++k) {
          const auto& edge = snapshot.edges[(i + static_cast<std::size_t>(k) *
                                                     7) %
                                            snapshot.edges.size()];
          burst += "GET /rel?a=" + std::to_string(edge.a.value()) +
                   "&b=" + std::to_string(edge.b.value()) +
                   " HTTP/1.1\r\nHost: epoll\r\n\r\n";
        }
        if (!client.send_raw(burst)) {
          failures.fetch_add(1);
          return;
        }
        for (int k = 0; k < 8; ++k) {
          std::string body;
          if (client.read_response(&body) != 200 ||
              body.find("\"found\":true") == std::string::npos) {
            failures.fetch_add(1);
            return;
          }
          completed.fetch_add(1, std::memory_order_relaxed);
        }
        i += 57;
      }
    });
  }

  // 20 flat reloads through the hub plus 5 through POST /reloadz, all
  // while the bursts fly.
  for (int r = 0; r < 20; ++r) {
    const auto result = hub->reload();
    EXPECT_TRUE(result.ok) << result.error;
    std::this_thread::sleep_for(2ms);
  }
  Client admin{server.port()};
  ASSERT_TRUE(admin.connected());
  for (int r = 0; r < 5; ++r) {
    ASSERT_TRUE(admin.send_raw(
        "POST /reloadz HTTP/1.1\r\nHost: epoll\r\nContent-Length: 0\r\n\r\n"));
    std::string body;
    EXPECT_EQ(admin.read_response(&body), 200) << body;
    EXPECT_NE(body.find("\"ok\":true"), std::string::npos) << body;
  }

  stop_clients.store(true);
  for (auto& client : clients) client.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_GT(completed.load(), 0);
  EXPECT_EQ(hub->epoch(), 26u);  // 1 initial + 25 successful reloads
  server.stop();
  ::unlink(path.c_str());
}

}  // namespace
}  // namespace asrel
