// Golden-file regression: the canonical scenario's Fig. 1/2 and Table 1-3
// JSON reports are checked in under tests/golden/ and must match the
// current pipeline byte for byte. Regenerate deliberately with
// `tools/asrel_golden --update` when an output change is intended.
#include <gtest/gtest.h>

#include <fstream>
#include <optional>
#include <sstream>
#include <string>

#include "test_support.hpp"
#include "testing/canonical.hpp"

namespace asrel {
namespace {

std::optional<std::string> read_file(const std::string& path) {
  std::ifstream in{path, std::ios::binary};
  if (!in) return std::nullopt;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

TEST(Golden, ReportsMatchCheckedInFiles) {
  const auto reports = testing::build_golden_reports(test::shared_scenario());
  ASSERT_FALSE(reports.empty());
  for (const auto& report : reports) {
    const std::string path =
        std::string{ASREL_GOLDEN_DIR} + "/" + report.filename;
    const auto checked_in = read_file(path);
    ASSERT_TRUE(checked_in.has_value())
        << path << " is missing; generate it with `asrel_golden --update`";
    EXPECT_EQ(*checked_in, report.json)
        << report.filename
        << " drifted from the checked-in golden file. If the change is "
           "intended, regenerate with `asrel_golden --update` and commit "
           "the diff.";
  }
}

}  // namespace
}  // namespace asrel
