#include <gtest/gtest.h>

#include <unordered_set>

#include "bgp/community.hpp"
#include "bgp/propagation.hpp"
#include "bgp/vantage.hpp"
#include "test_support.hpp"

namespace asrel::bgp {
namespace {

using asn::Asn;
using test::micro_world;
using test::MicroWorld;

// ------------------------------------------------------------ communities --

TEST(Community, PartsAndFormat) {
  const Community c{3356, 666};
  EXPECT_EQ(c.high(), 3356);
  EXPECT_EQ(c.low(), 666);
  EXPECT_EQ(to_string(c), "3356:666");
}

TEST(Community, ParseRoundTrip) {
  const auto c = parse_community("174:990");
  ASSERT_TRUE(c);
  EXPECT_EQ(*c, (Community{174, 990}));
  EXPECT_EQ(parse_community(to_string(*c)), c);
}

TEST(Community, ParseRejects) {
  EXPECT_FALSE(parse_community("174"));
  EXPECT_FALSE(parse_community("174:"));
  EXPECT_FALSE(parse_community(":990"));
  EXPECT_FALSE(parse_community("70000:1"));
  EXPECT_FALSE(parse_community("174:70000"));
  EXPECT_FALSE(parse_community("a:b"));
}

TEST(Community, WellKnownValues) {
  EXPECT_EQ(to_string(kBlackhole), "65535:666");
  EXPECT_EQ(to_string(kNoExport), "65535:65281");
}

TEST(LargeCommunity, ParseAndFormat) {
  const auto c = parse_large_community("3356:100:200");
  ASSERT_TRUE(c);
  EXPECT_EQ(c->global, 3356u);
  EXPECT_EQ(to_string(*c), "3356:100:200");
  EXPECT_FALSE(parse_large_community("3356:100"));
}

// ------------------------------------------------------------ propagation --

PropagationParams quiet_params() {
  PropagationParams params;
  params.enable_prepending = false;
  params.private_asn_leak = 0.0;
  params.threads = 1;
  return params;
}

TEST(Propagation, CustomerRouteClimbsProviders) {
  const MicroWorld mw = micro_world();
  const Propagator prop{mw.world, quiet_params()};
  const auto rib = prop.propagate(mw.s1);
  // S1 -> M1 -> L1 -> T1a: everyone on the chain has a customer route.
  for (const Asn asn : {mw.m1, mw.l1, mw.t1a}) {
    const auto node = *mw.world.graph.node_of(asn);
    EXPECT_EQ(rib.pref[node], static_cast<std::uint8_t>(RoutePref::kCustomer));
  }
}

TEST(Propagation, PeerRouteDoesNotChain) {
  const MicroWorld mw = micro_world();
  const Propagator prop{mw.world, quiet_params()};
  const auto rib = prop.propagate(mw.s1);
  // T1b hears S1 via peer T1a; T1b's peer S4 must NOT receive that peer
  // route over the (S4, T1b) peering — S4 reaches S1 via its provider M4.
  const auto t1b = *mw.world.graph.node_of(mw.t1b);
  EXPECT_EQ(rib.pref[t1b], static_cast<std::uint8_t>(RoutePref::kPeer));
  const auto s4 = *mw.world.graph.node_of(mw.s4);
  EXPECT_EQ(rib.pref[s4], static_cast<std::uint8_t>(RoutePref::kProvider));
  EXPECT_EQ(rib.parent[s4], *mw.world.graph.node_of(mw.m4));
}

TEST(Propagation, EveryoneReachesEveryOrigin) {
  const MicroWorld mw = micro_world();
  const Propagator prop{mw.world, quiet_params()};
  for (const Asn origin : mw.world.graph.nodes()) {
    const auto rib = prop.propagate(origin);
    for (topo::NodeId node = 0; node < mw.world.graph.node_count(); ++node) {
      EXPECT_TRUE(rib.reachable(node))
          << "AS" << mw.world.graph.asn_of(node).value()
          << " cannot reach AS" << origin.value();
    }
  }
}

TEST(Propagation, PathReconstructionEndsAtOrigin) {
  const MicroWorld mw = micro_world();
  const Propagator prop{mw.world, quiet_params()};
  const auto rib = prop.propagate(mw.s3);
  const auto path = prop.path_at(rib, *mw.world.graph.node_of(mw.s1));
  ASSERT_GE(path.size(), 2u);
  EXPECT_EQ(path.front(), mw.s1);
  EXPECT_EQ(path.back(), mw.s3);
}

TEST(Propagation, PartialTransitHidesCustomerFromPeers) {
  const MicroWorld mw = micro_world();
  const Propagator prop{mw.world, quiet_params()};
  // L2 tags customers-only at T1a; T1a must not export L2's routes to its
  // peer T1b. But L2 is multihomed to T1b directly, so T1b still reaches it
  // as a customer route.
  const auto rib = prop.propagate(mw.s3);  // S3 sits under L2 (and L3)
  const auto t1b = *mw.world.graph.node_of(mw.t1b);
  EXPECT_TRUE(rib.reachable(t1b));
  // T1b's route must go via its own customers (L2 or L3), never via T1a.
  const auto path = prop.path_at(rib, t1b);
  for (const Asn hop : path) {
    EXPECT_NE(hop, mw.t1a);
  }
}

TEST(Propagation, PartialTransitCustomersOnlyOriginVisibility) {
  const MicroWorld mw = micro_world();
  const Propagator prop{mw.world, quiet_params()};
  // Routes ORIGINATED by L2 reach T1a (customer route) but T1a must not
  // give them to T1b; T1b uses its own customer link to L2.
  const auto rib = prop.propagate(mw.l2);
  const auto t1b = *mw.world.graph.node_of(mw.t1b);
  EXPECT_EQ(rib.parent[t1b], *mw.world.graph.node_of(mw.l2));
}

TEST(Propagation, ScopesCanBeDisabledForAblation) {
  const MicroWorld mw = micro_world();
  auto params = quiet_params();
  params.honor_export_scopes = false;
  const Propagator prop{mw.world, params};
  // With scopes ignored, T1b may hear L2's origin via peer T1a — but the
  // direct customer route still wins by preference. Check instead at the
  // path level for S1: nothing should change structurally. Just assert the
  // propagation remains total.
  const auto rib = prop.propagate(mw.l2);
  for (topo::NodeId node = 0; node < mw.world.graph.node_count(); ++node) {
    EXPECT_TRUE(rib.reachable(node));
  }
}

TEST(Propagation, ValleyFreePathsEverywhere) {
  // Property: every path collected at any VP is valley-free with respect to
  // the (hybrid-resolved) ground truth: ascending hops, at most one flat
  // peer hop, then descending hops. Sibling hops may appear anywhere.
  const MicroWorld mw = micro_world();
  const Propagator prop{mw.world, quiet_params()};
  const auto& graph = mw.world.graph;
  for (const Asn origin : graph.nodes()) {
    const auto rib = prop.propagate(origin);
    for (topo::NodeId node = 0; node < graph.node_count(); ++node) {
      const auto path = prop.path_at(rib, node);
      if (path.size() < 2) continue;
      // Phases: 0 = ascending (right is provider of left), 1 = peer used,
      // 2 = descending.
      int phase = 0;
      for (std::size_t i = 0; i + 1 < path.size(); ++i) {
        const auto edge_id = graph.find_edge(path[i], path[i + 1]);
        ASSERT_TRUE(edge_id);
        const auto rel = prop.effective_rel(graph.edge(*edge_id), origin);
        if (rel == topo::RelType::kS2S) continue;
        if (rel == topo::RelType::kP2P) {
          EXPECT_EQ(phase, 0) << "peer hop after the peak";
          phase = 2;
          continue;
        }
        const auto& edge = graph.edge(*edge_id);
        const bool left_is_provider = graph.asn_of(edge.u) == path[i];
        if (phase == 0 && !left_is_provider) continue;  // still ascending
        EXPECT_TRUE(left_is_provider) << "ascent after descent";
        phase = 2;
      }
    }
  }
}

TEST(Propagation, DeterministicAcrossThreadCounts) {
  core::ScenarioParams params;
  params.topology.as_count = 800;
  params.vantage.target_count = 40;
  params.propagation.threads = 1;
  const auto single = core::Scenario::build(params);
  params.propagation.threads = 4;
  const auto multi = core::Scenario::build(params);
  EXPECT_EQ(single->paths().path_count(), multi->paths().path_count());
  EXPECT_EQ(single->observed().link_count(), multi->observed().link_count());
  EXPECT_EQ(single->raw_validation().size(), multi->raw_validation().size());
}

TEST(Propagation, PrependingInflatesPathsDeterministically) {
  const auto& world = test::shared_scenario().world();
  PropagationParams params;
  params.threads = 1;
  const Propagator prop{world, params};
  // prepend_count must be deterministic and bounded.
  const Asn origin = world.graph.nodes()[0];
  for (topo::NodeId node = 0; node < 100; ++node) {
    const auto a = prop.prepend_count(node, origin);
    const auto b = prop.prepend_count(node, origin);
    EXPECT_EQ(a, b);
    EXPECT_LE(a, 3u);
  }
}

TEST(Propagation, LeakedPrivateAsnIsPrivate) {
  const auto& world = test::shared_scenario().world();
  PropagationParams params;
  params.private_asn_leak = 1.0;  // force leaks
  const Propagator prop{world, params};
  const auto leak = prop.leaked_private_asn(world.graph.nodes()[0]);
  ASSERT_TRUE(leak);
  EXPECT_TRUE(asn::is_private_use(*leak));
}

// ---------------------------------------------------------------- vantage --

TEST(Vantage, IncludesEveryCliqueMember) {
  const auto& scenario = test::shared_scenario();
  std::unordered_set<Asn> vps;
  for (const auto& vp : scenario.vantage_points()) vps.insert(vp.asn);
  for (const Asn member : scenario.world().clique)
    EXPECT_TRUE(vps.contains(member));
}

TEST(Vantage, RespectsTargetCount) {
  const auto& world = test::shared_scenario().world();
  VantageParams params;
  params.target_count = 50;
  const auto vps = select_vantage_points(world, params);
  EXPECT_EQ(vps.size(), 50u);
}

TEST(Vantage, DeterministicSelection) {
  const auto& world = test::shared_scenario().world();
  VantageParams params;
  const auto a = select_vantage_points(world, params);
  const auto b = select_vantage_points(world, params);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].asn, b[i].asn);
    EXPECT_EQ(a[i].full_feed, b[i].full_feed);
  }
}

TEST(Vantage, NoDuplicates) {
  const auto& scenario = test::shared_scenario();
  std::unordered_set<Asn> seen;
  for (const auto& vp : scenario.vantage_points()) {
    EXPECT_TRUE(seen.insert(vp.asn).second);
  }
}

// ------------------------------------------------------------- collection --

TEST(Collection, PathsStartAtVpAndEndAtOrigin) {
  const auto& scenario = test::shared_scenario();
  const auto vps = scenario.paths().vantage_points();
  std::size_t checked = 0;
  scenario.paths().for_each_path([&](const PathTable::PathRef& ref) {
    if (checked > 2000) return;
    // Legacy 16-bit sessions may show the VP itself as AS_TRANS.
    if (vps[ref.vp_index].legacy_16bit) return;
    ++checked;
    ASSERT_FALSE(ref.path.empty());
    EXPECT_EQ(ref.path.front(), vps[ref.vp_index].asn);
  });
  EXPECT_GT(checked, 0u);
}

TEST(Collection, PartialFeedsExportOnlyCustomerRoutes) {
  // A partial-feed VP's paths must all start with a customer/sibling route:
  // verify by recomputing the route preference for a sample.
  const auto& scenario = test::shared_scenario();
  const auto prop = scenario.propagator();
  const auto vps = scenario.paths().vantage_points();
  const auto& graph = scenario.world().graph;

  int checked = 0;
  scenario.paths().for_each_path([&](const PathTable::PathRef& ref) {
    if (checked >= 60) return;
    const auto& vp = vps[ref.vp_index];
    if (vp.full_feed || vp.legacy_16bit) return;
    if (ref.path.size() < 2) return;
    ++checked;
    const auto rib = prop.propagate(graph.asn_of(ref.origin));
    const auto vp_node = graph.node_of(vp.asn);
    ASSERT_TRUE(vp_node);
    EXPECT_EQ(rib.pref[*vp_node],
              static_cast<std::uint8_t>(RoutePref::kCustomer));
  });
  EXPECT_GT(checked, 0);
}

TEST(Collection, SerialAndParallelPathTablesByteIdentical) {
  // Thread striping must be invisible in the output: the serialized table
  // from a single-threaded run and a multi-threaded run have to match
  // byte for byte, not just in aggregate counts.
  topo::TopologyParams topo_params;
  topo_params.as_count = 700;
  topo_params.seed = 5;
  const topo::World world = topo::generate(topo_params);
  VantageParams vantage_params;
  vantage_params.target_count = 30;
  const auto vps = select_vantage_points(world, vantage_params);

  const auto serialize = [](const PathTable& table) {
    std::string out;
    table.for_each_path([&](const PathTable::PathRef& ref) {
      out += std::to_string(ref.vp_index);
      out += '/';
      out += std::to_string(ref.origin);
      for (const Asn asn : ref.path) {
        out += ':';
        out += std::to_string(asn.value());
      }
      out += '\n';
    });
    return out;
  };

  PropagationParams params;
  params.threads = 1;
  PathTable serial = collect_paths(Propagator{world, params}, vps);
  params.threads = 4;
  PathTable parallel = collect_paths(Propagator{world, params}, vps);
  serial.recount();
  parallel.recount();
  EXPECT_EQ(serial.path_count(), parallel.path_count());
  EXPECT_EQ(serialize(serial), serialize(parallel));
}

TEST(Collection, PathCountMatchesRecount) {
  const auto& scenario = test::shared_scenario();
  std::size_t counted = 0;
  scenario.paths().for_each_path([&](const auto&) { ++counted; });
  EXPECT_EQ(counted, scenario.paths().path_count());
}

}  // namespace
}  // namespace asrel::bgp
