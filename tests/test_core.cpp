#include <gtest/gtest.h>

#include <unordered_set>

#include "core/bias_audit.hpp"
#include "core/case_study.hpp"
#include "core/looking_glass.hpp"
#include "core/scenario.hpp"
#include "eval/ppdc.hpp"
#include "infer/asrank.hpp"
#include "io/as_rel.hpp"
#include "test_support.hpp"

namespace asrel::core {
namespace {

using asn::Asn;

// --------------------------------------------------------------- scenario --

TEST(Scenario, PipelineProducesAllStages) {
  const auto& scenario = test::shared_scenario();
  EXPECT_GT(scenario.world().graph.node_count(), 2000u);
  EXPECT_GT(scenario.paths().path_count(), 10000u);
  EXPECT_GT(scenario.observed().link_count(), 1000u);
  EXPECT_GT(scenario.raw_validation().size(), 100u);
  EXPECT_GT(scenario.validation().size(), 100u);
  EXPECT_GT(scenario.orgs().as_count(), 1000u);
}

TEST(Scenario, RegionMapperRefinedByDelegations) {
  const auto& scenario = test::shared_scenario();
  EXPECT_GT(scenario.region_mapper().refined_count(), 0u);
  // Every generated AS maps to its true region through the full pipeline.
  const auto& world = scenario.world();
  for (const Asn asn : world.graph.nodes()) {
    EXPECT_EQ(scenario.region_mapper().region_of(asn),
              world.attrs.at(asn).region);
  }
}

TEST(Scenario, CleaningStatsAddUp) {
  const auto& scenario = test::shared_scenario();
  const auto& stats = scenario.cleaning_stats();
  EXPECT_EQ(stats.input_entries, scenario.raw_validation().size());
  EXPECT_EQ(stats.kept, scenario.validation().size());
  EXPECT_LE(stats.kept + stats.as_trans_removed + stats.reserved_removed +
                stats.sibling_removed + stats.multi_label_entries +
                stats.s2s_label_removed,
            stats.input_entries + stats.multi_label_entries);
}

TEST(Scenario, ValidationIsCleanOfSpuriousEntries) {
  const auto& scenario = test::shared_scenario();
  for (const auto& label : scenario.validation()) {
    EXPECT_FALSE(asn::is_reserved(label.link.a));
    EXPECT_FALSE(asn::is_reserved(label.link.b));
    EXPECT_FALSE(scenario.orgs().are_siblings(label.link.a, label.link.b));
    EXPECT_NE(label.rel, topo::RelType::kS2S);
  }
}

TEST(Scenario, OptionalSourcesEnlargeValidation) {
  core::ScenarioParams params;
  params.topology.as_count = 1200;
  params.vantage.target_count = 60;
  const auto base = Scenario::build(params);
  params.include_rpsl_source = true;
  params.include_direct_reports = true;
  const auto extended = Scenario::build(params);
  EXPECT_GT(extended->raw_validation().size(), base->raw_validation().size());
}

TEST(Scenario, DeterministicForSameParams) {
  core::ScenarioParams params;
  params.topology.as_count = 1000;
  params.vantage.target_count = 50;
  const auto a = Scenario::build(params);
  const auto b = Scenario::build(params);
  EXPECT_EQ(a->observed().link_count(), b->observed().link_count());
  EXPECT_EQ(a->validation().size(), b->validation().size());
  for (std::size_t i = 0; i < a->validation().size(); ++i) {
    EXPECT_EQ(a->validation()[i].link, b->validation()[i].link);
    EXPECT_EQ(a->validation()[i].rel, b->validation()[i].rel);
  }
}

// -------------------------------------------------------------- bias audit --

TEST(BiasAudit, RegionalCoverageShowsLacnicGap) {
  const auto& scenario = test::shared_scenario();
  const BiasAudit audit{scenario};
  const auto report = audit.regional_coverage();
  ASSERT_FALSE(report.rows.empty());

  double lacnic_share = 0;
  double lacnic_coverage = 1;
  double arin_coverage = 0;
  for (const auto& row : report.rows) {
    if (row.name == "L°") {
      lacnic_share = row.share;
      lacnic_coverage = row.coverage;
    }
    if (row.name == "AR°") arin_coverage = row.coverage;
  }
  // The paper's Fig. 1: L° holds a substantial share of links but is
  // essentially uncovered, while AR° coverage is high.
  EXPECT_GT(lacnic_share, 0.05);
  EXPECT_LT(lacnic_coverage, 0.02);
  EXPECT_GT(arin_coverage, 0.15);
}

TEST(BiasAudit, TopologicalCoverageConcentratesOnTier1) {
  const auto& scenario = test::shared_scenario();
  const BiasAudit audit{scenario};
  const auto report = audit.topological_coverage();
  double t1_tr = 0;
  double s_tr = 1;
  for (const auto& row : report.rows) {
    if (row.name == "T1-TR") t1_tr = row.coverage;
    if (row.name == "S-TR") s_tr = row.coverage;
  }
  EXPECT_GT(t1_tr, 2 * s_tr);  // the paper's Fig. 2 spike
}

TEST(BiasAudit, SharesSumToOne) {
  const auto& scenario = test::shared_scenario();
  const BiasAudit audit{scenario};
  double total = 0;
  for (const auto& row : audit.regional_coverage().rows) total += row.share;
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(BiasAudit, TransitHeatmapsSkewTowardSmallDegrees) {
  const auto& scenario = test::shared_scenario();
  const BiasAudit audit{scenario};
  const auto maps = audit.transit_degree_heatmaps();
  ASSERT_GT(maps.inferred.total(), 0u);
  ASSERT_GT(maps.validated.total(), 0u);
  // Fig. 3: inferred TR° links concentrate in the bottom-left corner more
  // than the validated ones.
  EXPECT_GT(maps.inferred.bottom_left_mass(), 0.3);
  EXPECT_GE(maps.inferred.bottom_left_mass(),
            maps.validated.bottom_left_mass() * 0.9);
}

TEST(BiasAudit, ValidationTableHasProblemClasses) {
  const auto& scenario = test::shared_scenario();
  const BiasAudit audit{scenario};
  const auto asrank = infer::run_asrank(scenario.observed());
  const auto table = audit.validation_table(asrank.inference, 50);
  EXPECT_GT(table.total.p2p.ppv(), 0.7);
  EXPECT_GT(table.total.p2c.ppv(), 0.9);
  bool found_t1_tr = false;
  for (const auto& row : table.rows) {
    if (row.name == "T1-TR") {
      found_t1_tr = true;
      EXPECT_LT(row.p2p.ppv(), table.total.p2p.ppv());
    }
  }
  EXPECT_TRUE(found_t1_tr);
}

TEST(BiasAudit, SamplingExperimentHasNoTrend) {
  const auto& scenario = test::shared_scenario();
  const BiasAudit audit{scenario};
  const auto asrank = infer::run_asrank(scenario.observed());
  eval::SamplingParams params;
  params.repetitions = 20;
  params.step = 7;
  const auto result =
      audit.sampling_experiment(asrank.inference, "T1-TR", params);
  ASSERT_FALSE(result.points.empty());
  // Appendix A: no systematic slope in the medians.
  EXPECT_LT(std::abs(result.ppv_p_slope), 0.002);
  EXPECT_LT(std::abs(result.mcc_slope), 0.002);
}

TEST(BiasAudit, PpdcHeatmapsBuild) {
  const auto& scenario = test::shared_scenario();
  const BiasAudit audit{scenario};
  const auto asrank = infer::run_asrank(scenario.observed());
  const auto with_vps = audit.ppdc_heatmaps(asrank.inference, false);
  const auto without_vps = audit.ppdc_heatmaps(asrank.inference, true);
  EXPECT_GT(with_vps.inferred.total(), 0u);
  // Dropping VP-incident links shrinks the population (Fig. 8 vs Fig. 7).
  EXPECT_LT(without_vps.inferred.total(), with_vps.inferred.total());
}

TEST(Ppdc, SizesAreBoundedByAsCount) {
  const auto& scenario = test::shared_scenario();
  const auto asrank = infer::run_asrank(scenario.observed());
  const auto sizes = eval::ppdc_sizes(scenario.observed(), asrank.inference);
  for (const auto& [asn, size] : sizes) {
    EXPECT_LT(size, scenario.observed().as_count());
  }
  // Clique members see big cones.
  std::uint32_t best = 0;
  for (const Asn member : scenario.world().clique) {
    const auto it = sizes.find(member);
    if (it != sizes.end()) best = std::max(best, it->second);
  }
  EXPECT_GT(best, 100u);
}

// ------------------------------------------------------------ looking glass --

TEST(LookingGlass, ShowsPathAndCommunities) {
  const auto& scenario = test::shared_scenario();
  const LookingGlass glass{scenario.world(), scenario.schemes(),
                           scenario.params().propagation};
  const Asn t1 = scenario.world().clique.front();
  const Asn origin = scenario.world().graph.nodes().back();
  const auto view = glass.query(t1, origin);
  ASSERT_TRUE(view.reachable);
  EXPECT_EQ(view.path.front(), t1);
  EXPECT_EQ(view.path.back(), origin);
}

TEST(LookingGlass, RevealsNoExportCommunityOnTaggedRoutes) {
  const auto& scenario = test::shared_scenario();
  const auto& world = scenario.world();
  const LookingGlass glass{world, scenario.schemes(),
                           scenario.params().propagation};
  const auto expected = val::no_export_to_peers_community(world.cogent_like);
  int seen = 0;
  int total = 0;
  for (const auto& edge : world.graph.edges()) {
    if (!edge.scope_via_community) continue;
    ++total;
    const auto view =
        glass.query(world.cogent_like, world.graph.asn_of(edge.v));
    if (!view.reachable) continue;
    if (std::find(view.communities.begin(), view.communities.end(),
                  expected) != view.communities.end()) {
      ++seen;
    }
  }
  ASSERT_GT(total, 0);
  EXPECT_GE(seen, total - 2);  // route must go via the tagged customer
}

TEST(LookingGlass, UnreachableForUnknownAs) {
  const auto& scenario = test::shared_scenario();
  const LookingGlass glass{scenario.world(), scenario.schemes(),
                           scenario.params().propagation};
  const auto view = glass.query(Asn{4999999}, scenario.world().clique[0]);
  EXPECT_FALSE(view.reachable);
}

// ------------------------------------------------------------- case study --

TEST(CaseStudy, FindsTheCogentMechanism) {
  const auto& scenario = test::shared_scenario();
  const BiasAudit audit{scenario};
  const auto asrank = infer::run_asrank(scenario.observed());
  const auto report = run_case_study(scenario, audit, asrank.inference);

  ASSERT_GT(report.wrong_p2p_t1_tr, 0u);
  EXPECT_EQ(report.dominant_tier1, scenario.world().cogent_like);
  // No clique triplet exists for any target — the §6.1 observation.
  EXPECT_EQ(report.with_clique_triplet, 0u);
  // Most targets show the action community through the looking glass.
  EXPECT_GT(report.with_action_community, report.dominant_count / 2);
  const auto text = render(report);
  EXPECT_NE(text.find("Dominant Tier-1"), std::string::npos);
}

// --------------------------------------------------------------------- io --

TEST(AsRelIo, InferenceRoundTrips) {
  const auto& scenario = test::shared_scenario();
  const auto asrank = infer::run_asrank(scenario.observed());
  const auto text = io::to_as_rel_text(asrank.inference);
  const auto reparsed = io::parse_as_rel_text(text);
  EXPECT_EQ(reparsed.size(), asrank.inference.size());
  EXPECT_EQ(reparsed.agreement_with(asrank.inference), 1.0);
}

TEST(AsRelIo, ParsesCaidaFormat) {
  const auto inference = io::parse_as_rel_text(
      "# comment\n"
      "3356|20|-1\n"
      "10|20|0\n"
      "bad|line|x\n");
  EXPECT_EQ(inference.size(), 2u);
  const auto* p2c = inference.find(val::AsLink{Asn{3356}, Asn{20}});
  ASSERT_NE(p2c, nullptr);
  EXPECT_EQ(p2c->rel, topo::RelType::kP2C);
  EXPECT_EQ(p2c->provider, Asn{3356});
  const auto* p2p = inference.find(val::AsLink{Asn{10}, Asn{20}});
  ASSERT_NE(p2p, nullptr);
  EXPECT_EQ(p2p->rel, topo::RelType::kP2P);
}

TEST(AsRelIo, GroundTruthSerializes) {
  const auto mw = test::micro_world();
  std::ostringstream out;
  io::write_as_rel(mw.world.graph, out);
  const auto inference = io::parse_as_rel_text(out.str());
  EXPECT_EQ(inference.size(), mw.world.graph.edge_count());
}

}  // namespace
}  // namespace asrel::core
