// Tests for the application-consequence modules (§2 spoof guard, §7
// Peerlock).
#include <gtest/gtest.h>

#include "core/peerlock.hpp"
#include "core/spoof_guard.hpp"
#include "infer/asrank.hpp"
#include "test_support.hpp"

namespace asrel::core {
namespace {

using asn::Asn;

infer::Inference ground_truth_inference(const topo::World& world) {
  infer::Inference inference;
  for (const auto& edge : world.graph.edges()) {
    infer::InferredRel rel;
    rel.rel = edge.rel;
    rel.provider = world.graph.asn_of(edge.u);
    inference.set(val::AsLink{world.graph.asn_of(edge.u),
                              world.graph.asn_of(edge.v)},
                  rel);
  }
  return inference;
}

// ------------------------------------------------------------ spoof guard --

TEST(SpoofGuard, GroundTruthFiltersNeverFlagLegitimateTraffic) {
  const auto& scenario = test::shared_scenario();
  const SpoofGuard guard{scenario,
                         ground_truth_inference(scenario.world())};
  const auto stats = guard.evaluate(/*ixp_id=*/-1);
  ASSERT_GT(stats.legitimate_total, 0u);
  EXPECT_EQ(stats.legitimate_flagged, 0u);
  EXPECT_GT(stats.detection_rate(), 0.95);
}

TEST(SpoofGuard, InferredFiltersFlagSomeLegitimateTraffic) {
  // §2's warning: relationship errors turn into false spoofing flags.
  const auto& scenario = test::shared_scenario();
  const auto asrank = infer::run_asrank(scenario.observed());
  const SpoofGuard guard{scenario, asrank.inference};
  const auto stats = guard.evaluate(/*ixp_id=*/-1);
  EXPECT_GT(stats.legitimate_flagged, 0u);
  EXPECT_LT(stats.false_flag_rate(), 0.5);
  EXPECT_GT(stats.detection_rate(), 0.9);
}

TEST(SpoofGuard, WouldFlagIsConsistentWithFilters) {
  const auto& scenario = test::shared_scenario();
  const SpoofGuard guard{scenario,
                         ground_truth_inference(scenario.world())};
  // A member never flags itself under ground-truth filters.
  const auto& ixps = scenario.world().ixps;
  ASSERT_FALSE(ixps.empty());
  ASSERT_FALSE(ixps.front().members.empty());
  const Asn member = ixps.front().members.front();
  EXPECT_FALSE(guard.would_flag(member, member));
  // Unknown members flag everything.
  EXPECT_TRUE(guard.would_flag(Asn{4999999}, member));
}

TEST(SpoofGuard, RegionBreakdownCoversAllIxpRegions) {
  const auto& scenario = test::shared_scenario();
  const auto asrank = infer::run_asrank(scenario.observed());
  const SpoofGuard guard{scenario, asrank.inference};
  const auto by_region = guard.evaluate_by_region();
  std::size_t regions_with_ixps = 0;
  std::unordered_set<int> seen;
  for (const auto& ixp : scenario.world().ixps) {
    if (seen.insert(static_cast<int>(ixp.region)).second) {
      ++regions_with_ixps;
    }
  }
  EXPECT_EQ(by_region.size(), regions_with_ixps);
}

// --------------------------------------------------------------- peerlock --

TEST(Peerlock, GroundTruthBlocksAllLeaks) {
  const auto& scenario = test::shared_scenario();
  const auto report = simulate_route_leaks(
      scenario, lookup_from_ground_truth(scenario.world()), 500);
  ASSERT_GT(report.leaks_simulated, 100u);
  EXPECT_EQ(report.blocked, report.leaks_simulated);
}

TEST(Peerlock, ValidationOnlyLeavesMostSessionsOpen) {
  // §7: passive validation data covers too few links to protect much.
  const auto& scenario = test::shared_scenario();
  const auto truth = simulate_route_leaks(
      scenario, lookup_from_ground_truth(scenario.world()), 500);
  const auto validated = simulate_route_leaks(
      scenario, lookup_from_validation(scenario.validation()), 500);
  EXPECT_LT(validated.block_rate(), 0.8 * truth.block_rate());
  EXPECT_GT(validated.passed_unknown_session, 0u);
}

TEST(Peerlock, InferenceBlocksMostLeaks) {
  const auto& scenario = test::shared_scenario();
  const auto asrank = infer::run_asrank(scenario.observed());
  const auto report = simulate_route_leaks(
      scenario, lookup_from_inference(asrank.inference), 500);
  EXPECT_GT(report.block_rate(), 0.8);
}

TEST(Peerlock, PolicyPartitionsNeighborSessions) {
  const auto& scenario = test::shared_scenario();
  const auto& world = scenario.world();
  const Asn owner = world.clique.front();
  const auto policy = build_peerlock_policy(
      world, lookup_from_ground_truth(world), owner);
  const auto node = world.graph.node_of(owner);
  ASSERT_TRUE(node);
  // Every neighbor lands in exactly one bucket; with ground truth there are
  // no unknowns.
  EXPECT_EQ(policy.filtered_sessions.size() + policy.unknown_sessions.size(),
            world.graph.neighbors(*node).size());
  EXPECT_TRUE(policy.unknown_sessions.empty());
  // A Tier-1 has no providers: every session is filtered.
  EXPECT_EQ(policy.filtered_sessions.size(),
            world.graph.neighbors(*node).size());
}

TEST(Peerlock, ConfigRendersFiltersAndProtectedSet) {
  const auto& scenario = test::shared_scenario();
  const auto& world = scenario.world();
  const Asn owner = world.clique.front();
  const auto policy = build_peerlock_policy(
      world, lookup_from_ground_truth(world), owner);
  const auto config = render_peerlock_config(world, policy);
  EXPECT_NE(config.find("PROTECTED-T1"), std::string::npos);
  EXPECT_NE(config.find("filter-list"), std::string::npos);
  EXPECT_NE(config.find(std::to_string(world.clique.back().value())),
            std::string::npos);
}

TEST(Peerlock, LeakSimulationDeterministic) {
  const auto& scenario = test::shared_scenario();
  const auto a = simulate_route_leaks(
      scenario, lookup_from_ground_truth(scenario.world()), 300, 7);
  const auto b = simulate_route_leaks(
      scenario, lookup_from_ground_truth(scenario.world()), 300, 7);
  EXPECT_EQ(a.leaks_simulated, b.leaks_simulated);
  EXPECT_EQ(a.blocked, b.blocked);
}

}  // namespace
}  // namespace asrel::core

#include "core/v6_world.hpp"

namespace asrel::core {
namespace {

TEST(V6World, SubsetsTheV4World) {
  const auto& scenario = test::shared_scenario();
  const auto v6 = build_v6_world(scenario.world());
  EXPECT_LT(v6.graph.node_count(), scenario.world().graph.node_count());
  EXPECT_GT(v6.graph.node_count(), scenario.world().graph.node_count() / 4);
  EXPECT_LT(v6.graph.edge_count(), scenario.world().graph.edge_count());
  // Every v6 edge exists in v4 with the same relationship.
  for (const auto& edge : v6.graph.edges()) {
    const auto v4_edge = scenario.world().graph.find_edge(
        v6.graph.asn_of(edge.u), v6.graph.asn_of(edge.v));
    ASSERT_TRUE(v4_edge);
    EXPECT_EQ(scenario.world().graph.edge(*v4_edge).rel, edge.rel);
  }
}

TEST(V6World, CliqueAdoptsFully) {
  const auto& scenario = test::shared_scenario();
  const auto v6 = build_v6_world(scenario.world());
  EXPECT_EQ(v6.clique.size(), scenario.world().clique.size());
}

TEST(V6World, Deterministic) {
  const auto& scenario = test::shared_scenario();
  const auto a = build_v6_world(scenario.world());
  const auto b = build_v6_world(scenario.world());
  EXPECT_EQ(a.graph.node_count(), b.graph.node_count());
  EXPECT_EQ(a.graph.edge_count(), b.graph.edge_count());
}

TEST(V6World, ScarceRegionsAdoptMore) {
  const auto& scenario = test::shared_scenario();
  const auto& world = scenario.world();
  const V6Params params;
  std::array<int, 5> capable{};
  std::array<int, 5> total{};
  for (const auto asn : world.graph.nodes()) {
    const auto& attrs = world.attrs.at(asn);
    if (attrs.tier != topo::Tier::kStub) continue;  // same base rate
    const auto idx = static_cast<std::size_t>(attrs.region);
    ++total[idx];
    if (v6_capable(world, asn, params)) ++capable[idx];
  }
  const auto rate = [&](rir::Region region) {
    const auto idx = static_cast<std::size_t>(region);
    return total[idx] == 0 ? 0.0
                           : static_cast<double>(capable[idx]) / total[idx];
  };
  EXPECT_GT(rate(rir::Region::kLacnic), rate(rir::Region::kRipe));
  EXPECT_GT(rate(rir::Region::kApnic), rate(rir::Region::kArin));
}

TEST(V6World, CongruenceOfIdenticalInferencesIsPerfect) {
  infer::Inference inference;
  infer::InferredRel rel;
  rel.rel = topo::RelType::kP2P;
  inference.set(val::AsLink{asn::Asn{1}, asn::Asn{2}}, rel);
  const auto report = compare_stacks(inference, inference);
  EXPECT_EQ(report.shared_links, 1u);
  EXPECT_DOUBLE_EQ(report.congruence(), 1.0);
}

}  // namespace
}  // namespace asrel::core
