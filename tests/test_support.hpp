// Shared test scaffolding: cached small scenarios (building one takes a
// second or two; most tests can share a single immutable instance) and
// hand-built micro-worlds with known-by-construction properties.
#pragma once

#include <memory>

#include "core/scenario.hpp"
#include "testing/canonical.hpp"

namespace asrel::test {

/// A small (but fully wired) scenario shared by all tests in a binary.
/// Never mutate it — build a private one with custom_scenario() instead.
/// Uses the canonical parameters so the suite exercises exactly the world
/// the golden files under tests/golden/ pin.
inline const core::Scenario& shared_scenario() {
  static const std::unique_ptr<core::Scenario> scenario = [] {
    return core::Scenario::build(testing::canonical_scenario_params());
  }();
  return *scenario;
}

/// A tiny hand-built world with an exactly known topology:
///
///        T1a ---- T1b ---- T1c   (clique, full P2P mesh)
///        +--+       +
///      L1    L2     L3          (large transits, customers of the T1s)
///     +--+     +   +--+
///    M1   M2    M3     M4       (mid transits; M1--M2 peer at an "IXP")
///    |     |    |       |
///   S1    S2   S3      S4       (stubs)
///
/// plus: L2 is a *partial-transit* customer of T1a (customers-only, tagged
/// via community), S4 peers with T1b (the anycast-stub pattern), and
/// M3--M4 is a hybrid link (P2P primary, P2C secondary).
struct MicroWorld {
  topo::World world;
  asn::Asn t1a{100}, t1b{101}, t1c{102};
  asn::Asn l1{200}, l2{201}, l3{202};
  asn::Asn m1{300}, m2{301}, m3{302}, m4{303};
  asn::Asn s1{400}, s2{401}, s3{402}, s4{403};
};

inline MicroWorld micro_world() {
  MicroWorld mw;
  auto& graph = mw.world.graph;
  auto& attrs = mw.world.attrs;
  using topo::RelType;
  using topo::Tier;

  const auto set = [&](asn::Asn asn, Tier tier) {
    auto& a = attrs[asn];
    a.tier = tier;
    a.region = rir::Region::kArin;
    a.documents_communities = true;
    graph.add_node(asn);
  };
  set(mw.t1a, Tier::kClique);
  set(mw.t1b, Tier::kClique);
  set(mw.t1c, Tier::kClique);  // third member: triplet witness for the
                               // multihomed legs of partial-transit customers
  mw.world.clique = {mw.t1a, mw.t1b, mw.t1c};
  mw.world.cogent_like = mw.t1a;
  set(mw.l1, Tier::kLargeTransit);
  set(mw.l2, Tier::kLargeTransit);
  set(mw.l3, Tier::kLargeTransit);
  set(mw.m1, Tier::kMidTransit);
  set(mw.m2, Tier::kMidTransit);
  set(mw.m3, Tier::kMidTransit);
  set(mw.m4, Tier::kMidTransit);
  set(mw.s1, Tier::kStub);
  set(mw.s2, Tier::kStub);
  set(mw.s3, Tier::kStub);
  set(mw.s4, Tier::kStub);

  graph.add_edge(mw.t1a, mw.t1b, RelType::kP2P);
  graph.add_edge(mw.t1a, mw.t1c, RelType::kP2P);
  graph.add_edge(mw.t1b, mw.t1c, RelType::kP2P);
  graph.add_edge(mw.t1a, mw.l1, RelType::kP2C);
  // L2: community-tagged customers-only partial transit under T1a.
  {
    topo::Edge proto;
    proto.rel = RelType::kP2C;
    proto.scope = topo::ExportScope::kCustomersOnly;
    proto.scope_via_community = true;
    graph.add_edge(mw.t1a, mw.l2, proto);
  }
  graph.add_edge(mw.t1b, mw.l3, RelType::kP2C);
  graph.add_edge(mw.t1b, mw.l2, RelType::kP2C);  // L2 is multihomed
  graph.add_edge(mw.l1, mw.m1, RelType::kP2C);
  graph.add_edge(mw.l1, mw.m2, RelType::kP2C);
  graph.add_edge(mw.l2, mw.m3, RelType::kP2C);
  graph.add_edge(mw.l3, mw.m3, RelType::kP2C);
  graph.add_edge(mw.l3, mw.m4, RelType::kP2C);
  graph.add_edge(mw.m1, mw.m2, RelType::kP2P);  // IXP peering
  {
    topo::Edge proto;  // hybrid: peer at one PoP, P2C at another
    proto.rel = RelType::kP2P;
    proto.hybrid_rel = RelType::kP2C;
    graph.add_edge(mw.m3, mw.m4, proto);
  }
  graph.add_edge(mw.m1, mw.s1, RelType::kP2C);
  graph.add_edge(mw.m2, mw.s2, RelType::kP2C);
  graph.add_edge(mw.m3, mw.s3, RelType::kP2C);
  graph.add_edge(mw.m4, mw.s4, RelType::kP2C);
  graph.add_edge(mw.s4, mw.t1b, RelType::kP2P);  // anycast-style stub peering
  return mw;
}

}  // namespace asrel::test
