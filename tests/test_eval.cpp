#include <gtest/gtest.h>

#include <cmath>

#include "eval/coverage.hpp"
#include "eval/heatmap.hpp"
#include "eval/link_class.hpp"
#include "eval/metrics.hpp"
#include "eval/report.hpp"
#include "eval/sampling.hpp"
#include "test_support.hpp"

namespace asrel::eval {
namespace {

using asn::Asn;
using val::AsLink;

// ---------------------------------------------------------------- metrics --

TEST(ConfusionMatrix, BasicRates) {
  const ConfusionMatrix m{.tp = 8, .fp = 2, .tn = 85, .fn = 5};
  EXPECT_DOUBLE_EQ(m.ppv(), 0.8);
  EXPECT_NEAR(m.tpr(), 8.0 / 13.0, 1e-12);
  EXPECT_NEAR(m.tnr(), 85.0 / 87.0, 1e-12);
  EXPECT_EQ(m.total(), 100u);
}

TEST(ConfusionMatrix, PerfectClassifier) {
  const ConfusionMatrix m{.tp = 10, .fp = 0, .tn = 90, .fn = 0};
  EXPECT_DOUBLE_EQ(m.ppv(), 1.0);
  EXPECT_DOUBLE_EQ(m.tpr(), 1.0);
  EXPECT_DOUBLE_EQ(m.mcc(), 1.0);
  EXPECT_DOUBLE_EQ(m.f1(), 1.0);
  EXPECT_DOUBLE_EQ(m.fowlkes_mallows(), 1.0);
}

TEST(ConfusionMatrix, InvertedClassifierHasNegativeMcc) {
  const ConfusionMatrix m{.tp = 0, .fp = 90, .tn = 0, .fn = 10};
  EXPECT_DOUBLE_EQ(m.mcc(), -1.0);
}

TEST(ConfusionMatrix, EmptyMarginalsGiveZero) {
  const ConfusionMatrix nothing{};
  EXPECT_DOUBLE_EQ(nothing.ppv(), 0.0);
  EXPECT_DOUBLE_EQ(nothing.mcc(), 0.0);
  const ConfusionMatrix no_positives{.tp = 0, .fp = 0, .tn = 50, .fn = 0};
  EXPECT_DOUBLE_EQ(no_positives.mcc(), 0.0);
}

TEST(ConfusionMatrix, KnownMccValue) {
  // Chicco et al. style example: tp=90, fp=4, tn=1, fn=5.
  const ConfusionMatrix m{.tp = 90, .fp = 4, .tn = 1, .fn = 5};
  const double expected =
      (90.0 * 1 - 4.0 * 5) /
      std::sqrt((90.0 + 4) * (90.0 + 5) * (1.0 + 4) * (1.0 + 5));
  EXPECT_NEAR(m.mcc(), expected, 1e-12);
}

TEST(ConfusionMatrix, MccInvariantUnderClassSwap) {
  const ConfusionMatrix m{.tp = 37, .fp = 9, .tn = 61, .fn = 13};
  EXPECT_NEAR(m.mcc(), m.inverted().mcc(), 1e-12);
}

TEST(ConfusionMatrix, InvertedSwapsRoles) {
  const ConfusionMatrix m{.tp = 1, .fp = 2, .tn = 3, .fn = 4};
  const auto inv = m.inverted();
  EXPECT_EQ(inv.tp, 3u);
  EXPECT_EQ(inv.fp, 4u);
  EXPECT_EQ(inv.tn, 1u);
  EXPECT_EQ(inv.fn, 2u);
}

TEST(ConfusionMatrix, Accumulation) {
  ConfusionMatrix m{.tp = 1, .fp = 1, .tn = 1, .fn = 1};
  m += ConfusionMatrix{.tp = 2, .fp = 0, .tn = 0, .fn = 0};
  EXPECT_EQ(m.tp, 3u);
  EXPECT_EQ(m.total(), 6u);
}

// ------------------------------------------------------------ link classes --

TEST(LinkClass, RegionalNaming) {
  const rir::RegionMapper mapper;  // IANA bootstrap
  // 8192 RIPE, 1 ARIN, 27000 LACNIC.
  EXPECT_EQ(regional_class(mapper, AsLink{Asn{8192}, Asn{8193}}), "R°");
  EXPECT_EQ(regional_class(mapper, AsLink{Asn{1}, Asn{8192}}), "AR-R");
  EXPECT_EQ(regional_class(mapper, AsLink{Asn{1}, Asn{27000}}), "AR-L");
  EXPECT_EQ(regional_class(mapper, AsLink{Asn{27000}, Asn{8192}}), "L-R");
  // Reserved endpoint -> unknown class.
  EXPECT_EQ(regional_class(mapper, AsLink{Asn{1}, asn::kAsTrans}), "?");
}

TEST(LinkClass, TopologicalNamingAndOrder) {
  const TopoClassifier classifier{
      [](Asn asn) { return asn == Asn{1}; },          // hypergiant
      [](Asn asn) { return asn == Asn{2}; },          // tier-1
      [](Asn asn) { return asn.value() >= 10; }};     // transit
  EXPECT_EQ(classifier.class_of(AsLink{Asn{5}, Asn{6}}), "S°");
  EXPECT_EQ(classifier.class_of(AsLink{Asn{5}, Asn{10}}), "S-TR");
  EXPECT_EQ(classifier.class_of(AsLink{Asn{10}, Asn{11}}), "TR°");
  EXPECT_EQ(classifier.class_of(AsLink{Asn{2}, Asn{10}}), "T1-TR");
  EXPECT_EQ(classifier.class_of(AsLink{Asn{2}, Asn{5}}), "S-T1");
  EXPECT_EQ(classifier.class_of(AsLink{Asn{1}, Asn{10}}), "H-TR");
  EXPECT_EQ(classifier.class_of(AsLink{Asn{1}, Asn{5}}), "H-S");
  EXPECT_EQ(classifier.class_of(AsLink{Asn{1}, Asn{2}}), "H-T1");
}

TEST(LinkClass, HypergiantPrecedesTier1) {
  const TopoClassifier classifier{[](Asn) { return true; },
                                  [](Asn) { return true; },
                                  [](Asn) { return true; }};
  EXPECT_EQ(classifier.category_of(Asn{1}), TopoCategory::kHypergiant);
}

TEST(LinkClass, FromWorldMatchesAttributes) {
  const auto& scenario = test::shared_scenario();
  const auto classifier = TopoClassifier::from_world(scenario.world());
  for (const Asn member : scenario.world().clique) {
    EXPECT_EQ(classifier.category_of(member), TopoCategory::kTier1);
  }
  for (const Asn giant : scenario.world().hypergiants) {
    EXPECT_EQ(classifier.category_of(giant), TopoCategory::kHypergiant);
  }
}

// ---------------------------------------------------------------- coverage --

TEST(Coverage, CountsAndShares) {
  const std::vector<AsLink> inferred{
      {Asn{1}, Asn{8192}}, {Asn{1}, Asn{2}}, {Asn{2}, Asn{3}},
      {Asn{8192}, Asn{8193}}};
  std::vector<val::CleanLabel> validated(1);
  validated[0].link = AsLink{Asn{1}, Asn{2}};
  validated[0].rel = topo::RelType::kP2P;
  const rir::RegionMapper mapper;
  const auto report = coverage_by_class(
      inferred, validated,
      [&](const AsLink& link) { return regional_class(mapper, link); });
  EXPECT_EQ(report.total_inferred, 4u);
  EXPECT_EQ(report.total_validated, 1u);
  ASSERT_FALSE(report.rows.empty());
  // AR° holds 2 of 4 links and 1 of them is validated.
  EXPECT_EQ(report.rows[0].name, "AR°");
  EXPECT_DOUBLE_EQ(report.rows[0].share, 0.5);
  EXPECT_DOUBLE_EQ(report.rows[0].coverage, 0.5);
}

TEST(Coverage, ValidationOutsideInferredIgnored) {
  const std::vector<AsLink> inferred{{Asn{1}, Asn{2}}};
  std::vector<val::CleanLabel> validated(1);
  validated[0].link = AsLink{Asn{5}, Asn{6}};  // not inferred
  const rir::RegionMapper mapper;
  const auto report = coverage_by_class(
      inferred, validated,
      [&](const AsLink& link) { return regional_class(mapper, link); });
  EXPECT_EQ(report.total_validated, 0u);
}

// ----------------------------------------------------------------- heatmap --

TEST(Heatmap, BinsByLargerAndSmaller) {
  Heatmap map{HeatmapSpec{.x_cap = 100, .y_cap = 10, .x_bins = 10,
                          .y_bins = 10}};
  map.add(5, 95);   // larger 95 -> x bin 9; smaller 5 -> y bin 5
  map.add(95, 5);   // symmetric
  EXPECT_EQ(map.count(9, 5), 2u);
  EXPECT_EQ(map.total(), 2u);
  EXPECT_DOUBLE_EQ(map.fraction(9, 5), 1.0);
}

TEST(Heatmap, CapsCatchAll) {
  Heatmap map{HeatmapSpec{.x_cap = 100, .y_cap = 10, .x_bins = 10,
                          .y_bins = 10}};
  map.add(5000, 700);  // both beyond cap: last bins
  EXPECT_EQ(map.count(9, 9), 1u);
}

TEST(Heatmap, BottomLeftMass) {
  Heatmap map{HeatmapSpec{.x_cap = 100, .y_cap = 100, .x_bins = 10,
                          .y_bins = 10}};
  map.add(1, 1);
  map.add(99, 99);
  EXPECT_DOUBLE_EQ(map.bottom_left_mass(0.25), 0.5);
}

TEST(Heatmap, CsvHasHeaderAndRows) {
  Heatmap map{HeatmapSpec{.x_cap = 10, .y_cap = 10, .x_bins = 2,
                          .y_bins = 2}};
  map.add(1, 1);
  const auto csv = map.to_csv();
  EXPECT_NE(csv.find("x_low,y_low,fraction"), std::string::npos);
  EXPECT_NE(csv.find("0,0,1.000000"), std::string::npos);
}

TEST(Heatmap, BuildFromLinks) {
  const std::vector<AsLink> links{{Asn{1}, Asn{2}}, {Asn{2}, Asn{3}}};
  const auto map = build_link_heatmap(
      links, [](Asn asn) { return asn.value() * 10; },
      HeatmapSpec{.x_cap = 100, .y_cap = 50, .x_bins = 10, .y_bins = 5});
  EXPECT_EQ(map.total(), 2u);
}

// ------------------------------------------------------------------ report --

std::vector<EvalPair> synthetic_pairs() {
  std::vector<EvalPair> pairs;
  const auto add = [&](std::uint32_t a, std::uint32_t b, bool val_p2p,
                       bool inf_p2p, std::uint32_t provider = 0) {
    EvalPair pair;
    pair.link = AsLink{Asn{a}, Asn{b}};
    pair.validated = val_p2p ? topo::RelType::kP2P : topo::RelType::kP2C;
    pair.validated_provider = Asn{provider ? provider : a};
    pair.inferred = inf_p2p ? topo::RelType::kP2P : topo::RelType::kP2C;
    pair.inferred_provider = Asn{provider ? provider : a};
    pairs.push_back(pair);
  };
  for (int i = 0; i < 8; ++i) add(100 + i, 200 + i, true, true);    // tp
  for (int i = 0; i < 2; ++i) add(300 + i, 400 + i, false, true);   // fp
  for (int i = 0; i < 1; ++i) add(500 + i, 600 + i, true, false);   // fn
  for (int i = 0; i < 9; ++i) add(700 + i, 800 + i, false, false);  // tn
  return pairs;
}

TEST(Report, ClassMetricsFromPairs) {
  const auto metrics = compute_class_metrics(synthetic_pairs(), "Total°");
  EXPECT_EQ(metrics.p2p.tp, 8u);
  EXPECT_EQ(metrics.p2p.fp, 2u);
  EXPECT_EQ(metrics.p2p.fn, 1u);
  EXPECT_EQ(metrics.p2p.tn, 9u);
  EXPECT_EQ(metrics.p2p_links, 9u);
  EXPECT_EQ(metrics.p2c_links, 11u);
  EXPECT_DOUBLE_EQ(metrics.p2p.ppv(), 0.8);
  // P2C-positive matrix is the inversion.
  EXPECT_EQ(metrics.p2c.tp, 9u);
  EXPECT_EQ(metrics.p2c.fp, 1u);
  EXPECT_DOUBLE_EQ(metrics.orientation_accuracy, 1.0);
}

TEST(Report, OrientationMismatchTracked) {
  std::vector<EvalPair> pairs(1);
  pairs[0].link = AsLink{Asn{1}, Asn{2}};
  pairs[0].validated = topo::RelType::kP2C;
  pairs[0].validated_provider = Asn{1};
  pairs[0].inferred = topo::RelType::kP2C;
  pairs[0].inferred_provider = Asn{2};  // flipped
  const auto metrics = compute_class_metrics(pairs, "x");
  EXPECT_DOUBLE_EQ(metrics.orientation_accuracy, 0.0);
}

TEST(Report, TableFiltersSmallClasses) {
  const auto pairs = synthetic_pairs();
  const auto table = build_validation_table(
      pairs, [](const AsLink&) { return std::string{"X°"}; }, 5);
  ASSERT_EQ(table.rows.size(), 1u);
  EXPECT_EQ(table.rows[0].name, "X°");
  const auto empty_table = build_validation_table(
      pairs, [](const AsLink&) { return std::string{"X°"}; }, 100);
  EXPECT_TRUE(empty_table.rows.empty());
}

TEST(Report, RenderingContainsHeaderAndRows) {
  const auto pairs = synthetic_pairs();
  const auto table = build_validation_table(
      pairs, [](const AsLink&) { return std::string{"X°"}; }, 5);
  const auto text = render_validation_table(table, /*color=*/false);
  EXPECT_NE(text.find("PPV_P"), std::string::npos);
  EXPECT_NE(text.find("Total°"), std::string::npos);
  EXPECT_NE(text.find("X°"), std::string::npos);
  EXPECT_EQ(text.find('\x1b'), std::string::npos);  // no ANSI without color
}

TEST(Report, ColorRenderingMarksBigDrops) {
  auto pairs = synthetic_pairs();
  // A class with terrible P2P precision.
  std::vector<EvalPair> bad;
  for (int i = 0; i < 6; ++i) {
    EvalPair pair;
    pair.link = AsLink{Asn{9000u + i}, Asn{9100u + i}};
    pair.validated = topo::RelType::kP2C;
    pair.validated_provider = pair.link.a;
    pair.inferred = topo::RelType::kP2P;
    bad.push_back(pair);
  }
  pairs.insert(pairs.end(), bad.begin(), bad.end());
  const auto table = build_validation_table(
      pairs,
      [&](const AsLink& link) {
        return link.a.value() >= 9000 ? std::string{"BAD"} : std::string{"OK"};
      },
      5);
  const auto text = render_validation_table(table, /*color=*/true);
  EXPECT_NE(text.find("\x1b[31m"), std::string::npos);  // red somewhere
}

TEST(Report, MakeEvalPairsIntersects) {
  const auto& scenario = test::shared_scenario();
  infer::Inference inference;
  // Label only one validated link.
  ASSERT_FALSE(scenario.validation().empty());
  const auto& first = scenario.validation().front();
  infer::InferredRel rel;
  rel.rel = topo::RelType::kP2P;
  inference.set(first.link, rel);
  const auto pairs = make_eval_pairs(scenario.validation(), inference);
  EXPECT_EQ(pairs.size(), 1u);
  EXPECT_EQ(pairs[0].link, first.link);
}

// ---------------------------------------------------------------- sampling --

TEST(Sampling, FullSampleMatchesExactMetrics) {
  const auto pairs = synthetic_pairs();
  SamplingParams params;
  params.min_percent = 100;
  params.max_percent = 100;
  params.repetitions = 5;
  const auto result = run_sampling_experiment(pairs, params);
  ASSERT_EQ(result.points.size(), 1u);
  const auto exact = compute_class_metrics(pairs, "x");
  EXPECT_NEAR(result.points[0].ppv_p_median, exact.p2p.ppv(), 1e-12);
  EXPECT_NEAR(result.points[0].tpr_p_median, exact.p2p.tpr(), 1e-12);
  EXPECT_NEAR(result.points[0].mcc_median, exact.mcc, 1e-12);
}

TEST(Sampling, QuartilesAreOrdered) {
  const auto pairs = synthetic_pairs();
  SamplingParams params;
  params.min_percent = 50;
  params.max_percent = 90;
  params.step = 10;
  params.repetitions = 30;
  const auto result = run_sampling_experiment(pairs, params);
  for (const auto& point : result.points) {
    EXPECT_LE(point.ppv_p_q1, point.ppv_p_median);
    EXPECT_LE(point.ppv_p_median, point.ppv_p_q3);
    EXPECT_LE(point.mcc_q1, point.mcc_q3);
  }
}

TEST(Sampling, DeterministicForSeed) {
  const auto pairs = synthetic_pairs();
  SamplingParams params;
  params.repetitions = 10;
  const auto a = run_sampling_experiment(pairs, params);
  const auto b = run_sampling_experiment(pairs, params);
  ASSERT_EQ(a.points.size(), b.points.size());
  for (std::size_t i = 0; i < a.points.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.points[i].mcc_median, b.points[i].mcc_median);
  }
}

TEST(Sampling, CsvContainsAllPoints) {
  const auto pairs = synthetic_pairs();
  SamplingParams params;
  params.min_percent = 50;
  params.max_percent = 52;
  params.repetitions = 3;
  const auto result = run_sampling_experiment(pairs, params);
  const auto csv = to_csv(result);
  EXPECT_NE(csv.find("percent,"), std::string::npos);
  EXPECT_NE(csv.find("\n50,"), std::string::npos);
  EXPECT_NE(csv.find("\n52,"), std::string::npos);
}

TEST(Sampling, EmptyInputYieldsEmptyResult) {
  const auto result = run_sampling_experiment({}, {});
  EXPECT_TRUE(result.points.empty());
}

}  // namespace
}  // namespace asrel::eval
