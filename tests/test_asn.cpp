#include "asn/asn.hpp"

#include <gtest/gtest.h>

namespace asrel::asn {
namespace {

TEST(Asn, DefaultConstructsToZero) { EXPECT_EQ(Asn{}.value(), 0u); }

TEST(Asn, ComparesByValue) {
  EXPECT_LT(Asn{1}, Asn{2});
  EXPECT_EQ(Asn{3356}, Asn{3356});
  EXPECT_NE(Asn{3356}, Asn{174});
}

TEST(Asn, SixteenBitBoundary) {
  EXPECT_TRUE(Asn{65535}.is_16bit());
  EXPECT_FALSE(Asn{65536}.is_16bit());
}

TEST(Asn, HashesDistinctValues) {
  const std::hash<Asn> hash;
  EXPECT_NE(hash(Asn{1}), hash(Asn{2}));
}

struct CategoryCase {
  std::uint32_t value;
  AsnCategory expected;
};

class AsnCategoryTest : public ::testing::TestWithParam<CategoryCase> {};

TEST_P(AsnCategoryTest, Categorizes) {
  EXPECT_EQ(category(Asn{GetParam().value}), GetParam().expected);
}

INSTANTIATE_TEST_SUITE_P(
    IanaRegistry, AsnCategoryTest,
    ::testing::Values(
        CategoryCase{0, AsnCategory::kZero},
        CategoryCase{1, AsnCategory::kPublic},
        CategoryCase{3356, AsnCategory::kPublic},
        CategoryCase{23455, AsnCategory::kPublic},
        CategoryCase{23456, AsnCategory::kAsTrans},
        CategoryCase{23457, AsnCategory::kPublic},
        CategoryCase{64495, AsnCategory::kPublic},
        CategoryCase{64496, AsnCategory::kDocumentation},
        CategoryCase{64511, AsnCategory::kDocumentation},
        CategoryCase{64512, AsnCategory::kPrivateUse},
        CategoryCase{65534, AsnCategory::kPrivateUse},
        CategoryCase{65535, AsnCategory::kLast16},
        CategoryCase{65536, AsnCategory::kDocumentation},
        CategoryCase{65551, AsnCategory::kDocumentation},
        CategoryCase{65552, AsnCategory::kIanaReserved},
        CategoryCase{131071, AsnCategory::kIanaReserved},
        CategoryCase{131072, AsnCategory::kPublic},
        CategoryCase{4199999999u, AsnCategory::kPublic},
        CategoryCase{4200000000u, AsnCategory::kPrivateUse},
        CategoryCase{4294967294u, AsnCategory::kPrivateUse},
        CategoryCase{4294967295u, AsnCategory::kLast32}));

TEST(AsnReserved, AsTransIsReserved) {
  EXPECT_TRUE(is_reserved(kAsTrans));
  EXPECT_TRUE(is_as_trans(kAsTrans));
  EXPECT_FALSE(is_as_trans(Asn{23457}));
}

TEST(AsnReserved, PublicIsNotReserved) {
  EXPECT_FALSE(is_reserved(Asn{3356}));
  EXPECT_FALSE(is_reserved(Asn{196608}));
}

TEST(AsnReserved, PrivateAndDocumentationHelpers) {
  EXPECT_TRUE(is_private_use(Asn{64512}));
  EXPECT_TRUE(is_private_use(Asn{4200000000u}));
  EXPECT_FALSE(is_private_use(Asn{64496}));
  EXPECT_TRUE(is_documentation(Asn{64500}));
  EXPECT_TRUE(is_documentation(Asn{65540}));
}

TEST(AsnRange, ContainsAndSize) {
  constexpr AsnRange range{Asn{100}, Asn{199}};
  EXPECT_TRUE(range.contains(Asn{100}));
  EXPECT_TRUE(range.contains(Asn{150}));
  EXPECT_TRUE(range.contains(Asn{199}));
  EXPECT_FALSE(range.contains(Asn{99}));
  EXPECT_FALSE(range.contains(Asn{200}));
  EXPECT_EQ(range.size(), 100u);
}

TEST(AsnRange, SingleElementRange) {
  constexpr AsnRange range{Asn{5}, Asn{5}};
  EXPECT_TRUE(range.contains(Asn{5}));
  EXPECT_EQ(range.size(), 1u);
}

TEST(AsnFormat, ToStringPlain) {
  EXPECT_EQ(to_string(Asn{0}), "0");
  EXPECT_EQ(to_string(Asn{3356}), "3356");
  EXPECT_EQ(to_string(Asn{4294967295u}), "4294967295");
}

TEST(AsnFormat, ToAsdot) {
  EXPECT_EQ(to_asdot(Asn{3356}), "3356");       // 16-bit stays plain
  EXPECT_EQ(to_asdot(Asn{65536}), "1.0");
  EXPECT_EQ(to_asdot(Asn{65537}), "1.1");
  EXPECT_EQ(to_asdot(Asn{196608}), "3.0");
  EXPECT_EQ(to_asdot(Asn{4294967295u}), "65535.65535");
}

TEST(AsnParse, PlainDecimal) {
  EXPECT_EQ(parse_asn("3356"), Asn{3356});
  EXPECT_EQ(parse_asn("0"), Asn{0});
  EXPECT_EQ(parse_asn("4294967295"), Asn{4294967295u});
}

TEST(AsnParse, AsPrefixAnyCase) {
  EXPECT_EQ(parse_asn("AS3356"), Asn{3356});
  EXPECT_EQ(parse_asn("as3356"), Asn{3356});
  EXPECT_EQ(parse_asn("As3356"), Asn{3356});
  EXPECT_EQ(parse_asn("aS3356"), Asn{3356});
}

TEST(AsnParse, Asdot) {
  EXPECT_EQ(parse_asn("1.0"), Asn{65536});
  EXPECT_EQ(parse_asn("AS1.1"), Asn{65537});
  EXPECT_EQ(parse_asn("65535.65535"), Asn{4294967295u});
}

TEST(AsnParse, RejectsGarbage) {
  EXPECT_FALSE(parse_asn(""));
  EXPECT_FALSE(parse_asn("AS"));
  EXPECT_FALSE(parse_asn("abc"));
  EXPECT_FALSE(parse_asn("-1"));
  EXPECT_FALSE(parse_asn("4294967296"));   // overflow
  EXPECT_FALSE(parse_asn("1.65536"));      // asdot part overflow
  EXPECT_FALSE(parse_asn("65536.0"));
  EXPECT_FALSE(parse_asn("1.2.3"));
  EXPECT_FALSE(parse_asn("3356 "));
  EXPECT_FALSE(parse_asn("0x10"));
}

class AsnRoundTripTest : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(AsnRoundTripTest, PlainRoundTrips) {
  const Asn asn{GetParam()};
  EXPECT_EQ(parse_asn(to_string(asn)), asn);
}

TEST_P(AsnRoundTripTest, AsdotRoundTrips) {
  const Asn asn{GetParam()};
  EXPECT_EQ(parse_asn(to_asdot(asn)), asn);
}

INSTANTIATE_TEST_SUITE_P(Sweep, AsnRoundTripTest,
                         ::testing::Values(0u, 1u, 174u, 3356u, 23456u,
                                           65535u, 65536u, 131072u, 196613u,
                                           4200000000u, 4294967295u));

}  // namespace
}  // namespace asrel::asn
