// Chaos suite: deterministic fault injection against the serving stack.
//
// Every experiment here is driven by the seeded FaultInjector
// (serve/fault_inject.*), so a failing run reproduces byte-for-byte from
// its seed — set ASREL_CHAOS_SEED to replay the schedule CI used. The
// suite covers the three robustness pillars of the serving layer:
//
//   * hot reload — RCU engine swaps under live traffic lose zero
//     in-flight requests, and torn snapshot writes can never corrupt the
//     file the daemon reloads from;
//   * overload — admission control sheds with 503 + Retry-After while
//     admitted requests still complete in bounded time, and fd
//     exhaustion on accept() is survivable;
//   * graceful drain — busy connections finish (drained), idle
//     keep-alives are cut at the deadline (aborted), and both counts are
//     reported accurately.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/scenario.hpp"
#include "core/snapshot_builder.hpp"
#include "io/snapshot.hpp"
#include "serve/engine_hub.hpp"
#include "serve/fault_inject.hpp"
#include "serve/http_server.hpp"
#include "serve/query_engine.hpp"
#include "serve/service.hpp"

namespace asrel {
namespace {

using namespace std::chrono_literals;

/// CI runs the suite under several seeds (ASREL_CHAOS_SEED); locally the
/// default keeps runs reproducible without any setup.
std::uint64_t chaos_seed() {
  if (const char* env = std::getenv("ASREL_CHAOS_SEED")) {
    return std::strtoull(env, nullptr, 10);
  }
  return 20210517;  // default schedule
}

/// A small world for reload experiments: chaos tests rebuild QueryEngines
/// repeatedly, so they get their own (cached) snapshot instead of the
/// bigger canonical one.
const io::Snapshot& chaos_snapshot() {
  static const io::Snapshot snapshot = [] {
    core::ScenarioParams params;
    params.topology.as_count = 600;
    params.topology.seed = 13;
    return core::build_snapshot(*core::Scenario::build(params));
  }();
  return snapshot;
}

/// Blocking test client. Unlike the one in test_serve.cpp it exposes the
/// raw send / read halves separately (drain tests need a request in
/// flight while the main thread drains) and captures response headers
/// (shed tests assert on Retry-After).
class ChaosClient {
 public:
  explicit ChaosClient(std::uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in address{};
    address.sin_family = AF_INET;
    address.sin_port = htons(port);
    address.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    if (::connect(fd_, reinterpret_cast<sockaddr*>(&address),
                  sizeof(address)) != 0) {
      ::close(fd_);
      fd_ = -1;
    }
  }
  ~ChaosClient() {
    if (fd_ >= 0) ::close(fd_);
  }
  ChaosClient(const ChaosClient&) = delete;
  ChaosClient& operator=(const ChaosClient&) = delete;

  [[nodiscard]] bool connected() const { return fd_ >= 0; }

  bool send_raw(const std::string& bytes) {
    std::size_t sent = 0;
    while (sent < bytes.size()) {
      const ssize_t n = ::send(fd_, bytes.data() + sent, bytes.size() - sent,
                               MSG_NOSIGNAL);
      if (n <= 0) return false;
      sent += static_cast<std::size_t>(n);
    }
    return true;
  }

  /// Reads one full response (a server may send one unsolicited, e.g. a
  /// shed 503). Returns the status code, or -1 on transport failure.
  int read_response(std::string* body = nullptr,
                    std::string* headers = nullptr) {
    std::string data = std::move(leftover_);
    leftover_.clear();
    std::size_t header_end;
    while ((header_end = data.find("\r\n\r\n")) == std::string::npos) {
      if (!recv_more(&data)) return -1;
    }
    std::size_t content_length = 0;
    const std::size_t cl = data.find("Content-Length: ");
    if (cl != std::string::npos && cl < header_end) {
      content_length = static_cast<std::size_t>(
          std::strtoull(data.c_str() + cl + 16, nullptr, 10));
    }
    const std::size_t total = header_end + 4 + content_length;
    while (data.size() < total) {
      if (!recv_more(&data)) return -1;
    }
    if (headers != nullptr) *headers = data.substr(0, header_end);
    if (body != nullptr) *body = data.substr(header_end + 4, content_length);
    leftover_ = data.substr(total);
    const std::size_t space = data.find(' ');
    return space == std::string::npos ? -1
                                      : std::atoi(data.c_str() + space + 1);
  }

  int request(const std::string& raw, std::string* body = nullptr,
              std::string* headers = nullptr) {
    if (!send_raw(raw)) return -1;
    return read_response(body, headers);
  }

  int get(const std::string& path, std::string* body = nullptr,
          std::string* headers = nullptr) {
    return request("GET " + path + " HTTP/1.1\r\nHost: chaos\r\n\r\n", body,
                   headers);
  }

 private:
  bool recv_more(std::string* data) {
    char chunk[4096];
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n <= 0) return false;
    data->append(chunk, static_cast<std::size_t>(n));
    return true;
  }

  int fd_ = -1;
  std::string leftover_;
};

// ------------------------------------------------------------ determinism

TEST(Chaos, FaultScheduleIsAPureFunctionOfSeedSiteAndIndex) {
  using serve::fault::FaultInjector;
  using serve::fault::Site;
  const std::uint64_t seed = chaos_seed();

  for (const Site site : {Site::kAccept, Site::kRecv, Site::kSend,
                          Site::kSnapshotRead, Site::kSnapshotWrite}) {
    for (std::uint64_t n = 0; n < 256; ++n) {
      const std::uint32_t roll = FaultInjector::draw(seed, site, n);
      EXPECT_LT(roll, 1000u);
      // Replaying the same (seed, site, n) triple is byte-identical —
      // this is what makes a chaos run reproducible from its seed alone.
      EXPECT_EQ(roll, FaultInjector::draw(seed, site, n));
    }
  }

  // Distinct sites and distinct seeds draw from decorrelated streams.
  const auto sequence = [](std::uint64_t seed_value, Site site) {
    std::vector<std::uint32_t> rolls;
    for (std::uint64_t n = 0; n < 64; ++n) {
      rolls.push_back(FaultInjector::draw(seed_value, site, n));
    }
    return rolls;
  };
  EXPECT_NE(sequence(seed, Site::kRecv), sequence(seed, Site::kSend));
  EXPECT_NE(sequence(seed, Site::kRecv), sequence(seed + 1, Site::kRecv));
}

// ------------------------------------------------- torn snapshot writes

TEST(Chaos, TornSnapshotWritesNeverCorruptTheServedFile) {
  const io::Snapshot& snapshot = chaos_snapshot();
  const std::string bytes = io::to_snapshot_bytes(snapshot);
  std::string error;

  // Exhaustive torn-read coverage: a snapshot truncated at EVERY byte
  // boundary is rejected. Cheap because the header's payload_size check
  // fails O(1) before any section is parsed.
  for (std::size_t length = 0; length < bytes.size(); ++length) {
    ASSERT_FALSE(io::parse_snapshot_bytes(
        std::string_view{bytes}.substr(0, length)))
        << "prefix of " << length << " bytes parsed";
  }

  const std::string path = ::testing::TempDir() + "/asrel_chaos_snapshot.bin";
  ASSERT_TRUE(io::save_snapshot_file(snapshot, path, &error)) << error;

  // Fault-injected writes that die mid-file (simulated ENOSPC at a range
  // of byte caps) must fail loudly, leave no temp file behind, and leave
  // the published file byte-identical — the crash-safe rename never ran.
  const std::vector<std::size_t> write_caps{
      0, 1, 27, 28, 100, bytes.size() / 2, bytes.size() - 1};
  for (const std::size_t cap : write_caps) {
    serve::fault::FaultPlan plan;
    plan.seed = chaos_seed();
    plan.snapshot_write_cap = cap;
    serve::fault::ScopedFaults faults{plan};
    error.clear();
    EXPECT_FALSE(io::save_snapshot_file(snapshot, path, &error))
        << "cap " << cap;
    EXPECT_FALSE(error.empty());
  }
  EXPECT_NE(::access((path + ".tmp").c_str(), F_OK), 0)
      << "failed save left a temp file";
  auto reloaded = io::load_snapshot_file(path, &error);
  ASSERT_TRUE(reloaded.has_value()) << error;
  EXPECT_EQ(io::to_snapshot_bytes(*reloaded), bytes);
  EXPECT_GT(serve::fault::FaultInjector::instance().stats()
                .snapshot_write_faults,
            0u);

  // Torn reads (file truncated under the reader) are rejected too.
  for (const std::size_t cap : {std::size_t{0}, std::size_t{10},
                                std::size_t{28}, bytes.size() - 1}) {
    serve::fault::FaultPlan plan;
    plan.seed = chaos_seed();
    plan.snapshot_read_cap = cap;
    serve::fault::ScopedFaults faults{plan};
    error.clear();
    EXPECT_FALSE(io::load_snapshot_file(path, &error)) << "cap " << cap;
    EXPECT_FALSE(error.empty());
  }

  // A reload that hits a torn file fails closed: the old epoch keeps
  // serving and the error is recorded; once the fault clears, the next
  // reload succeeds.
  serve::EngineHub hub{
      std::make_shared<const serve::QueryEngine>(io::Snapshot{snapshot}),
      [path](std::string* load_error) {
        return io::load_snapshot_file(path, load_error);
      }};
  EXPECT_EQ(hub.epoch(), 1u);
  {
    serve::fault::FaultPlan plan;
    plan.seed = chaos_seed();
    plan.snapshot_read_cap = 100;
    serve::fault::ScopedFaults faults{plan};
    const auto result = hub.reload();
    EXPECT_FALSE(result.ok);
    EXPECT_EQ(result.epoch, 1u);
    EXPECT_FALSE(result.error.empty());
  }
  EXPECT_EQ(hub.epoch(), 1u);
  ASSERT_NE(hub.current(), nullptr);  // old engine still published
  EXPECT_EQ(hub.stats().reloads_failed, 1u);
  EXPECT_FALSE(hub.stats().last_error.empty());

  const auto recovered = hub.reload();
  EXPECT_TRUE(recovered.ok) << recovered.error;
  EXPECT_EQ(recovered.epoch, 2u);
  ::unlink(path.c_str());
}

// -------------------------------------------------- hot reload under load

TEST(Chaos, ReloadUnderLoadLosesZeroRequests) {
  const io::Snapshot& snapshot = chaos_snapshot();
  const std::string bytes = io::to_snapshot_bytes(snapshot);
  const auto hub = std::make_shared<serve::EngineHub>(
      std::make_shared<const serve::QueryEngine>(io::Snapshot{snapshot}),
      [bytes](std::string* error) {
        return io::parse_snapshot_bytes(bytes, error);
      });
  serve::AsrelService service{hub};

  serve::HttpServerOptions options;
  options.port = 0;
  // Workers are pinned to a connection for its keep-alive lifetime, so
  // leave headroom beyond the 4 hammering clients for the admin client.
  options.worker_threads = 6;
  options.stats_supplement = [&service] { return service.stats_json(); };
  serve::HttpServer server{
      [&service](const serve::HttpRequest& request) {
        return service.handle(request);
      },
      options};
  std::string error;
  ASSERT_TRUE(server.start(&error)) << error;

  // Four clients hammer /rel with real links for the whole experiment.
  // The acceptance bar: not one of them ever sees a non-200.
  std::atomic<bool> stop_clients{false};
  std::atomic<int> failures{0};
  std::atomic<long> completed{0};
  std::vector<std::thread> clients;
  for (int t = 0; t < 4; ++t) {
    clients.emplace_back([&, t] {
      ChaosClient client{server.port()};
      if (!client.connected()) {
        failures.fetch_add(1);
        return;
      }
      std::size_t i = static_cast<std::size_t>(t);
      while (!stop_clients.load(std::memory_order_relaxed)) {
        const auto& edge = snapshot.edges[i % snapshot.edges.size()];
        std::string body;
        const int status = client.get(
            "/rel?a=" + std::to_string(edge.a.value()) +
                "&b=" + std::to_string(edge.b.value()),
            &body);
        if (status != 200 ||
            body.find("\"found\":true") == std::string::npos) {
          failures.fetch_add(1);
          return;
        }
        completed.fetch_add(1, std::memory_order_relaxed);
        i += 7;
      }
    });
  }

  // 20 reloads while the clients run: half through the hub (the SIGHUP
  // path minus the signal) and half through POST /reloadz.
  for (int r = 0; r < 10; ++r) {
    const auto result = hub->reload();
    EXPECT_TRUE(result.ok) << result.error;
    std::this_thread::sleep_for(2ms);
  }
  ChaosClient admin{server.port()};
  ASSERT_TRUE(admin.connected());
  for (int r = 0; r < 10; ++r) {
    std::string body;
    const int status = admin.request(
        "POST /reloadz HTTP/1.1\r\nHost: chaos\r\nContent-Length: 0\r\n\r\n",
        &body);
    EXPECT_EQ(status, 200) << body;
    EXPECT_NE(body.find("\"ok\":true"), std::string::npos) << body;
  }

  stop_clients.store(true);
  for (auto& client : clients) client.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_GT(completed.load(), 0);
  EXPECT_EQ(hub->epoch(), 21u);  // 1 initial + 20 successful reloads

  // The new epoch is visible through /statsz (app supplement).
  std::string body;
  EXPECT_EQ(admin.get("/statsz", &body), 200);
  EXPECT_NE(body.find("\"reload\""), std::string::npos) << body;
  EXPECT_NE(body.find("\"epoch\":21"), std::string::npos) << body;
  server.stop();
}

// --------------------------------------------------- socket-level faults

TEST(Chaos, InjectedRecvSendFaultsAreInvisibleToClients) {
  // A body big enough that short writes bite many times per response.
  const std::string payload(4096, 'x');
  serve::HttpServerOptions options;
  options.port = 0;
  options.worker_threads = 2;
  serve::HttpServer server{
      [&payload](const serve::HttpRequest&) {
        return serve::HttpResponse::json(200,
                                         "{\"payload\":\"" + payload + "\"}");
      },
      options};

  serve::fault::FaultPlan plan;
  plan.seed = chaos_seed();
  plan.recv_eintr_permille = 150;
  plan.recv_short_permille = 250;
  plan.send_eintr_permille = 150;
  plan.send_short_permille = 250;
  serve::fault::ScopedFaults faults{plan};

  std::string error;
  ASSERT_TRUE(server.start(&error)) << error;
  ChaosClient client{server.port()};
  ASSERT_TRUE(client.connected());
  for (int i = 0; i < 60; ++i) {
    std::string body;
    ASSERT_EQ(client.get("/anything", &body), 200) << "request " << i;
    ASSERT_NE(body.find(payload), std::string::npos) << "request " << i;
  }
  const auto stats = serve::fault::FaultInjector::instance().stats();
  EXPECT_GT(stats.recv_faults + stats.send_faults, 0u)
      << "the run injected nothing — schedule or rates are broken";
  server.stop();
}

TEST(Chaos, AcceptFaultsAndFdExhaustionAreSurvivable) {
  serve::HttpServerOptions options;
  options.port = 0;
  options.worker_threads = 2;
  serve::HttpServer server{
      [](const serve::HttpRequest&) {
        return serve::HttpResponse::json(200, R"({"pong":true})");
      },
      options};

  serve::fault::FaultPlan plan;
  plan.seed = chaos_seed();
  plan.accept_eintr_permille = 150;
  plan.accept_econnaborted_permille = 100;
  plan.accept_emfile_permille = 250;
  serve::fault::ScopedFaults faults{plan};

  std::string error;
  ASSERT_TRUE(server.start(&error)) << error;

  // Each connection is either served normally (the roll passed) or was
  // consumed by the EMFILE emergency path and shed — never dropped on
  // the floor silently. A shed connection usually reads the 503; it can
  // also see a reset when the server closes with our request unread, so
  // both count as "shed" here (the overload test pins the 503 contract
  // deterministically). Loop until every recovery path has fired
  // (bounded, so a quiet schedule cannot hang the test).
  int ok = 0;
  int shed = 0;
  for (int i = 0; i < 200; ++i) {
    ChaosClient client{server.port()};
    ASSERT_TRUE(client.connected());
    std::string body;
    const int status = client.get("/ping", &body);
    if (status == 200) {
      ++ok;
    } else if (status == 503 || status == -1) {
      ++shed;
    } else {
      FAIL() << "connection " << i << " got status " << status;
    }
    const auto progress = server.stats();
    if (ok > 0 && progress.emfile_recoveries > 0 &&
        progress.accept_retried > 0 && i >= 30) {
      break;
    }
  }
  const auto stats = server.stats();
  EXPECT_GT(ok, 0);
  EXPECT_GT(stats.emfile_recoveries, 0u);   // fd-exhaustion path fired
  EXPECT_GT(stats.accept_retried, 0u);      // EINTR/ECONNABORTED retried
  EXPECT_EQ(stats.overload_rejected, static_cast<std::uint64_t>(shed));
  server.stop();
}

// ------------------------------------------------------ overload shedding

TEST(Chaos, OverloadShedsWith503AndRetryAfterWhileAdmittedWorkCompletes) {
  serve::HttpServerOptions options;
  options.port = 0;
  options.worker_threads = 1;
  options.max_pending_connections = 1;
  options.retry_after_hint_s = 2;
  serve::HttpServer server{
      [](const serve::HttpRequest&) {
        std::this_thread::sleep_for(200ms);
        return serve::HttpResponse::json(200, R"({"slow":true})");
      },
      options};
  std::string error;
  ASSERT_TRUE(server.start(&error)) << error;

  // Deterministic overload: A occupies the single worker, B occupies the
  // whole pending queue, so C and D MUST be shed at admission. A asks for
  // Connection: close so the worker is released the moment A's response
  // goes out, instead of sitting in A's keep-alive recv until timeout.
  const auto started = std::chrono::steady_clock::now();
  ChaosClient a{server.port()};
  ASSERT_TRUE(a.connected());
  ASSERT_TRUE(a.send_raw(
      "GET /slow HTTP/1.1\r\nHost: chaos\r\nConnection: close\r\n\r\n"));
  std::this_thread::sleep_for(40ms);
  ChaosClient b{server.port()};
  ASSERT_TRUE(b.connected());
  ASSERT_TRUE(b.send_raw("GET /slow HTTP/1.1\r\nHost: chaos\r\n\r\n"));
  std::this_thread::sleep_for(40ms);

  for (int i = 0; i < 2; ++i) {
    ChaosClient overflow{server.port()};
    ASSERT_TRUE(overflow.connected());
    std::string body;
    std::string headers;
    // The shed 503 arrives unsolicited — the server refuses before
    // reading a request, which is exactly what makes shedding cheap.
    EXPECT_EQ(overflow.read_response(&body, &headers), 503);
    EXPECT_NE(headers.find("Retry-After: 2"), std::string::npos) << headers;
    EXPECT_NE(body.find("overloaded"), std::string::npos) << body;
  }

  // The admitted requests still complete, in bounded time (two 200 ms
  // handler runs back to back, plus slack — nowhere near the deadline).
  EXPECT_EQ(a.read_response(), 200);
  EXPECT_EQ(b.read_response(), 200);
  const auto elapsed = std::chrono::steady_clock::now() - started;
  EXPECT_LT(std::chrono::duration_cast<std::chrono::milliseconds>(elapsed)
                .count(),
            2000);
  EXPECT_GE(server.stats().overload_rejected, 2u);
  server.stop();
}

// -------------------------------------------------------- graceful drain

TEST(Chaos, DrainFinishesInFlightWorkAndAbortsIdleKeepAlives) {
  serve::HttpServerOptions options;
  options.port = 0;
  options.worker_threads = 2;
  options.drain_deadline_ms = 400;
  serve::HttpServer server{
      [](const serve::HttpRequest& request) {
        if (request.path == "/slow") std::this_thread::sleep_for(150ms);
        return serve::HttpResponse::json(200, R"({"ok":true})");
      },
      options};
  std::string error;
  ASSERT_TRUE(server.start(&error)) << error;

  // idle: completes one request, then sits in keep-alive doing nothing.
  ChaosClient idle{server.port()};
  ASSERT_TRUE(idle.connected());
  std::string headers;
  ASSERT_EQ(idle.get("/fast", nullptr, &headers), 200);
  EXPECT_NE(headers.find("Connection: keep-alive"), std::string::npos);

  // busy: has a request in flight when the drain starts.
  ChaosClient busy{server.port()};
  ASSERT_TRUE(busy.connected());
  ASSERT_TRUE(busy.send_raw("GET /slow HTTP/1.1\r\nHost: chaos\r\n\r\n"));
  std::this_thread::sleep_for(40ms);

  const serve::DrainReport report = server.drain();
  EXPECT_FALSE(server.running());
  // busy finished inside the grace period; idle was cut at the deadline.
  EXPECT_EQ(report.drained + report.aborted, 2u);
  EXPECT_GE(report.aborted, 1u);

  // busy's response was fully delivered before its socket closed, and it
  // was told the connection is going away.
  EXPECT_EQ(busy.read_response(nullptr, &headers), 200);
  EXPECT_NE(headers.find("Connection: close"), std::string::npos) << headers;

  // The report and the stats agree; drain() after stop is a no-op that
  // re-reports the same counts.
  const auto stats = server.stats();
  EXPECT_EQ(stats.drained, report.drained);
  EXPECT_EQ(stats.aborted, report.aborted);
  const serve::DrainReport again = server.drain();
  EXPECT_EQ(again.drained, report.drained);
  EXPECT_EQ(again.aborted, report.aborted);
}

// ------------------------------------------------- deadlines and /statsz

TEST(Chaos, DeadlineOverrunsAreCountedPerRouteAndExported) {
  serve::HttpServerOptions options;
  options.port = 0;
  // Three concurrent keep-alive clients below, each pinning a worker.
  options.worker_threads = 4;
  options.request_deadline_ms = 50;
  serve::HttpServer server{
      [](const serve::HttpRequest& request) {
        if (request.path == "/slow") std::this_thread::sleep_for(120ms);
        return serve::HttpResponse::json(200, R"({"ok":true})");
      },
      options};
  std::string error;
  ASSERT_TRUE(server.start(&error)) << error;

  // A handler that blows the deadline still gets its response delivered
  // (it is ready and the client is live) — the overrun is only recorded.
  ChaosClient client{server.port()};
  ASSERT_TRUE(client.connected());
  EXPECT_EQ(client.get("/slow"), 200);

  // A client trickling an unfinished header past the deadline is cut off
  // with 408 and counted under the pseudo-route "(read)". Exactly one pad
  // arrives after the deadline expired — it wakes the read loop, which
  // notices the overrun; sending more after the server closes would risk
  // an RST discarding the buffered 408 before we read it.
  ChaosClient trickler{server.port()};
  ASSERT_TRUE(trickler.connected());
  ASSERT_TRUE(trickler.send_raw("GET /never HTTP/1.1\r\n"));
  std::this_thread::sleep_for(120ms);  // 50 ms deadline is long gone
  ASSERT_TRUE(trickler.send_raw("X-Pad: y\r\n"));  // never terminates
  EXPECT_EQ(trickler.read_response(), 408);

  const auto stats = server.stats();
  EXPECT_GE(stats.deadline_exceeded, 2u);
  EXPECT_GE(stats.timeouts, 1u);
  bool saw_slow = false;
  bool saw_read = false;
  for (const auto& [route, count] : server.deadline_exceeded_by_route()) {
    if (route == "/slow") saw_slow = count > 0;
    if (route == "(read)") saw_read = count > 0;
  }
  EXPECT_TRUE(saw_slow);
  EXPECT_TRUE(saw_read);

  // All the resilience counters surface in /statsz for operators.
  std::string body;
  ChaosClient observer{server.port()};
  ASSERT_TRUE(observer.connected());
  EXPECT_EQ(observer.get("/statsz", &body), 200);
  for (const char* field :
       {"\"resilience\"", "\"shed\"", "\"accept_retried\"",
        "\"emfile_recoveries\"", "\"drained\"", "\"aborted\"",
        "\"deadline_exceeded\"", "\"deadline_exceeded_by_route\"",
        "\"/slow\"", "\"(read)\""}) {
    EXPECT_NE(body.find(field), std::string::npos)
        << field << " missing from " << body;
  }
  server.stop();
}

}  // namespace
}  // namespace asrel
