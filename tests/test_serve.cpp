// Serving layer: snapshot format (round-trip, determinism, corruption
// rejection), QueryEngine answers vs the in-memory pipeline (ground
// truth, stored verdicts, validation, BiasAudit reports), the report
// cache, and an end-to-end HTTP integration test on an ephemeral port.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <latch>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/bias_audit.hpp"
#include "core/snapshot_builder.hpp"
#include "infer/asrank.hpp"
#include "io/flat_snapshot.hpp"
#include "io/snapshot.hpp"
#include "serve/http_server.hpp"
#include "serve/lru_cache.hpp"
#include "serve/query_engine.hpp"
#include "serve/service.hpp"
#include "test_support.hpp"

namespace asrel {
namespace {

using ::testing::AssertionResult;

/// Snapshot of the shared scenario, built once (3 inferences + tags).
const io::Snapshot& shared_snapshot() {
  static const io::Snapshot snapshot =
      core::build_snapshot(test::shared_scenario());
  return snapshot;
}

const serve::QueryEngine& shared_engine() {
  static const serve::QueryEngine engine{shared_snapshot()};
  return engine;
}

// ---------------------------------------------------------------- snapshot

TEST(Snapshot, RoundTripIsIdentity) {
  const io::Snapshot& original = shared_snapshot();
  const std::string bytes = io::to_snapshot_bytes(original);
  ASSERT_GT(bytes.size(), 28u);  // header alone is 28 bytes

  std::string error;
  const auto loaded = io::parse_snapshot_bytes(bytes, &error);
  ASSERT_TRUE(loaded.has_value()) << error;

  // Deterministic serialization makes "re-serialize and compare bytes" a
  // full structural-equality check without operator== on every struct.
  EXPECT_EQ(io::to_snapshot_bytes(*loaded), bytes);

  EXPECT_EQ(loaded->meta.as_count, original.meta.as_count);
  EXPECT_EQ(loaded->meta.seed, original.meta.seed);
  EXPECT_EQ(loaded->ases.size(), original.ases.size());
  EXPECT_EQ(loaded->edges.size(), original.edges.size());
  EXPECT_EQ(loaded->links.size(), original.links.size());
  EXPECT_EQ(loaded->validation.size(), original.validation.size());
  ASSERT_EQ(loaded->algorithms.size(), original.algorithms.size());
  for (std::size_t i = 0; i < original.algorithms.size(); ++i) {
    EXPECT_EQ(loaded->algorithms[i].name, original.algorithms[i].name);
    EXPECT_EQ(loaded->algorithms[i].labels.size(),
              original.algorithms[i].labels.size());
  }
  EXPECT_EQ(loaded->class_names, original.class_names);
  EXPECT_EQ(loaded->clique, original.clique);
  EXPECT_EQ(loaded->hypergiants, original.hypergiants);
}

TEST(Snapshot, StreamAndFileApisAgreeWithBytes) {
  const std::string bytes = io::to_snapshot_bytes(shared_snapshot());

  std::ostringstream sink;
  io::write_snapshot(shared_snapshot(), sink);
  EXPECT_EQ(sink.str(), bytes);

  std::istringstream source{bytes};
  std::string error;
  const auto loaded = io::read_snapshot(source, &error);
  ASSERT_TRUE(loaded.has_value()) << error;
  EXPECT_EQ(io::to_snapshot_bytes(*loaded), bytes);

  const std::string path =
      ::testing::TempDir() + "/asrel_snapshot_roundtrip.bin";
  ASSERT_TRUE(io::save_snapshot_file(shared_snapshot(), path, &error))
      << error;
  const auto from_file = io::load_snapshot_file(path, &error);
  ASSERT_TRUE(from_file.has_value()) << error;
  EXPECT_EQ(io::to_snapshot_bytes(*from_file), bytes);
  ::unlink(path.c_str());
}

TEST(Snapshot, SameSeedIsByteIdentical) {
  core::ScenarioParams params;
  params.topology.as_count = 700;
  params.topology.seed = 7;
  const auto first = core::Scenario::build(params);
  const auto second = core::Scenario::build(params);
  EXPECT_EQ(io::to_snapshot_bytes(core::build_snapshot(*first)),
            io::to_snapshot_bytes(core::build_snapshot(*second)));
}

TEST(Snapshot, RejectsCorruption) {
  const std::string bytes = io::to_snapshot_bytes(shared_snapshot());
  std::string error;

  // Truncation, both mid-header and mid-payload.
  EXPECT_FALSE(io::parse_snapshot_bytes(bytes.substr(0, 10), &error));
  EXPECT_FALSE(error.empty());
  error.clear();
  EXPECT_FALSE(
      io::parse_snapshot_bytes(bytes.substr(0, bytes.size() / 2), &error));
  EXPECT_FALSE(error.empty());

  // Wrong magic.
  std::string bad = bytes;
  bad[0] = 'X';
  error.clear();
  EXPECT_FALSE(io::parse_snapshot_bytes(bad, &error));
  EXPECT_NE(error.find("magic"), std::string::npos) << error;

  // Unsupported version (u32 at offset 8).
  bad = bytes;
  bad[8] = static_cast<char>(bad[8] + 1);
  error.clear();
  EXPECT_FALSE(io::parse_snapshot_bytes(bad, &error));
  EXPECT_NE(error.find("version"), std::string::npos) << error;

  // Payload bit-flip must trip the checksum.
  bad = bytes;
  bad[28 + 5] = static_cast<char>(bad[28 + 5] ^ 0x40);
  error.clear();
  EXPECT_FALSE(io::parse_snapshot_bytes(bad, &error));
  EXPECT_NE(error.find("checksum"), std::string::npos) << error;

  // Trailing garbage is not silently ignored.
  bad = bytes + "garbage";
  error.clear();
  EXPECT_FALSE(io::parse_snapshot_bytes(bad, &error));
  EXPECT_FALSE(error.empty());
}

// ------------------------------------------------------------ query engine

TEST(QueryEngine, RelMatchesGroundTruthEdges) {
  const auto& snapshot = shared_snapshot();
  const auto& engine = shared_engine();
  ASSERT_FALSE(snapshot.edges.empty());

  std::size_t checked = 0;
  for (const auto& edge : snapshot.edges) {
    if (++checked > 500) break;
    // Argument order must not matter.
    for (const auto& answer :
         {engine.rel(edge.a, edge.b), engine.rel(edge.b, edge.a)}) {
      ASSERT_TRUE(answer.in_graph)
          << edge.a.value() << "-" << edge.b.value();
      EXPECT_EQ(answer.truth_rel, edge.rel);
      if (edge.rel == topo::RelType::kP2C) {
        EXPECT_EQ(answer.truth_provider, edge.a);
      }
      EXPECT_EQ(answer.scope, edge.scope);
      EXPECT_EQ(answer.misdocumented, edge.misdocumented);
      EXPECT_EQ(answer.hybrid_rel, edge.hybrid_rel);
    }
  }

  const auto unknown = engine.rel(asn::Asn{4200000001}, asn::Asn{4200000002});
  EXPECT_FALSE(unknown.known());
  EXPECT_FALSE(unknown.in_graph);
  EXPECT_TRUE(unknown.verdicts.empty());
}

TEST(QueryEngine, RelMatchesStoredVerdictsAndValidation) {
  const auto& snapshot = shared_snapshot();
  const auto& engine = shared_engine();

  for (const auto& algorithm : snapshot.algorithms) {
    std::size_t checked = 0;
    for (const auto& label : algorithm.labels) {
      if (++checked > 200) break;
      const auto answer = engine.rel(label.link.a, label.link.b);
      bool found = false;
      for (const auto& verdict : answer.verdicts) {
        if (verdict.algorithm != algorithm.name) continue;
        found = true;
        EXPECT_EQ(verdict.rel, label.rel);
        if (label.rel == topo::RelType::kP2C) {
          EXPECT_EQ(verdict.provider, label.provider);
        }
      }
      EXPECT_TRUE(found) << algorithm.name;
    }
  }

  std::size_t checked = 0;
  for (const auto& label : snapshot.validation) {
    if (++checked > 200) break;
    const auto answer = engine.rel(label.link.a, label.link.b);
    ASSERT_TRUE(answer.validated);
    EXPECT_EQ(answer.validated_rel, label.rel);
    if (label.rel == topo::RelType::kP2C) {
      EXPECT_EQ(answer.validated_provider, label.provider);
    }
  }
}

TEST(QueryEngine, AsSummaryMatchesSnapshotRecord) {
  const auto& snapshot = shared_snapshot();
  const auto& engine = shared_engine();
  ASSERT_FALSE(snapshot.ases.empty());

  const auto& record = snapshot.ases[snapshot.ases.size() / 2];
  const auto summary = engine.as_summary(record.asn);
  ASSERT_TRUE(summary.has_value());
  EXPECT_EQ(summary->asn, record.asn);
  EXPECT_EQ(summary->region, record.attrs.region);
  EXPECT_EQ(summary->tier, record.attrs.tier);
  EXPECT_EQ(summary->transit_degree, record.transit_degree);
  EXPECT_EQ(summary->node_degree, record.node_degree);
  EXPECT_EQ(summary->cone_size, record.cone_size);

  EXPECT_FALSE(engine.as_summary(asn::Asn{4200000001}).has_value());
}

AssertionResult coverage_equal(const eval::CoverageReport& served,
                               const eval::CoverageReport& audit) {
  if (served.total_inferred != audit.total_inferred ||
      served.total_validated != audit.total_validated) {
    return ::testing::AssertionFailure()
           << "totals differ: " << served.total_inferred << "/"
           << served.total_validated << " vs " << audit.total_inferred << "/"
           << audit.total_validated;
  }
  if (served.rows.size() != audit.rows.size()) {
    return ::testing::AssertionFailure()
           << "row counts differ: " << served.rows.size() << " vs "
           << audit.rows.size();
  }
  for (std::size_t i = 0; i < served.rows.size(); ++i) {
    const auto& lhs = served.rows[i];
    const auto& rhs = audit.rows[i];
    if (lhs.name != rhs.name || lhs.inferred_links != rhs.inferred_links ||
        lhs.validated_links != rhs.validated_links) {
      return ::testing::AssertionFailure()
             << "row " << i << " differs: " << lhs.name << " "
             << lhs.inferred_links << "/" << lhs.validated_links << " vs "
             << rhs.name << " " << rhs.inferred_links << "/"
             << rhs.validated_links;
    }
  }
  return ::testing::AssertionSuccess();
}

// The acceptance bar for the whole subsystem: answers served out of a
// snapshot must equal the in-memory BiasAudit for the same seed.
TEST(QueryEngine, CoverageMatchesBiasAudit) {
  const core::BiasAudit audit{test::shared_scenario()};
  EXPECT_TRUE(coverage_equal(shared_engine().regional_coverage(),
                             audit.regional_coverage()));
  EXPECT_TRUE(coverage_equal(shared_engine().topological_coverage(),
                             audit.topological_coverage()));
}

TEST(QueryEngine, ValidationTableMatchesBiasAudit) {
  const core::BiasAudit audit{test::shared_scenario()};
  const auto asrank = infer::run_asrank(test::shared_scenario().observed());
  const auto expected = audit.validation_table(asrank.inference);

  const auto served = shared_engine().validation_table("asrank");
  ASSERT_TRUE(served.has_value());

  const auto expect_metrics_equal = [](const eval::ClassMetrics& lhs,
                                       const eval::ClassMetrics& rhs) {
    EXPECT_EQ(lhs.name, rhs.name);
    EXPECT_EQ(lhs.p2p_links, rhs.p2p_links);
    EXPECT_EQ(lhs.p2c_links, rhs.p2c_links);
    EXPECT_DOUBLE_EQ(lhs.p2p.ppv(), rhs.p2p.ppv());
    EXPECT_DOUBLE_EQ(lhs.p2p.tpr(), rhs.p2p.tpr());
    EXPECT_DOUBLE_EQ(lhs.p2c.ppv(), rhs.p2c.ppv());
    EXPECT_DOUBLE_EQ(lhs.p2c.tpr(), rhs.p2c.tpr());
    EXPECT_DOUBLE_EQ(lhs.mcc, rhs.mcc);
  };
  expect_metrics_equal(served->total, expected.total);
  ASSERT_EQ(served->rows.size(), expected.rows.size());
  for (std::size_t i = 0; i < expected.rows.size(); ++i) {
    expect_metrics_equal(served->rows[i], expected.rows[i]);
  }

  EXPECT_FALSE(shared_engine().validation_table("no-such-algo").has_value());
}

TEST(QueryEngine, ReportCacheHitsOnRepeatAndRejectsUnknownKeys) {
  // Private engine so the shared one's cache stats stay untouched.
  const serve::QueryEngine engine{shared_snapshot()};
  EXPECT_EQ(engine.cache_stats().hits, 0u);

  const auto first = engine.report_json("regional");
  ASSERT_NE(first, nullptr);
  EXPECT_NE(first->find("\"rows\""), std::string::npos);
  const auto second = engine.report_json("regional");
  ASSERT_NE(second, nullptr);
  EXPECT_EQ(*first, *second);

  const auto stats = engine.cache_stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.entries, 1u);

  EXPECT_EQ(engine.report_json("bogus"), nullptr);
  EXPECT_EQ(engine.report_json("table:no-such-algo"), nullptr);
  EXPECT_NE(engine.report_json("table:toposcope"), nullptr);
}

TEST(LruCache, RacingMissCountsLoserAsHit) {
  // Two threads miss on the same key and both run compute(); the first
  // insert wins and the loser is handed the winner's cached value — which
  // must be accounted as a hit (it was served from the cache), not a
  // second miss. Regression test: a latch forces both threads into
  // compute() before either can insert.
  serve::ShardedLruCache<int, int> cache{1, 4};
  std::latch both_computing{2};
  std::shared_ptr<const int> results[2];
  std::thread racers[2];
  for (int t = 0; t < 2; ++t) {
    racers[t] = std::thread{[&, t] {
      results[t] = cache.get_or_compute(42, [&] {
        both_computing.arrive_and_wait();
        return std::make_shared<const int>(t);
      });
    }};
  }
  for (auto& racer : racers) racer.join();

  ASSERT_NE(results[0], nullptr);
  ASSERT_NE(results[1], nullptr);
  // Both callers observe the single cached value (the insert winner's).
  EXPECT_EQ(results[0], results[1]);
  const auto stats = cache.stats();
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, 1u);
}

TEST(QueryEngine, SampleLinksIsDeterministicAndReal) {
  const auto& engine = shared_engine();
  const auto sample = engine.sample_links(64);
  ASSERT_FALSE(sample.empty());
  EXPECT_LE(sample.size(), 64u);
  EXPECT_EQ(sample, engine.sample_links(64));
  for (const auto& link : sample) {
    EXPECT_TRUE(engine.rel(link.a, link.b).observed);
  }
}

// ------------------------------------------------------------------- HTTP

/// Tiny blocking test client; one connection per object, keep-alive.
class TestClient {
 public:
  explicit TestClient(std::uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in address{};
    address.sin_family = AF_INET;
    address.sin_port = htons(port);
    address.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    if (::connect(fd_, reinterpret_cast<sockaddr*>(&address),
                  sizeof(address)) != 0) {
      ::close(fd_);
      fd_ = -1;
    }
  }
  ~TestClient() {
    if (fd_ >= 0) ::close(fd_);
  }
  [[nodiscard]] bool connected() const { return fd_ >= 0; }

  /// Sends raw bytes and reads one full response. Returns the status, or
  /// -1 on transport failure. Fills `*body` with the response body and
  /// `*wire` with the complete response (status line, headers, body) —
  /// the byte-identical-frontends test compares the latter verbatim.
  /// Passing an empty `raw` sends nothing and just reads the next
  /// response out of the carried-over buffer (pipelined followers).
  int request(const std::string& raw, std::string* body = nullptr,
              std::string* wire = nullptr) {
    if (::send(fd_, raw.data(), raw.size(), MSG_NOSIGNAL) !=
        static_cast<ssize_t>(raw.size())) {
      return -1;
    }
    std::string data = std::move(leftover_);
    leftover_.clear();
    std::size_t header_end;
    while ((header_end = data.find("\r\n\r\n")) == std::string::npos) {
      if (!recv_more(&data)) return -1;
    }
    std::size_t content_length = 0;
    const std::size_t cl = data.find("Content-Length: ");
    if (cl != std::string::npos && cl < header_end) {
      content_length = static_cast<std::size_t>(
          std::strtoull(data.c_str() + cl + 16, nullptr, 10));
    }
    const std::size_t total = header_end + 4 + content_length;
    while (data.size() < total) {
      if (!recv_more(&data)) return -1;
    }
    if (body != nullptr) *body = data.substr(header_end + 4, content_length);
    if (wire != nullptr) *wire = data.substr(0, total);
    leftover_ = data.substr(total);
    const std::size_t space = data.find(' ');
    return space == std::string::npos ? -1
                                      : std::atoi(data.c_str() + space + 1);
  }

  int get(const std::string& path, std::string* body = nullptr,
          std::string* wire = nullptr) {
    return request("GET " + path + " HTTP/1.1\r\nHost: test\r\n\r\n", body,
                   wire);
  }

  /// Sends bytes without reading a response (split-segment tests).
  bool send_only(const std::string& raw) {
    return ::send(fd_, raw.data(), raw.size(), MSG_NOSIGNAL) ==
           static_cast<ssize_t>(raw.size());
  }

 private:
  bool recv_more(std::string* data) {
    char chunk[4096];
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n <= 0) return false;
    data->append(chunk, static_cast<std::size_t>(n));
    return true;
  }

  int fd_ = -1;
  std::string leftover_;
};

TEST(HttpIntegration, ServesRelReportsHealthAndErrors) {
  auto engine = std::make_shared<const serve::QueryEngine>(
      io::Snapshot{shared_snapshot()});
  serve::AsrelService service{engine};

  serve::HttpServerOptions options;
  options.port = 0;  // ephemeral
  options.worker_threads = 2;
  options.request_timeout_ms = 2000;
  options.stats_supplement = [&service] { return service.stats_json(); };
  serve::HttpServer server{
      [&service](const serve::HttpRequest& request) {
        return service.handle(request);
      },
      options};
  std::string error;
  ASSERT_TRUE(server.start(&error)) << error;
  ASSERT_NE(server.port(), 0);

  TestClient client{server.port()};
  ASSERT_TRUE(client.connected());
  std::string body;

  EXPECT_EQ(client.get("/healthz", &body), 200);
  EXPECT_NE(body.find("ok"), std::string::npos);

  // Point lookup on a known ground-truth edge, full cross-layer answer.
  const auto& edge = shared_snapshot().edges.front();
  const std::string path = "/rel?a=" + std::to_string(edge.a.value()) +
                           "&b=" + std::to_string(edge.b.value());
  EXPECT_EQ(client.get(path, &body), 200);
  EXPECT_NE(body.find("\"found\":true"), std::string::npos) << body;
  EXPECT_NE(body.find("\"ground_truth\""), std::string::npos);
  EXPECT_NE(body.find("\"verdicts\""), std::string::npos);

  // Aggregate report: body equals the engine's cached JSON.
  EXPECT_EQ(client.get("/report/regional", &body), 200);
  EXPECT_EQ(body, *engine->report_json("regional"));

  // Error paths: bad params, unknown route, unsupported method.
  EXPECT_EQ(client.get("/rel?a=1", nullptr), 400);
  EXPECT_EQ(client.get("/no/such/path", nullptr), 404);
  EXPECT_EQ(client.request("POST /rel HTTP/1.1\r\nHost: t\r\n\r\n"), 405);

  // /statsz reflects traffic and splices the app supplement.
  EXPECT_EQ(client.get("/statsz", &body), 200);
  EXPECT_NE(body.find("\"requests\""), std::string::npos);
  EXPECT_NE(body.find("\"app\""), std::string::npos);
  EXPECT_NE(body.find("\"report_cache\""), std::string::npos);

  // A malformed request gets 400 and the connection closed.
  TestClient garbage{server.port()};
  ASSERT_TRUE(garbage.connected());
  EXPECT_EQ(garbage.request("NOT-HTTP\r\n\r\n"), 400);

  server.stop();
  EXPECT_FALSE(server.running());
  const auto stats = server.stats();
  EXPECT_GE(stats.requests, 7u);  // the malformed one only counts below
  EXPECT_GE(stats.responses_2xx, 4u);
  EXPECT_GE(stats.responses_4xx, 2u);
  EXPECT_GE(stats.malformed, 1u);
}

// ------------------------------------------------------------- pipelining

/// One ready-to-start server + service per test, front end chosen by the
/// test parameter — pipelining semantics must be identical across both.
class HttpPipelining : public ::testing::TestWithParam<serve::ServeModel> {};

TEST_P(HttpPipelining, TwoRequestsInOneSegmentAreBothServedInOrder) {
  auto engine = std::make_shared<const serve::QueryEngine>(
      io::Snapshot{shared_snapshot()});
  serve::AsrelService service{engine};
  serve::HttpServerOptions options;
  options.port = 0;
  options.serve_model = GetParam();
  options.worker_threads = 2;
  serve::HttpServer server{
      [&service](const serve::HttpRequest& request) {
        return service.handle(request);
      },
      options};
  std::string error;
  ASSERT_TRUE(server.start(&error)) << error;

  TestClient client{server.port()};
  ASSERT_TRUE(client.connected());
  const auto& edge = shared_snapshot().edges.front();
  const std::string rel = "GET /rel?a=" + std::to_string(edge.a.value()) +
                          "&b=" + std::to_string(edge.b.value()) +
                          " HTTP/1.1\r\nHost: t\r\n\r\n";
  const std::string health = "GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n";

  // Both requests arrive in one segment; the second must be parsed out of
  // the carried-over buffer, not lost or treated as a new connection.
  std::string body;
  EXPECT_EQ(client.request(rel + health, &body), 200);
  EXPECT_NE(body.find("\"found\":true"), std::string::npos) << body;
  EXPECT_EQ(client.request("", &body), 200);  // follower, already buffered
  EXPECT_NE(body.find("ok"), std::string::npos) << body;

  // A POST body followed by a GET in the same segment: the body bytes
  // must be consumed as the body, never misread as the follower's
  // request line.
  const std::string post =
      "POST /rel HTTP/1.1\r\nHost: t\r\nContent-Length: 5\r\n\r\nhello";
  EXPECT_EQ(client.request(post + health, &body), 405);
  EXPECT_EQ(client.request("", &body), 200);
  EXPECT_NE(body.find("ok"), std::string::npos) << body;

  // A request split at an arbitrary byte boundary (part of the request
  // line alone in one segment, the rest plus a follower in the next)
  // reassembles from the residual buffer.
  const std::size_t split = rel.size() / 3;
  ASSERT_TRUE(client.send_only(rel.substr(0, split)));
  EXPECT_EQ(client.request(rel.substr(split) + health, &body), 200);
  EXPECT_NE(body.find("\"found\":true"), std::string::npos) << body;
  EXPECT_EQ(client.request("", &body), 200);
  server.stop();
}

INSTANTIATE_TEST_SUITE_P(
    BothFrontends, HttpPipelining,
    ::testing::Values(serve::ServeModel::kEpoll,
                      serve::ServeModel::kThreadPool),
    [](const ::testing::TestParamInfo<serve::ServeModel>& info) {
      return info.param == serve::ServeModel::kEpoll ? "Epoll" : "ThreadPool";
    });

// The contract that lets the epoll front end replace the thread pool: for
// the same service, both produce byte-identical responses — status line,
// headers, and body.
TEST(HttpFrontends, ByteIdenticalResponsesAcrossServeModels) {
  auto engine = std::make_shared<const serve::QueryEngine>(
      io::Snapshot{shared_snapshot()});
  serve::AsrelService service{engine};
  const auto handler = [&service](const serve::HttpRequest& request) {
    return service.handle(request);
  };

  serve::HttpServerOptions options;
  options.port = 0;
  options.worker_threads = 2;
  options.serve_model = serve::ServeModel::kThreadPool;
  serve::HttpServer pool_server{handler, options};
  options.serve_model = serve::ServeModel::kEpoll;
  serve::HttpServer epoll_server{handler, options};
  std::string error;
  ASSERT_TRUE(pool_server.start(&error)) << error;
  ASSERT_TRUE(epoll_server.start(&error)) << error;

  TestClient pool_client{pool_server.port()};
  TestClient epoll_client{epoll_server.port()};
  ASSERT_TRUE(pool_client.connected());
  ASSERT_TRUE(epoll_client.connected());

  const auto& edge = shared_snapshot().edges.front();
  const std::vector<std::string> paths = {
      "/rel?a=" + std::to_string(edge.a.value()) +
          "&b=" + std::to_string(edge.b.value()),
      "/rel?a=1",       // missing b -> 400
      "/rel?a=x&b=2",   // non-numeric -> 400
      "/no/such/path",  // 404
      "/healthz",
      "/snapshot",
      "/links?limit=5",
      "/report/regional",
  };
  for (const auto& path : paths) {
    std::string pool_wire;
    std::string epoll_wire;
    const int pool_status = pool_client.get(path, nullptr, &pool_wire);
    const int epoll_status = epoll_client.get(path, nullptr, &epoll_wire);
    EXPECT_EQ(pool_status, epoll_status) << path;
    EXPECT_EQ(pool_wire, epoll_wire) << path;
  }

  // Unsupported method, same bytes too.
  const std::string trace = "TRACE / HTTP/1.1\r\nHost: t\r\n\r\n";
  std::string pool_wire;
  std::string epoll_wire;
  EXPECT_EQ(pool_client.request(trace, nullptr, &pool_wire), 405);
  EXPECT_EQ(epoll_client.request(trace, nullptr, &epoll_wire), 405);
  EXPECT_EQ(pool_wire, epoll_wire);

  pool_server.stop();
  epoll_server.stop();
}

// ----------------------------------------------- flat (v3) query engine

TEST(QueryEngineFlat, MatchesSnapshotEngineAcrossEveryLayer) {
  std::string error;
  const auto view = io::FlatView::from_bytes(
      io::to_flat_snapshot_bytes(shared_snapshot()), &error);
  ASSERT_NE(view, nullptr) << error;
  const serve::QueryEngine flat{view};
  const auto& reference = shared_engine();
  ASSERT_TRUE(flat.flat_mode());

  // Light accessors agree without inflating anything.
  EXPECT_EQ(flat.num_ases(), reference.num_ases());
  EXPECT_EQ(flat.num_edges(), reference.num_edges());
  EXPECT_EQ(flat.num_links(), reference.num_links());
  EXPECT_EQ(flat.num_validation(), reference.num_validation());
  const auto flat_algos = flat.algorithm_names();
  const auto ref_algos = reference.algorithm_names();
  ASSERT_EQ(flat_algos.size(), ref_algos.size());
  for (std::size_t i = 0; i < ref_algos.size(); ++i) {
    EXPECT_EQ(flat_algos[i], ref_algos[i]);
  }

  // Point lookups: the rendered /rel body (the full cross-layer answer)
  // is byte-equal over observed links and pure ground-truth edges.
  for (const auto& link : reference.sample_links(128)) {
    EXPECT_EQ(*flat.rel_json(link.a, link.b),
              *reference.rel_json(link.a, link.b))
        << link.a.value() << "-" << link.b.value();
  }
  std::size_t checked = 0;
  for (const auto& edge : shared_snapshot().edges) {
    if (++checked > 128) break;
    EXPECT_EQ(*flat.rel_json(edge.a, edge.b),
              *reference.rel_json(edge.a, edge.b))
        << edge.a.value() << "-" << edge.b.value();
  }

  // AS cards, field by field, over a spread of the AS table.
  const auto& ases = shared_snapshot().ases;
  for (std::size_t i = 0; i < ases.size(); i += ases.size() / 64 + 1) {
    const auto expect = reference.as_summary(ases[i].asn);
    const auto got = flat.as_summary(ases[i].asn);
    ASSERT_TRUE(expect.has_value());
    ASSERT_TRUE(got.has_value()) << ases[i].asn.value();
    EXPECT_EQ(got->region, expect->region);
    EXPECT_EQ(got->country, expect->country);
    EXPECT_EQ(got->tier, expect->tier);
    EXPECT_EQ(got->hypergiant, expect->hypergiant);
    EXPECT_EQ(got->transit_degree, expect->transit_degree);
    EXPECT_EQ(got->node_degree, expect->node_degree);
    EXPECT_EQ(got->cone_size, expect->cone_size);
    EXPECT_EQ(got->providers, expect->providers);
    EXPECT_EQ(got->customers, expect->customers);
    EXPECT_EQ(got->peers, expect->peers);
    EXPECT_EQ(got->siblings, expect->siblings);
    EXPECT_EQ(got->observed_links, expect->observed_links);
    EXPECT_EQ(got->validated_links, expect->validated_links);
  }
  EXPECT_FALSE(flat.as_summary(asn::Asn{4200000001}).has_value());

  // Aggregate reports run off the lazily inflated snapshot; bodies must
  // be byte-equal to the eager engine's.
  for (const char* key : {"regional", "topological", "table:asrank"}) {
    const auto flat_report = flat.report_json(key);
    const auto ref_report = reference.report_json(key);
    ASSERT_NE(flat_report, nullptr) << key;
    ASSERT_NE(ref_report, nullptr) << key;
    EXPECT_EQ(*flat_report, *ref_report) << key;
  }
}

TEST(QueryEngine, RelJsonCacheHitsOnRepeatAndCanonicalizesOrder) {
  // Private engine so the shared one's cache stats stay untouched.
  const serve::QueryEngine engine{io::Snapshot{shared_snapshot()}};
  EXPECT_EQ(engine.rel_cache_stats().hits, 0u);

  const auto& edge = shared_snapshot().edges.front();
  const auto first = engine.rel_json(edge.a, edge.b);
  ASSERT_NE(first, nullptr);
  EXPECT_NE(first->find("\"found\":true"), std::string::npos) << *first;

  // The reversed pair is the same canonical link: it must come from the
  // cache as the same shared body, not a re-render.
  const auto swapped = engine.rel_json(edge.b, edge.a);
  EXPECT_EQ(first, swapped);

  const auto stats = engine.rel_cache_stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.entries, 1u);

  // An unknown pair still renders (found:false) and is cached like any
  // other body.
  const auto unknown = engine.rel_json(asn::Asn{4200000001},
                                       asn::Asn{4200000002});
  ASSERT_NE(unknown, nullptr);
  EXPECT_NE(unknown->find("\"found\":false"), std::string::npos) << *unknown;
  EXPECT_EQ(engine.rel_cache_stats().misses, 2u);
}

}  // namespace
}  // namespace asrel
