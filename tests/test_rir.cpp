#include <gtest/gtest.h>

#include <sstream>

#include "rir/delegation.hpp"
#include "rir/iana_table.hpp"
#include "rir/region.hpp"
#include "rir/region_mapper.hpp"

namespace asrel::rir {
namespace {

using asn::Asn;

TEST(Region, NamesAndAbbreviations) {
  EXPECT_EQ(registry_name(Region::kRipe), "ripencc");
  EXPECT_EQ(registry_name(Region::kLacnic), "lacnic");
  EXPECT_EQ(abbreviation(Region::kAfrinic), "AF");
  EXPECT_EQ(abbreviation(Region::kApnic), "AP");
  EXPECT_EQ(abbreviation(Region::kArin), "AR");
  EXPECT_EQ(abbreviation(Region::kLacnic), "L");
  EXPECT_EQ(abbreviation(Region::kRipe), "R");
}

TEST(Region, ParseRegistryAcceptsAliases) {
  EXPECT_EQ(parse_registry("ripencc"), Region::kRipe);
  EXPECT_EQ(parse_registry("ripe"), Region::kRipe);
  EXPECT_EQ(parse_registry("arin"), Region::kArin);
  EXPECT_FALSE(parse_registry("icann"));
}

TEST(IanaTable, BlocksAreSortedAndDisjoint) {
  const auto blocks = iana_asn_blocks();
  ASSERT_FALSE(blocks.empty());
  for (std::size_t i = 0; i + 1 < blocks.size(); ++i) {
    EXPECT_LE(blocks[i].range.first, blocks[i].range.last);
    EXPECT_LT(blocks[i].range.last, blocks[i + 1].range.first)
        << "blocks " << i << " and " << i + 1 << " overlap or are unsorted";
  }
}

TEST(IanaTable, ReservedAsnsFallInGaps) {
  // AS_TRANS, documentation, private-use and last-ASN values must never be
  // inside an assignment block.
  for (const std::uint32_t value :
       {23456u, 64496u, 64512u, 65535u, 65536u, 131071u, 4200000000u,
        4294967295u}) {
    EXPECT_EQ(iana_region_of(Asn{value}), Region::kUnknown)
        << "AS" << value << " should be unassigned";
  }
}

TEST(IanaTable, KnownBlockLookups) {
  EXPECT_EQ(iana_region_of(Asn{1}), Region::kArin);
  EXPECT_EQ(iana_region_of(Asn{8192}), Region::kRipe);      // RIPE block
  EXPECT_EQ(iana_region_of(Asn{9216}), Region::kApnic);
  EXPECT_EQ(iana_region_of(Asn{27000}), Region::kLacnic);
  EXPECT_EQ(iana_region_of(Asn{37000}), Region::kAfrinic);
  EXPECT_EQ(iana_region_of(Asn{131072}), Region::kApnic);   // first 32-bit
  EXPECT_EQ(iana_region_of(Asn{196608}), Region::kRipe);
  EXPECT_EQ(iana_region_of(Asn{262144}), Region::kLacnic);
  EXPECT_EQ(iana_region_of(Asn{327680}), Region::kAfrinic);
  EXPECT_EQ(iana_region_of(Asn{393216}), Region::kArin);
}

TEST(IanaTable, EveryBlockMapsToItsRegion) {
  for (const auto& block : iana_asn_blocks()) {
    EXPECT_EQ(iana_region_of(block.range.first), block.region);
    EXPECT_EQ(iana_region_of(block.range.last), block.region);
  }
}

constexpr const char* kSampleFile =
    "2|lacnic|20180405|4|19930101|20180405|+0000\n"
    "lacnic|*|asn|*|2|summary\n"
    "lacnic|*|ipv4|*|1|summary\n"
    "lacnic|*|ipv6|*|1|summary\n"
    "lacnic|BR|asn|28000|1|20020101|allocated|opaque-28000\n"
    "lacnic|AR|asn|52224|8|20100101|assigned\n"
    "lacnic|BR|ipv4|200.0.0.0|4096|20020101|allocated\n"
    "lacnic|BR|ipv6|2801:80::|32|20120101|allocated\n";

TEST(Delegation, ParsesHeaderAndRecords) {
  ParseDiagnostics diag;
  const auto file = parse_delegation_text(kSampleFile, &diag);
  EXPECT_TRUE(diag.ok()) << (diag.issues.empty() ? "" : diag.issues[0].message);
  EXPECT_EQ(file.registry, Region::kLacnic);
  EXPECT_EQ(file.serial, "20180405");
  ASSERT_EQ(file.records.size(), 4u);
  EXPECT_EQ(file.record_count(ResourceType::kAsn), 2u);
  EXPECT_EQ(file.record_count(ResourceType::kIpv4), 1u);
  EXPECT_EQ(file.record_count(ResourceType::kIpv6), 1u);

  const auto& first = file.records[0];
  EXPECT_EQ(first.country_code, "BR");
  EXPECT_EQ(first.start, "28000");
  EXPECT_EQ(first.count, 1u);
  EXPECT_EQ(first.status, AllocationStatus::kAllocated);
  EXPECT_EQ(first.opaque_id, "opaque-28000");

  const auto range = file.records[1].asn_range();
  ASSERT_TRUE(range);
  EXPECT_EQ(range->first, Asn{52224});
  EXPECT_EQ(range->last, Asn{52231});
}

TEST(Delegation, ReportsBrokenLines) {
  ParseDiagnostics diag;
  const auto file = parse_delegation_text(
      "2|arin|20180405|1|19930101|20180405|+0000\n"
      "arin|US|asn|notanumber|1|20020101|allocated\n"
      "arin|US|asn|12|1|20020101|allocated\n",
      &diag);
  EXPECT_EQ(file.records.size(), 1u);  // good line survives
  EXPECT_EQ(diag.issues.size(), 1u);
}

TEST(Delegation, MissingVersionLineIsFlagged) {
  ParseDiagnostics diag;
  (void)parse_delegation_text("arin|US|asn|12|1|20020101|allocated\n", &diag);
  EXPECT_FALSE(diag.ok());
}

TEST(Delegation, WriteParseRoundTrip) {
  ParseDiagnostics diag;
  const auto file = parse_delegation_text(kSampleFile, &diag);
  const auto text = to_text(file);
  const auto reparsed = parse_delegation_text(text, &diag);
  ASSERT_EQ(reparsed.records.size(), file.records.size());
  for (std::size_t i = 0; i < file.records.size(); ++i) {
    EXPECT_EQ(reparsed.records[i].start, file.records[i].start);
    EXPECT_EQ(reparsed.records[i].count, file.records[i].count);
    EXPECT_EQ(reparsed.records[i].country_code, file.records[i].country_code);
    EXPECT_EQ(reparsed.records[i].type, file.records[i].type);
  }
}

TEST(RegionMapper, BootstrapsFromIana) {
  const RegionMapper mapper;
  EXPECT_EQ(mapper.region_of(Asn{1}), Region::kArin);
  EXPECT_EQ(mapper.region_of(Asn{8192}), Region::kRipe);
  EXPECT_EQ(mapper.region_of(Asn{23456}), Region::kUnknown);  // AS_TRANS
  EXPECT_EQ(mapper.refined_count(), 0u);
}

TEST(RegionMapper, DelegationRefinesMapping) {
  RegionMapper mapper;
  DelegationRecord record;
  record.registry = Region::kLacnic;
  record.country_code = "BR";
  record.type = ResourceType::kAsn;
  record.start = "8192";  // IANA says RIPE
  record.count = 1;
  record.status = AllocationStatus::kAllocated;
  const auto changed = mapper.apply(std::span{&record, 1});
  EXPECT_EQ(changed, 1u);
  EXPECT_EQ(mapper.region_of(Asn{8192}), Region::kLacnic);
  EXPECT_EQ(mapper.country_of(Asn{8192}), "BR");
  EXPECT_EQ(mapper.transferred_asns(), std::vector<Asn>{Asn{8192}});
}

TEST(RegionMapper, AvailableAndReservedRecordsIgnored) {
  RegionMapper mapper;
  DelegationRecord record;
  record.registry = Region::kLacnic;
  record.type = ResourceType::kAsn;
  record.start = "8192";
  record.count = 1;
  record.status = AllocationStatus::kAvailable;
  EXPECT_EQ(mapper.apply(std::span{&record, 1}), 0u);
  EXPECT_EQ(mapper.region_of(Asn{8192}), Region::kRipe);
}

TEST(RegionMapper, ReservedAsnsNeverMapped) {
  RegionMapper mapper;
  DelegationRecord record;
  record.registry = Region::kArin;
  record.type = ResourceType::kAsn;
  record.start = "23456";
  record.count = 1;
  record.status = AllocationStatus::kAssigned;
  mapper.apply(std::span{&record, 1});
  EXPECT_EQ(mapper.region_of(asn::kAsTrans), Region::kUnknown);
}

TEST(RegionMapper, MultiAsnRecordCoversRange) {
  RegionMapper mapper;
  DelegationRecord record;
  record.registry = Region::kApnic;
  record.type = ResourceType::kAsn;
  record.start = "196608";  // IANA: RIPE
  record.count = 4;
  record.status = AllocationStatus::kAllocated;
  mapper.apply(std::span{&record, 1});
  for (std::uint32_t value = 196608; value < 196612; ++value) {
    EXPECT_EQ(mapper.region_of(Asn{value}), Region::kApnic);
  }
  EXPECT_EQ(mapper.region_of(Asn{196612}), Region::kRipe);
}

TEST(RegionMapper, LaterApplicationsOverride) {
  RegionMapper mapper;
  DelegationRecord record;
  record.type = ResourceType::kAsn;
  record.start = "1000";
  record.count = 1;
  record.status = AllocationStatus::kAllocated;
  record.registry = Region::kApnic;
  mapper.apply(std::span{&record, 1});
  record.registry = Region::kAfrinic;
  mapper.apply(std::span{&record, 1});
  EXPECT_EQ(mapper.region_of(Asn{1000}), Region::kAfrinic);
}

}  // namespace
}  // namespace asrel::rir
