#include <gtest/gtest.h>

#include <unordered_set>

#include "rir/iana_table.hpp"
#include "test_support.hpp"
#include "topology/cone.hpp"
#include "topology/generator.hpp"
#include "topology/graph.hpp"
#include "topology/random.hpp"

namespace asrel::topo {
namespace {

using asn::Asn;

// ------------------------------------------------------------------ graph --

TEST(AsGraph, AddNodeIsIdempotent) {
  AsGraph graph;
  const auto a = graph.add_node(Asn{1});
  const auto b = graph.add_node(Asn{1});
  EXPECT_EQ(a, b);
  EXPECT_EQ(graph.node_count(), 1u);
}

TEST(AsGraph, RejectsSelfLoopsAndDuplicates) {
  AsGraph graph;
  EXPECT_FALSE(graph.add_edge(Asn{1}, Asn{1}, RelType::kP2P));
  EXPECT_TRUE(graph.add_edge(Asn{1}, Asn{2}, RelType::kP2C));
  EXPECT_FALSE(graph.add_edge(Asn{1}, Asn{2}, RelType::kP2P));
  EXPECT_FALSE(graph.add_edge(Asn{2}, Asn{1}, RelType::kP2P));
  EXPECT_EQ(graph.edge_count(), 1u);
}

TEST(AsGraph, P2cDirectionIsProviderFirst) {
  AsGraph graph;
  graph.add_edge(Asn{10}, Asn{20}, RelType::kP2C);
  EXPECT_EQ(graph.providers_of(Asn{20}), std::vector<Asn>{Asn{10}});
  EXPECT_EQ(graph.customers_of(Asn{10}), std::vector<Asn>{Asn{20}});
  EXPECT_TRUE(graph.providers_of(Asn{10}).empty());
}

TEST(AsGraph, P2pIsSymmetric) {
  AsGraph graph;
  graph.add_edge(Asn{30}, Asn{10}, RelType::kP2P);
  EXPECT_EQ(graph.peers_of(Asn{10}), std::vector<Asn>{Asn{30}});
  EXPECT_EQ(graph.peers_of(Asn{30}), std::vector<Asn>{Asn{10}});
  // Canonical orientation: lower ASN is u.
  const auto& edge = graph.edge(*graph.find_edge(Asn{30}, Asn{10}));
  EXPECT_EQ(graph.asn_of(edge.u), Asn{10});
}

TEST(AsGraph, RoleOfReportsOwnPerspective) {
  AsGraph graph;
  graph.add_edge(Asn{10}, Asn{20}, RelType::kP2C);
  EXPECT_EQ(graph.role_of(Asn{10}, Asn{20}), Neighbor::Role::kProvider);
  EXPECT_EQ(graph.role_of(Asn{20}, Asn{10}), Neighbor::Role::kCustomer);
  EXPECT_FALSE(graph.role_of(Asn{10}, Asn{99}));
}

// ------------------------------------------------------------------- cone --

TEST(CustomerCone, TransitiveReach) {
  AsGraph graph;
  graph.add_edge(Asn{1}, Asn{2}, RelType::kP2C);
  graph.add_edge(Asn{2}, Asn{3}, RelType::kP2C);
  graph.add_edge(Asn{2}, Asn{4}, RelType::kP2C);
  graph.add_edge(Asn{1}, Asn{5}, RelType::kP2P);  // peer: not in cone
  EXPECT_EQ(customer_cone(graph, Asn{1}),
            (std::vector<Asn>{Asn{2}, Asn{3}, Asn{4}}));
  EXPECT_EQ(customer_cone(graph, Asn{3}), std::vector<Asn>{});
}

TEST(CustomerCone, ToleratesCycles) {
  AsGraph graph;
  graph.add_edge(Asn{1}, Asn{2}, RelType::kP2C);
  graph.add_edge(Asn{2}, Asn{3}, RelType::kP2C);
  graph.add_edge(Asn{3}, Asn{1}, RelType::kP2C);  // pathological loop
  const auto cone = customer_cone(graph, Asn{1});
  EXPECT_EQ(cone.size(), 2u);  // 2 and 3, never itself
}

TEST(CustomerCone, SizesMatchPerNodeComputation) {
  AsGraph graph;
  graph.add_edge(Asn{1}, Asn{2}, RelType::kP2C);
  graph.add_edge(Asn{2}, Asn{3}, RelType::kP2C);
  graph.add_edge(Asn{4}, Asn{3}, RelType::kP2C);
  const auto sizes = customer_cone_sizes(graph);
  for (const Asn asn : graph.nodes()) {
    EXPECT_EQ(sizes[*graph.node_of(asn)], customer_cone(graph, asn).size());
  }
}

TEST(CustomerCone, TransitTest) {
  AsGraph graph;
  graph.add_edge(Asn{1}, Asn{2}, RelType::kP2C);
  EXPECT_TRUE(is_transit_as(graph, Asn{1}));
  EXPECT_FALSE(is_transit_as(graph, Asn{2}));
  EXPECT_FALSE(is_transit_as(graph, Asn{3}));
}

// ------------------------------------------------------------------- rng --

TEST(Rng, DeterministicForSeed) {
  Rng a{7};
  Rng b{7};
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.below(1000), b.below(1000));
  }
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng{1};
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, WeightedRespectsZeroWeights) {
  Rng rng{2};
  const double weights[] = {0.0, 1.0, 0.0};
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(rng.weighted(weights), 1u);
  }
}

TEST(Rng, GeometricRespectsCap) {
  Rng rng{3};
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LE(rng.geometric(0.9, 3), 3u);
  }
}

// -------------------------------------------------------------- generator --

class GeneratorInvariants : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  static World make(std::uint64_t seed) {
    TopologyParams params;
    params.as_count = 1500;
    params.seed = seed;
    return generate(params);
  }
};

TEST_P(GeneratorInvariants, CliqueIsFullMeshOfTier1s) {
  const auto world = make(GetParam());
  ASSERT_EQ(world.clique.size(), 16u);
  for (std::size_t i = 0; i < world.clique.size(); ++i) {
    EXPECT_EQ(world.attrs.at(world.clique[i]).tier, Tier::kClique);
    EXPECT_TRUE(world.attrs.at(world.clique[i]).is_tier1());
    for (std::size_t j = i + 1; j < world.clique.size(); ++j) {
      const auto edge_id =
          world.graph.find_edge(world.clique[i], world.clique[j]);
      ASSERT_TRUE(edge_id);
      EXPECT_EQ(world.graph.edge(*edge_id).rel, RelType::kP2P);
    }
  }
}

TEST_P(GeneratorInvariants, CliqueMembersAreProviderFree) {
  const auto world = make(GetParam());
  for (const Asn member : world.clique) {
    EXPECT_TRUE(world.graph.providers_of(member).empty())
        << "AS" << member.value() << " has a provider";
  }
}

TEST_P(GeneratorInvariants, EveryNonCliqueAsHasAProvider) {
  const auto world = make(GetParam());
  for (const Asn asn : world.graph.nodes()) {
    if (world.attrs.at(asn).tier == Tier::kClique) continue;
    EXPECT_FALSE(world.graph.providers_of(asn).empty())
        << "AS" << asn.value() << " is disconnected from the hierarchy";
  }
}

TEST_P(GeneratorInvariants, StubsHaveNoCustomers) {
  const auto world = make(GetParam());
  for (const Asn asn : world.graph.nodes()) {
    const auto& attrs = world.attrs.at(asn);
    if (attrs.tier != Tier::kStub || attrs.hypergiant) continue;
    EXPECT_TRUE(world.graph.customers_of(asn).empty());
  }
}

TEST_P(GeneratorInvariants, PartialTransitConfiguredAsRequested) {
  const auto world = make(GetParam());
  int tagged = 0;
  int silent = 0;
  for (const auto& edge : world.graph.edges()) {
    if (edge.scope == ExportScope::kFull) continue;
    EXPECT_EQ(edge.rel, RelType::kP2C);
    // Restricted scopes only hang off clique members.
    EXPECT_EQ(world.attrs.at(world.graph.asn_of(edge.u)).tier, Tier::kClique);
    edge.scope_via_community ? ++tagged : ++silent;
  }
  const auto& pt = world.params.partial_transit;
  // Small worlds may not hold enough mid/large transit customers to fill
  // the requested counts exactly.
  EXPECT_GT(tagged, 0);
  EXPECT_LE(tagged, pt.community_tagged_customers);
  EXPECT_GT(silent, 0);
  EXPECT_LE(silent, pt.silent_providers * pt.silent_customers_each);
  // All tagged links belong to the designated "Cogent".
  for (const auto& edge : world.graph.edges()) {
    if (edge.scope_via_community) {
      EXPECT_EQ(world.graph.asn_of(edge.u), world.cogent_like);
    }
  }
}

TEST_P(GeneratorInvariants, ExactlyOneMisdocumentedLink) {
  const auto world = make(GetParam());
  int misdocumented = 0;
  for (const auto& edge : world.graph.edges()) {
    if (!edge.misdocumented) continue;
    ++misdocumented;
    EXPECT_EQ(edge.rel, RelType::kP2P);
    EXPECT_TRUE(world.graph.asn_of(edge.u) == world.cogent_like ||
                world.graph.asn_of(edge.v) == world.cogent_like);
  }
  EXPECT_EQ(misdocumented, 1);
}

TEST_P(GeneratorInvariants, HybridLinksNeverCarryRestrictedScopes) {
  const auto world = make(GetParam());
  for (const auto& edge : world.graph.edges()) {
    if (edge.hybrid_rel) {
      EXPECT_EQ(edge.scope, ExportScope::kFull);
    }
  }
}

TEST_P(GeneratorInvariants, DelegationFilesCoverEveryAs) {
  const auto world = make(GetParam());
  std::unordered_set<Asn> delegated;
  for (const auto& file : world.delegations) {
    for (const auto& record : file.records) {
      if (record.type != rir::ResourceType::kAsn) continue;
      const auto range = record.asn_range();
      ASSERT_TRUE(range);
      for (std::uint64_t v = range->first.value(); v <= range->last.value();
           ++v) {
        delegated.insert(Asn{static_cast<std::uint32_t>(v)});
      }
      // The delegation registry must match the AS's true region.
      EXPECT_EQ(record.registry, world.attrs.at(range->first).region);
    }
  }
  for (const Asn asn : world.graph.nodes()) {
    EXPECT_TRUE(delegated.contains(asn));
  }
}

TEST_P(GeneratorInvariants, SomeAsnsAreTransfers) {
  const auto world = make(GetParam());
  // With transferred_fraction > 0, at least one AS should sit in a block
  // IANA assigned to a different region.
  int transfers = 0;
  for (const Asn asn : world.graph.nodes()) {
    const auto iana = rir::iana_region_of(asn);
    if (iana != rir::Region::kUnknown &&
        iana != world.attrs.at(asn).region) {
      ++transfers;
    }
  }
  EXPECT_GT(transfers, 0);
  EXPECT_LT(transfers, static_cast<int>(world.graph.node_count()) / 20);
}

TEST_P(GeneratorInvariants, HypergiantsAreContentStubsWithCustomers) {
  const auto world = make(GetParam());
  EXPECT_EQ(world.hypergiants.size(), 15u);
  for (const Asn giant : world.hypergiants) {
    const auto& attrs = world.attrs.at(giant);
    EXPECT_TRUE(attrs.hypergiant);
    EXPECT_FALSE(world.graph.providers_of(giant).empty());
    EXPECT_FALSE(world.graph.customers_of(giant).empty());  // captives
  }
}

TEST_P(GeneratorInvariants, RegionWeightsApproximatelyRespected) {
  const auto world = make(GetParam());
  std::array<int, 5> counts{};
  for (const Asn asn : world.graph.nodes()) {
    counts[static_cast<std::size_t>(world.attrs.at(asn).region)]++;
  }
  // RIPE must be the largest region, AFRINIC the smallest.
  EXPECT_EQ(*std::max_element(counts.begin(), counts.end()),
            counts[static_cast<std::size_t>(rir::Region::kRipe)]);
  EXPECT_EQ(*std::min_element(counts.begin(), counts.end()),
            counts[static_cast<std::size_t>(rir::Region::kAfrinic)]);
}

INSTANTIATE_TEST_SUITE_P(Seeds, GeneratorInvariants,
                         ::testing::Values(1u, 42u, 1337u, 90210u));

TEST(Generator, DeterministicForSeed) {
  TopologyParams params;
  params.as_count = 800;
  params.seed = 99;
  const auto a = generate(params);
  const auto b = generate(params);
  ASSERT_EQ(a.graph.node_count(), b.graph.node_count());
  ASSERT_EQ(a.graph.edge_count(), b.graph.edge_count());
  EXPECT_EQ(a.clique, b.clique);
  EXPECT_EQ(a.cogent_like, b.cogent_like);
  for (std::size_t i = 0; i < a.graph.edge_count(); ++i) {
    const auto& ea = a.graph.edges()[i];
    const auto& eb = b.graph.edges()[i];
    EXPECT_EQ(ea.u, eb.u);
    EXPECT_EQ(ea.v, eb.v);
    EXPECT_EQ(ea.rel, eb.rel);
    EXPECT_EQ(ea.scope, eb.scope);
  }
}

TEST(Generator, DifferentSeedsDiffer) {
  TopologyParams params;
  params.as_count = 800;
  params.seed = 1;
  const auto a = generate(params);
  params.seed = 2;
  const auto b = generate(params);
  EXPECT_NE(a.graph.edge_count(), b.graph.edge_count());
}

}  // namespace
}  // namespace asrel::topo
