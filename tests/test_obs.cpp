// Observability layer: lock-free counters/histograms under concurrent
// hammering (the TSan job runs the Obs.* filter), Prometheus bucket
// semantics and the nearest-rank quantile rule, span nesting/export
// determinism, the /metricsz exposition format, and the layer's central
// invariant — analysis reports are byte-identical with tracing enabled.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/bias_audit.hpp"
#include "core/scenario.hpp"
#include "eval/coverage.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "obs/slow_ring.hpp"
#include "obs/trace.hpp"
#include "serve/http_server.hpp"

namespace asrel {
namespace {

// ---------------------------------------------------------------- counters

TEST(Obs, CounterConcurrentHammering) {
  obs::Counter counter;
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 100000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) counter.inc();
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(counter.value(), kThreads * kPerThread);
}

TEST(Obs, GaugeSetAndAdd) {
  obs::Gauge gauge;
  gauge.set(7);
  gauge.add(-10);
  EXPECT_EQ(gauge.value(), -3);
}

// -------------------------------------------------------------- histograms

TEST(Obs, HistogramBucketBoundariesAreLessOrEqual) {
  // Prometheus `le` semantics: an observation exactly at a bound belongs
  // to that bound's bucket, not the next one.
  obs::Histogram hist{{1.0, 2.0, 4.0}};
  hist.observe(1.0);   // bucket le=1
  hist.observe(1.5);   // bucket le=2
  hist.observe(2.0);   // bucket le=2
  hist.observe(4.0);   // bucket le=4
  hist.observe(4.01);  // +Inf
  const auto snap = hist.snapshot();
  ASSERT_EQ(snap.counts.size(), 4u);
  EXPECT_EQ(snap.counts[0], 1u);
  EXPECT_EQ(snap.counts[1], 2u);
  EXPECT_EQ(snap.counts[2], 1u);
  EXPECT_EQ(snap.counts[3], 1u);
  EXPECT_EQ(snap.count, 5u);
  EXPECT_DOUBLE_EQ(snap.sum, 1.0 + 1.5 + 2.0 + 4.0 + 4.01);
}

TEST(Obs, HistogramConcurrentObserve) {
  obs::Histogram hist{obs::latency_buckets_us()};
  constexpr int kThreads = 8;
  constexpr int kPerThread = 50000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&hist, t] {
      for (int i = 0; i < kPerThread; ++i) {
        hist.observe(static_cast<double>(50 + (i * 37 + t) % 1000));
      }
    });
  }
  for (auto& thread : threads) thread.join();
  const auto snap = hist.snapshot();
  EXPECT_EQ(snap.count, static_cast<std::uint64_t>(kThreads * kPerThread));
  std::uint64_t bucket_total = 0;
  for (const auto c : snap.counts) bucket_total += c;
  EXPECT_EQ(bucket_total, snap.count);
}

TEST(Obs, QuantileNearestRankSmallSample) {
  // The regression the shared estimator exists for: with 10 samples
  // 1..10, p99 must be the maximum. The old sorted-vector form
  // `v[floor(0.99 * 9)]` picked the 9th-smallest (index 8) instead.
  obs::Histogram hist{{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}};
  for (int v = 1; v <= 10; ++v) hist.observe(static_cast<double>(v));
  const auto snap = hist.snapshot();
  EXPECT_DOUBLE_EQ(obs::histogram_quantile(snap, 0.99), 10.0);
  EXPECT_DOUBLE_EQ(obs::histogram_quantile(snap, 0.50), 5.0);
  EXPECT_DOUBLE_EQ(obs::histogram_quantile(snap, 0.0), 1.0);  // rank >= 1
}

TEST(Obs, QuantileInterpolatesInsideBucket) {
  // 4 observations in one [0, 100] bucket: rank r sits at r/4 of the way.
  obs::Histogram hist{{100.0, 200.0}};
  for (int i = 0; i < 4; ++i) hist.observe(50.0);
  EXPECT_DOUBLE_EQ(obs::histogram_quantile(hist.snapshot(), 0.5), 50.0);
  EXPECT_DOUBLE_EQ(obs::histogram_quantile(hist.snapshot(), 1.0), 100.0);
}

TEST(Obs, QuantileEmptyAndInfBucket) {
  obs::Histogram hist{{10.0}};
  EXPECT_DOUBLE_EQ(obs::histogram_quantile(hist.snapshot(), 0.99), 0.0);
  hist.observe(1e9);  // lands in +Inf: estimate clamps to the last bound
  EXPECT_DOUBLE_EQ(obs::histogram_quantile(hist.snapshot(), 0.99), 10.0);
}

// ---------------------------------------------------------------- registry

TEST(Obs, RegistryReturnsStableInstruments) {
  obs::MetricsRegistry registry;
  obs::Counter& a = registry.counter("asrel_test_total", "first help wins");
  obs::Counter& b = registry.counter("asrel_test_total", "ignored");
  EXPECT_EQ(&a, &b);
  a.inc();
  EXPECT_EQ(b.value(), 1u);
}

TEST(Obs, RegistrySnapshotIsNameSortedAndIncludesCollectors) {
  obs::MetricsRegistry registry;
  registry.counter("asrel_zz_total").add(2);
  registry.gauge("asrel_aa_depth").set(5);
  registry.add_collector([](std::vector<obs::MetricSnapshot>& out) {
    obs::MetricSnapshot snap;
    snap.name = "asrel_mm_total";
    snap.type = obs::MetricType::kCounter;
    snap.value = 9.0;
    out.push_back(std::move(snap));
  });
  const auto snaps = registry.snapshot();
  ASSERT_EQ(snaps.size(), 3u);
  EXPECT_EQ(snaps[0].name, "asrel_aa_depth");
  EXPECT_EQ(snaps[1].name, "asrel_mm_total");
  EXPECT_EQ(snaps[2].name, "asrel_zz_total");
}

TEST(Obs, PrometheusRenderGolden) {
  obs::MetricsRegistry registry;
  registry.counter("asrel_req_total{route=\"/rel\"}", "Requests by route")
      .add(3);
  registry.counter("asrel_req_total{route=\"other\"}").add(1);
  registry.gauge("asrel_depth", "Queue depth").set(4);
  auto& hist = registry.histogram("asrel_lat_us{route=\"/rel\"}",
                                  {1.0, 2.5}, "Latency");
  hist.observe(1.0);
  hist.observe(2.0);
  hist.observe(9.0);
  const std::string text = obs::render_prometheus(registry.snapshot());
  EXPECT_EQ(text,
            "# HELP asrel_depth Queue depth\n"
            "# TYPE asrel_depth gauge\n"
            "asrel_depth 4\n"
            "# HELP asrel_lat_us Latency\n"
            "# TYPE asrel_lat_us histogram\n"
            "asrel_lat_us_bucket{route=\"/rel\",le=\"1\"} 1\n"
            "asrel_lat_us_bucket{route=\"/rel\",le=\"2.5\"} 2\n"
            "asrel_lat_us_bucket{route=\"/rel\",le=\"+Inf\"} 3\n"
            "asrel_lat_us_sum{route=\"/rel\"} 12\n"
            "asrel_lat_us_count{route=\"/rel\"} 3\n"
            "# HELP asrel_req_total Requests by route\n"
            "# TYPE asrel_req_total counter\n"
            "asrel_req_total{route=\"/rel\"} 3\n"
            "asrel_req_total{route=\"other\"} 1\n");
}

/// A Prometheus text page: every line is a comment or `series value` with
/// a parseable number. Returns the number of sample lines.
std::size_t check_exposition(const std::string& text) {
  std::size_t samples = 0;
  std::istringstream in{text};
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) {
      ADD_FAILURE() << "blank line in exposition";
      continue;
    }
    if (line[0] == '#') {
      EXPECT_TRUE(line.rfind("# HELP ", 0) == 0 ||
                  line.rfind("# TYPE ", 0) == 0)
          << line;
      continue;
    }
    const std::size_t space = line.rfind(' ');
    if (space == std::string::npos) {
      ADD_FAILURE() << "sample line without a value: " << line;
      continue;
    }
    const std::string value = line.substr(space + 1);
    char* end = nullptr;
    std::strtod(value.c_str(), &end);
    EXPECT_TRUE(end != nullptr && *end == '\0') << line;
    ++samples;
  }
  return samples;
}

// ------------------------------------------------------------------ spans

TEST(Obs, SpanNestingAndDeterministicOrder) {
  auto& tracer = obs::Tracer::instance();
  obs::ScopedTracing tracing{true, /*clear_on_exit=*/true};
  tracer.clear();
  {
    obs::TraceSpan outer{"obs.test.outer"};
    { obs::TraceSpan inner{"obs.test.inner"}; }
  }
  { obs::TraceSpan second{"obs.test.second"}; }

  std::vector<obs::SpanRecord> mine;
  for (const auto& span : tracer.collect()) {
    if (span.name.rfind("obs.test.", 0) == 0) mine.push_back(span);
  }
  ASSERT_EQ(mine.size(), 3u);
  // One thread: completion order is inner, outer, second — and stays that
  // way on every run.
  EXPECT_EQ(mine[0].name, "obs.test.inner");
  EXPECT_EQ(mine[1].name, "obs.test.outer");
  EXPECT_EQ(mine[2].name, "obs.test.second");
  EXPECT_EQ(mine[0].depth, 1u);
  EXPECT_EQ(mine[1].depth, 0u);
  EXPECT_EQ(mine[2].depth, 0u);
  EXPECT_LT(mine[0].seq, mine[1].seq);
  EXPECT_LT(mine[1].seq, mine[2].seq);
  // The inner span nests inside the outer one's wall-clock window.
  EXPECT_GE(mine[0].start_us, mine[1].start_us);
  EXPECT_LE(mine[0].start_us + mine[0].dur_us,
            mine[1].start_us + mine[1].dur_us);

  // recent(1) returns the newest by global sequence.
  const auto recent = tracer.recent(1);
  ASSERT_EQ(recent.size(), 1u);
  EXPECT_EQ(recent[0].name, "obs.test.second");
}

TEST(Obs, SpanDisabledRecordsNothing) {
  auto& tracer = obs::Tracer::instance();
  obs::ScopedTracing tracing{false, /*clear_on_exit=*/true};
  tracer.clear();
  { obs::TraceSpan span{"obs.test.silent"}; }
  for (const auto& span : tracer.collect()) {
    EXPECT_NE(span.name, "obs.test.silent");
  }
}

TEST(Obs, SpanRingOverwritesOldestAndCountsDrops) {
  auto& tracer = obs::Tracer::instance();
  obs::ScopedTracing tracing{true, /*clear_on_exit=*/true};
  tracer.clear();
  tracer.set_capacity_per_thread(4);
  const std::uint64_t dropped_before = tracer.dropped();
  // Capacity applies to threads that register after the call, so record
  // from a fresh thread.
  std::thread([] {
    for (int i = 0; i < 10; ++i) {
      obs::TraceSpan span{"obs.test.ring." + std::to_string(i)};
    }
  }).join();
  tracer.set_capacity_per_thread(4096);  // restore the default

  std::vector<std::string> names;
  for (const auto& span : obs::Tracer::instance().collect()) {
    if (span.name.rfind("obs.test.ring.", 0) == 0) {
      names.push_back(span.name);
    }
  }
  EXPECT_EQ(names, (std::vector<std::string>{
                       "obs.test.ring.6", "obs.test.ring.7",
                       "obs.test.ring.8", "obs.test.ring.9"}));
  EXPECT_EQ(tracer.dropped() - dropped_before, 6u);
}

TEST(Obs, ChromeTraceJsonHasOneEventPerSpan) {
  auto& tracer = obs::Tracer::instance();
  obs::ScopedTracing tracing{true, /*clear_on_exit=*/true};
  tracer.clear();
  { obs::TraceSpan span{"obs.test.chrome"}; }
  const std::string json = tracer.chrome_trace_json();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"obs.test.chrome\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
}

// ------------------------------------------- tracing never changes output

TEST(Obs, ReportsByteIdenticalWithTracingEnabled) {
  core::ScenarioParams params;
  params.topology.as_count = 400;
  params.topology.seed = 7;

  const auto render = [&] {
    const auto scenario = core::Scenario::build(params);
    const core::BiasAudit audit{*scenario};
    return eval::render_coverage(audit.regional_coverage()) + "\n" +
           eval::render_coverage(audit.topological_coverage());
  };

  std::string plain, traced;
  {
    obs::ScopedTracing tracing{false, /*clear_on_exit=*/true};
    plain = render();
  }
  {
    obs::ScopedTracing tracing{true, /*clear_on_exit=*/true};
    traced = render();
    // The traced run actually recorded pipeline spans...
    bool saw_stage = false;
    for (const auto& span : obs::Tracer::instance().collect()) {
      saw_stage = saw_stage || span.name == "pipeline.build";
    }
    EXPECT_TRUE(saw_stage);
  }
  // ...and produced the exact same bytes.
  EXPECT_EQ(plain, traced);

  // The build also fed the always-on stage metrics in the global registry.
  const std::string text =
      obs::render_prometheus(obs::MetricsRegistry::global().snapshot());
  EXPECT_NE(text.find("asrel_stage_runs_total{stage=\"pipeline.build\"}"),
            std::string::npos);
  EXPECT_NE(text.find("asrel_stage_duration_us_bucket"), std::string::npos);
  EXPECT_NE(text.find("asrel_pool_"), std::string::npos);
  check_exposition(text);
}

// ------------------------------------------------------- /metricsz, /tracez

/// Minimal blocking keep-alive client (same shape as test_serve.cpp's).
class ObsTestClient {
 public:
  explicit ObsTestClient(std::uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) return;
    sockaddr_in address{};
    address.sin_family = AF_INET;
    address.sin_port = htons(port);
    address.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    if (::connect(fd_, reinterpret_cast<sockaddr*>(&address),
                  sizeof(address)) != 0) {
      ::close(fd_);
      fd_ = -1;
    }
  }
  ~ObsTestClient() {
    if (fd_ >= 0) ::close(fd_);
  }
  [[nodiscard]] bool connected() const { return fd_ >= 0; }

  /// `extra_header`, when nonempty, must be full header lines each ending
  /// in "\r\n" (e.g. "X-Request-Id: beef\r\n"). `headers` receives the raw
  /// status line + header block when non-null.
  int get(const std::string& path, std::string* body = nullptr,
          const std::string& extra_header = {},
          std::string* headers = nullptr) {
    const std::string raw = "GET " + path + " HTTP/1.1\r\nHost: test\r\n" +
                            extra_header + "\r\n";
    if (::send(fd_, raw.data(), raw.size(), MSG_NOSIGNAL) !=
        static_cast<ssize_t>(raw.size())) {
      return -1;
    }
    std::string data = std::move(leftover_);
    leftover_.clear();
    std::size_t header_end;
    while ((header_end = data.find("\r\n\r\n")) == std::string::npos) {
      if (!recv_more(&data)) return -1;
    }
    if (headers != nullptr) *headers = data.substr(0, header_end + 4);
    std::size_t content_length = 0;
    const std::size_t cl = data.find("Content-Length: ");
    if (cl != std::string::npos && cl < header_end) {
      content_length = static_cast<std::size_t>(
          std::strtoull(data.c_str() + cl + 16, nullptr, 10));
    }
    const std::size_t total = header_end + 4 + content_length;
    while (data.size() < total) {
      if (!recv_more(&data)) return -1;
    }
    if (body != nullptr) *body = data.substr(header_end + 4, content_length);
    leftover_ = data.substr(total);
    return std::atoi(data.c_str() + data.find(' ') + 1);
  }

 private:
  bool recv_more(std::string* data) {
    char chunk[4096];
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n <= 0) return false;
    data->append(chunk, static_cast<std::size_t>(n));
    return true;
  }

  int fd_ = -1;
  std::string leftover_;
};

TEST(Obs, HttpMetricszAndTracez) {
  obs::ScopedTracing tracing{true, /*clear_on_exit=*/true};
  obs::Tracer::instance().clear();

  serve::HttpServerOptions options;
  options.port = 0;
  options.worker_threads = 2;
  options.metrics_routes = {"/ping"};
  options.metrics_supplement = [](std::vector<obs::MetricSnapshot>& out) {
    obs::MetricSnapshot snap;
    snap.name = "asrel_supplement_gauge";
    snap.type = obs::MetricType::kGauge;
    snap.value = 42.0;
    out.push_back(std::move(snap));
  };
  serve::HttpServer server{
      [](const serve::HttpRequest&) {
        return serve::HttpResponse::json(200, "{\"pong\":true}");
      },
      options};
  std::string error;
  ASSERT_TRUE(server.start(&error)) << error;

  ObsTestClient client{server.port()};
  ASSERT_TRUE(client.connected());
  std::string body;
  EXPECT_EQ(client.get("/ping", &body), 200);
  EXPECT_EQ(client.get("/elsewhere", &body), 200);  // folds into "other"

  EXPECT_EQ(client.get("/metricsz", &body), 200);
  EXPECT_GT(check_exposition(body), 10u);
  EXPECT_NE(body.find("# TYPE asrel_http_requests_total counter"),
            std::string::npos);
  EXPECT_NE(body.find("asrel_http_responses_total{code=\"2xx\"}"),
            std::string::npos);
  EXPECT_NE(
      body.find("asrel_http_request_duration_us_bucket{route=\"/ping\""),
      std::string::npos);
  EXPECT_NE(
      body.find("asrel_http_request_duration_us_count{route=\"other\"} 1"),
      std::string::npos);
  EXPECT_NE(body.find("asrel_supplement_gauge 42"), std::string::npos);
  // Global-registry families (pool/stage metrics from earlier tests in
  // this binary) merge into the same page.
  EXPECT_NE(body.find("asrel_http_bytes_read_total"), std::string::npos);

  // /tracez serves the most recent spans; the /ping requests above were
  // recorded because tracing is on.
  EXPECT_EQ(client.get("/tracez?n=64", &body), 200);
  EXPECT_NE(body.find("\"enabled\":true"), std::string::npos);
  EXPECT_NE(body.find("\"spans\":["), std::string::npos);
  EXPECT_NE(body.find("\"http /ping\""), std::string::npos);
  EXPECT_NE(body.find("\"http other\""), std::string::npos);

  // An unparseable n falls back to the default window rather than erroring.
  EXPECT_EQ(client.get("/tracez?n=bogus", &body), 200);

  server.stop();
  const auto stats = server.stats();
  EXPECT_GE(stats.requests, 5u);
  EXPECT_GT(stats.bytes_read, 0u);
  EXPECT_GT(stats.bytes_written, 0u);
}

// ---------------------------------------------------------------- event log

/// Sleeps into the next monotonic second so a rate-capped LogSite starts
/// the test with a full per-second budget, regardless of what earlier
/// tests in this binary consumed from the current window.
void wait_for_fresh_rate_window() {
  const std::uint64_t second = obs::Tracer::instance().now_us() / 1000000;
  while (obs::Tracer::instance().now_us() / 1000000 == second) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
}

/// Structural JSON sanity: braces/brackets balance outside strings and
/// every string closes. Enough to catch a torn or mis-spliced render; CI
/// runs the real parser on crash dumps.
bool looks_like_balanced_json(const std::string& text) {
  int depth = 0;
  bool in_string = false;
  bool escaped = false;
  for (const char c : text) {
    if (in_string) {
      if (escaped) {
        escaped = false;
      } else if (c == '\\') {
        escaped = true;
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    if (c == '"') {
      in_string = true;
    } else if (c == '{' || c == '[') {
      ++depth;
    } else if (c == '}' || c == ']') {
      if (--depth < 0) return false;
    }
  }
  return depth == 0 && !in_string;
}

TEST(Obs, EventLogConcurrentEmitKeepsTotalOrder) {
  obs::ScopedLogging logging{true, /*clear_on_exit=*/true};
  obs::EventLog& log = obs::EventLog::instance();
  log.clear();

  static obs::LogSite site{"obs.test", "concurrent", 0};
  constexpr int kThreads = 8;
  constexpr int kPerThread = 500;
  const std::uint64_t emitted_before = log.emitted();

  // A concurrent reader exercises the emit/snapshot race under TSan.
  std::atomic<bool> stop{false};
  std::thread reader{[&log, &stop] {
    while (!stop.load(std::memory_order_relaxed)) {
      (void)log.recent(32);
      (void)log.dropped();
    }
  }};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t] {
      for (int i = 0; i < kPerThread; ++i) {
        obs::log_event(site, obs::LogLevel::kInfo,
                       static_cast<std::uint64_t>(t) + 1,
                       {{"iter", i}, {"thread", t}});
      }
    });
  }
  for (auto& thread : threads) thread.join();
  stop.store(true, std::memory_order_relaxed);
  reader.join();

  // Unlimited site: every emission is stored (per-thread rings are large
  // enough that nothing wraps).
  EXPECT_EQ(log.emitted() - emitted_before,
            static_cast<std::uint64_t>(kThreads) * kPerThread);

  // The merged view is in strictly increasing global sequence order.
  const std::vector<obs::LogEvent> events = log.recent(kThreads * kPerThread);
  ASSERT_FALSE(events.empty());
  for (std::size_t i = 1; i < events.size(); ++i) {
    EXPECT_LT(events[i - 1].seq, events[i].seq);
  }
}

TEST(Obs, EventLogRateCapSuppressesFloods) {
  obs::ScopedLogging logging{true, /*clear_on_exit=*/true};
  obs::EventLog& log = obs::EventLog::instance();

  // Site unique to this test, so the cap's window starts unconsumed.
  static obs::LogSite site{"obs.test", "capped", 4};
  const std::uint64_t emitted_before = log.emitted();
  const std::uint64_t site_suppressed_before = site.suppressed.load();
  const std::uint64_t global_suppressed_before = log.suppressed();

  for (int i = 0; i < 20; ++i) {
    obs::log_event(site, obs::LogLevel::kWarn, 0, {{"i", i}});
  }

  // The burst takes microseconds, so it spans at most one window roll:
  // between cap and 2*cap events stored, the rest counted as suppressed.
  const std::uint64_t stored = log.emitted() - emitted_before;
  EXPECT_GE(stored, 4u);
  EXPECT_LE(stored, 8u);
  EXPECT_EQ(site.suppressed.load() - site_suppressed_before, 20u - stored);
  EXPECT_EQ(log.suppressed() - global_suppressed_before, 20u - stored);
}

TEST(Obs, EventLogRenderGolden) {
  // The /logz and flight-recorder schema: fixed key order, request_id
  // only when nonzero, fields spliced verbatim after the envelope.
  obs::LogEvent event;
  event.seq = 7;
  event.wall_unix_ms = 1700000000123ull;
  event.mono_us = 42000;
  event.request_id = 0xdeadbeefull;
  event.component = "stream.hub";
  event.event = "swap";
  event.level = obs::LogLevel::kWarn;
  event.tid = 3;
  event.fields_json = ",\"epoch\":9,\"ok\":true";

  std::string out;
  obs::EventLog::render_event(event, out);
  EXPECT_EQ(out,
            "{\"seq\":7,\"ts_ms\":1700000000123,\"mono_us\":42000,"
            "\"level\":\"warn\",\"component\":\"stream.hub\","
            "\"event\":\"swap\",\"tid\":3,"
            "\"request_id\":\"00000000deadbeef\",\"epoch\":9,\"ok\":true}");
  EXPECT_TRUE(looks_like_balanced_json(out));

  // request_id 0 means "not request-scoped" and the key is omitted.
  event.request_id = 0;
  event.fields_json.clear();
  out.clear();
  obs::EventLog::render_event(event, out);
  EXPECT_EQ(out.find("request_id"), std::string::npos);
  EXPECT_TRUE(looks_like_balanced_json(out));
}

TEST(Obs, JsonEscapingCoversQuotesAndControlChars) {
  std::string out;
  obs::append_json_escaped(out, "a\"b\\c\nd\te\x01");
  EXPECT_EQ(out, "\"a\\\"b\\\\c\\nd\\te\\u0001\"");
}

TEST(Obs, RequestIdFormatAndParse) {
  EXPECT_EQ(obs::format_request_id(0), "0000000000000000");
  EXPECT_EQ(obs::format_request_id(0xdeadbeefull), "00000000deadbeef");
  EXPECT_EQ(obs::format_request_id(0xffffffffffffffffull),
            "ffffffffffffffff");

  std::uint64_t id = 0;
  EXPECT_TRUE(obs::parse_request_id("ff", &id));
  EXPECT_EQ(id, 0xffu);
  EXPECT_TRUE(obs::parse_request_id("00000000DEADBEEF", &id));
  EXPECT_EQ(id, 0xdeadbeefull);
  for (const std::uint64_t value :
       {std::uint64_t{1}, std::uint64_t{0x123456789abcdef0ull}}) {
    EXPECT_TRUE(obs::parse_request_id(obs::format_request_id(value), &id));
    EXPECT_EQ(id, value);
  }

  EXPECT_FALSE(obs::parse_request_id("", nullptr));
  EXPECT_FALSE(obs::parse_request_id("12345678901234567", nullptr));  // 17
  EXPECT_FALSE(obs::parse_request_id("xyz", nullptr));
  EXPECT_FALSE(obs::parse_request_id("0x12", nullptr));
  EXPECT_FALSE(obs::parse_request_id("12 34", nullptr));
}

// ---------------------------------------------------------------- slow ring

TEST(Obs, SlowRingKeepsSlowestAndEvictsInOrder) {
  const auto entry = [](std::uint64_t id, std::uint64_t latency,
                        std::uint64_t wall) {
    obs::SlowEntry e;
    e.request_id = id;
    e.latency_us = latency;
    e.wall_unix_ms = wall;
    return e;
  };

  obs::SlowRing ring{3};
  EXPECT_EQ(ring.capacity(), 3u);
  EXPECT_TRUE(ring.offer(entry(1, 100, 1)));
  EXPECT_TRUE(ring.offer(entry(2, 50, 2)));
  EXPECT_TRUE(ring.offer(entry(3, 200, 3)));

  // Full ring: the floor (50) rejects faster candidates without a lock...
  EXPECT_FALSE(ring.offer(entry(4, 10, 4)));
  // ...a slower one displaces the fastest retained entry (id 2 at 50)...
  EXPECT_TRUE(ring.offer(entry(5, 60, 5)));
  // ...which raises the floor to 60.
  EXPECT_FALSE(ring.offer(entry(6, 55, 6)));
  // A tie with the floor evicts the older equal-latency entry, so the
  // ring turns over instead of pinning first arrivals.
  EXPECT_TRUE(ring.offer(entry(7, 60, 7)));

  const std::vector<obs::SlowEntry> snap = ring.snapshot();
  ASSERT_EQ(snap.size(), 3u);
  EXPECT_EQ(snap[0].request_id, 3u);  // 200us
  EXPECT_EQ(snap[1].request_id, 1u);  // 100us
  EXPECT_EQ(snap[2].request_id, 7u);  // 60us, the newer of the ties
}

TEST(Obs, SlowRingSnapshotOrdersTiesMostRecentFirst) {
  const auto entry = [](std::uint64_t id, std::uint64_t latency,
                        std::uint64_t wall) {
    obs::SlowEntry e;
    e.request_id = id;
    e.latency_us = latency;
    e.wall_unix_ms = wall;
    return e;
  };

  obs::SlowRing ring{4};
  EXPECT_TRUE(ring.offer(entry(1, 5, 10)));
  EXPECT_TRUE(ring.offer(entry(2, 5, 20)));
  EXPECT_TRUE(ring.offer(entry(9, 5, 20)));  // same wall: id ascending
  EXPECT_TRUE(ring.offer(entry(3, 7, 15)));
  const std::vector<obs::SlowEntry> snap = ring.snapshot();
  ASSERT_EQ(snap.size(), 4u);
  EXPECT_EQ(snap[0].request_id, 3u);  // slowest first
  EXPECT_EQ(snap[1].request_id, 2u);  // tie: most recent wall, lowest id
  EXPECT_EQ(snap[2].request_id, 9u);
  EXPECT_EQ(snap[3].request_id, 1u);

  // capacity 0 clamps to 1 rather than an unusable ring.
  obs::SlowRing tiny{0};
  EXPECT_EQ(tiny.capacity(), 1u);
}

// ------------------------------------------- request ids over the wire

std::string header_value(const std::string& headers, const std::string& name) {
  const std::string needle = name + ": ";
  const std::size_t at = headers.find(needle);
  if (at == std::string::npos) return {};
  const std::size_t end = headers.find("\r\n", at);
  return headers.substr(at + needle.size(), end - at - needle.size());
}

class ObsHttpRequestId : public ::testing::TestWithParam<serve::ServeModel> {};

TEST_P(ObsHttpRequestId, EchoAndJoinAcrossSlowzTracezLogz) {
  obs::ScopedTracing tracing{true, /*clear_on_exit=*/true};
  obs::ScopedLogging logging{true, /*clear_on_exit=*/true};
  obs::Tracer::instance().clear();
  obs::EventLog::instance().clear();

  serve::HttpServerOptions options;
  options.port = 0;
  options.serve_model = GetParam();
  options.worker_threads = 2;
  options.metrics_routes = {"/ping"};
  options.epoch_supplier = [] { return std::uint64_t{77}; };
  serve::HttpServer server{
      [](const serve::HttpRequest&) {
        return serve::HttpResponse::json(200, "{\"pong\":true}");
      },
      options};
  std::string error;
  ASSERT_TRUE(server.start(&error)) << error;

  // The slow_request log site is rate-capped per monotonic second; start
  // a fresh window so this test's retentions all get logged.
  wait_for_fresh_rate_window();

  ObsTestClient client{server.port()};
  ASSERT_TRUE(client.connected());
  std::string body;
  std::string headers;

  // A valid client id is echoed in canonical 16-hex form...
  EXPECT_EQ(client.get("/ping", &body,
                       "X-Request-Id: 00000000deadbeef\r\n", &headers),
            200);
  EXPECT_EQ(header_value(headers, "X-Request-Id"), "00000000deadbeef");

  // ...including short or uppercase ids, which normalize.
  EXPECT_EQ(client.get("/ping", &body, "X-Request-Id: BEEF\r\n", &headers),
            200);
  EXPECT_EQ(header_value(headers, "X-Request-Id"), "000000000000beef");

  // An unparseable id is ignored: the server mints one instead.
  EXPECT_EQ(client.get("/ping", &body, "X-Request-Id: not-hex!\r\n",
                       &headers),
            200);
  const std::string generated = header_value(headers, "X-Request-Id");
  EXPECT_EQ(generated.size(), 16u);
  std::uint64_t generated_id = 0;
  EXPECT_TRUE(obs::parse_request_id(generated, &generated_id));
  EXPECT_NE(generated_id, 0u);
  EXPECT_NE(generated, "0000000000000000");

  // No header at all: also minted, and distinct from the previous one.
  EXPECT_EQ(client.get("/ping", &body, "", &headers), 200);
  EXPECT_EQ(header_value(headers, "X-Request-Id").size(), 16u);
  EXPECT_NE(header_value(headers, "X-Request-Id"), generated);

  // The tagged request is findable in /slowz (a cold ring retains it),
  // stamped with the supplier's epoch.
  EXPECT_EQ(client.get("/slowz", &body), 200);
  EXPECT_TRUE(looks_like_balanced_json(body)) << body;
  EXPECT_NE(body.find("\"00000000deadbeef\""), std::string::npos) << body;
  EXPECT_NE(body.find("\"epoch\":77"), std::string::npos);
  EXPECT_NE(body.find("\"/ping\":["), std::string::npos);
  EXPECT_NE(body.find("\"other\":["), std::string::npos);

  // ...in /tracez, both unfiltered-by-route and via ?id=.
  EXPECT_EQ(client.get("/tracez?id=00000000deadbeef", &body), 200);
  EXPECT_NE(body.find("\"request_id\":\"00000000deadbeef\""),
            std::string::npos)
      << body;
  EXPECT_NE(body.find("\"http /ping\""), std::string::npos);

  // ?route= narrows to one route's spans.
  EXPECT_EQ(client.get("/tracez?route=/ping", &body), 200);
  EXPECT_NE(body.find("\"http /ping\""), std::string::npos);
  EXPECT_EQ(body.find("\"http other\""), std::string::npos) << body;

  // ...and in /logz via ?id=: retention in the slow ring logged the
  // request while its id was hot.
  EXPECT_EQ(client.get("/logz?id=00000000deadbeef", &body), 200);
  EXPECT_TRUE(looks_like_balanced_json(body)) << body;
  EXPECT_NE(body.find("\"event\":\"slow_request\""), std::string::npos)
      << body;
  EXPECT_NE(body.find("\"request_id\":\"00000000deadbeef\""),
            std::string::npos);
  EXPECT_NE(body.find("\"enabled\":true"), std::string::npos);

  // Unfiltered /logz serves the ring with its bookkeeping fields; a bad
  // ?n= falls back to the default window rather than erroring.
  EXPECT_EQ(client.get("/logz?n=128", &body), 200);
  EXPECT_NE(body.find("\"events\":["), std::string::npos);
  EXPECT_NE(body.find("\"dropped\":"), std::string::npos);
  EXPECT_NE(body.find("\"suppressed\":"), std::string::npos);
  EXPECT_EQ(client.get("/logz?n=bogus", &body), 200);

  server.stop();
}

INSTANTIATE_TEST_SUITE_P(
    ServeModels, ObsHttpRequestId,
    ::testing::Values(serve::ServeModel::kEpoll,
                      serve::ServeModel::kThreadPool),
    [](const ::testing::TestParamInfo<serve::ServeModel>& info) {
      return info.param == serve::ServeModel::kEpoll ? "Epoll" : "ThreadPool";
    });

// ---------------------------------------------------------- flight recorder

TEST(Obs, FlightRecorderComposesValidJsonAndDumpsOnFatalSignal) {
  obs::ScopedLogging logging{true, /*clear_on_exit=*/true};
  namespace fs = std::filesystem;
  const fs::path crash_dir =
      fs::temp_directory_path() /
      ("asrel-obs-crash-" + std::to_string(::getpid()));
  fs::remove_all(crash_dir);

  obs::FlightRecorder::Config config;
  config.crash_dir = crash_dir.string();
  config.tool = "asrel_tests";
  config.build_info = "test-build";
  obs::FlightRecorder& flight = obs::FlightRecorder::instance();
  std::string error;
  ASSERT_TRUE(flight.arm(config, &error)) << error;
  flight.set_epoch(42);

  static obs::LogSite site{"obs.test", "pre_crash", 0};
  obs::log_event(site, obs::LogLevel::kError, 0x1234,
                 {{"detail", "boom"}});
  flight.refresh();

  // In-process: the composed dump is exactly what the handler would
  // write, and it is structurally valid JSON with the live preamble.
  const std::string composed = flight.compose_for_test(SIGSEGV);
  EXPECT_TRUE(looks_like_balanced_json(composed)) << composed;
  EXPECT_NE(composed.find("\"signal\":11"), std::string::npos);
  EXPECT_NE(composed.find("\"signal_name\":\"SIGSEGV\""), std::string::npos);
  EXPECT_NE(composed.find("\"crash_epoch\":42"), std::string::npos);
  EXPECT_NE(composed.find("\"tool\":\"asrel_tests\""), std::string::npos);
  EXPECT_NE(composed.find("\"snapshot_epoch\":42"), std::string::npos);
  EXPECT_NE(composed.find("\"pre_crash\""), std::string::npos);
  EXPECT_NE(composed.find("\"request_id\":\"0000000000001234\""),
            std::string::npos);
  EXPECT_NE(composed.find("\"metrics\":{"), std::string::npos);

  // End-to-end: a forked child dies by SIGABRT; the inherited handler
  // writes the black box (to the path rendered at arm time, i.e. this
  // process's pid) and the re-raise preserves the signal exit status.
  const std::string dump_path = flight.dump_path();
  ASSERT_FALSE(dump_path.empty());
  fs::remove(dump_path);

  const pid_t child = ::fork();
  ASSERT_GE(child, 0);
  if (child == 0) {
    ::raise(SIGABRT);
    ::_exit(97);  // unreachable: the handler re-raises with SIG_DFL
  }
  int status = 0;
  ASSERT_EQ(::waitpid(child, &status, 0), child);
  ASSERT_TRUE(WIFSIGNALED(status));
  EXPECT_EQ(WTERMSIG(status), SIGABRT);

  std::ifstream in{dump_path};
  ASSERT_TRUE(in.good()) << "no crash dump at " << dump_path;
  const std::string dump{std::istreambuf_iterator<char>(in),
                         std::istreambuf_iterator<char>()};
  EXPECT_TRUE(looks_like_balanced_json(dump)) << dump;
  EXPECT_NE(dump.find("\"signal\":6"), std::string::npos);
  EXPECT_NE(dump.find("\"signal_name\":\"SIGABRT\""), std::string::npos);
  EXPECT_NE(dump.find("\"crash_epoch\":42"), std::string::npos);
  EXPECT_NE(dump.find("\"crash_mono_us\":"), std::string::npos);
  EXPECT_NE(dump.find("\"pre_crash\""), std::string::npos);

  flight.disarm_for_test();
  fs::remove_all(crash_dir);
}

}  // namespace
}  // namespace asrel
