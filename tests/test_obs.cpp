// Observability layer: lock-free counters/histograms under concurrent
// hammering (the TSan job runs the Obs.* filter), Prometheus bucket
// semantics and the nearest-rank quantile rule, span nesting/export
// determinism, the /metricsz exposition format, and the layer's central
// invariant — analysis reports are byte-identical with tracing enabled.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cstring>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/bias_audit.hpp"
#include "core/scenario.hpp"
#include "eval/coverage.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "serve/http_server.hpp"

namespace asrel {
namespace {

// ---------------------------------------------------------------- counters

TEST(Obs, CounterConcurrentHammering) {
  obs::Counter counter;
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 100000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) counter.inc();
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(counter.value(), kThreads * kPerThread);
}

TEST(Obs, GaugeSetAndAdd) {
  obs::Gauge gauge;
  gauge.set(7);
  gauge.add(-10);
  EXPECT_EQ(gauge.value(), -3);
}

// -------------------------------------------------------------- histograms

TEST(Obs, HistogramBucketBoundariesAreLessOrEqual) {
  // Prometheus `le` semantics: an observation exactly at a bound belongs
  // to that bound's bucket, not the next one.
  obs::Histogram hist{{1.0, 2.0, 4.0}};
  hist.observe(1.0);   // bucket le=1
  hist.observe(1.5);   // bucket le=2
  hist.observe(2.0);   // bucket le=2
  hist.observe(4.0);   // bucket le=4
  hist.observe(4.01);  // +Inf
  const auto snap = hist.snapshot();
  ASSERT_EQ(snap.counts.size(), 4u);
  EXPECT_EQ(snap.counts[0], 1u);
  EXPECT_EQ(snap.counts[1], 2u);
  EXPECT_EQ(snap.counts[2], 1u);
  EXPECT_EQ(snap.counts[3], 1u);
  EXPECT_EQ(snap.count, 5u);
  EXPECT_DOUBLE_EQ(snap.sum, 1.0 + 1.5 + 2.0 + 4.0 + 4.01);
}

TEST(Obs, HistogramConcurrentObserve) {
  obs::Histogram hist{obs::latency_buckets_us()};
  constexpr int kThreads = 8;
  constexpr int kPerThread = 50000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&hist, t] {
      for (int i = 0; i < kPerThread; ++i) {
        hist.observe(static_cast<double>(50 + (i * 37 + t) % 1000));
      }
    });
  }
  for (auto& thread : threads) thread.join();
  const auto snap = hist.snapshot();
  EXPECT_EQ(snap.count, static_cast<std::uint64_t>(kThreads * kPerThread));
  std::uint64_t bucket_total = 0;
  for (const auto c : snap.counts) bucket_total += c;
  EXPECT_EQ(bucket_total, snap.count);
}

TEST(Obs, QuantileNearestRankSmallSample) {
  // The regression the shared estimator exists for: with 10 samples
  // 1..10, p99 must be the maximum. The old sorted-vector form
  // `v[floor(0.99 * 9)]` picked the 9th-smallest (index 8) instead.
  obs::Histogram hist{{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}};
  for (int v = 1; v <= 10; ++v) hist.observe(static_cast<double>(v));
  const auto snap = hist.snapshot();
  EXPECT_DOUBLE_EQ(obs::histogram_quantile(snap, 0.99), 10.0);
  EXPECT_DOUBLE_EQ(obs::histogram_quantile(snap, 0.50), 5.0);
  EXPECT_DOUBLE_EQ(obs::histogram_quantile(snap, 0.0), 1.0);  // rank >= 1
}

TEST(Obs, QuantileInterpolatesInsideBucket) {
  // 4 observations in one [0, 100] bucket: rank r sits at r/4 of the way.
  obs::Histogram hist{{100.0, 200.0}};
  for (int i = 0; i < 4; ++i) hist.observe(50.0);
  EXPECT_DOUBLE_EQ(obs::histogram_quantile(hist.snapshot(), 0.5), 50.0);
  EXPECT_DOUBLE_EQ(obs::histogram_quantile(hist.snapshot(), 1.0), 100.0);
}

TEST(Obs, QuantileEmptyAndInfBucket) {
  obs::Histogram hist{{10.0}};
  EXPECT_DOUBLE_EQ(obs::histogram_quantile(hist.snapshot(), 0.99), 0.0);
  hist.observe(1e9);  // lands in +Inf: estimate clamps to the last bound
  EXPECT_DOUBLE_EQ(obs::histogram_quantile(hist.snapshot(), 0.99), 10.0);
}

// ---------------------------------------------------------------- registry

TEST(Obs, RegistryReturnsStableInstruments) {
  obs::MetricsRegistry registry;
  obs::Counter& a = registry.counter("asrel_test_total", "first help wins");
  obs::Counter& b = registry.counter("asrel_test_total", "ignored");
  EXPECT_EQ(&a, &b);
  a.inc();
  EXPECT_EQ(b.value(), 1u);
}

TEST(Obs, RegistrySnapshotIsNameSortedAndIncludesCollectors) {
  obs::MetricsRegistry registry;
  registry.counter("asrel_zz_total").add(2);
  registry.gauge("asrel_aa_depth").set(5);
  registry.add_collector([](std::vector<obs::MetricSnapshot>& out) {
    obs::MetricSnapshot snap;
    snap.name = "asrel_mm_total";
    snap.type = obs::MetricType::kCounter;
    snap.value = 9.0;
    out.push_back(std::move(snap));
  });
  const auto snaps = registry.snapshot();
  ASSERT_EQ(snaps.size(), 3u);
  EXPECT_EQ(snaps[0].name, "asrel_aa_depth");
  EXPECT_EQ(snaps[1].name, "asrel_mm_total");
  EXPECT_EQ(snaps[2].name, "asrel_zz_total");
}

TEST(Obs, PrometheusRenderGolden) {
  obs::MetricsRegistry registry;
  registry.counter("asrel_req_total{route=\"/rel\"}", "Requests by route")
      .add(3);
  registry.counter("asrel_req_total{route=\"other\"}").add(1);
  registry.gauge("asrel_depth", "Queue depth").set(4);
  auto& hist = registry.histogram("asrel_lat_us{route=\"/rel\"}",
                                  {1.0, 2.5}, "Latency");
  hist.observe(1.0);
  hist.observe(2.0);
  hist.observe(9.0);
  const std::string text = obs::render_prometheus(registry.snapshot());
  EXPECT_EQ(text,
            "# HELP asrel_depth Queue depth\n"
            "# TYPE asrel_depth gauge\n"
            "asrel_depth 4\n"
            "# HELP asrel_lat_us Latency\n"
            "# TYPE asrel_lat_us histogram\n"
            "asrel_lat_us_bucket{route=\"/rel\",le=\"1\"} 1\n"
            "asrel_lat_us_bucket{route=\"/rel\",le=\"2.5\"} 2\n"
            "asrel_lat_us_bucket{route=\"/rel\",le=\"+Inf\"} 3\n"
            "asrel_lat_us_sum{route=\"/rel\"} 12\n"
            "asrel_lat_us_count{route=\"/rel\"} 3\n"
            "# HELP asrel_req_total Requests by route\n"
            "# TYPE asrel_req_total counter\n"
            "asrel_req_total{route=\"/rel\"} 3\n"
            "asrel_req_total{route=\"other\"} 1\n");
}

/// A Prometheus text page: every line is a comment or `series value` with
/// a parseable number. Returns the number of sample lines.
std::size_t check_exposition(const std::string& text) {
  std::size_t samples = 0;
  std::istringstream in{text};
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) {
      ADD_FAILURE() << "blank line in exposition";
      continue;
    }
    if (line[0] == '#') {
      EXPECT_TRUE(line.rfind("# HELP ", 0) == 0 ||
                  line.rfind("# TYPE ", 0) == 0)
          << line;
      continue;
    }
    const std::size_t space = line.rfind(' ');
    if (space == std::string::npos) {
      ADD_FAILURE() << "sample line without a value: " << line;
      continue;
    }
    const std::string value = line.substr(space + 1);
    char* end = nullptr;
    std::strtod(value.c_str(), &end);
    EXPECT_TRUE(end != nullptr && *end == '\0') << line;
    ++samples;
  }
  return samples;
}

// ------------------------------------------------------------------ spans

TEST(Obs, SpanNestingAndDeterministicOrder) {
  auto& tracer = obs::Tracer::instance();
  obs::ScopedTracing tracing{true, /*clear_on_exit=*/true};
  tracer.clear();
  {
    obs::TraceSpan outer{"obs.test.outer"};
    { obs::TraceSpan inner{"obs.test.inner"}; }
  }
  { obs::TraceSpan second{"obs.test.second"}; }

  std::vector<obs::SpanRecord> mine;
  for (const auto& span : tracer.collect()) {
    if (span.name.rfind("obs.test.", 0) == 0) mine.push_back(span);
  }
  ASSERT_EQ(mine.size(), 3u);
  // One thread: completion order is inner, outer, second — and stays that
  // way on every run.
  EXPECT_EQ(mine[0].name, "obs.test.inner");
  EXPECT_EQ(mine[1].name, "obs.test.outer");
  EXPECT_EQ(mine[2].name, "obs.test.second");
  EXPECT_EQ(mine[0].depth, 1u);
  EXPECT_EQ(mine[1].depth, 0u);
  EXPECT_EQ(mine[2].depth, 0u);
  EXPECT_LT(mine[0].seq, mine[1].seq);
  EXPECT_LT(mine[1].seq, mine[2].seq);
  // The inner span nests inside the outer one's wall-clock window.
  EXPECT_GE(mine[0].start_us, mine[1].start_us);
  EXPECT_LE(mine[0].start_us + mine[0].dur_us,
            mine[1].start_us + mine[1].dur_us);

  // recent(1) returns the newest by global sequence.
  const auto recent = tracer.recent(1);
  ASSERT_EQ(recent.size(), 1u);
  EXPECT_EQ(recent[0].name, "obs.test.second");
}

TEST(Obs, SpanDisabledRecordsNothing) {
  auto& tracer = obs::Tracer::instance();
  obs::ScopedTracing tracing{false, /*clear_on_exit=*/true};
  tracer.clear();
  { obs::TraceSpan span{"obs.test.silent"}; }
  for (const auto& span : tracer.collect()) {
    EXPECT_NE(span.name, "obs.test.silent");
  }
}

TEST(Obs, SpanRingOverwritesOldestAndCountsDrops) {
  auto& tracer = obs::Tracer::instance();
  obs::ScopedTracing tracing{true, /*clear_on_exit=*/true};
  tracer.clear();
  tracer.set_capacity_per_thread(4);
  const std::uint64_t dropped_before = tracer.dropped();
  // Capacity applies to threads that register after the call, so record
  // from a fresh thread.
  std::thread([] {
    for (int i = 0; i < 10; ++i) {
      obs::TraceSpan span{"obs.test.ring." + std::to_string(i)};
    }
  }).join();
  tracer.set_capacity_per_thread(4096);  // restore the default

  std::vector<std::string> names;
  for (const auto& span : obs::Tracer::instance().collect()) {
    if (span.name.rfind("obs.test.ring.", 0) == 0) {
      names.push_back(span.name);
    }
  }
  EXPECT_EQ(names, (std::vector<std::string>{
                       "obs.test.ring.6", "obs.test.ring.7",
                       "obs.test.ring.8", "obs.test.ring.9"}));
  EXPECT_EQ(tracer.dropped() - dropped_before, 6u);
}

TEST(Obs, ChromeTraceJsonHasOneEventPerSpan) {
  auto& tracer = obs::Tracer::instance();
  obs::ScopedTracing tracing{true, /*clear_on_exit=*/true};
  tracer.clear();
  { obs::TraceSpan span{"obs.test.chrome"}; }
  const std::string json = tracer.chrome_trace_json();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"obs.test.chrome\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
}

// ------------------------------------------- tracing never changes output

TEST(Obs, ReportsByteIdenticalWithTracingEnabled) {
  core::ScenarioParams params;
  params.topology.as_count = 400;
  params.topology.seed = 7;

  const auto render = [&] {
    const auto scenario = core::Scenario::build(params);
    const core::BiasAudit audit{*scenario};
    return eval::render_coverage(audit.regional_coverage()) + "\n" +
           eval::render_coverage(audit.topological_coverage());
  };

  std::string plain, traced;
  {
    obs::ScopedTracing tracing{false, /*clear_on_exit=*/true};
    plain = render();
  }
  {
    obs::ScopedTracing tracing{true, /*clear_on_exit=*/true};
    traced = render();
    // The traced run actually recorded pipeline spans...
    bool saw_stage = false;
    for (const auto& span : obs::Tracer::instance().collect()) {
      saw_stage = saw_stage || span.name == "pipeline.build";
    }
    EXPECT_TRUE(saw_stage);
  }
  // ...and produced the exact same bytes.
  EXPECT_EQ(plain, traced);

  // The build also fed the always-on stage metrics in the global registry.
  const std::string text =
      obs::render_prometheus(obs::MetricsRegistry::global().snapshot());
  EXPECT_NE(text.find("asrel_stage_runs_total{stage=\"pipeline.build\"}"),
            std::string::npos);
  EXPECT_NE(text.find("asrel_stage_duration_us_bucket"), std::string::npos);
  EXPECT_NE(text.find("asrel_pool_"), std::string::npos);
  check_exposition(text);
}

// ------------------------------------------------------- /metricsz, /tracez

/// Minimal blocking keep-alive client (same shape as test_serve.cpp's).
class ObsTestClient {
 public:
  explicit ObsTestClient(std::uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) return;
    sockaddr_in address{};
    address.sin_family = AF_INET;
    address.sin_port = htons(port);
    address.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    if (::connect(fd_, reinterpret_cast<sockaddr*>(&address),
                  sizeof(address)) != 0) {
      ::close(fd_);
      fd_ = -1;
    }
  }
  ~ObsTestClient() {
    if (fd_ >= 0) ::close(fd_);
  }
  [[nodiscard]] bool connected() const { return fd_ >= 0; }

  int get(const std::string& path, std::string* body = nullptr) {
    const std::string raw =
        "GET " + path + " HTTP/1.1\r\nHost: test\r\n\r\n";
    if (::send(fd_, raw.data(), raw.size(), MSG_NOSIGNAL) !=
        static_cast<ssize_t>(raw.size())) {
      return -1;
    }
    std::string data = std::move(leftover_);
    leftover_.clear();
    std::size_t header_end;
    while ((header_end = data.find("\r\n\r\n")) == std::string::npos) {
      if (!recv_more(&data)) return -1;
    }
    std::size_t content_length = 0;
    const std::size_t cl = data.find("Content-Length: ");
    if (cl != std::string::npos && cl < header_end) {
      content_length = static_cast<std::size_t>(
          std::strtoull(data.c_str() + cl + 16, nullptr, 10));
    }
    const std::size_t total = header_end + 4 + content_length;
    while (data.size() < total) {
      if (!recv_more(&data)) return -1;
    }
    if (body != nullptr) *body = data.substr(header_end + 4, content_length);
    leftover_ = data.substr(total);
    return std::atoi(data.c_str() + data.find(' ') + 1);
  }

 private:
  bool recv_more(std::string* data) {
    char chunk[4096];
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n <= 0) return false;
    data->append(chunk, static_cast<std::size_t>(n));
    return true;
  }

  int fd_ = -1;
  std::string leftover_;
};

TEST(Obs, HttpMetricszAndTracez) {
  obs::ScopedTracing tracing{true, /*clear_on_exit=*/true};
  obs::Tracer::instance().clear();

  serve::HttpServerOptions options;
  options.port = 0;
  options.worker_threads = 2;
  options.metrics_routes = {"/ping"};
  options.metrics_supplement = [](std::vector<obs::MetricSnapshot>& out) {
    obs::MetricSnapshot snap;
    snap.name = "asrel_supplement_gauge";
    snap.type = obs::MetricType::kGauge;
    snap.value = 42.0;
    out.push_back(std::move(snap));
  };
  serve::HttpServer server{
      [](const serve::HttpRequest&) {
        return serve::HttpResponse::json(200, "{\"pong\":true}");
      },
      options};
  std::string error;
  ASSERT_TRUE(server.start(&error)) << error;

  ObsTestClient client{server.port()};
  ASSERT_TRUE(client.connected());
  std::string body;
  EXPECT_EQ(client.get("/ping", &body), 200);
  EXPECT_EQ(client.get("/elsewhere", &body), 200);  // folds into "other"

  EXPECT_EQ(client.get("/metricsz", &body), 200);
  EXPECT_GT(check_exposition(body), 10u);
  EXPECT_NE(body.find("# TYPE asrel_http_requests_total counter"),
            std::string::npos);
  EXPECT_NE(body.find("asrel_http_responses_total{code=\"2xx\"}"),
            std::string::npos);
  EXPECT_NE(
      body.find("asrel_http_request_duration_us_bucket{route=\"/ping\""),
      std::string::npos);
  EXPECT_NE(
      body.find("asrel_http_request_duration_us_count{route=\"other\"} 1"),
      std::string::npos);
  EXPECT_NE(body.find("asrel_supplement_gauge 42"), std::string::npos);
  // Global-registry families (pool/stage metrics from earlier tests in
  // this binary) merge into the same page.
  EXPECT_NE(body.find("asrel_http_bytes_read_total"), std::string::npos);

  // /tracez serves the most recent spans; the /ping requests above were
  // recorded because tracing is on.
  EXPECT_EQ(client.get("/tracez?n=64", &body), 200);
  EXPECT_NE(body.find("\"enabled\":true"), std::string::npos);
  EXPECT_NE(body.find("\"spans\":["), std::string::npos);
  EXPECT_NE(body.find("\"http /ping\""), std::string::npos);
  EXPECT_NE(body.find("\"http other\""), std::string::npos);

  // An unparseable n falls back to the default window rather than erroring.
  EXPECT_EQ(client.get("/tracez?n=bogus", &body), 200);

  server.stop();
  const auto stats = server.stats();
  EXPECT_GE(stats.requests, 5u);
  EXPECT_GT(stats.bytes_read, 0u);
  EXPECT_GT(stats.bytes_written, 0u);
}

}  // namespace
}  // namespace asrel
