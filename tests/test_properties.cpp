// Cross-module property tests on fully generated scenarios: invariants
// that must hold for any seed, sampled over the shared scenario plus a
// couple of small fresh worlds.
#include <gtest/gtest.h>

#include <numeric>
#include <unordered_set>

#include "eval/heatmap.hpp"
#include "infer/asrank.hpp"
#include "io/as_rel.hpp"
#include "test_support.hpp"

namespace asrel {
namespace {

using asn::Asn;

// ---- valley-freeness over real collected paths ---------------------------

TEST(Property, CollectedPathsAreValleyFree) {
  // Sampled check over the shared scenario: reading a path collector-first,
  // relationships ascend (provider direction), flatten at most once (peer),
  // then descend. Siblings may appear anywhere.
  const auto& scenario = test::shared_scenario();
  const auto& graph = scenario.world().graph;
  const auto propagator = scenario.propagator();

  std::size_t checked = 0;
  std::size_t sampled = 0;
  scenario.paths().for_each_path([&](const bgp::PathTable::PathRef& ref) {
    if (++sampled % 97 != 0 || checked >= 3000) return;  // sample ~1 %
    // Collapse prepending; skip mangled/leaked paths (hops outside the
    // graph).
    std::vector<Asn> hops;
    for (const Asn hop : ref.path) {
      if (hops.empty() || hops.back() != hop) hops.push_back(hop);
    }
    for (const Asn hop : hops) {
      if (!graph.node_of(hop)) return;
    }
    ++checked;
    const Asn origin = graph.asn_of(ref.origin);
    int phase = 0;  // 0 ascending, 2 descending
    for (std::size_t i = 0; i + 1 < hops.size(); ++i) {
      const auto edge_id = graph.find_edge(hops[i], hops[i + 1]);
      ASSERT_TRUE(edge_id);
      const auto& edge = graph.edge(*edge_id);
      const auto rel = propagator.effective_rel(edge, origin);
      if (rel == topo::RelType::kS2S) continue;
      if (rel == topo::RelType::kP2P) {
        EXPECT_EQ(phase, 0) << "peer hop after the peak";
        phase = 2;
        continue;
      }
      const bool left_is_provider = graph.asn_of(edge.u) == hops[i];
      if (phase == 0 && !left_is_provider) continue;  // still ascending
      EXPECT_TRUE(left_is_provider) << "ascent after descent";
      phase = 2;
    }
  });
  EXPECT_GT(checked, 500u);
}

// ---- link accounting -------------------------------------------------------

TEST(Property, EveryVisibleLinkExistsInGroundTruth) {
  const auto& scenario = test::shared_scenario();
  const auto& graph = scenario.world().graph;
  for (const auto& link : scenario.observed().link_order()) {
    EXPECT_TRUE(graph.find_edge(link.a, link.b))
        << link.a.value() << "-" << link.b.value();
  }
}

TEST(Property, LinkOccurrencesMatchPathScan) {
  const auto& scenario = test::shared_scenario();
  const auto& observed = scenario.observed();
  std::size_t positions = 0;
  for (std::size_t p = 0; p < observed.path_count(); ++p) {
    positions += observed.path(p).size() - 1;
  }
  std::size_t recorded = 0;
  for (const auto& [link, info] : observed.links()) {
    recorded += info.occurrences;
  }
  EXPECT_EQ(recorded, positions);
}

TEST(Property, TransitDegreeNeverExceedsNodeDegree) {
  const auto& observed = test::shared_scenario().observed();
  for (infer::AsIndex i = 0; i < observed.as_count(); ++i) {
    EXPECT_LE(observed.transit_degree(i), observed.node_degree(i));
  }
}

// ---- heatmap invariants ----------------------------------------------------

TEST(Property, HeatmapFractionsSumToOne) {
  eval::Heatmap map{eval::HeatmapSpec{.x_cap = 100, .y_cap = 50,
                                      .x_bins = 10, .y_bins = 5}};
  for (std::uint32_t i = 0; i < 500; ++i) {
    map.add(i % 137, (i * 7) % 211);
  }
  double total = 0;
  for (std::size_t x = 0; x < 10; ++x) {
    for (std::size_t y = 0; y < 5; ++y) {
      total += map.fraction(x, y);
    }
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
  EXPECT_EQ(map.total(), 500u);
}

// ---- ground-truth serialization round trip --------------------------------

TEST(Property, GroundTruthAsRelRoundTripsAllEdges) {
  const auto& world = test::shared_scenario().world();
  std::ostringstream out;
  io::write_as_rel(world.graph, out);
  const auto parsed = io::parse_as_rel_text(out.str());
  ASSERT_EQ(parsed.size(), world.graph.edge_count());
  std::size_t sampled = 0;
  for (const auto& edge : world.graph.edges()) {
    if (++sampled % 17 != 0) continue;
    const Asn u = world.graph.asn_of(edge.u);
    const Asn v = world.graph.asn_of(edge.v);
    const auto* rel = parsed.find(val::AsLink{u, v});
    ASSERT_NE(rel, nullptr);
    EXPECT_EQ(rel->rel, edge.rel);
    if (edge.rel == topo::RelType::kP2C) {
      EXPECT_EQ(rel->provider, u);
    }
  }
}

// ---- inference totals -------------------------------------------------------

TEST(Property, AsRankClassCountsPartitionTheLinks) {
  const auto& scenario = test::shared_scenario();
  const auto result = infer::run_asrank(scenario.observed());
  std::size_t p2p = 0;
  std::size_t p2c = 0;
  for (const auto& link : result.inference.order()) {
    const auto* rel = result.inference.find(link);
    ASSERT_NE(rel, nullptr);
    switch (rel->rel) {
      case topo::RelType::kP2P:
        ++p2p;
        break;
      case topo::RelType::kP2C:
        ++p2c;
        // Provider is one of the endpoints.
        EXPECT_TRUE(rel->provider == link.a || rel->provider == link.b);
        break;
      case topo::RelType::kS2S:
        FAIL() << "ASRank never emits sibling labels";
    }
  }
  EXPECT_EQ(p2p + p2c, scenario.observed().link_count());
  // The world is customer-provider dominated.
  EXPECT_GT(p2c, p2p);
}

TEST(Property, VantagePointsObserveTheirOwnFirstHops) {
  const auto& scenario = test::shared_scenario();
  const auto& observed = scenario.observed();
  // Each VP's origin_count equals the number of its sanitized paths.
  std::vector<std::uint32_t> per_vp(observed.vp_count(), 0);
  for (std::size_t p = 0; p < observed.path_count(); ++p) {
    ++per_vp[observed.vp_of_path(p)];
  }
  for (std::uint16_t vp = 0; vp < observed.vp_count(); ++vp) {
    EXPECT_EQ(observed.origin_count(vp), per_vp[vp]);
  }
}

}  // namespace
}  // namespace asrel
