// Wire-codec pinning: io/wire.hpp's little-endian primitives are the
// substrate of every binary format in the repo (snapshot v2, flat v3,
// stream checkpoints), so their layout is asserted here byte for byte —
// a width asymmetry (a u64 written where a u32 is read) or an endianness
// slip would silently corrupt every format at once. The suite also pins
// the cross-format invariants: v3 inflates back to byte-identical v2,
// corruption is rejected at the right layer (structural vs deep verify),
// and the checkpoint codec is canonical (accepted bytes re-encode
// identically).
#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/snapshot_builder.hpp"
#include "io/flat_snapshot.hpp"
#include "io/snapshot.hpp"
#include "io/wire.hpp"
#include "stream/checkpoint.hpp"
#include "test_support.hpp"

namespace asrel {
namespace {

const io::Snapshot& wire_snapshot() {
  static const io::Snapshot snapshot =
      core::build_snapshot(test::shared_scenario());
  return snapshot;
}

/// A decoder positioned at the start of `bytes` (which must outlive it).
io::wire::Cursor cursor_over(std::string_view bytes) {
  io::wire::Cursor cursor;
  cursor.data = bytes;
  return cursor;
}

// ------------------------------------------------------------- primitives

TEST(Wire, PrimitiveRoundTripsAreWidthSymmetric) {
  // Table-driven: each encoder against its decoder over boundary
  // patterns. The cursor position check is the width audit — an encoder
  // emitting more (or fewer) bytes than its decoder consumes fails here
  // even when the value happens to round-trip.
  for (const std::uint8_t v : {std::uint8_t{0}, std::uint8_t{1},
                               std::uint8_t{0x7F}, std::uint8_t{0x80},
                               std::uint8_t{0xFF}}) {
    std::string out;
    io::wire::put_u8(out, v);
    ASSERT_EQ(out.size(), 1u);
    auto cursor = cursor_over(out);
    EXPECT_EQ(cursor.get_u8("u8"), v);
    EXPECT_FALSE(cursor.failed()) << cursor.error;
    EXPECT_EQ(cursor.remaining(), 0u);
  }

  for (const std::uint32_t v :
       {0u, 1u, 0xFFu, 0x100u, 0x12345678u, 0x7FFFFFFFu, 0xFFFFFFFFu}) {
    std::string out;
    io::wire::put_u32(out, v);
    ASSERT_EQ(out.size(), 4u);
    auto cursor = cursor_over(out);
    EXPECT_EQ(cursor.get_u32("u32"), v);
    EXPECT_FALSE(cursor.failed()) << cursor.error;
    EXPECT_EQ(cursor.remaining(), 0u);
  }

  for (const std::uint64_t v :
       {std::uint64_t{0}, std::uint64_t{1}, std::uint64_t{0xFFFFFFFFull},
        std::uint64_t{0x100000000ull}, std::uint64_t{0x0123456789ABCDEFull},
        ~std::uint64_t{0}}) {
    std::string out;
    io::wire::put_u64(out, v);
    ASSERT_EQ(out.size(), 8u);
    auto cursor = cursor_over(out);
    EXPECT_EQ(cursor.get_u64("u64"), v);
    EXPECT_FALSE(cursor.failed()) << cursor.error;
    EXPECT_EQ(cursor.remaining(), 0u);
  }

  for (const double v : {0.0, -0.0, 1.5, -2.25, 1e308, 5e-324,
                         std::numeric_limits<double>::infinity(),
                         -std::numeric_limits<double>::infinity()}) {
    std::string out;
    io::wire::put_f64(out, v);
    ASSERT_EQ(out.size(), 8u);
    auto cursor = cursor_over(out);
    const double decoded = cursor.get_f64("f64");
    EXPECT_FALSE(cursor.failed()) << cursor.error;
    // Bit-pattern equality, so -0.0 round-trips as -0.0, not 0.0.
    EXPECT_EQ(std::memcmp(&decoded, &v, sizeof(v)), 0) << v;
  }
  {
    // NaN survives by bit pattern too (== comparison would always fail).
    const double nan = std::numeric_limits<double>::quiet_NaN();
    std::string out;
    io::wire::put_f64(out, nan);
    auto cursor = cursor_over(out);
    const double decoded = cursor.get_f64("nan");
    EXPECT_TRUE(std::isnan(decoded));
    EXPECT_EQ(std::memcmp(&decoded, &nan, sizeof(nan)), 0);
  }

  for (const std::string& v :
       {std::string{}, std::string{"a"}, std::string(1, '\0'),
        std::string{"hello \"wire\" world"}, std::string(300, 'x')}) {
    std::string out;
    io::wire::put_string(out, v);
    ASSERT_EQ(out.size(), 4 + v.size());
    auto cursor = cursor_over(out);
    EXPECT_EQ(cursor.get_string("string"), v);
    EXPECT_FALSE(cursor.failed()) << cursor.error;
    EXPECT_EQ(cursor.remaining(), 0u);
  }

  // A mixed record decodes field-for-field in write order.
  std::string out;
  io::wire::put_u8(out, 0xAB);
  io::wire::put_u32(out, 0xDEADBEEFu);
  io::wire::put_u64(out, 0x1122334455667788ull);
  io::wire::put_f64(out, 3.25);
  io::wire::put_string(out, "tail");
  auto cursor = cursor_over(out);
  EXPECT_EQ(cursor.get_u8("a"), 0xAB);
  EXPECT_EQ(cursor.get_u32("b"), 0xDEADBEEFu);
  EXPECT_EQ(cursor.get_u64("c"), 0x1122334455667788ull);
  EXPECT_EQ(cursor.get_f64("d"), 3.25);
  EXPECT_EQ(cursor.get_string("e"), "tail");
  EXPECT_FALSE(cursor.failed()) << cursor.error;
  EXPECT_EQ(cursor.remaining(), 0u);
}

TEST(Wire, LittleEndianLayoutIsPinned) {
  // The on-disk byte order is part of the format contract (flat v3 reads
  // these bytes in place), so it is asserted literally.
  std::string out;
  io::wire::put_u32(out, 0x04030201u);
  EXPECT_EQ(out, std::string("\x01\x02\x03\x04", 4));

  out.clear();
  io::wire::put_u64(out, 0x0807060504030201ull);
  EXPECT_EQ(out, std::string("\x01\x02\x03\x04\x05\x06\x07\x08", 8));

  out.clear();
  io::wire::put_string(out, "ab");
  EXPECT_EQ(out, std::string("\x02\x00\x00\x00"
                             "ab",
                             6));

  out.clear();
  io::wire::put_f64(out, 1.0);  // IEEE-754: 0x3FF0000000000000
  EXPECT_EQ(out, std::string("\x00\x00\x00\x00\x00\x00\xF0\x3F", 8));
}

TEST(Wire, Fnv1a64MatchesReferenceVectors) {
  // Published FNV-1a 64-bit test vectors; both file formats stamp this
  // checksum, so a drifted basis or prime breaks every saved artifact.
  EXPECT_EQ(io::wire::fnv1a64(""), 0xcbf29ce484222325ull);
  EXPECT_EQ(io::wire::fnv1a64("a"), 0xaf63dc4c8601ec8cull);
  EXPECT_EQ(io::wire::fnv1a64("foobar"), 0x85944171f73967e8ull);
}

TEST(Wire, CursorFailureIsStickyAndBoundsChecked) {
  std::string out;
  io::wire::put_u32(out, 7);
  auto cursor = cursor_over(out);
  (void)cursor.get_u64("wide field");  // only 4 bytes available
  EXPECT_TRUE(cursor.failed());
  EXPECT_NE(cursor.error.find("wide field"), std::string::npos)
      << cursor.error;

  // Sticky: later reads are no-ops and the first diagnosis survives.
  EXPECT_EQ(cursor.get_u32("later field"), 0u);
  EXPECT_EQ(cursor.get_string("later string"), "");
  EXPECT_NE(cursor.error.find("wide field"), std::string::npos)
      << cursor.error;

  // A length-prefixed string larger than the remaining payload fails.
  std::string lying;
  io::wire::put_u32(lying, 1000);
  lying += "short";
  auto lying_cursor = cursor_over(lying);
  EXPECT_EQ(lying_cursor.get_string("lying string"), "");
  EXPECT_TRUE(lying_cursor.failed());

  // get_count rejects element counts implausible for the bytes left, so
  // a corrupted count cannot drive a huge allocation.
  std::string counted;
  io::wire::put_u64(counted, std::uint64_t{1} << 20);
  auto counted_cursor = cursor_over(counted);
  EXPECT_EQ(counted_cursor.get_count("records", 16), 0u);
  EXPECT_TRUE(counted_cursor.failed());
  EXPECT_NE(counted_cursor.error.find("implausible"), std::string::npos)
      << counted_cursor.error;
}

// ---------------------------------------------------- v2 <-> v3 snapshot

TEST(Wire, FlatV3InflatesBackToByteIdenticalV2) {
  const io::Snapshot& original = wire_snapshot();
  const std::string v2 = io::to_snapshot_bytes(original);
  const std::string v3 = io::to_flat_snapshot_bytes(original);

  std::string error;
  const auto view = io::FlatView::from_bytes(std::string{v3}, &error);
  ASSERT_NE(view, nullptr) << error;

  // v3 -> v2 -> bytes reproduces the v2 serialization exactly: the flat
  // layout loses nothing the streaming codec stores.
  EXPECT_EQ(io::to_snapshot_bytes(view->to_snapshot()), v2);

  // And the round trip is deterministic in the other direction too.
  EXPECT_EQ(io::to_flat_snapshot_bytes(view->to_snapshot()), v3);
}

TEST(Wire, FlatV3RejectsCorruptionAtTheRightLayer) {
  const std::string bytes = io::to_flat_snapshot_bytes(wire_snapshot());
  std::string error;

  // Truncations fail the structural open (no deep verify needed).
  for (const std::size_t cut :
       {std::size_t{0}, std::size_t{8}, std::size_t{100},
        sizeof(io::flat::Header) - 1, bytes.size() / 2, bytes.size() - 1}) {
    error.clear();
    EXPECT_EQ(io::FlatView::from_bytes(bytes.substr(0, cut), &error,
                                       /*deep_verify=*/false),
              nullptr)
        << "prefix of " << cut << " bytes opened";
    EXPECT_FALSE(error.empty());
  }

  // Wrong magic and wrong version are structural failures.
  std::string bad = bytes;
  bad[0] = 'X';
  error.clear();
  EXPECT_EQ(io::FlatView::from_bytes(std::string{bad}, &error, false),
            nullptr);
  EXPECT_FALSE(error.empty());

  bad = bytes;
  bad[8] = static_cast<char>(bad[8] + 1);  // version u32 at offset 8
  error.clear();
  EXPECT_EQ(io::FlatView::from_bytes(std::string{bad}, &error, false),
            nullptr);
  EXPECT_FALSE(error.empty());

  // A payload bit-flip (here: inside the string pool, which the
  // structural pass only bounds-checks) passes the structural open but
  // must fail the deep checksum — exactly the split the hot-reload path
  // relies on: structural-only is safe because atomic rename guarantees
  // completeness, while untrusted bytes get the deep pass.
  const auto intact = io::FlatView::from_bytes(std::string{bytes}, &error);
  ASSERT_NE(intact, nullptr) << error;
  ASSERT_GT(intact->header().strings_bytes, 0u);
  bad = bytes;
  bad[intact->header().off_strings] =
      static_cast<char>(bad[intact->header().off_strings] ^ 0x40);
  error.clear();
  const auto structural =
      io::FlatView::from_bytes(std::string{bad}, &error, false);
  EXPECT_NE(structural, nullptr) << error;
  error.clear();
  EXPECT_EQ(io::FlatView::from_bytes(std::string{bad}, &error, true),
            nullptr);
  EXPECT_FALSE(error.empty());
}

// ------------------------------------------------------ checkpoint codec

TEST(Wire, CheckpointCodecIsCanonicalAndRejectsCorruption) {
  stream::StreamCheckpoint checkpoint;
  checkpoint.fingerprint.as_count = 42;
  checkpoint.fingerprint.topo_seed = 7;
  checkpoint.fingerprint.scheme_seed = 9;
  checkpoint.fingerprint.vantage_seed = 11;
  checkpoint.fingerprint.vantage_targets = 3;
  // The decoder cross-checks ribs.size() against node_count, so an empty
  // rib table means an empty node universe.
  checkpoint.fingerprint.node_count = 0;
  checkpoint.fingerprint.node_hash = io::wire::fnv1a64("");
  checkpoint.epoch = 12;
  checkpoint.built_unix_ms = 1234567;
  checkpoint.feed_position = 99;
  checkpoint.graph_dirty = true;
  checkpoint.transit_asns = {asn::Asn{10}, asn::Asn{20},
                             asn::Asn{4200000000}};

  const std::string bytes = stream::to_checkpoint_bytes(checkpoint);
  EXPECT_EQ(std::string_view{bytes}.substr(0, 8), stream::kCheckpointMagic);

  std::string error;
  const auto parsed = stream::parse_checkpoint_bytes(bytes, &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  EXPECT_EQ(parsed->fingerprint, checkpoint.fingerprint);
  EXPECT_EQ(parsed->epoch, 12u);
  EXPECT_EQ(parsed->built_unix_ms, 1234567u);
  EXPECT_EQ(parsed->feed_position, 99u);
  EXPECT_TRUE(parsed->graph_dirty);
  EXPECT_FALSE(parsed->paths_dirty);
  EXPECT_EQ(parsed->transit_asns, checkpoint.transit_asns);

  // Canonical: accepted bytes re-encode byte-identically.
  EXPECT_EQ(stream::to_checkpoint_bytes(*parsed), bytes);

  // Truncation, wrong magic, and a payload bit-flip are all rejected.
  EXPECT_FALSE(
      stream::parse_checkpoint_bytes(bytes.substr(0, bytes.size() - 1)));
  std::string bad = bytes;
  bad[0] = 'X';
  error.clear();
  EXPECT_FALSE(stream::parse_checkpoint_bytes(bad, &error));
  EXPECT_FALSE(error.empty());
  bad = bytes;
  bad.back() = static_cast<char>(bad.back() ^ 0x01);
  error.clear();
  EXPECT_FALSE(stream::parse_checkpoint_bytes(bad, &error));
  EXPECT_FALSE(error.empty());
}

}  // namespace
}  // namespace asrel
