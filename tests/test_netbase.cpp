#include <gtest/gtest.h>

#include <random>

#include "netbase/ip.hpp"
#include "netbase/prefix_trie.hpp"

namespace asrel::net {
namespace {

TEST(Ipv4, ParseAndFormat) {
  const auto addr = parse_ipv4("10.2.0.1");
  ASSERT_TRUE(addr);
  EXPECT_EQ(addr->bits(), 0x0A020001u);
  EXPECT_EQ(to_string(*addr), "10.2.0.1");
}

TEST(Ipv4, ParseEdgeValues) {
  EXPECT_EQ(parse_ipv4("0.0.0.0")->bits(), 0u);
  EXPECT_EQ(parse_ipv4("255.255.255.255")->bits(), 0xFFFFFFFFu);
}

TEST(Ipv4, RejectsMalformed) {
  EXPECT_FALSE(parse_ipv4(""));
  EXPECT_FALSE(parse_ipv4("1.2.3"));
  EXPECT_FALSE(parse_ipv4("1.2.3.4.5"));
  EXPECT_FALSE(parse_ipv4("256.0.0.1"));
  EXPECT_FALSE(parse_ipv4("1.2.3.x"));
  EXPECT_FALSE(parse_ipv4("1..2.3"));
}

TEST(Ipv4, BitIndexingFromMsb) {
  const Ipv4Addr addr{0x80000001u};
  EXPECT_TRUE(addr.bit(0));
  EXPECT_FALSE(addr.bit(1));
  EXPECT_TRUE(addr.bit(31));
}

TEST(Ipv6, ParseFull) {
  const auto addr = parse_ipv6("2001:db8:0:0:0:0:0:1");
  ASSERT_TRUE(addr);
  EXPECT_EQ(addr->high(), 0x20010db800000000ull);
  EXPECT_EQ(addr->low(), 1ull);
}

TEST(Ipv6, ParseCompressed) {
  const auto addr = parse_ipv6("2001:db8::1");
  ASSERT_TRUE(addr);
  EXPECT_EQ(addr->high(), 0x20010db800000000ull);
  EXPECT_EQ(addr->low(), 1ull);
  EXPECT_EQ(*parse_ipv6("::"), (Ipv6Addr{0, 0}));
  EXPECT_EQ(*parse_ipv6("::1"), (Ipv6Addr{0, 1}));
  EXPECT_EQ(*parse_ipv6("fe80::"), (Ipv6Addr{0xfe80000000000000ull, 0}));
}

TEST(Ipv6, RejectsMalformed) {
  EXPECT_FALSE(parse_ipv6(""));
  EXPECT_FALSE(parse_ipv6("1:2:3:4:5:6:7"));       // too few, no ::
  EXPECT_FALSE(parse_ipv6("1:2:3:4:5:6:7:8:9"));   // too many
  EXPECT_FALSE(parse_ipv6("::1::2"));              // two gaps
  EXPECT_FALSE(parse_ipv6("12345::"));             // group too wide
  EXPECT_FALSE(parse_ipv6("gggg::"));
}

TEST(Ipv6, FormatCompressesLongestRun) {
  EXPECT_EQ(to_string(Ipv6Addr{0x20010db800000000ull, 1}), "2001:db8::1");
  EXPECT_EQ(to_string(Ipv6Addr{0, 0}), "::");
  EXPECT_EQ(to_string(Ipv6Addr{0, 1}), "::1");
}

class Ipv6RoundTripTest : public ::testing::TestWithParam<const char*> {};

TEST_P(Ipv6RoundTripTest, RoundTrips) {
  const auto addr = parse_ipv6(GetParam());
  ASSERT_TRUE(addr);
  EXPECT_EQ(parse_ipv6(to_string(*addr)), addr);
}

INSTANTIATE_TEST_SUITE_P(Sweep, Ipv6RoundTripTest,
                         ::testing::Values("::", "::1", "2001:db8::1",
                                           "fe80::1:2:3", "1:2:3:4:5:6:7:8",
                                           "2001:db8:0:1::", "a:b::c:0:0:d"));

TEST(Prefix4, CanonicalizesHostBits) {
  const Prefix4 prefix{Ipv4Addr{10, 1, 2, 3}, 8};
  EXPECT_EQ(prefix.network(), (Ipv4Addr{10, 0, 0, 0}));
  EXPECT_EQ(prefix.length(), 8u);
}

TEST(Prefix4, Contains) {
  const auto prefix = *parse_prefix4("10.0.0.0/8");
  EXPECT_TRUE(prefix.contains(Ipv4Addr{10, 255, 0, 1}));
  EXPECT_FALSE(prefix.contains(Ipv4Addr{11, 0, 0, 1}));
  EXPECT_TRUE(prefix.contains(*parse_prefix4("10.2.0.0/16")));
  EXPECT_FALSE(prefix.contains(*parse_prefix4("0.0.0.0/0")));
}

TEST(Prefix4, ZeroLengthContainsEverything) {
  const Prefix4 all{Ipv4Addr{1, 2, 3, 4}, 0};
  EXPECT_EQ(all.network().bits(), 0u);
  EXPECT_TRUE(all.contains(Ipv4Addr{255, 255, 255, 255}));
  EXPECT_EQ(all.address_count(), 1ull << 32);
}

TEST(Prefix4, AddressCount) {
  EXPECT_EQ(parse_prefix4("10.0.0.0/8")->address_count(), 1u << 24);
  EXPECT_EQ(parse_prefix4("10.0.0.0/24")->address_count(), 256u);
  EXPECT_EQ(parse_prefix4("10.0.0.1/32")->address_count(), 1u);
}

TEST(Prefix4, ParseRejects) {
  EXPECT_FALSE(parse_prefix4("10.0.0.0"));
  EXPECT_FALSE(parse_prefix4("10.0.0.0/33"));
  EXPECT_FALSE(parse_prefix4("10.0.0/8"));
  EXPECT_FALSE(parse_prefix4("/8"));
}

TEST(Prefix4, FormatRoundTrips) {
  EXPECT_EQ(to_string(*parse_prefix4("10.128.0.0/9")), "10.128.0.0/9");
}

TEST(Prefix6, CanonicalizesAndContains) {
  const Prefix6 prefix{*parse_ipv6("2001:db8::ffff"), 32};
  EXPECT_EQ(to_string(prefix), "2001:db8::/32");
  EXPECT_TRUE(prefix.contains(*parse_ipv6("2001:db8:1::1")));
  EXPECT_FALSE(prefix.contains(*parse_ipv6("2001:db9::1")));
  EXPECT_TRUE(prefix.contains(*parse_prefix6("2001:db8:ff::/48")));
}

TEST(Prefix6, LongLengths) {
  const auto p127 = *parse_prefix6("2001:db8::/127");
  EXPECT_TRUE(p127.contains(*parse_ipv6("2001:db8::1")));
  EXPECT_FALSE(p127.contains(*parse_ipv6("2001:db8::2")));
}

TEST(PrefixTrie, ExactMatch) {
  PrefixTrie4<int> trie;
  trie.insert(*parse_prefix4("10.0.0.0/8"), 1);
  trie.insert(*parse_prefix4("10.1.0.0/16"), 2);
  EXPECT_EQ(*trie.find_exact(*parse_prefix4("10.0.0.0/8")), 1);
  EXPECT_EQ(*trie.find_exact(*parse_prefix4("10.1.0.0/16")), 2);
  EXPECT_EQ(trie.find_exact(*parse_prefix4("10.2.0.0/16")), nullptr);
  EXPECT_EQ(trie.size(), 2u);
}

TEST(PrefixTrie, LongestMatchPrefersMoreSpecific) {
  PrefixTrie4<int> trie;
  trie.insert(*parse_prefix4("10.0.0.0/8"), 1);
  trie.insert(*parse_prefix4("10.1.0.0/16"), 2);
  trie.insert(*parse_prefix4("10.1.2.0/24"), 3);
  EXPECT_EQ(*trie.longest_match(*parse_ipv4("10.1.2.3")), 3);
  EXPECT_EQ(*trie.longest_match(*parse_ipv4("10.1.9.9")), 2);
  EXPECT_EQ(*trie.longest_match(*parse_ipv4("10.9.9.9")), 1);
  EXPECT_EQ(trie.longest_match(*parse_ipv4("11.0.0.1")), nullptr);
}

TEST(PrefixTrie, InsertOverwrites) {
  PrefixTrie4<int> trie;
  trie.insert(*parse_prefix4("10.0.0.0/8"), 1);
  trie.insert(*parse_prefix4("10.0.0.0/8"), 9);
  EXPECT_EQ(*trie.find_exact(*parse_prefix4("10.0.0.0/8")), 9);
  EXPECT_EQ(trie.size(), 1u);
}

TEST(PrefixTrie, Erase) {
  PrefixTrie4<int> trie;
  trie.insert(*parse_prefix4("10.0.0.0/8"), 1);
  trie.insert(*parse_prefix4("10.1.0.0/16"), 2);
  EXPECT_TRUE(trie.erase(*parse_prefix4("10.1.0.0/16")));
  EXPECT_FALSE(trie.erase(*parse_prefix4("10.1.0.0/16")));
  EXPECT_EQ(*trie.longest_match(*parse_ipv4("10.1.2.3")), 1);
  EXPECT_EQ(trie.size(), 1u);
}

TEST(PrefixTrie, DefaultRouteMatchesEverything) {
  PrefixTrie4<int> trie;
  trie.insert(Prefix4{Ipv4Addr{0}, 0}, 42);
  EXPECT_EQ(*trie.longest_match(*parse_ipv4("203.0.113.7")), 42);
}

TEST(PrefixTrie, ForEachVisitsInPrefixOrder) {
  PrefixTrie4<int> trie;
  trie.insert(*parse_prefix4("10.1.0.0/16"), 2);
  trie.insert(*parse_prefix4("10.0.0.0/8"), 1);
  trie.insert(*parse_prefix4("192.168.0.0/16"), 3);
  std::vector<int> seen;
  trie.for_each([&](const Prefix4&, int value) { seen.push_back(value); });
  EXPECT_EQ(seen, (std::vector<int>{1, 2, 3}));
}

/// Property check: longest_match agrees with a brute-force scan for random
/// prefixes and addresses.
TEST(PrefixTrie, MatchesBruteForce) {
  std::mt19937_64 rng{7};
  std::vector<std::pair<Prefix4, int>> entries;
  PrefixTrie4<int> trie;
  for (int i = 0; i < 300; ++i) {
    const auto bits = static_cast<std::uint32_t>(rng());
    const auto length = static_cast<unsigned>(rng() % 25);
    const Prefix4 prefix{Ipv4Addr{bits}, length};
    // Skip duplicates (insert overwrites; brute force must agree).
    bool duplicate = false;
    for (const auto& [existing, value] : entries) {
      if (existing == prefix) duplicate = true;
    }
    if (duplicate) continue;
    entries.emplace_back(prefix, i);
    trie.insert(prefix, i);
  }
  for (int i = 0; i < 1000; ++i) {
    const Ipv4Addr addr{static_cast<std::uint32_t>(rng())};
    const int* got = trie.longest_match(addr);
    const std::pair<Prefix4, int>* best = nullptr;
    for (const auto& entry : entries) {
      if (!entry.first.contains(addr)) continue;
      if (best == nullptr || entry.first.length() > best->first.length()) {
        best = &entry;
      }
    }
    if (best == nullptr) {
      EXPECT_EQ(got, nullptr);
    } else {
      ASSERT_NE(got, nullptr);
      EXPECT_EQ(*got, best->second);
    }
  }
}

}  // namespace
}  // namespace asrel::net
