// ThreadPool unit tests plus end-to-end serial-vs-threaded byte-equality
// of the Fig. 1/2 and Table 1-3 reports.
//
// The pool's contract is stronger than "no data races": every primitive's
// result must be a pure function of (inputs, count) — independent of how
// many workers participated. The unit tests pin the sharp edges of that
// contract (order-sensitive merges, exception choice, empty batches,
// nesting); the report tests check the whole pipeline keeps it.
#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <numeric>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/parallel.hpp"
#include "test_support.hpp"
#include "testing/canonical.hpp"

namespace asrel {
namespace {

TEST(ThreadPool, OrderedReductionMatchesSerialForOrderSensitiveMerge) {
  core::ThreadPool pool{4};
  constexpr std::size_t kCount = 97;

  // String concatenation is order-sensitive: any merge that happened out of
  // index order (or dropped/duplicated an index) changes the bytes.
  std::string serial;
  for (std::size_t i = 0; i < kCount; ++i) {
    serial += std::to_string(i) + ";";
  }
  for (const unsigned threads : {0u, 1u, 2u, 3u, 8u}) {
    const std::string merged = core::parallel_reduce_ordered(
        pool, kCount, threads, std::string{},
        [](std::size_t i) { return std::to_string(i) + ";"; },
        [](std::string& acc, std::string&& partial) { acc += partial; });
    EXPECT_EQ(merged, serial) << "threads=" << threads;
  }
}

TEST(ThreadPool, MapOrderedReturnsResultsInIndexOrder) {
  core::ThreadPool pool{4};
  const auto out = core::parallel_map_ordered<std::size_t>(
      pool, 1000, 4, [](std::size_t i) { return i * i; });
  ASSERT_EQ(out.size(), 1000u);
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i], i * i);
  }
}

TEST(ThreadPool, ZeroTasksIsANoOp) {
  core::ThreadPool pool{2};
  std::atomic<int> calls{0};
  pool.run_indexed(0, 4, [&](std::size_t) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 0);

  const auto mapped = core::parallel_map_ordered<int>(
      pool, 0, 4, [](std::size_t) { return 1; });
  EXPECT_TRUE(mapped.empty());

  const int reduced = core::parallel_reduce_ordered(
      pool, 0, 4, 7, [](std::size_t) { return 1; },
      [](int& acc, int&& partial) { acc += partial; });
  EXPECT_EQ(reduced, 7);
}

TEST(ThreadPool, PropagatesExceptionOfLowestFailingIndex) {
  core::ThreadPool pool{4};
  // Several indices throw; the contract picks the lowest one so the error a
  // caller sees does not depend on scheduling.
  for (const unsigned threads : {1u, 4u}) {
    try {
      pool.run_indexed(64, threads, [](std::size_t i) {
        if (i % 10 == 3) {
          throw std::runtime_error{"boom at " + std::to_string(i)};
        }
      });
      FAIL() << "expected run_indexed to rethrow (threads=" << threads << ")";
    } catch (const std::runtime_error& error) {
      EXPECT_STREQ(error.what(), "boom at 3") << "threads=" << threads;
    }
  }
  // The pool must stay usable after a failed batch.
  std::atomic<std::size_t> sum{0};
  pool.run_indexed(10, 4, [&](std::size_t i) { sum.fetch_add(i); });
  EXPECT_EQ(sum.load(), 45u);
}

TEST(ThreadPool, NestedBatchesRunInlineWithoutDeadlock) {
  core::ThreadPool pool{2};
  std::vector<std::size_t> totals(8, 0);
  pool.run_indexed(totals.size(), 4, [&](std::size_t i) {
    // A stage calling another parallelized helper must not deadlock on the
    // shared pool; the inner batch runs serially inline.
    totals[i] = core::parallel_reduce_ordered(
        core::ThreadPool::shared(), 5, 4, std::size_t{0},
        [&](std::size_t j) { return i * j; },
        [](std::size_t& acc, std::size_t&& partial) { acc += partial; });
  });
  for (std::size_t i = 0; i < totals.size(); ++i) {
    EXPECT_EQ(totals[i], i * 10);
  }
}

TEST(ThreadPool, EffectiveThreadsResolvesAutoOnly) {
  EXPECT_GE(core::ThreadPool::effective_threads(0), 1u);
  EXPECT_EQ(core::ThreadPool::effective_threads(1), 1u);
  EXPECT_EQ(core::ThreadPool::effective_threads(64), 64u);
}

// ---- end-to-end: reports are byte-identical at every thread count --------

std::vector<asrel::testing::GoldenReport> reports_at(std::uint64_t seed,
                                                     unsigned threads) {
  core::ScenarioParams params;
  params.topology.as_count = 600;
  params.topology.seed = seed;
  params.vantage.target_count = 40;
  params.threads = threads;
  const auto scenario = core::Scenario::build(params);
  return asrel::testing::build_golden_reports(*scenario);
}

class PipelineByteEquality : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PipelineByteEquality, SerialAndThreadedReportsMatch) {
  const std::uint64_t seed = GetParam();
  const auto serial = reports_at(seed, 1);
  ASSERT_FALSE(serial.empty());
  for (const unsigned threads : {2u, 8u}) {
    const auto threaded = reports_at(seed, threads);
    ASSERT_EQ(threaded.size(), serial.size()) << "threads=" << threads;
    for (std::size_t i = 0; i < serial.size(); ++i) {
      EXPECT_FALSE(serial[i].json.empty()) << serial[i].filename;
      EXPECT_EQ(threaded[i].filename, serial[i].filename);
      EXPECT_EQ(threaded[i].json, serial[i].json)
          << serial[i].filename << " diverged at threads=" << threads
          << ", seed=" << seed;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PipelineByteEquality,
                         ::testing::Values(7u, 42u, 1337u));

}  // namespace
}  // namespace asrel
