// The streaming pipeline's contract, enforced three ways:
//   * metamorphic — after ANY seeded churn sequence, the incrementally
//     maintained snapshot is byte-identical to a from-scratch rebuild of
//     the same final world, at every published epoch, serial and threaded;
//   * structural — no-op events, add-then-remove pairs, and prefix churn
//     leave no residue in the published bytes;
//   * chaos — a torn snapshot write mid-publication never regresses or
//     corrupts the served epoch.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "core/snapshot_builder.hpp"
#include "io/snapshot.hpp"
#include "serve/engine_hub.hpp"
#include "serve/fault_inject.hpp"
#include "serve/query_engine.hpp"
#include "stream/churn.hpp"
#include "stream/session.hpp"

namespace asrel {
namespace {

core::ScenarioParams stream_params(unsigned threads) {
  core::ScenarioParams params;
  params.topology.as_count = 600;
  params.topology.seed = 11;
  params.vantage.target_count = 40;
  params.threads = threads;
  return params;
}

// ------------------------------------------------------------- churn model

TEST(Stream, ChurnTextRoundTrips) {
  const auto params = stream_params(1);
  const topo::World world = topo::generate(params.topology);
  const auto events = stream::generate_churn(world, 7, 50);
  ASSERT_EQ(events.size(), 50u);

  const std::string text = stream::to_churn_text(events);
  std::string error;
  const auto parsed = stream::parse_churn_text(text, &error);
  ASSERT_EQ(parsed.size(), events.size()) << error;
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(parsed[i].kind, events[i].kind) << "event " << i;
    EXPECT_EQ(parsed[i].a, events[i].a) << "event " << i;
    if (events[i].kind != stream::ChurnKind::kPrefixAnnounce &&
        events[i].kind != stream::ChurnKind::kPrefixWithdraw) {
      EXPECT_EQ(parsed[i].b, events[i].b) << "event " << i;
    }
    EXPECT_EQ(parsed[i].rel, events[i].rel) << "event " << i;
    EXPECT_EQ(parsed[i].scope, events[i].scope) << "event " << i;
    EXPECT_EQ(parsed[i].via_community, events[i].via_community)
        << "event " << i;
    EXPECT_EQ(parsed[i].prefix_host, events[i].prefix_host) << "event " << i;
  }

  // Same seed reproduces the identical sequence; a different seed diverges.
  EXPECT_EQ(stream::to_churn_text(stream::generate_churn(world, 7, 50)),
            text);
  EXPECT_NE(stream::to_churn_text(stream::generate_churn(world, 8, 50)),
            text);
}

TEST(Stream, ParserRejectsMalformedLines) {
  std::string error;
  EXPECT_TRUE(stream::parse_churn_text("frobnicate 1 2", &error).empty());
  EXPECT_FALSE(error.empty());
  EXPECT_TRUE(stream::parse_churn_text("add 1 2 p2x", &error).empty());
  EXPECT_FALSE(error.empty());
  EXPECT_TRUE(stream::parse_churn_text("remove 1", &error).empty());
  EXPECT_FALSE(error.empty());
  // Comments and blank lines are fine.
  const auto ok = stream::parse_churn_text(
      "# header\n\nadd 100 200 p2p  # trailing\n", &error);
  ASSERT_EQ(ok.size(), 1u) << error;
  EXPECT_EQ(ok[0].kind, stream::ChurnKind::kLinkAdd);
}

TEST(Stream, ParserDiagnosticsNameTheLineAndContent) {
  std::string error;
  // The failure names the 1-based line number and quotes the offender.
  EXPECT_TRUE(stream::parse_churn_text(
                  "# header\nadd 1 2 p2p\nremove 7\n", &error)
                  .empty());
  EXPECT_NE(error.find("line 3"), std::string::npos) << error;
  EXPECT_NE(error.find("remove 7"), std::string::npos) << error;

  // Truncated lines (missing fields) are malformed, not zero-filled.
  EXPECT_TRUE(stream::parse_churn_text("add 1 2", &error).empty());
  EXPECT_NE(error.find("line 1"), std::string::npos) << error;
  EXPECT_TRUE(stream::parse_churn_text("scope 1 2 full", &error).empty());
  EXPECT_FALSE(error.empty());
  EXPECT_TRUE(stream::parse_churn_text("announce 1", &error).empty());
  EXPECT_FALSE(error.empty());
  // Out-of-range and non-numeric ASNs are rejected, not wrapped.
  EXPECT_TRUE(
      stream::parse_churn_text("add 99999999999 2 p2p", &error).empty());
  EXPECT_FALSE(error.empty());
  EXPECT_TRUE(stream::parse_churn_text("add one 2 p2p", &error).empty());
  EXPECT_FALSE(error.empty());
}

TEST(Stream, ParserToleratesCrlfAndTabs) {
  std::string error;
  // CRLF framing and tab separators are accepted (operational feeds).
  const auto events = stream::parse_churn_text(
      "add 100 200 p2p\r\nremove\t100\t200\r\n", &error);
  ASSERT_EQ(events.size(), 2u) << error;
  EXPECT_EQ(events[0].kind, stream::ChurnKind::kLinkAdd);
  EXPECT_EQ(events[1].kind, stream::ChurnKind::kLinkRemove);
  // A '\r' inside a field is content, not framing.
  EXPECT_TRUE(stream::parse_churn_text("add 100\r200 p2p\n", &error).empty());
  EXPECT_FALSE(error.empty());
}

TEST(Stream, StructuralNoOpsAreRejected) {
  const auto params = stream_params(1);
  topo::World world = topo::generate(params.topology);
  const auto nodes = world.graph.nodes();
  ASSERT_GE(nodes.size(), 2u);

  // Unknown ASN: never mutates (the node universe is fixed).
  stream::ChurnEvent unknown;
  unknown.kind = stream::ChurnKind::kLinkAdd;
  unknown.a = asn::Asn{4200000000u};
  unknown.b = nodes[0];
  EXPECT_FALSE(stream::apply_churn_event(world, unknown).applied);

  // Removing a link that does not exist.
  stream::ChurnEvent remove;
  remove.kind = stream::ChurnKind::kLinkRemove;
  remove.a = nodes[0];
  remove.b = nodes[0];
  EXPECT_FALSE(stream::apply_churn_event(world, remove).applied);
}

// ------------------------------------------- the byte-equality invariant

void run_metamorphic(unsigned threads, std::uint64_t seed) {
  auto params = stream_params(threads);
  stream::StreamSession session{params};
  const auto events = stream::generate_churn(session.world(), seed, 100);
  ASSERT_EQ(events.size(), 100u);

  // Epoch 1 (pre-churn) must already match a from-scratch build.
  ASSERT_EQ(io::to_snapshot_bytes(session.snapshot()),
            io::to_snapshot_bytes(session.reference_snapshot(0)))
      << "seed " << seed << " diverged at bootstrap";

  std::size_t applied = 0;
  for (std::size_t i = 0; i < events.size(); ++i) {
    applied += session.apply(events[i]).applied ? 1 : 0;
    if ((i + 1) % 20 != 0) continue;
    const std::uint64_t built = 1754600000000ull + i;
    const std::string incremental =
        io::to_snapshot_bytes(session.publish(built));
    const std::string reference =
        io::to_snapshot_bytes(session.reference_snapshot(built));
    ASSERT_EQ(incremental, reference)
        << "seed " << seed << " diverged after event " << i + 1 << " (epoch "
        << session.epoch() << ")";
  }
  // The generated mix must actually exercise the pipeline: mostly applied
  // events with some origins re-propagated and some proven clean.
  EXPECT_GT(applied, events.size() / 2) << "seed " << seed;
  EXPECT_GT(session.stats().origins_redone, 0u) << "seed " << seed;
  EXPECT_GT(session.stats().origins_skipped, 0u) << "seed " << seed;
  EXPECT_EQ(session.stats().epochs_published, 5u);
  EXPECT_EQ(session.epoch(), 6u);
}

TEST(Stream, IncrementalMatchesFullRebuildSeed1) { run_metamorphic(1, 1); }
TEST(Stream, IncrementalMatchesFullRebuildSeed2) { run_metamorphic(1, 2); }
TEST(Stream, IncrementalMatchesFullRebuildSeed3) { run_metamorphic(1, 3); }
TEST(Stream, IncrementalMatchesFullRebuildThreaded) {
  run_metamorphic(2, 1);
}

TEST(Stream, AddThenRemoveLeavesNoResidue) {
  const auto params = stream_params(1);
  stream::StreamSession churned{params};
  stream::StreamSession pristine{params};

  // A link that does not exist yet, between two well-connected ASes.
  const auto nodes = churned.world().graph.nodes();
  std::optional<std::pair<asn::Asn, asn::Asn>> pair;
  for (std::size_t i = 0; i < nodes.size() && !pair; ++i) {
    for (std::size_t j = i + 1; j < nodes.size() && !pair; ++j) {
      if (!churned.world().graph.find_edge(nodes[i], nodes[j])) {
        pair = {nodes[i], nodes[j]};
      }
    }
  }
  ASSERT_TRUE(pair.has_value());

  stream::ChurnEvent add;
  add.kind = stream::ChurnKind::kLinkAdd;
  add.a = pair->first;
  add.b = pair->second;
  add.rel = topo::RelType::kP2C;
  EXPECT_TRUE(churned.apply(add).applied);
  stream::ChurnEvent remove;
  remove.kind = stream::ChurnKind::kLinkRemove;
  remove.a = pair->first;
  remove.b = pair->second;
  EXPECT_TRUE(churned.apply(remove).applied);

  // The tombstoned edge must be invisible: same bytes as a session that
  // never saw the pair.
  EXPECT_EQ(io::to_snapshot_bytes(churned.publish(99)),
            io::to_snapshot_bytes(pristine.publish(99)));
}

TEST(Stream, PrefixChurnIsAPipelineNoOp) {
  const auto params = stream_params(1);
  stream::StreamSession session{params};
  const auto nodes = session.world().graph.nodes();

  stream::ChurnEvent announce;
  announce.kind = stream::ChurnKind::kPrefixAnnounce;
  announce.a = nodes[0];
  announce.prefix_host = 17;
  const auto outcome = session.apply(announce);
  EXPECT_TRUE(outcome.applied);
  EXPECT_EQ(outcome.dirty_origins, 0u);
  EXPECT_EQ(session.stats().origins_redone, 0u);

  // Announce-then-withdraw round-trips the prefix map too.
  stream::ChurnEvent withdraw = announce;
  withdraw.kind = stream::ChurnKind::kPrefixWithdraw;
  EXPECT_TRUE(session.apply(withdraw).applied);
  EXPECT_FALSE(session.apply(withdraw).applied);  // now a no-op

  // Sequenced: publish() bumps the epoch the reference stamps.
  const std::string incremental = io::to_snapshot_bytes(session.publish(7));
  EXPECT_EQ(incremental, io::to_snapshot_bytes(session.reference_snapshot(7)));
}

TEST(Stream, ConePrefilterNarrowsPureP2pAddsWithoutChangingBytes) {
  const auto params = stream_params(1);
  stream::StreamSession session{params};

  // A fresh pure-P2P link: the cone prefilter limits the rib scan to the
  // endpoints' customer cones before rib_affected even runs.
  const auto nodes = session.world().graph.nodes();
  std::optional<std::pair<asn::Asn, asn::Asn>> pair;
  for (std::size_t i = 0; i < nodes.size() && !pair; ++i) {
    for (std::size_t j = i + 1; j < nodes.size() && !pair; ++j) {
      if (!session.world().graph.find_edge(nodes[i], nodes[j])) {
        pair = {nodes[i], nodes[j]};
      }
    }
  }
  ASSERT_TRUE(pair.has_value());

  stream::ChurnEvent add;
  add.kind = stream::ChurnKind::kLinkAdd;
  add.a = pair->first;
  add.b = pair->second;
  add.rel = topo::RelType::kP2P;
  EXPECT_TRUE(session.apply(add).applied);

  // The prefilter must have excluded origins outside both cones, and the
  // skip accounting must stay consistent with the totals.
  EXPECT_GT(session.stats().origins_skipped_cone, 0u);
  EXPECT_GE(session.stats().origins_skipped,
            session.stats().origins_skipped_cone);

  // Narrowing the scan never changes the published bytes — the invariant
  // that makes the prefilter an optimisation rather than a semantics
  // change. (Sequenced: publish() bumps the epoch the reference stamps.)
  const std::string incremental = io::to_snapshot_bytes(session.publish(31));
  EXPECT_EQ(incremental, io::to_snapshot_bytes(session.reference_snapshot(31)));
}

// ----------------------------------------------------------------- chaos

TEST(Stream, TornPublicationNeverRegressesTheServedEpoch) {
  auto params = stream_params(1);
  stream::StreamSession session{params};

  serve::EngineHub hub{std::make_shared<const serve::QueryEngine>(
      io::Snapshot{session.snapshot()})};
  ASSERT_EQ(hub.epoch(), 1u);

  const auto events = stream::generate_churn(session.world(), 5, 30);
  const std::string path = ::testing::TempDir() + "/asrel_stream_chaos.bin";
  std::string error;
  ASSERT_TRUE(io::save_snapshot_file(session.snapshot(), path, &error))
      << error;

  std::uint64_t last_epoch = hub.epoch();
  for (std::size_t i = 0; i < events.size(); ++i) {
    session.apply(events[i]);
    if ((i + 1) % 10 != 0) continue;
    const io::Snapshot& next = session.publish(1000 + i);

    // Fault window: the durable write dies mid-file. The crash-safe
    // tmp+rename protocol must leave the previous on-disk epoch intact...
    {
      serve::fault::FaultPlan plan;
      plan.seed = 0xC0FFEEull + i;
      plan.snapshot_write_cap = 64;
      serve::fault::ScopedFaults faults{plan};
      EXPECT_FALSE(io::save_snapshot_file(next, path, &error));
    }
    auto on_disk = io::load_snapshot_file(path, &error);
    ASSERT_TRUE(on_disk.has_value()) << error;
    EXPECT_LT(on_disk->meta.epoch, next.meta.epoch);

    // ...and the in-memory swap is atomic: the served epoch only moves
    // forward, and the engine it exposes parses as the published bytes.
    const auto result = hub.publish(io::Snapshot{next});
    ASSERT_TRUE(result.ok);
    EXPECT_GT(result.epoch, last_epoch);
    last_epoch = result.epoch;
    const auto engine = hub.current();
    ASSERT_NE(engine, nullptr);
    EXPECT_EQ(engine->snapshot().meta.epoch, next.meta.epoch);

    // Once the fault clears, the durable write catches up.
    ASSERT_TRUE(io::save_snapshot_file(next, path, &error)) << error;
    on_disk = io::load_snapshot_file(path, &error);
    ASSERT_TRUE(on_disk.has_value()) << error;
    EXPECT_EQ(on_disk->meta.epoch, next.meta.epoch);
  }
  EXPECT_EQ(hub.stats().publishes, 3u);
  EXPECT_EQ(hub.epoch(), 4u);
}

}  // namespace
}  // namespace asrel
