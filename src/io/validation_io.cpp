#include "io/validation_io.hpp"

#include <istream>
#include <ostream>
#include <sstream>
#include <vector>

namespace asrel::io {

namespace {

std::vector<std::string_view> split_pipe(std::string_view line) {
  std::vector<std::string_view> fields;
  while (true) {
    const auto bar = line.find('|');
    if (bar == std::string_view::npos) {
      fields.push_back(line);
      return fields;
    }
    fields.push_back(line.substr(0, bar));
    line.remove_prefix(bar + 1);
  }
}

}  // namespace

void write_validation(const val::ValidationSet& set, std::ostream& out) {
  out << "# validation data: <asn>|<asn>|<provider-asn|p2p|s2s>|<source>\n";
  for (const auto& entry : set.entries()) {
    for (const auto& label : entry.labels) {
      out << entry.link.a.value() << '|' << entry.link.b.value() << '|';
      switch (label.rel) {
        case topo::RelType::kP2C:
          out << label.provider.value();
          break;
        case topo::RelType::kP2P:
          out << "p2p";
          break;
        case topo::RelType::kS2S:
          out << "s2s";
          break;
      }
      out << '|' << val::to_string(label.source) << '\n';
    }
  }
}

std::string to_validation_text(const val::ValidationSet& set) {
  std::ostringstream out;
  write_validation(set, out);
  return out.str();
}

val::ValidationSet parse_validation(std::istream& in) {
  val::ValidationSet set;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    const auto fields = split_pipe(line);
    if (fields.size() < 4) continue;
    const auto a = asn::parse_asn(fields[0]);
    const auto b = asn::parse_asn(fields[1]);
    if (!a || !b) continue;

    val::Label label;
    if (fields[2] == "p2p") {
      label.rel = topo::RelType::kP2P;
    } else if (fields[2] == "s2s") {
      label.rel = topo::RelType::kS2S;
    } else {
      const auto provider = asn::parse_asn(fields[2]);
      if (!provider) continue;
      label.rel = topo::RelType::kP2C;
      label.provider = *provider;
    }
    if (fields[3] == "communities") {
      label.source = val::Source::kCommunities;
    } else if (fields[3] == "rpsl") {
      label.source = val::Source::kRpsl;
    } else {
      label.source = val::Source::kDirectReport;
    }
    set.add(val::AsLink{*a, *b}, label);
  }
  return set;
}

val::ValidationSet parse_validation_text(std::string_view text) {
  std::istringstream in{std::string{text}};
  return parse_validation(in);
}

}  // namespace asrel::io
