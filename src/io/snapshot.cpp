#include "io/snapshot.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstring>
#include <fstream>
#include <istream>
#include <limits>
#include <ostream>
#include <sstream>

namespace asrel::io {

namespace {

// ---- encoding ----

void put_u8(std::string& out, std::uint8_t v) {
  out.push_back(static_cast<char>(v));
}

void put_u32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

void put_u64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

void put_f64(std::string& out, double v) {
  std::uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  put_u64(out, bits);
}

void put_string(std::string& out, std::string_view s) {
  put_u32(out, static_cast<std::uint32_t>(s.size()));
  out.append(s);
}

void put_label(std::string& out, const val::CleanLabel& label) {
  put_u32(out, label.link.a.value());
  put_u32(out, label.link.b.value());
  put_u8(out, static_cast<std::uint8_t>(label.rel));
  put_u32(out, label.provider.value());
}

[[nodiscard]] std::uint64_t fnv1a64(std::string_view bytes) {
  std::uint64_t hash = 0xcbf29ce484222325ull;
  for (const char c : bytes) {
    hash ^= static_cast<std::uint8_t>(c);
    hash *= 0x100000001b3ull;
  }
  return hash;
}

// ---- decoding ----

[[nodiscard]] bool valid_rel(std::uint8_t v) {
  return v <= static_cast<std::uint8_t>(topo::RelType::kS2S);
}

[[nodiscard]] bool valid_scope(std::uint8_t v) {
  return v <= static_cast<std::uint8_t>(topo::ExportScope::kCustomersOnly);
}

[[nodiscard]] bool valid_tier(std::uint8_t v) {
  return v <= static_cast<std::uint8_t>(topo::Tier::kStub);
}

[[nodiscard]] bool valid_stub_kind(std::uint8_t v) {
  return v <= static_cast<std::uint8_t>(topo::StubKind::kNotStub);
}

/// Bounds-checked little-endian reader over the payload. All getters
/// return false once `fail` is set; callers check once per section.
struct Cursor {
  std::string_view data;
  std::size_t pos = 0;
  std::string error;

  [[nodiscard]] bool failed() const { return !error.empty(); }
  [[nodiscard]] std::size_t remaining() const { return data.size() - pos; }

  void fail(const std::string& message) {
    if (error.empty()) error = message;
  }

  [[nodiscard]] bool need(std::size_t bytes, const char* what) {
    if (failed()) return false;
    if (remaining() < bytes) {
      fail(std::string{"truncated payload while reading "} + what);
      return false;
    }
    return true;
  }

  std::uint8_t get_u8(const char* what) {
    if (!need(1, what)) return 0;
    return static_cast<std::uint8_t>(data[pos++]);
  }

  std::uint32_t get_u32(const char* what) {
    if (!need(4, what)) return 0;
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= std::uint32_t{static_cast<std::uint8_t>(data[pos + i])} << (8 * i);
    }
    pos += 4;
    return v;
  }

  std::uint64_t get_u64(const char* what) {
    if (!need(8, what)) return 0;
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= std::uint64_t{static_cast<std::uint8_t>(data[pos + i])} << (8 * i);
    }
    pos += 8;
    return v;
  }

  double get_f64(const char* what) {
    const std::uint64_t bits = get_u64(what);
    double v = 0.0;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }

  std::string get_string(const char* what) {
    const std::uint32_t size = get_u32(what);
    if (!need(size, what)) return {};
    std::string s{data.substr(pos, size)};
    pos += size;
    return s;
  }

  /// Reads an element count and sanity-checks it against the bytes left
  /// (each element occupies at least `min_element_bytes`), so a corrupted
  /// count cannot drive a multi-gigabyte allocation.
  std::uint64_t get_count(const char* what, std::size_t min_element_bytes) {
    const std::uint64_t count = get_u64(what);
    if (failed()) return 0;
    if (min_element_bytes > 0 &&
        count > remaining() / min_element_bytes) {
      fail(std::string{"implausible element count for "} + what);
      return 0;
    }
    return count;
  }

  /// Labels are stored with the link in canonical (a < b) order; anything
  /// else would silently re-serialize differently, so reject it here.
  val::CleanLabel get_label(const char* what) {
    val::CleanLabel label;
    const asn::Asn a{get_u32(what)};
    const asn::Asn b{get_u32(what)};
    if (!failed() && !(a < b)) {
      fail(std::string{"link not in canonical order in "} + what);
    }
    label.link = val::AsLink{a, b};
    const std::uint8_t rel = get_u8(what);
    if (!failed() && !valid_rel(rel)) {
      fail(std::string{"invalid relationship code in "} + what);
    }
    label.rel = static_cast<topo::RelType>(rel);
    label.provider = asn::Asn{get_u32(what)};
    return label;
  }
};

constexpr std::uint8_t kAsFlagHypergiant = 1u << 0;
constexpr std::uint8_t kAsFlagDocuments = 1u << 1;
constexpr std::uint8_t kAsFlagRpsl = 1u << 2;
constexpr std::uint8_t kAsFlagMeetings = 1u << 3;
constexpr std::uint8_t kAsFlagStrips = 1u << 4;

constexpr std::uint8_t kAsFlagsMask =
    kAsFlagHypergiant | kAsFlagDocuments | kAsFlagRpsl | kAsFlagMeetings |
    kAsFlagStrips;

constexpr std::uint8_t kEdgeFlagScopeCommunity = 1u << 0;
constexpr std::uint8_t kEdgeFlagMisdocumented = 1u << 1;
constexpr std::uint8_t kEdgeFlagHybrid = 1u << 2;

constexpr std::uint8_t kEdgeFlagsMask =
    kEdgeFlagScopeCommunity | kEdgeFlagMisdocumented | kEdgeFlagHybrid;

std::string encode_payload(const Snapshot& snapshot) {
  std::string out;

  put_u64(out, static_cast<std::uint64_t>(snapshot.meta.as_count));
  put_u64(out, snapshot.meta.seed);
  put_u64(out, snapshot.meta.scheme_seed);
  put_u64(out, snapshot.meta.epoch);
  put_u64(out, snapshot.meta.built_unix_ms);

  put_u64(out, snapshot.class_names.size());
  for (const auto& name : snapshot.class_names) put_string(out, name);

  put_u64(out, snapshot.ases.size());
  for (const auto& as : snapshot.ases) {
    put_u32(out, as.asn.value());
    put_u8(out, static_cast<std::uint8_t>(as.attrs.region));
    put_u8(out, static_cast<std::uint8_t>(as.attrs.tier));
    put_u8(out, static_cast<std::uint8_t>(as.attrs.stub_kind));
    std::uint8_t flags = 0;
    if (as.attrs.hypergiant) flags |= kAsFlagHypergiant;
    if (as.attrs.documents_communities) flags |= kAsFlagDocuments;
    if (as.attrs.maintains_rpsl) flags |= kAsFlagRpsl;
    if (as.attrs.attends_meetings) flags |= kAsFlagMeetings;
    if (as.attrs.strips_communities) flags |= kAsFlagStrips;
    put_u8(out, flags);
    put_string(out, as.attrs.country);
    put_f64(out, as.attrs.prepend_propensity);
    put_u32(out, as.transit_degree);
    put_u32(out, as.node_degree);
    put_u32(out, as.cone_size);
  }

  put_u64(out, snapshot.edges.size());
  for (const auto& edge : snapshot.edges) {
    put_u32(out, edge.a.value());
    put_u32(out, edge.b.value());
    put_u8(out, static_cast<std::uint8_t>(edge.rel));
    put_u8(out, static_cast<std::uint8_t>(edge.scope));
    std::uint8_t flags = 0;
    if (edge.scope_via_community) flags |= kEdgeFlagScopeCommunity;
    if (edge.misdocumented) flags |= kEdgeFlagMisdocumented;
    if (edge.hybrid_rel) flags |= kEdgeFlagHybrid;
    put_u8(out, flags);
    put_u8(out, edge.hybrid_rel
                    ? static_cast<std::uint8_t>(*edge.hybrid_rel)
                    : 0);
  }

  put_u64(out, snapshot.clique.size());
  for (const auto asn : snapshot.clique) put_u32(out, asn.value());
  put_u64(out, snapshot.hypergiants.size());
  for (const auto asn : snapshot.hypergiants) put_u32(out, asn.value());

  put_u64(out, snapshot.validation.size());
  for (const auto& label : snapshot.validation) put_label(out, label);

  put_u64(out, snapshot.algorithms.size());
  for (const auto& algorithm : snapshot.algorithms) {
    put_string(out, algorithm.name);
    put_u64(out, algorithm.labels.size());
    for (const auto& label : algorithm.labels) put_label(out, label);
  }

  put_u64(out, snapshot.links.size());
  for (const auto& tag : snapshot.links) {
    put_u32(out, tag.link.a.value());
    put_u32(out, tag.link.b.value());
    put_u32(out, tag.regional_class);
    put_u32(out, tag.topological_class);
  }

  return out;
}

std::optional<Snapshot> decode_payload(std::string_view payload,
                                       std::string* error) {
  Cursor in;
  in.data = payload;
  Snapshot snapshot;

  snapshot.meta.as_count =
      static_cast<std::int64_t>(in.get_u64("meta.as_count"));
  snapshot.meta.seed = in.get_u64("meta.seed");
  snapshot.meta.scheme_seed = in.get_u64("meta.scheme_seed");
  snapshot.meta.epoch = in.get_u64("meta.epoch");
  snapshot.meta.built_unix_ms = in.get_u64("meta.built_unix_ms");

  const auto names = in.get_count("class names", 4);
  snapshot.class_names.reserve(names);
  for (std::uint64_t i = 0; i < names && !in.failed(); ++i) {
    snapshot.class_names.push_back(in.get_string("class name"));
  }

  const auto ases = in.get_count("AS records", 31);
  snapshot.ases.reserve(ases);
  for (std::uint64_t i = 0; i < ases && !in.failed(); ++i) {
    SnapshotAs as;
    as.asn = asn::Asn{in.get_u32("as.asn")};
    as.attrs.region = static_cast<rir::Region>(in.get_u8("as.region"));
    as.attrs.tier = static_cast<topo::Tier>(in.get_u8("as.tier"));
    as.attrs.stub_kind =
        static_cast<topo::StubKind>(in.get_u8("as.stub_kind"));
    const std::uint8_t flags = in.get_u8("as.flags");
    if (!in.failed() && (flags & ~kAsFlagsMask) != 0) {
      in.fail("unknown flag bits in AS record");
    }
    if (!in.failed() &&
        (!valid_tier(static_cast<std::uint8_t>(as.attrs.tier)) ||
         !valid_stub_kind(static_cast<std::uint8_t>(as.attrs.stub_kind)))) {
      in.fail("invalid tier/stub code in AS record");
    }
    as.attrs.hypergiant = flags & kAsFlagHypergiant;
    as.attrs.documents_communities = flags & kAsFlagDocuments;
    as.attrs.maintains_rpsl = flags & kAsFlagRpsl;
    as.attrs.attends_meetings = flags & kAsFlagMeetings;
    as.attrs.strips_communities = flags & kAsFlagStrips;
    as.attrs.country = in.get_string("as.country");
    as.attrs.prepend_propensity = in.get_f64("as.prepend");
    as.transit_degree = in.get_u32("as.transit_degree");
    as.node_degree = in.get_u32("as.node_degree");
    as.cone_size = in.get_u32("as.cone_size");
    if (static_cast<std::uint8_t>(as.attrs.region) >
        static_cast<std::uint8_t>(rir::Region::kUnknown)) {
      in.fail("invalid region code in AS record");
    }
    snapshot.ases.push_back(std::move(as));
  }

  const auto edges = in.get_count("edges", 12);
  snapshot.edges.reserve(edges);
  for (std::uint64_t i = 0; i < edges && !in.failed(); ++i) {
    SnapshotEdge edge;
    edge.a = asn::Asn{in.get_u32("edge.a")};
    edge.b = asn::Asn{in.get_u32("edge.b")};
    const std::uint8_t rel = in.get_u8("edge.rel");
    const std::uint8_t scope = in.get_u8("edge.scope");
    const std::uint8_t flags = in.get_u8("edge.flags");
    const std::uint8_t hybrid = in.get_u8("edge.hybrid");
    if (!in.failed() && (!valid_rel(rel) || !valid_scope(scope) ||
                         ((flags & kEdgeFlagHybrid) && !valid_rel(hybrid)))) {
      in.fail("invalid relationship/scope code in edge record");
    }
    if (!in.failed() && (flags & ~kEdgeFlagsMask) != 0) {
      in.fail("unknown flag bits in edge record");
    }
    if (!in.failed() && !(flags & kEdgeFlagHybrid) && hybrid != 0) {
      in.fail("nonzero hybrid byte on a non-hybrid edge");
    }
    edge.rel = static_cast<topo::RelType>(rel);
    edge.scope = static_cast<topo::ExportScope>(scope);
    edge.scope_via_community = flags & kEdgeFlagScopeCommunity;
    edge.misdocumented = flags & kEdgeFlagMisdocumented;
    if (flags & kEdgeFlagHybrid) {
      edge.hybrid_rel = static_cast<topo::RelType>(hybrid);
    }
    snapshot.edges.push_back(edge);
  }

  const auto clique = in.get_count("clique", 4);
  for (std::uint64_t i = 0; i < clique && !in.failed(); ++i) {
    snapshot.clique.push_back(asn::Asn{in.get_u32("clique asn")});
  }
  const auto hypergiants = in.get_count("hypergiants", 4);
  for (std::uint64_t i = 0; i < hypergiants && !in.failed(); ++i) {
    snapshot.hypergiants.push_back(asn::Asn{in.get_u32("hypergiant asn")});
  }

  const auto validation = in.get_count("validation labels", 13);
  snapshot.validation.reserve(validation);
  for (std::uint64_t i = 0; i < validation && !in.failed(); ++i) {
    snapshot.validation.push_back(in.get_label("validation label"));
  }

  const auto algorithms = in.get_count("algorithms", 12);
  snapshot.algorithms.reserve(algorithms);
  for (std::uint64_t i = 0; i < algorithms && !in.failed(); ++i) {
    SnapshotAlgorithm algorithm;
    algorithm.name = in.get_string("algorithm name");
    const auto labels = in.get_count("algorithm labels", 13);
    algorithm.labels.reserve(labels);
    for (std::uint64_t j = 0; j < labels && !in.failed(); ++j) {
      algorithm.labels.push_back(in.get_label("algorithm label"));
    }
    snapshot.algorithms.push_back(std::move(algorithm));
  }

  const auto links = in.get_count("link tags", 16);
  snapshot.links.reserve(links);
  for (std::uint64_t i = 0; i < links && !in.failed(); ++i) {
    SnapshotLinkTag tag;
    const asn::Asn a{in.get_u32("tag.a")};
    const asn::Asn b{in.get_u32("tag.b")};
    if (!in.failed() && !(a < b)) {
      in.fail("link tag not in canonical order");
    }
    tag.link = val::AsLink{a, b};
    tag.regional_class = in.get_u32("tag.regional");
    tag.topological_class = in.get_u32("tag.topological");
    if (!in.failed() && (tag.regional_class >= snapshot.class_names.size() ||
                         tag.topological_class >=
                             snapshot.class_names.size())) {
      in.fail("link tag references a class name outside the string table");
    }
    snapshot.links.push_back(tag);
  }

  if (!in.failed() && in.remaining() != 0) {
    in.fail("trailing bytes after the last section");
  }
  if (in.failed()) {
    if (error != nullptr) *error = in.error;
    return std::nullopt;
  }
  return snapshot;
}

}  // namespace

std::string to_snapshot_bytes(const Snapshot& snapshot) {
  const std::string payload = encode_payload(snapshot);
  std::string out;
  out.reserve(kSnapshotMagic.size() + 20 + payload.size());
  out.append(kSnapshotMagic);
  put_u32(out, kSnapshotVersion);
  put_u64(out, payload.size());
  put_u64(out, fnv1a64(payload));
  out.append(payload);
  return out;
}

void write_snapshot(const Snapshot& snapshot, std::ostream& out) {
  const std::string bytes = to_snapshot_bytes(snapshot);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

std::optional<Snapshot> parse_snapshot_bytes(std::string_view bytes,
                                             std::string* error) {
  const auto fail = [&](std::string_view message) {
    if (error != nullptr) *error = std::string{message};
    return std::nullopt;
  };
  const std::size_t header_size = kSnapshotMagic.size() + 4 + 8 + 8;
  if (bytes.size() < header_size) {
    return fail("file too short to hold a snapshot header");
  }
  if (bytes.substr(0, kSnapshotMagic.size()) != kSnapshotMagic) {
    return fail("bad magic: not an asrel snapshot file");
  }
  Cursor header;
  header.data = bytes.substr(kSnapshotMagic.size());
  const std::uint32_t version = header.get_u32("version");
  const std::uint64_t payload_size = header.get_u64("payload size");
  const std::uint64_t checksum = header.get_u64("checksum");
  if (version != kSnapshotVersion) {
    if (error != nullptr) {
      *error = "unsupported snapshot version " + std::to_string(version) +
               " (this build reads version " +
               std::to_string(kSnapshotVersion) + ")";
    }
    return std::nullopt;
  }
  const std::string_view payload = bytes.substr(header_size);
  if (payload.size() != payload_size) {
    if (error != nullptr) {
      *error = "payload size mismatch: header says " +
               std::to_string(payload_size) + " bytes, file has " +
               std::to_string(payload.size()) +
               " (truncated or trailing garbage)";
    }
    return std::nullopt;
  }
  if (fnv1a64(payload) != checksum) {
    return fail("payload checksum mismatch: snapshot is corrupted");
  }
  return decode_payload(payload, error);
}

std::optional<Snapshot> read_snapshot(std::istream& in, std::string* error) {
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parse_snapshot_bytes(buffer.str(), error);
}

namespace {

// Fault-injection hooks; relaxed atomics because arming happens strictly
// before the faulted I/O in any sane test, and a torn install at worst
// delays one injection by a call.
std::atomic<std::size_t (*)()> g_read_cap{nullptr};
std::atomic<std::size_t (*)()> g_write_cap{nullptr};

[[nodiscard]] std::size_t hooked_cap(
    const std::atomic<std::size_t (*)()>& hook) {
  const auto fn = hook.load(std::memory_order_relaxed);
  return fn == nullptr ? static_cast<std::size_t>(-1) : fn();
}

}  // namespace

void set_snapshot_io_hooks(SnapshotIoHooks hooks) {
  g_read_cap.store(hooks.read_cap, std::memory_order_relaxed);
  g_write_cap.store(hooks.write_cap, std::memory_order_relaxed);
}

bool save_snapshot_file(const Snapshot& snapshot, const std::string& path,
                        std::string* error) {
  const std::string bytes = to_snapshot_bytes(snapshot);
  const std::string temp = path + ".tmp";
  const auto fail = [&](const std::string& message, int fd) {
    if (error != nullptr) {
      *error = message + ": " + std::strerror(errno);
    }
    if (fd >= 0) ::close(fd);
    ::unlink(temp.c_str());  // never leave a torn temp behind
    return false;
  };

  // Write the whole image to a temp file first: readers either see the
  // previous snapshot at `path` or the new one, never a prefix.
  const int fd = ::open(temp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return fail("cannot open " + temp + " for writing", -1);

  const std::size_t cap = hooked_cap(g_write_cap);
  std::size_t written = 0;
  while (written < bytes.size()) {
    if (written >= cap) {
      errno = ENOSPC;  // the injected failure presents as a full disk
      return fail("write to " + temp + " failed (fault injected)", fd);
    }
    const std::size_t want = std::min(bytes.size() - written, cap - written);
    const ssize_t n = ::write(fd, bytes.data() + written, want);
    if (n < 0) {
      if (errno == EINTR) continue;
      return fail("write to " + temp + " failed", fd);
    }
    written += static_cast<std::size_t>(n);
  }
  // fsync before rename: otherwise the rename can become durable before
  // the data, which is exactly the torn-file crash window.
  if (::fsync(fd) != 0) return fail("fsync of " + temp + " failed", fd);
  if (::close(fd) != 0) return fail("close of " + temp + " failed", -1);
  if (::rename(temp.c_str(), path.c_str()) != 0) {
    return fail("rename " + temp + " -> " + path + " failed", -1);
  }

  // Make the rename itself durable by syncing the containing directory.
  const std::size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos
                              ? std::string{"."}
                              : path.substr(0, slash == 0 ? 1 : slash);
  const int dir_fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (dir_fd >= 0) {
    ::fsync(dir_fd);  // best effort: some filesystems refuse dir fsync
    ::close(dir_fd);
  }
  return true;
}

std::optional<Snapshot> load_snapshot_file(const std::string& path,
                                           std::string* error) {
  std::ifstream in{path, std::ios::binary};
  if (!in) {
    if (error != nullptr) *error = "cannot open " + path;
    return std::nullopt;
  }
  const std::size_t cap = hooked_cap(g_read_cap);
  if (cap != static_cast<std::size_t>(-1)) {
    // Injected mid-file read failure: parse only the prefix the "failing"
    // read delivered. The header's size+checksum reject it cleanly.
    std::string bytes(cap, '\0');
    in.read(bytes.data(), static_cast<std::streamsize>(cap));
    bytes.resize(static_cast<std::size_t>(in.gcount()));
    return parse_snapshot_bytes(bytes, error);
  }
  return read_snapshot(in, error);
}

}  // namespace asrel::io
