#include "io/snapshot.hpp"

#include <atomic>
#include <cstring>
#include <istream>
#include <limits>
#include <ostream>
#include <sstream>

#include "io/atomic_file.hpp"
#include "io/wire.hpp"

namespace asrel::io {

namespace {

// Wire primitives and the bounds-checked reader are shared with the
// checkpoint codec (io/wire.hpp); only the label helpers and the
// section-level validation rules are snapshot-specific.
using wire::Cursor;
using wire::fnv1a64;
using wire::put_f64;
using wire::put_string;
using wire::put_u32;
using wire::put_u64;
using wire::put_u8;

void put_label(std::string& out, const val::CleanLabel& label) {
  put_u32(out, label.link.a.value());
  put_u32(out, label.link.b.value());
  put_u8(out, static_cast<std::uint8_t>(label.rel));
  put_u32(out, label.provider.value());
}

// ---- decoding ----

[[nodiscard]] bool valid_rel(std::uint8_t v) {
  return v <= static_cast<std::uint8_t>(topo::RelType::kS2S);
}

[[nodiscard]] bool valid_scope(std::uint8_t v) {
  return v <= static_cast<std::uint8_t>(topo::ExportScope::kCustomersOnly);
}

[[nodiscard]] bool valid_tier(std::uint8_t v) {
  return v <= static_cast<std::uint8_t>(topo::Tier::kStub);
}

[[nodiscard]] bool valid_stub_kind(std::uint8_t v) {
  return v <= static_cast<std::uint8_t>(topo::StubKind::kNotStub);
}

/// Labels are stored with the link in canonical (a < b) order; anything
/// else would silently re-serialize differently, so reject it here.
val::CleanLabel get_label(Cursor& in, const char* what) {
  val::CleanLabel label;
  const asn::Asn a{in.get_u32(what)};
  const asn::Asn b{in.get_u32(what)};
  if (!in.failed() && !(a < b)) {
    in.fail(std::string{"link not in canonical order in "} + what);
  }
  label.link = val::AsLink{a, b};
  const std::uint8_t rel = in.get_u8(what);
  if (!in.failed() && !valid_rel(rel)) {
    in.fail(std::string{"invalid relationship code in "} + what);
  }
  label.rel = static_cast<topo::RelType>(rel);
  label.provider = asn::Asn{in.get_u32(what)};
  return label;
}

constexpr std::uint8_t kAsFlagHypergiant = 1u << 0;
constexpr std::uint8_t kAsFlagDocuments = 1u << 1;
constexpr std::uint8_t kAsFlagRpsl = 1u << 2;
constexpr std::uint8_t kAsFlagMeetings = 1u << 3;
constexpr std::uint8_t kAsFlagStrips = 1u << 4;

constexpr std::uint8_t kAsFlagsMask =
    kAsFlagHypergiant | kAsFlagDocuments | kAsFlagRpsl | kAsFlagMeetings |
    kAsFlagStrips;

constexpr std::uint8_t kEdgeFlagScopeCommunity = 1u << 0;
constexpr std::uint8_t kEdgeFlagMisdocumented = 1u << 1;
constexpr std::uint8_t kEdgeFlagHybrid = 1u << 2;

constexpr std::uint8_t kEdgeFlagsMask =
    kEdgeFlagScopeCommunity | kEdgeFlagMisdocumented | kEdgeFlagHybrid;

std::string encode_payload(const Snapshot& snapshot) {
  std::string out;

  put_u64(out, static_cast<std::uint64_t>(snapshot.meta.as_count));
  put_u64(out, snapshot.meta.seed);
  put_u64(out, snapshot.meta.scheme_seed);
  put_u64(out, snapshot.meta.epoch);
  put_u64(out, snapshot.meta.built_unix_ms);

  put_u64(out, snapshot.class_names.size());
  for (const auto& name : snapshot.class_names) put_string(out, name);

  put_u64(out, snapshot.ases.size());
  for (const auto& as : snapshot.ases) {
    put_u32(out, as.asn.value());
    put_u8(out, static_cast<std::uint8_t>(as.attrs.region));
    put_u8(out, static_cast<std::uint8_t>(as.attrs.tier));
    put_u8(out, static_cast<std::uint8_t>(as.attrs.stub_kind));
    std::uint8_t flags = 0;
    if (as.attrs.hypergiant) flags |= kAsFlagHypergiant;
    if (as.attrs.documents_communities) flags |= kAsFlagDocuments;
    if (as.attrs.maintains_rpsl) flags |= kAsFlagRpsl;
    if (as.attrs.attends_meetings) flags |= kAsFlagMeetings;
    if (as.attrs.strips_communities) flags |= kAsFlagStrips;
    put_u8(out, flags);
    put_string(out, as.attrs.country);
    put_f64(out, as.attrs.prepend_propensity);
    put_u32(out, as.transit_degree);
    put_u32(out, as.node_degree);
    put_u32(out, as.cone_size);
  }

  put_u64(out, snapshot.edges.size());
  for (const auto& edge : snapshot.edges) {
    put_u32(out, edge.a.value());
    put_u32(out, edge.b.value());
    put_u8(out, static_cast<std::uint8_t>(edge.rel));
    put_u8(out, static_cast<std::uint8_t>(edge.scope));
    std::uint8_t flags = 0;
    if (edge.scope_via_community) flags |= kEdgeFlagScopeCommunity;
    if (edge.misdocumented) flags |= kEdgeFlagMisdocumented;
    if (edge.hybrid_rel) flags |= kEdgeFlagHybrid;
    put_u8(out, flags);
    put_u8(out, edge.hybrid_rel
                    ? static_cast<std::uint8_t>(*edge.hybrid_rel)
                    : 0);
  }

  put_u64(out, snapshot.clique.size());
  for (const auto asn : snapshot.clique) put_u32(out, asn.value());
  put_u64(out, snapshot.hypergiants.size());
  for (const auto asn : snapshot.hypergiants) put_u32(out, asn.value());

  put_u64(out, snapshot.validation.size());
  for (const auto& label : snapshot.validation) put_label(out, label);

  put_u64(out, snapshot.algorithms.size());
  for (const auto& algorithm : snapshot.algorithms) {
    put_string(out, algorithm.name);
    put_u64(out, algorithm.labels.size());
    for (const auto& label : algorithm.labels) put_label(out, label);
  }

  put_u64(out, snapshot.links.size());
  for (const auto& tag : snapshot.links) {
    put_u32(out, tag.link.a.value());
    put_u32(out, tag.link.b.value());
    put_u32(out, tag.regional_class);
    put_u32(out, tag.topological_class);
  }

  return out;
}

std::optional<Snapshot> decode_payload(std::string_view payload,
                                       std::string* error) {
  Cursor in;
  in.data = payload;
  Snapshot snapshot;

  snapshot.meta.as_count =
      static_cast<std::int64_t>(in.get_u64("meta.as_count"));
  snapshot.meta.seed = in.get_u64("meta.seed");
  snapshot.meta.scheme_seed = in.get_u64("meta.scheme_seed");
  snapshot.meta.epoch = in.get_u64("meta.epoch");
  snapshot.meta.built_unix_ms = in.get_u64("meta.built_unix_ms");

  const auto names = in.get_count("class names", 4);
  snapshot.class_names.reserve(names);
  for (std::uint64_t i = 0; i < names && !in.failed(); ++i) {
    snapshot.class_names.push_back(in.get_string("class name"));
  }

  const auto ases = in.get_count("AS records", 31);
  snapshot.ases.reserve(ases);
  for (std::uint64_t i = 0; i < ases && !in.failed(); ++i) {
    SnapshotAs as;
    as.asn = asn::Asn{in.get_u32("as.asn")};
    as.attrs.region = static_cast<rir::Region>(in.get_u8("as.region"));
    as.attrs.tier = static_cast<topo::Tier>(in.get_u8("as.tier"));
    as.attrs.stub_kind =
        static_cast<topo::StubKind>(in.get_u8("as.stub_kind"));
    const std::uint8_t flags = in.get_u8("as.flags");
    if (!in.failed() && (flags & ~kAsFlagsMask) != 0) {
      in.fail("unknown flag bits in AS record");
    }
    if (!in.failed() &&
        (!valid_tier(static_cast<std::uint8_t>(as.attrs.tier)) ||
         !valid_stub_kind(static_cast<std::uint8_t>(as.attrs.stub_kind)))) {
      in.fail("invalid tier/stub code in AS record");
    }
    as.attrs.hypergiant = flags & kAsFlagHypergiant;
    as.attrs.documents_communities = flags & kAsFlagDocuments;
    as.attrs.maintains_rpsl = flags & kAsFlagRpsl;
    as.attrs.attends_meetings = flags & kAsFlagMeetings;
    as.attrs.strips_communities = flags & kAsFlagStrips;
    as.attrs.country = in.get_string("as.country");
    as.attrs.prepend_propensity = in.get_f64("as.prepend");
    as.transit_degree = in.get_u32("as.transit_degree");
    as.node_degree = in.get_u32("as.node_degree");
    as.cone_size = in.get_u32("as.cone_size");
    if (static_cast<std::uint8_t>(as.attrs.region) >
        static_cast<std::uint8_t>(rir::Region::kUnknown)) {
      in.fail("invalid region code in AS record");
    }
    snapshot.ases.push_back(std::move(as));
  }

  const auto edges = in.get_count("edges", 12);
  snapshot.edges.reserve(edges);
  for (std::uint64_t i = 0; i < edges && !in.failed(); ++i) {
    SnapshotEdge edge;
    edge.a = asn::Asn{in.get_u32("edge.a")};
    edge.b = asn::Asn{in.get_u32("edge.b")};
    const std::uint8_t rel = in.get_u8("edge.rel");
    const std::uint8_t scope = in.get_u8("edge.scope");
    const std::uint8_t flags = in.get_u8("edge.flags");
    const std::uint8_t hybrid = in.get_u8("edge.hybrid");
    if (!in.failed() && (!valid_rel(rel) || !valid_scope(scope) ||
                         ((flags & kEdgeFlagHybrid) && !valid_rel(hybrid)))) {
      in.fail("invalid relationship/scope code in edge record");
    }
    if (!in.failed() && (flags & ~kEdgeFlagsMask) != 0) {
      in.fail("unknown flag bits in edge record");
    }
    if (!in.failed() && !(flags & kEdgeFlagHybrid) && hybrid != 0) {
      in.fail("nonzero hybrid byte on a non-hybrid edge");
    }
    edge.rel = static_cast<topo::RelType>(rel);
    edge.scope = static_cast<topo::ExportScope>(scope);
    edge.scope_via_community = flags & kEdgeFlagScopeCommunity;
    edge.misdocumented = flags & kEdgeFlagMisdocumented;
    if (flags & kEdgeFlagHybrid) {
      edge.hybrid_rel = static_cast<topo::RelType>(hybrid);
    }
    snapshot.edges.push_back(edge);
  }

  const auto clique = in.get_count("clique", 4);
  for (std::uint64_t i = 0; i < clique && !in.failed(); ++i) {
    snapshot.clique.push_back(asn::Asn{in.get_u32("clique asn")});
  }
  const auto hypergiants = in.get_count("hypergiants", 4);
  for (std::uint64_t i = 0; i < hypergiants && !in.failed(); ++i) {
    snapshot.hypergiants.push_back(asn::Asn{in.get_u32("hypergiant asn")});
  }

  const auto validation = in.get_count("validation labels", 13);
  snapshot.validation.reserve(validation);
  for (std::uint64_t i = 0; i < validation && !in.failed(); ++i) {
    snapshot.validation.push_back(get_label(in, "validation label"));
  }

  const auto algorithms = in.get_count("algorithms", 12);
  snapshot.algorithms.reserve(algorithms);
  for (std::uint64_t i = 0; i < algorithms && !in.failed(); ++i) {
    SnapshotAlgorithm algorithm;
    algorithm.name = in.get_string("algorithm name");
    const auto labels = in.get_count("algorithm labels", 13);
    algorithm.labels.reserve(labels);
    for (std::uint64_t j = 0; j < labels && !in.failed(); ++j) {
      algorithm.labels.push_back(get_label(in, "algorithm label"));
    }
    snapshot.algorithms.push_back(std::move(algorithm));
  }

  const auto links = in.get_count("link tags", 16);
  snapshot.links.reserve(links);
  for (std::uint64_t i = 0; i < links && !in.failed(); ++i) {
    SnapshotLinkTag tag;
    const asn::Asn a{in.get_u32("tag.a")};
    const asn::Asn b{in.get_u32("tag.b")};
    if (!in.failed() && !(a < b)) {
      in.fail("link tag not in canonical order");
    }
    tag.link = val::AsLink{a, b};
    tag.regional_class = in.get_u32("tag.regional");
    tag.topological_class = in.get_u32("tag.topological");
    if (!in.failed() && (tag.regional_class >= snapshot.class_names.size() ||
                         tag.topological_class >=
                             snapshot.class_names.size())) {
      in.fail("link tag references a class name outside the string table");
    }
    snapshot.links.push_back(tag);
  }

  if (!in.failed() && in.remaining() != 0) {
    in.fail("trailing bytes after the last section");
  }
  if (in.failed()) {
    if (error != nullptr) *error = in.error;
    return std::nullopt;
  }
  return snapshot;
}

}  // namespace

std::string to_snapshot_bytes(const Snapshot& snapshot) {
  const std::string payload = encode_payload(snapshot);
  std::string out;
  out.reserve(kSnapshotMagic.size() + 20 + payload.size());
  out.append(kSnapshotMagic);
  put_u32(out, kSnapshotVersion);
  put_u64(out, payload.size());
  put_u64(out, fnv1a64(payload));
  out.append(payload);
  return out;
}

void write_snapshot(const Snapshot& snapshot, std::ostream& out) {
  const std::string bytes = to_snapshot_bytes(snapshot);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

std::optional<Snapshot> parse_snapshot_bytes(std::string_view bytes,
                                             std::string* error) {
  const auto fail = [&](std::string_view message) {
    if (error != nullptr) *error = std::string{message};
    return std::nullopt;
  };
  const std::size_t header_size = kSnapshotMagic.size() + 4 + 8 + 8;
  if (bytes.size() < header_size) {
    return fail("file too short to hold a snapshot header");
  }
  if (bytes.substr(0, kSnapshotMagic.size()) != kSnapshotMagic) {
    return fail("bad magic: not an asrel snapshot file");
  }
  Cursor header;
  header.data = bytes.substr(kSnapshotMagic.size());
  const std::uint32_t version = header.get_u32("version");
  const std::uint64_t payload_size = header.get_u64("payload size");
  const std::uint64_t checksum = header.get_u64("checksum");
  if (version != kSnapshotVersion) {
    if (error != nullptr) {
      *error = "unsupported snapshot version " + std::to_string(version) +
               " (this build reads version " +
               std::to_string(kSnapshotVersion) + ")";
    }
    return std::nullopt;
  }
  const std::string_view payload = bytes.substr(header_size);
  if (payload.size() != payload_size) {
    if (error != nullptr) {
      *error = "payload size mismatch: header says " +
               std::to_string(payload_size) + " bytes, file has " +
               std::to_string(payload.size()) +
               " (truncated or trailing garbage)";
    }
    return std::nullopt;
  }
  if (fnv1a64(payload) != checksum) {
    return fail("payload checksum mismatch: snapshot is corrupted");
  }
  return decode_payload(payload, error);
}

std::optional<Snapshot> read_snapshot(std::istream& in, std::string* error) {
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parse_snapshot_bytes(buffer.str(), error);
}

namespace {

// Fault-injection hooks; relaxed atomics because arming happens strictly
// before the faulted I/O in any sane test, and a torn install at worst
// delays one injection by a call.
std::atomic<std::size_t (*)()> g_read_cap{nullptr};
std::atomic<std::size_t (*)()> g_write_cap{nullptr};

[[nodiscard]] std::size_t hooked_cap(
    const std::atomic<std::size_t (*)()>& hook) {
  const auto fn = hook.load(std::memory_order_relaxed);
  return fn == nullptr ? static_cast<std::size_t>(-1) : fn();
}

}  // namespace

void set_snapshot_io_hooks(SnapshotIoHooks hooks) {
  g_read_cap.store(hooks.read_cap, std::memory_order_relaxed);
  g_write_cap.store(hooks.write_cap, std::memory_order_relaxed);
}

std::size_t snapshot_io_read_cap() { return hooked_cap(g_read_cap); }
std::size_t snapshot_io_write_cap() { return hooked_cap(g_write_cap); }

bool save_snapshot_file(const Snapshot& snapshot, const std::string& path,
                        std::string* error) {
  return write_file_atomic(to_snapshot_bytes(snapshot), path, error,
                           hooked_cap(g_write_cap));
}

std::optional<Snapshot> load_snapshot_file(const std::string& path,
                                           std::string* error) {
  const auto bytes = read_file_capped(path, error, hooked_cap(g_read_cap));
  if (!bytes) return std::nullopt;
  return parse_snapshot_bytes(*bytes, error);
}

}  // namespace asrel::io
