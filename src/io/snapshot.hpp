// Versioned binary snapshot of one scenario's precomputed artifacts.
//
// A snapshot is everything the serving layer (src/serve) needs to answer
// per-link and aggregate bias queries without re-running the pipeline:
// the ground-truth graph + per-AS attributes, the observed ("inferred")
// link universe with its §5 class tags, the cleaned validation data, and
// the edge labels produced by each inference algorithm. Loading one takes
// milliseconds where rebuilding the Scenario takes minutes — the same
// batch-vs-serve split CAIDA makes by publishing serial-2 as-rel files
// instead of asking consumers to re-run ASRank.
//
// Format (all integers little-endian, fixed width):
//   magic "ASRELSNP" | version u32 | payload_size u64 | fnv1a64 u64 |
//   payload. The checksum covers the payload only, so truncation and
//   bit-flips are both detected before any section is trusted. Counts are
//   validated against the remaining payload size while parsing, so a
//   corrupted count fails cleanly instead of allocating garbage.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "asn/asn.hpp"
#include "topology/attributes.hpp"
#include "topology/graph.hpp"
#include "topology/rel_type.hpp"
#include "validation/cleaner.hpp"
#include "validation/label.hpp"

namespace asrel::io {

inline constexpr std::string_view kSnapshotMagic = "ASRELSNP";
/// v2 added epoch + built_unix_ms to the meta section (streaming
/// publication). v1 files are no longer readable; regenerate them.
inline constexpr std::uint32_t kSnapshotVersion = 2;

/// Enough provenance to tell two snapshots apart and to refuse mixing
/// artifacts from different worlds.
struct SnapshotMeta {
  std::int64_t as_count = 0;       ///< TopologyParams::as_count
  std::uint64_t seed = 0;          ///< TopologyParams::seed
  std::uint64_t scheme_seed = 0;   ///< ScenarioParams::scheme_seed
  /// Monotonic publication epoch: 0 for a batch build, incremented by one
  /// for each snapshot a stream session publishes.
  std::uint64_t epoch = 0;
  /// Build wall-clock, milliseconds since the Unix epoch. Supplied by the
  /// caller (not sampled here) so identical worlds serialize identically.
  std::uint64_t built_unix_ms = 0;

  friend bool operator==(const SnapshotMeta&, const SnapshotMeta&) = default;
};

/// One AS: ground-truth attributes plus the observed-view degrees and the
/// ground-truth customer-cone size.
struct SnapshotAs {
  asn::Asn asn;
  topo::AsAttributes attrs;
  std::uint32_t transit_degree = 0;  ///< 0 if never observed mid-path
  std::uint32_t node_degree = 0;
  std::uint32_t cone_size = 0;

  friend bool operator==(const SnapshotAs&, const SnapshotAs&) = default;
};

/// One ground-truth edge (provider first for kP2C), with the annotations
/// the §6.1 case study depends on.
struct SnapshotEdge {
  asn::Asn a;  ///< provider for kP2C
  asn::Asn b;
  topo::RelType rel = topo::RelType::kP2P;
  topo::ExportScope scope = topo::ExportScope::kFull;
  bool scope_via_community = false;
  bool misdocumented = false;
  std::optional<topo::RelType> hybrid_rel;

  friend bool operator==(const SnapshotEdge&, const SnapshotEdge&) = default;
};

/// One algorithm's full labeling, in the inference's deterministic order.
/// Reuses val::CleanLabel: {link, rel, provider-if-P2C}.
struct SnapshotAlgorithm {
  std::string name;  ///< "asrank", "problink", "toposcope"
  std::vector<val::CleanLabel> labels;

  friend bool operator==(const SnapshotAlgorithm&,
                         const SnapshotAlgorithm&) = default;
};

/// One visible link with its precomputed §5 class tags (indices into
/// Snapshot::class_names).
struct SnapshotLinkTag {
  val::AsLink link;
  std::uint32_t regional_class = 0;
  std::uint32_t topological_class = 0;

  friend bool operator==(const SnapshotLinkTag&,
                         const SnapshotLinkTag&) = default;
};

struct Snapshot {
  SnapshotMeta meta;
  std::vector<std::string> class_names;     ///< interned class strings
  std::vector<SnapshotAs> ases;             ///< sorted by ASN
  std::vector<SnapshotEdge> edges;          ///< ground truth, graph order
  std::vector<asn::Asn> clique;
  std::vector<asn::Asn> hypergiants;
  std::vector<val::CleanLabel> validation;  ///< cleaned, pipeline order
  std::vector<SnapshotAlgorithm> algorithms;
  std::vector<SnapshotLinkTag> links;       ///< observed links, first-seen order
};

/// Serialization is deterministic: the same Snapshot value always produces
/// byte-identical output.
void write_snapshot(const Snapshot& snapshot, std::ostream& out);
[[nodiscard]] std::string to_snapshot_bytes(const Snapshot& snapshot);

/// Returns nullopt and fills `*error` (if given) with a one-line diagnosis
/// for wrong magic, unsupported version, truncation, checksum mismatch, or
/// any structurally invalid section.
[[nodiscard]] std::optional<Snapshot> read_snapshot(
    std::istream& in, std::string* error = nullptr);
[[nodiscard]] std::optional<Snapshot> parse_snapshot_bytes(
    std::string_view bytes, std::string* error = nullptr);

/// Convenience file wrappers (open + read/write + diagnose open failures).
///
/// save_snapshot_file is crash-safe: bytes go to `path + ".tmp"`, are
/// fsync'd, and are renamed over `path` in one atomic step (then the
/// directory is fsync'd so the rename itself is durable). A crash or
/// write failure at any point leaves either the old file or no file at
/// `path` — never a half-written snapshot — and the reader independently
/// rejects torn files via the header's payload size + checksum.
[[nodiscard]] bool save_snapshot_file(const Snapshot& snapshot,
                                      const std::string& path,
                                      std::string* error = nullptr);
[[nodiscard]] std::optional<Snapshot> load_snapshot_file(
    const std::string& path, std::string* error = nullptr);

/// Fault-injection hooks (see serve/fault_inject.*): when set, file reads
/// are truncated to read_cap() bytes and file writes fail after
/// write_cap() bytes, simulating torn I/O. Null members = no limit.
/// Not for production use; installed/cleared by FaultInjector.
struct SnapshotIoHooks {
  std::size_t (*read_cap)() = nullptr;
  std::size_t (*write_cap)() = nullptr;
};
void set_snapshot_io_hooks(SnapshotIoHooks hooks);

/// Current hook values (SIZE_MAX when unhooked) — so sibling formats
/// (the flat v3 codec) honor the same chaos caps as this one.
[[nodiscard]] std::size_t snapshot_io_read_cap();
[[nodiscard]] std::size_t snapshot_io_write_cap();

}  // namespace asrel::io
