#include "io/flat_snapshot.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <unordered_map>
#include <utility>
#include <vector>

#include "io/atomic_file.hpp"
#include "io/wire.hpp"

namespace asrel::io {

namespace {

using flat::kEmptySlot;
using flat::link_key;
using flat::mix64;

[[nodiscard]] std::uint64_t table_capacity(std::size_t n) {
  // Power of two, load factor <= 1/2; a minimum of 8 keeps empty tables
  // probe-able with the same code path.
  std::uint64_t cap = 8;
  while (cap < 2 * static_cast<std::uint64_t>(n)) cap <<= 1;
  return cap;
}

/// Open-addressing insert; keeps the first record for a duplicate key
/// (matching unordered_map::emplace in the query engine's index build).
class TableBuilder {
 public:
  explicit TableBuilder(std::size_t n)
      : slots_(table_capacity(n), kEmptySlot) {}

  template <typename KeyOf>
  void insert(std::uint64_t key, std::uint32_t index, KeyOf key_of) {
    const std::uint64_t mask = slots_.size() - 1;
    std::uint64_t slot = mix64(key) & mask;
    while (slots_[slot] != kEmptySlot) {
      if (key_of(slots_[slot]) == key) return;  // keep-first
      slot = (slot + 1) & mask;
    }
    slots_[slot] = index;
  }

  [[nodiscard]] const std::vector<std::uint32_t>& slots() const {
    return slots_;
  }

 private:
  std::vector<std::uint32_t> slots_;
};

/// Deduplicating string pool builder.
class PoolBuilder {
 public:
  flat::StrRef intern(std::string_view s) {
    const auto it = seen_.find(std::string{s});
    if (it != seen_.end()) return it->second;
    const flat::StrRef ref{static_cast<std::uint32_t>(bytes_.size()),
                           static_cast<std::uint32_t>(s.size())};
    bytes_.append(s);
    seen_.emplace(std::string{s}, ref);
    return ref;
  }

  [[nodiscard]] const std::string& bytes() const { return bytes_; }

 private:
  std::string bytes_;
  std::unordered_map<std::string, flat::StrRef> seen_;
};

void pad8(std::string& out) {
  while (out.size() % 8 != 0) out.push_back('\0');
}

/// Records the current (aligned) offset, then appends `count` records of
/// `bytes_each` from `data`.
template <typename T>
std::uint64_t append_section(std::string& out, const T* data,
                             std::size_t count) {
  pad8(out);
  const std::uint64_t off = out.size();
  if (count > 0) {
    out.append(reinterpret_cast<const char*>(data), count * sizeof(T));
  }
  return off;
}

template <typename T>
std::uint64_t append_section(std::string& out, const std::vector<T>& v) {
  return append_section(out, v.data(), v.size());
}

}  // namespace

std::string to_flat_snapshot_bytes(const Snapshot& snapshot) {
  PoolBuilder pool;

  std::vector<flat::StrRef> class_refs;
  class_refs.reserve(snapshot.class_names.size());
  for (const auto& name : snapshot.class_names) {
    class_refs.push_back(pool.intern(name));
  }

  std::vector<flat::As> ases(snapshot.ases.size());
  std::unordered_map<std::uint32_t, std::uint32_t> as_of_asn;
  as_of_asn.reserve(snapshot.ases.size());
  for (std::size_t i = 0; i < snapshot.ases.size(); ++i) {
    const SnapshotAs& src = snapshot.ases[i];
    flat::As& dst = ases[i];
    dst.asn = src.asn.value();
    dst.region = static_cast<std::uint8_t>(src.attrs.region);
    dst.tier = static_cast<std::uint8_t>(src.attrs.tier);
    dst.stub_kind = static_cast<std::uint8_t>(src.attrs.stub_kind);
    std::uint8_t flags = 0;
    if (src.attrs.hypergiant) flags |= flat::kAsFlagHypergiant;
    if (src.attrs.documents_communities) flags |= flat::kAsFlagDocuments;
    if (src.attrs.maintains_rpsl) flags |= flat::kAsFlagRpsl;
    if (src.attrs.attends_meetings) flags |= flat::kAsFlagMeetings;
    if (src.attrs.strips_communities) flags |= flat::kAsFlagStrips;
    dst.flags = flags;
    dst.prepend_propensity = src.attrs.prepend_propensity;
    dst.transit_degree = src.transit_degree;
    dst.node_degree = src.node_degree;
    dst.cone_size = src.cone_size;
    dst.country = pool.intern(src.attrs.country);
    as_of_asn.emplace(dst.asn, static_cast<std::uint32_t>(i));
  }

  // Incident observed/validated link counts live in the AS record so
  // as_summary needs no side table.
  const auto bump = [&](std::uint32_t asn, std::uint32_t flat::As::* field) {
    const auto it = as_of_asn.find(asn);
    if (it != as_of_asn.end()) ++(ases[it->second].*field);
  };
  for (const auto& tag : snapshot.links) {
    bump(tag.link.a.value(), &flat::As::observed_links);
    bump(tag.link.b.value(), &flat::As::observed_links);
  }
  for (const auto& label : snapshot.validation) {
    bump(label.link.a.value(), &flat::As::validated_links);
    bump(label.link.b.value(), &flat::As::validated_links);
  }

  TableBuilder as_index(ases.size());
  for (std::uint32_t i = 0; i < ases.size(); ++i) {
    as_index.insert(ases[i].asn, i,
                    [&](std::uint32_t slot) { return ases[slot].asn; });
  }

  std::vector<flat::Edge> edges(snapshot.edges.size());
  for (std::size_t i = 0; i < snapshot.edges.size(); ++i) {
    const SnapshotEdge& src = snapshot.edges[i];
    flat::Edge& dst = edges[i];
    dst.a = src.a.value();
    dst.b = src.b.value();
    dst.rel = static_cast<std::uint8_t>(src.rel);
    dst.scope = static_cast<std::uint8_t>(src.scope);
    std::uint8_t flags = 0;
    if (src.scope_via_community) flags |= flat::kEdgeFlagScopeCommunity;
    if (src.misdocumented) flags |= flat::kEdgeFlagMisdocumented;
    if (src.hybrid_rel) flags |= flat::kEdgeFlagHybrid;
    dst.flags = flags;
    dst.hybrid =
        src.hybrid_rel ? static_cast<std::uint8_t>(*src.hybrid_rel) : 0;
  }
  const auto edge_key = [&](std::uint32_t slot) {
    return link_key(edges[slot].a, edges[slot].b);
  };
  TableBuilder edge_index(edges.size());
  for (std::uint32_t i = 0; i < edges.size(); ++i) {
    edge_index.insert(link_key(edges[i].a, edges[i].b), i, edge_key);
  }

  // CSR adjacency: counting pass, prefix sums, fill.
  std::vector<std::uint32_t> csr_offsets(ases.size() + 1, 0);
  const auto row_of = [&](std::uint32_t asn) -> std::uint32_t {
    const auto it = as_of_asn.find(asn);
    return it == as_of_asn.end() ? kEmptySlot : it->second;
  };
  for (const auto& edge : edges) {
    for (const std::uint32_t end : {row_of(edge.a), row_of(edge.b)}) {
      if (end != kEmptySlot) ++csr_offsets[end + 1];
    }
  }
  for (std::size_t i = 1; i < csr_offsets.size(); ++i) {
    csr_offsets[i] += csr_offsets[i - 1];
  }
  std::vector<std::uint32_t> csr_entries(csr_offsets.back());
  {
    std::vector<std::uint32_t> cursor(csr_offsets.begin(),
                                      csr_offsets.end() - 1);
    for (std::uint32_t e = 0; e < edges.size(); ++e) {
      for (const std::uint32_t end :
           {row_of(edges[e].a), row_of(edges[e].b)}) {
        if (end != kEmptySlot) csr_entries[cursor[end]++] = e;
      }
    }
  }

  std::vector<std::uint32_t> clique;
  clique.reserve(snapshot.clique.size());
  for (const auto asn : snapshot.clique) clique.push_back(asn.value());
  std::vector<std::uint32_t> hypergiants;
  hypergiants.reserve(snapshot.hypergiants.size());
  for (const auto asn : snapshot.hypergiants) {
    hypergiants.push_back(asn.value());
  }

  const auto to_label = [](const val::CleanLabel& src) {
    flat::Label label;
    label.a = src.link.a.value();
    label.b = src.link.b.value();
    label.provider = src.provider.value();
    label.rel = static_cast<std::uint8_t>(src.rel);
    return label;
  };
  std::vector<flat::Label> validation(snapshot.validation.size());
  for (std::size_t i = 0; i < validation.size(); ++i) {
    validation[i] = to_label(snapshot.validation[i]);
  }
  TableBuilder validation_index(validation.size());
  for (std::uint32_t i = 0; i < validation.size(); ++i) {
    validation_index.insert(
        link_key(validation[i].a, validation[i].b), i,
        [&](std::uint32_t s) {
          return link_key(validation[s].a, validation[s].b);
        });
  }

  // Algorithms: one shared label array, one hash index each. Byte
  // offsets are resolved after layout, so stage relative positions now.
  std::vector<flat::Algo> algos(snapshot.algorithms.size());
  std::vector<flat::Label> algo_labels;
  std::vector<std::vector<std::uint32_t>> algo_slots;
  algo_slots.reserve(snapshot.algorithms.size());
  for (std::size_t a = 0; a < snapshot.algorithms.size(); ++a) {
    const SnapshotAlgorithm& src = snapshot.algorithms[a];
    algos[a].name = pool.intern(src.name);
    algos[a].labels_off = algo_labels.size();  // record index for now
    algos[a].labels_count = src.labels.size();
    const std::size_t base = algo_labels.size();
    algo_labels.resize(base + src.labels.size());
    for (std::size_t i = 0; i < src.labels.size(); ++i) {
      algo_labels[base + i] = to_label(src.labels[i]);
    }
    TableBuilder index(src.labels.size());
    for (std::uint32_t i = 0; i < src.labels.size(); ++i) {
      const flat::Label& label = algo_labels[base + i];
      index.insert(link_key(label.a, label.b), i, [&](std::uint32_t s) {
        const flat::Label& other = algo_labels[base + s];
        return link_key(other.a, other.b);
      });
    }
    algo_slots.push_back(index.slots());
  }

  std::vector<flat::LinkTag> links(snapshot.links.size());
  for (std::size_t i = 0; i < links.size(); ++i) {
    const SnapshotLinkTag& src = snapshot.links[i];
    links[i] = flat::LinkTag{src.link.a.value(), src.link.b.value(),
                             src.regional_class, src.topological_class};
  }
  TableBuilder link_index(links.size());
  for (std::uint32_t i = 0; i < links.size(); ++i) {
    link_index.insert(link_key(links[i].a, links[i].b), i,
                      [&](std::uint32_t s) {
                        return link_key(links[s].a, links[s].b);
                      });
  }

  // ---- layout ----
  std::string out(sizeof(flat::Header), '\0');
  flat::Header header{};
  std::memcpy(header.magic, kFlatSnapshotMagic.data(), 8);
  header.version = kFlatSnapshotVersion;
  header.header_size = sizeof(flat::Header);
  header.as_count = snapshot.meta.as_count;
  header.seed = snapshot.meta.seed;
  header.scheme_seed = snapshot.meta.scheme_seed;
  header.epoch = snapshot.meta.epoch;
  header.built_unix_ms = snapshot.meta.built_unix_ms;
  header.n_class_names = static_cast<std::uint32_t>(class_refs.size());
  header.n_ases = static_cast<std::uint32_t>(ases.size());
  header.n_edges = static_cast<std::uint32_t>(edges.size());
  header.n_clique = static_cast<std::uint32_t>(clique.size());
  header.n_hypergiants = static_cast<std::uint32_t>(hypergiants.size());
  header.n_validation = static_cast<std::uint32_t>(validation.size());
  header.n_algorithms = static_cast<std::uint32_t>(algos.size());
  header.n_links = static_cast<std::uint32_t>(links.size());

  header.off_class_names = append_section(out, class_refs);
  header.off_strings =
      append_section(out, pool.bytes().data(), pool.bytes().size());
  header.strings_bytes = pool.bytes().size();
  header.off_ases = append_section(out, ases);
  header.off_as_index = append_section(out, as_index.slots());
  header.as_index_capacity = as_index.slots().size();
  header.off_edges = append_section(out, edges);
  header.off_edge_index = append_section(out, edge_index.slots());
  header.edge_index_capacity = edge_index.slots().size();
  header.off_csr_offsets = append_section(out, csr_offsets);
  header.off_csr_entries = append_section(out, csr_entries);
  header.off_clique = append_section(out, clique);
  header.off_hypergiants = append_section(out, hypergiants);
  header.off_validation = append_section(out, validation);
  header.off_validation_index = append_section(out, validation_index.slots());
  header.validation_index_capacity = validation_index.slots().size();

  const std::uint64_t labels_base = [&] {
    pad8(out);
    return out.size();
  }();
  append_section(out, algo_labels);
  for (std::size_t a = 0; a < algos.size(); ++a) {
    algos[a].labels_off =
        labels_base + algos[a].labels_off * sizeof(flat::Label);
    pad8(out);
    algos[a].index_off = out.size();
    algos[a].index_capacity = algo_slots[a].size();
    append_section(out, algo_slots[a]);
  }
  header.off_algorithms = append_section(out, algos);

  header.off_links = append_section(out, links);
  header.off_link_index = append_section(out, link_index.slots());
  header.link_index_capacity = link_index.slots().size();

  pad8(out);
  header.file_size = out.size();
  header.checksum = wire::fnv1a64(
      std::string_view{out}.substr(sizeof(flat::Header)));
  std::memcpy(out.data(), &header, sizeof(header));
  return out;
}

bool save_flat_snapshot_file(const Snapshot& snapshot,
                             const std::string& path, std::string* error) {
  return write_file_atomic(to_flat_snapshot_bytes(snapshot), path, error,
                           snapshot_io_write_cap());
}

// ---- FlatView ----

FlatView::~FlatView() {
  if (map_ != nullptr) ::munmap(map_, size_);
}

namespace {

/// Section bounds check: [off, off + count * elem) inside the file, with
/// the element's natural alignment.
[[nodiscard]] bool section_ok(std::uint64_t off, std::uint64_t count,
                              std::uint64_t elem, std::uint64_t align,
                              std::size_t file_size) {
  if (off % align != 0 || off < sizeof(flat::Header)) return false;
  if (count > (file_size - off) / elem) return false;
  return off + count * elem <= file_size;
}

}  // namespace

std::shared_ptr<const FlatView> FlatView::validate(
    std::shared_ptr<FlatView> view, std::string* error, bool deep_verify) {
  const auto fail = [&](std::string_view message) {
    if (error != nullptr) *error = std::string{message};
    return nullptr;
  };
  const char* data = view->data_;
  const std::size_t size = view->size_;
  if (size < sizeof(flat::Header)) {
    return fail("file too short to hold a flat snapshot header");
  }
  if (std::string_view{data, 8} != kFlatSnapshotMagic) {
    return fail("bad magic: not a flat (v3) snapshot file");
  }
  const auto* header = reinterpret_cast<const flat::Header*>(data);
  if (header->version != kFlatSnapshotVersion) {
    if (error != nullptr) {
      *error = "unsupported flat snapshot version " +
               std::to_string(header->version) + " (this build reads " +
               std::to_string(kFlatSnapshotVersion) + ")";
    }
    return nullptr;
  }
  if (header->header_size != sizeof(flat::Header)) {
    return fail("flat header size mismatch");
  }
  if (header->file_size != size) {
    return fail("flat file size mismatch (truncated or trailing garbage)");
  }

  const auto ok = [&](std::uint64_t off, std::uint64_t count,
                      std::uint64_t elem, std::uint64_t align) {
    return section_ok(off, count, elem, align, size);
  };
  const auto pow2 = [](std::uint64_t v) {
    return v != 0 && (v & (v - 1)) == 0;
  };
  const flat::Header& h = *header;
  const bool sections_ok =
      ok(h.off_class_names, h.n_class_names, sizeof(flat::StrRef), 8) &&
      ok(h.off_strings, h.strings_bytes, 1, 8) &&
      ok(h.off_ases, h.n_ases, sizeof(flat::As), 8) &&
      ok(h.off_as_index, h.as_index_capacity, 4, 8) &&
      pow2(h.as_index_capacity) &&
      ok(h.off_edges, h.n_edges, sizeof(flat::Edge), 8) &&
      ok(h.off_edge_index, h.edge_index_capacity, 4, 8) &&
      pow2(h.edge_index_capacity) &&
      ok(h.off_csr_offsets, std::uint64_t{h.n_ases} + 1, 4, 8) &&
      ok(h.off_csr_entries, 2 * std::uint64_t{h.n_edges}, 4, 8) &&
      ok(h.off_clique, h.n_clique, 4, 8) &&
      ok(h.off_hypergiants, h.n_hypergiants, 4, 8) &&
      ok(h.off_validation, h.n_validation, sizeof(flat::Label), 8) &&
      ok(h.off_validation_index, h.validation_index_capacity, 4, 8) &&
      pow2(h.validation_index_capacity) &&
      ok(h.off_algorithms, h.n_algorithms, sizeof(flat::Algo), 8) &&
      ok(h.off_links, h.n_links, sizeof(flat::LinkTag), 8) &&
      ok(h.off_link_index, h.link_index_capacity, 4, 8) &&
      pow2(h.link_index_capacity);
  if (!sections_ok) {
    return fail("flat section out of bounds or misaligned");
  }

  const auto at = [&](std::uint64_t off) { return data + off; };
  view->header_ = header;
  view->class_names_ =
      reinterpret_cast<const flat::StrRef*>(at(h.off_class_names));
  view->strings_ = at(h.off_strings);
  view->ases_ = reinterpret_cast<const flat::As*>(at(h.off_ases));
  view->as_index_ =
      reinterpret_cast<const std::uint32_t*>(at(h.off_as_index));
  view->edges_ = reinterpret_cast<const flat::Edge*>(at(h.off_edges));
  view->edge_index_ =
      reinterpret_cast<const std::uint32_t*>(at(h.off_edge_index));
  view->csr_offsets_ =
      reinterpret_cast<const std::uint32_t*>(at(h.off_csr_offsets));
  view->csr_entries_ =
      reinterpret_cast<const std::uint32_t*>(at(h.off_csr_entries));
  view->clique_ = reinterpret_cast<const std::uint32_t*>(at(h.off_clique));
  view->hypergiants_ =
      reinterpret_cast<const std::uint32_t*>(at(h.off_hypergiants));
  view->validation_ =
      reinterpret_cast<const flat::Label*>(at(h.off_validation));
  view->validation_index_ =
      reinterpret_cast<const std::uint32_t*>(at(h.off_validation_index));
  view->algorithms_ =
      reinterpret_cast<const flat::Algo*>(at(h.off_algorithms));
  view->links_ = reinterpret_cast<const flat::LinkTag*>(at(h.off_links));
  view->link_index_ =
      reinterpret_cast<const std::uint32_t*>(at(h.off_link_index));

  // Per-algorithm section bounds (O(#algorithms), still structural).
  for (std::uint32_t a = 0; a < h.n_algorithms; ++a) {
    const flat::Algo& algo = view->algorithms_[a];
    if (!ok(algo.labels_off, algo.labels_count, sizeof(flat::Label), 8) ||
        !ok(algo.index_off, algo.index_capacity, 4, 8) ||
        !pow2(algo.index_capacity)) {
      return fail("flat algorithm section out of bounds");
    }
  }

  if (deep_verify && !view->verify(error)) return nullptr;
  return view;
}

std::shared_ptr<const FlatView> FlatView::open_file(const std::string& path,
                                                    std::string* error,
                                                    bool deep_verify) {
  const auto fail = [&](std::string message) {
    if (error != nullptr) {
      *error = std::move(message) + ": " + std::strerror(errno);
    }
    return nullptr;
  };
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) return fail("cannot open " + path);
  struct stat st{};
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    return fail("cannot stat " + path);
  }
  const auto size = static_cast<std::size_t>(st.st_size);
  // Chaos parity with the v2 loader: a capped read behaves like a
  // truncated file and fails validation.
  if (snapshot_io_read_cap() < size) {
    ::close(fd);
    if (error != nullptr) *error = "torn read (fault injection cap)";
    return nullptr;
  }
  if (size == 0) {
    ::close(fd);
    if (error != nullptr) *error = "empty flat snapshot file";
    return nullptr;
  }
  void* map = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
  ::close(fd);
  if (map == MAP_FAILED) return fail("cannot mmap " + path);
  std::shared_ptr<FlatView> view{new FlatView};
  view->map_ = map;
  view->data_ = static_cast<const char*>(map);
  view->size_ = size;
  return validate(std::move(view), error, deep_verify);
}

std::shared_ptr<const FlatView> FlatView::from_bytes(std::string bytes,
                                                     std::string* error,
                                                     bool deep_verify) {
  std::shared_ptr<FlatView> view{new FlatView};
  view->owned_ = std::move(bytes);
  view->data_ = view->owned_.data();
  view->size_ = view->owned_.size();
  return validate(std::move(view), error, deep_verify);
}

bool FlatView::verify(std::string* error) const {
  const std::string_view payload{data_ + sizeof(flat::Header),
                                 size_ - sizeof(flat::Header)};
  if (wire::fnv1a64(payload) != header_->checksum) {
    if (error != nullptr) {
      *error = "flat payload checksum mismatch: snapshot is corrupted";
    }
    return false;
  }
  return true;
}

const flat::Label* FlatView::algo_labels(const flat::Algo& algo) const {
  return reinterpret_cast<const flat::Label*>(data_ + algo.labels_off);
}

std::string_view FlatView::string_at(flat::StrRef ref) const {
  // Clamped so a corrupt ref (structural-only open) cannot escape the
  // pool.
  if (ref.off > header_->strings_bytes ||
      ref.len > header_->strings_bytes - ref.off) {
    return {};
  }
  return {strings_ + ref.off, ref.len};
}

std::string_view FlatView::class_name(std::uint32_t index) const {
  if (index >= header_->n_class_names) return {};
  return string_at(class_names_[index]);
}

std::string_view FlatView::algorithm_name(std::uint32_t index) const {
  if (index >= header_->n_algorithms) return {};
  return string_at(algorithms_[index].name);
}

namespace {

/// Shared linear-probe loop. `key_of` maps an occupied slot's record
/// index to its key; probes are capped at the capacity so a corrupt
/// (full) table terminates.
template <typename KeyOf>
[[nodiscard]] std::uint32_t probe(const std::uint32_t* slots,
                                  std::uint64_t capacity, std::uint64_t key,
                                  KeyOf key_of) {
  const std::uint64_t mask = capacity - 1;
  std::uint64_t slot = mix64(key) & mask;
  for (std::uint64_t i = 0; i < capacity; ++i) {
    const std::uint32_t index = slots[slot];
    if (index == kEmptySlot) return kEmptySlot;
    if (key_of(index) == key) return index;
    slot = (slot + 1) & mask;
  }
  return kEmptySlot;
}

}  // namespace

std::uint32_t FlatView::find_as(std::uint32_t asn) const {
  const flat::Header& h = *header_;
  return probe(as_index_, h.as_index_capacity, asn, [&](std::uint32_t i) {
    return i < h.n_ases ? std::uint64_t{ases_[i].asn} : ~std::uint64_t{0};
  });
}

std::uint32_t FlatView::find_edge(std::uint32_t a, std::uint32_t b) const {
  const flat::Header& h = *header_;
  return probe(edge_index_, h.edge_index_capacity, link_key(a, b),
               [&](std::uint32_t i) {
                 return i < h.n_edges ? link_key(edges_[i].a, edges_[i].b)
                                      : ~std::uint64_t{0};
               });
}

std::uint32_t FlatView::find_link(std::uint32_t a, std::uint32_t b) const {
  const flat::Header& h = *header_;
  return probe(link_index_, h.link_index_capacity, link_key(a, b),
               [&](std::uint32_t i) {
                 return i < h.n_links ? link_key(links_[i].a, links_[i].b)
                                      : ~std::uint64_t{0};
               });
}

std::uint32_t FlatView::find_validation(std::uint32_t a,
                                        std::uint32_t b) const {
  const flat::Header& h = *header_;
  return probe(validation_index_, h.validation_index_capacity, link_key(a, b),
               [&](std::uint32_t i) {
                 return i < h.n_validation
                            ? link_key(validation_[i].a, validation_[i].b)
                            : ~std::uint64_t{0};
               });
}

std::uint32_t FlatView::find_verdict(std::uint32_t algo, std::uint32_t a,
                                     std::uint32_t b) const {
  if (algo >= header_->n_algorithms) return npos;
  const flat::Algo& entry = algorithms_[algo];
  const flat::Label* labels = algo_labels(entry);
  const auto* slots =
      reinterpret_cast<const std::uint32_t*>(data_ + entry.index_off);
  return probe(slots, entry.index_capacity, link_key(a, b),
               [&](std::uint32_t i) {
                 return i < entry.labels_count
                            ? link_key(labels[i].a, labels[i].b)
                            : ~std::uint64_t{0};
               });
}

std::pair<const std::uint32_t*, const std::uint32_t*> FlatView::neighbors(
    std::uint32_t as_idx) const {
  const flat::Header& h = *header_;
  if (as_idx >= h.n_ases) return {nullptr, nullptr};
  const std::uint32_t total = 2 * h.n_edges;
  // Clamp against a corrupt (structural-only) offsets row.
  std::uint32_t begin = csr_offsets_[as_idx];
  std::uint32_t end = csr_offsets_[as_idx + 1];
  if (begin > total) begin = total;
  if (end > total || end < begin) end = begin;
  return {csr_entries_ + begin, csr_entries_ + end};
}

Snapshot FlatView::to_snapshot() const {
  const flat::Header& h = *header_;
  Snapshot snapshot;
  snapshot.meta.as_count = h.as_count;
  snapshot.meta.seed = h.seed;
  snapshot.meta.scheme_seed = h.scheme_seed;
  snapshot.meta.epoch = h.epoch;
  snapshot.meta.built_unix_ms = h.built_unix_ms;

  snapshot.class_names.reserve(h.n_class_names);
  for (std::uint32_t i = 0; i < h.n_class_names; ++i) {
    snapshot.class_names.emplace_back(class_name(i));
  }

  snapshot.ases.reserve(h.n_ases);
  for (std::uint32_t i = 0; i < h.n_ases; ++i) {
    const flat::As& src = ases_[i];
    SnapshotAs as;
    as.asn = asn::Asn{src.asn};
    as.attrs.region = static_cast<rir::Region>(src.region);
    as.attrs.tier = static_cast<topo::Tier>(src.tier);
    as.attrs.stub_kind = static_cast<topo::StubKind>(src.stub_kind);
    as.attrs.hypergiant = src.flags & flat::kAsFlagHypergiant;
    as.attrs.documents_communities = src.flags & flat::kAsFlagDocuments;
    as.attrs.maintains_rpsl = src.flags & flat::kAsFlagRpsl;
    as.attrs.attends_meetings = src.flags & flat::kAsFlagMeetings;
    as.attrs.strips_communities = src.flags & flat::kAsFlagStrips;
    as.attrs.country = std::string{string_at(src.country)};
    as.attrs.prepend_propensity = src.prepend_propensity;
    as.transit_degree = src.transit_degree;
    as.node_degree = src.node_degree;
    as.cone_size = src.cone_size;
    snapshot.ases.push_back(std::move(as));
  }

  snapshot.edges.reserve(h.n_edges);
  for (std::uint32_t i = 0; i < h.n_edges; ++i) {
    const flat::Edge& src = edges_[i];
    SnapshotEdge edge;
    edge.a = asn::Asn{src.a};
    edge.b = asn::Asn{src.b};
    edge.rel = static_cast<topo::RelType>(src.rel);
    edge.scope = static_cast<topo::ExportScope>(src.scope);
    edge.scope_via_community = src.flags & flat::kEdgeFlagScopeCommunity;
    edge.misdocumented = src.flags & flat::kEdgeFlagMisdocumented;
    if (src.flags & flat::kEdgeFlagHybrid) {
      edge.hybrid_rel = static_cast<topo::RelType>(src.hybrid);
    }
    snapshot.edges.push_back(edge);
  }

  snapshot.clique.reserve(h.n_clique);
  for (std::uint32_t i = 0; i < h.n_clique; ++i) {
    snapshot.clique.push_back(asn::Asn{clique_[i]});
  }
  snapshot.hypergiants.reserve(h.n_hypergiants);
  for (std::uint32_t i = 0; i < h.n_hypergiants; ++i) {
    snapshot.hypergiants.push_back(asn::Asn{hypergiants_[i]});
  }

  const auto from_label = [](const flat::Label& src) {
    val::CleanLabel label;
    label.link = val::AsLink{asn::Asn{src.a}, asn::Asn{src.b}};
    label.rel = static_cast<topo::RelType>(src.rel);
    label.provider = asn::Asn{src.provider};
    return label;
  };
  snapshot.validation.reserve(h.n_validation);
  for (std::uint32_t i = 0; i < h.n_validation; ++i) {
    snapshot.validation.push_back(from_label(validation_[i]));
  }

  snapshot.algorithms.reserve(h.n_algorithms);
  for (std::uint32_t a = 0; a < h.n_algorithms; ++a) {
    const flat::Algo& entry = algorithms_[a];
    SnapshotAlgorithm algorithm;
    algorithm.name = std::string{string_at(entry.name)};
    const flat::Label* labels = algo_labels(entry);
    algorithm.labels.reserve(entry.labels_count);
    for (std::uint64_t i = 0; i < entry.labels_count; ++i) {
      algorithm.labels.push_back(from_label(labels[i]));
    }
    snapshot.algorithms.push_back(std::move(algorithm));
  }

  snapshot.links.reserve(h.n_links);
  for (std::uint32_t i = 0; i < h.n_links; ++i) {
    const flat::LinkTag& src = links_[i];
    SnapshotLinkTag tag;
    tag.link = val::AsLink{asn::Asn{src.a}, asn::Asn{src.b}};
    tag.regional_class = src.regional_class;
    tag.topological_class = src.topological_class;
    snapshot.links.push_back(tag);
  }
  return snapshot;
}

}  // namespace asrel::io
