// bgpdump-style textual RIB dumps.
//
// Real reproduction pipelines ingest Route Views / RIPE RIS table dumps
// through `bgpdump -m`, one route per line:
//
//   TABLE_DUMP2|<unix-time>|B|<peer-ip>|<peer-asn>|<prefix>|<as-path>|IGP|
//   <next-hop>|0|0|<communities>|NAG||
//
// This module writes the simulated collector view in that exact format and
// parses it back into a PathTable, so the whole inference stack can also be
// driven from on-disk dumps (or, with a real bgpdump file, from actual
// collector data).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>

#include "bgp/propagation.hpp"
#include "validation/scheme.hpp"

namespace asrel::io {

struct RibDumpOptions {
  std::uint64_t timestamp = 1522886400;  // 2018-04-05 00:00:00 UTC
  /// Reconstruct and emit the informational communities that survive to the
  /// collector (needs the scheme directory and the propagator's world).
  bool include_communities = true;
  /// Emit at most this many routes (0 = all). Dumps grow large quickly.
  std::size_t max_routes = 0;
};

/// Writes every collected path as one TABLE_DUMP2 line. Peer IPs are
/// synthesized deterministically from the vantage-point index.
void write_rib_dump(const bgp::Propagator& propagator,
                    const bgp::PathTable& paths,
                    const val::SchemeDirectory& schemes,
                    const RibDumpOptions& options, std::ostream& out);

struct RibParseStats {
  std::size_t lines = 0;
  std::size_t routes = 0;
  std::size_t malformed = 0;
};

/// Parses a bgpdump -m style stream back into a PathTable. Vantage points
/// are discovered from the peer-ASN column (full feed assumed); origins are
/// the last hop of each AS path. Prepending is preserved.
[[nodiscard]] bgp::PathTable parse_rib_dump(std::istream& in,
                                            RibParseStats* stats = nullptr);

[[nodiscard]] bgp::PathTable parse_rib_dump_text(std::string_view text,
                                                 RibParseStats* stats =
                                                     nullptr);

}  // namespace asrel::io
