// CAIDA "as-rel" serialization (serial-1 format): lines of
//   <provider-asn>|<customer-asn>|-1   (P2C)
//   <asn>|<asn>|0                      (P2P)
//   <asn>|<asn>|1                      (S2S extension)
// with '#' comment headers — the format of the public data sets at
// publicdata.caida.org/datasets/as-relationships/ referenced in §4.1.
#pragma once

#include <iosfwd>
#include <string>
#include <string_view>

#include "infer/inference.hpp"
#include "topology/graph.hpp"

namespace asrel::io {

void write_as_rel(const infer::Inference& inference, std::ostream& out);
void write_as_rel(const topo::AsGraph& graph, std::ostream& out);
[[nodiscard]] std::string to_as_rel_text(const infer::Inference& inference);

/// Parses an as-rel stream; malformed lines are skipped.
[[nodiscard]] infer::Inference parse_as_rel(std::istream& in);
[[nodiscard]] infer::Inference parse_as_rel_text(std::string_view text);

}  // namespace asrel::io
