#include "io/as_rel.hpp"

#include <charconv>
#include <istream>
#include <ostream>
#include <sstream>

namespace asrel::io {

namespace {

void write_line(std::ostream& out, asn::Asn a, asn::Asn b, int code) {
  out << a.value() << '|' << b.value() << '|' << code << '\n';
}

}  // namespace

void write_as_rel(const infer::Inference& inference, std::ostream& out) {
  out << "# inferred AS relationships (CAIDA as-rel serial-1 format)\n";
  out << "# <provider>|<customer>|-1 or <peer>|<peer>|0\n";
  for (const auto& link : inference.order()) {
    const auto* rel = inference.find(link);
    if (rel->rel == topo::RelType::kP2C) {
      const asn::Asn customer =
          rel->provider == link.a ? link.b : link.a;
      write_line(out, rel->provider, customer, -1);
    } else {
      write_line(out, link.a, link.b,
                 rel->rel == topo::RelType::kS2S ? 1 : 0);
    }
  }
}

void write_as_rel(const topo::AsGraph& graph, std::ostream& out) {
  out << "# ground-truth AS relationships (CAIDA as-rel serial-1 format)\n";
  for (const auto& edge : graph.edges()) {
    if (edge.removed) continue;
    const asn::Asn u = graph.asn_of(edge.u);
    const asn::Asn v = graph.asn_of(edge.v);
    write_line(out, u, v, topo::to_caida_code(edge.rel));
  }
}

std::string to_as_rel_text(const infer::Inference& inference) {
  std::ostringstream out;
  write_as_rel(inference, out);
  return out.str();
}

infer::Inference parse_as_rel(std::istream& in) {
  infer::Inference inference;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    const auto first = line.find('|');
    if (first == std::string::npos) continue;
    const auto second = line.find('|', first + 1);
    if (second == std::string::npos) continue;
    const auto a = asn::parse_asn(std::string_view{line}.substr(0, first));
    const auto b = asn::parse_asn(
        std::string_view{line}.substr(first + 1, second - first - 1));
    if (!a || !b) continue;
    int code = 0;
    const auto tail = std::string_view{line}.substr(second + 1);
    const auto [ptr, ec] =
        std::from_chars(tail.data(), tail.data() + tail.size(), code);
    if (ec != std::errc{}) continue;
    const auto rel_type = topo::from_caida_code(code);
    if (!rel_type) continue;
    infer::InferredRel rel;
    rel.rel = *rel_type;
    if (*rel_type == topo::RelType::kP2C) rel.provider = *a;
    inference.set(val::AsLink{*a, *b}, rel);
  }
  return inference;
}

infer::Inference parse_as_rel_text(std::string_view text) {
  std::istringstream in{std::string{text}};
  return parse_as_rel(in);
}

}  // namespace asrel::io
