#include "io/atomic_file.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <fstream>
#include <sstream>

namespace asrel::io {

bool write_file_atomic(const std::string& bytes, const std::string& path,
                       std::string* error, std::size_t write_cap) {
  const std::string temp = path + ".tmp";
  const auto fail = [&](const std::string& message, int fd) {
    if (error != nullptr) {
      *error = message + ": " + std::strerror(errno);
    }
    if (fd >= 0) ::close(fd);
    ::unlink(temp.c_str());  // never leave a torn temp behind
    return false;
  };

  // Write the whole image to a temp file first: readers either see the
  // previous file at `path` or the new one, never a prefix.
  const int fd = ::open(temp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return fail("cannot open " + temp + " for writing", -1);

  std::size_t written = 0;
  while (written < bytes.size()) {
    if (written >= write_cap) {
      errno = ENOSPC;  // the injected failure presents as a full disk
      return fail("write to " + temp + " failed (fault injected)", fd);
    }
    const std::size_t want =
        std::min(bytes.size() - written, write_cap - written);
    const ssize_t n = ::write(fd, bytes.data() + written, want);
    if (n < 0) {
      if (errno == EINTR) continue;
      return fail("write to " + temp + " failed", fd);
    }
    written += static_cast<std::size_t>(n);
  }
  // fsync before rename: otherwise the rename can become durable before
  // the data, which is exactly the torn-file crash window.
  if (::fsync(fd) != 0) return fail("fsync of " + temp + " failed", fd);
  if (::close(fd) != 0) return fail("close of " + temp + " failed", -1);
  if (::rename(temp.c_str(), path.c_str()) != 0) {
    return fail("rename " + temp + " -> " + path + " failed", -1);
  }

  // Make the rename itself durable by syncing the containing directory.
  const std::size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos
                              ? std::string{"."}
                              : path.substr(0, slash == 0 ? 1 : slash);
  const int dir_fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (dir_fd >= 0) {
    ::fsync(dir_fd);  // best effort: some filesystems refuse dir fsync
    ::close(dir_fd);
  }
  return true;
}

std::optional<std::string> read_file_capped(const std::string& path,
                                            std::string* error,
                                            std::size_t read_cap) {
  std::ifstream in{path, std::ios::binary};
  if (!in) {
    if (error != nullptr) *error = "cannot open " + path;
    return std::nullopt;
  }
  if (read_cap != kNoByteCap) {
    // Injected mid-file read failure: deliver only the prefix the
    // "failing" read produced. Format headers reject it cleanly.
    std::string bytes(read_cap, '\0');
    in.read(bytes.data(), static_cast<std::streamsize>(read_cap));
    bytes.resize(static_cast<std::size_t>(in.gcount()));
    return bytes;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return std::move(buffer).str();
}

}  // namespace asrel::io
