// Validation-set serialization: one line per label,
//   <asn>|<asn>|<p2c-provider-asn or "p2p" or "s2s">|<source>
// Multi-label entries serialize as consecutive lines for the same link, in
// acquisition order (which §4.2 shows is semantically meaningful).
#pragma once

#include <iosfwd>
#include <string>
#include <string_view>

#include "validation/label.hpp"

namespace asrel::io {

void write_validation(const val::ValidationSet& set, std::ostream& out);
[[nodiscard]] std::string to_validation_text(const val::ValidationSet& set);

[[nodiscard]] val::ValidationSet parse_validation(std::istream& in);
[[nodiscard]] val::ValidationSet parse_validation_text(std::string_view text);

}  // namespace asrel::io
