// Crash-safe whole-file persistence, shared by every durable artifact.
//
// The write protocol (extracted from the snapshot saver so checkpoints use
// the identical sequence): bytes go to `path + ".tmp"`, are fsync'd, and
// are renamed over `path` in one atomic step, after which the containing
// directory is fsync'd so the rename itself is durable. A crash or write
// failure at any point leaves either the old file or no file at `path` —
// never a half-written image — and readers independently reject torn
// files via each format's size + checksum header.
//
// Both functions take a byte cap for fault injection: writes "run out of
// disk" after `write_cap` bytes, reads deliver only the first `read_cap`
// bytes (simulating a torn read). SIZE_MAX = unlimited, the production
// path.
#pragma once

#include <cstddef>
#include <optional>
#include <string>

namespace asrel::io {

inline constexpr std::size_t kNoByteCap = static_cast<std::size_t>(-1);

/// Writes `bytes` to `path` with the tmp+fsync+rename protocol above.
/// Returns false (and fills `*error` with errno context) on any failure;
/// the temp file is always unlinked on the failure path.
[[nodiscard]] bool write_file_atomic(const std::string& bytes,
                                     const std::string& path,
                                     std::string* error,
                                     std::size_t write_cap = kNoByteCap);

/// Reads the whole file (or its first `read_cap` bytes under fault
/// injection). nullopt with `*error` filled if the file cannot be opened.
[[nodiscard]] std::optional<std::string> read_file_capped(
    const std::string& path, std::string* error,
    std::size_t read_cap = kNoByteCap);

}  // namespace asrel::io
