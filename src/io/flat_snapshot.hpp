// Snapshot v3: a flat, mmap-able image of one snapshot.
//
// The v2 codec (io/snapshot) is a streaming format: loading it parses
// every record into std::vectors and the query engine then builds hash
// indexes on top — good for evolution, but reload cost grows with the
// topology. v3 lays the same data out as fixed-width little-endian
// records with the indexes *precomputed in the file*:
//
//   [Header]                 fixed 264 bytes: magic "ASRELFL3", version,
//                            sizes, meta, counts, section offsets
//   [class-name refs]        StrRef per class name
//   [string pool]            deduplicated UTF-8 bytes (countries, names)
//   [AS records]             48-byte As, snapshot order (sorted by ASN)
//   [ASN hash index]         open addressing, u32 slots -> AS index
//   [edge records]           12-byte Edge (a = provider for P2C)
//   [edge hash index]        keyed by canonical (min,max) pair
//   [CSR adjacency]          offsets[n_ases+1] + edge indexes, both u32;
//                            row i lists every edge incident to AS i
//   [clique] [hypergiants]   u32 ASN lists
//   [validation labels]      16-byte Label + hash index
//   [algorithm table]        Algo entries -> shared label array + one
//                            hash index per algorithm
//   [link tags]              16-byte LinkTag + hash index
//
// Every section starts 8-byte aligned, so a reader maps the file and
// casts section pointers to the record structs below — zero parse, zero
// allocation. Opening is O(#sections): magic/version/size checks plus
// per-section bounds validation. A deep pass (fnv1a64 over everything
// after the header, same polynomial as v2) is optional: the atomic
// write protocol (tmp + fsync + rename) means a file that exists at the
// final path was written completely, so the hot-reload path can skip
// the checksum and swap snapshots in microseconds. Structural open
// guarantees memory safety on arbitrary bytes (probes are capped,
// string refs clamped); semantic integrity needs the deep verify.
//
// Hash tables: power-of-two capacity at most 1/2 load, SplitMix64
// finalizer, linear probing, u32 slots holding record indexes with
// 0xFFFFFFFF = empty. Lookups are one multiply-shift plus a short
// linear scan over mapped memory.
#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>

#include "io/snapshot.hpp"

namespace asrel::io {

inline constexpr std::string_view kFlatSnapshotMagic = "ASRELFL3";
inline constexpr std::uint32_t kFlatSnapshotVersion = 3;

namespace flat {

// The zero-parse reader casts mapped bytes to these structs, which is
// only the declared wire layout on a little-endian host.
static_assert(std::endian::native == std::endian::little,
              "flat snapshots are little-endian on disk and read in place");

inline constexpr std::uint32_t kEmptySlot = 0xFFFFFFFFu;

/// SplitMix64 finalizer — the table hash. Full-avalanche, so sequential
/// ASNs spread uniformly.
[[nodiscard]] constexpr std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// Canonical (min,max) pair key shared by the edge/link/validation/
/// verdict tables.
[[nodiscard]] constexpr std::uint64_t link_key(std::uint32_t a,
                                               std::uint32_t b) {
  const std::uint32_t lo = a < b ? a : b;
  const std::uint32_t hi = a < b ? b : a;
  return (std::uint64_t{lo} << 32) | hi;
}

/// Offset + length into the string pool.
struct StrRef {
  std::uint32_t off = 0;
  std::uint32_t len = 0;
};
static_assert(sizeof(StrRef) == 8);

// AS-attribute and edge flag bits (same values as the v2 codec).
inline constexpr std::uint8_t kAsFlagHypergiant = 1u << 0;
inline constexpr std::uint8_t kAsFlagDocuments = 1u << 1;
inline constexpr std::uint8_t kAsFlagRpsl = 1u << 2;
inline constexpr std::uint8_t kAsFlagMeetings = 1u << 3;
inline constexpr std::uint8_t kAsFlagStrips = 1u << 4;
inline constexpr std::uint8_t kEdgeFlagScopeCommunity = 1u << 0;
inline constexpr std::uint8_t kEdgeFlagMisdocumented = 1u << 1;
inline constexpr std::uint8_t kEdgeFlagHybrid = 1u << 2;

struct As {
  std::uint32_t asn = 0;
  std::uint8_t region = 0;
  std::uint8_t tier = 0;
  std::uint8_t stub_kind = 0;
  std::uint8_t flags = 0;
  double prepend_propensity = 0.0;
  std::uint32_t transit_degree = 0;
  std::uint32_t node_degree = 0;
  std::uint32_t cone_size = 0;
  StrRef country;
  /// Incident-link counts precomputed at build time (the only AsSummary
  /// fields not derivable from the CSR row).
  std::uint32_t observed_links = 0;
  std::uint32_t validated_links = 0;
  std::uint32_t pad = 0;
};
static_assert(sizeof(As) == 48 && alignof(As) == 8);

struct Edge {
  std::uint32_t a = 0;  ///< provider when rel == kP2C
  std::uint32_t b = 0;
  std::uint8_t rel = 0;
  std::uint8_t scope = 0;
  std::uint8_t flags = 0;
  std::uint8_t hybrid = 0;  ///< RelType code, valid iff kEdgeFlagHybrid
};
static_assert(sizeof(Edge) == 12);

/// Validation entry or algorithm verdict; link stored canonical (a < b).
struct Label {
  std::uint32_t a = 0;
  std::uint32_t b = 0;
  std::uint32_t provider = 0;
  std::uint8_t rel = 0;
  std::uint8_t pad[3] = {0, 0, 0};
};
static_assert(sizeof(Label) == 16);

struct LinkTag {
  std::uint32_t a = 0;
  std::uint32_t b = 0;
  std::uint32_t regional_class = 0;
  std::uint32_t topological_class = 0;
};
static_assert(sizeof(LinkTag) == 16);

/// One inference algorithm: name, its slice of the shared label array,
/// and its own hash index. Offsets are absolute file offsets.
struct Algo {
  StrRef name;
  std::uint64_t labels_off = 0;
  std::uint64_t labels_count = 0;
  std::uint64_t index_off = 0;
  std::uint64_t index_capacity = 0;
};
static_assert(sizeof(Algo) == 40);

struct Header {
  char magic[8];
  std::uint32_t version;
  std::uint32_t header_size;
  std::uint64_t file_size;
  std::uint64_t checksum;  ///< fnv1a64 of every byte after the header

  std::int64_t as_count;
  std::uint64_t seed;
  std::uint64_t scheme_seed;
  std::uint64_t epoch;
  std::uint64_t built_unix_ms;

  std::uint32_t n_class_names;
  std::uint32_t n_ases;
  std::uint32_t n_edges;
  std::uint32_t n_clique;
  std::uint32_t n_hypergiants;
  std::uint32_t n_validation;
  std::uint32_t n_algorithms;
  std::uint32_t n_links;

  std::uint64_t off_class_names;
  std::uint64_t off_strings;
  std::uint64_t strings_bytes;
  std::uint64_t off_ases;
  std::uint64_t off_as_index;
  std::uint64_t as_index_capacity;
  std::uint64_t off_edges;
  std::uint64_t off_edge_index;
  std::uint64_t edge_index_capacity;
  std::uint64_t off_csr_offsets;  ///< n_ases + 1 u32 prefix sums
  std::uint64_t off_csr_entries;  ///< edge indexes, 2 * n_edges u32
  std::uint64_t off_clique;
  std::uint64_t off_hypergiants;
  std::uint64_t off_validation;
  std::uint64_t off_validation_index;
  std::uint64_t validation_index_capacity;
  std::uint64_t off_algorithms;
  std::uint64_t off_links;
  std::uint64_t off_link_index;
  std::uint64_t link_index_capacity;
};
static_assert(sizeof(Header) == 264 && alignof(Header) == 8);

}  // namespace flat

/// Serializes a snapshot into the flat v3 image.
[[nodiscard]] std::string to_flat_snapshot_bytes(const Snapshot& snapshot);

/// to_flat_snapshot_bytes + the tmp/fsync/rename protocol of
/// io/atomic_file. Honors the chaos write cap like the v2 saver.
[[nodiscard]] bool save_flat_snapshot_file(const Snapshot& snapshot,
                                           const std::string& path,
                                           std::string* error);

/// Read-only view over one flat snapshot — either an mmap of the file or
/// an owned byte buffer. All accessors return pointers/views into that
/// memory; the view must outlive them (the serving layer keeps it behind
/// a shared_ptr pinned by each QueryEngine).
class FlatView {
 public:
  static constexpr std::uint32_t npos = flat::kEmptySlot;

  /// mmaps `path` and validates the structure. `deep_verify` additionally
  /// checks the full payload checksum — required for untrusted bytes,
  /// skippable on the hot-reload path (atomic rename guarantees a
  /// complete file). Honors the chaos read cap: a capped (torn) read
  /// fails like a truncated file.
  [[nodiscard]] static std::shared_ptr<const FlatView> open_file(
      const std::string& path, std::string* error, bool deep_verify = true);

  /// Same validation over an in-memory image (takes ownership).
  [[nodiscard]] static std::shared_ptr<const FlatView> from_bytes(
      std::string bytes, std::string* error, bool deep_verify = true);

  ~FlatView();
  FlatView(const FlatView&) = delete;
  FlatView& operator=(const FlatView&) = delete;

  [[nodiscard]] const flat::Header& header() const { return *header_; }
  [[nodiscard]] std::size_t size_bytes() const { return size_; }

  // ---- record arrays (pointers into the mapped image) ----
  [[nodiscard]] const flat::As* ases() const { return ases_; }
  [[nodiscard]] const flat::Edge* edges() const { return edges_; }
  [[nodiscard]] const flat::Label* validation() const { return validation_; }
  [[nodiscard]] const flat::LinkTag* links() const { return links_; }
  [[nodiscard]] const flat::Algo* algorithms() const { return algorithms_; }
  [[nodiscard]] const std::uint32_t* clique() const { return clique_; }
  [[nodiscard]] const std::uint32_t* hypergiants() const {
    return hypergiants_;
  }
  [[nodiscard]] const flat::Label* algo_labels(const flat::Algo& algo) const;

  /// Clamped view into the string pool (safe on arbitrary refs).
  [[nodiscard]] std::string_view string_at(flat::StrRef ref) const;
  [[nodiscard]] std::string_view class_name(std::uint32_t index) const;
  [[nodiscard]] std::string_view algorithm_name(std::uint32_t index) const;

  // ---- O(1) hash probes ----
  [[nodiscard]] std::uint32_t find_as(std::uint32_t asn) const;
  [[nodiscard]] std::uint32_t find_edge(std::uint32_t a,
                                        std::uint32_t b) const;
  [[nodiscard]] std::uint32_t find_link(std::uint32_t a,
                                        std::uint32_t b) const;
  [[nodiscard]] std::uint32_t find_validation(std::uint32_t a,
                                              std::uint32_t b) const;
  /// Index into algo_labels(algorithms()[algo]), or npos.
  [[nodiscard]] std::uint32_t find_verdict(std::uint32_t algo,
                                           std::uint32_t a,
                                           std::uint32_t b) const;

  /// CSR row for AS index `as_idx`: [begin, end) of edge indexes.
  [[nodiscard]] std::pair<const std::uint32_t*, const std::uint32_t*>
  neighbors(std::uint32_t as_idx) const;

  /// Full deep checksum pass (what open(deep_verify=true) runs).
  [[nodiscard]] bool verify(std::string* error = nullptr) const;

  /// Inflates back into the v2 in-memory Snapshot (for aggregate reports
  /// and round-trip tests). O(records).
  [[nodiscard]] Snapshot to_snapshot() const;

 private:
  FlatView() = default;
  [[nodiscard]] static std::shared_ptr<const FlatView> validate(
      std::shared_ptr<FlatView> view, std::string* error, bool deep_verify);

  const char* data_ = nullptr;
  std::size_t size_ = 0;
  void* map_ = nullptr;      ///< set when mmap'd (unmapped in dtor)
  std::string owned_;        ///< set when from_bytes

  // Section pointers resolved once during validate().
  const flat::Header* header_ = nullptr;
  const flat::StrRef* class_names_ = nullptr;
  const char* strings_ = nullptr;
  const flat::As* ases_ = nullptr;
  const std::uint32_t* as_index_ = nullptr;
  const flat::Edge* edges_ = nullptr;
  const std::uint32_t* edge_index_ = nullptr;
  const std::uint32_t* csr_offsets_ = nullptr;
  const std::uint32_t* csr_entries_ = nullptr;
  const std::uint32_t* clique_ = nullptr;
  const std::uint32_t* hypergiants_ = nullptr;
  const flat::Label* validation_ = nullptr;
  const std::uint32_t* validation_index_ = nullptr;
  const flat::Algo* algorithms_ = nullptr;
  const flat::LinkTag* links_ = nullptr;
  const std::uint32_t* link_index_ = nullptr;
};

}  // namespace asrel::io
