#include "io/rib_dump.hpp"

#include <istream>
#include <map>
#include <ostream>
#include <sstream>
#include <vector>

#include "netbase/ip.hpp"

namespace asrel::io {

namespace {

using asn::Asn;

/// Reconstructs the informational communities surviving at the collector
/// for one (collapsed) path — the same semantics as the validation
/// extractor, shared here for dump fidelity.
void append_communities(const bgp::Propagator& propagator,
                        const val::SchemeDirectory& schemes,
                        const std::vector<Asn>& hops, Asn origin,
                        std::ostream& out) {
  const auto& world = propagator.world();
  const auto& graph = world.graph;
  bool first = true;
  bool survives = true;
  for (std::size_t i = 0; i + 1 < hops.size(); ++i) {
    if (i > 0 && graph.node_of(hops[i - 1]).has_value() &&
        world.attrs.at(hops[i - 1]).strips_communities) {
      survives = false;
    }
    if (!survives) break;
    if (i == 0 && graph.node_of(hops[0]).has_value() &&
        world.attrs.at(hops[0]).strips_communities) {
      break;
    }
    const auto* scheme = schemes.scheme_of(hops[i]);
    if (scheme == nullptr) continue;
    val::TagMeaning meaning = val::TagMeaning::kFromCustomer;
    if (const auto edge_id = graph.find_edge(hops[i], hops[i + 1])) {
      const auto& edge = graph.edge(*edge_id);
      switch (propagator.effective_rel(edge, origin)) {
        case topo::RelType::kP2C:
          meaning = edge.u == *graph.node_of(hops[i])
                        ? val::TagMeaning::kFromCustomer
                        : val::TagMeaning::kFromProvider;
          break;
        case topo::RelType::kP2P:
          meaning = val::TagMeaning::kFromPeer;
          break;
        case topo::RelType::kS2S:
          meaning = val::TagMeaning::kFromCustomer;
          break;
      }
    }
    if (!first) out << ' ';
    out << bgp::to_string(scheme->tag_for(meaning));
    first = false;
  }
}

std::vector<std::string_view> split_pipe(std::string_view line) {
  std::vector<std::string_view> fields;
  while (true) {
    const auto bar = line.find('|');
    if (bar == std::string_view::npos) {
      fields.push_back(line);
      return fields;
    }
    fields.push_back(line.substr(0, bar));
    line.remove_prefix(bar + 1);
  }
}

}  // namespace

void write_rib_dump(const bgp::Propagator& propagator,
                    const bgp::PathTable& paths,
                    const val::SchemeDirectory& schemes,
                    const RibDumpOptions& options, std::ostream& out) {
  const auto& world = propagator.world();
  std::size_t written = 0;
  std::vector<Asn> hops;
  paths.for_each_path([&](const bgp::PathTable::PathRef& ref) {
    if (options.max_routes != 0 && written >= options.max_routes) return;
    ++written;

    // Synthesized peer IP: one /32 per vantage point in 10.255/16.
    const auto vp = ref.vp_index;
    out << "TABLE_DUMP2|" << options.timestamp << "|B|10.255."
        << (vp >> 8) << '.' << (vp & 0xFF) << '|'
        << ref.path.front().value() << '|';

    // Announced prefix: the origin's first allocation, or a synthetic /20.
    const Asn origin = world.graph.asn_of(ref.origin);
    const auto it = world.prefixes.find(origin);
    if (it != world.prefixes.end() && !it->second.empty()) {
      out << net::to_string(it->second.front());
    } else {
      out << "10." << (ref.origin >> 8 & 0xFF) << '.'
          << (ref.origin & 0xFF) << ".0/24";
    }
    out << '|';

    for (std::size_t i = 0; i < ref.path.size(); ++i) {
      if (i > 0) out << ' ';
      out << ref.path[i].value();
    }
    out << "|IGP|10.255." << (vp >> 8) << '.' << (vp & 0xFF) << "|0|0|";

    if (options.include_communities) {
      hops.clear();
      for (const Asn hop : ref.path) {
        if (hops.empty() || hops.back() != hop) hops.push_back(hop);
      }
      append_communities(propagator, schemes, hops, origin, out);
    }
    out << "|NAG||\n";
  });
}

bgp::PathTable parse_rib_dump(std::istream& in, RibParseStats* stats) {
  RibParseStats local;

  struct Route {
    Asn peer;
    std::vector<Asn> path;
  };
  std::vector<Route> routes;
  std::map<Asn, std::uint32_t> vp_index;   // ordered: deterministic
  std::map<Asn, topo::NodeId> origin_index;

  std::string line;
  while (std::getline(in, line)) {
    ++local.lines;
    if (line.empty() || line[0] == '#') continue;
    const auto fields = split_pipe(line);
    if (fields.size() < 7 || fields[0] != "TABLE_DUMP2") {
      ++local.malformed;
      continue;
    }
    Route route;
    const auto peer = asn::parse_asn(fields[4]);
    if (!peer) {
      ++local.malformed;
      continue;
    }
    route.peer = *peer;
    std::string_view path_field = fields[6];
    bool broken = false;
    while (!path_field.empty()) {
      const auto space = path_field.find(' ');
      const auto token = space == std::string_view::npos
                             ? path_field
                             : path_field.substr(0, space);
      const auto hop = asn::parse_asn(token);
      if (!hop) {
        broken = true;
        break;
      }
      route.path.push_back(*hop);
      if (space == std::string_view::npos) break;
      path_field.remove_prefix(space + 1);
    }
    if (broken || route.path.empty()) {
      ++local.malformed;
      continue;
    }
    ++local.routes;
    vp_index.try_emplace(route.peer,
                         static_cast<std::uint32_t>(vp_index.size()));
    origin_index.try_emplace(
        route.path.back(),
        static_cast<topo::NodeId>(origin_index.size()));
    routes.push_back(std::move(route));
  }

  bgp::PathTable table;
  std::vector<bgp::VantagePoint> vps(vp_index.size());
  for (const auto& [asn, index] : vp_index) {
    vps[index] = bgp::VantagePoint{asn, /*full_feed=*/true,
                                   /*legacy_16bit=*/false};
  }
  table.set_vantage_points(std::move(vps));
  table.resize_origins(origin_index.size());
  for (const auto& route : routes) {
    table.add_path(origin_index.at(route.path.back()),
                   vp_index.at(route.peer), route.path);
  }
  table.recount();
  if (stats != nullptr) *stats = local;
  return table;
}

bgp::PathTable parse_rib_dump_text(std::string_view text,
                                   RibParseStats* stats) {
  std::istringstream in{std::string{text}};
  return parse_rib_dump(in, stats);
}

}  // namespace asrel::io
