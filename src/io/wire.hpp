// Shared little-endian wire codec for the repo's binary file formats.
//
// Extracted from the snapshot codec so other formats (the stream
// checkpoint, src/stream/checkpoint) serialize with byte-compatible
// primitives: fixed-width little-endian integers, IEEE-754 doubles by bit
// pattern, length-prefixed strings, and an FNV-1a checksum over the
// payload. Decoding goes through Cursor, a bounds-checked reader whose
// getters all become no-ops after the first failure — callers check once
// per section instead of once per field — and whose get_count guards
// element counts against the bytes actually remaining, so a corrupted
// count fails cleanly instead of driving a multi-gigabyte allocation.
#pragma once

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

namespace asrel::io::wire {

// ---- encoding ----

inline void put_u8(std::string& out, std::uint8_t v) {
  out.push_back(static_cast<char>(v));
}

inline void put_u32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

inline void put_u64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

inline void put_f64(std::string& out, double v) {
  std::uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  put_u64(out, bits);
}

inline void put_string(std::string& out, std::string_view s) {
  put_u32(out, static_cast<std::uint32_t>(s.size()));
  out.append(s);
}

[[nodiscard]] inline std::uint64_t fnv1a64(std::string_view bytes) {
  std::uint64_t hash = 0xcbf29ce484222325ull;
  for (const char c : bytes) {
    hash ^= static_cast<std::uint8_t>(c);
    hash *= 0x100000001b3ull;
  }
  return hash;
}

// ---- decoding ----

/// Bounds-checked little-endian reader over a payload. All getters return
/// zero values once `fail` is set; callers check once per section.
struct Cursor {
  std::string_view data;
  std::size_t pos = 0;
  std::string error;

  [[nodiscard]] bool failed() const { return !error.empty(); }
  [[nodiscard]] std::size_t remaining() const { return data.size() - pos; }

  void fail(const std::string& message) {
    if (error.empty()) error = message;
  }

  [[nodiscard]] bool need(std::size_t bytes, const char* what) {
    if (failed()) return false;
    if (remaining() < bytes) {
      fail(std::string{"truncated payload while reading "} + what);
      return false;
    }
    return true;
  }

  std::uint8_t get_u8(const char* what) {
    if (!need(1, what)) return 0;
    return static_cast<std::uint8_t>(data[pos++]);
  }

  std::uint32_t get_u32(const char* what) {
    if (!need(4, what)) return 0;
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= std::uint32_t{static_cast<std::uint8_t>(data[pos + i])} << (8 * i);
    }
    pos += 4;
    return v;
  }

  std::uint64_t get_u64(const char* what) {
    if (!need(8, what)) return 0;
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= std::uint64_t{static_cast<std::uint8_t>(data[pos + i])} << (8 * i);
    }
    pos += 8;
    return v;
  }

  double get_f64(const char* what) {
    const std::uint64_t bits = get_u64(what);
    double v = 0.0;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }

  std::string get_string(const char* what) {
    const std::uint32_t size = get_u32(what);
    if (!need(size, what)) return {};
    std::string s{data.substr(pos, size)};
    pos += size;
    return s;
  }

  /// Reads an element count and sanity-checks it against the bytes left
  /// (each element occupies at least `min_element_bytes`), so a corrupted
  /// count cannot drive a multi-gigabyte allocation.
  std::uint64_t get_count(const char* what, std::size_t min_element_bytes) {
    const std::uint64_t count = get_u64(what);
    if (failed()) return 0;
    if (min_element_bytes > 0 && count > remaining() / min_element_bytes) {
      fail(std::string{"implausible element count for "} + what);
      return 0;
    }
    return count;
  }
};

}  // namespace asrel::io::wire
