// Strong type and classification helpers for Autonomous System Numbers.
//
// The paper (§4.2) removes validation entries involving AS_TRANS (AS 23456)
// and IANA-reserved ASNs before computing any metric; this module is the
// single source of truth for those classifications.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>

namespace asrel::asn {

/// A 32-bit Autonomous System Number (RFC 6793).
///
/// A deliberately small value type: comparable, hashable, and printable, so
/// it can be used as a map key everywhere without implicit conversion from
/// unrelated integers.
class Asn {
 public:
  constexpr Asn() = default;
  constexpr explicit Asn(std::uint32_t value) : value_(value) {}

  [[nodiscard]] constexpr std::uint32_t value() const { return value_; }

  /// True if this ASN fits in the original 16-bit number space.
  [[nodiscard]] constexpr bool is_16bit() const { return value_ <= 0xFFFFu; }

  friend constexpr auto operator<=>(Asn, Asn) = default;

 private:
  std::uint32_t value_ = 0;
};

/// AS_TRANS (RFC 6793): placeholder a 16-bit speaker uses to represent any
/// 32-bit ASN. It never identifies a real network and can hold no business
/// relationship.
inline constexpr Asn kAsTrans{23456};

/// Half-open classification of the IANA special-purpose ASN registry.
enum class AsnCategory : std::uint8_t {
  kPublic,         ///< globally assignable / routable
  kZero,           ///< AS 0 (RFC 7607)
  kAsTrans,        ///< AS 23456 (RFC 6793)
  kDocumentation,  ///< 64496-64511 and 65536-65551 (RFC 5398)
  kPrivateUse,     ///< 64512-65534 and 4200000000-4294967294 (RFC 6996)
  kLast16,         ///< AS 65535 (RFC 7300)
  kLast32,         ///< AS 4294967295 (RFC 7300)
  kIanaReserved,   ///< 65552-131071 (IANA reserved, unallocated)
};

[[nodiscard]] constexpr AsnCategory category(Asn asn) {
  const std::uint32_t v = asn.value();
  if (v == 0) return AsnCategory::kZero;
  if (v == 23456) return AsnCategory::kAsTrans;
  if (v >= 64496 && v <= 64511) return AsnCategory::kDocumentation;
  if (v >= 64512 && v <= 65534) return AsnCategory::kPrivateUse;
  if (v == 65535) return AsnCategory::kLast16;
  if (v >= 65536 && v <= 65551) return AsnCategory::kDocumentation;
  if (v >= 65552 && v <= 131071) return AsnCategory::kIanaReserved;
  if (v >= 4200000000u && v <= 4294967294u) return AsnCategory::kPrivateUse;
  if (v == 4294967295u) return AsnCategory::kLast32;
  return AsnCategory::kPublic;
}

/// True for any ASN that must never appear in a validated business
/// relationship (everything except kPublic; AS_TRANS included).
[[nodiscard]] constexpr bool is_reserved(Asn asn) {
  return category(asn) != AsnCategory::kPublic;
}

[[nodiscard]] constexpr bool is_as_trans(Asn asn) { return asn == kAsTrans; }

[[nodiscard]] constexpr bool is_private_use(Asn asn) {
  return category(asn) == AsnCategory::kPrivateUse;
}

[[nodiscard]] constexpr bool is_documentation(Asn asn) {
  return category(asn) == AsnCategory::kDocumentation;
}

/// An inclusive ASN range, e.g. an IANA assignment block.
struct AsnRange {
  Asn first;
  Asn last;

  [[nodiscard]] constexpr bool contains(Asn asn) const {
    return first <= asn && asn <= last;
  }
  [[nodiscard]] constexpr std::uint64_t size() const {
    return std::uint64_t{last.value()} - first.value() + 1;
  }
  friend constexpr auto operator<=>(const AsnRange&, const AsnRange&) = default;
};

/// Formats as plain decimal ("asplain", RFC 5396): "3356".
[[nodiscard]] std::string to_string(Asn asn);

/// Formats in "asdot" notation (RFC 5396): 16-bit ASNs print plain,
/// 32-bit ones print as "<high>.<low>", e.g. 65536 -> "1.0".
[[nodiscard]] std::string to_asdot(Asn asn);

/// Parses "3356", "AS3356" / "as3356", or asdot "1.0". Returns nullopt on any
/// syntax error or overflow.
[[nodiscard]] std::optional<Asn> parse_asn(std::string_view text);

}  // namespace asrel::asn

template <>
struct std::hash<asrel::asn::Asn> {
  std::size_t operator()(asrel::asn::Asn asn) const noexcept {
    return std::hash<std::uint32_t>{}(asn.value());
  }
};
