#include "asn/asn.hpp"

#include <charconv>
#include <cstdint>

namespace asrel::asn {

std::string to_string(Asn asn) { return std::to_string(asn.value()); }

std::string to_asdot(Asn asn) {
  if (asn.is_16bit()) return to_string(asn);
  const std::uint32_t high = asn.value() >> 16;
  const std::uint32_t low = asn.value() & 0xFFFFu;
  return std::to_string(high) + "." + std::to_string(low);
}

namespace {

std::optional<std::uint32_t> parse_u32(std::string_view text,
                                       std::uint32_t max) {
  if (text.empty()) return std::nullopt;
  std::uint32_t value = 0;
  const char* end = text.data() + text.size();
  auto [ptr, ec] = std::from_chars(text.data(), end, value);
  if (ec != std::errc{} || ptr != end || value > max) return std::nullopt;
  return value;
}

}  // namespace

std::optional<Asn> parse_asn(std::string_view text) {
  if (text.size() >= 2 && (text[0] == 'A' || text[0] == 'a') &&
      (text[1] == 'S' || text[1] == 's')) {
    text.remove_prefix(2);
  }
  if (const auto dot = text.find('.'); dot != std::string_view::npos) {
    const auto high = parse_u32(text.substr(0, dot), 0xFFFFu);
    const auto low = parse_u32(text.substr(dot + 1), 0xFFFFu);
    if (!high || !low) return std::nullopt;
    return Asn{(*high << 16) | *low};
  }
  const auto value = parse_u32(text, 0xFFFFFFFFu);
  if (!value) return std::nullopt;
  return Asn{*value};
}

}  // namespace asrel::asn
