#include "bgp/community.hpp"

#include <charconv>

namespace asrel::bgp {

namespace {

std::optional<std::uint32_t> parse_part(std::string_view text,
                                        std::uint32_t max) {
  if (text.empty()) return std::nullopt;
  std::uint32_t value = 0;
  const char* end = text.data() + text.size();
  auto [ptr, ec] = std::from_chars(text.data(), end, value);
  if (ec != std::errc{} || ptr != end || value > max) return std::nullopt;
  return value;
}

}  // namespace

std::string to_string(Community community) {
  return std::to_string(community.high()) + ":" +
         std::to_string(community.low());
}

std::string to_string(const LargeCommunity& community) {
  return std::to_string(community.global) + ":" +
         std::to_string(community.data1) + ":" +
         std::to_string(community.data2);
}

std::optional<Community> parse_community(std::string_view text) {
  const auto colon = text.find(':');
  if (colon == std::string_view::npos) return std::nullopt;
  const auto high = parse_part(text.substr(0, colon), 0xFFFFu);
  const auto low = parse_part(text.substr(colon + 1), 0xFFFFu);
  if (!high || !low) return std::nullopt;
  return Community{static_cast<std::uint16_t>(*high),
                   static_cast<std::uint16_t>(*low)};
}

std::optional<LargeCommunity> parse_large_community(std::string_view text) {
  const auto first = text.find(':');
  if (first == std::string_view::npos) return std::nullopt;
  const auto second = text.find(':', first + 1);
  if (second == std::string_view::npos) return std::nullopt;
  const auto global = parse_part(text.substr(0, first), 0xFFFFFFFFu);
  const auto data1 =
      parse_part(text.substr(first + 1, second - first - 1), 0xFFFFFFFFu);
  const auto data2 = parse_part(text.substr(second + 1), 0xFFFFFFFFu);
  if (!global || !data1 || !data2) return std::nullopt;
  return LargeCommunity{*global, *data1, *data2};
}

}  // namespace asrel::bgp
