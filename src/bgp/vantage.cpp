#include "bgp/vantage.hpp"

#include <algorithm>

#include "topology/random.hpp"

namespace asrel::bgp {

namespace {

double tier_pull(topo::Tier tier) {
  switch (tier) {
    case topo::Tier::kClique:
      return 1.0;
    case topo::Tier::kLargeTransit:
      return 0.8;
    case topo::Tier::kMidTransit:
      return 0.45;
    case topo::Tier::kSmallTransit:
      return 0.45;  // most collector peers are small ISPs at IXPs
    case topo::Tier::kStub:
      return 0.05;
  }
  return 0.0;
}

}  // namespace

std::vector<VantagePoint> select_vantage_points(const topo::World& world,
                                                const VantageParams& params) {
  topo::Rng rng{params.seed};
  std::vector<VantagePoint> points;

  const auto full_feed_prob = [&](topo::Tier tier) {
    switch (tier) {
      case topo::Tier::kClique:
        return params.full_feed_clique;
      case topo::Tier::kLargeTransit:
        return params.full_feed_large;
      case topo::Tier::kMidTransit:
        return params.full_feed_mid;
      default:
        return params.full_feed_other;
    }
  };

  const auto add = [&](asn::Asn asn, topo::Tier tier) {
    VantagePoint vp;
    vp.asn = asn;
    vp.full_feed = rng.chance(full_feed_prob(tier));
    vp.legacy_16bit = rng.chance(params.legacy_fraction);
    points.push_back(vp);
  };

  // Every clique member peers with the collectors.
  for (const auto asn : world.clique) add(asn, topo::Tier::kClique);

  // Candidate pool: everything else, scored by region pull * tier pull.
  struct Candidate {
    asn::Asn asn;
    topo::Tier tier;
    double weight;
  };
  std::vector<Candidate> candidates;
  for (const auto asn : world.graph.nodes()) {
    const auto& attrs = world.attrs.at(asn);
    if (attrs.tier == topo::Tier::kClique) continue;
    const double weight =
        world.params.profile(attrs.region).vp_weight * tier_pull(attrs.tier);
    if (weight <= 0) continue;
    candidates.push_back({asn, attrs.tier, weight});
  }
  // Stable order before sampling (graph.nodes() is already deterministic,
  // but make the contract explicit).
  std::sort(candidates.begin(), candidates.end(),
            [](const auto& a, const auto& b) { return a.asn < b.asn; });

  // Weighted sampling without replacement until target_count is reached.
  const int wanted = params.target_count - static_cast<int>(points.size());
  double total = 0;
  for (const auto& c : candidates) total += c.weight;
  std::vector<bool> taken(candidates.size(), false);
  for (int i = 0; i < wanted && total > 1e-12; ++i) {
    double target = rng.uniform() * total;
    std::size_t chosen = candidates.size();
    for (std::size_t j = 0; j < candidates.size(); ++j) {
      if (taken[j]) continue;
      target -= candidates[j].weight;
      if (target < 0) {
        chosen = j;
        break;
      }
    }
    if (chosen == candidates.size()) break;
    taken[chosen] = true;
    total -= candidates[chosen].weight;
    add(candidates[chosen].asn, candidates[chosen].tier);
  }
  return points;
}

}  // namespace asrel::bgp
