#include "bgp/propagation.hpp"

#include <algorithm>
#include <cassert>
#include <thread>

#include "core/parallel.hpp"
#include "obs/trace.hpp"

namespace asrel::bgp {

namespace {

using topo::EdgeId;
using topo::kInvalidNode;
using topo::Neighbor;
using topo::NodeId;
using topo::RelType;

/// splitmix64-style mixer for deterministic, order-independent choices.
std::uint64_t mix(std::uint64_t a, std::uint64_t b, std::uint64_t salt) {
  std::uint64_t x = a * 0x9E3779B97F4A7C15ull + b + salt;
  x ^= x >> 30;
  x *= 0xBF58476D1CE4E5B9ull;
  x ^= x >> 27;
  x *= 0x94D049BB133111EBull;
  x ^= x >> 31;
  return x;
}

}  // namespace

Propagator::Propagator(const topo::World& world, PropagationParams params)
    : world_(&world), params_(params) {
  prepend_propensity_.resize(world.graph.node_count(), 0.0);
  for (NodeId node = 0; node < world.graph.node_count(); ++node) {
    prepend_propensity_[node] =
        world.attrs.at(world.graph.asn_of(node)).prepend_propensity;
  }
}

topo::RelType Propagator::effective_rel(const topo::Edge& edge,
                                        asn::Asn origin) const {
  if (!edge.hybrid_rel) return edge.rel;
  const std::uint64_t h = mix(origin.value(),
                              (std::uint64_t{edge.u} << 32) | edge.v,
                              params_.salt);
  return (h & 1) == 0 ? edge.rel : *edge.hybrid_rel;
}

unsigned Propagator::prepend_count(topo::NodeId node, asn::Asn origin) const {
  if (!params_.enable_prepending) return 0;
  const double propensity = prepend_propensity_[node];
  if (propensity <= 0.0) return 0;
  const std::uint64_t h =
      mix(origin.value(), node, params_.salt ^ 0xABCDEF1234567890ull);
  const double roll =
      static_cast<double>(h >> 11) * 0x1.0p-53;  // uniform [0,1)
  if (roll >= propensity) return 0;
  return 1 + static_cast<unsigned>((h >> 5) % 3);
}

std::optional<asn::Asn> Propagator::leaked_private_asn(asn::Asn origin) const {
  if (params_.private_asn_leak <= 0.0) return std::nullopt;
  const std::uint64_t h =
      mix(origin.value(), 0x1EAFull, params_.salt ^ 0x5EEDull);
  const double roll = static_cast<double>(h >> 11) * 0x1.0p-53;
  if (roll >= params_.private_asn_leak) return std::nullopt;
  return asn::Asn{64512u + static_cast<std::uint32_t>((h >> 7) % 1022)};
}

// Role of `self` on an edge for this origin, after hybrid resolution.
// Returns the Neighbor-style role (kProvider means self is the provider).
Neighbor::Role Propagator::role_on(const topo::Edge& edge, NodeId self,
                                   asn::Asn origin) const {
  switch (effective_rel(edge, origin)) {
    case RelType::kP2C:
      return self == edge.u ? Neighbor::Role::kProvider
                            : Neighbor::Role::kCustomer;
    case RelType::kP2P:
      return Neighbor::Role::kPeer;
    case RelType::kS2S:
      return Neighbor::Role::kSibling;
  }
  return Neighbor::Role::kPeer;
}

// May `node` re-export its selected route beyond customers? The paper's
// partial-transit scopes (§6.1) restrict a provider that learned the route
// directly from the tagged customer.
bool Propagator::export_blocked(const OriginRib& rib, NodeId node,
                                bool to_peer, asn::Asn origin) const {
  if (!params_.honor_export_scopes) return false;
  if (node == rib.origin) return false;
  const EdgeId via = rib.via_edge[node];
  if (via == ~EdgeId{0}) return false;
  const auto& edge = world_->graph.edge(via);
  if (effective_rel(edge, origin) != RelType::kP2C) return false;
  if (role_on(edge, node, origin) != Neighbor::Role::kProvider) return false;
  switch (edge.scope) {
    case topo::ExportScope::kFull:
      return false;
    case topo::ExportScope::kNoProviders:
      return !to_peer;  // blocks only the provider direction
    case topo::ExportScope::kCustomersOnly:
      return true;
  }
  return false;
}

OriginRib Propagator::propagate(asn::Asn origin) const {
  const auto& graph = world_->graph;
  const std::size_t n = graph.node_count();

  // Equal-preference, equal-length candidates tie-break on a per-origin
  // hash of the next hop rather than on the raw ASN: a global "lowest ASN
  // wins" rule would route every vantage point through the same provider of
  // a multihomed AS, hiding its other links from all collectors at once.
  // Real-world MED/hot-potato diversity spreads selections similarly.
  const auto tie_rank = [&](NodeId parent) {
    return mix(origin.value(), graph.asn_of(parent).value(),
               params_.salt ^ 0x7137ull);
  };

  OriginRib rib;
  const auto origin_node = graph.node_of(origin);
  assert(origin_node.has_value());
  rib.origin = *origin_node;
  rib.parent.assign(n, kInvalidNode);
  rib.via_edge.assign(n, ~EdgeId{0});
  rib.pref.assign(n, 0);
  rib.dist.assign(n, kMaxDist);

  std::vector<std::uint8_t> settled(n, 0);
  std::vector<std::vector<NodeId>> buckets(kMaxDist);

  const auto role_on = [&](const topo::Edge& edge, NodeId self) {
    return this->role_on(edge, self, origin);
  };
  const auto export_blocked = [&](NodeId node, bool to_peer) -> bool {
    return this->export_blocked(rib, node, to_peer, origin);
  };

  const auto try_improve = [&](NodeId node, NodeId parent, EdgeId via,
                               RoutePref pref, std::uint16_t dist) {
    if (dist >= kMaxDist || settled[node]) return;
    const auto pref_value = static_cast<std::uint8_t>(pref);
    const bool better =
        pref_value > rib.pref[node] ||
        (pref_value == rib.pref[node] &&
         (dist < rib.dist[node] ||
          (dist == rib.dist[node] && rib.parent[node] != kInvalidNode &&
           tie_rank(parent) < tie_rank(rib.parent[node]))));
    if (!better) return;
    rib.parent[node] = parent;
    rib.via_edge[node] = via;
    rib.pref[node] = pref_value;
    rib.dist[node] = dist;
    buckets[dist].push_back(node);
  };

  // ---- Phase 1: customer routes climb providers and cross siblings -------
  rib.pref[rib.origin] = static_cast<std::uint8_t>(RoutePref::kCustomer);
  rib.dist[rib.origin] = 0;
  buckets[0].push_back(rib.origin);

  for (std::uint16_t d = 0; d < kMaxDist; ++d) {
    for (std::size_t i = 0; i < buckets[d].size(); ++i) {
      const NodeId node = buckets[d][i];
      if (settled[node] || rib.dist[node] != d) continue;
      settled[node] = 1;
      if (export_blocked(node, /*to_peer=*/false)) continue;
      const auto weight =
          static_cast<std::uint16_t>(1 + prepend_count(node, origin));
      for (const auto& nb : graph.neighbors(node)) {
        const auto& edge = graph.edge(nb.edge);
        const auto role = role_on(edge, node);
        // Upward export: to my providers; sibling exchange: both ways.
        if (role != Neighbor::Role::kCustomer &&
            role != Neighbor::Role::kSibling) {
          continue;
        }
        try_improve(nb.node, node, nb.edge, RoutePref::kCustomer,
                    static_cast<std::uint16_t>(d + weight));
      }
    }
    buckets[d].clear();
  }

  // ---- Phase 2: one peer hop ---------------------------------------------
  // Collect candidates first so peer routes never chain.
  struct PeerCandidate {
    NodeId node, parent;
    EdgeId via;
    std::uint16_t dist;
  };
  std::vector<PeerCandidate> candidates;
  for (NodeId node = 0; node < n; ++node) {
    if (!settled[node]) continue;
    if (export_blocked(node, /*to_peer=*/true)) continue;
    const auto weight =
        static_cast<std::uint16_t>(1 + prepend_count(node, origin));
    for (const auto& nb : graph.neighbors(node)) {
      if (settled[nb.node]) continue;
      const auto& edge = graph.edge(nb.edge);
      if (role_on(edge, node) != Neighbor::Role::kPeer) continue;
      candidates.push_back(
          {nb.node, node,
           nb.edge, static_cast<std::uint16_t>(rib.dist[node] + weight)});
    }
  }
  for (const auto& c : candidates) {
    if (c.dist >= kMaxDist) continue;
    const auto pref_value = static_cast<std::uint8_t>(RoutePref::kPeer);
    const bool better =
        rib.pref[c.node] < pref_value ||
        (rib.pref[c.node] == pref_value &&
         (c.dist < rib.dist[c.node] ||
          (c.dist == rib.dist[c.node] &&
           tie_rank(c.parent) < tie_rank(rib.parent[c.node]))));
    if (!better) continue;
    rib.parent[c.node] = c.parent;
    rib.via_edge[c.node] = c.via;
    rib.pref[c.node] = pref_value;
    rib.dist[c.node] = c.dist;
  }
  for (NodeId node = 0; node < n; ++node) {
    if (!settled[node] &&
        rib.pref[node] == static_cast<std::uint8_t>(RoutePref::kPeer)) {
      settled[node] = 1;
    }
  }

  // ---- Phase 3: descend provider->customer edges (and siblings) ----------
  for (NodeId node = 0; node < n; ++node) {
    if (settled[node]) buckets[rib.dist[node]].push_back(node);
  }
  for (std::uint16_t d = 0; d < kMaxDist; ++d) {
    for (std::size_t i = 0; i < buckets[d].size(); ++i) {
      const NodeId node = buckets[d][i];
      if (rib.dist[node] != d) continue;
      if (!settled[node]) {
        settled[node] = 1;  // provider route settles here
      }
      const auto weight =
          static_cast<std::uint16_t>(1 + prepend_count(node, origin));
      for (const auto& nb : graph.neighbors(node)) {
        if (settled[nb.node]) continue;
        const auto& edge = graph.edge(nb.edge);
        const auto role = role_on(edge, node);
        if (role != Neighbor::Role::kProvider &&
            role != Neighbor::Role::kSibling) {
          continue;
        }
        try_improve(nb.node, node, nb.edge, RoutePref::kProvider,
                    static_cast<std::uint16_t>(d + weight));
      }
    }
    buckets[d].clear();
  }
  return rib;
}

bool Propagator::rib_affected(const OriginRib& rib,
                              std::span<const EdgeId> touched) const {
  const auto& graph = world_->graph;
  const asn::Asn origin = graph.asn_of(rib.origin);
  for (const EdgeId id : touched) {
    const auto& edge = graph.edge(id);  // tombstones keep endpoints valid
    // A via edge is incident to the node selecting it, so `edge` can be in
    // use only at its own endpoints. If either routed through it, any
    // mutation (removal, flip, scope change) can cascade — re-run.
    if (rib.via_edge[edge.u] == id || rib.via_edge[edge.v] == id) {
      return true;
    }
    // A removed edge nobody routed through never carried a selected route
    // and can no longer make offers: replay without it is identical.
    if (edge.removed) continue;
    // Otherwise the edge (new, or with new policy) competes in both
    // directions. Every phase exports the exporter's *final* values — the
    // bucket walk settles a node only at its final distance — so comparing
    // the best possible offer against the endpoint's final selection is
    // exact. A strictly losing offer loses in every phase replay. On an
    // exact (pref, dist) tie the selection flips only if the new parent
    // wins propagate()'s per-origin tie-break against the incumbent, so
    // tie-losing offers are provably inert and need not dirty the origin.
    const auto tie_rank = [&](NodeId parent) {
      return mix(origin.value(), graph.asn_of(parent).value(),
                 params_.salt ^ 0x7137ull);
    };
    for (int direction = 0; direction < 2; ++direction) {
      const NodeId from = direction == 0 ? edge.u : edge.v;
      const NodeId to = direction == 0 ? edge.v : edge.u;
      if (rib.pref[from] == 0) continue;  // nothing to export
      const auto weight =
          static_cast<std::uint16_t>(1 + prepend_count(from, origin));
      const std::uint32_t offer_dist = rib.dist[from] + weight;
      const auto offer_beats = [&](RoutePref pref) {
        if (offer_dist >= kMaxDist) return false;
        const auto pref_value = static_cast<std::uint8_t>(pref);
        if (pref_value != rib.pref[to]) return pref_value > rib.pref[to];
        if (offer_dist != rib.dist[to]) return offer_dist < rib.dist[to];
        const NodeId incumbent = rib.parent[to];
        if (incumbent == kInvalidNode) return true;  // conservative
        return tie_rank(from) <= tie_rank(incumbent);
      };
      const bool customer_route =
          rib.pref[from] == static_cast<std::uint8_t>(RoutePref::kCustomer);
      switch (role_on(edge, from, origin)) {
        case Neighbor::Role::kCustomer:  // exports up to its provider
          if (customer_route &&
              !export_blocked(rib, from, /*to_peer=*/false, origin) &&
              offer_beats(RoutePref::kCustomer)) {
            return true;
          }
          break;
        case Neighbor::Role::kSibling:  // phase 1 climb and phase 3 descent
          if (customer_route &&
              !export_blocked(rib, from, /*to_peer=*/false, origin) &&
              offer_beats(RoutePref::kCustomer)) {
            return true;
          }
          if (offer_beats(RoutePref::kProvider)) return true;
          break;
        case Neighbor::Role::kPeer:  // one hop from customer-route holders
          if (customer_route &&
              !export_blocked(rib, from, /*to_peer=*/true, origin) &&
              offer_beats(RoutePref::kPeer)) {
            return true;
          }
          break;
        case Neighbor::Role::kProvider:  // exports down to its customer
          if (offer_beats(RoutePref::kProvider)) return true;
          break;
      }
    }
  }
  return false;
}

std::vector<asn::Asn> Propagator::path_at(const OriginRib& rib,
                                          topo::NodeId node) const {
  std::vector<asn::Asn> path;
  if (!rib.reachable(node)) return path;
  const auto& graph = world_->graph;
  const asn::Asn origin = graph.asn_of(rib.origin);
  path.push_back(graph.asn_of(node));
  NodeId cur = node;
  while (cur != rib.origin) {
    const NodeId parent = rib.parent[cur];
    assert(parent != kInvalidNode);
    const unsigned repeats = 1 + prepend_count(parent, origin);
    for (unsigned i = 0; i < repeats; ++i) {
      path.push_back(graph.asn_of(parent));
    }
    cur = parent;
  }
  return path;
}

void PathTable::add_path(topo::NodeId origin, std::uint32_t vp_index,
                         std::span<const asn::Asn> path) {
  auto& bucket = per_origin_[origin];
  bucket.vp_ids.push_back(vp_index);
  bucket.offsets.push_back(static_cast<std::uint32_t>(bucket.arena.size()));
  bucket.arena.insert(bucket.arena.end(), path.begin(), path.end());
}

void PathTable::clear_origin(topo::NodeId origin) {
  auto& bucket = per_origin_[origin];
  bucket.offsets.clear();
  bucket.vp_ids.clear();
  bucket.arena.clear();
}

void PathTable::recount() {
  path_count_ = 0;
  for (const auto& bucket : per_origin_) path_count_ += bucket.vp_ids.size();
}

void PathTable::for_each_path(
    const std::function<void(const PathRef&)>& visit) const {
  for (std::size_t origin = 0; origin < per_origin_.size(); ++origin) {
    const auto& bucket = per_origin_[origin];
    for (std::size_t i = 0; i < bucket.vp_ids.size(); ++i) {
      const std::uint32_t begin = bucket.offsets[i];
      const std::uint32_t end = i + 1 < bucket.offsets.size()
                                    ? bucket.offsets[i + 1]
                                    : static_cast<std::uint32_t>(
                                          bucket.arena.size());
      visit(PathRef{bucket.vp_ids[i], static_cast<topo::NodeId>(origin),
                    std::span{bucket.arena}.subspan(begin, end - begin)});
    }
  }
}

std::vector<PathTable::PathRef> PathTable::paths_for_origin(
    topo::NodeId origin) const {
  std::vector<PathRef> out;
  if (origin >= per_origin_.size()) return out;
  const auto& bucket = per_origin_[origin];
  for (std::size_t i = 0; i < bucket.vp_ids.size(); ++i) {
    const std::uint32_t begin = bucket.offsets[i];
    const std::uint32_t end =
        i + 1 < bucket.offsets.size()
            ? bucket.offsets[i + 1]
            : static_cast<std::uint32_t>(bucket.arena.size());
    out.push_back(PathRef{bucket.vp_ids[i], origin,
                          std::span{bucket.arena}.subspan(begin, end - begin)});
  }
  return out;
}

std::vector<VpSession> resolve_vp_sessions(const topo::AsGraph& graph,
                                           std::span<const VantagePoint> vps) {
  std::vector<VpSession> sessions;
  sessions.reserve(vps.size());
  for (const auto& vp : vps) {
    const auto node = graph.node_of(vp.asn);
    if (!node) continue;
    sessions.push_back(VpSession{
        .node = *node,
        .vp_index = static_cast<std::uint32_t>(sessions.size()),
        .full_feed = vp.full_feed,
        .legacy = vp.legacy_16bit,
    });
  }
  return sessions;
}

void harvest_origin(const Propagator& propagator, const OriginRib& rib,
                    std::span<const VpSession> sessions, PathTable& table) {
  const asn::Asn origin_asn = propagator.world().graph.asn_of(rib.origin);
  const auto leak = propagator.leaked_private_asn(origin_asn);
  std::vector<asn::Asn> scratch;
  for (const auto& vp : sessions) {
    if (!rib.reachable(vp.node)) continue;
    if (vp.node == rib.origin) continue;  // own announcement
    // Partial feeds export only customer/sibling routes to collectors.
    if (!vp.full_feed &&
        rib.pref[vp.node] !=
            static_cast<std::uint8_t>(RoutePref::kCustomer)) {
      continue;
    }
    scratch = propagator.path_at(rib, vp.node);
    if (leak) scratch.push_back(*leak);
    if (vp.legacy) {
      // Mangling is rare: AS4_PATH usually restores the 32-bit hops.
      const std::uint64_t h = mix(origin_asn.value(), vp.node,
                                  propagator.params().salt ^ 0x16B17ull);
      const double roll = static_cast<double>(h >> 11) * 0x1.0p-53;
      if (roll < propagator.params().legacy_mangle) {
        for (auto& hop : scratch) {
          if (!hop.is_16bit()) hop = asn::kAsTrans;
        }
      }
    }
    table.add_path(rib.origin, vp.vp_index, scratch);
  }
}

PathTable collect_paths(const Propagator& propagator,
                        std::vector<VantagePoint> vps) {
  obs::StageScope stage{"bgp.collect_paths"};
  const auto& world = propagator.world();
  const auto& graph = world.graph;
  const std::size_t n = graph.node_count();

  PathTable table;
  table.resize_origins(n);

  const std::vector<VpSession> sessions = resolve_vp_sessions(graph, vps);
  table.set_vantage_points(std::move(vps));

  // threads == 0 auto-sizes to hardware concurrency, capped at 32 so the
  // auto default stays sane on very wide machines; an *explicit* setting is
  // honored as-is, above or below the cap.
  unsigned thread_count = propagator.params().threads;
  if (thread_count == 0) {
    thread_count =
        std::min(32u, std::max(1u, std::thread::hardware_concurrency()));
  }

  // Each origin writes only its own bucket, so origins parallelize freely;
  // the path count is fixed up below because add_path's counter is not
  // synchronized.
  core::ThreadPool::shared().run_indexed(
      n, thread_count, [&](std::size_t origin) {
        const asn::Asn origin_asn = graph.asn_of(static_cast<NodeId>(origin));
        const OriginRib rib = propagator.propagate(origin_asn);
        harvest_origin(propagator, rib, sessions, table);
      });
  table.recount();
  return table;
}

}  // namespace asrel::bgp
