// BGP community attributes (RFC 1997) and large communities (RFC 8092).
//
// Communities are the raw material of the paper's "best-effort" validation
// data (§3.2): colon-separated value pairs whose meaning is defined only by
// the AS that sets or reads them — the same value can mean "blackhole" to
// one community of ASes and "peering route" to another (the 3356:666
// example).
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>

namespace asrel::bgp {

/// Classic 32-bit community, conventionally written "<asn16>:<value16>".
class Community {
 public:
  constexpr Community() = default;
  constexpr Community(std::uint16_t high, std::uint16_t low)
      : bits_((std::uint32_t{high} << 16) | low) {}
  constexpr explicit Community(std::uint32_t bits) : bits_(bits) {}

  [[nodiscard]] constexpr std::uint16_t high() const {
    return static_cast<std::uint16_t>(bits_ >> 16);
  }
  [[nodiscard]] constexpr std::uint16_t low() const {
    return static_cast<std::uint16_t>(bits_ & 0xFFFFu);
  }
  [[nodiscard]] constexpr std::uint32_t bits() const { return bits_; }

  friend constexpr auto operator<=>(Community, Community) = default;

 private:
  std::uint32_t bits_ = 0;
};

/// RFC 8092 large community: three 32-bit words "<asn>:<v1>:<v2>".
struct LargeCommunity {
  std::uint32_t global = 0;
  std::uint32_t data1 = 0;
  std::uint32_t data2 = 0;
  friend constexpr auto operator<=>(const LargeCommunity&,
                                    const LargeCommunity&) = default;
};

// Well-known communities (RFC 1997 / RFC 7999).
inline constexpr Community kNoExport{0xFFFF, 0xFF01};
inline constexpr Community kNoAdvertise{0xFFFF, 0xFF02};
inline constexpr Community kBlackhole{0xFFFF, 0x029A};  // 65535:666

[[nodiscard]] std::string to_string(Community community);
[[nodiscard]] std::string to_string(const LargeCommunity& community);
[[nodiscard]] std::optional<Community> parse_community(std::string_view text);
[[nodiscard]] std::optional<LargeCommunity> parse_large_community(
    std::string_view text);

}  // namespace asrel::bgp

template <>
struct std::hash<asrel::bgp::Community> {
  std::size_t operator()(asrel::bgp::Community community) const noexcept {
    return std::hash<std::uint32_t>{}(community.bits());
  }
};
