// Valley-free BGP route propagation over the ground-truth graph.
//
// One announcement per origin AS is propagated in the classic three phases
// (Gao-Rexford export policies):
//   1. up    — customer routes climb provider chains (and cross siblings),
//   2. across — one peer hop for ASes holding a customer route,
//   3. down  — everything descends provider->customer edges.
// Route selection at every AS: prefer customer > peer > provider routes,
// then shorter AS path, then lowest next-hop ASN.
//
// The engine honors the paper's §6.1 mechanics: a P2C edge with a restricted
// export scope stops the provider from redistributing that customer's routes
// to its peers (kCustomersOnly) and/or providers (both restricted scopes) —
// exactly what a 174:990-style action community does. Hybrid links resolve
// to one of their two relationships per origin (PoP-dependent routing).
// Deterministic AS-path prepending models region-dependent traffic
// engineering (Marcos et al., cited in §2).
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "asn/asn.hpp"
#include "bgp/vantage.hpp"
#include "topology/generator.hpp"
#include "topology/graph.hpp"

namespace asrel::bgp {

/// Exclusive upper bound on AS-path length (incl. prepending); OriginRib
/// distances of unreachable nodes sit at this sentinel. Exported so the
/// checkpoint decoder can validate persisted ribs.
inline constexpr std::uint16_t kMaxDist = 64;

/// Preference class of a selected route (higher is preferred).
enum class RoutePref : std::uint8_t {
  kNone = 0,
  kProvider = 1,
  kPeer = 2,
  kCustomer = 3,  ///< includes sibling-learned and self-originated routes
};

struct PropagationParams {
  bool honor_export_scopes = true;  ///< ablation: ignore partial transit
  bool enable_prepending = true;
  /// Probability that an origin's announcement leaks an internal private
  /// ASN as an extra final hop (produces the paper's "reserved ASN"
  /// spurious validation entries, §4.2).
  double private_asn_leak = 0.02;
  /// Probability that a legacy 16-bit collector session fails to reconstruct
  /// the 32-bit path (AS4_PATH loss) and shows AS_TRANS placeholders.
  double legacy_mangle = 0.005;
  std::uint64_t salt = 0x9E3779B97F4A7C15ull;  ///< hash salt for det. choices
  /// Worker count for collect_paths. 0 auto-sizes to hardware concurrency
  /// (capped at 32); any explicit value — including one above 32 — is
  /// honored exactly. The observed paths are byte-identical for every
  /// setting; this knob only trades wall-clock for cores.
  unsigned threads = 0;
};

/// Best routes of every AS toward one origin.
struct OriginRib {
  topo::NodeId origin = topo::kInvalidNode;
  std::vector<topo::NodeId> parent;   ///< next hop toward origin (or invalid)
  std::vector<topo::EdgeId> via_edge; ///< edge to parent
  std::vector<std::uint8_t> pref;     ///< RoutePref as integer
  std::vector<std::uint16_t> dist;    ///< AS-path length incl. prepending

  [[nodiscard]] bool reachable(topo::NodeId node) const {
    return pref[node] != 0;
  }
};

class Propagator {
 public:
  Propagator(const topo::World& world, PropagationParams params);

  /// Full best-route computation for one origin (O(E)).
  [[nodiscard]] OriginRib propagate(asn::Asn origin) const;

  /// AS path `node` uses toward the rib's origin: [node, ..., origin],
  /// with prepending expanded. Empty if unreachable.
  [[nodiscard]] std::vector<asn::Asn> path_at(const OriginRib& rib,
                                              topo::NodeId node) const;

  /// Extra prepends AS `node` applies when exporting routes of `origin`.
  [[nodiscard]] unsigned prepend_count(topo::NodeId node,
                                       asn::Asn origin) const;

  /// Effective relationship of `edge` for this origin (hybrid resolution).
  /// Returns the relationship and, for kP2C, whether edge.u is the provider.
  [[nodiscard]] topo::RelType effective_rel(const topo::Edge& edge,
                                            asn::Asn origin) const;

  /// The private ASN leaked by this origin, or nullopt (deterministic).
  [[nodiscard]] std::optional<asn::Asn> leaked_private_asn(
      asn::Asn origin) const;

  [[nodiscard]] const topo::World& world() const { return *world_; }
  [[nodiscard]] const PropagationParams& params() const { return params_; }

  /// Conservative dirty test for incremental re-convergence (src/stream).
  ///
  /// Given a rib computed *before* a set of edge mutations and the graph
  /// *after* them, returns false only if re-running propagate() for this
  /// origin provably reproduces the rib byte-for-byte. The test is O(1)
  /// per touched edge: an edge can be the selected via only at its own two
  /// endpoints, so it checks (a) whether either endpoint routed through
  /// the edge, and (b) whether the edge in its new state could now offer
  /// either endpoint a route that beats — or ties, since tie_rank could
  /// then flip the selection — the endpoint's current best. Ties and
  /// every phase's export rule are treated conservatively, so "affected"
  /// may re-run origins that end up unchanged, but "unaffected" is exact.
  [[nodiscard]] bool rib_affected(const OriginRib& rib,
                                  std::span<const topo::EdgeId> touched) const;

 private:
  /// Role of `self` on `edge` for this origin, after hybrid resolution.
  [[nodiscard]] topo::Neighbor::Role role_on(const topo::Edge& edge,
                                             topo::NodeId self,
                                             asn::Asn origin) const;
  /// §6.1 partial-transit export restriction for `node`'s selected route.
  [[nodiscard]] bool export_blocked(const OriginRib& rib, topo::NodeId node,
                                    bool to_peer, asn::Asn origin) const;

  const topo::World* world_;
  PropagationParams params_;
  std::vector<double> prepend_propensity_;  // by NodeId
};

/// All AS paths observed by a set of collector vantage points.
///
/// Paths are stored origin-major: for each origin node, the (vp, path)
/// pairs of every VP that exported a route for it. Paths run collector-side
/// first: path[0] is the VP's ASN, path.back() the origin (or a leaked
/// private ASN). Legacy 16-bit VP sessions show 32-bit ASNs as AS_TRANS.
class PathTable {
 public:
  struct PathRef {
    std::uint32_t vp_index;
    topo::NodeId origin;  ///< originating node (pre-mangling identity)
    std::span<const asn::Asn> path;
  };

  [[nodiscard]] std::size_t origin_count() const { return per_origin_.size(); }
  [[nodiscard]] std::size_t path_count() const { return path_count_; }
  [[nodiscard]] std::span<const VantagePoint> vantage_points() const {
    return vps_;
  }

  /// Iterates over every stored path in deterministic order.
  void for_each_path(
      const std::function<void(const PathRef&)>& visit) const;

  /// Paths for one origin node.
  [[nodiscard]] std::vector<PathRef> paths_for_origin(
      topo::NodeId origin) const;

  /// Builder interface (used by collect_paths).
  void set_vantage_points(std::vector<VantagePoint> vps) {
    vps_ = std::move(vps);
  }
  void resize_origins(std::size_t count) { per_origin_.resize(count); }
  void add_path(topo::NodeId origin, std::uint32_t vp_index,
                std::span<const asn::Asn> path);
  /// Drops one origin's paths so an incremental update can re-harvest just
  /// that bucket (src/stream). Call recount() before trusting path_count().
  void clear_origin(topo::NodeId origin);
  /// Rebuilds path_count_ after parallel filling (add_path's counter is not
  /// synchronized across threads).
  void recount();

 private:
  struct OriginPaths {
    std::vector<std::uint32_t> offsets;  // into arena; parallel to vp_ids
    std::vector<std::uint32_t> vp_ids;
    std::vector<asn::Asn> arena;
  };
  std::vector<VantagePoint> vps_;
  std::vector<OriginPaths> per_origin_;
  std::size_t path_count_ = 0;
};

/// One collector session with its node id resolved. `vp_index` is the
/// index recorded in PathRefs: the position within the *resolved* list
/// (VPs whose ASN is absent from the graph are skipped), which matches
/// what collect_paths has always written.
struct VpSession {
  topo::NodeId node = topo::kInvalidNode;
  std::uint32_t vp_index = 0;
  bool full_feed = true;
  bool legacy = false;
};

[[nodiscard]] std::vector<VpSession> resolve_vp_sessions(
    const topo::AsGraph& graph, std::span<const VantagePoint> vps);

/// Harvests one origin's VP paths into `table` (the per-origin body of
/// collect_paths): feed filtering, private-ASN leak, legacy 16-bit
/// mangling. The stream session reuses it to refill a cleared bucket so
/// incremental tables stay byte-identical to batch-collected ones.
void harvest_origin(const Propagator& propagator, const OriginRib& rib,
                    std::span<const VpSession> sessions, PathTable& table);

/// Propagates every origin and harvests the VP paths (parallelized across
/// origins; result independent of thread count).
[[nodiscard]] PathTable collect_paths(const Propagator& propagator,
                                      std::vector<VantagePoint> vps);

}  // namespace asrel::bgp
