// Route-collector vantage-point selection.
//
// Public BGP data comes from ASes that peer with collectors (RIPE RIS,
// Route Views, Isolario, ...). Their placement is heavily skewed toward the
// RIPE and ARIN regions and toward well-connected transit networks — one of
// the visibility biases the paper builds on. Feed type matters just as much:
// an AS that treats the collector like a peer exports only its customer
// cone ("partial feed"); only some export everything ("full feed").
#pragma once

#include <cstdint>
#include <vector>

#include "asn/asn.hpp"
#include "topology/generator.hpp"

namespace asrel::bgp {

struct VantagePoint {
  asn::Asn asn;
  bool full_feed = false;    ///< exports its entire RIB to the collector
  bool legacy_16bit = false; ///< 16-bit speaker: 32-bit ASNs appear as 23456
};

struct VantageParams {
  std::uint64_t seed = 7;
  int target_count = 320;

  /// Probability that a selected VP of a given tier gives a full feed.
  double full_feed_clique = 1.0;
  double full_feed_large = 0.7;
  double full_feed_mid = 0.65;
  double full_feed_other = 0.7;

  /// Fraction of VPs whose collector session still runs 16-bit BGP.
  double legacy_fraction = 0.05;
};

/// Chooses vantage points: every clique member, then transit ASes sampled
/// with probability proportional to their region's `vp_weight` (euro/US
/// skew), preferring larger tiers. Deterministic in (world, params).
[[nodiscard]] std::vector<VantagePoint> select_vantage_points(
    const topo::World& world, const VantageParams& params);

}  // namespace asrel::bgp
