#include "rir/region.hpp"

namespace asrel::rir {

std::string_view registry_name(Region region) {
  switch (region) {
    case Region::kAfrinic:
      return "afrinic";
    case Region::kApnic:
      return "apnic";
    case Region::kArin:
      return "arin";
    case Region::kLacnic:
      return "lacnic";
    case Region::kRipe:
      return "ripencc";
    case Region::kUnknown:
      return "unknown";
  }
  return "unknown";
}

std::string_view abbreviation(Region region) {
  switch (region) {
    case Region::kAfrinic:
      return "AF";
    case Region::kApnic:
      return "AP";
    case Region::kArin:
      return "AR";
    case Region::kLacnic:
      return "L";
    case Region::kRipe:
      return "R";
    case Region::kUnknown:
      return "?";
  }
  return "?";
}

std::optional<Region> parse_registry(std::string_view name) {
  if (name == "afrinic") return Region::kAfrinic;
  if (name == "apnic") return Region::kApnic;
  if (name == "arin") return Region::kArin;
  if (name == "lacnic") return Region::kLacnic;
  if (name == "ripencc" || name == "ripe") return Region::kRipe;
  return std::nullopt;
}

}  // namespace asrel::rir
