#include "rir/iana_table.hpp"

#include <algorithm>
#include <array>

namespace asrel::rir {

namespace {

using asn::Asn;
using asn::AsnRange;

constexpr IanaBlock kBlocks[] = {
    // --- legacy 16-bit space (pre-RIR allocations, mostly ARIN/RIPE) ---
    {{Asn{1}, Asn{1876}}, Region::kArin},
    {{Asn{1877}, Asn{1901}}, Region::kRipe},
    {{Asn{1902}, Asn{2042}}, Region::kArin},
    {{Asn{2043}, Asn{2043}}, Region::kRipe},
    {{Asn{2044}, Asn{2046}}, Region::kArin},
    {{Asn{2047}, Asn{2047}}, Region::kRipe},
    {{Asn{2048}, Asn{2106}}, Region::kArin},
    {{Asn{2107}, Asn{2136}}, Region::kRipe},
    {{Asn{2137}, Asn{2584}}, Region::kArin},
    {{Asn{2585}, Asn{2614}}, Region::kRipe},
    {{Asn{2615}, Asn{2772}}, Region::kArin},
    {{Asn{2773}, Asn{2822}}, Region::kRipe},
    {{Asn{2823}, Asn{2829}}, Region::kArin},
    {{Asn{2830}, Asn{2879}}, Region::kRipe},
    {{Asn{2880}, Asn{3153}}, Region::kArin},
    {{Asn{3154}, Asn{3353}}, Region::kRipe},
    {{Asn{3354}, Asn{4607}}, Region::kArin},
    {{Asn{4608}, Asn{4865}}, Region::kApnic},
    {{Asn{4866}, Asn{5376}}, Region::kArin},
    {{Asn{5377}, Asn{5631}}, Region::kRipe},
    {{Asn{5632}, Asn{6655}}, Region::kArin},
    {{Asn{6656}, Asn{6911}}, Region::kRipe},
    {{Asn{6912}, Asn{7466}}, Region::kArin},
    {{Asn{7467}, Asn{7722}}, Region::kApnic},
    {{Asn{7723}, Asn{8191}}, Region::kArin},
    {{Asn{8192}, Asn{9215}}, Region::kRipe},
    {{Asn{9216}, Asn{10239}}, Region::kApnic},
    {{Asn{10240}, Asn{12287}}, Region::kArin},
    {{Asn{12288}, Asn{13311}}, Region::kRipe},
    {{Asn{13312}, Asn{15359}}, Region::kArin},
    {{Asn{15360}, Asn{16383}}, Region::kRipe},
    {{Asn{16384}, Asn{17407}}, Region::kArin},
    {{Asn{17408}, Asn{18431}}, Region::kApnic},
    {{Asn{18432}, Asn{20479}}, Region::kArin},
    {{Asn{20480}, Asn{21503}}, Region::kRipe},
    {{Asn{21504}, Asn{23455}}, Region::kArin},
    // 23456 is AS_TRANS -- reserved gap.
    {{Asn{23457}, Asn{24575}}, Region::kApnic},
    {{Asn{24576}, Asn{25599}}, Region::kRipe},
    {{Asn{25600}, Asn{26623}}, Region::kArin},
    {{Asn{26624}, Asn{27647}}, Region::kLacnic},
    {{Asn{27648}, Asn{28671}}, Region::kLacnic},
    {{Asn{28672}, Asn{29695}}, Region::kRipe},
    {{Asn{29696}, Asn{30719}}, Region::kArin},
    {{Asn{30720}, Asn{31743}}, Region::kRipe},
    {{Asn{31744}, Asn{32767}}, Region::kArin},
    {{Asn{32768}, Asn{33791}}, Region::kArin},
    {{Asn{33792}, Asn{34815}}, Region::kRipe},
    {{Asn{34816}, Asn{35839}}, Region::kRipe},
    {{Asn{35840}, Asn{36863}}, Region::kArin},
    {{Asn{36864}, Asn{37887}}, Region::kAfrinic},
    {{Asn{37888}, Asn{38911}}, Region::kApnic},
    {{Asn{38912}, Asn{39935}}, Region::kRipe},
    {{Asn{39936}, Asn{40959}}, Region::kArin},
    {{Asn{40960}, Asn{41983}}, Region::kRipe},
    {{Asn{41984}, Asn{43007}}, Region::kRipe},
    {{Asn{43008}, Asn{44031}}, Region::kRipe},
    {{Asn{44032}, Asn{45055}}, Region::kRipe},
    {{Asn{45056}, Asn{46079}}, Region::kApnic},
    {{Asn{46080}, Asn{47103}}, Region::kArin},
    {{Asn{47104}, Asn{48127}}, Region::kRipe},
    {{Asn{48128}, Asn{49151}}, Region::kRipe},
    {{Asn{49152}, Asn{50175}}, Region::kRipe},
    {{Asn{50176}, Asn{51199}}, Region::kRipe},
    {{Asn{51200}, Asn{52223}}, Region::kRipe},
    {{Asn{52224}, Asn{53247}}, Region::kLacnic},
    {{Asn{53248}, Asn{54271}}, Region::kArin},
    {{Asn{54272}, Asn{55295}}, Region::kArin},
    {{Asn{55296}, Asn{56319}}, Region::kApnic},
    {{Asn{56320}, Asn{57343}}, Region::kRipe},
    {{Asn{57344}, Asn{58367}}, Region::kRipe},
    {{Asn{58368}, Asn{59391}}, Region::kApnic},
    {{Asn{59392}, Asn{60415}}, Region::kRipe},
    {{Asn{60416}, Asn{61439}}, Region::kRipe},
    {{Asn{61440}, Asn{61951}}, Region::kLacnic},
    {{Asn{61952}, Asn{62463}}, Region::kRipe},
    {{Asn{62464}, Asn{63487}}, Region::kArin},
    {{Asn{63488}, Asn{64098}}, Region::kApnic},
    {{Asn{64099}, Asn{64197}}, Region::kLacnic},
    {{Asn{64198}, Asn{64297}}, Region::kArin},
    {{Asn{64298}, Asn{64395}}, Region::kApnic},
    {{Asn{64396}, Asn{64495}}, Region::kAfrinic},
    // 64496-131071 is reserved space (documentation, private, AS 65535,
    // IANA reserved) -- gap.
    // --- 32-bit space, delegated in blocks of 1024 ---
    {{Asn{131072}, Asn{132095}}, Region::kApnic},
    {{Asn{132096}, Asn{133119}}, Region::kApnic},
    {{Asn{133120}, Asn{134144}}, Region::kApnic},
    {{Asn{134145}, Asn{135580}}, Region::kApnic},
    {{Asn{135581}, Asn{136505}}, Region::kApnic},
    {{Asn{136506}, Asn{137529}}, Region::kApnic},
    {{Asn{137530}, Asn{138553}}, Region::kApnic},
    {{Asn{196608}, Asn{197631}}, Region::kRipe},
    {{Asn{197632}, Asn{198655}}, Region::kRipe},
    {{Asn{198656}, Asn{199679}}, Region::kRipe},
    {{Asn{199680}, Asn{200703}}, Region::kRipe},
    {{Asn{200704}, Asn{201727}}, Region::kRipe},
    {{Asn{201728}, Asn{202751}}, Region::kRipe},
    {{Asn{202752}, Asn{203775}}, Region::kRipe},
    {{Asn{203776}, Asn{204799}}, Region::kRipe},
    {{Asn{204800}, Asn{205823}}, Region::kRipe},
    {{Asn{205824}, Asn{206847}}, Region::kRipe},
    {{Asn{206848}, Asn{207871}}, Region::kRipe},
    {{Asn{207872}, Asn{208895}}, Region::kRipe},
    {{Asn{262144}, Asn{263167}}, Region::kLacnic},
    {{Asn{263168}, Asn{264191}}, Region::kLacnic},
    {{Asn{264192}, Asn{265215}}, Region::kLacnic},
    {{Asn{265216}, Asn{266239}}, Region::kLacnic},
    {{Asn{266240}, Asn{267263}}, Region::kLacnic},
    {{Asn{267264}, Asn{268287}}, Region::kLacnic},
    {{Asn{268288}, Asn{269311}}, Region::kLacnic},
    {{Asn{327680}, Asn{328703}}, Region::kAfrinic},
    {{Asn{328704}, Asn{329727}}, Region::kAfrinic},
    {{Asn{393216}, Asn{394239}}, Region::kArin},
    {{Asn{394240}, Asn{395164}}, Region::kArin},
    {{Asn{395165}, Asn{396188}}, Region::kArin},
    {{Asn{396189}, Asn{397212}}, Region::kArin},
};

}  // namespace

std::span<const IanaBlock> iana_asn_blocks() { return kBlocks; }

Region iana_region_of(asn::Asn asn) {
  const auto it = std::upper_bound(
      std::begin(kBlocks), std::end(kBlocks), asn,
      [](asn::Asn value, const IanaBlock& block) {
        return value < block.range.first;
      });
  if (it == std::begin(kBlocks)) return Region::kUnknown;
  const IanaBlock& block = *std::prev(it);
  return block.range.contains(asn) ? block.region : Region::kUnknown;
}

}  // namespace asrel::rir
