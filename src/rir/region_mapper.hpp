// ASN -> service-region mapping, built the way the paper builds it (§5):
// bootstrap every ASN from IANA's initial block assignments, then refine
// with the per-RIR delegated-extended files (which reflect later transfers
// between regions).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "asn/asn.hpp"
#include "rir/delegation.hpp"
#include "rir/region.hpp"

namespace asrel::rir {

class RegionMapper {
 public:
  /// Bootstrap-only mapper (IANA table, no refinements).
  RegionMapper() = default;

  /// Applies the ASN records of a delegation file. Later applications
  /// override earlier ones (matching "daily files correct the mapping").
  /// Records with status available/reserved are skipped. Returns the number
  /// of ASNs whose mapping changed relative to the IANA bootstrap.
  std::size_t apply(const DelegationFile& file);
  std::size_t apply(std::span<const DelegationRecord> records);

  /// Region for an ASN: refined mapping if present, IANA bootstrap
  /// otherwise; kUnknown for reserved ASNs.
  [[nodiscard]] Region region_of(asn::Asn asn) const;

  /// Country code from the delegation data, or "ZZ" if unknown.
  [[nodiscard]] std::string country_of(asn::Asn asn) const;

  /// ASNs whose refined region differs from their IANA bootstrap region —
  /// i.e. resources transferred between regions after initial assignment.
  [[nodiscard]] std::vector<asn::Asn> transferred_asns() const;

  [[nodiscard]] std::size_t refined_count() const { return refined_.size(); }

 private:
  struct Entry {
    Region region = Region::kUnknown;
    std::string country;
  };
  std::unordered_map<asn::Asn, Entry> refined_;
};

}  // namespace asrel::rir
