// IANA's initial ASN-block assignment table.
//
// The paper (§5) bootstraps its ASN -> service-region mapping from IANA's
// list of initial assignments and then refines it with RIR delegation files.
// We ship a block table modeled on the real IANA "Autonomous System (AS)
// Numbers" registry: interleaved legacy 16-bit blocks (historically dominated
// by ARIN and RIPE), later 16-bit blocks handed to all five RIRs, and 32-bit
// space delegated in blocks of 1024. The synthetic world allocates ASNs out
// of exactly these blocks, so the bootstrap-then-refine pipeline behaves as
// it does on real data (including inter-region transfers that make the
// bootstrap stale).
#pragma once

#include <span>

#include "asn/asn.hpp"
#include "rir/region.hpp"

namespace asrel::rir {

/// One IANA assignment: an inclusive ASN range handed to one registry.
struct IanaBlock {
  asn::AsnRange range;
  Region region;
};

/// The full block table, ordered by range start, non-overlapping.
[[nodiscard]] std::span<const IanaBlock> iana_asn_blocks();

/// Region of the block containing `asn`, or kUnknown if the ASN falls in a
/// reserved gap (AS_TRANS, private use, documentation, ...).
[[nodiscard]] Region iana_region_of(asn::Asn asn);

}  // namespace asrel::rir
