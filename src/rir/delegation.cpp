#include "rir/delegation.hpp"

#include <algorithm>
#include <charconv>
#include <istream>
#include <ostream>
#include <sstream>

namespace asrel::rir {

namespace {

std::vector<std::string_view> split_pipe(std::string_view line) {
  std::vector<std::string_view> fields;
  while (true) {
    const auto bar = line.find('|');
    if (bar == std::string_view::npos) {
      fields.push_back(line);
      return fields;
    }
    fields.push_back(line.substr(0, bar));
    line.remove_prefix(bar + 1);
  }
}

std::optional<std::uint64_t> parse_u64(std::string_view text) {
  if (text.empty()) return std::nullopt;
  std::uint64_t value = 0;
  const char* end = text.data() + text.size();
  auto [ptr, ec] = std::from_chars(text.data(), end, value);
  if (ec != std::errc{} || ptr != end) return std::nullopt;
  return value;
}

std::optional<ResourceType> parse_type(std::string_view text) {
  if (text == "asn") return ResourceType::kAsn;
  if (text == "ipv4") return ResourceType::kIpv4;
  if (text == "ipv6") return ResourceType::kIpv6;
  return std::nullopt;
}

std::optional<AllocationStatus> parse_status(std::string_view text) {
  if (text == "allocated") return AllocationStatus::kAllocated;
  if (text == "assigned") return AllocationStatus::kAssigned;
  if (text == "available") return AllocationStatus::kAvailable;
  if (text == "reserved") return AllocationStatus::kReserved;
  return std::nullopt;
}

void report(ParseDiagnostics* diag, std::size_t line, std::string message) {
  if (diag != nullptr) diag->issues.push_back({line, std::move(message)});
}

}  // namespace

std::string_view to_string(ResourceType type) {
  switch (type) {
    case ResourceType::kAsn:
      return "asn";
    case ResourceType::kIpv4:
      return "ipv4";
    case ResourceType::kIpv6:
      return "ipv6";
  }
  return "asn";
}

std::string_view to_string(AllocationStatus status) {
  switch (status) {
    case AllocationStatus::kAllocated:
      return "allocated";
    case AllocationStatus::kAssigned:
      return "assigned";
    case AllocationStatus::kAvailable:
      return "available";
    case AllocationStatus::kReserved:
      return "reserved";
  }
  return "allocated";
}

std::optional<asn::AsnRange> DelegationRecord::asn_range() const {
  if (type != ResourceType::kAsn || count == 0) return std::nullopt;
  const auto first = asn::parse_asn(start);
  if (!first) return std::nullopt;
  const std::uint64_t last = first->value() + count - 1;
  if (last > 0xFFFFFFFFu) return std::nullopt;
  return asn::AsnRange{*first, asn::Asn{static_cast<std::uint32_t>(last)}};
}

std::size_t DelegationFile::record_count(ResourceType type) const {
  return static_cast<std::size_t>(
      std::count_if(records.begin(), records.end(),
                    [type](const auto& r) { return r.type == type; }));
}

DelegationFile parse_delegation_file(std::istream& in,
                                     ParseDiagnostics* diag) {
  DelegationFile file;
  std::string line;
  std::size_t line_number = 0;
  bool saw_version = false;

  while (std::getline(in, line)) {
    ++line_number;
    if (line.empty() || line[0] == '#') continue;
    const auto fields = split_pipe(line);

    if (!saw_version && !fields.empty() && fields[0] == "2") {
      // 2|registry|serial|records|startdate|enddate|UTCoffset
      if (fields.size() < 6) {
        report(diag, line_number, "short version line");
        continue;
      }
      if (const auto reg = parse_registry(fields[1])) file.registry = *reg;
      file.serial = std::string{fields[2]};
      file.start_date = std::string{fields[4]};
      file.end_date = std::string{fields[5]};
      saw_version = true;
      continue;
    }

    if (fields.size() >= 6 && fields[1] == "*") continue;  // summary line

    if (fields.size() < 7) {
      report(diag, line_number, "record with fewer than 7 fields");
      continue;
    }
    DelegationRecord record;
    const auto reg = parse_registry(fields[0]);
    const auto type = parse_type(fields[2]);
    const auto count = parse_u64(fields[4]);
    const auto status = parse_status(fields[6]);
    if (!reg || !type || !count || !status) {
      report(diag, line_number, "unparsable registry/type/count/status");
      continue;
    }
    record.registry = *reg;
    record.country_code = std::string{fields[1]};
    record.type = *type;
    record.start = std::string{fields[3]};
    record.count = *count;
    record.date = std::string{fields[5]};
    record.status = *status;
    if (fields.size() >= 8) record.opaque_id = std::string{fields[7]};

    if (record.type == ResourceType::kAsn && !record.asn_range()) {
      report(diag, line_number, "asn record with invalid range");
      continue;
    }
    file.records.push_back(std::move(record));
  }
  if (!saw_version) report(diag, 0, "missing version line");
  return file;
}

DelegationFile parse_delegation_text(std::string_view text,
                                     ParseDiagnostics* diag) {
  std::istringstream in{std::string{text}};
  return parse_delegation_file(in, diag);
}

void write_delegation_file(const DelegationFile& file, std::ostream& out) {
  out << "2|" << registry_name(file.registry) << '|' << file.serial << '|'
      << file.records.size() << '|' << file.start_date << '|' << file.end_date
      << "|+0000\n";
  for (const auto type :
       {ResourceType::kAsn, ResourceType::kIpv4, ResourceType::kIpv6}) {
    out << registry_name(file.registry) << "|*|" << to_string(type) << "|*|"
        << file.record_count(type) << "|summary\n";
  }
  for (const auto& record : file.records) {
    out << registry_name(record.registry) << '|' << record.country_code << '|'
        << to_string(record.type) << '|' << record.start << '|' << record.count
        << '|' << record.date << '|' << to_string(record.status);
    if (!record.opaque_id.empty()) out << '|' << record.opaque_id;
    out << '\n';
  }
}

std::string to_text(const DelegationFile& file) {
  std::ostringstream out;
  write_delegation_file(file, out);
  return out.str();
}

}  // namespace asrel::rir
