#include "rir/region_mapper.hpp"

#include <algorithm>

#include "rir/iana_table.hpp"

namespace asrel::rir {

std::size_t RegionMapper::apply(const DelegationFile& file) {
  return apply(std::span{file.records});
}

std::size_t RegionMapper::apply(std::span<const DelegationRecord> records) {
  std::size_t changed = 0;
  for (const auto& record : records) {
    if (record.type != ResourceType::kAsn) continue;
    if (record.status == AllocationStatus::kAvailable ||
        record.status == AllocationStatus::kReserved) {
      continue;
    }
    const auto range = record.asn_range();
    if (!range) continue;
    for (std::uint64_t v = range->first.value(); v <= range->last.value();
         ++v) {
      const asn::Asn asn{static_cast<std::uint32_t>(v)};
      if (asn::is_reserved(asn)) continue;
      auto& entry = refined_[asn];
      entry.region = record.registry;
      entry.country = record.country_code;
      if (record.registry != iana_region_of(asn)) ++changed;
    }
  }
  return changed;
}

Region RegionMapper::region_of(asn::Asn asn) const {
  if (asn::is_reserved(asn)) return Region::kUnknown;
  if (const auto it = refined_.find(asn); it != refined_.end()) {
    return it->second.region;
  }
  return iana_region_of(asn);
}

std::string RegionMapper::country_of(asn::Asn asn) const {
  if (const auto it = refined_.find(asn); it != refined_.end()) {
    return it->second.country;
  }
  return "ZZ";
}

std::vector<asn::Asn> RegionMapper::transferred_asns() const {
  std::vector<asn::Asn> out;
  for (const auto& [asn, entry] : refined_) {
    if (entry.region != iana_region_of(asn)) out.push_back(asn);
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace asrel::rir
