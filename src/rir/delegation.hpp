// RIR "delegated-extended" statistics files: record model, parser, writer.
//
// Format (one record per line, pipe-separated):
//   registry|cc|type|start|value|date|status[|opaque-id]
// preceded by a version line
//   2|registry|serial|records|startdate|enddate|UTCoffset
// and per-type summary lines
//   registry|*|type|*|count|summary
// Comment lines start with '#'. This matches the files published at
// ftp.{arin,apnic,lacnic,afrinic,ripe}.net that the paper uses to refine its
// ASN -> region mapping (§5).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "asn/asn.hpp"
#include "netbase/ip.hpp"
#include "rir/region.hpp"

namespace asrel::rir {

enum class ResourceType : std::uint8_t { kAsn, kIpv4, kIpv6 };

enum class AllocationStatus : std::uint8_t {
  kAllocated,
  kAssigned,
  kAvailable,
  kReserved,
};

[[nodiscard]] std::string_view to_string(ResourceType type);
[[nodiscard]] std::string_view to_string(AllocationStatus status);

/// One delegation record. For ASN records, `start` is the first ASN and
/// `count` the number of consecutive ASNs. For IPv4, `start` is the first
/// address and `count` the number of addresses; for IPv6, `count` is the
/// prefix length.
struct DelegationRecord {
  Region registry = Region::kUnknown;
  std::string country_code;  // ISO 3166-1 alpha-2, or "ZZ"
  ResourceType type = ResourceType::kAsn;
  std::string start;  // textual, as in the file
  std::uint64_t count = 0;
  std::string date;  // YYYYMMDD, empty for available/reserved
  AllocationStatus status = AllocationStatus::kAllocated;
  std::string opaque_id;

  /// For ASN records: the covered range. nullopt for non-ASN records or
  /// unparsable starts.
  [[nodiscard]] std::optional<asn::AsnRange> asn_range() const;
};

/// A parsed delegation file: header plus records, in file order.
struct DelegationFile {
  Region registry = Region::kUnknown;
  std::string serial;     // YYYYMMDD
  std::string start_date; // coverage window
  std::string end_date;
  std::vector<DelegationRecord> records;

  [[nodiscard]] std::size_t record_count(ResourceType type) const;
};

/// Errors are collected (line number + message) rather than thrown so a
/// single malformed line cannot discard an otherwise usable file — matching
/// how real consumers treat these (frequently slightly broken) files.
struct ParseDiagnostics {
  struct Issue {
    std::size_t line;
    std::string message;
  };
  std::vector<Issue> issues;
  [[nodiscard]] bool ok() const { return issues.empty(); }
};

[[nodiscard]] DelegationFile parse_delegation_file(std::istream& in,
                                                   ParseDiagnostics* diag);
[[nodiscard]] DelegationFile parse_delegation_text(std::string_view text,
                                                   ParseDiagnostics* diag);

/// Serializes with version and summary lines, in the official layout.
void write_delegation_file(const DelegationFile& file, std::ostream& out);
[[nodiscard]] std::string to_text(const DelegationFile& file);

}  // namespace asrel::rir
