// Regional Internet Registry service regions and their paper abbreviations.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace asrel::rir {

/// The five RIR service regions plus a sentinel for unmapped/reserved ASNs.
enum class Region : std::uint8_t {
  kAfrinic,
  kApnic,
  kArin,
  kLacnic,
  kRipe,
  kUnknown,
};

inline constexpr std::array<Region, 5> kAllRegions{
    Region::kAfrinic, Region::kApnic, Region::kArin, Region::kLacnic,
    Region::kRipe};

/// Full registry name as used in delegation files ("afrinic", "ripencc", ...).
[[nodiscard]] std::string_view registry_name(Region region);

/// The paper's abbreviation (Fig. 1): AF, AP, AR, L, R; "?" for unknown.
[[nodiscard]] std::string_view abbreviation(Region region);

/// Inverse of registry_name; accepts both "ripencc" and "ripe".
[[nodiscard]] std::optional<Region> parse_registry(std::string_view name);

}  // namespace asrel::rir
