// RPSL aut-num objects (RFC 2622): model, parser, writer, and the classic
// import/export-policy heuristic for recovering AS relationships.
//
// WHOIS/IRR autnum records were one of Luckie et al.'s three validation
// sources (§3.2). They are added and maintained voluntarily, so records go
// stale — a failure mode the synthesizer below reproduces and the paper
// explicitly warns about.
#pragma once

#include <iosfwd>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "asn/asn.hpp"
#include "topology/rel_type.hpp"

namespace asrel::rpsl {

/// One `import:` or `export:` policy line, reduced to the parts the
/// relationship heuristic needs.
struct PolicyLine {
  enum class Direction : std::uint8_t { kImport, kExport };
  Direction direction = Direction::kImport;
  asn::Asn peer;          ///< the AS after "from"/"to"
  std::string filter;     ///< what is accepted/announced ("ANY", "AS-FOO", ...)
};

struct AutNum {
  asn::Asn asn;
  std::string as_name;
  std::vector<PolicyLine> policies;
  std::string mnt_by;
  std::string changed;  ///< YYYYMMDD of last maintenance
  std::string source;   ///< IRR database name, e.g. "RADB"
};

/// Parses a stream of RPSL objects separated by blank lines. Unknown
/// attributes are skipped; objects without a valid aut-num line are dropped.
[[nodiscard]] std::vector<AutNum> parse_autnums(std::istream& in);
[[nodiscard]] std::vector<AutNum> parse_autnums_text(std::string_view text);

void write_autnum(const AutNum& object, std::ostream& out);
[[nodiscard]] std::string to_text(const std::vector<AutNum>& objects);

/// A relationship recovered from one autnum's policy pair with a neighbor.
struct RpslRelationship {
  asn::Asn subject;   ///< the aut-num owner
  asn::Asn neighbor;
  /// Relationship from the subject's perspective: kP2C means "subject is the
  /// provider of neighbor".
  topo::RelType rel = topo::RelType::kP2P;
  bool subject_is_provider = false;  ///< valid when rel == kP2C
};

/// Di Battista-style heuristic over one object's policies:
///  * import from N accept ANY            -> N is subject's provider
///  * export to   N announce ANY          -> N is subject's customer
///  * symmetric restricted import/export  -> peering
/// Lines that reference a neighbor only once (import or export but not both)
/// are ignored as underspecified.
[[nodiscard]] std::vector<RpslRelationship> extract_relationships(
    const AutNum& object);

}  // namespace asrel::rpsl
