#include "rpsl/synthesize.hpp"

#include <algorithm>
#include <string>

#include "topology/random.hpp"

namespace asrel::rpsl {

namespace {

using asn::Asn;
using topo::Neighbor;
using topo::RelType;

void append_policies(AutNum& object, Asn neighbor, RelType rel,
                     bool subject_is_provider) {
  const std::string peer = std::to_string(neighbor.value());
  const std::string own_set = "AS-SET" + std::to_string(object.asn.value());
  PolicyLine import;
  import.direction = PolicyLine::Direction::kImport;
  import.peer = neighbor;
  PolicyLine exported;
  exported.direction = PolicyLine::Direction::kExport;
  exported.peer = neighbor;

  switch (rel) {
    case RelType::kP2C:
      if (subject_is_provider) {
        import.filter = "AS" + peer;      // accept the customer's routes
        exported.filter = "ANY";          // give them a full table
      } else {
        import.filter = "ANY";            // take a full table
        exported.filter = own_set;        // announce own cone
      }
      break;
    case RelType::kP2P:
      import.filter = "AS" + peer;
      exported.filter = own_set;
      break;
    case RelType::kS2S:
      import.filter = "ANY";
      exported.filter = "ANY";
      break;
  }
  object.policies.push_back(std::move(import));
  object.policies.push_back(std::move(exported));
}

}  // namespace

std::vector<AutNum> synthesize_irr(const topo::World& world,
                                   const IrrParams& params) {
  topo::Rng rng{params.seed};
  std::vector<AutNum> objects;
  const std::vector<Asn> all_nodes(world.graph.nodes().begin(),
                                   world.graph.nodes().end());

  for (const Asn asn : world.graph.nodes()) {
    const auto& attrs = world.attrs.at(asn);
    if (!attrs.maintains_rpsl) continue;

    AutNum object;
    object.asn = asn;
    object.as_name = "AS" + std::to_string(asn.value()) + "-NET";
    object.mnt_by = "MNT-" + std::to_string(asn.value());
    object.source = "RADB";

    const bool stale = rng.chance(params.stale_fraction);
    object.changed = stale ? "20120214" : "20180301";

    const auto node = world.graph.node_of(asn);
    for (const auto& nb : world.graph.neighbors(*node)) {
      const Asn neighbor = world.graph.asn_of(nb.node);
      RelType rel;
      bool subject_is_provider = false;
      switch (nb.role) {
        case Neighbor::Role::kProvider:
          rel = RelType::kP2C;
          subject_is_provider = true;
          break;
        case Neighbor::Role::kCustomer:
          rel = RelType::kP2C;
          break;
        case Neighbor::Role::kPeer:
          rel = RelType::kP2P;
          break;
        case Neighbor::Role::kSibling:
          rel = RelType::kS2S;
          break;
        default:
          continue;
      }
      if (stale && rng.chance(params.stale_flip)) {
        // The record predates a relationship change.
        if (rel == RelType::kP2P) {
          rel = RelType::kP2C;
          subject_is_provider = rng.chance(0.5);
        } else if (rel == RelType::kP2C) {
          rel = RelType::kP2P;
        }
      }
      append_policies(object, neighbor, rel, subject_is_provider);
    }
    if (stale && rng.chance(params.ghost_neighbor)) {
      // A neighbor that was disconnected years ago but never cleaned up.
      const Asn ghost = rng.pick(all_nodes);
      if (!world.graph.find_edge(asn, ghost) && ghost != asn) {
        append_policies(object, ghost, RelType::kP2C, true);
      }
    }
    objects.push_back(std::move(object));
  }
  return objects;
}

}  // namespace asrel::rpsl
