#include "rpsl/autnum.hpp"

#include <algorithm>
#include <cctype>
#include <istream>
#include <map>
#include <ostream>
#include <sstream>

namespace asrel::rpsl {

namespace {

std::string_view trim(std::string_view text) {
  while (!text.empty() && std::isspace(static_cast<unsigned char>(text.front())))
    text.remove_prefix(1);
  while (!text.empty() && std::isspace(static_cast<unsigned char>(text.back())))
    text.remove_suffix(1);
  return text;
}

bool iequals(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

/// Parses "from AS3356 accept ANY" / "to AS3356 announce AS-FOO".
std::optional<PolicyLine> parse_policy(PolicyLine::Direction direction,
                                       std::string_view body) {
  std::vector<std::string_view> tokens;
  while (!body.empty()) {
    body = trim(body);
    const auto space = body.find_first_of(" \t");
    if (space == std::string_view::npos) {
      if (!body.empty()) tokens.push_back(body);
      break;
    }
    tokens.push_back(body.substr(0, space));
    body.remove_prefix(space + 1);
  }
  const std::string_view peer_keyword =
      direction == PolicyLine::Direction::kImport ? "from" : "to";
  const std::string_view filter_keyword =
      direction == PolicyLine::Direction::kImport ? "accept" : "announce";

  PolicyLine line;
  line.direction = direction;
  bool have_peer = false;
  for (std::size_t i = 0; i + 1 < tokens.size(); ++i) {
    if (iequals(tokens[i], peer_keyword)) {
      const auto asn = asn::parse_asn(tokens[i + 1]);
      if (!asn) return std::nullopt;
      line.peer = *asn;
      have_peer = true;
    } else if (iequals(tokens[i], filter_keyword)) {
      line.filter = std::string{tokens[i + 1]};
    }
  }
  // "accept"/"announce" may also be the last token's predecessor; a missing
  // filter makes the line useless for the heuristic.
  if (!have_peer || line.filter.empty()) return std::nullopt;
  return line;
}

}  // namespace

std::vector<AutNum> parse_autnums(std::istream& in) {
  std::vector<AutNum> objects;
  AutNum current;
  bool in_object = false;

  const auto flush = [&] {
    if (in_object && current.asn.value() != 0) {
      objects.push_back(std::move(current));
    }
    current = AutNum{};
    in_object = false;
  };

  std::string line;
  while (std::getline(in, line)) {
    const auto trimmed = trim(line);
    if (trimmed.empty()) {
      flush();
      continue;
    }
    if (trimmed.front() == '#' || trimmed.front() == '%') continue;
    const auto colon = trimmed.find(':');
    if (colon == std::string_view::npos) continue;
    const auto key = trim(trimmed.substr(0, colon));
    const auto value = trim(trimmed.substr(colon + 1));

    if (iequals(key, "aut-num")) {
      flush();
      const auto asn = asn::parse_asn(value);
      if (asn) {
        current.asn = *asn;
        in_object = true;
      }
    } else if (!in_object) {
      continue;
    } else if (iequals(key, "as-name")) {
      current.as_name = std::string{value};
    } else if (iequals(key, "import")) {
      if (auto policy = parse_policy(PolicyLine::Direction::kImport, value)) {
        current.policies.push_back(std::move(*policy));
      }
    } else if (iequals(key, "export")) {
      if (auto policy = parse_policy(PolicyLine::Direction::kExport, value)) {
        current.policies.push_back(std::move(*policy));
      }
    } else if (iequals(key, "mnt-by")) {
      current.mnt_by = std::string{value};
    } else if (iequals(key, "changed")) {
      current.changed = std::string{value};
    } else if (iequals(key, "source")) {
      current.source = std::string{value};
    }
  }
  flush();
  return objects;
}

std::vector<AutNum> parse_autnums_text(std::string_view text) {
  std::istringstream in{std::string{text}};
  return parse_autnums(in);
}

void write_autnum(const AutNum& object, std::ostream& out) {
  out << "aut-num:        AS" << object.asn.value() << '\n';
  if (!object.as_name.empty()) out << "as-name:        " << object.as_name
                                   << '\n';
  for (const auto& policy : object.policies) {
    if (policy.direction == PolicyLine::Direction::kImport) {
      out << "import:         from AS" << policy.peer.value() << " accept "
          << policy.filter << '\n';
    } else {
      out << "export:         to AS" << policy.peer.value() << " announce "
          << policy.filter << '\n';
    }
  }
  if (!object.mnt_by.empty()) out << "mnt-by:         " << object.mnt_by
                                  << '\n';
  if (!object.changed.empty()) out << "changed:        " << object.changed
                                   << '\n';
  if (!object.source.empty()) out << "source:         " << object.source
                                  << '\n';
  out << '\n';
}

std::string to_text(const std::vector<AutNum>& objects) {
  std::ostringstream out;
  for (const auto& object : objects) write_autnum(object, out);
  return out.str();
}

std::vector<RpslRelationship> extract_relationships(const AutNum& object) {
  struct Pair {
    std::optional<std::string> import_filter;
    std::optional<std::string> export_filter;
  };
  std::map<asn::Asn, Pair> by_peer;  // ordered: deterministic output
  for (const auto& policy : object.policies) {
    auto& pair = by_peer[policy.peer];
    if (policy.direction == PolicyLine::Direction::kImport) {
      pair.import_filter = policy.filter;
    } else {
      pair.export_filter = policy.filter;
    }
  }

  const auto is_any = [](const std::string& filter) {
    return iequals(filter, "ANY") || iequals(filter, "AS-ANY");
  };

  std::vector<RpslRelationship> out;
  for (const auto& [peer, pair] : by_peer) {
    if (!pair.import_filter || !pair.export_filter) continue;
    RpslRelationship rel;
    rel.subject = object.asn;
    rel.neighbor = peer;
    const bool imports_any = is_any(*pair.import_filter);
    const bool exports_any = is_any(*pair.export_filter);
    if (imports_any && !exports_any) {
      // Subject takes a full table from the neighbor: neighbor provides.
      rel.rel = topo::RelType::kP2C;
      rel.subject_is_provider = false;
    } else if (!imports_any && exports_any) {
      // Subject gives a full table: subject provides.
      rel.rel = topo::RelType::kP2C;
      rel.subject_is_provider = true;
    } else if (!imports_any && !exports_any) {
      rel.rel = topo::RelType::kP2P;
    } else {
      // ANY in both directions: mutual transit, typical of siblings.
      rel.rel = topo::RelType::kS2S;
    }
    out.push_back(rel);
  }
  return out;
}

}  // namespace asrel::rpsl
