// Synthesizes an IRR database (a pile of aut-num objects) from the
// ground-truth world, including the real-world failure modes: only ASes that
// maintain RPSL have objects, and a fraction of objects is stale — they
// still describe relationships that have since changed or disappeared.
#pragma once

#include <cstdint>
#include <vector>

#include "rpsl/autnum.hpp"
#include "topology/generator.hpp"

namespace asrel::rpsl {

struct IrrParams {
  std::uint64_t seed = 1337;
  /// Probability that a maintained object is stale.
  double stale_fraction = 0.12;
  /// Within a stale object: chance per neighbor that the recorded
  /// relationship is the outdated one (P2C recorded as P2P or vice versa).
  double stale_flip = 0.3;
  /// Chance that a stale object lists a neighbor that no longer exists.
  double ghost_neighbor = 0.25;
};

/// One object per AS with `maintains_rpsl`; policies derived from the
/// ground-truth edges. Deterministic in (world, params).
[[nodiscard]] std::vector<AutNum> synthesize_irr(const topo::World& world,
                                                 const IrrParams& params);

}  // namespace asrel::rpsl
