#include "validation/cleaner.hpp"

#include <unordered_set>

namespace asrel::val {

std::vector<CleanLabel> clean(const ValidationSet& raw,
                              const org::OrgMap& orgs,
                              const CleaningOptions& options,
                              CleaningStats* stats) {
  CleaningStats local;
  local.input_entries = raw.size();
  std::vector<CleanLabel> out;
  std::unordered_set<std::uint32_t> multi_label_asns;

  for (const auto& entry : raw.entries()) {
    const auto& link = entry.link;

    if (options.drop_spurious) {
      if (link.a == asn::kAsTrans || link.b == asn::kAsTrans) {
        ++local.as_trans_removed;
        continue;
      }
      if (asn::is_reserved(link.a) || asn::is_reserved(link.b)) {
        ++local.reserved_removed;
        continue;
      }
    }
    if (options.drop_siblings && orgs.are_siblings(link.a, link.b)) {
      ++local.sibling_removed;
      continue;
    }

    // Distinct assertions, in first-seen order.
    std::vector<Label> assertions;
    for (const auto& label : entry.labels) {
      bool seen = false;
      for (const auto& prior : assertions) {
        if (prior.same_assertion(label)) {
          seen = true;
          break;
        }
      }
      if (!seen) assertions.push_back(label);
    }

    Label chosen = assertions.front();
    if (assertions.size() > 1) {
      ++local.multi_label_entries;
      multi_label_asns.insert(link.a.value());
      multi_label_asns.insert(link.b.value());
      switch (options.ambiguity) {
        case AmbiguityPolicy::kIgnore:
          continue;
        case AmbiguityPolicy::kFirstP2PWins:
          if (assertions.front().rel != topo::RelType::kP2P) {
            // "otherwise as P2C": find a P2C assertion.
            for (const auto& label : assertions) {
              if (label.rel == topo::RelType::kP2C) {
                chosen = label;
                break;
              }
            }
          }
          break;
        case AmbiguityPolicy::kAlwaysP2C:
          chosen.rel = topo::RelType::kS2S;  // sentinel: not found yet
          for (const auto& label : assertions) {
            if (label.rel == topo::RelType::kP2C) {
              chosen = label;
              break;
            }
          }
          if (chosen.rel == topo::RelType::kS2S) chosen = assertions.front();
          break;
      }
    }

    if (chosen.rel == topo::RelType::kS2S) {
      ++local.s2s_label_removed;
      continue;
    }
    CleanLabel record;
    record.link = link;
    record.rel = chosen.rel;
    record.provider = chosen.provider;
    out.push_back(record);
    ++local.kept;
  }
  local.multi_label_ases = multi_label_asns.size();
  if (stats != nullptr) *stats = local;
  return out;
}

}  // namespace asrel::val
