#include "validation/sources.hpp"

#include "topology/random.hpp"

namespace asrel::val {

ValidationSet extract_from_rpsl(const std::vector<rpsl::AutNum>& objects,
                                bool require_agreement) {
  // First pass: gather each side's assertions.
  struct Assertion {
    asn::Asn subject;
    Label label;
  };
  std::unordered_map<AsLink, std::vector<Assertion>> by_link;
  for (const auto& object : objects) {
    for (const auto& rel : rpsl::extract_relationships(object)) {
      Label label;
      label.source = Source::kRpsl;
      label.rel = rel.rel;
      if (rel.rel == topo::RelType::kP2C) {
        label.provider = rel.subject_is_provider ? rel.subject : rel.neighbor;
      }
      by_link[AsLink{rel.subject, rel.neighbor}].push_back(
          {rel.subject, label});
    }
  }

  // Second pass in deterministic order.
  std::vector<AsLink> links;
  links.reserve(by_link.size());
  for (const auto& [link, assertions] : by_link) links.push_back(link);
  std::sort(links.begin(), links.end());

  ValidationSet set;
  for (const auto& link : links) {
    const auto& assertions = by_link[link];
    if (require_agreement) {
      bool all_agree = true;
      for (std::size_t i = 1; i < assertions.size(); ++i) {
        if (!assertions[i].label.same_assertion(assertions[0].label)) {
          all_agree = false;
          break;
        }
      }
      if (!all_agree || assertions.size() < 2) continue;
      set.add(link, assertions[0].label);
    } else {
      for (const auto& assertion : assertions) set.add(link, assertion.label);
    }
  }
  return set;
}

ValidationSet collect_direct_reports(const topo::World& world,
                                     const DirectReportParams& params) {
  topo::Rng rng{params.seed};
  ValidationSet set;
  for (const asn::Asn asn : world.graph.nodes()) {
    const auto& attrs = world.attrs.at(asn);
    if (!attrs.attends_meetings) continue;
    const auto node = world.graph.node_of(asn);
    for (const auto& nb : world.graph.neighbors(*node)) {
      if (!rng.chance(params.report_fraction)) continue;
      const asn::Asn neighbor = world.graph.asn_of(nb.node);
      Label label;
      label.source = Source::kDirectReport;
      switch (nb.role) {
        case topo::Neighbor::Role::kProvider:
          label.rel = topo::RelType::kP2C;
          label.provider = asn;
          break;
        case topo::Neighbor::Role::kCustomer:
          label.rel = topo::RelType::kP2C;
          label.provider = neighbor;
          break;
        case topo::Neighbor::Role::kPeer:
          label.rel = topo::RelType::kP2P;
          break;
        case topo::Neighbor::Role::kSibling:
          label.rel = topo::RelType::kS2S;
          break;
      }
      if (rng.chance(params.error_rate)) {
        // Misreport: flip P2P <-> P2C.
        if (label.rel == topo::RelType::kP2P) {
          label.rel = topo::RelType::kP2C;
          label.provider = rng.chance(0.5) ? asn : neighbor;
        } else if (label.rel == topo::RelType::kP2C) {
          label.rel = topo::RelType::kP2P;
        }
      }
      set.add(AsLink{asn, neighbor}, label);
    }
  }
  return set;
}

}  // namespace asrel::val
