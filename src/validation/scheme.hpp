// Per-AS BGP community conventions.
//
// Every transit network tags routes at ingress with informational
// communities that encode the relationship with the sending neighbor; only
// some networks *publish* what their values mean (IRR remarks, websites).
// Published schemes are what the Luckie-style extractor can decode — and
// whether a network publishes is exactly where the paper's regional/
// topological validation bias comes from.
//
// Classic communities only carry a 16-bit key, so a scheme's key is the low
// 16 bits of the owner's ASN. Two ASes can therefore collide on the same
// key (e.g. AS5 and AS196613), and one AS's "blackhole" value can be
// another's "peer route" (the 3356:666 example in §3.2): the directory
// exposes these ambiguities instead of hiding them.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

#include "asn/asn.hpp"
#include "bgp/community.hpp"
#include "topology/generator.hpp"
#include "topology/rel_type.hpp"

namespace asrel::val {

/// What an ingress tag means, from the tagging AS's point of view.
enum class TagMeaning : std::uint8_t {
  kFromCustomer,
  kFromPeer,
  kFromProvider,
  kBlackhole,  ///< action community, not a relationship statement
};

struct CommunityScheme {
  asn::Asn owner;
  std::uint16_t key = 0;  ///< low 16 bits of owner ASN
  std::uint16_t customer_value = 0;
  std::uint16_t peer_value = 0;
  std::uint16_t provider_value = 0;
  bool published = false;  ///< decodable by the validation extractor

  [[nodiscard]] bgp::Community tag_for(TagMeaning meaning) const;
  [[nodiscard]] std::optional<TagMeaning> meaning_of(
      bgp::Community community) const;
};

/// The action community a provider honors as "do not export to peers"
/// (the 174:990 analogue from §6.1).
[[nodiscard]] bgp::Community no_export_to_peers_community(asn::Asn provider);

/// All schemes of a world plus lookup by community key.
class SchemeDirectory {
 public:
  /// Builds schemes for every transit-like AS. Which ASes publish follows
  /// their `documents_communities` attribute. Value styles are drawn
  /// deterministically; a small fraction uses 666 as its peer value,
  /// colliding with the well-known blackhole meaning.
  static SchemeDirectory build(const topo::World& world, std::uint64_t seed);

  [[nodiscard]] const CommunityScheme* scheme_of(asn::Asn owner) const;

  /// All schemes whose key matches the community's high 16 bits
  /// (allocation-free; indices into the directory).
  [[nodiscard]] std::span<const std::size_t> key_matches(
      std::uint16_t key) const;
  [[nodiscard]] const CommunityScheme& scheme_at(std::size_t index) const {
    return schemes_[index];
  }

  /// Convenience wrapper over key_matches for tests and tooling.
  [[nodiscard]] std::vector<const CommunityScheme*> schemes_for_key(
      std::uint16_t key) const;

  [[nodiscard]] std::size_t size() const { return schemes_.size(); }
  [[nodiscard]] std::size_t published_count() const;

  auto begin() const { return schemes_.begin(); }
  auto end() const { return schemes_.end(); }

 private:
  std::vector<CommunityScheme> schemes_;
  std::unordered_map<asn::Asn, std::size_t> by_owner_;
  std::unordered_map<std::uint16_t, std::vector<std::size_t>> by_key_;
};

}  // namespace asrel::val
