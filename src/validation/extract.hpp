// Luckie-style compilation of validation data from BGP communities (§3.2).
//
// The extractor walks every collector-observed AS path, reconstructs which
// informational ingress tags would still be attached when the route reaches
// the collector (each traversed AS may strip communities), decodes the
// surviving tags against the *published* community schemes, and turns each
// decoded tag into a relationship label for the tagged link.
//
// Coverage bias is emergent: a link can only be validated if (a) one of its
// endpoints publishes its scheme, (b) a route crossing the link reaches a
// collector, and (c) no AS between the tagger and the collector strips
// communities. Nothing here reads the ground-truth relationship of a link
// to decide whether to cover it.
#pragma once

#include <cstdint>

#include "bgp/propagation.hpp"
#include "validation/label.hpp"
#include "validation/scheme.hpp"

namespace asrel::val {

struct ExtractParams {
  std::uint64_t salt = 0xC0FFEEull;
  /// Chance that a published scheme's documentation is outdated for one
  /// particular neighbor, yielding a wrong label (the paper's §6.1 found
  /// exactly one such case in the Cogent study).
  double stale_documentation = 0.002;
  /// Worker count for the per-origin path scan (0 = hardware concurrency,
  /// 1 = serial). The resulting set is byte-identical for every setting:
  /// origin chunks are merged back in origin order, replaying the exact
  /// serial add() sequence.
  unsigned threads = 0;
};

struct ExtractStats {
  std::size_t paths_scanned = 0;
  std::size_t tags_attached = 0;
  std::size_t tags_survived = 0;
  std::size_t tags_decoded = 0;
  std::size_t ambiguous_keys_skipped = 0;
};

/// Runs the extraction over every path. Returns entries in deterministic
/// (path-scan) order.
[[nodiscard]] ValidationSet extract_from_communities(
    const bgp::Propagator& propagator, const bgp::PathTable& paths,
    const SchemeDirectory& schemes, const ExtractParams& params,
    ExtractStats* stats = nullptr);

}  // namespace asrel::val
