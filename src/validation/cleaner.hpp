// §4.2 "Label Quality & Treatment": spurious-label removal, ambiguous
// (multi-label) entry policies, and sibling filtering.
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>
#include <vector>

#include "org/as2org.hpp"
#include "validation/label.hpp"

namespace asrel::val {

/// How entries with multiple, conflicting labels are treated. The paper
/// shows the choice silently differs between published works: kFirstP2PWins
/// reproduces the TopoScope counts, kAlwaysP2C the ProbLink counts, and
/// kIgnore is what the paper argues for.
enum class AmbiguityPolicy : std::uint8_t {
  kIgnore,        ///< drop multi-label entries entirely
  kFirstP2PWins,  ///< P2P if the entry starts with a P2P label, else P2C
  kAlwaysP2C,     ///< any conflicting entry becomes P2C
};

[[nodiscard]] constexpr std::string_view to_string(AmbiguityPolicy policy) {
  switch (policy) {
    case AmbiguityPolicy::kIgnore:
      return "ignore";
    case AmbiguityPolicy::kFirstP2PWins:
      return "first-p2p-wins";
    case AmbiguityPolicy::kAlwaysP2C:
      return "always-p2c";
  }
  return "?";
}

/// A cleaned, single-label validation record ready for metric computation.
struct CleanLabel {
  AsLink link;
  topo::RelType rel = topo::RelType::kP2P;  // kP2C or kP2P only
  asn::Asn provider;                        // valid when rel == kP2C

  friend bool operator==(const CleanLabel&, const CleanLabel&) = default;
};

struct CleaningStats {
  std::size_t input_entries = 0;
  std::size_t as_trans_removed = 0;     // paper: 15
  std::size_t reserved_removed = 0;     // paper: 112
  std::size_t multi_label_entries = 0;  // paper: 246
  std::size_t multi_label_ases = 0;     // paper: 233
  std::size_t sibling_removed = 0;      // paper: 210
  std::size_t s2s_label_removed = 0;
  std::size_t kept = 0;
};

struct CleaningOptions {
  AmbiguityPolicy ambiguity = AmbiguityPolicy::kIgnore;
  bool drop_siblings = true;   ///< use as2org to remove sibling links
  bool drop_spurious = true;   ///< AS_TRANS + reserved ASNs
};

/// Applies the §4.2 treatment. Deterministic; output in input entry order.
[[nodiscard]] std::vector<CleanLabel> clean(const ValidationSet& raw,
                                            const org::OrgMap& orgs,
                                            const CleaningOptions& options,
                                            CleaningStats* stats = nullptr);

}  // namespace asrel::val
