// The two secondary validation sources of Luckie et al. (§3.2): WHOIS/IRR
// RPSL policies and directly reported relationships. Recent validation
// efforts (ProbLink, TopoScope) dropped both and rely on communities only;
// keeping them implemented lets the benches ablate that choice.
#pragma once

#include <cstdint>
#include <vector>

#include "rpsl/autnum.hpp"
#include "topology/generator.hpp"
#include "validation/label.hpp"

namespace asrel::val {

/// Converts IRR autnum objects into validation labels. Only relationships
/// asserted by *both* sides (or asserted by one side with no contradiction)
/// are kept when `require_agreement` is set.
[[nodiscard]] ValidationSet extract_from_rpsl(
    const std::vector<rpsl::AutNum>& objects, bool require_agreement = false);

struct DirectReportParams {
  std::uint64_t seed = 4711;
  /// Fraction of an attending operator's relationships it reports.
  double report_fraction = 0.25;
  /// Operators occasionally misreport (fat fingers, stale memory).
  double error_rate = 0.005;
};

/// Operators that attend meetings report a sample of their relationships
/// through the web interface / hallway-track channel.
[[nodiscard]] ValidationSet collect_direct_reports(
    const topo::World& world, const DirectReportParams& params);

}  // namespace asrel::val
