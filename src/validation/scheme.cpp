#include "validation/scheme.hpp"

#include "topology/random.hpp"

namespace asrel::val {

bgp::Community CommunityScheme::tag_for(TagMeaning meaning) const {
  switch (meaning) {
    case TagMeaning::kFromCustomer:
      return {key, customer_value};
    case TagMeaning::kFromPeer:
      return {key, peer_value};
    case TagMeaning::kFromProvider:
      return {key, provider_value};
    case TagMeaning::kBlackhole:
      return {key, 666};
  }
  return {key, 0};
}

std::optional<TagMeaning> CommunityScheme::meaning_of(
    bgp::Community community) const {
  if (community.high() != key) return std::nullopt;
  if (community.low() == customer_value) return TagMeaning::kFromCustomer;
  if (community.low() == peer_value) return TagMeaning::kFromPeer;
  if (community.low() == provider_value) return TagMeaning::kFromProvider;
  return std::nullopt;
}

bgp::Community no_export_to_peers_community(asn::Asn provider) {
  return {static_cast<std::uint16_t>(provider.value() & 0xFFFFu), 990};
}

SchemeDirectory SchemeDirectory::build(const topo::World& world,
                                       std::uint64_t seed) {
  topo::Rng rng{seed};
  SchemeDirectory directory;

  // Common value styles seen in the wild.
  struct Style {
    std::uint16_t customer, peer, provider;
  };
  static constexpr Style kStyles[] = {
      {1000, 2000, 3000}, {100, 200, 300},   {3001, 3002, 3003},
      {110, 120, 130},    {65101, 65102, 65103},
  };
  // The ambiguous style: peer routes tagged with 666 (the paper's 3356:666
  // example — same value the blackhole convention uses).
  static constexpr Style kAmbiguous{1000, 666, 3000};

  for (const asn::Asn asn : world.graph.nodes()) {
    const auto& attrs = world.attrs.at(asn);
    const bool transit_like =
        attrs.tier != topo::Tier::kStub || attrs.hypergiant;
    // Nearly all transit networks run ingress tagging internally; stubs
    // rarely bother.
    const double uses = transit_like ? 0.9 : 0.1;
    if (!rng.chance(uses)) continue;

    CommunityScheme scheme;
    scheme.owner = asn;
    scheme.key = static_cast<std::uint16_t>(asn.value() & 0xFFFFu);
    const Style& style =
        rng.chance(0.04) ? kAmbiguous
                         : kStyles[rng.below(std::size(kStyles))];
    scheme.customer_value = style.customer;
    scheme.peer_value = style.peer;
    scheme.provider_value = style.provider;
    scheme.published = attrs.documents_communities;

    directory.by_owner_.emplace(asn, directory.schemes_.size());
    directory.by_key_[scheme.key].push_back(directory.schemes_.size());
    directory.schemes_.push_back(scheme);
  }
  return directory;
}

const CommunityScheme* SchemeDirectory::scheme_of(asn::Asn owner) const {
  const auto it = by_owner_.find(owner);
  return it == by_owner_.end() ? nullptr : &schemes_[it->second];
}

std::span<const std::size_t> SchemeDirectory::key_matches(
    std::uint16_t key) const {
  const auto it = by_key_.find(key);
  if (it == by_key_.end()) return {};
  return it->second;
}

std::vector<const CommunityScheme*> SchemeDirectory::schemes_for_key(
    std::uint16_t key) const {
  std::vector<const CommunityScheme*> out;
  for (const auto index : key_matches(key)) out.push_back(&schemes_[index]);
  return out;
}

std::size_t SchemeDirectory::published_count() const {
  std::size_t count = 0;
  for (const auto& scheme : schemes_) count += scheme.published ? 1 : 0;
  return count;
}

}  // namespace asrel::val
