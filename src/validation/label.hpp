// Validation-data model: links, labels, sources, and the multi-label
// ValidationSet the extractors fill.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "asn/asn.hpp"
#include "topology/rel_type.hpp"

namespace asrel::val {

/// An undirected AS link, canonicalized to a < b.
struct AsLink {
  asn::Asn a;
  asn::Asn b;

  AsLink() = default;
  AsLink(asn::Asn x, asn::Asn y) : a(x < y ? x : y), b(x < y ? y : x) {}

  friend constexpr auto operator<=>(const AsLink&, const AsLink&) = default;
};

/// Where a validation label came from (§3.2: Luckie et al.'s three sources).
enum class Source : std::uint8_t {
  kCommunities,   ///< decoded from published BGP community schemes
  kRpsl,          ///< WHOIS autnum import/export policies
  kDirectReport,  ///< reported by an operator
};

[[nodiscard]] constexpr std::string_view to_string(Source source) {
  switch (source) {
    case Source::kCommunities:
      return "communities";
    case Source::kRpsl:
      return "rpsl";
    case Source::kDirectReport:
      return "direct";
  }
  return "?";
}

/// One label for a link. For kP2C, `provider` names the provider side.
struct Label {
  topo::RelType rel = topo::RelType::kP2P;
  asn::Asn provider;  ///< meaningful only when rel == kP2C
  Source source = Source::kCommunities;

  /// Labels are equal if they assert the same relationship (source ignored).
  [[nodiscard]] bool same_assertion(const Label& other) const {
    return rel == other.rel &&
           (rel != topo::RelType::kP2C || provider == other.provider);
  }
};

/// All labels collected for one link, in first-seen order (the paper shows
/// that "treat as P2P if the entry *starts with* P2P" reproduces the
/// TopoScope counts, so acquisition order is part of the data model).
struct Entry {
  AsLink link;
  std::vector<Label> labels;

  [[nodiscard]] bool multi_label() const {
    for (std::size_t i = 1; i < labels.size(); ++i) {
      if (!labels[i].same_assertion(labels[0])) return true;
    }
    return false;
  }
};

class ValidationSet {
 public:
  /// Appends a label unless the same assertion from the same source is
  /// already present.
  void add(const AsLink& link, const Label& label);

  [[nodiscard]] const Entry* find(const AsLink& link) const;
  [[nodiscard]] std::size_t size() const { return entries_.size(); }

  /// Entries in insertion order (deterministic).
  [[nodiscard]] const std::vector<Entry>& entries() const { return entries_; }

  /// Merges another set into this one (label order preserved per entry).
  void merge(const ValidationSet& other);

 private:
  std::vector<Entry> entries_;
  std::unordered_map<std::uint64_t, std::size_t> index_;

  [[nodiscard]] static std::uint64_t key(const AsLink& link) {
    return (std::uint64_t{link.a.value()} << 32) | link.b.value();
  }
};

}  // namespace asrel::val

template <>
struct std::hash<asrel::val::AsLink> {
  std::size_t operator()(const asrel::val::AsLink& link) const noexcept {
    const std::uint64_t k =
        (std::uint64_t{link.a.value()} << 32) | link.b.value();
    return std::hash<std::uint64_t>{}(k);
  }
};
