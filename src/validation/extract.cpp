#include "validation/extract.hpp"

#include <algorithm>
#include <vector>

#include "core/parallel.hpp"
#include "obs/trace.hpp"

namespace asrel::val {

namespace {

using asn::Asn;
using topo::RelType;

std::uint64_t mix(std::uint64_t a, std::uint64_t b, std::uint64_t salt) {
  std::uint64_t x = a * 0x9E3779B97F4A7C15ull + b + salt;
  x ^= x >> 30;
  x *= 0xBF58476D1CE4E5B9ull;
  x ^= x >> 27;
  x *= 0x94D049BB133111EBull;
  x ^= x >> 31;
  return x;
}

/// Collapses prepending: consecutive duplicate hops become one.
void collapse(std::span<const Asn> path, std::vector<Asn>& out) {
  out.clear();
  for (const Asn hop : path) {
    if (out.empty() || out.back() != hop) out.push_back(hop);
  }
}

}  // namespace

ValidationSet extract_from_communities(const bgp::Propagator& propagator,
                                       const bgp::PathTable& paths,
                                       const SchemeDirectory& schemes,
                                       const ExtractParams& params,
                                       ExtractStats* stats) {
  obs::StageScope stage{"validation.extract_communities"};
  const auto& world = propagator.world();
  const auto& graph = world.graph;

  const auto scan_path = [&](const bgp::PathTable::PathRef& ref,
                             ValidationSet& set, ExtractStats& local,
                             std::vector<Asn>& hops) {
    ++local.paths_scanned;
    collapse(ref.path, hops);
    const Asn origin = graph.asn_of(ref.origin);

    bool communities_survive = true;  // no stripper between tagger and VP yet
    for (std::size_t i = 0; i + 1 < hops.size(); ++i) {
      const Asn tagger = hops[i];
      const Asn neighbor = hops[i + 1];

      // Stripping by ASes closer to the collector was already folded into
      // `communities_survive` (the VP itself is hops[0]). Unknown hops
      // (AS_TRANS placeholders) cannot be attributed an attitude; treat
      // them as transparent.
      if (i > 0) {
        const Asn upstream = hops[i - 1];
        if (graph.node_of(upstream).has_value() &&
            world.attrs.at(upstream).strips_communities) {
          communities_survive = false;
        }
      } else {
        if (graph.node_of(tagger) &&
            world.attrs.at(tagger).strips_communities) {
          // A stripping VP removes everything before exporting to the
          // collector, including its own ingress tags.
          break;
        }
      }

      const CommunityScheme* scheme = schemes.scheme_of(tagger);
      if (scheme == nullptr) continue;

      // The tagger's configured meaning for this neighbor. Hybrid links
      // resolve per origin — the tag reflects the PoP the route crossed.
      TagMeaning meaning = TagMeaning::kFromCustomer;
      const auto edge_id = graph.find_edge(tagger, neighbor);
      if (edge_id) {
        const auto& edge = graph.edge(*edge_id);
        const auto rel = propagator.effective_rel(edge, origin);
        const auto tagger_node = *graph.node_of(tagger);
        switch (rel) {
          case RelType::kP2C:
            meaning = edge.u == tagger_node ? TagMeaning::kFromCustomer
                                            : TagMeaning::kFromProvider;
            break;
          case RelType::kP2P:
            meaning = TagMeaning::kFromPeer;
            break;
          case RelType::kS2S:
            // Siblings are usually configured like customers; the paper
            // removes such entries with as2org data (§4.2).
            meaning = TagMeaning::kFromCustomer;
            break;
        }
      }
      // else: the neighbor is an AS_TRANS placeholder or a leaked private
      // ASN — the session config behind it was a customer-ish default, and
      // the resulting (tagger, bogus-ASN) label is exactly the paper's
      // "spurious entry".

      const bgp::Community tag = scheme->tag_for(meaning);
      ++local.tags_attached;
      if (!communities_survive) continue;
      ++local.tags_survived;

      // ---- Decoding side (what the researcher sees) ----
      // Attribute the community to an on-path AS whose published scheme
      // matches the key; skip if that is ambiguous.
      const CommunityScheme* decoder = nullptr;
      bool ambiguous = false;
      for (const auto index : schemes.key_matches(tag.high())) {
        const auto* candidate = &schemes.scheme_at(index);
        if (!candidate->published) continue;
        bool on_path = false;
        for (const Asn hop : hops) {
          if (hop == candidate->owner) {
            on_path = true;
            break;
          }
        }
        if (!on_path) continue;
        if (decoder != nullptr && decoder != candidate) {
          ambiguous = true;
          break;
        }
        decoder = candidate;
      }
      if (ambiguous) {
        ++local.ambiguous_keys_skipped;
        continue;
      }
      if (decoder == nullptr) continue;  // nobody published this key

      auto decoded = decoder->meaning_of(tag);
      if (!decoded) continue;
      ++local.tags_decoded;

      // Misdocumented link: the published mapping asserts the opposite
      // relationship for this neighbor.
      if (edge_id != std::nullopt &&
          graph.edge(*edge_id).misdocumented) {
        decoded = *decoded == TagMeaning::kFromPeer
                      ? TagMeaning::kFromCustomer
                      : TagMeaning::kFromPeer;
      }

      // Stale documentation: the published mapping is outdated for this
      // neighbor, so the researcher decodes the wrong relationship.
      if (params.stale_documentation > 0.0) {
        const std::uint64_t h =
            mix(tagger.value(), neighbor.value(), params.salt);
        const double roll = static_cast<double>(h >> 11) * 0x1.0p-53;
        if (roll < params.stale_documentation) {
          decoded = *decoded == TagMeaning::kFromCustomer
                        ? TagMeaning::kFromPeer
                        : TagMeaning::kFromCustomer;
        }
      }

      // The label always describes the link between the *owner of the
      // decoded scheme* and its path neighbor toward the origin.
      const Asn owner = decoder->owner;
      Asn owner_neighbor = neighbor;
      if (owner != tagger) {
        // Key collision resolved to another on-path AS: the researcher
        // attributes the tag to that AS's ingress link instead.
        for (std::size_t j = 0; j + 1 < hops.size(); ++j) {
          if (hops[j] == owner) {
            owner_neighbor = hops[j + 1];
            break;
          }
        }
      }

      Label label;
      label.source = Source::kCommunities;
      switch (*decoded) {
        case TagMeaning::kFromCustomer:
          label.rel = RelType::kP2C;
          label.provider = owner;
          break;
        case TagMeaning::kFromProvider:
          label.rel = RelType::kP2C;
          label.provider = owner_neighbor;
          break;
        case TagMeaning::kFromPeer:
          label.rel = RelType::kP2P;
          break;
        case TagMeaning::kBlackhole:
          continue;  // action community, no relationship statement
      }
      set.add(AsLink{owner, owner_neighbor}, label);
    }
  };

  // Origins are scanned in contiguous chunks; merging the chunk-local sets
  // back in chunk (= origin) order replays the exact add() sequence of the
  // serial scan, so the result is byte-identical for any thread count.
  struct Shard {
    ValidationSet set;
    ExtractStats stats;
  };
  core::ThreadPool& pool = core::ThreadPool::shared();
  const unsigned threads = core::ThreadPool::effective_threads(params.threads);
  const std::size_t origins = paths.origin_count();
  const std::size_t chunks =
      std::max<std::size_t>(1, std::min<std::size_t>(threads, origins));
  std::vector<Shard> shards = core::parallel_map_ordered<Shard>(
      pool, chunks, threads, [&](std::size_t chunk) {
        obs::TraceSpan span{"validation.extract.chunk"};
        Shard shard;
        std::vector<Asn> hops;
        const std::size_t begin = chunk * origins / chunks;
        const std::size_t end = (chunk + 1) * origins / chunks;
        for (std::size_t origin = begin; origin < end; ++origin) {
          for (const auto& ref :
               paths.paths_for_origin(static_cast<topo::NodeId>(origin))) {
            scan_path(ref, shard.set, shard.stats, hops);
          }
        }
        return shard;
      });

  ValidationSet set;
  ExtractStats local;
  for (const Shard& shard : shards) {
    set.merge(shard.set);
    local.paths_scanned += shard.stats.paths_scanned;
    local.tags_attached += shard.stats.tags_attached;
    local.tags_survived += shard.stats.tags_survived;
    local.tags_decoded += shard.stats.tags_decoded;
    local.ambiguous_keys_skipped += shard.stats.ambiguous_keys_skipped;
  }

  if (stats != nullptr) *stats = local;
  return set;
}

}  // namespace asrel::val
