#include "validation/label.hpp"

namespace asrel::val {

void ValidationSet::add(const AsLink& link, const Label& label) {
  const auto k = key(link);
  const auto it = index_.find(k);
  if (it == index_.end()) {
    index_.emplace(k, entries_.size());
    entries_.push_back({link, {label}});
    return;
  }
  auto& entry = entries_[it->second];
  for (const auto& existing : entry.labels) {
    if (existing.same_assertion(label) && existing.source == label.source) {
      return;
    }
  }
  entry.labels.push_back(label);
}

const Entry* ValidationSet::find(const AsLink& link) const {
  const auto it = index_.find(key(link));
  return it == index_.end() ? nullptr : &entries_[it->second];
}

void ValidationSet::merge(const ValidationSet& other) {
  for (const auto& entry : other.entries()) {
    for (const auto& label : entry.labels) {
      add(entry.link, label);
    }
  }
}

}  // namespace asrel::val
