// Binary confusion matrices and the correctness metrics of §6: precision
// (PPV), recall (TPR), F1, balanced accuracy, Matthews correlation
// coefficient, and the Fowlkes-Mallows index.
#pragma once

#include <cmath>
#include <cstdint>

namespace asrel::eval {

struct ConfusionMatrix {
  std::uint64_t tp = 0;
  std::uint64_t fp = 0;
  std::uint64_t tn = 0;
  std::uint64_t fn = 0;

  [[nodiscard]] std::uint64_t total() const { return tp + fp + tn + fn; }
  [[nodiscard]] std::uint64_t positives() const { return tp + fn; }
  [[nodiscard]] std::uint64_t negatives() const { return tn + fp; }

  /// Precision / positive predictive value. 0 when undefined.
  [[nodiscard]] double ppv() const {
    return tp + fp == 0 ? 0.0
                        : static_cast<double>(tp) /
                              static_cast<double>(tp + fp);
  }
  /// Recall / true positive rate. 0 when undefined.
  [[nodiscard]] double tpr() const {
    return tp + fn == 0 ? 0.0
                        : static_cast<double>(tp) /
                              static_cast<double>(tp + fn);
  }
  [[nodiscard]] double tnr() const {
    return tn + fp == 0 ? 0.0
                        : static_cast<double>(tn) /
                              static_cast<double>(tn + fp);
  }
  [[nodiscard]] double f1() const {
    const double p = ppv();
    const double r = tpr();
    return p + r == 0.0 ? 0.0 : 2.0 * p * r / (p + r);
  }
  [[nodiscard]] double balanced_accuracy() const {
    return 0.5 * (tpr() + tnr());
  }

  /// Matthews correlation coefficient in [-1, 1]; 0 when any marginal is
  /// empty (coin-toss behaviour, matching the paper's interpretation).
  [[nodiscard]] double mcc() const {
    const double tpd = static_cast<double>(tp);
    const double fpd = static_cast<double>(fp);
    const double tnd = static_cast<double>(tn);
    const double fnd = static_cast<double>(fn);
    const double denominator = std::sqrt((tpd + fpd) * (tpd + fnd) *
                                         (tnd + fpd) * (tnd + fnd));
    if (denominator == 0.0) return 0.0;
    return (tpd * tnd - fpd * fnd) / denominator;
  }

  /// Fowlkes-Mallows index (the paper's footnote 10 alternative).
  [[nodiscard]] double fowlkes_mallows() const {
    return std::sqrt(ppv() * tpr());
  }

  /// The same matrix with positive and negative classes swapped.
  [[nodiscard]] ConfusionMatrix inverted() const { return {tn, fn, tp, fp}; }

  ConfusionMatrix& operator+=(const ConfusionMatrix& other) {
    tp += other.tp;
    fp += other.fp;
    tn += other.tn;
    fn += other.fn;
    return *this;
  }
};

}  // namespace asrel::eval
