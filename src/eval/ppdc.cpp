#include "eval/ppdc.hpp"

#include <algorithm>
#include <vector>

namespace asrel::eval {

std::unordered_map<asn::Asn, std::uint32_t> ppdc_sizes(
    const infer::ObservedPaths& observed,
    const infer::Inference& inference) {
  // Sorted-unique member lists per AS index.
  std::vector<std::vector<asn::Asn>> cones(observed.as_count());

  for (std::size_t p = 0; p < observed.path_count(); ++p) {
    const auto path = observed.path(p);
    for (std::size_t i = 1; i + 1 < path.size(); ++i) {
      const auto* rel =
          inference.find(val::AsLink{path[i - 1], path[i]});
      if (rel == nullptr) continue;
      const bool from_provider_or_peer =
          rel->rel == topo::RelType::kP2P ||
          (rel->rel == topo::RelType::kP2C && rel->provider == path[i - 1]);
      if (!from_provider_or_peer) continue;
      const auto index = observed.index_of(path[i]);
      if (!index) continue;
      auto& cone = cones[*index];
      for (std::size_t j = i + 1; j < path.size(); ++j) {
        const auto it =
            std::lower_bound(cone.begin(), cone.end(), path[j]);
        if (it == cone.end() || *it != path[j]) cone.insert(it, path[j]);
      }
    }
  }

  std::unordered_map<asn::Asn, std::uint32_t> sizes;
  sizes.reserve(observed.as_count());
  for (std::size_t i = 0; i < observed.as_count(); ++i) {
    sizes[observed.asn_at(i)] =
        static_cast<std::uint32_t>(cones[i].size());
  }
  return sizes;
}

}  // namespace asrel::eval
