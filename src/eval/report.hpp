// Per-class correctness evaluation (§6, Tables 1-3).
//
// Builds (validated, inferred) pairs, partitions them into link classes,
// and computes the table rows: PPV/TPR with P2P as positive class, PPV/TPR
// with P2C as positive class, link counts, and MCC. Rendering colors each
// cell against the Total° row exactly as the paper does (green >= +1%,
// yellow <= -1%, orange <= -5%, red <= -10%).
#pragma once

#include <functional>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "eval/metrics.hpp"
#include "infer/inference.hpp"
#include "validation/cleaner.hpp"

namespace asrel::eval {

/// One link that is both validated and inferred.
struct EvalPair {
  val::AsLink link;
  topo::RelType validated = topo::RelType::kP2P;
  asn::Asn validated_provider;  // valid when validated == kP2C
  topo::RelType inferred = topo::RelType::kP2P;
  asn::Asn inferred_provider;
};

/// Intersects the cleaned validation data with an inference.
[[nodiscard]] std::vector<EvalPair> make_eval_pairs(
    std::span<const val::CleanLabel> validation,
    const infer::Inference& inference);

struct ClassMetrics {
  std::string name;
  ConfusionMatrix p2p;  ///< P2P as positive class
  ConfusionMatrix p2c;  ///< P2C as positive class (the inverted matrix)
  std::size_t p2p_links = 0;   ///< LC_P: validated P2P links in the class
  std::size_t p2c_links = 0;   ///< LC_C
  double mcc = 0.0;
  /// Extra (not in the paper's tables): among correctly-typed P2C links,
  /// the fraction with the provider on the right side.
  double orientation_accuracy = 1.0;
};

/// Computes metrics over pairs selected by `in_class` (nullptr = all).
[[nodiscard]] ClassMetrics compute_class_metrics(
    std::span<const EvalPair> pairs, std::string name,
    const std::function<bool(const EvalPair&)>& in_class = nullptr);

/// Full per-group validation table: Total° plus every class (regional and
/// topological, via `class_of`) with at least `min_links` validated links.
struct ValidationTable {
  ClassMetrics total;
  std::vector<ClassMetrics> rows;
};

[[nodiscard]] ValidationTable build_validation_table(
    std::span<const EvalPair> pairs,
    const std::function<std::string(const val::AsLink&)>& class_of,
    std::size_t min_links = 500);

/// Renders in the paper's layout. `color` enables ANSI coloring of the
/// deltas against the Total° row.
[[nodiscard]] std::string render_validation_table(const ValidationTable& table,
                                                  bool color = true);

}  // namespace asrel::eval
