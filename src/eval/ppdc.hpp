// PPDC: the provider/peer observed customer cone (Luckie et al.), used by
// Appendix B Figs. 7-8. An AS's PPDC contains every AS that appears behind
// it (toward the origin) on a path where the AS in front of it is — per the
// given inference — its provider or peer. The paper notes this metric
// "relies on the correctness of the inferred business relationships and
// might hence be biased"; computing it from an Inference keeps that caveat
// intact.
#pragma once

#include <cstdint>
#include <unordered_map>

#include "infer/inference.hpp"
#include "infer/observed.hpp"

namespace asrel::eval {

[[nodiscard]] std::unordered_map<asn::Asn, std::uint32_t> ppdc_sizes(
    const infer::ObservedPaths& observed, const infer::Inference& inference);

}  // namespace asrel::eval
