// Appendix A experiment: does validation coverage correlate with measured
// performance? Uniformly down-sample a class's evaluation pairs to
// 50..99 % (step 1 %), repeat each size 100 times, and track the median and
// IQR of PPV_P, TPR_P, and MCC.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "eval/report.hpp"

namespace asrel::eval {

struct SamplingParams {
  std::uint64_t seed = 99;
  int min_percent = 50;
  int max_percent = 99;
  int step = 1;
  int repetitions = 100;
};

struct SamplingPoint {
  int percent = 0;
  double ppv_p_median = 0, ppv_p_q1 = 0, ppv_p_q3 = 0;
  double tpr_p_median = 0, tpr_p_q1 = 0, tpr_p_q3 = 0;
  double mcc_median = 0, mcc_q1 = 0, mcc_q3 = 0;
};

struct SamplingResult {
  std::vector<SamplingPoint> points;
  /// Least-squares slope of the medians over the sample size — the paper's
  /// conclusion is that these are ~0 (no trend).
  double ppv_p_slope = 0;
  double tpr_p_slope = 0;
  double mcc_slope = 0;
};

[[nodiscard]] SamplingResult run_sampling_experiment(
    std::span<const EvalPair> pairs, const SamplingParams& params = {});

/// CSV: percent, metric medians and quartiles per row.
[[nodiscard]] std::string to_csv(const SamplingResult& result);

}  // namespace asrel::eval
