#include "eval/coverage.hpp"

#include <algorithm>
#include <cstdio>
#include <map>
#include <unordered_set>

namespace asrel::eval {

CoverageReport coverage_by_class(
    std::span<const val::AsLink> inferred,
    std::span<const val::CleanLabel> validated,
    const std::function<std::string(const val::AsLink&)>& class_of) {
  CoverageReport report;

  std::map<std::string, CoverageRow> rows;
  std::unordered_set<val::AsLink> inferred_set;
  for (const auto& link : inferred) {
    const auto name = class_of(link);
    if (name == "?") continue;
    auto& row = rows[name];
    row.name = name;
    ++row.inferred_links;
    ++report.total_inferred;
    inferred_set.insert(link);
  }
  for (const auto& label : validated) {
    // Coverage counts validated links among the *inferred* ones, matching
    // "fraction of links in a class for which we have validation labels".
    if (!inferred_set.contains(label.link)) continue;
    const auto name = class_of(label.link);
    if (name == "?") continue;
    auto& row = rows[name];
    ++row.validated_links;
    ++report.total_validated;
  }

  for (auto& [name, row] : rows) {
    row.share = report.total_inferred == 0
                    ? 0.0
                    : static_cast<double>(row.inferred_links) /
                          static_cast<double>(report.total_inferred);
    row.coverage = row.inferred_links == 0
                       ? 0.0
                       : static_cast<double>(row.validated_links) /
                             static_cast<double>(row.inferred_links);
    report.rows.push_back(row);
  }
  std::sort(report.rows.begin(), report.rows.end(),
            [](const CoverageRow& a, const CoverageRow& b) {
              if (a.share != b.share) return a.share > b.share;
              return a.name < b.name;
            });
  return report;
}

std::string render_coverage(const CoverageReport& report,
                            std::size_t max_classes) {
  std::string out;
  char buffer[64];
  const std::size_t count = std::min(max_classes, report.rows.size());

  out += "Class:      ";
  for (std::size_t i = 0; i < count; ++i) {
    std::snprintf(buffer, sizeof buffer, "%8s", report.rows[i].name.c_str());
    out += buffer;
  }
  out += "\nLink share: ";
  for (std::size_t i = 0; i < count; ++i) {
    std::snprintf(buffer, sizeof buffer, "%8.2f", report.rows[i].share);
    out += buffer;
  }
  out += "\nVal. cov.:  ";
  for (std::size_t i = 0; i < count; ++i) {
    std::snprintf(buffer, sizeof buffer, "%8.2f", report.rows[i].coverage);
    out += buffer;
  }
  out += '\n';
  return out;
}

}  // namespace asrel::eval
