#include "eval/report.hpp"

#include <algorithm>
#include <cstdio>
#include <map>
#include <sstream>

namespace asrel::eval {

std::vector<EvalPair> make_eval_pairs(
    std::span<const val::CleanLabel> validation,
    const infer::Inference& inference) {
  std::vector<EvalPair> pairs;
  pairs.reserve(validation.size());
  for (const auto& label : validation) {
    const auto* inferred = inference.find(label.link);
    if (inferred == nullptr) continue;  // link not visible to the classifier
    EvalPair pair;
    pair.link = label.link;
    pair.validated = label.rel;
    pair.validated_provider = label.provider;
    pair.inferred = inferred->rel;
    pair.inferred_provider = inferred->provider;
    pairs.push_back(pair);
  }
  return pairs;
}

ClassMetrics compute_class_metrics(
    std::span<const EvalPair> pairs, std::string name,
    const std::function<bool(const EvalPair&)>& in_class) {
  ClassMetrics metrics;
  metrics.name = std::move(name);
  std::uint64_t oriented_ok = 0;
  std::uint64_t oriented_total = 0;

  for (const auto& pair : pairs) {
    if (in_class && !in_class(pair)) continue;
    const bool val_p2p = pair.validated == topo::RelType::kP2P;
    const bool inf_p2p = pair.inferred == topo::RelType::kP2P;
    if (val_p2p) {
      ++metrics.p2p_links;
      inf_p2p ? ++metrics.p2p.tp : ++metrics.p2p.fn;
    } else {
      ++metrics.p2c_links;
      inf_p2p ? ++metrics.p2p.fp : ++metrics.p2p.tn;
      if (!inf_p2p) {
        ++oriented_total;
        if (pair.inferred_provider == pair.validated_provider) ++oriented_ok;
      }
    }
  }
  metrics.p2c = metrics.p2p.inverted();
  metrics.mcc = metrics.p2p.mcc();
  metrics.orientation_accuracy =
      oriented_total == 0 ? 1.0
                          : static_cast<double>(oriented_ok) /
                                static_cast<double>(oriented_total);
  return metrics;
}

ValidationTable build_validation_table(
    std::span<const EvalPair> pairs,
    const std::function<std::string(const val::AsLink&)>& class_of,
    std::size_t min_links) {
  ValidationTable table;
  table.total = compute_class_metrics(pairs, "Total°");

  // Group pairs by class name (ordered map: deterministic row order).
  std::map<std::string, std::vector<EvalPair>> by_class;
  for (const auto& pair : pairs) {
    by_class[class_of(pair.link)].push_back(pair);
  }
  for (const auto& [name, members] : by_class) {
    if (members.size() < min_links) continue;
    if (name == "?") continue;
    table.rows.push_back(compute_class_metrics(members, name));
  }
  return table;
}

namespace {

/// Paper-style coloring against the Total° value.
const char* color_for(double value, double reference) {
  const double delta = value - reference;
  if (delta >= 0.01) return "\x1b[32m";   // green
  if (delta <= -0.10) return "\x1b[31m";  // red
  if (delta <= -0.05) return "\x1b[33;1m";  // orange (bright yellow)
  if (delta <= -0.01) return "\x1b[33m";  // yellow
  return "";
}

void append_metric(std::string& out, double value, double reference,
                   bool color) {
  char buffer[32];
  std::snprintf(buffer, sizeof buffer, "%6.3f", value);
  if (color) {
    const char* code = color_for(value, reference);
    if (code[0] != '\0') {
      out += code;
      out += buffer;
      out += "\x1b[0m";
      return;
    }
  }
  out += buffer;
}

}  // namespace

std::string render_validation_table(const ValidationTable& table,
                                    bool color) {
  std::string out;
  char buffer[64];
  out += "Class      PPV_P  TPR_P    LC_P  PPV_C  TPR_C    LC_C    MCC\n";

  const auto row = [&](const ClassMetrics& metrics, bool is_total) {
    std::snprintf(buffer, sizeof buffer, "%-10s ", metrics.name.c_str());
    out += buffer;
    const auto& reference = table.total;
    append_metric(out, metrics.p2p.ppv(), reference.p2p.ppv(),
                  color && !is_total);
    out += ' ';
    append_metric(out, metrics.p2p.tpr(), reference.p2p.tpr(),
                  color && !is_total);
    std::snprintf(buffer, sizeof buffer, " %7zu ", metrics.p2p_links);
    out += buffer;
    append_metric(out, metrics.p2c.ppv(), reference.p2c.ppv(),
                  color && !is_total);
    out += ' ';
    append_metric(out, metrics.p2c.tpr(), reference.p2c.tpr(),
                  color && !is_total);
    std::snprintf(buffer, sizeof buffer, " %7zu ", metrics.p2c_links);
    out += buffer;
    append_metric(out, metrics.mcc, reference.mcc, color && !is_total);
    out += '\n';
  };
  row(table.total, true);
  for (const auto& metrics : table.rows) row(metrics, false);
  return out;
}

}  // namespace asrel::eval
