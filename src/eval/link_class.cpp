#include "eval/link_class.hpp"

#include <memory>
#include <unordered_set>

#include "topology/cone.hpp"

namespace asrel::eval {

std::string regional_class(const rir::RegionMapper& mapper,
                           const val::AsLink& link) {
  const auto ra = mapper.region_of(link.a);
  const auto rb = mapper.region_of(link.b);
  if (ra == rir::Region::kUnknown || rb == rir::Region::kUnknown) return "?";
  const auto abbr_a = std::string{rir::abbreviation(ra)};
  const auto abbr_b = std::string{rir::abbreviation(rb)};
  if (ra == rb) return abbr_a + "°";  // e.g. "R°"
  return abbr_a < abbr_b ? abbr_a + "-" + abbr_b : abbr_b + "-" + abbr_a;
}

std::string_view to_string(TopoCategory category) {
  switch (category) {
    case TopoCategory::kHypergiant:
      return "H";
    case TopoCategory::kStub:
      return "S";
    case TopoCategory::kTier1:
      return "T1";
    case TopoCategory::kTransit:
      return "TR";
  }
  return "?";
}

TopoClassifier TopoClassifier::from_world(const topo::World& world) {
  auto hypergiants = std::make_shared<std::unordered_set<asn::Asn>>(
      world.hypergiants.begin(), world.hypergiants.end());
  auto tier1 = std::make_shared<std::unordered_set<asn::Asn>>(
      world.clique.begin(), world.clique.end());
  // Transit = at least one customer in the ground-truth graph.
  auto transit = std::make_shared<std::unordered_set<asn::Asn>>();
  for (const auto& edge : world.graph.edges()) {
    if (edge.removed) continue;
    if (edge.rel == topo::RelType::kP2C) {
      transit->insert(world.graph.asn_of(edge.u));
    }
  }
  return TopoClassifier{
      [hypergiants](asn::Asn asn) { return hypergiants->contains(asn); },
      [tier1](asn::Asn asn) { return tier1->contains(asn); },
      [transit](asn::Asn asn) { return transit->contains(asn); }};
}

TopoClassifier::TopoClassifier(std::function<bool(asn::Asn)> is_hypergiant,
                               std::function<bool(asn::Asn)> is_tier1,
                               std::function<bool(asn::Asn)> has_customers)
    : is_hypergiant_(std::move(is_hypergiant)),
      is_tier1_(std::move(is_tier1)),
      has_customers_(std::move(has_customers)) {}

TopoCategory TopoClassifier::category_of(asn::Asn asn) const {
  if (is_hypergiant_(asn)) return TopoCategory::kHypergiant;
  if (is_tier1_(asn)) return TopoCategory::kTier1;
  if (has_customers_(asn)) return TopoCategory::kTransit;
  return TopoCategory::kStub;
}

std::string TopoClassifier::class_of(const val::AsLink& link) const {
  const auto ca = category_of(link.a);
  const auto cb = category_of(link.b);
  if (ca == cb) return std::string{to_string(ca)} + "°";
  // Display order H < S < T1 < TR (matches the paper's class names).
  const auto order = [](TopoCategory c) {
    switch (c) {
      case TopoCategory::kHypergiant:
        return 0;
      case TopoCategory::kStub:
        return 1;
      case TopoCategory::kTier1:
        return 2;
      case TopoCategory::kTransit:
        return 3;
    }
    return 4;
  };
  const auto first = order(ca) < order(cb) ? ca : cb;
  const auto second = order(ca) < order(cb) ? cb : ca;
  return std::string{to_string(first)} + "-" + std::string{to_string(second)};
}

}  // namespace asrel::eval
