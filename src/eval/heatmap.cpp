#include "eval/heatmap.hpp"

#include <algorithm>
#include <cstdio>

namespace asrel::eval {

Heatmap::Heatmap(const HeatmapSpec& spec)
    : spec_(spec), counts_(spec.x_bins * spec.y_bins, 0) {}

std::size_t Heatmap::x_bin(std::uint32_t value) const {
  const std::size_t width =
      std::max<std::size_t>(1, spec_.x_cap / spec_.x_bins);
  return std::min(spec_.x_bins - 1, static_cast<std::size_t>(value) / width);
}

std::size_t Heatmap::y_bin(std::uint32_t value) const {
  const std::size_t width =
      std::max<std::size_t>(1, spec_.y_cap / spec_.y_bins);
  return std::min(spec_.y_bins - 1, static_cast<std::size_t>(value) / width);
}

void Heatmap::add(std::uint32_t metric_1, std::uint32_t metric_2) {
  const std::uint32_t larger = std::max(metric_1, metric_2);
  const std::uint32_t smaller = std::min(metric_1, metric_2);
  ++counts_[x_bin(larger) * spec_.y_bins + y_bin(smaller)];
  ++total_;
}

double Heatmap::fraction(std::size_t x, std::size_t y) const {
  if (total_ == 0) return 0.0;
  return static_cast<double>(counts_[x * spec_.y_bins + y]) /
         static_cast<double>(total_);
}

std::uint64_t Heatmap::count(std::size_t x, std::size_t y) const {
  return counts_[x * spec_.y_bins + y];
}

double Heatmap::bottom_left_mass(double quarter) const {
  const auto x_limit = static_cast<std::size_t>(
      quarter * static_cast<double>(spec_.x_bins));
  const auto y_limit = static_cast<std::size_t>(
      quarter * static_cast<double>(spec_.y_bins));
  double mass = 0.0;
  for (std::size_t x = 0; x < std::max<std::size_t>(1, x_limit); ++x) {
    for (std::size_t y = 0; y < std::max<std::size_t>(1, y_limit); ++y) {
      mass += fraction(x, y);
    }
  }
  return mass;
}

std::string Heatmap::render() const {
  // Shade per cell by fraction; rows printed top (largest y) to bottom.
  static constexpr const char* kShades = " .:-=+*#%@";
  std::string out;
  char buffer[64];
  for (std::size_t y = spec_.y_bins; y-- > 0;) {
    std::snprintf(buffer, sizeof buffer, "%5zu |",
                  y * (spec_.y_cap / spec_.y_bins));
    out += buffer;
    for (std::size_t x = 0; x < spec_.x_bins; ++x) {
      const double f = fraction(x, y);
      int shade = 0;
      if (f > 0) {
        shade = 1 + static_cast<int>(f * 80.0);
        shade = std::min(shade, 9);
      }
      out += kShades[shade];
      out += kShades[shade];
    }
    out += '\n';
  }
  out += "      +";
  for (std::size_t x = 0; x < spec_.x_bins; ++x) out += "--";
  out += '\n';
  std::snprintf(buffer, sizeof buffer, "       0 .. %u (larger metric)\n",
                spec_.x_cap);
  out += buffer;
  return out;
}

std::string Heatmap::to_csv() const {
  std::string out = "x_low,y_low,fraction\n";
  char buffer[96];
  const std::size_t x_width = spec_.x_cap / spec_.x_bins;
  const std::size_t y_width = spec_.y_cap / spec_.y_bins;
  for (std::size_t x = 0; x < spec_.x_bins; ++x) {
    for (std::size_t y = 0; y < spec_.y_bins; ++y) {
      std::snprintf(buffer, sizeof buffer, "%zu,%zu,%.6f\n", x * x_width,
                    y * y_width, fraction(x, y));
      out += buffer;
    }
  }
  return out;
}

Heatmap build_link_heatmap(
    std::span<const val::AsLink> links,
    const std::function<std::uint32_t(asn::Asn)>& metric,
    const HeatmapSpec& spec) {
  Heatmap map(spec);
  for (const auto& link : links) {
    map.add(metric(link.a), metric(link.b));
  }
  return map;
}

}  // namespace asrel::eval
