// 2-D link heatmaps for Fig. 3 (transit degree) and Appendix B Figs. 7-9
// (customer-cone size, node degree): links binned by (larger metric,
// smaller metric) of their incident ASes, with catch-all top bins, values
// normalized to fractions of all binned links.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "validation/label.hpp"

namespace asrel::eval {

struct HeatmapSpec {
  std::uint32_t x_cap = 1500;  ///< larger-metric catch-all boundary
  std::uint32_t y_cap = 150;   ///< smaller-metric catch-all boundary
  std::size_t x_bins = 30;
  std::size_t y_bins = 15;
};

class Heatmap {
 public:
  explicit Heatmap(const HeatmapSpec& spec);

  /// Adds one link with its two metric values (order-free).
  void add(std::uint32_t metric_1, std::uint32_t metric_2);

  [[nodiscard]] std::size_t total() const { return total_; }
  [[nodiscard]] const HeatmapSpec& spec() const { return spec_; }

  /// Fraction of links in bin (x, y); x indexes the larger metric.
  [[nodiscard]] double fraction(std::size_t x, std::size_t y) const;
  [[nodiscard]] std::uint64_t count(std::size_t x, std::size_t y) const;

  /// Mass concentrated in the lowest quarter of both axes — the summary
  /// statistic the paper's Fig. 3 discussion rests on ("the vast majority
  /// of TR° links that we infer are between relatively small ASes").
  [[nodiscard]] double bottom_left_mass(double quarter = 0.25) const;

  /// ASCII-art rendering (rows = smaller metric, top = largest bin).
  [[nodiscard]] std::string render() const;
  /// "x_low,y_low,fraction" CSV for external plotting.
  [[nodiscard]] std::string to_csv() const;

 private:
  [[nodiscard]] std::size_t x_bin(std::uint32_t value) const;
  [[nodiscard]] std::size_t y_bin(std::uint32_t value) const;

  HeatmapSpec spec_;
  std::vector<std::uint64_t> counts_;  // x-major
  std::size_t total_ = 0;
};

/// Builds a heatmap over `links` using a per-AS metric.
[[nodiscard]] Heatmap build_link_heatmap(
    std::span<const val::AsLink> links,
    const std::function<std::uint32_t(asn::Asn)>& metric,
    const HeatmapSpec& spec);

}  // namespace asrel::eval
