// §5 coverage analysis: for a set of link classes, the share of inferred
// links per class (Fig. 1/2 top) and the validation coverage per class
// (Fig. 1/2 bottom).
#pragma once

#include <functional>
#include <span>
#include <string>
#include <vector>

#include "validation/cleaner.hpp"
#include "validation/label.hpp"

namespace asrel::eval {

struct CoverageRow {
  std::string name;
  std::size_t inferred_links = 0;
  std::size_t validated_links = 0;
  double share = 0.0;     ///< inferred_links / total inferred
  double coverage = 0.0;  ///< validated_links / inferred_links
};

struct CoverageReport {
  std::vector<CoverageRow> rows;  ///< sorted by share, descending
  std::size_t total_inferred = 0;
  std::size_t total_validated = 0;
};

/// `inferred` is the full set of visible links ("inferred links" in the
/// paper's terminology); `validated` the cleaned validation data. Links
/// whose class is "?" (reserved/unknown endpoints) are discarded, as in §5.
[[nodiscard]] CoverageReport coverage_by_class(
    std::span<const val::AsLink> inferred,
    std::span<const val::CleanLabel> validated,
    const std::function<std::string(const val::AsLink&)>& class_of);

/// Two-row rendering in the style of Fig. 1/2: shares on top, coverage
/// below.
[[nodiscard]] std::string render_coverage(const CoverageReport& report,
                                          std::size_t max_classes = 12);

}  // namespace asrel::eval
