#include "eval/sampling.hpp"

#include <algorithm>
#include <cstdio>

#include "topology/random.hpp"

namespace asrel::eval {

namespace {

struct Quartiles {
  double q1 = 0, median = 0, q3 = 0;
};

Quartiles quartiles(std::vector<double>& values) {
  std::sort(values.begin(), values.end());
  const auto at = [&](double q) {
    const double pos = q * static_cast<double>(values.size() - 1);
    const auto lo = static_cast<std::size_t>(pos);
    const auto hi = std::min(lo + 1, values.size() - 1);
    const double t = pos - static_cast<double>(lo);
    return values[lo] * (1.0 - t) + values[hi] * t;
  };
  return {at(0.25), at(0.5), at(0.75)};
}

double slope(const std::vector<std::pair<double, double>>& xy) {
  if (xy.size() < 2) return 0.0;
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  for (const auto& [x, y] : xy) {
    sx += x;
    sy += y;
    sxx += x * x;
    sxy += x * y;
  }
  const double n = static_cast<double>(xy.size());
  const double denominator = n * sxx - sx * sx;
  return denominator == 0.0 ? 0.0 : (n * sxy - sx * sy) / denominator;
}

}  // namespace

SamplingResult run_sampling_experiment(std::span<const EvalPair> pairs,
                                       const SamplingParams& params) {
  SamplingResult result;
  if (pairs.empty()) return result;
  topo::Rng rng{params.seed};

  std::vector<std::size_t> indices(pairs.size());
  std::vector<EvalPair> sample;

  std::vector<std::pair<double, double>> ppv_xy, tpr_xy, mcc_xy;

  for (int percent = params.min_percent; percent <= params.max_percent;
       percent += params.step) {
    const auto size = std::max<std::size_t>(
        1, pairs.size() * static_cast<std::size_t>(percent) / 100);
    std::vector<double> ppv, tpr, mcc;
    ppv.reserve(params.repetitions);
    tpr.reserve(params.repetitions);
    mcc.reserve(params.repetitions);

    for (int rep = 0; rep < params.repetitions; ++rep) {
      // Partial Fisher-Yates: the first `size` entries form the sample.
      indices.resize(pairs.size());
      for (std::size_t i = 0; i < indices.size(); ++i) indices[i] = i;
      for (std::size_t i = 0; i < size; ++i) {
        const std::size_t j =
            i + static_cast<std::size_t>(rng.below(indices.size() - i));
        std::swap(indices[i], indices[j]);
      }
      sample.clear();
      for (std::size_t i = 0; i < size; ++i) sample.push_back(pairs[indices[i]]);

      const auto metrics = compute_class_metrics(sample, "sample");
      ppv.push_back(metrics.p2p.ppv());
      tpr.push_back(metrics.p2p.tpr());
      mcc.push_back(metrics.mcc);
    }

    SamplingPoint point;
    point.percent = percent;
    const auto p = quartiles(ppv);
    const auto t = quartiles(tpr);
    const auto m = quartiles(mcc);
    point.ppv_p_q1 = p.q1;
    point.ppv_p_median = p.median;
    point.ppv_p_q3 = p.q3;
    point.tpr_p_q1 = t.q1;
    point.tpr_p_median = t.median;
    point.tpr_p_q3 = t.q3;
    point.mcc_q1 = m.q1;
    point.mcc_median = m.median;
    point.mcc_q3 = m.q3;
    result.points.push_back(point);

    ppv_xy.emplace_back(percent, point.ppv_p_median);
    tpr_xy.emplace_back(percent, point.tpr_p_median);
    mcc_xy.emplace_back(percent, point.mcc_median);
  }
  result.ppv_p_slope = slope(ppv_xy);
  result.tpr_p_slope = slope(tpr_xy);
  result.mcc_slope = slope(mcc_xy);
  return result;
}

std::string to_csv(const SamplingResult& result) {
  std::string out =
      "percent,ppv_q1,ppv_median,ppv_q3,tpr_q1,tpr_median,tpr_q3,"
      "mcc_q1,mcc_median,mcc_q3\n";
  char buffer[192];
  for (const auto& point : result.points) {
    std::snprintf(buffer, sizeof buffer,
                  "%d,%.4f,%.4f,%.4f,%.4f,%.4f,%.4f,%.4f,%.4f,%.4f\n",
                  point.percent, point.ppv_p_q1, point.ppv_p_median,
                  point.ppv_p_q3, point.tpr_p_q1, point.tpr_p_median,
                  point.tpr_p_q3, point.mcc_q1, point.mcc_median,
                  point.mcc_q3);
    out += buffer;
  }
  return out;
}

}  // namespace asrel::eval
