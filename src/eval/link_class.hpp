// Link-class partitioning for §5/§6: regional classes (R°, AR-R, ...) and
// topological classes (S-TR, T1-TR, H-S, ...).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "asn/asn.hpp"
#include "rir/region_mapper.hpp"
#include "topology/generator.hpp"
#include "validation/label.hpp"

namespace asrel::eval {

/// Regional class of a link ("R°" when both sides share a region,
/// "<smaller>-<larger>" lexicographically otherwise, "?" when either side is
/// unmapped/reserved).
[[nodiscard]] std::string regional_class(const rir::RegionMapper& mapper,
                                         const val::AsLink& link);

/// The paper's topological categories, in its display order.
enum class TopoCategory : std::uint8_t { kHypergiant, kStub, kTier1, kTransit };

[[nodiscard]] std::string_view to_string(TopoCategory category);

/// Categorizes an AS the way §5 does: hypergiant list first, Tier-1 list
/// next, then Transit iff the customer cone is non-empty, Stub otherwise.
class TopoClassifier {
 public:
  /// Built from the ground-truth world (the authoritative analogue of the
  /// Wikipedia Tier-1 + Böttger hypergiant + CAIDA cone inputs).
  [[nodiscard]] static TopoClassifier from_world(const topo::World& world);

  /// Built from arbitrary membership functions (e.g. inferred data) —
  /// lets benches ablate the ground-truth choice.
  TopoClassifier(std::function<bool(asn::Asn)> is_hypergiant,
                 std::function<bool(asn::Asn)> is_tier1,
                 std::function<bool(asn::Asn)> has_customers);

  [[nodiscard]] TopoCategory category_of(asn::Asn asn) const;

  /// "S-TR", "TR°", "H-T1", ... (category order H < S < T1 < TR as in the
  /// paper's Fig. 2).
  [[nodiscard]] std::string class_of(const val::AsLink& link) const;

 private:
  std::function<bool(asn::Asn)> is_hypergiant_;
  std::function<bool(asn::Asn)> is_tier1_;
  std::function<bool(asn::Asn)> has_customers_;
};

}  // namespace asrel::eval
