// A binary (unibit) trie over IPv4 prefixes with longest-prefix-match lookup.
//
// The RIR substrate uses it to answer "which service region delegated this
// address block"; the BGP substrate uses it for per-AS originated address
// space accounting.
#pragma once

#include <cstddef>
#include <memory>
#include <optional>
#include <vector>

#include "netbase/ip.hpp"

namespace asrel::net {

/// Maps IPv4 prefixes to values of type T with exact-match and
/// longest-prefix-match queries. Inserting an existing prefix overwrites.
template <typename T>
class PrefixTrie4 {
 public:
  void insert(const Prefix4& prefix, T value) {
    Node* node = &root_;
    for (unsigned depth = 0; depth < prefix.length(); ++depth) {
      auto& child = node->children[prefix.network().bit(depth) ? 1 : 0];
      if (!child) child = std::make_unique<Node>();
      node = child.get();
    }
    if (!node->value) ++size_;
    node->value = std::move(value);
  }

  /// The value stored at exactly this prefix, if any.
  [[nodiscard]] const T* find_exact(const Prefix4& prefix) const {
    const Node* node = &root_;
    for (unsigned depth = 0; depth < prefix.length(); ++depth) {
      node = node->children[prefix.network().bit(depth) ? 1 : 0].get();
      if (node == nullptr) return nullptr;
    }
    return node->value ? &*node->value : nullptr;
  }

  /// The value of the most specific prefix containing `addr`, if any.
  [[nodiscard]] const T* longest_match(Ipv4Addr addr) const {
    const Node* node = &root_;
    const T* best = node->value ? &*node->value : nullptr;
    for (unsigned depth = 0; depth < 32; ++depth) {
      node = node->children[addr.bit(depth) ? 1 : 0].get();
      if (node == nullptr) break;
      if (node->value) best = &*node->value;
    }
    return best;
  }

  /// The value of the most specific strict or equal covering prefix.
  [[nodiscard]] const T* longest_match(const Prefix4& prefix) const {
    const Node* node = &root_;
    const T* best = node->value ? &*node->value : nullptr;
    for (unsigned depth = 0; depth < prefix.length(); ++depth) {
      node = node->children[prefix.network().bit(depth) ? 1 : 0].get();
      if (node == nullptr) break;
      if (node->value) best = &*node->value;
    }
    return best;
  }

  /// Removes a prefix; returns whether it was present. (Interior nodes are
  /// left in place; fine for the build-once-query-many usage here.)
  bool erase(const Prefix4& prefix) {
    Node* node = &root_;
    for (unsigned depth = 0; depth < prefix.length(); ++depth) {
      node = node->children[prefix.network().bit(depth) ? 1 : 0].get();
      if (node == nullptr) return false;
    }
    if (!node->value) return false;
    node->value.reset();
    --size_;
    return true;
  }

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }

  /// Visits all (prefix, value) pairs in lexicographic (prefix) order.
  template <typename Visitor>
  void for_each(Visitor&& visit) const {
    visit_node(root_, Ipv4Addr{0}, 0, visit);
  }

 private:
  struct Node {
    std::optional<T> value;
    std::array<std::unique_ptr<Node>, 2> children;
  };

  template <typename Visitor>
  static void visit_node(const Node& node, Ipv4Addr addr, unsigned depth,
                         Visitor& visit) {
    if (node.value) visit(Prefix4{addr, depth}, *node.value);
    for (int bit = 0; bit < 2; ++bit) {
      if (!node.children[bit]) continue;
      const std::uint32_t bits =
          bit ? addr.bits() | (std::uint32_t{1} << (31 - depth)) : addr.bits();
      visit_node(*node.children[bit], Ipv4Addr{bits}, depth + 1, visit);
    }
  }

  Node root_;
  std::size_t size_ = 0;
};

}  // namespace asrel::net
