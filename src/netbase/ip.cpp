#include "netbase/ip.hpp"

#include <charconv>
#include <vector>

namespace asrel::net {

namespace {

std::optional<std::uint32_t> parse_decimal(std::string_view text,
                                           std::uint32_t max) {
  if (text.empty()) return std::nullopt;
  std::uint32_t value = 0;
  const char* end = text.data() + text.size();
  auto [ptr, ec] = std::from_chars(text.data(), end, value);
  if (ec != std::errc{} || ptr != end || value > max) return std::nullopt;
  return value;
}

std::optional<std::uint32_t> parse_hex16(std::string_view text) {
  if (text.empty() || text.size() > 4) return std::nullopt;
  std::uint32_t value = 0;
  const char* end = text.data() + text.size();
  auto [ptr, ec] = std::from_chars(text.data(), end, value, 16);
  if (ec != std::errc{} || ptr != end) return std::nullopt;
  return value;
}

}  // namespace

std::optional<Ipv4Addr> parse_ipv4(std::string_view text) {
  std::uint32_t bits = 0;
  for (int octet = 0; octet < 4; ++octet) {
    const auto dot = text.find('.');
    const bool last = octet == 3;
    if (last != (dot == std::string_view::npos)) return std::nullopt;
    const auto part = last ? text : text.substr(0, dot);
    const auto value = parse_decimal(part, 255);
    if (!value) return std::nullopt;
    bits = (bits << 8) | *value;
    if (!last) text.remove_prefix(dot + 1);
  }
  return Ipv4Addr{bits};
}

std::optional<Ipv6Addr> parse_ipv6(std::string_view text) {
  // Split on "::" first; each side is a run of ':'-separated hex groups.
  std::vector<std::uint32_t> head;
  std::vector<std::uint32_t> tail;
  bool compressed = false;

  const auto parse_groups = [](std::string_view part,
                               std::vector<std::uint32_t>& out) {
    if (part.empty()) return true;
    while (true) {
      const auto colon = part.find(':');
      const auto group =
          colon == std::string_view::npos ? part : part.substr(0, colon);
      const auto value = parse_hex16(group);
      if (!value) return false;
      out.push_back(*value);
      if (colon == std::string_view::npos) return true;
      part.remove_prefix(colon + 1);
    }
  };

  if (const auto gap = text.find("::"); gap != std::string_view::npos) {
    compressed = true;
    if (text.find("::", gap + 1) != std::string_view::npos)
      return std::nullopt;  // at most one "::"
    if (!parse_groups(text.substr(0, gap), head)) return std::nullopt;
    if (!parse_groups(text.substr(gap + 2), tail)) return std::nullopt;
  } else {
    if (!parse_groups(text, head)) return std::nullopt;
  }

  const std::size_t given = head.size() + tail.size();
  if (compressed ? given > 7 : given != 8) return std::nullopt;

  std::array<std::uint32_t, 8> groups{};
  for (std::size_t i = 0; i < head.size(); ++i) groups[i] = head[i];
  for (std::size_t i = 0; i < tail.size(); ++i)
    groups[8 - tail.size() + i] = tail[i];

  std::uint64_t high = 0;
  std::uint64_t low = 0;
  for (int i = 0; i < 4; ++i) high = (high << 16) | groups[i];
  for (int i = 4; i < 8; ++i) low = (low << 16) | groups[i];
  return Ipv6Addr{high, low};
}

std::string to_string(Ipv4Addr addr) {
  const std::uint32_t b = addr.bits();
  return std::to_string((b >> 24) & 0xFF) + "." +
         std::to_string((b >> 16) & 0xFF) + "." +
         std::to_string((b >> 8) & 0xFF) + "." + std::to_string(b & 0xFF);
}

std::string to_string(Ipv6Addr addr) {
  std::array<std::uint32_t, 8> groups{};
  for (int i = 0; i < 4; ++i)
    groups[i] = static_cast<std::uint32_t>((addr.high() >> (48 - 16 * i)) &
                                           0xFFFFu);
  for (int i = 0; i < 4; ++i)
    groups[4 + i] =
        static_cast<std::uint32_t>((addr.low() >> (48 - 16 * i)) & 0xFFFFu);

  // Find the longest run of zero groups (>= 2) to compress as "::".
  int best_start = -1;
  int best_len = 1;
  for (int i = 0; i < 8;) {
    if (groups[i] != 0) {
      ++i;
      continue;
    }
    int j = i;
    while (j < 8 && groups[j] == 0) ++j;
    if (j - i > best_len) {
      best_len = j - i;
      best_start = i;
    }
    i = j;
  }

  const auto hex = [](std::uint32_t value) {
    char buffer[5];
    auto [ptr, ec] = std::to_chars(buffer, buffer + sizeof buffer, value, 16);
    (void)ec;
    return std::string(buffer, ptr);
  };

  std::string out;
  for (int i = 0; i < 8;) {
    if (i == best_start) {
      // The group before the run omitted its separator, so the compressed
      // run always contributes both colons.
      out += "::";
      i += best_len;
      if (i == 8) return out;
      continue;
    }
    out += hex(groups[i]);
    if (++i < 8 && i != best_start) out += ":";
  }
  return out;
}

Prefix6::Prefix6(Ipv6Addr addr, unsigned length)
    : length_(static_cast<std::uint8_t>(length)) {
  std::uint64_t high = addr.high();
  std::uint64_t low = addr.low();
  if (length == 0) {
    high = low = 0;
  } else if (length <= 64) {
    high &= length == 64 ? ~std::uint64_t{0}
                         : ~std::uint64_t{0} << (64 - length);
    low = 0;
  } else if (length < 128) {
    low &= ~std::uint64_t{0} << (128 - length);
  }
  addr_ = Ipv6Addr{high, low};
}

bool Prefix6::contains(Ipv6Addr addr) const {
  return Prefix6{addr, length_}.network() == addr_;
}

bool Prefix6::contains(const Prefix6& other) const {
  return other.length_ >= length_ && contains(other.addr_);
}

namespace {

template <typename Addr, typename Parser>
std::optional<std::pair<Addr, unsigned>> split_cidr(std::string_view text,
                                                    Parser parse,
                                                    unsigned max_length) {
  const auto slash = text.find('/');
  if (slash == std::string_view::npos) return std::nullopt;
  const auto addr = parse(text.substr(0, slash));
  const auto length = parse_decimal(text.substr(slash + 1), max_length);
  if (!addr || !length) return std::nullopt;
  return std::pair{*addr, *length};
}

}  // namespace

std::optional<Prefix4> parse_prefix4(std::string_view text) {
  const auto parts = split_cidr<Ipv4Addr>(text, parse_ipv4, 32);
  if (!parts) return std::nullopt;
  return Prefix4{parts->first, parts->second};
}

std::optional<Prefix6> parse_prefix6(std::string_view text) {
  const auto parts = split_cidr<Ipv6Addr>(text, parse_ipv6, 128);
  if (!parts) return std::nullopt;
  return Prefix6{parts->first, parts->second};
}

std::string to_string(const Prefix4& prefix) {
  return to_string(prefix.network()) + "/" + std::to_string(prefix.length());
}

std::string to_string(const Prefix6& prefix) {
  return to_string(prefix.network()) + "/" + std::to_string(prefix.length());
}

}  // namespace asrel::net
