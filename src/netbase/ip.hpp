// IPv4/IPv6 address and prefix value types.
//
// Used by the RIR substrate (delegated address blocks), the RPSL substrate
// (route objects), and the BGP substrate (announced prefixes).
#pragma once

#include <array>
#include <compare>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>

namespace asrel::net {

/// An IPv4 address held in host byte order.
class Ipv4Addr {
 public:
  constexpr Ipv4Addr() = default;
  constexpr explicit Ipv4Addr(std::uint32_t bits) : bits_(bits) {}
  constexpr Ipv4Addr(std::uint8_t a, std::uint8_t b, std::uint8_t c,
                     std::uint8_t d)
      : bits_((std::uint32_t{a} << 24) | (std::uint32_t{b} << 16) |
              (std::uint32_t{c} << 8) | d) {}

  [[nodiscard]] constexpr std::uint32_t bits() const { return bits_; }

  /// The `index`-th bit counted from the most significant end (0-based).
  [[nodiscard]] constexpr bool bit(unsigned index) const {
    return ((bits_ >> (31 - index)) & 1u) != 0;
  }

  friend constexpr auto operator<=>(Ipv4Addr, Ipv4Addr) = default;

 private:
  std::uint32_t bits_ = 0;
};

/// An IPv6 address held as two 64-bit halves in host byte order.
class Ipv6Addr {
 public:
  constexpr Ipv6Addr() = default;
  constexpr Ipv6Addr(std::uint64_t high, std::uint64_t low)
      : high_(high), low_(low) {}

  [[nodiscard]] constexpr std::uint64_t high() const { return high_; }
  [[nodiscard]] constexpr std::uint64_t low() const { return low_; }

  [[nodiscard]] constexpr bool bit(unsigned index) const {
    return index < 64 ? ((high_ >> (63 - index)) & 1u) != 0
                      : ((low_ >> (127 - index)) & 1u) != 0;
  }

  friend constexpr auto operator<=>(Ipv6Addr, Ipv6Addr) = default;

 private:
  std::uint64_t high_ = 0;
  std::uint64_t low_ = 0;
};

/// "10.2.0.1" -> Ipv4Addr. Rejects anything that is not a dotted quad.
[[nodiscard]] std::optional<Ipv4Addr> parse_ipv4(std::string_view text);

/// RFC 4291 textual form, including "::" compression and mixed case hex.
/// (No embedded-IPv4 tail form; the data sets here never use it.)
[[nodiscard]] std::optional<Ipv6Addr> parse_ipv6(std::string_view text);

[[nodiscard]] std::string to_string(Ipv4Addr addr);
[[nodiscard]] std::string to_string(Ipv6Addr addr);

/// An IPv4 CIDR prefix. The network address is kept canonical (host bits
/// outside the mask are zeroed on construction).
class Prefix4 {
 public:
  constexpr Prefix4() = default;
  constexpr Prefix4(Ipv4Addr addr, unsigned length)
      : addr_(Ipv4Addr{length == 0 ? 0 : (addr.bits() & mask_bits(length))}),
        length_(static_cast<std::uint8_t>(length)) {}

  [[nodiscard]] constexpr Ipv4Addr network() const { return addr_; }
  [[nodiscard]] constexpr unsigned length() const { return length_; }

  [[nodiscard]] constexpr bool contains(Ipv4Addr addr) const {
    if (length_ == 0) return true;
    return (addr.bits() & mask_bits(length_)) == addr_.bits();
  }
  [[nodiscard]] constexpr bool contains(const Prefix4& other) const {
    return other.length_ >= length_ && contains(other.addr_);
  }

  /// Number of addresses covered: 2^(32-length).
  [[nodiscard]] constexpr std::uint64_t address_count() const {
    return std::uint64_t{1} << (32 - length_);
  }

  friend constexpr auto operator<=>(const Prefix4&, const Prefix4&) = default;

 private:
  static constexpr std::uint32_t mask_bits(unsigned length) {
    return length == 0 ? 0u : ~std::uint32_t{0} << (32 - length);
  }
  Ipv4Addr addr_;
  std::uint8_t length_ = 0;
};

/// An IPv6 CIDR prefix, canonicalized like Prefix4.
class Prefix6 {
 public:
  constexpr Prefix6() = default;
  Prefix6(Ipv6Addr addr, unsigned length);

  [[nodiscard]] Ipv6Addr network() const { return addr_; }
  [[nodiscard]] unsigned length() const { return length_; }
  [[nodiscard]] bool contains(Ipv6Addr addr) const;
  [[nodiscard]] bool contains(const Prefix6& other) const;

  friend auto operator<=>(const Prefix6&, const Prefix6&) = default;

 private:
  Ipv6Addr addr_;
  std::uint8_t length_ = 0;
};

/// "10.0.0.0/8" -> Prefix4 (network part canonicalized). Length > 32 rejected.
[[nodiscard]] std::optional<Prefix4> parse_prefix4(std::string_view text);
[[nodiscard]] std::optional<Prefix6> parse_prefix6(std::string_view text);

[[nodiscard]] std::string to_string(const Prefix4& prefix);
[[nodiscard]] std::string to_string(const Prefix6& prefix);

}  // namespace asrel::net

template <>
struct std::hash<asrel::net::Ipv4Addr> {
  std::size_t operator()(asrel::net::Ipv4Addr addr) const noexcept {
    return std::hash<std::uint32_t>{}(addr.bits());
  }
};

template <>
struct std::hash<asrel::net::Prefix4> {
  std::size_t operator()(const asrel::net::Prefix4& prefix) const noexcept {
    return std::hash<std::uint64_t>{}(
        (std::uint64_t{prefix.network().bits()} << 8) | prefix.length());
  }
};
