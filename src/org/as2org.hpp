// CAIDA AS-to-Organization data set: model, parser, writer.
//
// The paper (§4.2) uses this data set to find sibling (S2S) relationships —
// links between two ASes of the same organization — which must be removed
// from validation unless the classifier handles them explicitly.
//
// File layout (pipe-separated, two sections introduced by format comments):
//   # format: org_id|changed|org_name|country|source
//   # format: aut|changed|aut_name|org_id|opaque_id|source
#pragma once

#include <iosfwd>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "asn/asn.hpp"

namespace asrel::org {

struct Organization {
  std::string org_id;
  std::string changed;  // YYYYMMDD
  std::string name;
  std::string country;  // ISO alpha-2
  std::string source;
};

struct AsEntry {
  asn::Asn asn;
  std::string changed;
  std::string name;
  std::string org_id;
  std::string opaque_id;
  std::string source;
};

struct As2OrgFile {
  std::vector<Organization> organizations;
  std::vector<AsEntry> ases;
};

[[nodiscard]] As2OrgFile parse_as2org(std::istream& in);
[[nodiscard]] As2OrgFile parse_as2org_text(std::string_view text);
void write_as2org(const As2OrgFile& file, std::ostream& out);
[[nodiscard]] std::string to_text(const As2OrgFile& file);

/// Indexed view used by the validation cleaner.
class OrgMap {
 public:
  OrgMap() = default;
  explicit OrgMap(const As2OrgFile& file);

  /// Org id for an ASN, empty if unmapped.
  [[nodiscard]] std::string_view org_of(asn::Asn asn) const;

  /// True iff both ASNs are mapped and share an organization.
  [[nodiscard]] bool are_siblings(asn::Asn a, asn::Asn b) const;

  /// All ASNs of the organization that owns `asn` (including itself);
  /// empty if unmapped.
  [[nodiscard]] std::vector<asn::Asn> siblings_of(asn::Asn asn) const;

  [[nodiscard]] std::size_t as_count() const { return as_to_org_.size(); }
  [[nodiscard]] std::size_t org_count() const { return org_to_ases_.size(); }

 private:
  std::unordered_map<asn::Asn, std::string> as_to_org_;
  std::unordered_map<std::string, std::vector<asn::Asn>> org_to_ases_;
};

}  // namespace asrel::org
