#include "org/as2org.hpp"

#include <algorithm>
#include <istream>
#include <ostream>
#include <sstream>

namespace asrel::org {

namespace {

std::vector<std::string> split_pipe(std::string_view line) {
  std::vector<std::string> fields;
  while (true) {
    const auto bar = line.find('|');
    if (bar == std::string_view::npos) {
      fields.emplace_back(line);
      return fields;
    }
    fields.emplace_back(line.substr(0, bar));
    line.remove_prefix(bar + 1);
  }
}

}  // namespace

As2OrgFile parse_as2org(std::istream& in) {
  As2OrgFile file;
  enum class Section { kNone, kOrg, kAs } section = Section::kNone;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    if (line[0] == '#') {
      if (line.find("org_id|changed|org_name") != std::string::npos) {
        section = Section::kOrg;
      } else if (line.find("aut|changed|aut_name") != std::string::npos) {
        section = Section::kAs;
      }
      continue;
    }
    auto fields = split_pipe(line);
    if (section == Section::kOrg && fields.size() >= 5) {
      file.organizations.push_back({std::move(fields[0]), std::move(fields[1]),
                                    std::move(fields[2]), std::move(fields[3]),
                                    std::move(fields[4])});
    } else if (section == Section::kAs && fields.size() >= 6) {
      const auto asn = asn::parse_asn(fields[0]);
      if (!asn) continue;
      file.ases.push_back({*asn, std::move(fields[1]), std::move(fields[2]),
                           std::move(fields[3]), std::move(fields[4]),
                           std::move(fields[5])});
    }
  }
  return file;
}

As2OrgFile parse_as2org_text(std::string_view text) {
  std::istringstream in{std::string{text}};
  return parse_as2org(in);
}

void write_as2org(const As2OrgFile& file, std::ostream& out) {
  out << "# format: org_id|changed|org_name|country|source\n";
  for (const auto& org : file.organizations) {
    out << org.org_id << '|' << org.changed << '|' << org.name << '|'
        << org.country << '|' << org.source << '\n';
  }
  out << "# format: aut|changed|aut_name|org_id|opaque_id|source\n";
  for (const auto& entry : file.ases) {
    out << entry.asn.value() << '|' << entry.changed << '|' << entry.name
        << '|' << entry.org_id << '|' << entry.opaque_id << '|' << entry.source
        << '\n';
  }
}

std::string to_text(const As2OrgFile& file) {
  std::ostringstream out;
  write_as2org(file, out);
  return out.str();
}

OrgMap::OrgMap(const As2OrgFile& file) {
  for (const auto& entry : file.ases) {
    as_to_org_[entry.asn] = entry.org_id;
    org_to_ases_[entry.org_id].push_back(entry.asn);
  }
  for (auto& [org, ases] : org_to_ases_) std::sort(ases.begin(), ases.end());
}

std::string_view OrgMap::org_of(asn::Asn asn) const {
  const auto it = as_to_org_.find(asn);
  return it == as_to_org_.end() ? std::string_view{} : it->second;
}

bool OrgMap::are_siblings(asn::Asn a, asn::Asn b) const {
  const auto org_a = org_of(a);
  return !org_a.empty() && org_a == org_of(b);
}

std::vector<asn::Asn> OrgMap::siblings_of(asn::Asn asn) const {
  const auto it = as_to_org_.find(asn);
  if (it == as_to_org_.end()) return {};
  const auto org_it = org_to_ases_.find(it->second);
  return org_it == org_to_ases_.end() ? std::vector<asn::Asn>{}
                                      : org_it->second;
}

}  // namespace asrel::org
