// DeltaAudit: incrementally maintained link-class state for the streaming
// pipeline.
//
// BiasAudit tabulates both class names for every observed link from
// scratch — the expensive part of snapshot publication. Under churn almost
// nothing about that tabulation changes: regional classes depend only on
// the (fixed) delegation data, and a link's topological class moves only
// when one of its endpoints gains its first or loses its last ground-truth
// customer. DeltaAudit tracks exactly that: a live per-node transit bit
// updated from touched edges, plus a lazily filled class cache whose
// topological entries are invalidated precisely when an incident AS flips
// category. Classes are computed by the same eval:: code paths BiasAudit
// uses, so every cached string is byte-identical to a from-scratch audit.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/snapshot_builder.hpp"
#include "eval/link_class.hpp"
#include "rir/region_mapper.hpp"
#include "topology/generator.hpp"
#include "validation/label.hpp"

namespace asrel::stream {

class DeltaAudit {
 public:
  /// Captures the static inputs (hypergiant/Tier-1 membership, delegation
  /// data) and the initial transit bits from `world`. The world reference
  /// is not retained; pass the live graph to on_edges_touched instead.
  explicit DeltaAudit(const topo::World& world);

  // The TopoClassifier's membership lambdas capture `this`.
  DeltaAudit(const DeltaAudit&) = delete;
  DeltaAudit& operator=(const DeltaAudit&) = delete;

  /// Refreshes the transit bit of every endpoint of `touched` by scanning
  /// its live adjacency, and re-classifies cached links incident to any
  /// AS whose topological category changed. O(degree) per endpoint plus
  /// O(cached incident links) per actual category flip.
  void on_edges_touched(const topo::AsGraph& graph,
                        std::span<const topo::EdgeId> touched);

  /// Same class strings a fresh BiasAudit over the current world would
  /// produce. Lazily cached; safe to call for any link.
  [[nodiscard]] const std::string& regional_class_of(const val::AsLink& link);
  [[nodiscard]] const std::string& topological_class_of(
      const val::AsLink& link);

  /// Adapter for core::rebuild_snapshot_sections — the snapshot's links
  /// section pulls classes from the cache instead of a fresh BiasAudit.
  [[nodiscard]] core::SnapshotClassSource class_source();

  [[nodiscard]] const rir::RegionMapper& region_mapper() const {
    return mapper_;
  }

  /// ASNs whose transit bit is currently set, ascending — the audit's
  /// effective state (a false entry and an absent one classify alike).
  /// Used for checkpoint capture and the restore-time cross-check against
  /// a freshly derived audit.
  [[nodiscard]] std::vector<asn::Asn> sorted_transit_asns() const;

 private:
  [[nodiscard]] std::uint32_t slot_of(const val::AsLink& link);

  std::unordered_set<asn::Asn> hypergiants_;
  std::unordered_set<asn::Asn> tier1_;
  /// Live "has at least one ground-truth customer" bit per ASN. Keyed by
  /// ASN (not NodeId) because the classifier and links are ASN-space.
  std::unordered_map<asn::Asn, bool> transit_;
  rir::RegionMapper mapper_;
  eval::TopoClassifier topo_;

  // Lazy class cache. regional entries never invalidate (delegations are
  // static); topological entries are rewritten in place on category flips.
  std::unordered_map<val::AsLink, std::uint32_t> slot_;
  std::vector<val::AsLink> link_of_slot_;  ///< inverse of slot_
  std::vector<std::string> regional_cache_;
  std::vector<std::string> topological_cache_;
  /// Cached slots touching each AS — the invalidation fan-out on a flip.
  std::unordered_map<asn::Asn, std::vector<std::uint32_t>> incident_;
};

}  // namespace asrel::stream
