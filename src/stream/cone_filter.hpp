// Cone-intersection prefilter for incremental re-convergence.
//
// The conservative rib_affected scan runs for every origin on every
// structural event; ROADMAP flags that it over-triggers on hub-edge
// events. For one event shape the dirty set can be bounded *before* any
// per-origin work: a brand-new pure-P2P edge. Such an edge is nobody's
// selected via (its id is fresh), so rib_affected can only fire through
// its offer checks — and a peer offer for origin o requires the exporting
// endpoint to hold a *customer* route for o, i.e. o must sit in that
// endpoint's customer cone (reachable by descending provider->customer
// and sibling edges). Origins outside downcone(u) ∪ downcone(v) are
// therefore provably unaffected and skip the scan entirely.
//
// The filter is intentionally NOT applied to removals, flips, or scope
// changes: for those the old rib may route *through* the touched edge,
// and rib_affected's via check — which the prefilter would bypass — is
// what catches that. Hybrid edges along the cone walk are traversed if
// either of their two relationships permits descent (a conservative
// superset over every per-origin resolution); export scopes and the
// path-length cutoff are ignored, also conservatively.
#pragma once

#include <cstdint>
#include <vector>

#include "topology/graph.hpp"

namespace asrel::stream {

/// True if `edge` (freshly added by this event) qualifies for the
/// prefilter: a live, pure (non-hybrid) P2P edge.
[[nodiscard]] bool cone_filter_applies(const topo::Edge& edge);

/// Bitmap over NodeIds: 1 for origins that may be affected by the new
/// edge (the union of both endpoints' customer cones, conservatively
/// including sibling and hybrid descent), 0 for origins the incremental
/// propagator may skip without scanning.
[[nodiscard]] std::vector<std::uint8_t> p2p_add_candidates(
    const topo::AsGraph& graph, const topo::Edge& edge);

}  // namespace asrel::stream
