// StreamSession: the live end-to-end pipeline.
//
// A session owns the mutable world plus every piece of derived state the
// batch pipeline computes once — per-origin ribs, the collector path
// table, link classes, the serving snapshot — and keeps them all
// consistent under a stream of ChurnEvents at a fraction of a full
// rebuild's cost:
//
//   apply(event)   mutate graph -> update audit transit bits ->
//                  rib_affected scan over all origins (conservative,
//                  O(events) per origin) -> re-propagate only the dirty
//                  origins and re-harvest just their path-table buckets.
//   publish()      re-run the downstream stages (sanitize/schemes/
//                  extract/clean/regions) over the maintained paths, then
//                  rebuild only the snapshot sections the epoch's events
//                  could have changed, classes served from the DeltaAudit
//                  cache.
//
// The invariant the metamorphic suite enforces: after ANY event sequence,
// publish()'s snapshot is byte-identical to reference_snapshot() — a
// from-scratch rebuild of the same final world. Incrementality changes
// cost, never bytes.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "bgp/propagation.hpp"
#include "core/scenario.hpp"
#include "io/snapshot.hpp"
#include "stream/churn.hpp"
#include "stream/delta_audit.hpp"

namespace asrel::stream {

class StreamSession {
 public:
  /// Runs the batch pipeline once (same stages as Scenario::build) to
  /// establish epoch 1 state. `params.threads` governs both the initial
  /// build and the per-event re-convergence scans.
  explicit StreamSession(const core::ScenarioParams& params);

  StreamSession(const StreamSession&) = delete;
  StreamSession& operator=(const StreamSession&) = delete;

  struct EventOutcome {
    bool applied = false;          ///< false: structural no-op
    std::size_t dirty_origins = 0; ///< origins re-propagated
  };

  /// Applies one event and re-converges the affected origins. Cheap for
  /// no-ops (nothing touched -> nothing scanned).
  EventOutcome apply(const ChurnEvent& event);

  /// Ends the epoch: refreshes derived pipeline state if any event since
  /// the last publish changed the graph or paths, rebuilds the dirty
  /// snapshot sections, and stamps meta.epoch/built_unix_ms. Returns the
  /// maintained snapshot (copy it to hand to EngineHub::publish).
  const io::Snapshot& publish(std::uint64_t built_unix_ms);

  /// From-scratch rebuild of the current world — the oracle for the
  /// byte-equality invariant. Stamps the same epoch/built_unix_ms the
  /// last publish() used, so equal state implies equal bytes.
  [[nodiscard]] io::Snapshot reference_snapshot(
      std::uint64_t built_unix_ms) const;

  struct Stats {
    std::uint64_t events_applied = 0;
    std::uint64_t events_noop = 0;
    std::uint64_t origins_redone = 0;   ///< re-propagated origins, cumulative
    std::uint64_t origins_skipped = 0;  ///< proven-clean origins, cumulative
    std::uint64_t epochs_published = 0;
  };
  [[nodiscard]] const Stats& stats() const { return stats_; }

  /// Published epoch counter: 1 after construction, +1 per publish() —
  /// aligned with EngineHub's epoch when every publish is forwarded.
  [[nodiscard]] std::uint64_t epoch() const { return epoch_; }
  [[nodiscard]] const topo::World& world() const { return world_; }
  [[nodiscard]] const io::Snapshot& snapshot() const { return snapshot_; }
  [[nodiscard]] const core::Scenario& scenario() const { return *scenario_; }

 private:
  void reconverge(std::span<const topo::EdgeId> touched);

  core::ScenarioParams params_;  ///< effective (threads override applied)
  topo::World world_;
  std::vector<bgp::VantagePoint> vps_;
  std::vector<bgp::VpSession> sessions_;
  std::unique_ptr<bgp::Propagator> propagator_;
  std::vector<bgp::OriginRib> ribs_;  ///< by origin NodeId
  bgp::PathTable paths_;
  std::unique_ptr<DeltaAudit> audit_;
  std::unique_ptr<core::Scenario> scenario_;
  io::Snapshot snapshot_;
  std::uint64_t epoch_ = 0;
  Stats stats_;

  // Dirtiness accumulated since the last publish. Any structural event
  // dirties the graph-derived sections; origin changes additionally dirty
  // everything path-derived. Prefix-only epochs leave both false and
  // publish() just restamps the meta.
  bool graph_dirty_ = false;
  bool paths_dirty_ = false;
};

}  // namespace asrel::stream
