// StreamSession: the live end-to-end pipeline.
//
// A session owns the mutable world plus every piece of derived state the
// batch pipeline computes once — per-origin ribs, the collector path
// table, link classes, the serving snapshot — and keeps them all
// consistent under a stream of ChurnEvents at a fraction of a full
// rebuild's cost:
//
//   apply(event)   mutate graph -> update audit transit bits ->
//                  rib_affected scan over all origins (conservative,
//                  O(events) per origin; pure-P2P link adds first narrow
//                  the scan to the endpoints' customer cones) ->
//                  re-propagate only the dirty origins and re-harvest
//                  just their path-table buckets.
//   publish()      re-run the downstream stages (sanitize/schemes/
//                  extract/clean/regions) over the maintained paths, then
//                  rebuild only the snapshot sections the epoch's events
//                  could have changed, classes served from the DeltaAudit
//                  cache.
//
// The invariant the metamorphic suite enforces: after ANY event sequence,
// publish()'s snapshot is byte-identical to reference_snapshot() — a
// from-scratch rebuild of the same final world. Incrementality changes
// cost, never bytes.
//
// Resilience (DESIGN.md §14): checkpoint()/restore() extend that
// invariant across process death — a restarted session resumes at epoch
// K+1 with its next publish byte-identical to a never-crashed run — and
// run_watchdog() byte-compares the maintained snapshot against the
// reference on a cadence, self-healing by full rebuild if they ever
// disagree.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "bgp/propagation.hpp"
#include "core/scenario.hpp"
#include "io/snapshot.hpp"
#include "stream/checkpoint.hpp"
#include "stream/churn.hpp"
#include "stream/delta_audit.hpp"

namespace asrel::stream {

class StreamSession {
 public:
  /// Runs the batch pipeline once (same stages as Scenario::build) to
  /// establish epoch 1 state. `params.threads` governs both the initial
  /// build and the per-event re-convergence scans.
  explicit StreamSession(const core::ScenarioParams& params);

  StreamSession(const StreamSession&) = delete;
  StreamSession& operator=(const StreamSession&) = delete;

  struct EventOutcome {
    bool applied = false;          ///< false: structural no-op
    std::size_t dirty_origins = 0; ///< origins re-propagated
  };

  /// Applies one event and re-converges the affected origins. Cheap for
  /// no-ops (nothing touched -> nothing scanned). Under fault injection
  /// (Site::kStreamApply) throws std::bad_alloc before mutating anything
  /// and poisons the session; a poisoned session refuses further work and
  /// must be replaced via restore() or a fresh bootstrap.
  EventOutcome apply(const ChurnEvent& event);

  /// Ends the epoch: refreshes derived pipeline state if any event since
  /// the last publish changed the graph or paths, rebuilds the dirty
  /// snapshot sections, and stamps meta.epoch/built_unix_ms. Returns the
  /// maintained snapshot (copy it to hand to EngineHub::publish).
  /// Throws std::logic_error on a poisoned session.
  const io::Snapshot& publish(std::uint64_t built_unix_ms);

  /// From-scratch rebuild of the current world — the oracle for the
  /// byte-equality invariant. Stamps the same epoch/built_unix_ms the
  /// last publish() used, so equal state implies equal bytes.
  [[nodiscard]] io::Snapshot reference_snapshot(
      std::uint64_t built_unix_ms) const;

  // ---- resilience ----

  /// Captures the session's durable state (DESIGN.md §14 format). The
  /// caller supplies the feed resume position it wants persisted.
  /// Throws std::logic_error on a poisoned session.
  [[nodiscard]] StreamCheckpoint checkpoint(std::uint64_t feed_position) const;

  /// Rebuilds a session from a checkpoint: regenerates the static world
  /// from `params`, verifies the fingerprint and the audit cross-check,
  /// and reinstalls edges/ribs/prefixes without re-propagating. Returns
  /// null (with `*error` filled) if the checkpoint belongs to a different
  /// world or fails its integrity checks — callers then fall down the
  /// recovery ladder. On success epoch() == checkpoint.epoch and the next
  /// publish is byte-identical to a never-crashed run's.
  [[nodiscard]] static std::unique_ptr<StreamSession> restore(
      const core::ScenarioParams& params, const StreamCheckpoint& checkpoint,
      std::string* error = nullptr);

  struct WatchdogReport {
    bool ran = false;      ///< false: audit skipped (dirty or poisoned)
    bool diverged = false;
    bool healed = false;
    std::string first_diff_section;  ///< e.g. "links"; set iff diverged
  };

  /// Divergence watchdog: byte-compares the maintained snapshot against a
  /// from-scratch reference of the same world. Runs only when no events
  /// are pending publication (call it right after publish()). On
  /// divergence it raises asrel_stream_divergence_total, reports the
  /// first differing section, and self-heals by rebuilding every piece of
  /// incremental state from the world — after which the maintained bytes
  /// re-satisfy the oracle and the caller should re-publish snapshot().
  WatchdogReport run_watchdog();

  /// True after an injected apply-path failure: state may be mid-mutation
  /// and publish()/checkpoint() refuse to run. Recover by restoring from
  /// the last checkpoint.
  [[nodiscard]] bool poisoned() const { return poisoned_; }

  struct Stats {
    std::uint64_t events_applied = 0;
    std::uint64_t events_noop = 0;
    std::uint64_t origins_redone = 0;   ///< re-propagated origins, cumulative
    std::uint64_t origins_skipped = 0;  ///< proven-clean origins, cumulative
    /// Of origins_skipped, those the cone prefilter excluded before the
    /// rib scan even ran (pure-P2P link adds only).
    std::uint64_t origins_skipped_cone = 0;
    std::uint64_t epochs_published = 0;
    std::uint64_t divergences = 0;  ///< watchdog mismatches detected
    std::uint64_t heals = 0;        ///< successful self-heals
  };
  [[nodiscard]] const Stats& stats() const { return stats_; }

  /// Published epoch counter: 1 after construction, +1 per publish() —
  /// aligned with EngineHub's epoch when every publish is forwarded.
  [[nodiscard]] std::uint64_t epoch() const { return epoch_; }
  [[nodiscard]] const topo::World& world() const { return world_; }
  [[nodiscard]] const io::Snapshot& snapshot() const { return snapshot_; }
  [[nodiscard]] const core::Scenario& scenario() const { return *scenario_; }

 private:
  struct RestoreTag {};
  /// Static-state-only construction (world/vps/propagator/sessions);
  /// restore() fills in the rest from the checkpoint.
  StreamSession(const core::ScenarioParams& params, RestoreTag);

  void init_static(const core::ScenarioParams& params);
  /// Re-derives ribs/paths/audit/scenario/snapshot from world_ alone (the
  /// bootstrap body, reused by the watchdog's self-heal).
  void rebuild_derived_state();
  void reconverge(std::span<const topo::EdgeId> touched,
                  const std::vector<std::uint8_t>* cone_candidates);

  core::ScenarioParams params_;  ///< effective (threads override applied)
  topo::World world_;
  std::vector<bgp::VantagePoint> vps_;
  std::vector<bgp::VpSession> sessions_;
  std::unique_ptr<bgp::Propagator> propagator_;
  std::vector<bgp::OriginRib> ribs_;  ///< by origin NodeId
  bgp::PathTable paths_;
  std::unique_ptr<DeltaAudit> audit_;
  std::unique_ptr<core::Scenario> scenario_;
  io::Snapshot snapshot_;
  std::uint64_t epoch_ = 0;
  Stats stats_;
  bool poisoned_ = false;

  // Dirtiness accumulated since the last publish. Any structural event
  // dirties the graph-derived sections; origin changes additionally dirty
  // everything path-derived. Prefix-only epochs leave both false and
  // publish() just restamps the meta.
  bool graph_dirty_ = false;
  bool paths_dirty_ = false;
};

/// The recovery ladder: newest checkpoint -> previous checkpoint -> cold
/// bootstrap. Rejected candidates (torn files, foreign fingerprints) are
/// counted and narrated in `detail`; the ladder never yields a session
/// older than the newest *valid* checkpoint, so a restarted server cannot
/// serve an epoch below what it last durably persisted.
struct RecoveryOutcome {
  std::unique_ptr<StreamSession> session;
  std::uint64_t resumed_epoch = 0;   ///< 0 = cold bootstrap
  std::uint64_t feed_position = 0;   ///< events already reflected
  std::size_t checkpoints_rejected = 0;
  std::string detail;  ///< human-readable recovery story for logs/statsz
};

[[nodiscard]] RecoveryOutcome recover_session(
    const core::ScenarioParams& params, const CheckpointDir& dir);

}  // namespace asrel::stream
