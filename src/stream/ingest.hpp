// Backpressured ingest: the bounded queue between a churn feed and the
// session's apply() loop.
//
// A live feeder can outrun re-convergence (a hub-edge event costs many
// origin re-propagations). Unbounded buffering turns that into unbounded
// memory and unbounded staleness, so the queue is capped and the producer
// picks what saturation means:
//
//   kBlock    — producer waits for space. Lossless; feed_position resumes
//               are exact, so this is the policy checkpointed deployments
//               and the chaos suite use.
//   kShed     — incoming events are dropped (and counted) while full.
//   kCoalesce — an incoming event replaces a queued event for the same
//               key (same link, or same origin+prefix) in place, keeping
//               only the newest intent; with no queued partner it sheds.
//
// Consumers drain with pop(), which blocks until an event arrives or the
// queue is closed *and* empty — close() is the drain-aware shutdown: the
// producer stops, the consumer finishes the backlog, then exits.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <string_view>

#include "stream/churn.hpp"

namespace asrel::stream {

enum class QueuePolicy : std::uint8_t { kBlock = 0, kShed, kCoalesce };

[[nodiscard]] std::string_view to_string(QueuePolicy policy);
[[nodiscard]] std::optional<QueuePolicy> parse_queue_policy(
    std::string_view text);

/// One queued event with its feed sequence number. Consumers track
/// max(seq)+1 as the resume position a checkpoint persists.
struct QueuedEvent {
  std::uint64_t seq = 0;
  ChurnEvent event;
};

class EventQueue {
 public:
  explicit EventQueue(std::size_t cap, QueuePolicy policy);

  /// Enqueues per the policy. Returns false only when the event was shed
  /// (kShed saturated, or kCoalesce saturated with no queued partner) or
  /// the queue is closed. kBlock never sheds: it waits for space (or for
  /// close(), which sheds the in-flight event).
  bool push(const QueuedEvent& item);

  /// Blocks until an event is available or the queue is closed and empty.
  [[nodiscard]] std::optional<QueuedEvent> pop();

  /// Stops intake and wakes every waiter; queued events stay poppable so
  /// shutdown drains instead of dropping.
  void close();

  [[nodiscard]] std::size_t depth() const;
  [[nodiscard]] std::size_t cap() const { return cap_; }
  [[nodiscard]] QueuePolicy policy() const { return policy_; }

  struct Stats {
    std::uint64_t pushed = 0;     ///< accepted into the queue
    std::uint64_t popped = 0;
    std::uint64_t shed = 0;       ///< dropped at saturation
    std::uint64_t coalesced = 0;  ///< replaced a queued same-key event
    std::uint64_t blocked = 0;    ///< kBlock pushes that had to wait
  };
  [[nodiscard]] Stats stats() const;

 private:
  /// Same-key test for kCoalesce: link events match on the unordered AS
  /// pair, prefix events on (origin, prefix) — the pairs for which a
  /// newer event supersedes an older queued one.
  [[nodiscard]] static bool same_key(const ChurnEvent& a,
                                     const ChurnEvent& b);

  const std::size_t cap_;
  const QueuePolicy policy_;
  mutable std::mutex mutex_;
  std::condition_variable space_;  ///< signalled on pop/close (producers)
  std::condition_variable ready_;  ///< signalled on push/close (consumers)
  std::deque<QueuedEvent> items_;
  bool closed_ = false;
  Stats stats_;
};

}  // namespace asrel::stream
