#include "stream/delta_audit.hpp"

#include <algorithm>
#include <utility>

namespace asrel::stream {

DeltaAudit::DeltaAudit(const topo::World& world)
    : hypergiants_(world.hypergiants.begin(), world.hypergiants.end()),
      tier1_(world.clique.begin(), world.clique.end()),
      topo_([this](asn::Asn asn) { return hypergiants_.contains(asn); },
            [this](asn::Asn asn) { return tier1_.contains(asn); },
            [this](asn::Asn asn) {
              const auto it = transit_.find(asn);
              return it != transit_.end() && it->second;
            }) {
  for (const auto& file : world.delegations) mapper_.apply(file);
  const auto& graph = world.graph;
  transit_.reserve(graph.node_count());
  for (const auto& edge : graph.edges()) {
    if (edge.removed) continue;
    if (edge.rel == topo::RelType::kP2C) {
      transit_[graph.asn_of(edge.u)] = true;
    }
  }
}

void DeltaAudit::on_edges_touched(const topo::AsGraph& graph,
                                  std::span<const topo::EdgeId> touched) {
  std::vector<asn::Asn> flipped;
  const auto refresh = [&](topo::NodeId node) {
    const asn::Asn asn = graph.asn_of(node);
    bool now = false;
    for (const auto& neighbor : graph.neighbors(node)) {
      if (neighbor.role == topo::Neighbor::Role::kProvider) {
        now = true;
        break;
      }
    }
    bool& bit = transit_[asn];
    if (bit == now) return;
    bit = now;
    // The transit bit only matters for cone-classified ASes: hypergiant
    // and Tier-1 membership shadows it in category_of.
    if (!hypergiants_.contains(asn) && !tier1_.contains(asn)) {
      flipped.push_back(asn);
    }
  };
  for (const auto id : touched) {
    const auto& edge = graph.edge(id);  // endpoints valid even if removed
    refresh(edge.u);
    refresh(edge.v);
  }
  // Re-classify after every bit is final, so a link whose two endpoints
  // both flipped in this batch is recomputed against the settled state.
  for (const auto asn : flipped) {
    const auto it = incident_.find(asn);
    if (it == incident_.end()) continue;
    for (const auto slot : it->second) {
      topological_cache_[slot] = topo_.class_of(link_of_slot_[slot]);
    }
  }
}

std::vector<asn::Asn> DeltaAudit::sorted_transit_asns() const {
  std::vector<asn::Asn> asns;
  asns.reserve(transit_.size());
  for (const auto& [asn, bit] : transit_) {
    if (bit) asns.push_back(asn);
  }
  std::sort(asns.begin(), asns.end());
  return asns;
}

std::uint32_t DeltaAudit::slot_of(const val::AsLink& link) {
  const auto it = slot_.find(link);
  if (it != slot_.end()) return it->second;
  const auto slot = static_cast<std::uint32_t>(link_of_slot_.size());
  link_of_slot_.push_back(link);
  regional_cache_.push_back(eval::regional_class(mapper_, link));
  topological_cache_.push_back(topo_.class_of(link));
  slot_.emplace(link, slot);
  incident_[link.a].push_back(slot);
  if (link.b != link.a) incident_[link.b].push_back(slot);
  return slot;
}

const std::string& DeltaAudit::regional_class_of(const val::AsLink& link) {
  return regional_cache_[slot_of(link)];
}

const std::string& DeltaAudit::topological_class_of(const val::AsLink& link) {
  return topological_cache_[slot_of(link)];
}

core::SnapshotClassSource DeltaAudit::class_source() {
  return core::SnapshotClassSource{
      .regional_class_of =
          [this](const val::AsLink& link) { return regional_class_of(link); },
      .topological_class_of =
          [this](const val::AsLink& link) {
            return topological_class_of(link);
          },
  };
}

}  // namespace asrel::stream
