#include "stream/session.hpp"

#include <chrono>
#include <thread>
#include <utility>

#include "core/parallel.hpp"
#include "core/snapshot_builder.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "topology/generator.hpp"

namespace asrel::stream {

namespace {

struct StreamMetrics {
  obs::Counter& events_applied;
  obs::Counter& events_noop;
  obs::Counter& origins_redone;
  obs::Counter& origins_clean;
  obs::Histogram& event_us;
  obs::Histogram& publish_us;
  obs::Gauge& epoch;

  static StreamMetrics& get() {
    auto& reg = obs::MetricsRegistry::global();
    static StreamMetrics metrics{
        reg.counter("asrel_stream_events_total{result=\"applied\"}",
                    "Churn events by outcome"),
        reg.counter("asrel_stream_events_total{result=\"noop\"}"),
        reg.counter("asrel_stream_origins_repropagated_total",
                    "Origins re-converged by the incremental propagator"),
        reg.counter("asrel_stream_origins_clean_total",
                    "Origins proven unaffected (re-propagation skipped)"),
        reg.histogram("asrel_stream_event_duration_us",
                      obs::stage_buckets_us(),
                      "Per-event apply + re-convergence wall time (us)"),
        reg.histogram("asrel_stream_publish_duration_us",
                      obs::stage_buckets_us(),
                      "Per-epoch snapshot publication wall time (us)"),
        reg.gauge("asrel_stream_epoch",
                  "Streaming session's last published epoch"),
    };
    return metrics;
  }
};

unsigned worker_count(unsigned requested) {
  if (requested != 0) return requested;
  return std::min(32u, std::max(1u, std::thread::hardware_concurrency()));
}

}  // namespace

StreamSession::StreamSession(const core::ScenarioParams& params)
    : params_(params) {
  obs::StageScope stage{"stream.bootstrap"};
  if (params.threads != 0) {
    params_.propagation.threads = params.threads;
    params_.extract.threads = params.threads;
  }
  world_ = topo::generate(params_.topology);
  vps_ = bgp::select_vantage_points(world_, params_.vantage);
  // The propagator keeps a pointer to world_; the member is mutated in
  // place by apply(), never reseated, so the pointer stays valid.
  propagator_ =
      std::make_unique<bgp::Propagator>(world_, params_.propagation);
  sessions_ = bgp::resolve_vp_sessions(world_.graph, vps_);

  // Same per-origin loop as bgp::collect_paths, but the ribs are kept:
  // they are the baseline the dirty test diffs against.
  const std::size_t n = world_.graph.node_count();
  ribs_.resize(n);
  paths_.resize_origins(n);
  paths_.set_vantage_points(vps_);
  const unsigned threads = worker_count(params_.propagation.threads);
  core::ThreadPool::shared().run_indexed(n, threads, [&](std::size_t i) {
    const auto origin = static_cast<topo::NodeId>(i);
    ribs_[i] = propagator_->propagate(world_.graph.asn_of(origin));
    bgp::harvest_origin(*propagator_, ribs_[i], sessions_, paths_);
  });
  paths_.recount();

  audit_ = std::make_unique<DeltaAudit>(world_);
  scenario_ = core::Scenario::from_parts(params_, world_, vps_, paths_);
  // Build the epoch-1 snapshot through the audit's class source: identical
  // bytes to a fresh BiasAudit, and it warms the per-link cache that later
  // epochs invalidate incrementally.
  auto source = audit_->class_source();
  core::rebuild_snapshot_sections(snapshot_, *scenario_,
                                  core::SnapshotSections::all(), &source);
  epoch_ = 1;
  snapshot_.meta.epoch = epoch_;
  StreamMetrics::get().epoch.set(static_cast<std::int64_t>(epoch_));
}

StreamSession::EventOutcome StreamSession::apply(const ChurnEvent& event) {
  obs::StageScope stage{"stream.apply"};
  StreamMetrics& metrics = StreamMetrics::get();
  const auto started = std::chrono::steady_clock::now();

  EventOutcome outcome;
  const ApplyResult result = apply_churn_event(world_, event);
  outcome.applied = result.applied;
  if (!result.applied) {
    ++stats_.events_noop;
    metrics.events_noop.inc();
    return outcome;
  }
  ++stats_.events_applied;
  metrics.events_applied.inc();

  if (!result.touched.empty()) {
    graph_dirty_ = true;
    audit_->on_edges_touched(world_.graph, result.touched);
    const std::uint64_t redone_before = stats_.origins_redone;
    reconverge(result.touched);
    outcome.dirty_origins =
        static_cast<std::size_t>(stats_.origins_redone - redone_before);
  }
  // Prefix events leave touched empty: they mutate world_.prefixes only,
  // which no snapshot section reads — a true pipeline no-op.

  metrics.event_us.observe(static_cast<double>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - started)
          .count()));
  return outcome;
}

void StreamSession::reconverge(std::span<const topo::EdgeId> touched) {
  obs::StageScope stage{"stream.reconverge"};
  const std::size_t n = ribs_.size();
  const unsigned threads = worker_count(params_.propagation.threads);
  core::ThreadPool& pool = core::ThreadPool::shared();

  // Pass 1: conservative dirty scan — O(touched) per origin.
  std::vector<std::uint8_t> dirty(n, 0);
  pool.run_indexed(n, threads, [&](std::size_t i) {
    dirty[i] = propagator_->rib_affected(ribs_[i], touched) ? 1 : 0;
  });

  // Pass 2: full re-propagation for the dirty frontier only; each origin
  // refills its own path-table bucket, exactly like the batch build.
  pool.run_indexed(n, threads, [&](std::size_t i) {
    if (dirty[i] == 0) return;
    const auto origin = static_cast<topo::NodeId>(i);
    ribs_[i] = propagator_->propagate(world_.graph.asn_of(origin));
    paths_.clear_origin(origin);
    bgp::harvest_origin(*propagator_, ribs_[i], sessions_, paths_);
  });
  paths_.recount();

  std::uint64_t redone = 0;
  for (const auto flag : dirty) redone += flag;
  stats_.origins_redone += redone;
  stats_.origins_skipped += n - redone;
  StreamMetrics& metrics = StreamMetrics::get();
  metrics.origins_redone.add(redone);
  metrics.origins_clean.add(n - redone);
  if (redone != 0) paths_dirty_ = true;
}

const io::Snapshot& StreamSession::publish(std::uint64_t built_unix_ms) {
  obs::StageScope stage{"stream.publish"};
  StreamMetrics& metrics = StreamMetrics::get();
  const auto started = std::chrono::steady_clock::now();

  if (graph_dirty_ || paths_dirty_) {
    // Downstream stages (sanitize -> schemes -> extract -> clean ->
    // regions) are re-run over the maintained parts; the expensive
    // upstream — topology and all-origin propagation — is what
    // incrementality avoided.
    scenario_ = core::Scenario::from_parts(params_, world_, vps_, paths_);
    core::SnapshotSections sections;
    sections.ases = true;
    sections.validation = true;
    sections.algorithms = true;
    sections.links = true;
    sections.edges = graph_dirty_;
    auto source = audit_->class_source();
    core::rebuild_snapshot_sections(snapshot_, *scenario_, sections,
                                    &source);
    graph_dirty_ = false;
    paths_dirty_ = false;
  }
  ++epoch_;
  ++stats_.epochs_published;
  snapshot_.meta.epoch = epoch_;
  snapshot_.meta.built_unix_ms = built_unix_ms;
  metrics.epoch.set(static_cast<std::int64_t>(epoch_));
  metrics.publish_us.observe(static_cast<double>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - started)
          .count()));
  return snapshot_;
}

io::Snapshot StreamSession::reference_snapshot(
    std::uint64_t built_unix_ms) const {
  obs::StageScope stage{"stream.reference"};
  const bgp::Propagator propagator{world_, params_.propagation};
  auto paths = bgp::collect_paths(propagator, vps_);
  const auto scenario =
      core::Scenario::from_parts(params_, world_, vps_, std::move(paths));
  io::Snapshot snapshot = core::build_snapshot(*scenario);
  snapshot.meta.epoch = epoch_;
  snapshot.meta.built_unix_ms = built_unix_ms;
  return snapshot;
}

}  // namespace asrel::stream
