#include "stream/session.hpp"

#include <algorithm>
#include <chrono>
#include <new>
#include <stdexcept>
#include <thread>
#include <utility>

#include "core/parallel.hpp"
#include "core/snapshot_builder.hpp"
#include "io/wire.hpp"
#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "serve/fault_inject.hpp"
#include "stream/cone_filter.hpp"
#include "topology/generator.hpp"

namespace asrel::stream {

namespace {

struct StreamMetrics {
  obs::Counter& events_applied;
  obs::Counter& events_noop;
  obs::Counter& origins_redone;
  obs::Counter& origins_skipped_scan;
  obs::Counter& origins_skipped_cone;
  obs::Counter& divergences;
  obs::Counter& heals;
  obs::Counter& watchdog_runs;
  obs::Counter& recoveries_restored;
  obs::Counter& recoveries_rejected;
  obs::Counter& recoveries_cold;
  obs::Histogram& event_us;
  obs::Histogram& publish_us;
  obs::Gauge& epoch;

  static StreamMetrics& get() {
    auto& reg = obs::MetricsRegistry::global();
    static StreamMetrics metrics{
        reg.counter("asrel_stream_events_total{result=\"applied\"}",
                    "Churn events by outcome"),
        reg.counter("asrel_stream_events_total{result=\"noop\"}"),
        reg.counter("asrel_stream_origins_redone_total",
                    "Origins re-converged by the incremental propagator"),
        reg.counter("asrel_stream_origins_skipped_total{reason=\"rib_scan\"}",
                    "Origins proven unaffected (re-propagation skipped)"),
        reg.counter(
            "asrel_stream_origins_skipped_total{reason=\"cone_prefilter\"}"),
        reg.counter("asrel_stream_divergence_total",
                    "Watchdog mismatches between served and reference bytes"),
        reg.counter("asrel_stream_heals_total",
                    "Watchdog self-heals (full incremental-state rebuilds)"),
        reg.counter("asrel_stream_watchdog_runs_total",
                    "Completed divergence-watchdog audits"),
        reg.counter("asrel_stream_recoveries_total{result=\"restored\"}",
                    "Startup recovery outcomes"),
        reg.counter(
            "asrel_stream_recoveries_total{result=\"rejected_checkpoint\"}"),
        reg.counter("asrel_stream_recoveries_total{result=\"cold\"}"),
        reg.histogram("asrel_stream_event_duration_us",
                      obs::stage_buckets_us(),
                      "Per-event apply + re-convergence wall time (us)"),
        reg.histogram("asrel_stream_publish_duration_us",
                      obs::stage_buckets_us(),
                      "Per-epoch snapshot publication wall time (us)"),
        reg.gauge("asrel_stream_epoch",
                  "Streaming session's last published epoch"),
    };
    return metrics;
  }
};

unsigned worker_count(unsigned requested) {
  if (requested != 0) return requested;
  return std::min(32u, std::max(1u, std::thread::hardware_concurrency()));
}

CheckpointFingerprint fingerprint_of(const core::ScenarioParams& params,
                                     const topo::AsGraph& graph) {
  CheckpointFingerprint fp;
  fp.as_count = params.topology.as_count;
  fp.topo_seed = params.topology.seed;
  fp.scheme_seed = params.scheme_seed;
  fp.vantage_seed = params.vantage.seed;
  fp.vantage_targets = static_cast<std::uint32_t>(params.vantage.target_count);
  fp.node_count = graph.node_count();
  std::string nodes;
  nodes.reserve(graph.node_count() * 4);
  for (const auto asn : graph.nodes()) io::wire::put_u32(nodes, asn.value());
  fp.node_hash = io::wire::fnv1a64(nodes);
  return fp;
}

/// Section-granular diff for watchdog diagnostics, in snapshot order. The
/// defaulted operator==s make this a pure value comparison.
std::string first_diff_section(const io::Snapshot& a, const io::Snapshot& b) {
  if (!(a.meta == b.meta)) return "meta";
  if (a.class_names != b.class_names) return "class_names";
  if (a.ases != b.ases) return "ases";
  if (a.edges != b.edges) return "edges";
  if (a.clique != b.clique) return "clique";
  if (a.hypergiants != b.hypergiants) return "hypergiants";
  if (a.validation != b.validation) return "validation";
  if (a.algorithms != b.algorithms) return "algorithms";
  if (a.links != b.links) return "links";
  return "unknown";
}

}  // namespace

StreamSession::StreamSession(const core::ScenarioParams& params) {
  obs::StageScope stage{"stream.bootstrap"};
  init_static(params);
  rebuild_derived_state();
  epoch_ = 1;
  snapshot_.meta.epoch = epoch_;
  StreamMetrics::get().epoch.set(static_cast<std::int64_t>(epoch_));
}

StreamSession::StreamSession(const core::ScenarioParams& params, RestoreTag) {
  init_static(params);
}

void StreamSession::init_static(const core::ScenarioParams& params) {
  params_ = params;
  if (params.threads != 0) {
    params_.propagation.threads = params.threads;
    params_.extract.threads = params.threads;
  }
  world_ = topo::generate(params_.topology);
  vps_ = bgp::select_vantage_points(world_, params_.vantage);
  // The propagator keeps a pointer to world_; the member is mutated in
  // place by apply(), never reseated, so the pointer stays valid.
  propagator_ =
      std::make_unique<bgp::Propagator>(world_, params_.propagation);
  sessions_ = bgp::resolve_vp_sessions(world_.graph, vps_);
}

void StreamSession::rebuild_derived_state() {
  // Same per-origin loop as bgp::collect_paths, but the ribs are kept:
  // they are the baseline the dirty test diffs against.
  const std::size_t n = world_.graph.node_count();
  ribs_.assign(n, {});
  paths_ = bgp::PathTable{};
  paths_.resize_origins(n);
  paths_.set_vantage_points(vps_);
  const unsigned threads = worker_count(params_.propagation.threads);
  core::ThreadPool::shared().run_indexed(n, threads, [&](std::size_t i) {
    const auto origin = static_cast<topo::NodeId>(i);
    ribs_[i] = propagator_->propagate(world_.graph.asn_of(origin));
    bgp::harvest_origin(*propagator_, ribs_[i], sessions_, paths_);
  });
  paths_.recount();

  audit_ = std::make_unique<DeltaAudit>(world_);
  scenario_ = core::Scenario::from_parts(params_, world_, vps_, paths_);
  // Build through the audit's class source: identical bytes to a fresh
  // BiasAudit, and it warms the per-link cache that later epochs
  // invalidate incrementally.
  auto source = audit_->class_source();
  core::rebuild_snapshot_sections(snapshot_, *scenario_,
                                  core::SnapshotSections::all(), &source);
  graph_dirty_ = false;
  paths_dirty_ = false;
}

StreamSession::EventOutcome StreamSession::apply(const ChurnEvent& event) {
  obs::StageScope stage{"stream.apply"};
  if (poisoned_) {
    throw std::logic_error{"apply() on a poisoned stream session"};
  }
  if (serve::fault::FaultInjector::instance().stream_apply_should_fail()) {
    // Modeled as the allocation failure an apply-path resize can hit.
    // Nothing has been mutated yet, but callers cannot know that in
    // general, so the session refuses all further work until replaced.
    poisoned_ = true;
    throw std::bad_alloc{};
  }
  StreamMetrics& metrics = StreamMetrics::get();
  const auto started = std::chrono::steady_clock::now();

  EventOutcome outcome;
  const ApplyResult result = apply_churn_event(world_, event);
  outcome.applied = result.applied;
  if (!result.applied) {
    ++stats_.events_noop;
    metrics.events_noop.inc();
    return outcome;
  }
  ++stats_.events_applied;
  metrics.events_applied.inc();

  if (!result.touched.empty()) {
    graph_dirty_ = true;
    audit_->on_edges_touched(world_.graph, result.touched);
    // Pure-P2P link adds admit a sound pre-scan narrowing: only origins in
    // the endpoints' combined customer cones can even be offered the new
    // path (see cone_filter.hpp for the argument). Every other event shape
    // falls through to the full rib scan.
    std::vector<std::uint8_t> cone;
    const std::vector<std::uint8_t>* cone_ptr = nullptr;
    if (event.kind == ChurnKind::kLinkAdd && result.touched.size() == 1) {
      const topo::Edge& edge = world_.graph.edge(result.touched[0]);
      if (cone_filter_applies(edge)) {
        cone = p2p_add_candidates(world_.graph, edge);
        cone_ptr = &cone;
      }
    }
    const std::uint64_t redone_before = stats_.origins_redone;
    reconverge(result.touched, cone_ptr);
    outcome.dirty_origins =
        static_cast<std::size_t>(stats_.origins_redone - redone_before);
  }
  // Prefix events leave touched empty: they mutate world_.prefixes only,
  // which no snapshot section reads — a true pipeline no-op.

  metrics.event_us.observe(static_cast<double>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - started)
          .count()));
  return outcome;
}

void StreamSession::reconverge(std::span<const topo::EdgeId> touched,
                               const std::vector<std::uint8_t>* candidates) {
  obs::StageScope stage{"stream.reconverge"};
  const std::size_t n = ribs_.size();
  const unsigned threads = worker_count(params_.propagation.threads);
  core::ThreadPool& pool = core::ThreadPool::shared();

  // Pass 1: conservative dirty scan — O(touched) per origin. Origins the
  // cone prefilter excluded skip even that.
  std::vector<std::uint8_t> dirty(n, 0);
  pool.run_indexed(n, threads, [&](std::size_t i) {
    if (candidates != nullptr && (*candidates)[i] == 0) return;
    dirty[i] = propagator_->rib_affected(ribs_[i], touched) ? 1 : 0;
  });

  // Pass 2: full re-propagation for the dirty frontier only; each origin
  // refills its own path-table bucket, exactly like the batch build.
  pool.run_indexed(n, threads, [&](std::size_t i) {
    if (dirty[i] == 0) return;
    const auto origin = static_cast<topo::NodeId>(i);
    ribs_[i] = propagator_->propagate(world_.graph.asn_of(origin));
    paths_.clear_origin(origin);
    bgp::harvest_origin(*propagator_, ribs_[i], sessions_, paths_);
  });
  paths_.recount();

  std::uint64_t redone = 0;
  for (const auto flag : dirty) redone += flag;
  std::uint64_t cone_skipped = 0;
  if (candidates != nullptr) {
    for (const auto flag : *candidates) cone_skipped += flag == 0 ? 1 : 0;
  }
  stats_.origins_redone += redone;
  stats_.origins_skipped += n - redone;
  stats_.origins_skipped_cone += cone_skipped;
  StreamMetrics& metrics = StreamMetrics::get();
  metrics.origins_redone.add(redone);
  metrics.origins_skipped_scan.add(n - redone - cone_skipped);
  metrics.origins_skipped_cone.add(cone_skipped);
  if (redone != 0) paths_dirty_ = true;
}

const io::Snapshot& StreamSession::publish(std::uint64_t built_unix_ms) {
  obs::StageScope stage{"stream.publish"};
  if (poisoned_) {
    throw std::logic_error{"publish() on a poisoned stream session"};
  }
  if (serve::fault::FaultInjector::instance().stream_divergence_should_seed()) {
    // Silent corruption the incremental machinery cannot see: drop one
    // origin's path bucket without marking anything for re-propagation.
    // This publish serves the diverged bytes; the next watchdog audit
    // must detect and heal it.
    const auto n = static_cast<topo::NodeId>(ribs_.size());
    for (topo::NodeId origin = 0; origin < n; ++origin) {
      if (paths_.paths_for_origin(origin).empty()) continue;
      paths_.clear_origin(origin);
      paths_.recount();
      paths_dirty_ = true;
      break;
    }
  }
  StreamMetrics& metrics = StreamMetrics::get();
  const auto started = std::chrono::steady_clock::now();

  if (graph_dirty_ || paths_dirty_) {
    // Downstream stages (sanitize -> schemes -> extract -> clean ->
    // regions) are re-run over the maintained parts; the expensive
    // upstream — topology and all-origin propagation — is what
    // incrementality avoided.
    scenario_ = core::Scenario::from_parts(params_, world_, vps_, paths_);
    core::SnapshotSections sections;
    sections.ases = true;
    sections.validation = true;
    sections.algorithms = true;
    sections.links = true;
    sections.edges = graph_dirty_;
    auto source = audit_->class_source();
    core::rebuild_snapshot_sections(snapshot_, *scenario_, sections,
                                    &source);
    graph_dirty_ = false;
    paths_dirty_ = false;
  }
  ++epoch_;
  ++stats_.epochs_published;
  snapshot_.meta.epoch = epoch_;
  snapshot_.meta.built_unix_ms = built_unix_ms;
  metrics.epoch.set(static_cast<std::int64_t>(epoch_));
  metrics.publish_us.observe(static_cast<double>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - started)
          .count()));
  return snapshot_;
}

io::Snapshot StreamSession::reference_snapshot(
    std::uint64_t built_unix_ms) const {
  obs::StageScope stage{"stream.reference"};
  const bgp::Propagator propagator{world_, params_.propagation};
  auto paths = bgp::collect_paths(propagator, vps_);
  const auto scenario =
      core::Scenario::from_parts(params_, world_, vps_, std::move(paths));
  io::Snapshot snapshot = core::build_snapshot(*scenario);
  snapshot.meta.epoch = epoch_;
  snapshot.meta.built_unix_ms = built_unix_ms;
  return snapshot;
}

StreamCheckpoint StreamSession::checkpoint(
    std::uint64_t feed_position) const {
  if (poisoned_) {
    throw std::logic_error{"checkpoint() on a poisoned stream session"};
  }
  obs::StageScope stage{"stream.checkpoint"};
  StreamCheckpoint cp;
  cp.fingerprint = fingerprint_of(params_, world_.graph);
  cp.epoch = epoch_;
  cp.built_unix_ms = snapshot_.meta.built_unix_ms;
  cp.feed_position = feed_position;
  cp.graph_dirty = graph_dirty_;
  cp.paths_dirty = paths_dirty_;
  const auto edges = world_.graph.edges();
  cp.edges.assign(edges.begin(), edges.end());
  cp.ribs = ribs_;
  cp.prefixes.reserve(world_.prefixes.size());
  for (const auto& [asn, list] : world_.prefixes) {
    if (!list.empty()) cp.prefixes.emplace_back(asn, list);
  }
  std::sort(cp.prefixes.begin(), cp.prefixes.end(),
            [](const auto& a, const auto& b) {
              return a.first.value() < b.first.value();
            });
  cp.transit_asns = audit_->sorted_transit_asns();
  return cp;
}

std::unique_ptr<StreamSession> StreamSession::restore(
    const core::ScenarioParams& params, const StreamCheckpoint& checkpoint,
    std::string* error) {
  obs::StageScope stage{"stream.restore"};
  const auto fail = [&](const char* message) -> std::unique_ptr<StreamSession> {
    if (error != nullptr) *error = message;
    return nullptr;
  };
  if (checkpoint.epoch == 0) {
    return fail("checkpoint epoch must be >= 1");
  }
  std::unique_ptr<StreamSession> session{
      new StreamSession(params, RestoreTag{})};
  if (fingerprint_of(session->params_, session->world_.graph) !=
      checkpoint.fingerprint) {
    return fail("checkpoint fingerprint does not match the configured world");
  }

  // The decoder validated edges/ribs against the checkpoint's own
  // fingerprint; the fingerprint match transfers that to the regenerated
  // world, so the reinstallation below cannot go out of bounds.
  session->world_.graph.restore_edges(checkpoint.edges);
  session->world_.prefixes.clear();
  for (const auto& [asn, list] : checkpoint.prefixes) {
    session->world_.prefixes.emplace(asn, list);
  }
  session->ribs_ = checkpoint.ribs;

  // Re-harvest the path table from the restored ribs — the cheap half of
  // the batch loop; the all-origin propagation is what the checkpoint
  // saved us.
  const std::size_t n = session->world_.graph.node_count();
  session->paths_ = bgp::PathTable{};
  session->paths_.resize_origins(n);
  session->paths_.set_vantage_points(session->vps_);
  const unsigned threads =
      worker_count(session->params_.propagation.threads);
  core::ThreadPool::shared().run_indexed(n, threads, [&](std::size_t i) {
    bgp::harvest_origin(*session->propagator_, session->ribs_[i],
                        session->sessions_, session->paths_);
  });
  session->paths_.recount();

  session->audit_ = std::make_unique<DeltaAudit>(session->world_);
  if (session->audit_->sorted_transit_asns() != checkpoint.transit_asns) {
    return fail("checkpoint transit bits disagree with the restored world");
  }
  session->scenario_ = core::Scenario::from_parts(
      session->params_, session->world_, session->vps_, session->paths_);
  // Rebuild every section: a section can differ from its last-published
  // bytes only if its inputs changed since, and any such change set a
  // dirty flag (restored below) that forces the same rebuild at the next
  // publish — so rebuilding all of them here is exact, never stale.
  auto source = session->audit_->class_source();
  core::rebuild_snapshot_sections(session->snapshot_, *session->scenario_,
                                  core::SnapshotSections::all(), &source);
  session->epoch_ = checkpoint.epoch;
  session->snapshot_.meta.epoch = checkpoint.epoch;
  session->snapshot_.meta.built_unix_ms = checkpoint.built_unix_ms;
  session->graph_dirty_ = checkpoint.graph_dirty;
  session->paths_dirty_ = checkpoint.paths_dirty;
  StreamMetrics::get().epoch.set(
      static_cast<std::int64_t>(checkpoint.epoch));
  return session;
}

StreamSession::WatchdogReport StreamSession::run_watchdog() {
  obs::StageScope stage{"stream.watchdog"};
  WatchdogReport report;
  // Only audit a quiescent snapshot: with events pending publication the
  // maintained bytes legitimately trail the world and a mismatch would be
  // a false alarm, not corruption.
  if (poisoned_ || graph_dirty_ || paths_dirty_) return report;
  report.ran = true;
  StreamMetrics& metrics = StreamMetrics::get();
  metrics.watchdog_runs.inc();

  const std::uint64_t built = snapshot_.meta.built_unix_ms;
  const io::Snapshot reference = reference_snapshot(built);
  if (io::to_snapshot_bytes(snapshot_) == io::to_snapshot_bytes(reference)) {
    return report;
  }
  report.diverged = true;
  report.first_diff_section = first_diff_section(snapshot_, reference);
  ++stats_.divergences;
  metrics.divergences.inc();
  static obs::LogSite diverged_site{"stream.watchdog", "diverged", 0};
  obs::log_event(diverged_site, obs::LogLevel::kError, 0,
                 {{"epoch", epoch_},
                  {"first_diff_section", report.first_diff_section}});

  // Self-heal: throw away every piece of incremental state and re-derive
  // it from the world, then restamp the same epoch/build time so the
  // healed snapshot replaces the diverged one in place.
  rebuild_derived_state();
  snapshot_.meta.epoch = epoch_;
  snapshot_.meta.built_unix_ms = built;
  report.healed = true;
  ++stats_.heals;
  metrics.heals.inc();
  static obs::LogSite healed_site{"stream.watchdog", "healed", 0};
  obs::log_event(healed_site, obs::LogLevel::kWarn, 0, {{"epoch", epoch_}});
  return report;
}

RecoveryOutcome recover_session(const core::ScenarioParams& params,
                                const CheckpointDir& dir) {
  obs::StageScope stage{"stream.recover"};
  StreamMetrics& metrics = StreamMetrics::get();
  RecoveryOutcome outcome;
  std::string story;
  static obs::LogSite rejected_site{"stream.recover", "checkpoint_rejected",
                                    0};
  static obs::LogSite restored_site{"stream.recover", "restored", 0};
  static obs::LogSite cold_site{"stream.recover", "cold_bootstrap", 0};
  for (const auto& path : dir.candidates()) {
    std::string error;
    const auto checkpoint = load_checkpoint_file(path, &error);
    if (!checkpoint.has_value()) {
      ++outcome.checkpoints_rejected;
      metrics.recoveries_rejected.inc();
      obs::log_event(rejected_site, obs::LogLevel::kWarn, 0,
                     {{"path", path}, {"error", error}});
      story += path + ": " + error + "; ";
      continue;
    }
    auto session = StreamSession::restore(params, *checkpoint, &error);
    if (session == nullptr) {
      ++outcome.checkpoints_rejected;
      metrics.recoveries_rejected.inc();
      obs::log_event(rejected_site, obs::LogLevel::kWarn, 0,
                     {{"path", path}, {"error", error}});
      story += path + ": " + error + "; ";
      continue;
    }
    outcome.session = std::move(session);
    outcome.resumed_epoch = checkpoint->epoch;
    outcome.feed_position = checkpoint->feed_position;
    outcome.detail = story + "restored epoch " +
                     std::to_string(checkpoint->epoch) + " from " + path;
    metrics.recoveries_restored.inc();
    obs::log_event(restored_site, obs::LogLevel::kInfo, 0,
                   {{"epoch", checkpoint->epoch}, {"path", path}});
    return outcome;
  }
  outcome.session = std::make_unique<StreamSession>(params);
  outcome.detail = story + "cold bootstrap";
  metrics.recoveries_cold.inc();
  obs::log_event(
      cold_site, obs::LogLevel::kInfo, 0,
      {{"checkpoints_rejected", outcome.checkpoints_rejected}});
  return outcome;
}

}  // namespace asrel::stream
